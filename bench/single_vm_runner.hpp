// Shared (cached) runner for Figures 7–8: migrate a single idle or busy VM
// of 2–12 GB off a 6 GB host, one run per (technique, size, busy) point.
#pragma once

#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "run_cache.hpp"
#include "util/log.hpp"

namespace agile::bench {

inline CachedRun run_single_vm(core::Technique technique, Bytes vm_memory,
                               bool busy) {
  const bool quick = quick_mode();
  char key[128];
  std::snprintf(key, sizeof(key), "singlevm_%s_%llumib_%s%s",
                core::technique_name(technique),
                static_cast<unsigned long long>(vm_memory >> 20),
                busy ? "busy" : "idle", quick ? "_quick" : "");
  return cached_run(key, [&] {
    core::scenarios::SingleVmOptions opt;
    opt.technique = technique;
    opt.host_ram = quick ? 1_GiB : 6_GiB;
    opt.vm_memory = vm_memory;
    opt.busy = busy;
    if (quick) {
      opt.guest_os = 32_MiB;
      opt.free_margin = 64_MiB;
    }
    opt.trace = !trace_stem().empty();
    opt.stats = !stats_stem().empty();
    core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    record_run(sc.bed->cluster().simulation().events_executed());
    if (!sc.migration->metrics().completed) record_incomplete_run();
    if (sc.session != nullptr) {
      Status st = sc.session->recorder().write_chrome_json(trace_stem() + "." +
                                                           key + ".json");
      if (!st.is_ok()) AGILE_LOG_WARN("%s", st.message().c_str());
    }
    if (sc.registry != nullptr) {
      write_run_stats(*sc.registry, key, sc.bed->cluster().simulation().now());
    }
    CachedRun r;
    r.migration = sc.migration->metrics();
    return r;
  });
}

inline std::vector<Bytes> single_vm_sizes() {
  if (quick_mode()) return {512_MiB, 1_GiB, 2_GiB};
  return {2_GiB, 4_GiB, 6_GiB, 8_GiB, 10_GiB, 12_GiB};
}

/// One Fig-7/8 sweep point. Figures iterate busy (outer), size, technique
/// (inner); `single_vm_points` preserves that order so tables keep their
/// historical row order.
struct SingleVmPoint {
  core::Technique technique;
  Bytes size;
  bool busy;
};

inline std::vector<SingleVmPoint> single_vm_points() {
  const core::Technique techniques[] = {core::Technique::kPrecopy,
                                        core::Technique::kPostcopy,
                                        core::Technique::kAgile};
  std::vector<SingleVmPoint> points;
  for (bool busy : {false, true}) {
    for (Bytes size : single_vm_sizes()) {
      for (core::Technique technique : techniques) {
        points.push_back({technique, size, busy});
      }
    }
  }
  return points;
}

inline CachedRun run_single_vm_point(const SingleVmPoint& pt) {
  return run_single_vm(pt.technique, pt.size, pt.busy);
}

}  // namespace agile::bench
