// Table III — data transferred over the migration channel in the 4-VM
// consolidation experiment.
//
// Paper reference (MB):
//   YCSB/Redis: pre-copy 15029, post-copy 10268, Agile 8173
//   Sysbench:   pre-copy 11298, post-copy 10268, Agile 7757
#include "bench_common.hpp"
#include "consolidation_runner.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
namespace scen = core::scenarios;

int main() {
  bench::banner("Table III: amount of data transferred (MB)");
  std::vector<bench::ConsolidationPoint> points = bench::consolidation_points();
  bench::ParallelSweep sweep;
  std::vector<bench::ConsolidationRun> runs =
      sweep.map(points, bench::run_consolidation_point);

  metrics::Table table(
      {"workload", "pre-copy", "post-copy", "agile", "paper (pre/post/agile)"});
  for (std::size_t i = 0; i < points.size(); i += 3) {
    scen::AppKind app = points[i].app;
    std::vector<std::string> row;
    row.push_back(app == scen::AppKind::kYcsb ? "YCSB/Redis" : "Sysbench");
    for (std::size_t j = 0; j < 3; ++j) {
      row.push_back(
          metrics::Table::num(to_mib(runs[i + j].migration.bytes_transferred), 0));
    }
    row.push_back(app == scen::AppKind::kYcsb ? "15029 / 10268 / 8173"
                                              : "11298 / 10268 / 7757");
    table.add_row(row);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/table3_data_transferred.csv");
  bench::note("Expected ordering: pre-copy most (retransmits), agile least "
              "(cold pages never cross the wire).");
  bench::footer("table3_data_transferred");
  return 0;
}
