// Ablations of the design choices DESIGN.md calls out. Not a paper artifact;
// each section isolates one mechanism and shows why it is (or is not) load
// bearing.
//
//  A. Intermediate host count — the paper claims VMD performance "does not
//     depend on the number of intermediate nodes as long as they have enough
//     memory"; we sweep 1/2/4 servers.
//  B. Agile's SWAPPED descriptors — what if Agile had to send cold pages in
//     full (i.e. the per-VM device existed but the protocol didn't exploit
//     it)? Approximated by the post-copy baseline on the same pressured VM.
//  C. Send window — stream backlog cap vs migration time (too small starves
//     the link between scheduling quanta).
//  D. VMD disk tier — cold-page reads when the cluster's free memory runs
//     out and pages spill to intermediate-host disks.
//  E. Source eviction speed — how fast each technique actually frees the
//     source (scatter-gather, the authors' companion technique, is built
//     for exactly this).
//
// Every section is a sweep of independent runs, so each fans across the
// shared ParallelSweep pool; rows print in fixed order afterwards.
#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
using core::Technique;
namespace scen = core::scenarios;

namespace {

migration::MigrationMetrics run_pressured_agile(
    std::uint32_t vmd_servers, Bytes server_capacity, Bytes server_disk,
    migration::MigrationConfig mig_cfg = {}) {
  const bool quick = bench::quick_mode();
  core::TestbedConfig cfg;
  cfg.source.ram = quick ? 1_GiB : 2_GiB;
  cfg.source.host_os_bytes = 64_MiB;
  cfg.dest = cfg.source;
  cfg.dest.name = "dest";
  cfg.vmd_servers = vmd_servers;
  cfg.vmd_server_capacity = server_capacity;
  cfg.vmd_server_disk = server_disk;
  core::Testbed bed(cfg);

  core::VmSpec spec;
  spec.name = "vm0";
  spec.memory = quick ? 2_GiB : 4_GiB;
  spec.reservation = quick ? 768_MiB : 1536_MiB;
  spec.swap = core::SwapBinding::kPerVmDevice;
  core::VmHandle& h = bed.create_vm(spec);

  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = quick ? 1536_MiB : 3_GiB;
  ycfg.guest_os_bytes = 64_MiB;
  ycfg.active_bytes = quick ? 512_MiB : 1_GiB;
  ycfg.read_fraction = 0.8;
  auto load = std::make_unique<workload::YcsbWorkload>(
      h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
      bed.make_rng("y"));
  auto* ycsb = load.get();
  bed.attach_workload(h, std::move(load));
  ycsb->load(0);
  bed.source()->ssd()->advance(sec(3600));
  bed.cluster().run_for_seconds(10);

  auto mig = bed.make_migration(Technique::kAgile, h, 0, mig_cfg);
  mig->start();
  double deadline = bed.cluster().now_seconds() + (quick ? 1200 : 3600);
  while (!mig->completed() && bed.cluster().now_seconds() < deadline) {
    bed.cluster().run_for_seconds(1);
  }
  // Post-migration: widen the active set so cold pages get demand-read from
  // wherever they live (memory tier or disk tier).
  std::uint64_t before = ycsb->ops_total();
  ycsb->set_active_bytes(quick ? 1_GiB : 3_GiB);
  bed.cluster().run_for_seconds(30);
  bench::record_run(bed.cluster().simulation().events_executed());
  if (!mig->completed()) bench::record_incomplete_run();
  migration::MigrationMetrics m = mig->metrics();
  // Smuggle the post-widen throughput out via a copy (cold-read throughput).
  m.pages_swap_faulted = (ycsb->ops_total() - before) / 30;
  return m;
}

migration::MigrationMetrics run_single_vm_pressured(Technique technique) {
  const bool quick = bench::quick_mode();
  scen::SingleVmOptions opt;
  opt.technique = technique;
  opt.host_ram = quick ? 1_GiB : 2_GiB;
  opt.vm_memory = quick ? 2_GiB : 4_GiB;
  opt.busy = true;
  if (quick) {
    opt.guest_os = 32_MiB;
    opt.free_margin = 64_MiB;
  }
  scen::SingleVm sc = scen::make_single_vm(opt);
  sc.prepare();
  sc.run_migration();
  bench::record_run(sc.bed->cluster().simulation().events_executed());
  if (!sc.migration->completed()) bench::record_incomplete_run();
  return sc.migration->metrics();
}

}  // namespace

int main() {
  bench::banner("Ablations: VMD server count, descriptors, send window, disk tier");
  const bool quick = bench::quick_mode();
  const Bytes pool_total = quick ? 4_GiB : 16_GiB;
  bench::ParallelSweep sweep;

  // --- A: intermediate host count -----------------------------------------
  {
    std::vector<std::uint32_t> counts = {1, 2, 4};
    auto runs = sweep.map(counts, [&](std::uint32_t n) {
      return run_pressured_agile(n, pool_total / n, 0);
    });
    metrics::Table t({"VMD servers", "migration time (s)", "wire (MiB)",
                      "post-migration cold-read ops/s"});
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const auto& m = runs[i];
      t.add_row({std::to_string(counts[i]), bench::migration_time_cell(m),
                 metrics::Table::num(to_mib(m.bytes_transferred), 0),
                 std::to_string(m.pages_swap_faulted)});
    }
    std::printf("\nA. Server-count independence (paper §V claim):\n%s",
                t.to_string().c_str());
  }

  // --- B: descriptors vs shipping cold pages ------------------------------
  {
    std::vector<Technique> techniques = {Technique::kAgile, Technique::kPostcopy,
                                         Technique::kPrecopy};
    auto runs = sweep.map(techniques, run_single_vm_pressured);
    metrics::Table t({"protocol", "migration time (s)", "wire (MiB)"});
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      const auto& m = runs[i];
      t.add_row({techniques[i] == Technique::kAgile
                     ? "agile (descriptors)"
                     : (techniques[i] == Technique::kPostcopy
                            ? "cold pages shipped once (post-copy)"
                            : "cold pages shipped + retransmits (pre-copy)"),
                 bench::migration_time_cell(m),
                 metrics::Table::num(to_mib(m.bytes_transferred), 0)});
    }
    std::printf("\nB. What the SWAPPED descriptor buys:\n%s", t.to_string().c_str());
  }

  // --- C: send window -------------------------------------------------------
  {
    std::vector<Bytes> windows = {1_MiB, 4_MiB, 16_MiB, 32_MiB, 64_MiB};
    auto runs = sweep.map(windows, [&](Bytes window) {
      migration::MigrationConfig mc;
      mc.send_window = window;
      return run_pressured_agile(1, pool_total, 0, mc);
    });
    metrics::Table t({"send window (MiB)", "migration time (s)"});
    for (std::size_t i = 0; i < windows.size(); ++i) {
      t.add_row({metrics::Table::num(to_mib(windows[i]), 0),
                 bench::migration_time_cell(runs[i])});
    }
    std::printf("\nC. Stream send window (must cover a scheduling quantum of "
                "line rate):\n%s",
                t.to_string().c_str());
  }

  // --- E: source eviction speed --------------------------------------------
  {
    std::vector<Technique> techniques = {Technique::kPrecopy, Technique::kPostcopy,
                                         Technique::kAgile,
                                         Technique::kScatterGather};
    auto runs = sweep.map(techniques, run_single_vm_pressured);
    metrics::Table t({"technique", "source freed after (s)", "direct-channel (MiB)"});
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      const auto& m = runs[i];
      t.add_row({core::technique_name(techniques[i]),
                 bench::migration_time_cell(m),
                 metrics::Table::num(to_mib(m.bytes_transferred), 0)});
    }
    std::printf("\nE. Time until the source host is deprovisioned:\n%s",
                t.to_string().c_str());
  }

  // --- D: VMD disk tier ------------------------------------------------------
  {
    struct TierPoint {
      const char* label;
      Bytes memory;
      Bytes disk;
    };
    std::vector<TierPoint> tiers = {
        {quick ? "4 GiB memory" : "16 GiB memory", pool_total, 0},
        {quick ? "256 MiB memory + 4 GiB disk" : "1 GiB memory + 16 GiB disk",
         quick ? 256_MiB : 1_GiB, pool_total}};
    auto runs = sweep.map(tiers, [&](const TierPoint& tier) {
      return run_pressured_agile(1, tier.memory, tier.disk);
    });
    metrics::Table t({"VMD config", "migration time (s)",
                      "post-migration cold-read ops/s"});
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      const auto& m = runs[i];
      t.add_row({tiers[i].label, bench::migration_time_cell(m),
                 std::to_string(m.pages_swap_faulted)});
    }
    std::printf("\nD. Disk-tier spill (paper §IV-A extension): migration is "
                "unaffected; cold reads slow down:\n%s",
                t.to_string().c_str());
  }
  bench::footer("ablation_design");
  return 0;
}
