// Figures 4, 5, 6 — average YCSB throughput across four VMs while one VM is
// migrated to relieve memory pressure, for pre-copy, post-copy and Agile.
// Also prints the §V-A recovery-to-90% row (paper: 533 / 294 / 215 s).
//
// Setup (paper §V-A): source & dest hosts with 23 GB RAM; four 10 GB / 2 vCPU
// VMs with 5.5 GB reservations, each a 9 GB Redis dataset queried by an
// external YCSB client. Phase 1: 200 MB active per client. From t=150 s the
// active set of one more VM ramps to 6 GB every 50 s. One VM migrates at
// t=400 s.
#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
using core::Technique;
namespace scen = core::scenarios;

namespace {

struct RunResult {
  metrics::TimeSeries avg;
  migration::MigrationMetrics migration;
  double peak = 0;
  double recovery_s = -1;  ///< From migration start to 90% of peak.
};

RunResult run_technique(Technique technique, double horizon_s,
                        SimTime migrate_at) {
  scen::ConsolidationOptions opt;
  opt.technique = technique;
  if (bench::quick_mode()) {
    opt.host_ram = 3_GiB;
    opt.vm_memory = 1_GiB;
    opt.reservation = 563_MiB;
    opt.dataset = 920_MiB;
    opt.guest_os = 20_MiB;
    opt.initial_active = 20_MiB;
    opt.ramped_active = 614_MiB;
  }
  scen::Consolidation sc = scen::make_consolidation(opt);
  sc.load_all();
  sc.schedule_ramp(bench::quick_mode() ? sec(15) : sec(150),
                   bench::quick_mode() ? sec(5) : sec(50));
  sc.schedule_migration(migrate_at);
  sc.bed->cluster().run_for_seconds(horizon_s);
  bench::record_run(sc.bed->cluster().simulation().events_executed());
  if (!sc.migration->completed()) bench::record_incomplete_run();

  RunResult r;
  r.avg = sc.average_throughput();
  r.migration = sc.migration->metrics();
  double t_mig = to_seconds(migrate_at);
  r.peak = r.avg.max_between(0, t_mig);
  double reached = r.avg.time_to_reach(0.9 * r.peak, t_mig, 5.0);
  if (reached >= 0) r.recovery_s = reached - t_mig;
  return r;
}

}  // namespace

int main() {
  bench::banner("Figures 4-6: avg YCSB throughput through migration");
  const bool quick = bench::quick_mode();
  const double horizon = quick ? 300 : 1100;
  const SimTime migrate_at = quick ? sec(40) : sec(400);

  struct Row {
    Technique technique;
    const char* label;
    const char* fig;
  };
  const Row rows[] = {{Technique::kPrecopy, "pre-copy", "fig4"},
                      {Technique::kPostcopy, "post-copy", "fig5"},
                      {Technique::kAgile, "agile", "fig6"}};

  // The three techniques are independent runs; fan them across the pool and
  // print in the fixed figure order afterwards.
  std::vector<Row> row_points(std::begin(rows), std::end(rows));
  bench::ParallelSweep sweep;
  std::vector<RunResult> results = sweep.map(row_points, [&](const Row& row) {
    return run_technique(row.technique, horizon, migrate_at);
  });

  metrics::Table table({"figure", "technique", "peak (ops/s)",
                        "migration time (s)", "downtime (ms)",
                        "recovery to 90% (s)"});
  std::string dir = bench::out_dir();
  for (std::size_t i = 0; i < row_points.size(); ++i) {
    const Row& row = row_points[i];
    RunResult& r = results[i];
    table.add_row({row.fig, row.label, metrics::Table::num(r.peak, 0),
                   bench::migration_time_cell(r.migration),
                   metrics::Table::num(
                       static_cast<double>(r.migration.downtime) / 1000.0, 0),
                   r.recovery_s < 0 ? "n/a" : metrics::Table::num(r.recovery_s, 0)});
    metrics::write_series_csv(dir + "/" + row.fig + "_" + row.label + ".csv",
                              {&r.avg});
    // Paper-style timeline: one row per 10 s.
    std::printf("\n%s (%s) timeline, ops/s every 20 s:\n", row.fig, row.label);
    for (double t = 0; t <= horizon; t += quick ? 10 : 20) {
      std::printf("  t=%5.0fs  %8.0f\n", t, r.avg.value_at(t));
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  bench::note("Paper reference: migration time 470/247/108 s; recovery to 90% "
              "533/294/215 s (pre/post/agile).");
  bench::note("CSV series written to " + dir);
  bench::footer("fig4_6_ycsb_timeline");
  return 0;
}
