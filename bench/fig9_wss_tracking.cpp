// Figure 9 — dynamic working-set-size tracking: the controller's reservation
// converging onto the true working set of a VM holding a 1.5 GB Redis
// dataset (host 128 GB; α=0.95, β=1.03, τ=4 KB/s, 2 s → 30 s cadence).
#include "bench_common.hpp"
#include "core/scenarios.hpp"

using namespace agile;
namespace scen = core::scenarios;

int main() {
  bench::banner("Figure 9: dynamic WSS tracking");
  const bool quick = bench::quick_mode();

  scen::WssTrackingOptions opt;
  if (quick) {
    opt.host_ram = 8_GiB;
    opt.vm_memory = 2_GiB;
    opt.initial_reservation = 2_GiB;
    opt.dataset = 512_MiB;
    opt.guest_os = 64_MiB;
  }
  scen::WssTracking sc = scen::make_wss_tracking(opt);
  sc.load();
  sc.controller->start();

  const double horizon = quick ? 300 : 900;
  sc.bed->cluster().run_for_seconds(horizon);
  bench::record_run(sc.bed->cluster().simulation().events_executed());

  const metrics::TimeSeries& res = sc.controller->reservation_series();
  const metrics::TimeSeries& rate = sc.controller->swap_rate_series();
  Bytes true_ws = opt.dataset + opt.guest_os;

  std::printf("\nreservation vs true working set (%0.f MiB):\n",
              to_mib(true_ws));
  for (double t = 0; t <= horizon; t += quick ? 10 : 30) {
    std::printf("  t=%5.0fs  reservation %7.0f MiB   swap rate %10.0f B/s\n", t,
                res.value_at(t) / (1024.0 * 1024.0), rate.value_at(t));
  }

  metrics::Table table({"metric", "value"});
  double final_mib = res.value_at(horizon) / (1024.0 * 1024.0);
  table.add_row({"true working set (MiB)", metrics::Table::num(to_mib(true_ws), 0)});
  table.add_row({"final reservation (MiB)", metrics::Table::num(final_mib, 0)});
  table.add_row({"tracking error (%)",
                 metrics::Table::num(
                     100.0 * (final_mib - to_mib(true_ws)) / to_mib(true_ws), 1)});
  table.add_row({"adjustments", std::to_string(sc.controller->adjustments())});
  table.add_row({"stable (30 s cadence)", sc.controller->stable() ? "yes" : "no"});
  std::printf("\n%s\n", table.to_string().c_str());

  std::string dir = bench::out_dir();
  metrics::write_series_csv(dir + "/fig9_wss_tracking.csv", {&res, &rate});
  bench::note("Expected shape: reservation decays from the 5 GB initial value "
              "to just above the ~1.7 GB working set, then holds.");
  bench::footer("fig9_wss_tracking");
  return 0;
}
