// Fleet consolidation at scale — beyond the paper's two-host bed.
//
// N VMs consolidated on host 0 of a multi-host fleet; several working sets
// widen at once, one watermark decision selects multiple victims, and the
// MigrationOrchestrator launches them concurrently, spread best-fit across
// the destination hosts. One sweep point per technique.
//
// Besides the usual table, the bench prints a FLEET_GOLDEN block of purely
// simulation-derived lines (decisions, placements, overlap, bytes) and
// mirrors it to fleet_consolidation_golden.txt — byte-identical for a fixed
// seed at any AGILE_BENCH_JOBS setting, which the bench_smoke determinism
// test diffs. Runs are always executed fresh (no run cache: the result is a
// decision log, not a single-migration CachedRun).
#include <algorithm>
#include <string>

#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
namespace scen = core::scenarios;

namespace {

struct FleetRun {
  core::Technique technique = core::Technique::kAgile;
  std::vector<core::FleetDecision> decisions;
  std::size_t migrations = 0;
  std::size_t completed = 0;
  std::size_t spread_dests = 0;   ///< Distinct destinations used overall.
  bool multi_overlap = false;     ///< ≥2 launches of one decision overlapped.
  double mean_total_s = 0;
  Bytes wire_bytes = 0;
  std::string golden;             ///< Deterministic per-technique block.
};

FleetRun run_fleet(core::Technique technique) {
  scen::FleetOptions opt;
  opt.technique = technique;
  if (!bench::quick_mode()) {
    opt.host_count = 4;
    opt.vm_count = 8;
    opt.hot_vms = 4;
    opt.source_ram = 3_GiB;
  }
  opt.stats = !bench::stats_stem().empty();
  scen::Fleet fleet = scen::make_fleet(opt);
  fleet.load_all();
  fleet.orchestrator->start();
  fleet.bed->cluster().run_for_seconds(bench::quick_mode() ? 400 : 500);
  fleet.orchestrator->stop();
  bench::record_run(fleet.bed->cluster().simulation().events_executed());
  if (fleet.registry != nullptr) {
    bench::write_run_stats(*fleet.registry,
                           std::string("fleet_") +
                               core::technique_name(technique),
                           fleet.bed->cluster().simulation().now());
  }

  FleetRun run;
  run.technique = technique;
  run.decisions = fleet.orchestrator->decisions();
  run.migrations = fleet.orchestrator->migrations_launched();

  std::vector<std::string> dests;
  double total_s = 0;
  for (const auto& m : fleet.orchestrator->migrations()) {
    if (m->completed()) {
      ++run.completed;
      total_s += to_seconds(m->metrics().total_time());
    }
    run.wire_bytes += m->metrics().bytes_transferred;
    dests.push_back(m->dest_host()->name());
  }
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  run.spread_dests = dests.size();
  if (run.completed > 0) {
    run.mean_total_s = total_s / static_cast<double>(run.completed);
  }

  // Golden block: every number below is simulation-derived (no wall clock),
  // so the block is byte-identical for a fixed seed at any job count.
  char line[256];
  std::snprintf(line, sizeof(line), "FLEET_GOLDEN %s migrations=%zu dests=%zu\n",
                core::technique_name(technique), run.migrations,
                run.spread_dests);
  run.golden += line;
  for (std::size_t di = 0; di < run.decisions.size(); ++di) {
    const core::FleetDecision& d = run.decisions[di];
    std::snprintf(line, sizeof(line),
                  "FLEET_GOLDEN %s decision%zu t=%.0f src=%s victims=%zu "
                  "launched=%zu deferred=%u insufficient=%d\n",
                  core::technique_name(technique), di, to_seconds(d.time),
                  d.source_host.c_str(), d.trigger.victims.size(),
                  d.launches.size(), d.deferred, d.trigger.insufficient ? 1 : 0);
    run.golden += line;
    for (const core::FleetLaunch& l : d.launches) {
      std::snprintf(line, sizeof(line),
                    "FLEET_GOLDEN %s   %s->%s reserved_mib=%.0f\n",
                    core::technique_name(technique), l.vm.c_str(),
                    l.dest.c_str(), to_mib(l.reserved_wss));
      run.golden += line;
    }
  }
  // Concurrency proof: overlapping [start, end] windows within one decision.
  for (const core::FleetDecision& d : run.decisions) {
    if (d.launches.size() < 2) continue;
    SimTime max_start = -1, min_end = -1;
    std::size_t found = 0;
    for (const auto& m : fleet.orchestrator->migrations()) {
      for (const core::FleetLaunch& l : d.launches) {
        if (m->machine()->name() != l.vm || !m->completed()) continue;
        if (m->metrics().start_time + sec(1) < d.time) continue;
        ++found;
        max_start = std::max(max_start, m->metrics().start_time);
        min_end = min_end < 0 ? m->metrics().end_time
                              : std::min(min_end, m->metrics().end_time);
      }
    }
    if (found >= 2 && max_start < min_end) {
      run.multi_overlap = true;
      std::snprintf(line, sizeof(line),
                    "FLEET_GOLDEN %s overlap t=%.0f window=[%.1f,%.1f]\n",
                    core::technique_name(technique), to_seconds(d.time),
                    to_seconds(max_start), to_seconds(min_end));
      run.golden += line;
    }
  }
  std::snprintf(line, sizeof(line), "FLEET_GOLDEN %s wire_mib=%.0f\n",
                core::technique_name(technique), to_mib(run.wire_bytes));
  run.golden += line;
  return run;
}

}  // namespace

int main() {
  bench::banner("Fleet consolidation: concurrent watermark-driven migrations");
  const std::vector<core::Technique> techniques = {
      core::Technique::kPrecopy, core::Technique::kPostcopy,
      core::Technique::kAgile, core::Technique::kScatterGather};
  bench::ParallelSweep sweep;
  std::vector<FleetRun> runs = sweep.map(techniques, run_fleet);

  metrics::Table table({"technique", "decisions", "migrations", "completed",
                        "dests used", "multi-victim overlap", "mean time (s)",
                        "wire (MiB)"});
  for (const FleetRun& r : runs) {
    table.add_row({core::technique_name(r.technique),
                   std::to_string(r.decisions.size()),
                   std::to_string(r.migrations), std::to_string(r.completed),
                   std::to_string(r.spread_dests),
                   r.multi_overlap ? "yes" : "no",
                   metrics::Table::num(r.mean_total_s, 1),
                   metrics::Table::num(to_mib(r.wire_bytes), 0)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fleet_consolidation.csv");

  std::string golden;
  for (const FleetRun& r : runs) golden += r.golden;
  std::printf("%s", golden.c_str());
  std::string golden_path = bench::out_dir() + "/fleet_consolidation_golden.txt";
  if (std::FILE* f = std::fopen(golden_path.c_str(), "w")) {
    std::fputs(golden.c_str(), f);
    std::fclose(f);
  }

  bench::note("Expected: one decision launches >=2 concurrent migrations "
              "spread across >=2 destinations (overlap=yes for every "
              "technique); no destination crosses its low watermark.");
  bench::footer("fleet_consolidation");
  return 0;
}
