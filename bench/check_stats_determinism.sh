#!/usr/bin/env bash
# Determinism harness for the AGILE_STATS exports.
#
# Runs the fleet consolidation bench (quick mode) under varying runtime knobs
# and byte-compares the per-technique stats artifacts — the same bar the
# FLEET_GOLDEN block meets. Modes:
#
#   lanes  stats files identical at AGILE_SIM_LANES = 1, 2, 8
#   jobs   stats files identical at AGILE_BENCH_JOBS = 1, 4
#   audit  stats files identical with and without AGILE_AUDIT=1
#   off    with AGILE_STATS unset, the golden block matches the stats-on run
#          (instrumentation must not perturb the simulation)
#
# Usage: check_stats_determinism.sh <fleet_consolidation binary> <mode> <outdir>
set -euo pipefail

bin=$1
mode=$2
out=$3

run() {  # run <dir> [VAR=VAL ...] — one quick fleet bench into $out/<dir>
  local dir="$out/$1"
  shift
  rm -rf "$dir"
  mkdir -p "$dir"
  env AGILE_BENCH_QUICK=1 AGILE_BENCH_JOBS=1 AGILE_BENCH_OUT="$dir" \
      "$@" "$bin" > /dev/null
}

cmp_stats() {  # cmp_stats <dir_a> <dir_b> — diff every stats artifact
  local t
  for t in pre-copy post-copy agile scatter-gather; do
    cmp "$out/$1/s.fleet_${t}.stats.json" "$out/$2/s.fleet_${t}.stats.json"
    cmp "$out/$1/s.fleet_${t}.stats.prom" "$out/$2/s.fleet_${t}.stats.prom"
  done
}

case "$mode" in
  lanes)
    run lanes1 AGILE_STATS="$out/lanes1/s" AGILE_SIM_LANES=1
    run lanes2 AGILE_STATS="$out/lanes2/s" AGILE_SIM_LANES=2
    run lanes8 AGILE_STATS="$out/lanes8/s" AGILE_SIM_LANES=8
    cmp_stats lanes1 lanes2
    cmp_stats lanes1 lanes8
    ;;
  jobs)
    run jobs1 AGILE_STATS="$out/jobs1/s"
    run jobs4 AGILE_STATS="$out/jobs4/s" AGILE_BENCH_JOBS=4
    cmp_stats jobs1 jobs4
    ;;
  audit)
    run plain AGILE_STATS="$out/plain/s"
    run audit AGILE_STATS="$out/audit/s" AGILE_AUDIT=1
    cmp_stats plain audit
    ;;
  off)
    run on AGILE_STATS="$out/on/s"
    run off
    cmp "$out/on/fleet_consolidation_golden.txt" \
        "$out/off/fleet_consolidation_golden.txt"
    ;;
  *)
    echo "unknown mode: $mode" >&2
    exit 2
    ;;
esac
