// Cross-binary result cache for the bench suite.
//
// Tables I–III report three views of the *same six* consolidation
// experiments, and Figures 7–8 two views of the same 36 single-VM runs. Each
// experiment is deterministic, so the first binary to need a run executes it
// and records the outcome under AGILE_BENCH_OUT; the others reuse it. Set
// AGILE_BENCH_FRESH=1 to ignore and rewrite the cache.
//
// Safe under the parallel sweep runner:
//  * cache files are written to a temp name and atomically renamed into
//    place, so a reader never observes a half-written entry;
//  * `cached_run` memoizes in-process behind a mutex — if two tasks ask for
//    the same key, the second blocks on the first's result instead of
//    re-running the experiment;
//  * entries carry a format-version tag; a missing tag, short read or
//    garbled field counts as a miss (logged), never as partial metrics.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <unordered_map>

#include "bench_common.hpp"
#include "migration/migration.hpp"
#include "util/log.hpp"
#include "util/thread_annotations.hpp"

namespace agile::bench {

/// Bumped whenever the on-disk field list changes; older files read as
/// corrupt and are discarded.
inline constexpr const char* kCacheFormatTag = "agilecache.v3";

struct CachedRun {
  migration::MigrationMetrics migration;
  double avg_perf = 0;
};

inline std::string cache_path(const std::string& key) {
  return out_dir() + "/cache_" + key + ".txt";
}

inline bool fresh_mode() {
  const char* env = std::getenv("AGILE_BENCH_FRESH");
  return env != nullptr && env[0] == '1';
}

inline std::optional<CachedRun> load_cached(const std::string& key) {
  if (fresh_mode()) return std::nullopt;
  std::FILE* f = std::fopen(cache_path(key).c_str(), "r");
  if (f == nullptr) return std::nullopt;
  CachedRun r;
  char tag[32] = {0};
  long long start = 0, swo = 0, end = 0, down = 0;
  unsigned long long bytes = 0, full = 0, desc = 0, demand = 0, swapin = 0,
                     dup = 0, zero = 0, saved = 0;
  unsigned rounds = 0;
  int completed = 0;
  int n = std::fscanf(f, "%31s %lld %lld %lld %lld %llu %llu %llu %llu %llu %llu %llu %llu %u %d %lf",
                      tag, &start, &swo, &end, &down, &bytes, &full, &desc,
                      &demand, &swapin, &dup, &zero, &saved, &rounds,
                      &completed, &r.avg_perf);
  std::fclose(f);
  if (n != 16 || std::strcmp(tag, kCacheFormatTag) != 0) {
    AGILE_LOG_WARN("bench cache: discarding corrupt entry '%s' (%s)",
                   cache_path(key).c_str(),
                   n != 16 ? "short/garbled read" : "format-version mismatch");
    return std::nullopt;
  }
  r.migration.start_time = start;
  r.migration.switchover_time = swo;
  r.migration.end_time = end;
  r.migration.downtime = down;
  r.migration.bytes_transferred = bytes;
  r.migration.pages_sent_full = full;
  r.migration.pages_sent_descriptor = desc;
  r.migration.pages_demand_served = demand;
  r.migration.pages_swapped_in_at_source = swapin;
  r.migration.duplicate_pages = dup;
  r.migration.pages_zero_elided = zero;
  r.migration.compressed_bytes_saved = saved;
  r.migration.precopy_rounds = rounds;
  r.migration.completed = completed != 0;
  return r;
}

inline void store_cached(const std::string& key, const CachedRun& r) {
  // Unique temp name per store, then an atomic rename: concurrent sweep
  // workers never expose a torn file to another bench process.
  static std::atomic<std::uint64_t> temp_seq{0};
  std::string final_path = cache_path(key);
  std::string temp_path =
      final_path + ".tmp" + std::to_string(temp_seq.fetch_add(1));
  std::FILE* f = std::fopen(temp_path.c_str(), "w");
  if (f == nullptr) {
    AGILE_LOG_WARN("bench cache: cannot write '%s' (result not cached)",
                   temp_path.c_str());
    return;
  }
  const migration::MigrationMetrics& m = r.migration;
  std::fprintf(f, "%s %lld %lld %lld %lld %llu %llu %llu %llu %llu %llu %llu %llu %u %d %.17g\n",
               kCacheFormatTag,
               static_cast<long long>(m.start_time),
               static_cast<long long>(m.switchover_time),
               static_cast<long long>(m.end_time),
               static_cast<long long>(m.downtime),
               static_cast<unsigned long long>(m.bytes_transferred),
               static_cast<unsigned long long>(m.pages_sent_full),
               static_cast<unsigned long long>(m.pages_sent_descriptor),
               static_cast<unsigned long long>(m.pages_demand_served),
               static_cast<unsigned long long>(m.pages_swapped_in_at_source),
               static_cast<unsigned long long>(m.duplicate_pages),
               static_cast<unsigned long long>(m.pages_zero_elided),
               static_cast<unsigned long long>(m.compressed_bytes_saved),
               m.precopy_rounds, m.completed ? 1 : 0, r.avg_perf);
  std::fclose(f);
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    AGILE_LOG_WARN("bench cache: rename '%s' -> '%s' failed (result not cached)",
                   temp_path.c_str(), final_path.c_str());
    std::remove(temp_path.c_str());
  }
}

/// In-process memoization table behind `cached_run`. A named struct (rather
/// than two loose function-local statics) so the map's guard is declared in
/// the type: the thread-safety analysis rejects any access to `by_key`
/// outside a MutexLock on `mu`.
struct InflightRuns {
  util::Mutex mu;
  std::unordered_map<std::string, std::shared_future<CachedRun>> by_key
      AGILE_GUARDED_BY(mu);
};

inline InflightRuns& inflight_runs() {
  static InflightRuns runs;
  return runs;
}

/// Runs `compute` unless a cached result for `key` exists. Concurrency-safe:
/// the first caller per key computes (or reads the file); later callers —
/// even on other pool workers — block on that result instead of re-running.
/// A `compute` that throws propagates to every waiter of this attempt, but
/// the key is retired from the in-flight table so a later call retries
/// instead of rethrowing the stale exception forever.
template <typename Fn>
CachedRun cached_run(const std::string& key, Fn&& compute) {
  InflightRuns& runs = inflight_runs();
  std::promise<CachedRun> promise;
  std::shared_future<CachedRun> shared;
  bool owner = false;
  {
    util::MutexLock lock(runs.mu);
    auto it = runs.by_key.find(key);
    if (it != runs.by_key.end()) {
      shared = it->second;
    } else {
      owner = true;
      shared = promise.get_future().share();
      runs.by_key.emplace(key, shared);
    }
  }
  if (!owner) {
    note("  [" + key + "] joining in-flight run");
    record_cached_run();
    return shared.get();
  }
  try {
    CachedRun r;
    if (auto hit = load_cached(key)) {
      note("  [" + key + "] from cache (AGILE_BENCH_FRESH=1 to rerun)");
      record_cached_run();
      r = *hit;
    } else {
      note("  [" + key + "] running...");
      r = std::forward<Fn>(compute)();
      store_cached(key, r);
    }
    promise.set_value(r);
    return r;
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      // Waiters already holding the shared_future see this attempt's
      // exception; dropping the entry lets the *next* cached_run(key) retry.
      util::MutexLock lock(runs.mu);
      runs.by_key.erase(key);
    }
    throw;
  }
}

}  // namespace agile::bench
