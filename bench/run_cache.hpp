// Cross-binary result cache for the bench suite.
//
// Tables I–III report three views of the *same six* consolidation
// experiments, and Figures 7–8 two views of the same 36 single-VM runs. Each
// experiment is deterministic, so the first binary to need a run executes it
// and records the outcome under AGILE_BENCH_OUT; the others reuse it. Set
// AGILE_BENCH_FRESH=1 to ignore and rewrite the cache.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "migration/migration.hpp"

namespace agile::bench {

struct CachedRun {
  migration::MigrationMetrics migration;
  double avg_perf = 0;
};

inline std::string cache_path(const std::string& key) {
  return out_dir() + "/cache_" + key + ".txt";
}

inline bool fresh_mode() {
  const char* env = std::getenv("AGILE_BENCH_FRESH");
  return env != nullptr && env[0] == '1';
}

inline std::optional<CachedRun> load_cached(const std::string& key) {
  if (fresh_mode()) return std::nullopt;
  std::FILE* f = std::fopen(cache_path(key).c_str(), "r");
  if (f == nullptr) return std::nullopt;
  CachedRun r;
  long long start = 0, swo = 0, end = 0, down = 0;
  unsigned long long bytes = 0, full = 0, desc = 0, demand = 0, swapin = 0,
                     dup = 0;
  unsigned rounds = 0;
  int completed = 0;
  int n = std::fscanf(f, "%lld %lld %lld %lld %llu %llu %llu %llu %llu %llu %u %d %lf",
                      &start, &swo, &end, &down, &bytes, &full, &desc, &demand,
                      &swapin, &dup, &rounds, &completed, &r.avg_perf);
  std::fclose(f);
  if (n != 13) return std::nullopt;
  r.migration.start_time = start;
  r.migration.switchover_time = swo;
  r.migration.end_time = end;
  r.migration.downtime = down;
  r.migration.bytes_transferred = bytes;
  r.migration.pages_sent_full = full;
  r.migration.pages_sent_descriptor = desc;
  r.migration.pages_demand_served = demand;
  r.migration.pages_swapped_in_at_source = swapin;
  r.migration.duplicate_pages = dup;
  r.migration.precopy_rounds = rounds;
  r.migration.completed = completed != 0;
  return r;
}

inline void store_cached(const std::string& key, const CachedRun& r) {
  std::FILE* f = std::fopen(cache_path(key).c_str(), "w");
  if (f == nullptr) return;
  const migration::MigrationMetrics& m = r.migration;
  std::fprintf(f, "%lld %lld %lld %lld %llu %llu %llu %llu %llu %llu %u %d %.17g\n",
               static_cast<long long>(m.start_time),
               static_cast<long long>(m.switchover_time),
               static_cast<long long>(m.end_time),
               static_cast<long long>(m.downtime),
               static_cast<unsigned long long>(m.bytes_transferred),
               static_cast<unsigned long long>(m.pages_sent_full),
               static_cast<unsigned long long>(m.pages_sent_descriptor),
               static_cast<unsigned long long>(m.pages_demand_served),
               static_cast<unsigned long long>(m.pages_swapped_in_at_source),
               static_cast<unsigned long long>(m.duplicate_pages),
               m.precopy_rounds, m.completed ? 1 : 0, r.avg_perf);
  std::fclose(f);
}

/// Runs `compute` unless a cached result for `key` exists.
template <typename Fn>
CachedRun cached_run(const std::string& key, Fn&& compute) {
  if (auto hit = load_cached(key)) {
    note("  [" + key + "] from cache (AGILE_BENCH_FRESH=1 to rerun)");
    return *hit;
  }
  note("  [" + key + "] running...");
  CachedRun r = compute();
  store_cached(key, r);
  return r;
}

}  // namespace agile::bench
