// Substrate microbenchmarks (google-benchmark): the hot paths the simulator
// leans on — bitmap scans, pagemap walks, eviction sampling, VMD point ops,
// the event queue, and the guest-memory touch fast path. These guard against
// performance regressions that would make the paper-scale experiments
// (hundreds of millions of page accesses) impractical to run.
#include <benchmark/benchmark.h>

#include <memory>

#include "mem/guest_memory.hpp"
#include "mem/pagemap.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "swap/swap_device.hpp"
#include "util/bitmap.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vmd/vmd.hpp"
#include "vmd/vmd_swap_device.hpp"

namespace {

using namespace agile;

void BM_BitmapScanSparse(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Bitmap bm(n);
  Rng rng(1, "bm");
  for (std::size_t i = 0; i < n / 1000 + 1; ++i) bm.set(rng.next_below(n));
  for (auto _ : state) {
    std::size_t found = 0;
    for (std::size_t p = bm.find_next_set(0); p != Bitmap::npos;
         p = bm.find_next_set(p + 1)) {
      ++found;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BitmapScanSparse)->Arg(1 << 16)->Arg(1 << 22);

void BM_BitmapSetClear(benchmark::State& state) {
  Bitmap bm(1 << 22);
  Rng rng(1, "sc");
  for (auto _ : state) {
    std::size_t i = rng.next_below(1 << 22);
    bm.set(i);
    bm.clear(i);
  }
}
BENCHMARK(BM_BitmapSetClear);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(1, "r");
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(2'621'440));
}
BENCHMARK(BM_RngNextBelow);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1, "z");
  ZipfSampler zipf(2'000'000, 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

struct MemFixture {
  std::shared_ptr<storage::SsdModel> ssd = std::make_shared<storage::SsdModel>();
  swap::LocalSwapDevice dev{"swap", ssd, 8_GiB};
  mem::GuestMemory memory;
  MemFixture(Bytes size, Bytes reservation)
      : memory(mem::GuestMemoryConfig{size, reservation, 8}, &dev, Rng(1, "m")) {}
};

void BM_TouchResidentFastPath(benchmark::State& state) {
  MemFixture fx(1_GiB, 1_GiB);
  fx.memory.prefill(fx.memory.page_count(), 0);
  Rng rng(2, "t");
  std::uint32_t tick = 1;
  for (auto _ : state) {
    PageIndex p = rng.next_below(fx.memory.page_count());
    benchmark::DoNotOptimize(fx.memory.touch(p, false, tick));
  }
}
BENCHMARK(BM_TouchResidentFastPath);

void BM_TouchWithEviction(benchmark::State& state) {
  MemFixture fx(1_GiB, 256_MiB);
  fx.memory.prefill(fx.memory.page_count(), 0);
  Rng rng(2, "t");
  std::uint32_t tick = 1;
  for (auto _ : state) {
    PageIndex p = rng.next_below(fx.memory.page_count());
    benchmark::DoNotOptimize(fx.memory.touch(p, false, ++tick));
    fx.ssd->advance(1000);  // keep the device queue from exploding
  }
}
BENCHMARK(BM_TouchWithEviction);

void BM_PagemapWalk(benchmark::State& state) {
  MemFixture fx(1_GiB, 256_MiB);
  fx.memory.prefill(fx.memory.page_count(), 0);
  mem::Pagemap pm(fx.memory);
  for (auto _ : state) {
    std::uint64_t swapped = 0;
    for (PageIndex p = 0; p < pm.page_count(); ++p) {
      swapped += pm.entry(p).swapped;
    }
    benchmark::DoNotOptimize(swapped);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.memory.page_count()));
}
BENCHMARK(BM_PagemapWalk);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// The periodic-reschedule path: the cluster quantum fires 10x per simulated
// second, so re-arming must not allocate a closure per firing.
void BM_EventQueuePeriodicFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t fires = 0;
    auto task = sim.schedule_periodic(10, [&](SimTime) { ++fires; });
    sim.run_until(10'000);
    task->cancel();
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueuePeriodicFire);

// Sweep-pool dispatch overhead: submit/drain a batch of trivial tasks. The
// bench suite's tasks are whole simulations, so anything under ~10 µs per
// dispatch is invisible; this guards against pathological regressions.
void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  util::ThreadPool pool(2);
  for (auto _ : state) {
    std::vector<std::future<int>> futures;
    futures.reserve(64);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([i] { return i; }));
    }
    int sum = 0;
    for (auto& f : futures) sum += f.get();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ThreadPoolSubmitDrain);

void BM_NetworkAdvanceManyFlows(benchmark::State& state) {
  net::Network net;
  net::NodeId a = net.add_node("a"), b = net.add_node("b");
  std::vector<net::FlowId> flows;
  for (int i = 0; i < 8; ++i) {
    flows.push_back(net.open_flow(a, b, [](Bytes) {}));
  }
  for (auto _ : state) {
    for (net::FlowId f : flows) net.offer(f, 1_MiB);
    net.advance(msec(100));
  }
}
BENCHMARK(BM_NetworkAdvanceManyFlows);

void BM_VmdWriteReadPair(benchmark::State& state) {
  net::Network net;
  net::NodeId client_node = net.add_node("c");
  net::NodeId server_node = net.add_node("s");
  vmd::VmdServer server("s", server_node, {.capacity = 32_GiB, .service_time = 3});
  vmd::VmdClient client(&net, client_node);
  client.register_server(&server);
  vmd::VmdSwapDevice dev("blk", &client, 16_GiB);
  for (auto _ : state) {
    swap::SwapSlot slot = dev.allocate_slot();
    dev.write_page(slot);
    benchmark::DoNotOptimize(dev.read_page(slot));
    dev.free_slot(slot);
  }
}
BENCHMARK(BM_VmdWriteReadPair);

void BM_SsdSubmitRead(benchmark::State& state) {
  storage::SsdModel ssd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.submit_read(kPageSize));
    ssd.advance(200);
  }
}
BENCHMARK(BM_SsdSubmitRead);

}  // namespace

BENCHMARK_MAIN();
