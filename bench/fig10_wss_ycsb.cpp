// Figure 10 — YCSB client throughput while the reservation controller of
// Figure 9 dynamically resizes the VM's memory reservation. Transient dips
// appear when the controller undershoots; the client recovers quickly.
#include "bench_common.hpp"
#include "core/scenarios.hpp"

using namespace agile;
namespace scen = core::scenarios;

int main() {
  bench::banner("Figure 10: YCSB throughput under dynamic reservation");
  const bool quick = bench::quick_mode();

  scen::WssTrackingOptions opt;
  if (quick) {
    opt.host_ram = 8_GiB;
    opt.vm_memory = 2_GiB;
    opt.initial_reservation = 2_GiB;
    opt.dataset = 512_MiB;
    opt.guest_os = 64_MiB;
  }
  scen::WssTracking sc = scen::make_wss_tracking(opt);
  sc.load();

  // A short untracked lead-in establishes the baseline throughput.
  const double lead_in = quick ? 30 : 60;
  sc.bed->cluster().run_for_seconds(lead_in);
  sc.controller->start();
  const double horizon = quick ? 300 : 900;
  sc.bed->cluster().run_for_seconds(horizon - lead_in);
  bench::record_run(sc.bed->cluster().simulation().events_executed());

  const metrics::TimeSeries& tput = sc.probe->series();
  double baseline = tput.mean_between(5, lead_in);
  double tracked = tput.mean_between(lead_in, horizon);
  double worst = baseline;
  for (const metrics::Sample& s : tput.samples()) {
    if (s.t > lead_in && s.value < worst) worst = s.value;
  }

  std::printf("\nYCSB throughput (ops/s):\n");
  for (double t = 0; t <= horizon; t += quick ? 10 : 30) {
    std::printf("  t=%5.0fs  %8.0f\n", t, tput.value_at(t));
  }

  metrics::Table table({"metric", "value"});
  table.add_row({"baseline ops/s (untracked)", metrics::Table::num(baseline, 0)});
  table.add_row({"mean ops/s while tracked", metrics::Table::num(tracked, 0)});
  table.add_row({"overhead (%)",
                 metrics::Table::num(100.0 * (baseline - tracked) /
                                         std::max(baseline, 1.0), 1)});
  table.add_row({"worst 1 s dip (ops/s)", metrics::Table::num(worst, 0)});
  std::printf("\n%s\n", table.to_string().c_str());

  metrics::write_series_csv(bench::out_dir() + "/fig10_wss_ycsb.csv", {&tput});
  bench::note("Expected shape: throughput near baseline with brief dips right "
              "after reservation shrinks; quick recovery each time.");
  bench::footer("fig10_wss_ycsb");
  return 0;
}
