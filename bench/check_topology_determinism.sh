#!/usr/bin/env bash
# Determinism harness for the leaf-spine topology bench.
#
# Runs fleet_topology (quick mode) under varying runtime knobs and
# byte-compares the TOPO_GOLDEN block — rebalancer rounds, every move with
# its rack crossing, and per-tier byte totals must not depend on how the
# simulation was executed:
#
#   AGILE_SIM_LANES   1, 2, 8  (sharded event lanes)
#   AGILE_BENCH_JOBS  1, 4     (sweep workers)
#   AGILE_AUDIT       unset, 1 (lookahead audit runtime)
#
# Usage: check_topology_determinism.sh <fleet_topology binary> <outdir>
set -euo pipefail

bin=$1
out=$2

run() {  # run <dir> [VAR=VAL ...] — one quick topology bench into $out/<dir>
  local dir="$out/$1"
  shift
  rm -rf "$dir"
  mkdir -p "$dir"
  env AGILE_BENCH_QUICK=1 AGILE_BENCH_JOBS=1 AGILE_BENCH_OUT="$dir" \
      "$@" "$bin" > /dev/null
}

run base
run lanes2 AGILE_SIM_LANES=2
run lanes8 AGILE_SIM_LANES=8
run jobs4 AGILE_BENCH_JOBS=4
run audit AGILE_AUDIT=1

for v in lanes2 lanes8 jobs4 audit; do
  cmp "$out/base/fleet_topology_golden.txt" \
      "$out/$v/fleet_topology_golden.txt"
done
