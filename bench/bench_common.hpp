// Shared helpers for the per-figure/table benchmark binaries.
//
// Every bench prints the paper-style table on stdout and mirrors raw series
// into CSV files under bench_out/ (override with AGILE_BENCH_OUT). Set
// AGILE_BENCH_QUICK=1 to run a scaled-down version of each experiment (CI
// smoke mode — shapes still hold, absolute numbers shrink).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "metrics/table.hpp"

namespace agile::bench {

inline std::string out_dir() {
  const char* env = std::getenv("AGILE_BENCH_OUT");
  std::string dir = env != nullptr ? env : "bench_out";
  metrics::ensure_dir(dir);
  return dir;
}

inline bool quick_mode() {
  const char* env = std::getenv("AGILE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
  if (quick_mode()) std::printf("(quick mode: scaled-down parameters)\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace agile::bench
