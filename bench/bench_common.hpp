// Shared helpers for the per-figure/table benchmark binaries.
//
// Every bench prints the paper-style table on stdout and mirrors raw series
// into CSV files under bench_out/ (override with AGILE_BENCH_OUT). Knobs:
//
//   AGILE_BENCH_QUICK=1  scaled-down experiments (CI smoke mode — shapes
//                        still hold, absolute numbers shrink)
//   AGILE_BENCH_JOBS=N   worker threads for sweep execution (default:
//                        hardware concurrency; 1 forces serial in-thread)
//   AGILE_BENCH_FRESH=1  ignore and rewrite the cross-binary run cache
//   AGILE_TRACE=out.json record a Chrome trace per freshly executed run,
//                        written to out.json.<run-key>.json (cached runs
//                        re-use prior results and record nothing)
//   AGILE_STATS=stem     record deterministic metrics snapshots per freshly
//                        executed run, written to stem.<run-key>.stats.json
//                        (+ .stats.prom); byte-identical across reruns, lane
//                        counts and job counts (see src/stats)
//
// Each bench ends with a timing footer (see `footer`) so sweep speedups are
// measurable: wall-clock, jobs, runs executed vs served from cache, total
// simulation events and events/second.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "metrics/table.hpp"
#include "migration/migration.hpp"
#include "stats/stats.hpp"

namespace agile::bench {

/// Output directory, created once. Function-local static so concurrent sweep
/// workers never race on mkdir and repeated calls cost a load, not a stat.
inline const std::string& out_dir() {
  static const std::string dir = [] {
    const char* env = std::getenv("AGILE_BENCH_OUT");
    std::string d = env != nullptr ? env : "bench_out";
    metrics::ensure_dir(d);
    return d;
  }();
  return dir;
}

inline bool quick_mode() {
  const char* env = std::getenv("AGILE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

/// Worker count for sweep execution: AGILE_BENCH_JOBS if set (floored at 1),
/// otherwise hardware concurrency.
inline unsigned sweep_jobs() {
  static const unsigned jobs = [] {
    if (const char* env = std::getenv("AGILE_BENCH_JOBS")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
  }();
  return jobs;
}

/// Trace output stem from AGILE_TRACE, or empty when tracing is off. Each
/// freshly executed run appends its cache key: `<stem>.<key>.json`.
inline const std::string& trace_stem() {
  static const std::string stem = [] {
    const char* env = std::getenv("AGILE_TRACE");
    return std::string(env != nullptr ? env : "");
  }();
  return stem;
}

/// Stats output stem from AGILE_STATS, or empty when stats are off. Each
/// freshly executed run writes `<stem>.<key>.stats.json` (snapshots) and
/// `<stem>.<key>.stats.prom` (final Prometheus exposition).
inline const std::string& stats_stem() {
  static const std::string stem = [] {
    const char* env = std::getenv("AGILE_STATS");
    return std::string(env != nullptr ? env : "");
  }();
  return stem;
}

/// Writes one run's registry under the AGILE_STATS stem: snapshots JSON to
/// `<stem>.<key>.stats.json` and the final Prometheus exposition to
/// `<stem>.<key>.stats.prom`. Failures warn inside the registry's writer
/// (the Status is intentionally not re-raised on bench paths).
inline void write_run_stats(const stats::Registry& registry,
                            const std::string& key, stats::StatsTime now) {
  const std::string base = stats_stem() + "." + key + ".stats";
  (void)registry.write_snapshots_json(base + ".json");
  (void)registry.write_prometheus(base + ".prom", now);
}

/// Process-wide sweep accounting, fed by the runners and printed by `footer`.
/// The counters are commutative sums bumped from sweep workers, hence
/// atomics (relaxed order is enough: `footer` reads them after the sweep's
/// futures have joined). `wall_start` is deliberately plain — it is written
/// by `banner` before the pool fans out and read by `footer` after it joins,
/// both on the main thread.
struct SweepStats {
  std::atomic<std::uint64_t> runs_executed{0};
  std::atomic<std::uint64_t> runs_cached{0};
  std::atomic<std::uint64_t> runs_incomplete{0};
  std::atomic<std::uint64_t> sim_events{0};
  std::chrono::steady_clock::time_point wall_start =
      std::chrono::steady_clock::now();
};

inline SweepStats& sweep_stats() {
  static SweepStats stats;
  return stats;
}

/// Records one freshly executed simulation and the events it ran.
inline void record_run(std::uint64_t events_executed) {
  sweep_stats().runs_executed.fetch_add(1, std::memory_order_relaxed);
  sweep_stats().sim_events.fetch_add(events_executed,
                                     std::memory_order_relaxed);
}

/// Records one result served from the cross-binary cache.
inline void record_cached_run() {
  sweep_stats().runs_cached.fetch_add(1, std::memory_order_relaxed);
}

/// Records a run whose migration hit the time limit without completing.
/// Tables print "n/a" for such points; the footer carries an `incomplete`
/// flag instead of leaking the -1 sentinel as a negative time.
inline void record_incomplete_run() {
  sweep_stats().runs_incomplete.fetch_add(1, std::memory_order_relaxed);
}

/// Migration-time table cell: "n/a" when the run never completed, in which
/// case `total_time()` is the -1 sentinel, not a duration.
inline std::string migration_time_cell(const migration::MigrationMetrics& m) {
  if (!m.completed) return "n/a";
  return metrics::Table::num(to_seconds(m.total_time()), 1);
}

inline void banner(const std::string& title) {
  sweep_stats().wall_start = std::chrono::steady_clock::now();
  std::printf("\n==== %s ====\n", title.c_str());
  if (quick_mode()) std::printf("(quick mode: scaled-down parameters)\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Timing footer; every bench prints this last.
/// Format: `[timing] wall 3.21 s | jobs 4 | runs 36 (+2 cached) | 45123456
/// sim events | 14.1M events/s`.
/// When `name` is non-empty, the same numbers are mirrored machine-readably
/// to `<out_dir>/BENCH_<name>.json` so CI can diff sweep throughput across
/// commits without scraping stdout. `extra_json` lets a bench append its own
/// result fields to that file: complete `"key": value` lines, two-space
/// indented, no leading or trailing comma.
inline void footer(const std::string& name = "",
                   const std::string& extra_json = "") {
  const SweepStats& s = sweep_stats();
  double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              s.wall_start)
                    .count();
  std::uint64_t events = s.sim_events.load(std::memory_order_relaxed);
  std::uint64_t executed = s.runs_executed.load(std::memory_order_relaxed);
  std::uint64_t cached = s.runs_cached.load(std::memory_order_relaxed);
  std::uint64_t incomplete = s.runs_incomplete.load(std::memory_order_relaxed);
  double rate = wall > 0 ? static_cast<double>(events) / wall : 0;
  char rate_str[32];
  if (rate >= 1e6) {
    std::snprintf(rate_str, sizeof(rate_str), "%.1fM", rate / 1e6);
  } else {
    std::snprintf(rate_str, sizeof(rate_str), "%.0f", rate);
  }
  std::printf(
      "[timing] wall %.2f s | jobs %u | runs %llu (+%llu cached) | "
      "%llu sim events | %s events/s\n",
      wall, sweep_jobs(), static_cast<unsigned long long>(executed),
      static_cast<unsigned long long>(cached),
      static_cast<unsigned long long>(events), rate_str);
  if (incomplete > 0) {
    std::printf("[timing] WARNING: %llu run(s) hit the migration time limit\n",
                static_cast<unsigned long long>(incomplete));
  }
  if (name.empty()) return;
  std::string path = out_dir() + "/BENCH_" + name + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"quick\": %s,\n"
                 "  \"wall_seconds\": %.3f,\n"
                 "  \"jobs\": %u,\n"
                 "  \"runs_executed\": %llu,\n"
                 "  \"runs_cached\": %llu,\n"
                 "  \"runs_incomplete\": %llu,\n"
                 "  \"incomplete\": %s,\n"
                 "  \"sim_events\": %llu,\n"
                 "  \"events_per_sec\": %.0f",
                 name.c_str(), quick_mode() ? "true" : "false", wall,
                 sweep_jobs(), static_cast<unsigned long long>(executed),
                 static_cast<unsigned long long>(cached),
                 static_cast<unsigned long long>(incomplete),
                 incomplete > 0 ? "true" : "false",
                 static_cast<unsigned long long>(events), rate);
    if (!extra_json.empty()) std::fprintf(f, ",\n%s", extra_json.c_str());
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }
}

}  // namespace agile::bench
