// Figure 7 — total migration time vs VM memory size (2–12 GB) on a 6 GB
// host, for an idle and a busy VM, under pre-copy, post-copy and Agile.
//
// Expected shape (paper §V-B1): pre/post-copy grow with VM size and jump
// once the VM exceeds host memory (swap-ins, thrashing — much worse busy);
// Agile stays flat past 6 GB because it never touches the swapped pages.
//
// Shares (cached) runs with fig8_data_transferred — the paper derives both
// figures from the same experiments.
#include "bench_common.hpp"
#include "parallel_sweep.hpp"
#include "single_vm_runner.hpp"

using namespace agile;
using core::Technique;

int main() {
  bench::banner("Figure 7: total migration time vs VM size");
  std::vector<bench::SingleVmPoint> points = bench::single_vm_points();
  bench::ParallelSweep sweep;
  std::vector<bench::CachedRun> runs = sweep.map(points, bench::run_single_vm_point);

  metrics::Table table({"VM size (GB)", "busy", "technique",
                        "migration time (s)", "downtime (ms)",
                        "swap-ins at source"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bench::SingleVmPoint& pt = points[i];
    const migration::MigrationMetrics& m = runs[i].migration;
    table.add_row(
        {metrics::Table::num(to_gib(pt.size), 1), pt.busy ? "busy" : "idle",
         core::technique_name(pt.technique),
         m.completed ? metrics::Table::num(to_seconds(m.total_time()), 1)
                     : "DNF",
         metrics::Table::num(static_cast<double>(m.downtime) / 1000.0, 0),
         std::to_string(m.pages_swapped_in_at_source)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fig7_migration_time.csv");
  bench::note("Expected shape: baselines grow with VM size (busy >> idle past "
              "host RAM); Agile flat once the VM exceeds host memory.");
  bench::footer("fig7_migration_time");
  return 0;
}
