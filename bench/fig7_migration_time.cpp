// Figure 7 — total migration time vs VM memory size (2–12 GB) on a 6 GB
// host, for an idle and a busy VM, under pre-copy, post-copy and Agile.
//
// Expected shape (paper §V-B1): pre/post-copy grow with VM size and jump
// once the VM exceeds host memory (swap-ins, thrashing — much worse busy);
// Agile stays flat past 6 GB because it never touches the swapped pages.
//
// Shares (cached) runs with fig8_data_transferred — the paper derives both
// figures from the same experiments.
#include "bench_common.hpp"
#include "single_vm_runner.hpp"

using namespace agile;
using core::Technique;

int main() {
  bench::banner("Figure 7: total migration time vs VM size");
  const Technique techniques[] = {Technique::kPrecopy, Technique::kPostcopy,
                                  Technique::kAgile};
  metrics::Table table({"VM size (GB)", "busy", "technique",
                        "migration time (s)", "downtime (ms)",
                        "swap-ins at source"});
  for (bool busy : {false, true}) {
    for (Bytes size : bench::single_vm_sizes()) {
      for (Technique technique : techniques) {
        bench::CachedRun r = bench::run_single_vm(technique, size, busy);
        const migration::MigrationMetrics& m = r.migration;
        table.add_row(
            {metrics::Table::num(to_gib(size), 1), busy ? "busy" : "idle",
             core::technique_name(technique),
             m.completed ? metrics::Table::num(to_seconds(m.total_time()), 1)
                         : "DNF",
             metrics::Table::num(static_cast<double>(m.downtime) / 1000.0, 0),
             std::to_string(m.pages_swapped_in_at_source)});
      }
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fig7_migration_time.csv");
  bench::note("Expected shape: baselines grow with VM size (busy >> idle past "
              "host RAM); Agile flat once the VM exceeds host memory.");
  return 0;
}
