// Stream scaling — total migration time vs parallel wire streams and
// modeled compression, per technique, on two network shapes:
//
//  * fat:  10 Gbps NIC with a 1 Gbps per-flow cap (a single TCP connection
//          cannot fill the pipe — PMigrate's motivating setup). Parallel
//          streams multiply the achievable rate until the NIC saturates.
//  * 1g:   the paper's 1 Gbps testbed, no per-flow cap. One flow already
//          saturates the NIC, so extra streams must NOT help — this column
//          is the control.
//
// Compression trades sender CPU for wire bytes: `fast` (LZO-class) is nearly
// free and shrinks the wire, `heavy` (zlib-class) compresses harder but can
// turn a wire-bound migration into a CPU-bound one. A fifth of the guest is
// all-zero pages, so zero-page elision contributes on every row.
//
// The deterministic per-run block is mirrored to stream_scaling_golden.txt
// (byte-identical across AGILE_BENCH_JOBS), and the fat-pipe 4-stream
// speedup per technique lands in BENCH_stream_scaling.json.
#include <map>

#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "parallel_sweep.hpp"
#include "run_cache.hpp"
#include "util/log.hpp"

using namespace agile;
using core::Technique;
using migration::Compression;

namespace {

struct Point {
  const char* scenario;  // "fat" or "1g"
  Technique technique;
  std::uint32_t streams;
  Compression compression;
};

bench::CachedRun run_point(const Point& pt) {
  const bool quick = bench::quick_mode();
  char key[128];
  std::snprintf(key, sizeof(key), "streamscale_%s_%s_s%u_%s%s", pt.scenario,
                core::technique_name(pt.technique), pt.streams,
                migration::compression_name(pt.compression),
                quick ? "_quick" : "");
  return bench::cached_run(key, [&] {
    core::scenarios::SingleVmOptions opt;
    opt.technique = pt.technique;
    opt.host_ram = quick ? 1_GiB : 6_GiB;
    opt.vm_memory = quick ? 512_MiB : 4_GiB;
    opt.num_streams = pt.streams;
    opt.compression = pt.compression;
    opt.zero_page_fraction = 0.2;
    if (std::strcmp(pt.scenario, "fat") == 0) {
      opt.link_bits_per_sec = 10e9;
      opt.flow_max_bits_per_sec = 1e9;
      // One quantum of the aggregate rate (up to ~100 MB at 8 Gbps / 100 ms)
      // or the streams run dry between scheduling quanta.
      opt.send_window = 128_MiB;
    }
    opt.trace = !bench::trace_stem().empty();
    core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    bench::record_run(sc.bed->cluster().simulation().events_executed());
    if (!sc.migration->metrics().completed) bench::record_incomplete_run();
    if (sc.session != nullptr) {
      Status st = sc.session->recorder().write_chrome_json(
          bench::trace_stem() + "." + key + ".json");
      if (!st.is_ok()) AGILE_LOG_WARN("%s", st.message().c_str());
    }
    bench::CachedRun r;
    r.migration = sc.migration->metrics();
    return r;
  });
}

}  // namespace

int main() {
  bench::banner("Stream scaling: streams x compression x technique");
  const Technique techniques[] = {Technique::kPrecopy, Technique::kPostcopy,
                                  Technique::kAgile,
                                  Technique::kScatterGather};
  const std::vector<std::uint32_t> stream_counts =
      bench::quick_mode() ? std::vector<std::uint32_t>{1, 4}
                          : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<Compression> compressions =
      bench::quick_mode()
          ? std::vector<Compression>{Compression::kOff, Compression::kFast}
          : std::vector<Compression>{Compression::kOff, Compression::kFast,
                                     Compression::kHeavy};

  std::vector<Point> points;
  for (const char* scenario : {"fat", "1g"}) {
    for (Technique technique : techniques) {
      for (std::uint32_t streams : stream_counts) {
        for (Compression compression : compressions) {
          points.push_back({scenario, technique, streams, compression});
        }
      }
    }
  }
  bench::ParallelSweep sweep;
  std::vector<bench::CachedRun> runs = sweep.map(points, run_point);

  metrics::Table table({"net", "technique", "streams", "compression",
                        "migration time (s)", "downtime (ms)", "wire (MiB)",
                        "zero elided", "saved (MiB)"});
  std::string golden;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const migration::MigrationMetrics& m = runs[i].migration;
    table.add_row({pt.scenario, core::technique_name(pt.technique),
                   std::to_string(pt.streams),
                   migration::compression_name(pt.compression),
                   bench::migration_time_cell(m),
                   metrics::Table::num(static_cast<double>(m.downtime) / 1000.0, 0),
                   metrics::Table::num(to_mib(m.bytes_transferred), 0),
                   std::to_string(m.pages_zero_elided),
                   metrics::Table::num(to_mib(m.compressed_bytes_saved), 0)});
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%s %s s%u %s total_us=%lld downtime_us=%lld wire=%llu "
                  "full=%llu desc=%llu zero=%llu saved=%llu demand=%llu\n",
                  pt.scenario, core::technique_name(pt.technique), pt.streams,
                  migration::compression_name(pt.compression),
                  static_cast<long long>(m.total_time()),
                  static_cast<long long>(m.downtime),
                  static_cast<unsigned long long>(m.bytes_transferred),
                  static_cast<unsigned long long>(m.pages_sent_full),
                  static_cast<unsigned long long>(m.pages_sent_descriptor),
                  static_cast<unsigned long long>(m.pages_zero_elided),
                  static_cast<unsigned long long>(m.compressed_bytes_saved),
                  static_cast<unsigned long long>(m.pages_demand_served));
    golden += line;
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/stream_scaling.csv");
  std::printf("%s", golden.c_str());
  std::string golden_path = bench::out_dir() + "/stream_scaling_golden.txt";
  if (std::FILE* f = std::fopen(golden_path.c_str(), "w")) {
    std::fputs(golden.c_str(), f);
    std::fclose(f);
  }

  // Headline number: on the fat pipe, how much faster is 4 streams than 1
  // (both uncompressed) per technique?
  std::map<std::string, double> base_s, four_s;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const migration::MigrationMetrics& m = runs[i].migration;
    if (std::strcmp(pt.scenario, "fat") != 0 ||
        pt.compression != Compression::kOff || !m.completed) {
      continue;
    }
    if (pt.streams == 1) base_s[core::technique_name(pt.technique)] =
        to_seconds(m.total_time());
    if (pt.streams == 4) four_s[core::technique_name(pt.technique)] =
        to_seconds(m.total_time());
  }
  std::string extra = "  \"fat_4stream_speedup\": {";
  double best = 0;
  std::string best_tech;
  bool first = true;
  for (const auto& [tech, t1] : base_s) {
    auto it = four_s.find(tech);
    if (it == four_s.end() || it->second <= 0) continue;
    double speedup = t1 / it->second;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.2f", first ? "" : ", ",
                  tech.c_str(), speedup);
    extra += buf;
    first = false;
    bench::note("  fat pipe, " + tech + ": 4 streams are " +
                metrics::Table::num(speedup, 2) + "x faster than 1");
    if (speedup > best) {
      best = speedup;
      best_tech = tech;
    }
  }
  extra += "},\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  \"fat_4stream_speedup_best\": %.2f,\n"
                  "  \"fat_4stream_speedup_best_technique\": \"%s\"",
                  best, best_tech.c_str());
    extra += buf;
  }

  bench::note("Expected: on the fat pipe (per-flow cap) time drops ~linearly "
              "with streams until the NIC or the sender CPU saturates; on the "
              "1 Gbps control extra streams change nothing. `heavy` can be "
              "slower than `fast` once compression CPU dominates.");
  bench::footer("stream_scaling", extra);
  return 0;
}
