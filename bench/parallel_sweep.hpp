// Parallel sweep execution for the bench suite.
//
// Every figure/table is a sweep of fully independent, deterministic
// simulations — one `(technique, size, busy)` point or consolidation
// scenario per run. `ParallelSweep` fans those points across a fixed
// `util::ThreadPool` and hands results back in input order, so table
// assembly is identical to the old serial loops. Each task constructs its
// own `Simulation`/`Rng` (the scenario factories already do), which keeps
// every point bit-deterministic regardless of scheduling order.
//
// With one job (AGILE_BENCH_JOBS=1) no pool is created and points run
// inline on the calling thread — the exact serial behaviour, useful both as
// the speedup baseline and for debugging.
//
// Concurrency contract: ParallelSweep itself holds no shared mutable state
// (results travel through futures; `map` blocks until every point joined),
// so there is nothing to lock. Sweep tasks are exempt from the lane rules in
// tools/lane_lint.py because each task owns its entire Simulation — the lane
// rules police tasks that *share* one simulation, i.e. the lane pool in
// src/sim (and bench/ is outside the lint's scan scope for exactly this
// reason).
#pragma once

#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"

namespace agile::bench {

class ParallelSweep {
 public:
  explicit ParallelSweep(unsigned jobs = sweep_jobs()) : jobs_(jobs) {
    if (jobs_ > 1) pool_ = std::make_unique<util::ThreadPool>(jobs_);
  }

  unsigned jobs() const { return jobs_; }

  /// Runs `fn(point)` for every sweep point and returns the results in input
  /// order. Blocks until the whole sweep finishes; a point that throws
  /// rethrows here (after the remaining points were still executed).
  template <typename Point, typename Fn>
  auto map(const std::vector<Point>& points, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const Point&>> {
    using R = std::invoke_result_t<Fn&, const Point&>;
    if (pool_ == nullptr) {
      std::vector<R> results;
      results.reserve(points.size());
      for (const Point& p : points) results.push_back(fn(p));
      return results;
    }
    std::vector<std::future<R>> futures;
    futures.reserve(points.size());
    for (const Point& p : points) {
      futures.push_back(pool_->submit([&fn, &p] { return fn(p); }));
    }
    std::vector<R> results;
    results.reserve(points.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  }

 private:
  unsigned jobs_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace agile::bench
