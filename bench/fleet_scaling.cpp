// Lane scaling: how far the sharded event lanes (sim/lanes.hpp) push one
// scenario's wall-clock as the fleet grows.
//
// A spread fleet (one VM per host, hotspot on a quarter of them) runs under
// the orchestrator for a fixed simulated horizon at hosts {8, 64, 256} ×
// lanes {1, 2, 4, 8}. Every point with the same host count must produce an
// identical result digest — the lanes are a pure execution strategy — which
// this bench CHECKs against the lanes=1 baseline before reporting speedups.
//
// Points run strictly serially (never through ParallelSweep): lane workers
// are the parallelism under measurement, and concurrent points would steal
// their cores. The footer's BENCH_fleet_scaling.json carries the per-point
// events/s table plus the headline verdict: `speedup_64h_8lanes` and
// `meets_1_5x` (the acceptance bar for this optimisation).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/scenarios.hpp"

using namespace agile;
namespace scen = core::scenarios;

namespace {

struct ScaleResult {
  std::uint32_t hosts = 0;
  std::uint32_t lanes = 0;
  double wall_s = 0;
  std::uint64_t events = 0;  ///< Coordinator events (lane-count independent).
  double events_per_sec = 0;
  double speedup = 1.0;      ///< vs the lanes=1 point of the same fleet.
  std::string digest;        ///< Simulation-derived; must match across lanes.
};

double horizon_seconds(std::uint32_t hosts) {
  if (bench::quick_mode()) return 30;
  if (hosts <= 8) return 120;
  if (hosts <= 64) return 60;
  return 20;
}

ScaleResult run_point(std::uint32_t hosts, std::uint32_t lanes) {
  scen::FleetOptions opt;
  opt.host_count = hosts;
  opt.vm_count = hosts;  // one VM per host once spread
  opt.hot_vms = std::max(1u, hosts / 4);
  opt.hot_at = sec(10);
  opt.spread_initial = true;
  opt.source_ram = 2_GiB;
  opt.dest_ram = 2_GiB;
  opt.lanes = lanes;
  // Scale VMD capacity with the fleet: stay far above the lane planner's
  // near-full safety margin so no point collapses onto one lane.
  opt.vmd_server_capacity = static_cast<Bytes>(hosts) * 2_GiB;

  scen::Fleet fleet = scen::make_fleet(opt);
  fleet.load_all();

  auto wall_start = std::chrono::steady_clock::now();
  fleet.orchestrator->start();
  fleet.bed->cluster().run_for_seconds(horizon_seconds(hosts));
  fleet.orchestrator->stop();

  ScaleResult r;
  r.hosts = hosts;
  r.lanes = lanes;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           wall_start)
                 .count();
  r.events = fleet.bed->cluster().simulation().events_executed();
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  bench::record_run(r.events);

  std::uint64_t ops = 0;
  for (const workload::YcsbWorkload* y : fleet.ycsbs) ops += y->ops_total();
  std::size_t completed = 0;
  Bytes wire = 0;
  for (const auto& m : fleet.orchestrator->migrations()) {
    if (m->completed()) ++completed;
    wire += m->metrics().bytes_transferred;
  }
  // No event counts in the digest: host-bound one-shots live on the sim heap
  // at lanes=1 but in the lane mailbox at lanes>1, so the counters are not
  // comparable across lane counts (the speedup column uses wall ratios).
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hosts=%u now=%lld ops=%llu migs=%zu done=%zu wire=%llu",
                hosts,
                static_cast<long long>(
                    fleet.bed->cluster().simulation().now()),
                static_cast<unsigned long long>(ops),
                fleet.orchestrator->migrations_launched(), completed,
                static_cast<unsigned long long>(wire));
  r.digest = buf;
  return r;
}

}  // namespace

int main() {
  bench::banner("Fleet scaling: sharded event lanes vs fleet size");
  const std::vector<std::uint32_t> host_counts =
      bench::quick_mode() ? std::vector<std::uint32_t>{8}
                          : std::vector<std::uint32_t>{8, 64, 256};
  const std::vector<std::uint32_t> lane_counts =
      bench::quick_mode() ? std::vector<std::uint32_t>{1, 2}
                          : std::vector<std::uint32_t>{1, 2, 4, 8};

  metrics::Table table({"hosts", "lanes", "wall (s)", "sim events", "events/s",
                        "speedup", "digest"});
  std::string points_json;
  double speedup_64h_8lanes = 0;
  bool have_64h_8lanes = false;
  for (std::uint32_t hosts : host_counts) {
    ScaleResult base;
    for (std::uint32_t lanes : lane_counts) {
      ScaleResult r = run_point(hosts, lanes);
      if (lanes == 1) {
        base = r;
      } else {
        AGILE_CHECK_MSG(r.digest == base.digest,
                        "lane-count changed the simulation result");
      }
      r.speedup = r.wall_s > 0 ? base.wall_s / r.wall_s : 1.0;
      if (hosts == 64 && lanes == 8) {
        speedup_64h_8lanes = r.speedup;
        have_64h_8lanes = true;
      }
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%.0fk",
                    r.events_per_sec / 1000.0);
      table.add_row({std::to_string(hosts), std::to_string(lanes),
                     metrics::Table::num(r.wall_s, 2),
                     std::to_string(r.events), rate,
                     metrics::Table::num(r.speedup, 2),
                     lanes == 1 ? "base" : "match"});
      char point[256];
      std::snprintf(point, sizeof(point),
                    "    {\"hosts\": %u, \"lanes\": %u, \"wall_seconds\": "
                    "%.3f, \"events_per_sec\": %.0f, \"speedup_vs_1lane\": "
                    "%.3f}",
                    hosts, lanes, r.wall_s, r.events_per_sec, r.speedup);
      if (!points_json.empty()) points_json += ",\n";
      points_json += point;
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fleet_scaling.csv");

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  bench::note("Expected: identical digests down each host column (lanes are "
              "an execution strategy, not a model change); speedup grows "
              "with the fleet and the headline 64-host point reaches 1.5x "
              "at 8 lanes — given >= 8 cores. With fewer cores than lanes "
              "the extra lanes only time-slice; expect ~1.0x there and read "
              "the footer's \"cores\" next to the verdict.");
  char verdict[256];
  if (have_64h_8lanes) {
    std::snprintf(verdict, sizeof(verdict),
                  "  \"cores\": %u,\n"
                  "  \"speedup_64h_8lanes\": %.3f,\n  \"meets_1_5x\": %s",
                  cores, speedup_64h_8lanes,
                  speedup_64h_8lanes >= 1.5 ? "true" : "false");
  } else {
    std::snprintf(verdict, sizeof(verdict),
                  "  \"cores\": %u,\n"
                  "  \"speedup_64h_8lanes\": null,\n  \"meets_1_5x\": false",
                  cores);
  }
  bench::footer("fleet_scaling", "  \"points\": [\n" + points_json + "\n  ],\n" +
                                     verdict);
  return 0;
}
