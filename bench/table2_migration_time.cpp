// Table II — total migration time for the 4-VM consolidation experiment.
//
// Paper reference (seconds):
//   YCSB/Redis: pre-copy 470, post-copy 247, Agile 108
//   Sysbench:   pre-copy 182.66, post-copy 157.56, Agile 80.37
#include "bench_common.hpp"
#include "consolidation_runner.hpp"

using namespace agile;
using core::Technique;
namespace scen = core::scenarios;

int main() {
  bench::banner("Table II: total migration time (s)");
  const Technique techniques[] = {Technique::kPrecopy, Technique::kPostcopy,
                                  Technique::kAgile};
  metrics::Table table(
      {"workload", "pre-copy", "post-copy", "agile", "paper (pre/post/agile)"});
  for (scen::AppKind app : {scen::AppKind::kYcsb, scen::AppKind::kOltp}) {
    std::vector<std::string> row;
    row.push_back(app == scen::AppKind::kYcsb ? "YCSB/Redis" : "Sysbench");
    for (Technique technique : techniques) {
      bench::ConsolidationRun r = bench::run_consolidation(technique, app);
      row.push_back(r.migration.completed
                        ? metrics::Table::num(to_seconds(r.migration.total_time()), 1)
                        : "DNF");
    }
    row.push_back(app == scen::AppKind::kYcsb ? "470 / 247 / 108"
                                              : "182.66 / 157.56 / 80.37");
    table.add_row(row);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/table2_migration_time.csv");
  bench::note("Expected ordering: agile fastest; pre-copy slowest (~4x agile "
              "on YCSB in the paper).");
  return 0;
}
