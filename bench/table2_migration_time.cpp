// Table II — total migration time for the 4-VM consolidation experiment.
//
// Paper reference (seconds):
//   YCSB/Redis: pre-copy 470, post-copy 247, Agile 108
//   Sysbench:   pre-copy 182.66, post-copy 157.56, Agile 80.37
#include "bench_common.hpp"
#include "consolidation_runner.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
namespace scen = core::scenarios;

int main() {
  bench::banner("Table II: total migration time (s)");
  std::vector<bench::ConsolidationPoint> points = bench::consolidation_points();
  bench::ParallelSweep sweep;
  std::vector<bench::ConsolidationRun> runs =
      sweep.map(points, bench::run_consolidation_point);

  metrics::Table table(
      {"workload", "pre-copy", "post-copy", "agile", "paper (pre/post/agile)"});
  for (std::size_t i = 0; i < points.size(); i += 3) {
    scen::AppKind app = points[i].app;
    std::vector<std::string> row;
    row.push_back(app == scen::AppKind::kYcsb ? "YCSB/Redis" : "Sysbench");
    for (std::size_t j = 0; j < 3; ++j) {
      const migration::MigrationMetrics& m = runs[i + j].migration;
      row.push_back(m.completed
                        ? metrics::Table::num(to_seconds(m.total_time()), 1)
                        : "DNF");
    }
    row.push_back(app == scen::AppKind::kYcsb ? "470 / 247 / 108"
                                              : "182.66 / 157.56 / 80.37");
    table.add_row(row);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/table2_migration_time.csv");
  bench::note("Expected ordering: agile fastest; pre-copy slowest (~4x agile "
              "on YCSB in the paper).");
  bench::footer("table2_migration_time");
  return 0;
}
