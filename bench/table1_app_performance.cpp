// Table I — average application performance across all 4 VMs during the
// migration window, for YCSB/Redis (ops/s) and Sysbench OLTP (trans/s).
//
// Paper reference:
//   YCSB/Redis (ops/s):  pre-copy 7653, post-copy 14926, Agile 17112
//   Sysbench (trans/s):  pre-copy 59.84, post-copy 74.74, Agile 89.55
#include "bench_common.hpp"
#include "consolidation_runner.hpp"

using namespace agile;
using core::Technique;
namespace scen = core::scenarios;

int main() {
  bench::banner("Table I: average application performance during migration");
  const Technique techniques[] = {Technique::kPrecopy, Technique::kPostcopy,
                                  Technique::kAgile};
  metrics::Table table(
      {"workload", "pre-copy", "post-copy", "agile", "paper (pre/post/agile)"});
  for (scen::AppKind app : {scen::AppKind::kYcsb, scen::AppKind::kOltp}) {
    std::vector<std::string> row;
    row.push_back(app == scen::AppKind::kYcsb ? "YCSB/Redis (ops/s)"
                                              : "Sysbench (trans/s)");
    for (Technique technique : techniques) {
      bench::ConsolidationRun r = bench::run_consolidation(technique, app);
      row.push_back(metrics::Table::num(
          r.avg_perf, app == scen::AppKind::kYcsb ? 0 : 2));
    }
    row.push_back(app == scen::AppKind::kYcsb ? "7653 / 14926 / 17112"
                                              : "59.84 / 74.74 / 89.55");
    table.add_row(row);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/table1_app_performance.csv");
  bench::note("Expected ordering: agile > post-copy > pre-copy on both rows.");
  return 0;
}
