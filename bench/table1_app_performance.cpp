// Table I — average application performance across all 4 VMs during the
// migration window, for YCSB/Redis (ops/s) and Sysbench OLTP (trans/s).
//
// Paper reference:
//   YCSB/Redis (ops/s):  pre-copy 7653, post-copy 14926, Agile 17112
//   Sysbench (trans/s):  pre-copy 59.84, post-copy 74.74, Agile 89.55
#include "bench_common.hpp"
#include "consolidation_runner.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
namespace scen = core::scenarios;

int main() {
  bench::banner("Table I: average application performance during migration");
  std::vector<bench::ConsolidationPoint> points = bench::consolidation_points();
  bench::ParallelSweep sweep;
  std::vector<bench::ConsolidationRun> runs =
      sweep.map(points, bench::run_consolidation_point);

  metrics::Table table(
      {"workload", "pre-copy", "post-copy", "agile", "paper (pre/post/agile)"});
  for (std::size_t i = 0; i < points.size(); i += 3) {
    scen::AppKind app = points[i].app;
    std::vector<std::string> row;
    row.push_back(app == scen::AppKind::kYcsb ? "YCSB/Redis (ops/s)"
                                              : "Sysbench (trans/s)");
    for (std::size_t j = 0; j < 3; ++j) {
      row.push_back(metrics::Table::num(
          runs[i + j].avg_perf, app == scen::AppKind::kYcsb ? 0 : 2));
    }
    row.push_back(app == scen::AppKind::kYcsb ? "7653 / 14926 / 17112"
                                              : "59.84 / 74.74 / 89.55");
    table.add_row(row);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/table1_app_performance.csv");
  bench::note("Expected ordering: agile > post-copy > pre-copy on both rows.");
  bench::footer("table1_app_performance");
  return 0;
}
