// Figure 8 — data transferred during migration vs VM memory size (2–12 GB)
// on a 6 GB host, idle and busy VM, for pre-copy, post-copy and Agile.
//
// Expected shape (paper §V-B2): pre/post-copy transfer the whole VM, so the
// curves are linear in VM size (pre-copy busy steepest: dirty retransmits);
// Agile transfers only the in-memory part, constant ≈ 5.5 GB past 6 GB.
//
// Shares (cached) runs with fig7_migration_time.
#include "bench_common.hpp"
#include "parallel_sweep.hpp"
#include "single_vm_runner.hpp"

using namespace agile;
using core::Technique;

int main() {
  bench::banner("Figure 8: data transferred vs VM size");
  std::vector<bench::SingleVmPoint> points = bench::single_vm_points();
  bench::ParallelSweep sweep;
  std::vector<bench::CachedRun> runs = sweep.map(points, bench::run_single_vm_point);

  metrics::Table table({"VM size (GB)", "busy", "technique",
                        "data transferred (MB)", "full pages", "descriptors"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bench::SingleVmPoint& pt = points[i];
    const migration::MigrationMetrics& m = runs[i].migration;
    table.add_row(
        {metrics::Table::num(to_gib(pt.size), 1), pt.busy ? "busy" : "idle",
         core::technique_name(pt.technique),
         metrics::Table::num(to_mib(m.bytes_transferred), 0),
         std::to_string(m.pages_sent_full),
         std::to_string(m.pages_sent_descriptor)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fig8_data_transferred.csv");
  bench::note("Expected shape: baselines linear in VM size; Agile constant at "
              "~= the host-resident share once the VM exceeds host memory.");
  bench::footer("fig8_data_transferred");
  return 0;
}
