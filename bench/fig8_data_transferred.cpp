// Figure 8 — data transferred during migration vs VM memory size (2–12 GB)
// on a 6 GB host, idle and busy VM, for pre-copy, post-copy and Agile.
//
// Expected shape (paper §V-B2): pre/post-copy transfer the whole VM, so the
// curves are linear in VM size (pre-copy busy steepest: dirty retransmits);
// Agile transfers only the in-memory part, constant ≈ 5.5 GB past 6 GB.
//
// Shares (cached) runs with fig7_migration_time.
#include "bench_common.hpp"
#include "single_vm_runner.hpp"

using namespace agile;
using core::Technique;

int main() {
  bench::banner("Figure 8: data transferred vs VM size");
  const Technique techniques[] = {Technique::kPrecopy, Technique::kPostcopy,
                                  Technique::kAgile};
  metrics::Table table({"VM size (GB)", "busy", "technique",
                        "data transferred (MB)", "full pages", "descriptors"});
  for (bool busy : {false, true}) {
    for (Bytes size : bench::single_vm_sizes()) {
      for (Technique technique : techniques) {
        bench::CachedRun r = bench::run_single_vm(technique, size, busy);
        const migration::MigrationMetrics& m = r.migration;
        table.add_row(
            {metrics::Table::num(to_gib(size), 1), busy ? "busy" : "idle",
             core::technique_name(technique),
             metrics::Table::num(to_mib(m.bytes_transferred), 0),
             std::to_string(m.pages_sent_full),
             std::to_string(m.pages_sent_descriptor)});
      }
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fig8_data_transferred.csv");
  bench::note("Expected shape: baselines linear in VM size; Agile constant at "
              "~= the host-resident share once the VM exceeds host memory.");
  return 0;
}
