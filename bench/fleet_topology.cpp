// Datacenter topology: rack-aware placement + rebalancing vs rack-oblivious
// best-fit on one oversubscribed leaf-spine fabric.
//
// A spread fleet (two VMs per host, one hotspot VM on the first hosts of
// each rack) runs under the orchestrator and the FleetRebalancer for a long
// simulated horizon. Host RAM is sized so the hotspot never crosses the
// high watermark — every migration is a proactive rebalancer move, throttled
// through the orchestrator's admission path. Two sweep points share the
// fabric and differ only in policy:
//
//   oblivious   rack-oblivious best-fit placement and rebalancing — moves
//               land on whichever host is coolest, mostly across racks;
//   rack_aware  PlacementPolicy::kRackAware + FleetRebalancerConfig::
//               rack_aware — moves get first refusal inside the source rack.
//
// The verdict compares core-tier bytes (leaf up + leaf down): rack-aware
// policy must carry fewer migration bytes over the oversubscribed core, and
// the oblivious run must show measurable leaf-tier contention (peak
// utilization sampled over the run, not just the final quantum).
//
// Besides the usual table, the bench prints a TOPO_GOLDEN block of purely
// simulation-derived lines (rebalancer rounds, every move with its rack
// crossing, per-tier byte totals) and mirrors it to fleet_topology_golden.txt
// — byte-identical for a fixed seed at any AGILE_SIM_LANES, AGILE_BENCH_JOBS
// or AGILE_AUDIT setting, which bench_smoke_fleet_topology_determinism diffs.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "parallel_sweep.hpp"

using namespace agile;
namespace scen = core::scenarios;

namespace {

struct Mode {
  const char* name;
  bool rack_aware;
};

struct TopoRun {
  std::string name;
  std::size_t moves = 0;
  std::size_t local_moves = 0;
  std::size_t cross_moves = 0;
  std::size_t swaps = 0;
  std::uint32_t throttled = 0;
  std::size_t rounds = 0;
  std::size_t decisions = 0;  ///< Watermark decisions (expected 0 here).
  Bytes core_bytes = 0;       ///< Leaf up + leaf down tier totals.
  Bytes host_bytes = 0;       ///< Host NIC up + down tier totals.
  double core_peak_util = 0;  ///< Max leaf-link utilization over the run.
  std::string golden;         ///< Deterministic per-mode block.
};

std::uint32_t fleet_hosts() { return bench::quick_mode() ? 16 : 256; }
std::uint32_t fleet_racks() { return bench::quick_mode() ? 4 : 8; }
double horizon_seconds() { return bench::quick_mode() ? 240 : 420; }

TopoRun run_mode(const Mode& mode) {
  const std::uint32_t hosts = fleet_hosts();
  const std::uint32_t racks = fleet_racks();

  scen::FleetOptions opt;
  opt.host_count = hosts;
  opt.vm_count = hosts * 2;  // two VMs per host once spread
  opt.racks = racks;
  opt.oversubscription = 4.0;
  opt.spread_initial = true;
  opt.hot_per_rack = true;
  // One hotspot VM on the first two hosts of each rack (quick) / first four
  // (full): the per-rack hot-host count is hot_vms / racks.
  opt.hot_vms = racks * (bench::quick_mode() ? 2 : 4);
  // After the estimate latch: every controller stabilizes on the quiet
  // fleet first (~40 s), then the hotspot destabilizes only the hungry VMs.
  opt.hot_at = sec(90);
  opt.hot_active = 640_MiB;
  // RAM sized so both resident VMs fit even at their reservation cap (no
  // host-level thrash — the controllers must settle for rounds to act) and
  // a hot host (OS + one widened + one cold estimate) stays well under the
  // 0.90 high watermark: the orchestrator never fires and every move below
  // is the rebalancer's, while a cold VM still fits a cold host under the
  // 0.75 low watermark.
  opt.source_ram = 2176_MiB;
  opt.dest_ram = 2176_MiB;
  // Keep background RPC traffic well below the oversubscribed leaf
  // capacity: the reservation controllers must be able to settle, and the
  // core-byte verdict should be dominated by migration streams.
  opt.ycsb_concurrency = 2;
  opt.rack_aware_placement = mode.rack_aware;
  opt.rebalance = true;
  opt.rebalancer_config.rack_aware = mode.rack_aware;
  opt.vmd_server_capacity = static_cast<Bytes>(hosts) * 2_GiB;
  opt.stats = !bench::stats_stem().empty();

  scen::Fleet fleet = scen::make_fleet(opt);
  fleet.load_all();
  fleet.orchestrator->start();
  fleet.rebalancer->start();

  // Run in slices so the leaf-tier peak is the maximum over the whole run
  // (TierTotals::peak_utilization only covers the last quantum).
  TopoRun run;
  run.name = mode.name;
  const net::Network& net = fleet.bed->cluster().network();
  const double horizon = horizon_seconds();
  for (double t = 0; t < horizon; t += 5.0) {
    fleet.bed->cluster().run_for_seconds(std::min(5.0, horizon - t));
    run.core_peak_util = std::max(
        run.core_peak_util,
        std::max(net.tier_totals(net::LinkTier::kLeafUp).peak_utilization,
                 net.tier_totals(net::LinkTier::kLeafDown).peak_utilization));
  }
  fleet.rebalancer->stop();
  fleet.orchestrator->stop();
  bench::record_run(fleet.bed->cluster().simulation().events_executed());
  if (fleet.registry != nullptr) {
    bench::write_run_stats(*fleet.registry, std::string("topo_") + mode.name,
                           fleet.bed->cluster().simulation().now());
  }

  std::map<std::string, std::uint32_t> rack_of;
  for (std::size_t i = 0; i < fleet.bed->host_count(); ++i) {
    rack_of[fleet.bed->host_at(i)->name()] = fleet.bed->rack_of_host(i);
  }

  run.decisions = fleet.orchestrator->decisions().size();
  char line[256];
  std::snprintf(line, sizeof(line),
                "TOPO_GOLDEN %s fleet hosts=%u racks=%u oversub=%.1f vms=%u "
                "hot=%u decisions=%zu\n",
                mode.name, hosts, racks, opt.oversubscription, opt.vm_count,
                opt.hot_vms, run.decisions);
  run.golden += line;

  for (const core::RebalanceRound& r : fleet.rebalancer->rounds()) {
    std::snprintf(line, sizeof(line),
                  "TOPO_GOLDEN %s round%u t=%.0f max=%lld min=%lld moves=%zu "
                  "throttled=%u balanced=%d\n",
                  mode.name, r.index, to_seconds(r.time),
                  static_cast<long long>(r.max_load_millis),
                  static_cast<long long>(r.min_load_millis), r.moves.size(),
                  r.throttled, r.balanced ? 1 : 0);
    run.golden += line;
    run.rounds += 1;
    run.throttled += r.throttled;
    for (const core::RebalanceMove& m : r.moves) {
      const std::uint32_t from_rack = rack_of[m.from];
      const std::uint32_t to_rack = rack_of[m.to];
      const bool cross = from_rack != to_rack;
      std::snprintf(line, sizeof(line),
                    "TOPO_GOLDEN %s   %s %s->%s wss_mib=%.0f rack%u->rack%u "
                    "%s%s\n",
                    mode.name, m.vm.c_str(), m.from.c_str(), m.to.c_str(),
                    to_mib(m.wss), from_rack, to_rack,
                    cross ? "cross" : "local", m.swap ? " swap" : "");
      run.golden += line;
      run.moves += 1;
      (cross ? run.cross_moves : run.local_moves) += 1;
      if (m.swap) run.swaps += 1;
    }
  }

  for (std::size_t t = 0; t < net::kLinkTierCount; ++t) {
    const auto tier = static_cast<net::LinkTier>(t);
    const net::TierTotals totals = net.tier_totals(tier);
    if (totals.links == 0) continue;
    if (tier == net::LinkTier::kLeafUp || tier == net::LinkTier::kLeafDown) {
      run.core_bytes += totals.bytes_total;
    } else {
      run.host_bytes += totals.bytes_total;
    }
    std::snprintf(line, sizeof(line),
                  "TOPO_GOLDEN %s tier %s links=%zu mib=%.0f\n", mode.name,
                  net::tier_name(tier), totals.links,
                  to_mib(totals.bytes_total));
    run.golden += line;
  }
  std::snprintf(line, sizeof(line),
                "TOPO_GOLDEN %s summary moves=%zu local=%zu cross=%zu "
                "swaps=%zu throttled=%u core_mib=%.0f\n",
                mode.name, run.moves, run.local_moves, run.cross_moves,
                run.swaps, run.throttled, to_mib(run.core_bytes));
  run.golden += line;
  return run;
}

}  // namespace

int main() {
  bench::banner("Fleet topology: rack-aware policy on a leaf-spine fabric");
  const std::vector<Mode> modes = {{"oblivious", false}, {"rack_aware", true}};
  bench::ParallelSweep sweep;
  std::vector<TopoRun> runs = sweep.map(modes, run_mode);

  metrics::Table table({"mode", "rounds", "moves", "local", "cross", "swaps",
                        "throttled", "core (MiB)", "host (MiB)",
                        "core peak %"});
  for (const TopoRun& r : runs) {
    table.add_row({r.name, std::to_string(r.rounds), std::to_string(r.moves),
                   std::to_string(r.local_moves),
                   std::to_string(r.cross_moves), std::to_string(r.swaps),
                   std::to_string(r.throttled),
                   metrics::Table::num(to_mib(r.core_bytes), 0),
                   metrics::Table::num(to_mib(r.host_bytes), 0),
                   metrics::Table::num(r.core_peak_util * 100, 1)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  table.write_csv(bench::out_dir() + "/fleet_topology.csv");

  std::string golden;
  for (const TopoRun& r : runs) golden += r.golden;
  std::printf("%s", golden.c_str());
  std::string golden_path = bench::out_dir() + "/fleet_topology_golden.txt";
  if (std::FILE* f = std::fopen(golden_path.c_str(), "w")) {
    std::fputs(golden.c_str(), f);
    std::fclose(f);
  }

  const TopoRun& obl = runs[0];
  const TopoRun& aware = runs[1];
  bench::note("Expected: both modes launch the same rebalancer move count; "
              "oblivious moves land mostly cross-rack while rack-aware moves "
              "stay local, so the rack-aware run carries fewer core-tier "
              "(leaf) bytes; the oblivious run shows leaf-link contention "
              "from concurrent cross-rack migrations.");
  char verdict[512];
  std::snprintf(
      verdict, sizeof(verdict),
      "  \"hosts\": %u,\n"
      "  \"racks\": %u,\n"
      "  \"oblivious_moves\": %zu,\n"
      "  \"oblivious_cross_moves\": %zu,\n"
      "  \"rack_aware_moves\": %zu,\n"
      "  \"rack_aware_cross_moves\": %zu,\n"
      "  \"oblivious_core_mib\": %.0f,\n"
      "  \"rack_aware_core_mib\": %.0f,\n"
      "  \"core_mib_saved\": %.0f,\n"
      "  \"rack_aware_reduces_core_bytes\": %s,\n"
      "  \"oblivious_core_peak_util_pct\": %.1f,\n"
      "  \"core_contention_observed\": %s",
      fleet_hosts(), fleet_racks(), obl.moves, obl.cross_moves, aware.moves,
      aware.cross_moves, to_mib(obl.core_bytes), to_mib(aware.core_bytes),
      to_mib(obl.core_bytes) - to_mib(aware.core_bytes),
      obl.core_bytes > aware.core_bytes ? "true" : "false",
      obl.core_peak_util * 100,
      obl.core_peak_util >= 0.5 ? "true" : "false");
  bench::footer("fleet_topology", verdict);
  return 0;
}
