// Shared runner for Tables I–III: the §V-C experiment — four 10 GB VMs on a
// 23 GB source host (YCSB/Redis or Sysbench/MySQL), one VM migrated to
// relieve memory pressure — executed once per technique. Each table binary
// prints its own column of the result.
#pragma once

#include "bench_common.hpp"
#include "core/scenarios.hpp"
#include "run_cache.hpp"

namespace agile::bench {

using ConsolidationRun = CachedRun;

inline ConsolidationRun run_consolidation_uncached(
    core::Technique technique, core::scenarios::AppKind app) {
  namespace scen = core::scenarios;
  const bool quick = quick_mode();

  scen::ConsolidationOptions opt;
  opt.technique = technique;
  opt.app = app;
  if (quick) {
    opt.host_ram = 3_GiB;
    opt.vm_memory = 1_GiB;
    opt.reservation = 563_MiB;
    opt.dataset = app == scen::AppKind::kYcsb ? 920_MiB : 820_MiB;
    opt.guest_os = 20_MiB;
    opt.initial_active = 20_MiB;
    opt.ramped_active = 614_MiB;
  } else if (app == scen::AppKind::kOltp) {
    opt.dataset = 8_GiB;  // paper: 8 GB MySQL dataset per VM
    opt.guest_os = 300_MiB;
  }

  scen::Consolidation sc = scen::make_consolidation(opt);
  sc.load_all();

  SimTime migrate_at;
  double window_s;
  if (app == scen::AppKind::kYcsb) {
    // §V-A script: ramp from t=150 s, migrate at t=400 s.
    sc.schedule_ramp(quick ? sec(15) : sec(150), quick ? sec(5) : sec(50));
    migrate_at = quick ? sec(40) : sec(400);
    window_s = quick ? 120 : 300;
  } else {
    // Sysbench runs at full intensity throughout; measure a 300 s window
    // starting at the migration.
    migrate_at = quick ? sec(20) : sec(60);
    window_s = quick ? 120 : 300;
  }
  sc.schedule_migration(migrate_at);

  double t_mig = to_seconds(migrate_at);
  double horizon = t_mig + window_s;
  sc.bed->cluster().run_for_seconds(horizon);
  // Make sure the migration itself finished (pre-copy can outlast the window).
  double guard = sc.bed->cluster().now_seconds() + (quick ? 1200 : 7200);
  while (!sc.migration->completed() &&
         sc.bed->cluster().now_seconds() < guard) {
    sc.bed->cluster().run_for_seconds(5);
  }

  record_run(sc.bed->cluster().simulation().events_executed());
  ConsolidationRun result;
  result.migration = sc.migration->metrics();
  result.avg_perf = sc.average_throughput().mean_between(t_mig, t_mig + window_s);
  return result;
}

inline ConsolidationRun run_consolidation(core::Technique technique,
                                          core::scenarios::AppKind app) {
  std::string key = std::string("consolidation_") +
                    core::technique_name(technique) + "_" +
                    (app == core::scenarios::AppKind::kYcsb ? "ycsb" : "oltp") +
                    (quick_mode() ? "_quick" : "");
  return cached_run(key, [&] { return run_consolidation_uncached(technique, app); });
}

/// One Tables-I–III sweep point. Tables iterate app (outer) × technique
/// (inner); `consolidation_points` preserves that order, so point `i` is row
/// `i / 3`, column `i % 3`.
struct ConsolidationPoint {
  core::Technique technique;
  core::scenarios::AppKind app;
};

inline std::vector<ConsolidationPoint> consolidation_points() {
  const core::Technique techniques[] = {core::Technique::kPrecopy,
                                        core::Technique::kPostcopy,
                                        core::Technique::kAgile};
  std::vector<ConsolidationPoint> points;
  for (core::scenarios::AppKind app :
       {core::scenarios::AppKind::kYcsb, core::scenarios::AppKind::kOltp}) {
    for (core::Technique technique : techniques) points.push_back({technique, app});
  }
  return points;
}

inline ConsolidationRun run_consolidation_point(const ConsolidationPoint& pt) {
  return run_consolidation(pt.technique, pt.app);
}

}  // namespace agile::bench
