// Working-set autotuning demo (paper §IV-D / §V-D): the hypervisor-side
// controller discovers a VM's working set from per-VM swap iostat alone —
// no guest agent — and keeps the cgroup reservation tracking it as the
// workload's active set shrinks and grows.
//
//   $ ./wss_autotune
#include <cstdio>

#include "core/testbed.hpp"
#include "workload/ycsb.hpp"
#include "wss/reservation_controller.hpp"

using namespace agile;

int main() {
  core::TestbedConfig cfg;
  cfg.source.ram = 16_GiB;
  core::Testbed bed(cfg);

  core::VmSpec spec;
  spec.name = "vm0";
  spec.memory = 4_GiB;
  spec.reservation = 4_GiB;  // start fully provisioned
  spec.swap = core::SwapBinding::kPerVmDevice;
  core::VmHandle& vm = bed.create_vm(spec);

  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = 3_GiB;
  ycfg.active_bytes = 1_GiB;
  auto load = std::make_unique<workload::YcsbWorkload>(
      vm.machine, &bed.cluster().network(), bed.client_node(), ycfg,
      bed.make_rng("ycsb"));
  auto* ycsb = load.get();
  bed.attach_workload(vm, std::move(load));
  ycsb->load(0);
  bed.source()->ssd()->advance(sec(3600));

  wss::WssConfig wcfg;  // paper defaults, with a brisker α for a short demo
  wcfg.alpha = 0.85;
  wss::ReservationController controller(&bed.cluster(), vm.machine, wcfg);
  controller.start();

  // Phase script: 1 GiB active → shrink to 256 MiB → grow to 2.5 GiB.
  bed.cluster().simulation().schedule_at(sec(240), [&] {
    std::printf(">>> t=240s: active set shrinks to 256 MiB\n");
    ycsb->set_active_bytes(256_MiB);
  });
  bed.cluster().simulation().schedule_at(sec(480), [&] {
    std::printf(">>> t=480s: active set grows to 2.5 GiB\n");
    ycsb->set_active_bytes(2560_MiB);
  });

  core::ThroughputProbe probe(&bed.cluster(), ycsb, "ycsb");
  std::printf("  time   reservation   resident    swap-rate   throughput\n");
  for (int t = 0; t < 720; t += 30) {
    bed.cluster().run_for_seconds(30);
    std::printf("  %3ds   %7.0f MiB  %7.0f MiB  %9.0f B/s  %8.0f ops/s%s\n",
                t + 30, to_mib(controller.wss_estimate()),
                to_mib(vm.machine->memory().resident_bytes()),
                controller.swap_rate_series().value_at(t + 30),
                probe.series().value_at(t + 30),
                controller.stable() ? "  [stable]" : "");
  }
  std::printf("\nThe reservation follows the active set in both directions; "
              "the cadence relaxes to 30 s whenever the estimate stabilizes.\n");
  return 0;
}
