// Command-line scenario driver: run any migration technique against a
// configurable pressured VM without writing C++.
//
//   $ ./migrate_cli --technique=agile --vm-gb=8 --host-gb=4 --busy --timeline
//
// Flags (all optional):
//   --technique=precopy|postcopy|agile|scatter-gather   (default agile)
//   --vm-gb=N          guest memory size in GiB          (default 4)
//   --host-gb=N        source/dest host RAM in GiB       (default 2)
//   --busy             run a YCSB client during migration
//   --read-fraction=F  busy client's read share          (default 0.8)
//   --seed=N           simulation seed                   (default 42)
//   --timeline         print 1 s throughput samples while migrating
//   --trace-out=FILE   record a Chrome trace_event JSON of the run
//                      (load in chrome://tracing or ui.perfetto.dev)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "metrics/table.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "wss/watermark_trigger.hpp"

using namespace agile;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--technique=precopy|postcopy|agile|scatter-gather]\n"
               "          [--vm-gb=N] [--host-gb=N] [--busy]\n"
               "          [--read-fraction=F] [--seed=N] [--timeline]\n"
               "          [--trace-out=FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::Technique technique = core::Technique::kAgile;
  double vm_gb = 4, host_gb = 2, read_fraction = 0.8;
  std::uint64_t seed = 42;
  bool busy = false, timeline = false;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "technique", &v)) {
      if (v == "precopy") {
        technique = core::Technique::kPrecopy;
      } else if (v == "postcopy") {
        technique = core::Technique::kPostcopy;
      } else if (v == "agile") {
        technique = core::Technique::kAgile;
      } else if (v == "scatter-gather") {
        technique = core::Technique::kScatterGather;
      } else {
        return usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "vm-gb", &v)) {
      vm_gb = std::stod(v);
    } else if (parse_flag(argv[i], "host-gb", &v)) {
      host_gb = std::stod(v);
    } else if (parse_flag(argv[i], "read-fraction", &v)) {
      read_fraction = std::stod(v);
    } else if (parse_flag(argv[i], "seed", &v)) {
      seed = std::stoull(v);
    } else if (parse_flag(argv[i], "trace-out", &v)) {
      trace_out = v;
    } else if (std::strcmp(argv[i], "--busy") == 0) {
      busy = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (vm_gb <= 0.1 || host_gb <= 0.6) {
    std::fprintf(stderr, "vm/host sizes too small to model\n");
    return 2;
  }

  log::set_level(LogLevel::kInfo);
  core::scenarios::SingleVmOptions opt;
  opt.technique = technique;
  opt.vm_memory = static_cast<Bytes>(vm_gb * static_cast<double>(1_GiB));
  opt.host_ram = static_cast<Bytes>(host_gb * static_cast<double>(1_GiB));
  opt.busy = busy;
  opt.read_fraction = read_fraction;
  opt.seed = seed;
  opt.trace = !trace_out.empty();
  core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
  if (busy && sc.ycsb == nullptr) return usage(argv[0]);
  std::printf("Preparing a %.1f GiB %s VM on a %.1f GiB host (%s)...\n", vm_gb,
              busy ? "busy" : "idle", host_gb, core::technique_name(technique));
  sc.prepare();

  std::unique_ptr<core::ThroughputProbe> probe;
  if (busy) {
    probe = std::make_unique<core::ThroughputProbe>(&sc.bed->cluster(),
                                                    sc.ycsb, "ycsb");
  }
  std::shared_ptr<sim::PeriodicTask> wss_probe;
  if (opt.trace) {
    // Observation-only watermark probe: SingleVm runs no reservation
    // controller, so sample the VM's resident set once a second and run the
    // §III-B trigger over it. This puts the host's memory-pressure picture
    // on the trace's wss track next to the engine phases.
    vm::VirtualMachine* machine = sc.handle->machine;
    Bytes host_ram = sc.bed->source()->ram();
    Bytes host_os = sc.bed->source()->config().host_os_bytes;
    wss_probe = sc.bed->cluster().simulation().schedule_periodic(
        sec(1), [machine, host_ram, host_os](SimTime) {
          AGILE_TRACE_SPAN("wss", "watermark_probe", 0);
          std::vector<wss::VmPressure> vms(1);
          vms[0].name = machine->name();
          vms[0].wss = machine->memory().resident_bytes();
          wss::evaluate_watermarks(host_ram, host_os, vms, {});
        });
  }
  sc.migration = sc.bed->make_migration(opt.technique, *sc.handle);
  sc.migration->start();
  double start = sc.bed->cluster().now_seconds();
  while (!sc.migration->completed() &&
         sc.bed->cluster().now_seconds() < start + 36000) {
    sc.bed->cluster().run_for_seconds(1.0);
    if (timeline && probe) {
      double now = sc.bed->cluster().now_seconds();
      std::printf("  t=%6.1fs  %8.0f ops/s\n", now - start,
                  probe->series().value_at(now));
    }
  }
  if (!sc.migration->completed()) {
    std::fprintf(stderr, "migration did not complete\n");
    return 1;
  }

  const migration::MigrationMetrics& m = sc.migration->metrics();
  metrics::Table t({"metric", "value"});
  t.add_row({"technique", sc.migration->technique()});
  t.add_row({"total time (s)", metrics::Table::num(to_seconds(m.total_time()), 1)});
  t.add_row({"downtime (ms)",
             metrics::Table::num(static_cast<double>(m.downtime) / 1000.0, 0)});
  t.add_row({"data on direct channel (MiB)",
             metrics::Table::num(to_mib(m.bytes_transferred), 0)});
  t.add_row({"scattered to VMD (MiB)",
             metrics::Table::num(to_mib(m.bytes_scattered), 0)});
  t.add_row({"full pages sent", std::to_string(m.pages_sent_full)});
  t.add_row({"descriptors sent", std::to_string(m.pages_sent_descriptor)});
  t.add_row({"demand faults over network", std::to_string(m.pages_demand_served)});
  t.add_row({"swap-ins at source", std::to_string(m.pages_swapped_in_at_source)});
  t.add_row({"pre-copy rounds", std::to_string(m.precopy_rounds)});
  std::printf("\n%s", t.to_string().c_str());

  if (opt.trace) {
    if (wss_probe) wss_probe->cancel();
    const trace::TraceRecorder& rec = sc.session->recorder();
    Status st = rec.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.message().c_str());
      return 1;
    }
    std::printf("\n%s", rec.summary().c_str());
    std::printf("\nwrote %zu trace events to %s\n", rec.event_count(),
                trace_out.c_str());
  }
  return 0;
}
