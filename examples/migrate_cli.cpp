// Command-line scenario driver: run any migration technique against a
// configurable pressured VM — or a whole fleet — without writing C++.
//
//   $ ./migrate_cli --technique=agile --vm-gb=8 --host-gb=4 --busy --timeline
//   $ ./migrate_cli --fleet --hosts=4 --vms=6 --duration=400
//
// Flags (all optional):
//   --technique=precopy|postcopy|agile|scatter-gather   (default agile)
//   --vm-gb=N          guest memory size in GiB          (default 4)
//   --host-gb=N        source/dest host RAM in GiB       (default 2)
//   --busy             run a YCSB client during migration
//   --read-fraction=F  busy client's read share          (default 0.8)
//   --streams=N        parallel wire streams             (default 1)
//   --compression=off|fast|heavy   modeled page compression (default off)
//   --zero-fraction=F  all-zero share of prefilled pages (default 0)
//   --seed=N           simulation seed                   (default 42)
//   --timeline         print 1 s throughput samples while migrating
//   --trace-out=FILE   record a Chrome trace_event JSON of the run
//                      (load in chrome://tracing or ui.perfetto.dev)
//   --stats-out=FILE   record deterministic metrics snapshots; writes JSON
//                      snapshots to FILE and a Prometheus text exposition of
//                      the final state to FILE.prom (see tools/stats_report.py)
//   --stats-interval=N scrape period in simulated seconds (default 1)
//   --watermark-high=F high watermark fraction of RAM    (default 0.90)
//   --watermark-low=F  low watermark fraction of RAM     (default 0.75)
//   --fleet            orchestrated multi-host mode: VMs consolidated on
//                      host 0 turn hot and the MigrationOrchestrator spreads
//                      the victims across the other hosts
//   --hosts=N          fleet host count                  (default 4)
//   --vms=N            fleet VM count                    (default 6)
//   --hot=N            VMs whose working set widens      (default 3)
//   --duration=S       fleet simulated seconds           (default 400)
//   --topology=flat|leaf-spine   fleet network shape     (default flat)
//   --racks=N          leaf-spine rack count; implies --topology=leaf-spine
//                      (default 4 when leaf-spine; hosts must divide evenly)
//   --oversub=F        leaf-spine core oversubscription  (default 4)
//   --rebalance        run the FleetRebalancer alongside the orchestrator
//                      (MongoDB-style rounds; prints the round audit log)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "metrics/table.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "wss/watermark_trigger.hpp"

using namespace agile;

namespace {

bool parse_flag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--technique=precopy|postcopy|agile|scatter-gather]\n"
               "          [--vm-gb=N] [--host-gb=N] [--busy]\n"
               "          [--streams=N] [--compression=off|fast|heavy]\n"
               "          [--zero-fraction=F]\n"
               "          [--read-fraction=F] [--seed=N] [--timeline]\n"
               "          [--trace-out=FILE]\n"
               "          [--stats-out=FILE] [--stats-interval=N]\n"
               "          [--watermark-high=F] [--watermark-low=F]\n"
               "          [--fleet] [--hosts=N] [--vms=N] [--hot=N]\n"
               "          [--duration=S] [--topology=flat|leaf-spine]\n"
               "          [--racks=N] [--oversub=F] [--rebalance]\n",
               argv0);
  return 2;
}

// Writes snapshots JSON to `path` and the final Prometheus exposition to
// `path + ".prom"`. Returns false (after printing the error) on failure.
bool export_stats(const stats::Registry& registry, const std::string& path,
                  SimTime now) {
  Status st = registry.write_snapshots_json(path);
  if (st.is_ok()) st = registry.write_prometheus(path + ".prom", now);
  if (!st.is_ok()) {
    std::fprintf(stderr, "stats export failed: %s\n", st.message().c_str());
    return false;
  }
  std::printf("wrote stats snapshots to %s (+ %s.prom)\n", path.c_str(),
              path.c_str());
  return true;
}

int run_fleet(core::scenarios::FleetOptions opt, double duration_s,
              const std::string& stats_out) {
  core::scenarios::Fleet fleet = core::scenarios::make_fleet(opt);
  core::Testbed& bed = *fleet.bed;
  std::printf("Fleet: %u hosts, %u VMs consolidated on host0; %u working "
              "sets widen to %.0f MiB at t=%.0fs (%s, watermarks %.2f/%.2f)\n",
              opt.host_count, opt.vm_count, opt.hot_vms,
              to_mib(opt.hot_active), to_seconds(opt.hot_at),
              core::technique_name(opt.technique), opt.watermarks.high,
              opt.watermarks.low);
  if (opt.racks > 0) {
    std::printf("Topology: leaf-spine, %u racks x %u hosts, %.1f:1 core "
                "oversubscription, rack-aware placement\n",
                opt.racks, opt.host_count / opt.racks, opt.oversubscription);
  } else {
    std::printf("Topology: flat (single non-blocking switch)\n");
  }
  if (opt.rebalance) {
    std::printf("Rebalancer: rounds every %.0fs, <=%u moves/round, "
                "imbalance threshold %.2f\n",
                to_seconds(opt.rebalancer_config.round_interval),
                opt.rebalancer_config.max_moves_per_round,
                opt.rebalancer_config.imbalance_threshold);
  }
  fleet.load_all();
  fleet.orchestrator->set_on_migration(
      [&](core::VmHandle* victim, host::Host* dest) {
        std::printf(">>> t=%.0fs: migrating %s to %s (reservation %.0f MiB)\n",
                    bed.cluster().now_seconds(),
                    victim->machine->name().c_str(), dest->name().c_str(),
                    to_mib(fleet.orchestrator->wss_estimate(victim)));
      });
  fleet.orchestrator->start();
  if (fleet.rebalancer != nullptr) fleet.rebalancer->start();
  bed.cluster().run_for_seconds(duration_s);
  if (fleet.rebalancer != nullptr) fleet.rebalancer->stop();
  fleet.orchestrator->stop();

  std::printf("\nDecisions:\n");
  for (const core::FleetDecision& d : fleet.orchestrator->decisions()) {
    std::printf("  t=%5.0fs %s: aggregate %.2f GiB, %zu victim(s), "
                "%zu launched, %u deferred%s\n",
                to_seconds(d.time), d.source_host.c_str(),
                to_gib(d.trigger.aggregate_wss), d.trigger.victims.size(),
                d.launches.size(), d.deferred,
                d.trigger.insufficient ? " [insufficient]" : "");
    for (const core::FleetLaunch& l : d.launches) {
      std::printf("          %s -> %s (%.0f MiB reserved)\n", l.vm.c_str(),
                  l.dest.c_str(), to_mib(l.reserved_wss));
    }
  }

  if (fleet.rebalancer != nullptr) {
    std::printf("\nRebalancer rounds:\n");
    for (const core::RebalanceRound& r : fleet.rebalancer->rounds()) {
      std::printf("  t=%5.0fs round %u: load %lld/%lld millis, %zu move(s), "
                  "%u throttled%s\n",
                  to_seconds(r.time), r.index,
                  static_cast<long long>(r.max_load_millis),
                  static_cast<long long>(r.min_load_millis), r.moves.size(),
                  r.throttled, r.balanced ? " [balanced]" : "");
      for (const core::RebalanceMove& m : r.moves) {
        std::printf("          %s %s -> %s (%.0f MiB)%s\n", m.vm.c_str(),
                    m.from.c_str(), m.to.c_str(), to_mib(m.wss),
                    m.swap ? " [swap]" : "");
      }
    }
  }

  std::printf("\nFinal placement:\n");
  for (core::VmHandle* h : fleet.handles) {
    host::Host* where = bed.host_of(h->machine);
    std::printf("  %-4s on %-6s  WSS estimate %7.0f MiB  resident %7.0f MiB\n",
                h->machine->name().c_str(),
                where != nullptr ? where->name().c_str() : "?",
                to_mib(fleet.orchestrator->wss_estimate(h)),
                to_mib(h->machine->memory().resident_bytes()));
  }

  metrics::Table t({"vm", "dest", "start (s)", "end (s)", "downtime (ms)",
                    "wire (MiB)", "done"});
  for (const auto& m : fleet.orchestrator->migrations()) {
    const migration::MigrationMetrics& mm = m->metrics();
    t.add_row({m->machine()->name(), m->dest_host()->name(),
               metrics::Table::num(to_seconds(mm.start_time), 1),
               mm.completed ? metrics::Table::num(to_seconds(mm.end_time), 1)
                            : "n/a",
               metrics::Table::num(static_cast<double>(mm.downtime) / 1000.0, 0),
               metrics::Table::num(to_mib(mm.bytes_transferred), 0),
               mm.completed ? "yes" : "no"});
  }
  std::printf("\n%s", t.to_string().c_str());
  if (!stats_out.empty() &&
      !export_stats(*fleet.registry, stats_out, bed.cluster().simulation().now())) {
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::Technique technique = core::Technique::kAgile;
  double vm_gb = 4, host_gb = 2, read_fraction = 0.8;
  double watermark_high = 0.90, watermark_low = 0.75;
  double duration_s = 400;
  std::uint64_t seed = 42;
  std::uint32_t fleet_hosts = 4, fleet_vms = 6, fleet_hot = 3;
  std::uint32_t streams = 1;
  migration::Compression compression = migration::Compression::kOff;
  double zero_fraction = 0.0;
  bool busy = false, timeline = false, fleet = false;
  bool leaf_spine = false, rebalance = false;
  std::uint32_t racks = 0;  // 0: default (4) when --topology=leaf-spine
  double oversub = 4.0;
  std::string trace_out;
  std::string stats_out;
  double stats_interval_s = 1.0;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "technique", &v)) {
      if (v == "precopy") {
        technique = core::Technique::kPrecopy;
      } else if (v == "postcopy") {
        technique = core::Technique::kPostcopy;
      } else if (v == "agile") {
        technique = core::Technique::kAgile;
      } else if (v == "scatter-gather") {
        technique = core::Technique::kScatterGather;
      } else {
        return usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "vm-gb", &v)) {
      vm_gb = std::stod(v);
    } else if (parse_flag(argv[i], "host-gb", &v)) {
      host_gb = std::stod(v);
    } else if (parse_flag(argv[i], "read-fraction", &v)) {
      read_fraction = std::stod(v);
    } else if (parse_flag(argv[i], "streams", &v)) {
      streams = static_cast<std::uint32_t>(std::stoul(v));
    } else if (parse_flag(argv[i], "compression", &v)) {
      if (v == "off") {
        compression = migration::Compression::kOff;
      } else if (v == "fast") {
        compression = migration::Compression::kFast;
      } else if (v == "heavy") {
        compression = migration::Compression::kHeavy;
      } else {
        return usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "zero-fraction", &v)) {
      zero_fraction = std::stod(v);
    } else if (parse_flag(argv[i], "watermark-high", &v)) {
      watermark_high = std::stod(v);
    } else if (parse_flag(argv[i], "watermark-low", &v)) {
      watermark_low = std::stod(v);
    } else if (parse_flag(argv[i], "seed", &v)) {
      seed = std::stoull(v);
    } else if (parse_flag(argv[i], "trace-out", &v)) {
      trace_out = v;
    } else if (parse_flag(argv[i], "stats-out", &v)) {
      stats_out = v;
    } else if (parse_flag(argv[i], "stats-interval", &v)) {
      stats_interval_s = std::stod(v);
      if (stats_interval_s <= 0) return usage(argv[0]);
    } else if (parse_flag(argv[i], "hosts", &v)) {
      fleet_hosts = static_cast<std::uint32_t>(std::stoul(v));
    } else if (parse_flag(argv[i], "vms", &v)) {
      fleet_vms = static_cast<std::uint32_t>(std::stoul(v));
    } else if (parse_flag(argv[i], "hot", &v)) {
      fleet_hot = static_cast<std::uint32_t>(std::stoul(v));
    } else if (parse_flag(argv[i], "duration", &v)) {
      duration_s = std::stod(v);
    } else if (parse_flag(argv[i], "topology", &v)) {
      if (v == "flat") {
        leaf_spine = false;
      } else if (v == "leaf-spine") {
        leaf_spine = true;
      } else {
        return usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "racks", &v)) {
      racks = static_cast<std::uint32_t>(std::stoul(v));
      if (racks == 0) return usage(argv[0]);
      leaf_spine = true;
    } else if (parse_flag(argv[i], "oversub", &v)) {
      oversub = std::stod(v);
      if (!(oversub > 0)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--rebalance") == 0) {
      rebalance = true;
    } else if (std::strcmp(argv[i], "--busy") == 0) {
      busy = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (watermark_low <= 0 || watermark_low > watermark_high ||
      watermark_high > 1.0) {
    std::fprintf(stderr, "watermarks must satisfy 0 < low <= high <= 1\n");
    return 2;
  }

  log::set_level(LogLevel::kInfo);
  if (fleet) {
    if (fleet_hosts < 2 || fleet_vms < 1 || fleet_hot > fleet_vms ||
        duration_s <= 0) {
      return usage(argv[0]);
    }
    core::scenarios::FleetOptions fopt;
    fopt.technique = technique;
    fopt.host_count = fleet_hosts;
    fopt.vm_count = fleet_vms;
    fopt.hot_vms = fleet_hot;
    fopt.watermarks.high = watermark_high;
    fopt.watermarks.low = watermark_low;
    fopt.seed = seed;
    fopt.stats = !stats_out.empty();
    fopt.stats_interval = sec(stats_interval_s);
    if (leaf_spine) {
      if (racks == 0) racks = 4;
      if (fleet_hosts % racks != 0) {
        std::fprintf(stderr, "--hosts=%u must divide evenly into --racks=%u\n",
                     fleet_hosts, racks);
        return 2;
      }
      fopt.racks = racks;
      fopt.oversubscription = oversub;
      // On a rack fabric, both the orchestrator's victim placement and the
      // rebalancer prefer same-rack destinations.
      fopt.rack_aware_placement = true;
      fopt.rebalancer_config.rack_aware = true;
    }
    fopt.rebalance = rebalance;
    return run_fleet(fopt, duration_s, stats_out);
  }
  if (leaf_spine || rebalance) {
    std::fprintf(stderr, "--topology/--racks/--oversub/--rebalance require "
                         "--fleet\n");
    return 2;
  }

  if (vm_gb <= 0.1 || host_gb <= 0.6) {
    std::fprintf(stderr, "vm/host sizes too small to model\n");
    return 2;
  }
  if (streams < 1 || streams > migration::StreamGroup::kMaxStreams ||
      zero_fraction < 0.0 || zero_fraction > 1.0) {
    return usage(argv[0]);
  }
  core::scenarios::SingleVmOptions opt;
  opt.technique = technique;
  opt.vm_memory = static_cast<Bytes>(vm_gb * static_cast<double>(1_GiB));
  opt.host_ram = static_cast<Bytes>(host_gb * static_cast<double>(1_GiB));
  opt.busy = busy;
  opt.read_fraction = read_fraction;
  opt.seed = seed;
  opt.trace = !trace_out.empty();
  opt.num_streams = streams;
  opt.compression = compression;
  opt.zero_page_fraction = zero_fraction;
  opt.stats = !stats_out.empty();
  opt.stats_interval = sec(stats_interval_s);
  core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
  if (busy && sc.ycsb == nullptr) return usage(argv[0]);
  std::printf("Preparing a %.1f GiB %s VM on a %.1f GiB host (%s)...\n", vm_gb,
              busy ? "busy" : "idle", host_gb, core::technique_name(technique));
  sc.prepare();

  std::unique_ptr<core::ThroughputProbe> probe;
  if (busy) {
    probe = std::make_unique<core::ThroughputProbe>(&sc.bed->cluster(),
                                                    sc.ycsb, "ycsb");
  }
  std::shared_ptr<sim::PeriodicTask> wss_probe;
  if (opt.trace) {
    // Observation-only watermark probe: SingleVm runs no reservation
    // controller, so sample the VM's resident set once a second and run the
    // §III-B trigger over it. This puts the host's memory-pressure picture
    // on the trace's wss track next to the engine phases.
    vm::VirtualMachine* machine = sc.handle->machine;
    Bytes host_ram = sc.bed->source()->ram();
    Bytes host_os = sc.bed->source()->config().host_os_bytes;
    wss::WatermarkConfig watermarks;
    watermarks.high = watermark_high;
    watermarks.low = watermark_low;
    wss_probe = sc.bed->cluster().simulation().schedule_periodic(
        sec(1), [machine, host_ram, host_os, watermarks](SimTime) {
          AGILE_TRACE_SPAN("wss", "watermark_probe", 0);
          std::vector<wss::VmPressure> vms(1);
          vms[0].name = machine->name();
          vms[0].wss = machine->memory().resident_bytes();
          wss::evaluate_watermarks(host_ram, host_os, vms, watermarks);
        });
  }
  migration::MigrationConfig mcfg;
  mcfg.num_streams = opt.num_streams;
  mcfg.compression = opt.compression;
  sc.migration = sc.bed->make_migration(opt.technique, *sc.handle,
                                        /*dest_reservation=*/0, mcfg);
  sc.migration->start();
  double start = sc.bed->cluster().now_seconds();
  while (!sc.migration->completed() &&
         sc.bed->cluster().now_seconds() < start + 36000) {
    sc.bed->cluster().run_for_seconds(1.0);
    if (timeline && probe) {
      double now = sc.bed->cluster().now_seconds();
      std::printf("  t=%6.1fs  %8.0f ops/s\n", now - start,
                  probe->series().value_at(now));
    }
  }
  if (!sc.migration->completed()) {
    std::fprintf(stderr, "migration did not complete\n");
    return 1;
  }

  const migration::MigrationMetrics& m = sc.migration->metrics();
  metrics::Table t({"metric", "value"});
  t.add_row({"technique", sc.migration->technique()});
  t.add_row({"total time (s)", metrics::Table::num(to_seconds(m.total_time()), 1)});
  t.add_row({"downtime (ms)",
             metrics::Table::num(static_cast<double>(m.downtime) / 1000.0, 0)});
  t.add_row({"data on direct channel (MiB)",
             metrics::Table::num(to_mib(m.bytes_transferred), 0)});
  t.add_row({"scattered to VMD (MiB)",
             metrics::Table::num(to_mib(m.bytes_scattered), 0)});
  t.add_row({"full pages sent", std::to_string(m.pages_sent_full)});
  t.add_row({"descriptors sent", std::to_string(m.pages_sent_descriptor)});
  t.add_row({"zero pages elided", std::to_string(m.pages_zero_elided)});
  t.add_row({"compression savings (MiB)",
             metrics::Table::num(to_mib(m.compressed_bytes_saved), 0)});
  t.add_row({"demand faults over network", std::to_string(m.pages_demand_served)});
  t.add_row({"swap-ins at source", std::to_string(m.pages_swapped_in_at_source)});
  t.add_row({"pre-copy rounds", std::to_string(m.precopy_rounds)});
  std::printf("\n%s", t.to_string().c_str());

  if (opt.trace) {
    if (wss_probe) wss_probe->cancel();
    const trace::TraceRecorder& rec = sc.session->recorder();
    Status st = rec.write_chrome_json(trace_out);
    if (!st.is_ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", st.message().c_str());
      return 1;
    }
    std::printf("\n%s", rec.summary().c_str());
    std::printf("\nwrote %zu trace events to %s\n", rec.event_count(),
                trace_out.c_str());
  }
  if (!stats_out.empty() &&
      !export_stats(*sc.registry, stats_out,
                    sc.bed->cluster().simulation().now())) {
    return 1;
  }
  return 0;
}
