// Autonomous memory-pressure response (paper §III-B) via the library's
// MigrationOrchestrator: per-VM working-set tracking, a watermark trigger on
// every host's aggregate, and automatic Agile migration of the fewest VMs
// needed to get back under the low watermark, placed best-fit across the
// fleet's destinations.
//
//   $ ./memory_pressure
//
// Three VMs idle along with small working sets; at t=120 s one of them turns
// hot, the aggregate crosses the high watermark, and the orchestrator evicts
// it to the destination with the tightest sufficient headroom.
#include <cstdio>
#include <vector>

#include "core/migration_orchestrator.hpp"
#include "util/log.hpp"
#include "workload/ycsb.hpp"

using namespace agile;

int main() {
  log::set_level(LogLevel::kInfo);

  core::TestbedConfig cfg;
  cfg.source.ram = 5_GiB;
  cfg.dest.ram = 5_GiB;
  cfg.vmd_server_capacity = 32_GiB;
  core::Testbed bed(cfg);

  std::vector<core::VmHandle*> handles;
  std::vector<workload::YcsbWorkload*> clients;
  for (int i = 0; i < 3; ++i) {
    core::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    spec.memory = 4_GiB;
    spec.reservation = 2_GiB;
    spec.swap = core::SwapBinding::kPerVmDevice;
    core::VmHandle& h = bed.create_vm(spec);
    handles.push_back(&h);

    workload::YcsbConfig ycfg;
    ycfg.dataset_bytes = 3_GiB;
    ycfg.active_bytes = 512_MiB;  // small working sets: consolidation-friendly
    auto load = std::make_unique<workload::YcsbWorkload>(
        h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
        bed.make_rng(spec.name + "/ycsb"));
    clients.push_back(load.get());
    bed.attach_workload(h, std::move(load));
    clients.back()->load(0);
  }
  bed.source()->ssd()->advance(sec(3600));

  core::MigrationOrchestratorConfig ocfg;
  ocfg.warmup = sec(100);  // let the initial estimates converge
  ocfg.wss.alpha = 0.85;  // brisk factors so the demo runs in minutes
  ocfg.wss.beta = 1.10;
  core::MigrationOrchestrator orchestrator(&bed, ocfg);
  for (core::VmHandle* h : handles) orchestrator.track(h);
  orchestrator.set_on_migration([&](core::VmHandle* victim,
                                    host::Host* dest) {
    std::printf(">>> t=%.0fs: watermark crossed (aggregate %.1f GiB) — "
                "migrating %s to %s\n",
                bed.cluster().now_seconds(),
                to_gib(orchestrator.last_decision().aggregate_wss),
                victim->machine->name().c_str(), dest->name().c_str());
  });
  orchestrator.start();

  bed.cluster().simulation().schedule_at(sec(120), [&] {
    std::printf(">>> t=120s: vm1's client widens its active set to 3 GiB\n");
    clients[1]->set_active_bytes(3_GiB);
  });

  bed.cluster().run_for_seconds(400);
  orchestrator.stop();

  std::printf("\nFinal placement:\n");
  for (core::VmHandle* h : handles) {
    host::Host* where = bed.host_of(h->machine);
    std::printf("  %-4s on %-6s  WSS estimate %.2f GiB  resident %.2f GiB\n",
                h->machine->name().c_str(),
                where != nullptr ? where->name().c_str() : "?",
                to_gib(orchestrator.wss_estimate(h)),
                to_gib(h->machine->memory().resident_bytes()));
  }
  for (const auto& m : orchestrator.migrations()) {
    std::printf("\n%s migration of %s: %.1f s, %.0f MiB on the wire.\n",
                m->technique(), m->machine()->name().c_str(),
                to_seconds(m->metrics().total_time()),
                to_mib(m->metrics().bytes_transferred));
  }
  return 0;
}
