// Autonomous memory-pressure response (paper §III-B) via the library's
// PressureResponder: per-VM working-set tracking, a watermark trigger on the
// aggregate, and automatic Agile migration of the fewest VMs needed to get
// back under the low watermark.
//
//   $ ./memory_pressure
//
// Three VMs idle along with small working sets; at t=120 s one of them turns
// hot, the aggregate crosses the high watermark, and the responder evicts it.
#include <cstdio>
#include <vector>

#include "core/pressure_responder.hpp"
#include "util/log.hpp"
#include "workload/ycsb.hpp"

using namespace agile;

int main() {
  log::set_level(LogLevel::kInfo);

  core::TestbedConfig cfg;
  cfg.source.ram = 5_GiB;
  cfg.dest.ram = 5_GiB;
  cfg.vmd_server_capacity = 32_GiB;
  core::Testbed bed(cfg);

  std::vector<core::VmHandle*> handles;
  std::vector<workload::YcsbWorkload*> clients;
  for (int i = 0; i < 3; ++i) {
    core::VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    spec.memory = 4_GiB;
    spec.reservation = 2_GiB;
    spec.swap = core::SwapBinding::kPerVmDevice;
    core::VmHandle& h = bed.create_vm(spec);
    handles.push_back(&h);

    workload::YcsbConfig ycfg;
    ycfg.dataset_bytes = 3_GiB;
    ycfg.active_bytes = 512_MiB;  // small working sets: consolidation-friendly
    auto load = std::make_unique<workload::YcsbWorkload>(
        h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
        bed.make_rng(spec.name + "/ycsb"));
    clients.push_back(load.get());
    bed.attach_workload(h, std::move(load));
    clients.back()->load(0);
  }
  bed.source()->ssd()->advance(sec(3600));

  core::PressureResponderConfig pcfg;
  pcfg.warmup = sec(100);  // let the initial estimates converge
  pcfg.wss.alpha = 0.85;  // brisk factors so the demo runs in minutes
  pcfg.wss.beta = 1.10;
  core::PressureResponder responder(&bed, pcfg);
  for (core::VmHandle* h : handles) responder.track(h);
  responder.set_on_migration([&](core::VmHandle* victim) {
    std::printf(">>> t=%.0fs: watermark crossed (aggregate %.1f GiB) — "
                "migrating %s\n",
                bed.cluster().now_seconds(),
                to_gib(responder.last_decision().aggregate_wss),
                victim->machine->name().c_str());
  });
  responder.start();

  bed.cluster().simulation().schedule_at(sec(120), [&] {
    std::printf(">>> t=120s: vm1's client widens its active set to 3 GiB\n");
    clients[1]->set_active_bytes(3_GiB);
  });

  bed.cluster().run_for_seconds(400);
  responder.stop();

  std::printf("\nFinal placement:\n");
  for (core::VmHandle* h : handles) {
    std::printf("  %-4s on %-6s  WSS estimate %.2f GiB  resident %.2f GiB\n",
                h->machine->name().c_str(),
                bed.source()->has_vm(h->machine) ? "source" : "dest",
                to_gib(responder.wss_estimate(h)),
                to_gib(h->machine->memory().resident_bytes()));
  }
  for (const auto& m : responder.migrations()) {
    std::printf("\n%s migration of %s: %.1f s, %.0f MiB on the wire.\n",
                m->technique(), m->machine()->name().c_str(),
                to_seconds(m->metrics().total_time()),
                to_mib(m->metrics().bytes_transferred));
  }
  return 0;
}
