// Quickstart: build the paper's three-host testbed, put one VM under memory
// pressure with a per-VM swap device, and Agile-migrate it.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: Testbed, VmSpec/SwapBinding,
// workload attachment, MigrationManager, and MigrationMetrics.
#include <cstdio>

#include "core/testbed.hpp"
#include "util/log.hpp"
#include "workload/ycsb.hpp"

using namespace agile;

int main() {
  log::set_level(LogLevel::kInfo);

  // 1. A testbed: source + destination hosts (8 GB RAM each), an external
  //    client machine, and one intermediate host lending 16 GB to the VMD.
  core::TestbedConfig cfg;
  cfg.source.ram = 8_GiB;
  cfg.dest.ram = 8_GiB;
  cfg.vmd_server_capacity = 16_GiB;
  core::Testbed bed(cfg);

  // 2. A 4 GB VM whose cgroup reservation is capped at 2 GB; cold pages go
  //    to its private, portable VMD namespace.
  core::VmSpec spec;
  spec.name = "redis-vm";
  spec.memory = 4_GiB;
  spec.reservation = 2_GiB;
  spec.swap = core::SwapBinding::kPerVmDevice;
  core::VmHandle& vm = bed.create_vm(spec);

  // 3. A YCSB-style client on the external host querying a 3 GB dataset in
  //    the VM — 1 GB of it is hot.
  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = 3_GiB;
  ycfg.active_bytes = 1_GiB;
  auto load = std::make_unique<workload::YcsbWorkload>(
      vm.machine, &bed.cluster().network(), bed.client_node(), ycfg,
      bed.make_rng("ycsb"));
  auto* ycsb = load.get();
  bed.attach_workload(vm, std::move(load));
  ycsb->load(0);
  bed.source()->ssd()->advance(sec(3600));  // absorb the bulk-load I/O

  // 4. Let it run for a bit, then Agile-migrate.
  core::ThroughputProbe probe(&bed.cluster(), ycsb, "ycsb");
  bed.cluster().run_for_seconds(30);
  std::printf("\nThroughput before migration: %.0f ops/s\n",
              probe.series().mean_between(10, 30));

  auto migration = bed.make_migration(core::Technique::kAgile, vm);
  migration->start();
  while (!migration->completed()) bed.cluster().run_for_seconds(1);
  bed.cluster().run_for_seconds(30);

  // 5. Inspect the result.
  const migration::MigrationMetrics& m = migration->metrics();
  std::printf("\nAgile migration of %s:\n", vm.machine->name().c_str());
  std::printf("  total time        %.1f s\n", to_seconds(m.total_time()));
  std::printf("  downtime          %.0f ms\n",
              static_cast<double>(m.downtime) / 1000.0);
  std::printf("  data on the wire  %.0f MiB (VM is %.0f MiB!)\n",
              to_mib(m.bytes_transferred), to_mib(spec.memory));
  std::printf("  cold descriptors  %llu pages stayed in the VMD\n",
              static_cast<unsigned long long>(m.pages_sent_descriptor));
  std::printf("  throughput after  %.0f ops/s\n",
              probe.series().mean_between(
                  bed.cluster().now_seconds() - 20, bed.cluster().now_seconds()));
  std::printf("  VM now runs on    %s\n",
              bed.dest()->has_vm(vm.machine) ? "dest" : "source");
  return 0;
}
