// Side-by-side comparison of pre-copy, post-copy and Agile on the same
// memory-pressured VM — the paper's core claim in one runnable program.
//
//   $ ./strategy_compare
#include <cstdio>

#include "core/scenarios.hpp"
#include "metrics/table.hpp"

using namespace agile;
using core::Technique;
namespace scen = core::scenarios;

int main() {
  std::printf("Migrating a busy 4 GB VM off a 2 GB host, four ways...\n\n");
  metrics::Table table({"technique", "total time (s)", "downtime (ms)",
                        "data on wire (MiB)", "source SSD swap-ins",
                        "demand faults over network"});
  for (Technique technique :
       {Technique::kPrecopy, Technique::kPostcopy, Technique::kAgile,
        Technique::kScatterGather}) {
    scen::SingleVmOptions opt;
    opt.technique = technique;
    opt.host_ram = 2_GiB;
    opt.vm_memory = 4_GiB;
    opt.busy = true;
    scen::SingleVm sc = scen::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    const migration::MigrationMetrics& m = sc.migration->metrics();
    table.add_row({core::technique_name(technique),
                   metrics::Table::num(to_seconds(m.total_time()), 1),
                   metrics::Table::num(static_cast<double>(m.downtime) / 1000.0, 0),
                   metrics::Table::num(to_mib(m.bytes_transferred), 0),
                   std::to_string(m.pages_swapped_in_at_source),
                   std::to_string(m.pages_demand_served)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Agile wins on application impact: it neither swaps cold pages in at\n"
      "the source nor ships them over the migration channel — they stay on\n"
      "the per-VM swap device, reachable from the destination. Scatter-gather\n"
      "frees the source even faster by scattering the resident set through\n"
      "the intermediaries too, trading a longer degradation tail at the\n"
      "destination (every hot page must come back out of the VMD).\n");
  return 0;
}
