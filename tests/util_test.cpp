#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "util/bitmap.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"
#include "util/units.hpp"

namespace agile {
namespace {

// --- log rate limiting -------------------------------------------------

// Restores the global log level when a test exits (pass or fail).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel lvl) : previous_(log::level()) {
    log::set_level(lvl);
  }
  ~ScopedLogLevel() { log::set_level(previous_); }

 private:
  LogLevel previous_;
};

TEST(LogEveryN, EmitsFirstAndEveryNth) {
  ScopedLogLevel quiet(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i) AGILE_LOG_EVERY_N(kInfo, 4, "hit=%d;", i);
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hit=0;"), std::string::npos);
  EXPECT_EQ(out.find("hit=1;"), std::string::npos);
  EXPECT_EQ(out.find("hit=3;"), std::string::npos);
  EXPECT_NE(out.find("hit=4;"), std::string::npos);
  EXPECT_NE(out.find("hit=8;"), std::string::npos);
  EXPECT_EQ(out.find("hit=9;"), std::string::npos);
}

TEST(LogEveryN, CallSitesCountIndependently) {
  ScopedLogLevel quiet(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 3; ++i) {
    AGILE_LOG_EVERY_N(kInfo, 100, "site_a=%d;", i);
    AGILE_LOG_EVERY_N(kInfo, 100, "site_b=%d;", i);
  }
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("site_a=0;"), std::string::npos);
  EXPECT_NE(out.find("site_b=0;"), std::string::npos);
  EXPECT_EQ(out.find("site_a=1;"), std::string::npos);
  EXPECT_EQ(out.find("site_b=2;"), std::string::npos);
}

TEST(LogEveryN, RespectsLevelThreshold) {
  ScopedLogLevel quiet(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 5; ++i) AGILE_LOG_EVERY_N(kDebug, 1, "debug=%d;", i);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// --- units -------------------------------------------------------------

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(10_GiB, 10ull * 1024 * 1024 * 1024);
}

TEST(Units, PagesForRoundsUp) {
  EXPECT_EQ(pages_for(0), 0u);
  EXPECT_EQ(pages_for(1), 1u);
  EXPECT_EQ(pages_for(kPageSize), 1u);
  EXPECT_EQ(pages_for(kPageSize + 1), 2u);
  EXPECT_EQ(pages_for(1_GiB), 262144u);
}

TEST(Units, TimeHelpers) {
  EXPECT_EQ(sec(1.5), 1'500'000);
  EXPECT_EQ(msec(2), 2000);
  EXPECT_DOUBLE_EQ(to_seconds(sec(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_mib(5_MiB), 5.0);
  EXPECT_DOUBLE_EQ(to_gib(3_GiB), 3.0);
}

// --- status ------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = not_found("page 42");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: page 42");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(invalid_argument("bad"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --- rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSameSeedAndTag) {
  Rng a(42, "x"), b(42, "x");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentTagsDecorrelate) {
  Rng a(42, "x"), b(42, "y");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInBounds) {
  Rng rng(1, "bounds");
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(2, "cover");
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3, "d");
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4, "b");
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5, "e");
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.next_exponential(3.0);
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.15);
}

TEST(Zipf, SkewsTowardLowIndices) {
  Rng rng(6, "z");
  ZipfSampler zipf(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 should dominate rank 100 heavily under theta=0.99.
  EXPECT_GT(counts[0], 20 * std::max(1, counts[100]));
  for (auto& [k, v] : counts) EXPECT_LT(k, 1000u);
}

TEST(Zipf, LargeDomainStaysInBounds) {
  Rng rng(7, "zl");
  ZipfSampler zipf(2'500'000, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 2'500'000u);
}

// --- bitmap ------------------------------------------------------------

TEST(Bitmap, StartsEmpty) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_TRUE(bm.none());
}

TEST(Bitmap, SetClearCount) {
  Bitmap bm(130);
  bm.set(0);
  bm.set(64);
  bm.set(129);
  EXPECT_EQ(bm.count(), 3u);
  bm.set(64);  // idempotent
  EXPECT_EQ(bm.count(), 3u);
  bm.clear(64);
  EXPECT_EQ(bm.count(), 2u);
  bm.clear(64);  // idempotent
  EXPECT_EQ(bm.count(), 2u);
  EXPECT_TRUE(bm.test(0));
  EXPECT_FALSE(bm.test(64));
  EXPECT_TRUE(bm.test(129));
}

TEST(Bitmap, InitialAllSetMasksTail) {
  Bitmap bm(70, true);
  EXPECT_EQ(bm.count(), 70u);
  EXPECT_EQ(bm.find_next_clear(0), Bitmap::npos);
}

TEST(Bitmap, FindNextSet) {
  Bitmap bm(200);
  bm.set(3);
  bm.set(64);
  bm.set(199);
  EXPECT_EQ(bm.find_next_set(0), 3u);
  EXPECT_EQ(bm.find_next_set(3), 3u);
  EXPECT_EQ(bm.find_next_set(4), 64u);
  EXPECT_EQ(bm.find_next_set(65), 199u);
  EXPECT_EQ(bm.find_next_set(200), Bitmap::npos);
}

TEST(Bitmap, FindNextClear) {
  Bitmap bm(130, true);
  bm.clear(5);
  bm.clear(128);
  EXPECT_EQ(bm.find_next_clear(0), 5u);
  EXPECT_EQ(bm.find_next_clear(6), 128u);
  EXPECT_EQ(bm.find_next_clear(129), Bitmap::npos);
}

TEST(Bitmap, SetAllClearAll) {
  Bitmap bm(100);
  bm.set_all();
  EXPECT_EQ(bm.count(), 100u);
  bm.clear_all();
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, OrWith) {
  Bitmap a(128), b(128);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(2);
  a.or_with(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(100));
}

TEST(Bitmap, SetRunCrossesWordBoundary) {
  Bitmap bm(256);
  for (std::size_t i = 60; i < 70; ++i) bm.set(i);  // straddles word 0/1
  Bitmap::Run r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 60u);
  EXPECT_EQ(r.end, 70u);
  EXPECT_EQ(r.length(), 10u);
  EXPECT_TRUE(bm.next_set_run(r.end).empty());
  // Starting mid-run returns the remainder.
  r = bm.next_set_run(65);
  EXPECT_EQ(r.begin, 65u);
  EXPECT_EQ(r.end, 70u);
}

TEST(Bitmap, SingleBitRunsAtWordEdges) {
  Bitmap bm(256);
  bm.set(63);
  bm.set(64);  // adjacent across the boundary: one run of two
  Bitmap::Run r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 63u);
  EXPECT_EQ(r.end, 65u);
  bm.clear(64);
  r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 63u);
  EXPECT_EQ(r.end, 64u);
  bm.clear(63);
  bm.set(64);
  r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 64u);
  EXPECT_EQ(r.end, 65u);
}

TEST(Bitmap, AllSetAndAllClearRuns) {
  Bitmap all(130, true);
  Bitmap::Run r = all.next_set_run(0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 130u);
  EXPECT_TRUE(all.next_clear_run(0).empty());

  Bitmap none(130);
  EXPECT_TRUE(none.next_set_run(0).empty());
  r = none.next_clear_run(0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 130u);
}

TEST(Bitmap, ClearRunMirrorsSetRun) {
  Bitmap bm(200, true);
  for (std::size_t i = 100; i < 140; ++i) bm.clear(i);
  Bitmap::Run r = bm.next_clear_run(0);
  EXPECT_EQ(r.begin, 100u);
  EXPECT_EQ(r.end, 140u);
  EXPECT_TRUE(bm.next_clear_run(140).empty());
}

TEST(Bitmap, SetRangeClearRangeMaintainCount) {
  Bitmap bm(300);
  bm.set_range(50, 200);  // spans three words
  EXPECT_EQ(bm.count(), 150u);
  EXPECT_FALSE(bm.test(49));
  EXPECT_TRUE(bm.test(50));
  EXPECT_TRUE(bm.test(199));
  EXPECT_FALSE(bm.test(200));
  bm.set_range(60, 70);  // overlap is idempotent
  EXPECT_EQ(bm.count(), 150u);
  bm.clear_range(100, 100);  // empty range is a no-op
  EXPECT_EQ(bm.count(), 150u);
  bm.clear_range(60, 190);
  EXPECT_EQ(bm.count(), 20u);
  Bitmap::Run r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 50u);
  EXPECT_EQ(r.end, 60u);
  r = bm.next_set_run(r.end);
  EXPECT_EQ(r.begin, 190u);
  EXPECT_EQ(r.end, 200u);
}

TEST(Bitmap, RunIterationMatchesPerBitScan) {
  // Randomized cross-check: iterating runs must visit exactly the bits that
  // per-bit find_next_set visits, in order.
  Rng rng(0xb17b17);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t size = 1 + rng.next_below(400);
    Bitmap bm(size);
    std::uint64_t density = 1 + rng.next_below(99);
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.next_below(100) < density) bm.set(i);
    }
    std::vector<std::size_t> from_runs;
    std::size_t covered = 0;
    for (Bitmap::Run r = bm.next_set_run(0); !r.empty();
         r = bm.next_set_run(r.end)) {
      ASSERT_LT(r.begin, r.end);
      // Maximality: the bits flanking the run are clear (or out of range).
      if (r.begin > 0) {
        EXPECT_FALSE(bm.test(r.begin - 1));
      }
      if (r.end < size) {
        EXPECT_FALSE(bm.test(r.end));
      }
      for (std::size_t i = r.begin; i < r.end; ++i) from_runs.push_back(i);
      covered += r.length();
    }
    std::vector<std::size_t> from_bits;
    for (std::size_t i = bm.find_next_set(0); i != Bitmap::npos;
         i = bm.find_next_set(i + 1)) {
      from_bits.push_back(i);
    }
    EXPECT_EQ(from_runs, from_bits);
    EXPECT_EQ(covered, bm.count());
  }
}

TEST(Bitmap, ResetResizes) {
  Bitmap bm(10);
  bm.set(9);
  bm.reset(1000);
  EXPECT_EQ(bm.size(), 1000u);
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, EmptyBitmapScans) {
  Bitmap bm;
  EXPECT_EQ(bm.find_next_set(0), Bitmap::npos);
  EXPECT_EQ(bm.find_next_clear(0), Bitmap::npos);
}

TEST(Bitmap, EmptyBitmapRunIteration) {
  Bitmap bm;
  EXPECT_TRUE(bm.next_set_run(0).empty());
  EXPECT_TRUE(bm.next_clear_run(0).empty());
  bm.deep_audit();
}

TEST(Bitmap, SingleBitRunsAtWordBoundaries) {
  // A lone set bit at each corner of a 64-bit word must come back as a
  // one-bit run, with the clear runs splitting around it.
  for (std::size_t pos : {std::size_t{0}, std::size_t{63}, std::size_t{64},
                          std::size_t{127}}) {
    Bitmap bm(128);
    bm.set(pos);
    Bitmap::Run r = bm.next_set_run(0);
    EXPECT_EQ(r.begin, pos);
    EXPECT_EQ(r.end, pos + 1);
    EXPECT_TRUE(bm.next_set_run(r.end).empty());
    Bitmap::Run c = bm.next_clear_run(0);
    if (pos == 0) {
      EXPECT_EQ(c.begin, 1u);
      EXPECT_EQ(c.end, 128u);
    } else {
      EXPECT_EQ(c.begin, 0u);
      EXPECT_EQ(c.end, pos);
      c = bm.next_clear_run(c.end);
      if (pos < 127) {
        EXPECT_EQ(c.begin, pos + 1);
        EXPECT_EQ(c.end, 128u);
      } else {
        EXPECT_TRUE(c.empty());
      }
    }
    bm.deep_audit();
  }
}

TEST(Bitmap, FullWordRunsSpanWords) {
  // A run covering whole words plus ragged edges on both sides must come
  // back as one maximal run, not per-word fragments.
  Bitmap bm(256);
  bm.set_range(60, 200);  // tail of word 0, words 1–2 whole, head of word 3
  Bitmap::Run r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 60u);
  EXPECT_EQ(r.end, 200u);
  EXPECT_TRUE(bm.next_set_run(r.end).empty());
  // Starting mid-run still reports the remainder of the same run.
  r = bm.next_set_run(128);
  EXPECT_EQ(r.begin, 128u);
  EXPECT_EQ(r.end, 200u);
  bm.deep_audit();
}

TEST(Bitmap, RangeOpsAtSizeBoundary) {
  Bitmap bm(65);
  bm.set_range(64, 65);  // final bit, alone in the last word
  EXPECT_EQ(bm.count(), 1u);
  EXPECT_TRUE(bm.test(64));
  Bitmap::Run r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 64u);
  EXPECT_EQ(r.end, 65u);
  bm.deep_audit();

  bm.set_range(0, 65);  // whole bitmap
  EXPECT_EQ(bm.count(), 65u);
  r = bm.next_set_run(0);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 65u);
  EXPECT_TRUE(bm.next_clear_run(0).empty());
  bm.deep_audit();

  bm.clear_range(64, 65);  // drop the final bit again
  EXPECT_EQ(bm.count(), 64u);
  EXPECT_FALSE(bm.test(64));
  r = bm.next_clear_run(0);
  EXPECT_EQ(r.begin, 64u);
  EXPECT_EQ(r.end, 65u);
  bm.deep_audit();

  bm.clear_range(0, 65);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_TRUE(bm.next_set_run(0).empty());
  bm.deep_audit();

  // Empty ranges are no-ops, including at the very end.
  bm.set_range(65, 65);
  bm.clear_range(0, 0);
  EXPECT_EQ(bm.count(), 0u);
  bm.deep_audit();
}

// --- annotated mutex primitives (util/thread_annotations.hpp) ----------
//
// The AGILE_* attributes themselves are exercised by clang in
// tools/check_thread_safety.sh; these tests pin the *runtime* behaviour of
// the wrappers on every compiler, annotations or not.

TEST(ThreadAnnotations, MutexLockSerializesWriters) {
  util::Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  util::MutexLock lock(mu);
  EXPECT_EQ(counter, 4000);
}

TEST(ThreadAnnotations, TryLockReflectsOwnership) {
  util::Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  // A different thread must see the mutex as held (try_lock on the owning
  // thread would be UB for std::mutex).
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ThreadAnnotations, CondVarWaitReleasesAndReacquires) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  // The consumer below holds `mu` while waiting; the producer can only set
  // `ready` if cv.wait() genuinely released the mutex, and the consumer can
  // only read it safely if wait() reacquired before returning.
  std::thread producer([&] {
    util::MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    util::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

}  // namespace
}  // namespace agile
