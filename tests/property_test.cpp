// Property-based and parameterized invariants.
//
// The parameterized migration suite sweeps technique × workload × seed and
// checks the invariants that must hold for ANY migration: no page lost or
// left kRemote, exact source release, bookkeeping consistency on both
// memories, deterministic outcomes, conservation of swap slots.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/testbed.hpp"
#include "util/bitmap.hpp"
#include "workload/oltp.hpp"
#include "workload/ycsb.hpp"

namespace agile {
namespace {

// --- Bitmap vs reference model -------------------------------------------

class BitmapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitmapFuzz, MatchesReferenceModel) {
  Rng rng(GetParam(), "bitmap-fuzz");
  const std::size_t n = 257 + rng.next_below(2048);
  Bitmap bm(n);
  std::vector<bool> ref(n, false);
  for (int op = 0; op < 4000; ++op) {
    std::size_t i = rng.next_below(n);
    switch (rng.next_below(3)) {
      case 0:
        bm.set(i);
        ref[i] = true;
        break;
      case 1:
        bm.clear(i);
        ref[i] = false;
        break;
      case 2: {
        ASSERT_EQ(bm.test(i), ref[i]);
        // Cross-check one scan from a random origin.
        std::size_t got = bm.find_next_set(i);
        std::size_t expected = Bitmap::npos;
        for (std::size_t j = i; j < n; ++j) {
          if (ref[j]) {
            expected = j;
            break;
          }
        }
        ASSERT_EQ(got, expected);
        break;
      }
    }
  }
  ASSERT_EQ(bm.count(),
            static_cast<std::size_t>(std::count(ref.begin(), ref.end(), true)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapFuzz, ::testing::Range<std::uint64_t>(1, 9));

// --- GuestMemory fuzz ------------------------------------------------------

class GuestMemoryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GuestMemoryFuzz, RandomOpsPreserveConsistency) {
  Rng rng(GetParam(), "mem-fuzz");
  auto ssd = std::make_shared<storage::SsdModel>();
  swap::LocalSwapDevice dev("swap", ssd, 1_GiB);
  mem::GuestMemoryConfig cfg;
  cfg.size = (16 + rng.next_below(48)) * 1_MiB;
  cfg.reservation = cfg.size / (1 + rng.next_below(4));
  mem::GuestMemory mem(cfg, &dev, Rng(GetParam(), "mem"));
  Bitmap dirty(mem.page_count());

  std::uint32_t tick = 0;
  for (int op = 0; op < 20000; ++op) {
    PageIndex p = rng.next_below(mem.page_count());
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2:
      case 3:
        mem.touch(p, rng.next_bool(0.3), ++tick);
        break;
      case 4:
        if (mem.is_swapped(p)) mem.swap_in_for_transfer(p, ++tick, rng.next_bool(0.5));
        break;
      case 5:
        mem.set_reservation(std::max<Bytes>(1_MiB, rng.next_below(cfg.size)));
        mem.enforce_reservation(rng.next_below(512));
        break;
      case 6:
        if (rng.next_bool(0.5)) {
          mem.attach_dirty_log(&dirty);
        } else {
          mem.detach_dirty_log();
        }
        break;
      case 7:
        ssd->advance(msec(10));
        break;
    }
  }
  mem.check_consistency();
  // Every allocated device slot must be referenced by exactly one page.
  std::uint64_t referenced = 0;
  for (PageIndex p = 0; p < mem.page_count(); ++p) {
    if (mem.swap_slot(p) != swap::kNoSlot) ++referenced;
  }
  EXPECT_EQ(dev.used_slots(), referenced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestMemoryFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Network conservation ---------------------------------------------------

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, ConservesBytesAndRespectsCapacity) {
  Rng rng(GetParam(), "net-fuzz");
  net::NetworkConfig cfg;
  cfg.protocol_efficiency = 1.0;
  net::Network net(cfg);
  const int nodes = 3 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nodes; ++i) net.add_node("n" + std::to_string(i));

  struct FlowState {
    net::FlowId id;
    Bytes offered = 0;
    Bytes delivered = 0;
  };
  std::vector<FlowState> flows;
  flows.reserve(8);  // the delivery lambdas capture &flows.back()
  for (int i = 0; i < 6; ++i) {
    auto src = static_cast<net::NodeId>(rng.next_below(nodes));
    auto dst = static_cast<net::NodeId>(rng.next_below(nodes));
    if (src == dst) continue;
    flows.push_back({0, 0, 0});
    FlowState* fs = &flows.back();
    fs->id = net.open_flow(src, dst, [fs](Bytes b) { fs->delivered += b; });
  }
  if (flows.empty()) return;

  const double cap = net.link_bytes_per_sec() * 0.1;  // per quantum
  for (int q = 0; q < 50; ++q) {
    for (auto& f : flows) {
      if (rng.next_bool(0.5)) {
        Bytes b = rng.next_below(30'000'000);
        net.offer(f.id, b);
        f.offered += b;
      }
    }
    Bytes before_total = 0;
    for (auto& f : flows) before_total += f.delivered;
    net.advance(msec(100));
    Bytes delivered_this_quantum = 0;
    for (auto& f : flows) delivered_this_quantum += f.delivered;
    delivered_this_quantum -= before_total;
    // No quantum can deliver more than every node's capacity combined.
    EXPECT_LE(static_cast<double>(delivered_this_quantum), cap * nodes + 1);
  }
  for (auto& f : flows) {
    EXPECT_EQ(f.delivered + net.backlog(f.id), f.offered);  // conservation
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz, ::testing::Range<std::uint64_t>(1, 7));

// --- Multi-hop max–min fairness on the leaf-spine fabric ---------------------

class LeafSpineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeafSpineFuzz, PerLinkCapacityAndNoStarvation) {
  Rng rng(GetParam(), "leaf-spine-fuzz");
  net::NetworkConfig cfg;
  cfg.protocol_efficiency = 1.0;
  cfg.topology.kind = net::TopologyKind::kLeafSpine;
  cfg.topology.racks = 2 + static_cast<std::uint32_t>(rng.next_below(3));
  cfg.topology.hosts_per_rack = 2 + static_cast<std::uint32_t>(rng.next_below(3));
  cfg.topology.oversubscription = 2.0 + static_cast<double>(rng.next_below(7));
  net::Network net(cfg);
  std::vector<net::NodeId> nodes;
  for (std::uint32_t r = 0; r < cfg.topology.racks; ++r) {
    for (std::uint32_t h = 0; h < cfg.topology.hosts_per_rack; ++h) {
      nodes.push_back(net.add_node("h", r));
    }
  }
  nodes.push_back(net.add_node("ext", net::kCoreAttached));

  struct FlowState {
    net::FlowId id;
    Bytes offered = 0;
    Bytes delivered = 0;
    Bytes last_quantum = 0;
  };
  std::vector<FlowState> flows;
  flows.reserve(12);
  for (int i = 0; i < 12 && flows.size() < 10; ++i) {
    auto src = nodes[rng.next_below(nodes.size())];
    auto dst = nodes[rng.next_below(nodes.size())];
    if (src == dst) continue;
    flows.push_back({});
    FlowState* fs = &flows.back();
    fs->id = net.open_flow(src, dst, [fs](Bytes b) {
      fs->delivered += b;
      fs->last_quantum += b;
    });
  }
  ASSERT_FALSE(flows.empty());

  for (int q = 0; q < 40; ++q) {
    for (auto& f : flows) {
      f.last_quantum = 0;
      if (rng.next_bool(0.6)) {
        Bytes b = rng.next_below(40'000'000);
        net.offer(f.id, b);
        f.offered += b;
      }
    }
    net.advance(msec(100));
    // Property 1: no link ever carries more than capacity x dt. The model
    // reports utilization clamped at 1.0, so check the raw byte growth.
    for (std::size_t t = 0; t < net::kLinkTierCount; ++t) {
      auto tier = static_cast<net::LinkTier>(t);
      EXPECT_LE(net.tier_totals(tier).peak_utilization, 1.0 + 1e-9);
    }
    // Property 2: no backlogged flow starves while every link of some flow
    // has slack — max–min progressive filling only stops a flow at a
    // saturated link. Weaker observable form: if NO link in the whole
    // fabric is saturated, every backlogged flow must have received bytes.
    double max_util = 0;
    for (std::size_t t = 0; t < net::kLinkTierCount; ++t) {
      max_util = std::max(
          max_util,
          net.tier_totals(static_cast<net::LinkTier>(t)).peak_utilization);
    }
    if (max_util < 0.999) {
      for (auto& f : flows) {
        if (net.backlog(f.id) > 0) {
          EXPECT_GT(f.last_quantum, 0u) << "flow starved below saturation";
        }
      }
    }
  }
  for (auto& f : flows) {
    EXPECT_EQ(f.delivered + net.backlog(f.id), f.offered);  // conservation
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeafSpineFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// --- Flat topology reproduces the legacy single-switch allocator -------------
//
// The legacy model water-filled per-node egress/ingress capacities. The
// topology generalization must keep the flat shape bit-for-bit identical:
// this reference reimplements the old node-capacity progressive filling and
// compares delivered byte counts exactly (no tolerance).

class FlatLegacyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatLegacyFuzz, FlatEqualsLegacyNodeCapacityAllocator) {
  Rng rng(GetParam(), "flat-legacy");
  net::NetworkConfig cfg;
  cfg.protocol_efficiency = 1.0;
  net::Network net(cfg);
  const std::size_t node_count = 4;
  for (std::size_t i = 0; i < node_count; ++i) net.add_node("n");

  struct FlowState {
    net::NodeId src, dst;
    net::FlowId id;
    Bytes backlog_ref = 0;  // reference model's view
    Bytes delivered_net = 0;
    Bytes quantum_net = 0;
  };
  std::vector<FlowState> flows;
  flows.reserve(8);
  for (int i = 0; i < 8; ++i) {
    auto src = static_cast<net::NodeId>(rng.next_below(node_count));
    auto dst = static_cast<net::NodeId>(rng.next_below(node_count));
    if (src == dst) continue;
    flows.push_back({src, dst, 0, 0, 0, 0});
    FlowState* fs = &flows.back();
    fs->id = net.open_flow(src, dst, [fs](Bytes b) {
      fs->delivered_net += b;
      fs->quantum_net += b;
    });
  }
  ASSERT_FALSE(flows.empty());

  const double cap = net.link_bytes_per_sec() * 0.1;  // per quantum, per dir
  for (int q = 0; q < 30; ++q) {
    for (auto& f : flows) {
      f.quantum_net = 0;
      if (rng.next_bool(0.5)) {
        Bytes b = rng.next_below(20'000'000);
        net.offer(f.id, b);
        f.backlog_ref += b;
      }
    }
    net.advance(msec(100));

    // Legacy reference: progressive filling over per-node tx/rx capacities
    // (flow order = open order, the same uniform-increment loop).
    std::vector<double> tx(node_count, cap), rx(node_count, cap);
    std::vector<double> remaining, alloc(flows.size(), 0.0);
    std::vector<bool> frozen(flows.size(), false);
    std::size_t live = 0;
    for (auto& f : flows) remaining.push_back(static_cast<double>(f.backlog_ref));
    for (std::size_t i = 0; i < flows.size(); ++i) {
      if (remaining[i] > 0) {
        ++live;
      } else {
        frozen[i] = true;
      }
    }
    constexpr double kEps = 1e-6;
    while (live > 0) {
      std::vector<int> tx_users(node_count, 0), rx_users(node_count, 0);
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (frozen[i]) continue;
        ++tx_users[flows[i].src];
        ++rx_users[flows[i].dst];
      }
      double inc = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (frozen[i]) continue;
        inc = std::min(inc, remaining[i]);
        inc = std::min(inc, tx[flows[i].src] / tx_users[flows[i].src]);
        inc = std::min(inc, rx[flows[i].dst] / rx_users[flows[i].dst]);
      }
      if (!std::isfinite(inc)) break;
      inc = std::max(inc, 0.0);
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (frozen[i]) continue;
        alloc[i] += inc;
        remaining[i] -= inc;
        tx[flows[i].src] -= inc;
        rx[flows[i].dst] -= inc;
      }
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (frozen[i]) continue;
        if (remaining[i] <= kEps || tx[flows[i].src] <= kEps ||
            rx[flows[i].dst] <= kEps) {
          frozen[i] = true;
          --live;
        }
      }
      if (inc <= kEps && live > 0) break;
    }
    for (std::size_t i = 0; i < flows.size(); ++i) {
      auto expect = static_cast<Bytes>(alloc[i]);
      expect = std::min<Bytes>(expect, flows[i].backlog_ref);
      ASSERT_EQ(flows[i].quantum_net, expect)
          << "flat topology diverged from the legacy allocator at quantum "
          << q << ", flow " << i;
      flows[i].backlog_ref -= expect;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatLegacyFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// --- Migration invariants across the matrix ---------------------------------

struct MigrationCase {
  core::Technique technique;
  bool oltp;
  std::uint64_t seed;
};

class MigrationMatrix : public ::testing::TestWithParam<MigrationCase> {};

TEST_P(MigrationMatrix, InvariantsHold) {
  const MigrationCase& c = GetParam();
  core::TestbedConfig cfg;
  cfg.cluster.seed = c.seed;
  cfg.source.ram = 1_GiB;
  cfg.source.host_os_bytes = 32_MiB;
  cfg.dest = cfg.source;
  cfg.dest.name = "dest";
  cfg.vmd_server_capacity = 2_GiB;
  core::Testbed bed(cfg);

  core::VmSpec spec;
  spec.name = "vm";
  spec.memory = 192_MiB;
  spec.reservation = 96_MiB;
  spec.swap = c.technique == core::Technique::kAgile
                  ? core::SwapBinding::kPerVmDevice
                  : core::SwapBinding::kHostPartition;
  core::VmHandle& h = bed.create_vm(spec);

  std::unique_ptr<workload::Workload> load;
  if (c.oltp) {
    workload::OltpConfig ocfg;
    ocfg.dataset_bytes = 128_MiB;
    ocfg.guest_os_bytes = 16_MiB;
    ocfg.base_txn_time = 2000;
    load = std::make_unique<workload::OltpWorkload>(
        h.machine, &bed.cluster().network(), bed.client_node(), ocfg,
        bed.make_rng("oltp"));
  } else {
    workload::YcsbConfig ycfg;
    ycfg.dataset_bytes = 150_MiB;
    ycfg.guest_os_bytes = 16_MiB;
    ycfg.active_bytes = 64_MiB;
    ycfg.read_fraction = 0.7;
    load = std::make_unique<workload::YcsbWorkload>(
        h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
        bed.make_rng("ycsb"));
  }
  workload::Workload* raw = load.get();
  bed.attach_workload(h, std::move(load));
  raw->load(0);
  bed.cluster().run_for_seconds(3);

  auto mig = bed.make_migration(c.technique, h);
  mig->start();
  double deadline = bed.cluster().now_seconds() + 600;
  while (!mig->completed() && bed.cluster().now_seconds() < deadline) {
    bed.cluster().run_for_seconds(1);
  }
  ASSERT_TRUE(mig->completed());
  bed.cluster().run_for_seconds(5);  // let the destination run a little

  // 1. Nothing left unresolved at the destination.
  EXPECT_EQ(h.machine->memory().remote_pages(), 0u);
  // 2. The source holds no memory at all.
  EXPECT_EQ(mig->source_memory()->resident_pages(), 0u);
  EXPECT_EQ(mig->source_memory()->swapped_pages(), 0u);
  // 3. Both page tables are internally consistent.
  h.machine->memory().check_consistency();
  mig->source_memory()->check_consistency();
  // 4. Slot conservation on the destination's swap device.
  std::uint64_t referenced = 0;
  const mem::GuestMemory& memory = h.machine->memory();
  for (PageIndex p = 0; p < memory.page_count(); ++p) {
    if (memory.state(p) != mem::PageState::kRemote &&
        memory.swap_slot(p) != swap::kNoSlot) {
      ++referenced;
    }
  }
  if (c.technique == core::Technique::kAgile) {
    EXPECT_EQ(h.per_vm_swap->used_slots(), referenced);
  } else {
    EXPECT_LE(referenced, bed.dest()->swap_partition()->used_slots());
  }
  // 5. The VM still works: the workload makes progress at the destination.
  std::uint64_t ops_before = raw->ops_total();
  bed.cluster().run_for_seconds(3);
  EXPECT_GT(raw->ops_total(), ops_before);
  // 6. Execution really moved.
  EXPECT_TRUE(bed.dest()->has_vm(h.machine));
  EXPECT_GE(mig->metrics().downtime, 0);
  EXPECT_GT(mig->metrics().bytes_transferred, 0u);
}

std::vector<MigrationCase> migration_cases() {
  std::vector<MigrationCase> cases;
  for (core::Technique t : {core::Technique::kPrecopy, core::Technique::kPostcopy,
                            core::Technique::kAgile}) {
    for (bool oltp : {false, true}) {
      for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        cases.push_back({t, oltp, seed});
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<MigrationCase>& info) {
  std::string s = core::technique_name(info.param.technique);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s + (info.param.oltp ? "_oltp_" : "_ycsb_") +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Matrix, MigrationMatrix,
                         ::testing::ValuesIn(migration_cases()), case_name);

// --- Zipf distribution property ---------------------------------------------

class ZipfTheta : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTheta, HeadProbabilityGrowsWithTheta) {
  Rng rng(5, "zipf-prop");
  ZipfSampler zipf(100000, GetParam());
  int head = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) head += zipf.sample(rng) < 1000;
  double frac = static_cast<double>(head) / kDraws;
  // Under uniform, P(<1000) would be 1%. For theta<1 the Zipf head mass is
  // ≈ (1000/100000)^(1-theta); check we're at least near that.
  double expected = std::pow(0.01, 1.0 - std::min(GetParam(), 0.99));
  EXPECT_GT(frac, 0.6 * expected);
  EXPECT_GT(frac, 0.015);
  EXPECT_LT(frac, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTheta,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 0.99, 1.2));

}  // namespace
}  // namespace agile
