#include <gtest/gtest.h>

#include "net/network.hpp"
#include "vmd/vmd.hpp"
#include "vmd/vmd_swap_device.hpp"

namespace agile::vmd {
namespace {

struct Fixture {
  net::Network net;
  net::NodeId source, dest, inter1, inter2;
  VmdServer s1, s2;
  VmdClient client;

  Fixture()
      : net(net::NetworkConfig{}),
        source(net.add_node("source")),
        dest(net.add_node("dest")),
        inter1(net.add_node("inter1")),
        inter2(net.add_node("inter2")),
        s1("vmd-s1", inter1, {.capacity = 1_MiB, .service_time = 3}),
        s2("vmd-s2", inter2, {.capacity = 1_MiB, .service_time = 3}),
        client(&net, source) {
    client.register_server(&s1);
    client.register_server(&s2);
  }
};

TEST(VmdServer, AllocateOnWriteOnly) {
  net::Network net;
  net::NodeId n = net.add_node("i");
  VmdServer s("s", n, {.capacity = 2 * kPageSize, .service_time = 3});
  EXPECT_EQ(s.used_bytes(), 0u);  // nothing reserved in advance
  EXPECT_EQ(s.store_page(), VmdTier::kMemory);
  EXPECT_EQ(s.store_page(), VmdTier::kMemory);
  EXPECT_EQ(s.store_page(), std::nullopt);  // full, no disk tier
  EXPECT_EQ(s.free_bytes(), 0u);
  s.drop_page(VmdTier::kMemory);
  EXPECT_EQ(s.store_page(), VmdTier::kMemory);
}

TEST(VmdServer, DiskTierAbsorbsOverflow) {
  net::Network net;
  net::NodeId n = net.add_node("i");
  VmdServerConfig cfg;
  cfg.capacity = 2 * kPageSize;
  cfg.disk_capacity = 2 * kPageSize;
  VmdServer s("s", n, cfg);
  EXPECT_EQ(s.store_page(), VmdTier::kMemory);
  EXPECT_EQ(s.store_page(), VmdTier::kMemory);
  EXPECT_EQ(s.store_page(), VmdTier::kDisk);  // spills
  EXPECT_EQ(s.store_page(), VmdTier::kDisk);
  EXPECT_EQ(s.store_page(), std::nullopt);  // both tiers full
  EXPECT_EQ(s.memory_pages(), 2u);
  EXPECT_EQ(s.disk_pages(), 2u);
  // Disk reads are orders of magnitude slower than memory service.
  SimTime mem_lat = s.read_latency(VmdTier::kMemory);
  SimTime disk_lat = s.read_latency(VmdTier::kDisk);
  EXPECT_GT(disk_lat, 10 * mem_lat);
  s.drop_page(VmdTier::kDisk);
  EXPECT_EQ(s.store_page(), VmdTier::kDisk);
  s.advance(sec(1));  // drains the tier device queue
}

TEST(VmdClient, RoundRobinSpreadsPages) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  for (PageKey k = 0; k < 100; ++k) fx.client.write_page(ns, k);
  EXPECT_EQ(fx.s1.used_pages(), 50u);
  EXPECT_EQ(fx.s2.used_pages(), 50u);
  EXPECT_EQ(fx.client.namespace_pages(ns), 100u);
}

TEST(VmdClient, SkipsFullServers) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  std::uint64_t cap1 = fx.s1.capacity() / kPageSize;
  std::uint64_t cap2 = fx.s2.capacity() / kPageSize;
  for (PageKey k = 0; k < cap1 + cap2; ++k) fx.client.write_page(ns, k);
  EXPECT_EQ(fx.s1.free_bytes(), 0u);
  EXPECT_EQ(fx.s2.free_bytes(), 0u);
}

TEST(VmdClient, ReadFindsPageWherever) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  for (PageKey k = 0; k < 10; ++k) fx.client.write_page(ns, k);
  for (PageKey k = 0; k < 10; ++k) {
    EXPECT_TRUE(fx.client.has_page(ns, k));
    SimTime lat = fx.client.read_page(ns, k);
    EXPECT_GE(lat, 200);          // at least the RTT
    EXPECT_LT(lat, msec(2));      // remote memory, not disk
  }
}

TEST(VmdClient, NamespacesAreIsolated) {
  Fixture fx;
  NamespaceId a = fx.client.create_namespace("vm-a");
  NamespaceId b = fx.client.create_namespace("vm-b");
  fx.client.write_page(a, 0);
  EXPECT_TRUE(fx.client.has_page(a, 0));
  EXPECT_FALSE(fx.client.has_page(b, 0));
  EXPECT_EQ(fx.client.namespace_name(a), "vm-a");
  EXPECT_EQ(fx.client.namespace_name(b), "vm-b");
}

TEST(VmdClient, DropReleasesServerFrame) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  fx.client.write_page(ns, 0);
  std::uint64_t used = fx.s1.used_pages() + fx.s2.used_pages();
  EXPECT_EQ(used, 1u);
  fx.client.drop_page(ns, 0);
  EXPECT_EQ(fx.s1.used_pages() + fx.s2.used_pages(), 0u);
  EXPECT_FALSE(fx.client.has_page(ns, 0));
}

TEST(VmdClient, AvailabilityCacheTracksServers) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  Bytes before = fx.client.cached_free_bytes();
  for (PageKey k = 0; k < 10; ++k) fx.client.write_page(ns, k);
  EXPECT_EQ(fx.client.cached_free_bytes(), before - 10 * kPageSize);
  fx.client.update_availability();
  EXPECT_EQ(fx.client.cached_free_bytes(), before - 10 * kPageSize);
}

TEST(VmdClient, ReadsConsumeNetworkBandwidth) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  fx.client.write_page(ns, 0);
  fx.net.advance(msec(100));
  auto rx_before = fx.net.stats(fx.source).rx_bytes;
  fx.client.read_page(ns, 0);
  fx.net.advance(msec(100));
  EXPECT_GE(fx.net.stats(fx.source).rx_bytes - rx_before, kPageSize);
}

TEST(VmdClient, CongestedLinkSlowsReads) {
  Fixture fx;
  NamespaceId ns = fx.client.create_namespace("vm1");
  fx.client.write_page(ns, 0);
  fx.net.advance(msec(100));
  SimTime idle = fx.client.read_page(ns, 0);
  // Saturate inter1 -> source with a bulk flow.
  net::FlowId f = fx.net.open_flow(fx.inter1, fx.source, [](Bytes) {});
  fx.net.offer(f, 10_GiB);
  fx.net.advance(sec(1));
  SimTime busy = fx.client.read_page(ns, 0);
  EXPECT_GT(busy, idle);
}

TEST(VmdSwapDevice, SwapInterfaceRoundTrip) {
  Fixture fx;
  VmdSwapDevice dev("blk1", &fx.client, 1_MiB);
  swap::SwapSlot s = dev.allocate_slot();
  dev.write_page(s);
  EXPECT_EQ(dev.used_slots(), 1u);
  EXPECT_EQ(dev.stored_pages(), 1u);
  SimTime lat = dev.read_page(s);
  EXPECT_GT(lat, 0);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  dev.free_slot(s);
  EXPECT_EQ(dev.used_slots(), 0u);
  EXPECT_EQ(dev.stored_pages(), 0u);
}

TEST(VmdSwapDevice, FreeingUnwrittenSlotIsSafe) {
  Fixture fx;
  VmdSwapDevice dev("blk1", &fx.client, 1_MiB);
  swap::SwapSlot s = dev.allocate_slot();
  dev.free_slot(s);  // never written; must not touch servers
  EXPECT_EQ(dev.stored_pages(), 0u);
}

TEST(VmdSwapDevice, PortableAcrossHosts) {
  Fixture fx;
  VmdSwapDevice dev("blk1", &fx.client, 1_MiB);
  swap::SwapSlot s = dev.allocate_slot();
  dev.write_page(s);
  // Migrate: the device re-attaches at the destination; the page is still
  // reachable without any data movement between source and dest.
  dev.attach_to(fx.dest);
  EXPECT_EQ(fx.client.access_node(), fx.dest);
  SimTime lat = dev.read_page(s);
  EXPECT_GT(lat, 0);
  EXPECT_EQ(dev.stored_pages(), 1u);
}

TEST(VmdSwapDevice, SeparateDevicesShareServers) {
  Fixture fx;
  VmdSwapDevice d1("blk1", &fx.client, 1_MiB);
  VmdSwapDevice d2("blk2", &fx.client, 1_MiB);
  swap::SwapSlot a = d1.allocate_slot();
  swap::SwapSlot b = d2.allocate_slot();
  d1.write_page(a);
  d2.write_page(b);
  EXPECT_EQ(fx.s1.used_pages() + fx.s2.used_pages(), 2u);
  EXPECT_EQ(d1.stored_pages(), 1u);
  EXPECT_EQ(d2.stored_pages(), 1u);
}


TEST(VmdClient, SpillsToDiskTierAndPrefersMemoryServers) {
  net::Network net;
  net::NodeId client_node = net.add_node("c");
  net::NodeId n1 = net.add_node("i1");
  net::NodeId n2 = net.add_node("i2");
  VmdServerConfig small;
  small.capacity = 4 * kPageSize;
  small.disk_capacity = 64 * kPageSize;
  VmdServer s1("s1", n1, small);
  VmdServer s2("s2", n2, small);
  VmdClient client(&net, client_node);
  client.register_server(&s1);
  client.register_server(&s2);
  NamespaceId ns = client.create_namespace("vm");
  // 8 pages fit in memory across the two servers; the rest hit disk.
  for (PageKey k = 0; k < 20; ++k) client.write_page(ns, k);
  EXPECT_EQ(s1.memory_pages() + s2.memory_pages(), 8u);
  EXPECT_EQ(s1.disk_pages() + s2.disk_pages(), 12u);
  // Reads from spilled pages still resolve (and are slower).
  SimTime mem_read = client.read_page(ns, 0);
  SimTime disk_read = client.read_page(ns, 19);
  EXPECT_GT(disk_read, mem_read);
  // Drops return capacity to the right tier.
  for (PageKey k = 0; k < 20; ++k) client.drop_page(ns, k);
  EXPECT_EQ(s1.used_pages() + s2.used_pages(), 0u);
}

TEST(VmdClient, DiskTierKeepsSwapDeviceUsable) {
  net::Network net;
  net::NodeId client_node = net.add_node("c");
  net::NodeId n1 = net.add_node("i1");
  VmdServerConfig cfg;
  cfg.capacity = 8 * kPageSize;
  cfg.disk_capacity = 1024 * kPageSize;
  VmdServer s1("s1", n1, cfg);
  VmdClient client(&net, client_node);
  client.register_server(&s1);
  VmdSwapDevice dev("blk", &client, 4_MiB);
  std::vector<swap::SwapSlot> slots;
  for (int i = 0; i < 100; ++i) {
    slots.push_back(dev.allocate_slot());
    dev.write_page(slots.back());
  }
  EXPECT_EQ(dev.stored_pages(), 100u);
  for (swap::SwapSlot slot : slots) EXPECT_GT(dev.read_page(slot), 0);
  for (swap::SwapSlot slot : slots) dev.free_slot(slot);
  EXPECT_EQ(s1.used_pages(), 0u);
}

}  // namespace
}  // namespace agile::vmd
