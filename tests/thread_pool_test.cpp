#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace agile::util {
namespace {

TEST(ThreadPool, DefaultWorkersAtLeastOne) {
  EXPECT_GE(ThreadPool::default_workers(), 1u);
  ThreadPool pool;
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, FuturesCarryResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ConcurrentSubmitFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 200;
  std::atomic<int> executed{0};
  std::mutex mu;
  std::vector<std::future<void>> futures;
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        auto f = pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPool, SubmitFromInsideTask) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 41; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
  }  // destructor runs every queued task, then joins
  EXPECT_EQ(executed.load(), 64);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

}  // namespace
}  // namespace agile::util
