#include <gtest/gtest.h>

#include <memory>

#include "mem/guest_memory.hpp"
#include "mem/pagemap.hpp"
#include "swap/swap_device.hpp"

namespace agile::mem {
namespace {

struct Fixture {
  std::shared_ptr<storage::SsdModel> ssd = std::make_shared<storage::SsdModel>();
  swap::LocalSwapDevice swap_dev{"swap0", ssd, 1_GiB};

  GuestMemory make(Bytes size, Bytes reservation) {
    GuestMemoryConfig cfg;
    cfg.size = size;
    cfg.reservation = reservation;
    return GuestMemory(cfg, &swap_dev, Rng(1, "mem"));
  }
};

TEST(GuestMemory, FreshMemoryIsUntouched) {
  Fixture fx;
  GuestMemory mem = fx.make(16_MiB, 16_MiB);
  EXPECT_EQ(mem.page_count(), 4096u);
  EXPECT_EQ(mem.resident_pages(), 0u);
  EXPECT_EQ(mem.swapped_pages(), 0u);
  EXPECT_EQ(mem.untouched_pages(), 4096u);
  EXPECT_EQ(mem.state(0), PageState::kUntouched);
  mem.check_consistency();
}

TEST(GuestMemory, FirstTouchIsMinorFault) {
  Fixture fx;
  GuestMemory mem = fx.make(16_MiB, 16_MiB);
  SimTime lat = mem.touch(5, /*write=*/false, 1);
  EXPECT_GE(lat, 0);
  EXPECT_EQ(mem.state(5), PageState::kResident);
  EXPECT_EQ(mem.stats().minor_faults, 1u);
  EXPECT_EQ(mem.stats().major_faults, 0u);
  // Second touch is the fast path.
  EXPECT_EQ(mem.touch(5, false, 2), 0);
  EXPECT_EQ(mem.stats().minor_faults, 1u);
}

TEST(GuestMemory, ReservationCapsResidency) {
  Fixture fx;
  GuestMemory mem = fx.make(16_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  EXPECT_EQ(mem.resident_pages(), pages_for(4_MiB));
  EXPECT_EQ(mem.swapped_pages(), pages_for(12_MiB));
  EXPECT_EQ(mem.stats().swap_outs, pages_for(12_MiB));
  mem.check_consistency();
}

TEST(GuestMemory, SwapInIsMajorFault) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  // Find a swapped page and touch it.
  PageIndex victim = 0;
  while (!mem.is_swapped(victim)) ++victim;
  SimTime lat = mem.touch(victim, false, 2);
  EXPECT_GT(lat, 0);  // had to read the SSD
  EXPECT_EQ(mem.state(victim), PageState::kResident);
  EXPECT_EQ(mem.stats().major_faults, 1u);
  mem.check_consistency();
}

TEST(GuestMemory, CleanReFaultedPageKeepsSwapCopyUntilWrite) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  PageIndex p = 0;
  while (!mem.is_swapped(p)) ++p;
  swap::SwapSlot slot = mem.swap_slot(p);
  std::uint64_t used_before = fx.swap_dev.used_slots();
  mem.touch(p, /*write=*/false, 2);  // read fault: swap copy stays (swap cache)
  EXPECT_EQ(mem.swap_slot(p), slot);
  // p keeps its slot while resident, and the evicted victim allocated one.
  EXPECT_EQ(fx.swap_dev.used_slots(), used_before + 1);
  mem.touch(p, /*write=*/true, 3);  // write: swap cache dropped
  EXPECT_EQ(mem.swap_slot(p), swap::kNoSlot);
  EXPECT_EQ(fx.swap_dev.used_slots(), used_before);
  mem.check_consistency();
}

TEST(GuestMemory, CleanEvictionCostsNoWrite) {
  Fixture fx;
  // Tiny reservation: read-only re-faults cycle pages through the resident
  // set, and the evicted ones still hold valid swap copies → free drops.
  GuestMemory mem = fx.make(8_MiB, 64_KiB);
  mem.prefill(mem.page_count(), 1);
  std::uint64_t writes_before = fx.swap_dev.stats().writes;
  std::uint64_t faulted = 0;
  for (PageIndex p = 0; p < mem.page_count() && faulted < 1000; ++p) {
    if (mem.is_swapped(p)) {
      mem.touch(p, false, static_cast<std::uint32_t>(10 + faulted));
      ++faulted;
    }
  }
  EXPECT_GT(mem.stats().clean_drops, 900u);
  // Clean drops caused no swap-device writes.
  EXPECT_LT(fx.swap_dev.stats().writes - writes_before, 100u);
  mem.check_consistency();
}

TEST(GuestMemory, LruPrefersColdVictims) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  std::uint64_t hot = pages_for(2_MiB);
  // Make pages [0, hot) hot (touched every tick), rest cold.
  for (std::uint32_t tick = 1; tick <= 20; ++tick) {
    for (PageIndex p = 0; p < hot; ++p) mem.touch(p, false, tick);
  }
  // Fill with cold pages at old ticks, then add pressure at a recent tick.
  for (PageIndex p = hot; p < mem.page_count(); ++p) mem.touch(p, true, 21);
  for (PageIndex p = 0; p < hot; ++p) mem.touch(p, false, 22);
  // Now evict: the hot half should mostly survive.
  std::uint64_t hot_resident = 0;
  for (PageIndex p = 0; p < hot; ++p) hot_resident += mem.is_resident(p);
  EXPECT_GT(hot_resident, hot * 8 / 10);
}

TEST(GuestMemory, SetReservationShrinkEnforcedGradually) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 8_MiB);
  mem.prefill(mem.page_count(), 1);
  EXPECT_EQ(mem.resident_pages(), mem.page_count());
  mem.set_reservation(4_MiB);
  EXPECT_TRUE(mem.over_reservation());
  std::uint64_t evicted = mem.enforce_reservation(100);
  EXPECT_EQ(evicted, 100u);
  EXPECT_TRUE(mem.over_reservation());
  evicted = mem.enforce_reservation(1'000'000);
  EXPECT_EQ(mem.resident_pages(), pages_for(4_MiB));
  EXPECT_FALSE(mem.over_reservation());
  mem.check_consistency();
}

TEST(GuestMemory, DirtyLogRecordsWrites) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 8_MiB);
  Bitmap dirty(mem.page_count());
  mem.attach_dirty_log(&dirty);
  mem.touch(3, true, 1);
  mem.touch(4, false, 1);
  mem.touch(5, true, 1);
  EXPECT_TRUE(dirty.test(3));
  EXPECT_FALSE(dirty.test(4));
  EXPECT_TRUE(dirty.test(5));
  mem.detach_dirty_log();
  mem.touch(6, true, 1);
  EXPECT_FALSE(dirty.test(6));
}

TEST(GuestMemory, SwapInForTransferKeepsCleanCopy) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  PageIndex p = 0;
  while (!mem.is_swapped(p)) ++p;
  swap::SwapSlot slot = mem.swap_slot(p);
  std::uint64_t resident_before = mem.resident_pages();
  SimTime lat = mem.swap_in_for_transfer(p, 2);
  EXPECT_GT(lat, 0);
  EXPECT_TRUE(mem.is_resident(p));
  EXPECT_EQ(mem.swap_slot(p), slot);                 // copy kept
  EXPECT_EQ(mem.resident_pages(), resident_before);  // someone got evicted
  mem.check_consistency();
}

TEST(GuestMemory, PagemapMirrorsState) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  Pagemap pm(mem);
  std::uint64_t present = 0, swapped = 0;
  for (PageIndex p = 0; p < mem.page_count(); ++p) {
    PagemapEntry e = pm.entry(p);
    ASSERT_FALSE(e.present && e.swapped);
    if (e.present) ++present;
    if (e.swapped) {
      ++swapped;
      EXPECT_EQ(e.swap_offset, mem.swap_slot(p));
    }
  }
  EXPECT_EQ(present, mem.resident_pages());
  EXPECT_EQ(swapped, mem.swapped_pages());
}

TEST(GuestMemory, ReleasePageFreesFrameAndSlots) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  PageIndex res = 0;
  while (!mem.is_resident(res)) ++res;
  PageIndex swp = 0;
  while (!mem.is_swapped(swp)) ++swp;

  std::uint64_t resident_before = mem.resident_pages();
  mem.release_page(res);
  EXPECT_EQ(mem.state(res), PageState::kRemote);
  EXPECT_EQ(mem.resident_pages(), resident_before - 1);

  std::uint64_t slots_before = fx.swap_dev.used_slots();
  mem.release_page(swp);  // cold page: slot survives (portable device)
  EXPECT_EQ(mem.state(swp), PageState::kRemote);
  EXPECT_EQ(fx.swap_dev.used_slots(), slots_before);
  // Releasing again is a no-op.
  mem.release_page(swp);
  mem.check_consistency();
}

TEST(GuestMemory, DestinationInstallFlow) {
  Fixture fx;
  GuestMemory dst = fx.make(8_MiB, 4_MiB);
  dst.mark_all_remote();
  EXPECT_EQ(dst.remote_pages(), dst.page_count());

  dst.install_resident(0, 1);
  EXPECT_EQ(dst.state(0), PageState::kResident);

  swap::SwapSlot slot = fx.swap_dev.allocate_slot();
  dst.install_swapped(1, slot);
  EXPECT_EQ(dst.state(1), PageState::kSwapped);
  EXPECT_EQ(dst.swap_slot(1), slot);

  dst.install_untouched(2);
  EXPECT_EQ(dst.state(2), PageState::kUntouched);
  EXPECT_EQ(dst.remote_pages(), dst.page_count() - 3);
  dst.check_consistency();
}

TEST(GuestMemory, InstallRespectsReservation) {
  Fixture fx;
  GuestMemory dst = fx.make(8_MiB, 2_MiB);
  dst.mark_all_remote();
  for (PageIndex p = 0; p < dst.page_count(); ++p) dst.install_resident(p, 1);
  EXPECT_EQ(dst.resident_pages(), pages_for(2_MiB));
  EXPECT_EQ(dst.swapped_pages(), dst.page_count() - pages_for(2_MiB));
  dst.check_consistency();
}

TEST(GuestMemory, TrueWorkingSetCountsRecentPages) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 8_MiB);
  for (PageIndex p = 0; p < 100; ++p) mem.touch(p, false, 10);
  for (PageIndex p = 100; p < 300; ++p) mem.touch(p, false, 95);
  EXPECT_EQ(mem.true_working_set_pages(100, 10), 200u);
  EXPECT_EQ(mem.true_working_set_pages(100, 90), 300u);
}

TEST(GuestMemory, SwapDeviceStatsSeeTraffic) {
  Fixture fx;
  GuestMemory mem = fx.make(8_MiB, 4_MiB);
  mem.prefill(mem.page_count(), 1);
  EXPECT_EQ(fx.swap_dev.stats().writes, pages_for(4_MiB));
  PageIndex p = 0;
  while (!mem.is_swapped(p)) ++p;
  mem.touch(p, false, 2);
  EXPECT_EQ(fx.swap_dev.stats().reads, 1u);
}

}  // namespace
}  // namespace agile::mem
