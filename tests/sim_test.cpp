#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace agile::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(300, [&] { order.push_back(3); });
  s.schedule_at(100, [&] { order.push_back(1); });
  s.schedule_at(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesNow) {
  Simulation s;
  SimTime seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulation, RunUntilAdvancesClockToBound) {
  Simulation s;
  int fired = 0;
  s.schedule_at(100, [&] { ++fired; });
  s.schedule_at(500, [&] { ++fired; });
  s.run_until(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 200);
  s.run_until(500);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulation, RunUntilInclusiveOfBoundary) {
  Simulation s;
  int fired = 0;
  s.schedule_at(200, [&] { ++fired; });
  s.run_until(200);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  int fired = 0;
  EventId id = s.schedule_at(100, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, CancelledEventDoesNotBlockRunUntil) {
  Simulation s;
  int fired = 0;
  EventId id = s.schedule_at(100, [&] { ++fired; });
  s.schedule_at(300, [&] { ++fired; });
  s.cancel(id);
  s.run_until(150);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.now(), 150);
  s.run_until(300);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CancelAfterExecutionReturnsFalse) {
  Simulation s;
  int fired = 0;
  EventId id = s.schedule_at(100, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  // The id is gone from the heap; cancelling it must not claim success (the
  // old bookkeeping leaked such ids and corrupted pending_events()).
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, CancelUnknownIdReturnsFalse) {
  Simulation s;
  EXPECT_FALSE(s.cancel(9999));
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, PendingEventsExactUnderCancellation) {
  Simulation s;
  EventId a = s.schedule_at(100, [] {});
  s.schedule_at(200, [] {});
  EventId c = s.schedule_at(300, [] {});
  EXPECT_EQ(s.pending_events(), 3u);
  EXPECT_TRUE(s.cancel(a));
  EXPECT_EQ(s.pending_events(), 2u);
  EXPECT_TRUE(s.cancel(c));
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_FALSE(s.cancel(c));  // double cancel: unchanged
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(s.now(), 200);  // the cancelled tail event never advanced time
}

TEST(Simulation, NextEventTimeSkipsCancelledHead) {
  Simulation s;
  EventId a = s.schedule_at(100, [] {});
  s.schedule_at(250, [] {});
  EXPECT_EQ(s.next_event_time(), 100);
  s.cancel(a);
  EXPECT_EQ(s.next_event_time(), 250);
  s.run();
  EXPECT_EQ(s.next_event_time(), -1);
}

TEST(Simulation, StopHaltsRun) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, PeriodicFiresAtPeriod) {
  Simulation s;
  std::vector<SimTime> times;
  auto task = s.schedule_periodic(100, [&](SimTime now) { times.push_back(now); });
  s.run_until(350);
  EXPECT_EQ(times, (std::vector<SimTime>{100, 200, 300}));
  task->cancel();
  s.run_until(1000);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Simulation, PeriodicFirstDelayZeroFiresImmediately) {
  Simulation s;
  std::vector<SimTime> times;
  auto task = s.schedule_periodic(100, [&](SimTime now) { times.push_back(now); }, 0);
  s.run_until(250);
  EXPECT_EQ(times, (std::vector<SimTime>{0, 100, 200}));
  task->cancel();
}

TEST(Simulation, PeriodicPeriodChangeTakesEffectNextFire) {
  Simulation s;
  std::vector<SimTime> times;
  std::shared_ptr<PeriodicTask> task;
  task = s.schedule_periodic(100, [&](SimTime now) {
    times.push_back(now);
    if (times.size() == 2) task->set_period(300);
  });
  s.run_until(1100);
  // 100, 200 at period 100; then 500, 800, 1100 at period 300.
  EXPECT_EQ(times, (std::vector<SimTime>{100, 200, 500, 800, 1100}));
  task->cancel();
}

TEST(Simulation, CancelInsideCallbackStopsFutureFires) {
  Simulation s;
  int fires = 0;
  std::shared_ptr<PeriodicTask> task;
  task = s.schedule_periodic(10, [&](SimTime) {
    if (++fires == 3) task->cancel();
  });
  s.run();
  EXPECT_EQ(fires, 3);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_after(5, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), 45);
}

}  // namespace
}  // namespace agile::sim
