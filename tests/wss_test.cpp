#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "workload/ycsb.hpp"
#include "wss/reservation_controller.hpp"
#include "wss/watermark_trigger.hpp"

namespace agile::wss {
namespace {

// --- watermark / VM selection (pure logic) -------------------------------

TEST(Watermark, NoPressureBelowHighWatermark) {
  std::vector<VmPressure> vms = {{"a", 4_GiB}, {"b", 4_GiB}};
  TriggerDecision d = evaluate_watermarks(16_GiB, 200_MiB, vms, {});
  EXPECT_FALSE(d.pressure);
  EXPECT_TRUE(d.victims.empty());
  EXPECT_EQ(d.aggregate_wss, 8_GiB + 200_MiB);
}

TEST(Watermark, PressureSelectsLargestFirst) {
  std::vector<VmPressure> vms = {{"a", 5_GiB}, {"b", 8_GiB}, {"c", 3_GiB}};
  // Aggregate ~16.2 GiB on a 16 GiB host: over 90%.
  TriggerDecision d = evaluate_watermarks(16_GiB, 200_MiB, vms, {});
  ASSERT_TRUE(d.pressure);
  ASSERT_EQ(d.victims.size(), 1u);
  EXPECT_EQ(d.victims[0], 1u);  // "b", the largest
  EXPECT_LE(d.aggregate_after, static_cast<Bytes>(0.75 * 16_GiB));
}

TEST(Watermark, SelectsFewestVmsToReachLowWatermark) {
  std::vector<VmPressure> vms = {{"a", 2_GiB}, {"b", 2_GiB}, {"c", 2_GiB},
                                 {"d", 2_GiB}, {"e", 2_GiB}};
  WatermarkConfig cfg{.high = 0.80, .low = 0.50};
  TriggerDecision d = evaluate_watermarks(10_GiB, 0, vms, cfg);
  ASSERT_TRUE(d.pressure);
  // Need to go from 10 GiB to <= 5 GiB: exactly 3 × 2 GiB VMs.
  EXPECT_EQ(d.victims.size(), 3u);
}

TEST(Watermark, ExactlyAtHighWatermarkIsNotPressure) {
  std::vector<VmPressure> vms = {{"a", 9_GiB}};
  WatermarkConfig cfg{.high = 0.90, .low = 0.75};
  TriggerDecision d = evaluate_watermarks(10_GiB, 0, vms, cfg);
  EXPECT_FALSE(d.pressure);
}

TEST(Watermark, TieBreaksByInputOrder) {
  std::vector<VmPressure> vms = {{"a", 4_GiB}, {"b", 4_GiB}, {"c", 4_GiB}};
  WatermarkConfig cfg{.high = 0.80, .low = 0.70};
  TriggerDecision d = evaluate_watermarks(12_GiB, 0, vms, cfg);
  ASSERT_TRUE(d.pressure);
  ASSERT_FALSE(d.victims.empty());
  EXPECT_EQ(d.victims[0], 0u);
}

TEST(Watermark, EmptyHostNeverPressured) {
  TriggerDecision d = evaluate_watermarks(16_GiB, 200_MiB, {}, {});
  EXPECT_FALSE(d.pressure);
  EXPECT_FALSE(d.insufficient);
}

TEST(Watermark, HostOsAloneOverHighIsInsufficient) {
  // The host OS exceeds the high watermark by itself: every VM is selected
  // and the decision is explicitly flagged as insufficient.
  std::vector<VmPressure> vms = {{"a", 1_GiB}, {"b", 512_MiB}};
  TriggerDecision d = evaluate_watermarks(10_GiB, static_cast<Bytes>(9.5 * 1_GiB),
                                          vms, {});
  ASSERT_TRUE(d.pressure);
  EXPECT_EQ(d.victims.size(), vms.size());
  EXPECT_TRUE(d.insufficient);
  EXPECT_GT(d.aggregate_after, static_cast<Bytes>(0.75 * 10_GiB));
}

TEST(Watermark, ZeroVmsOverHighIsInsufficient) {
  TriggerDecision d = evaluate_watermarks(1_GiB, 1_GiB, {}, {});
  ASSERT_TRUE(d.pressure);
  EXPECT_TRUE(d.victims.empty());
  EXPECT_TRUE(d.insufficient);
}

TEST(Watermark, SufficientEvictionIsNotFlagged) {
  std::vector<VmPressure> vms = {{"a", 9_GiB}, {"b", 1_GiB}};
  TriggerDecision d = evaluate_watermarks(10_GiB, 0, vms, {});
  ASSERT_TRUE(d.pressure);
  EXPECT_FALSE(d.insufficient);
}

TEST(Watermark, LowEqualsHighIsAccepted) {
  // A degenerate band: any crossing must come back under the same line.
  std::vector<VmPressure> vms = {{"a", 5_GiB}, {"b", 4_GiB}};
  WatermarkConfig cfg{.high = 0.80, .low = 0.80};
  TriggerDecision d = evaluate_watermarks(10_GiB, 0, vms, cfg);
  ASSERT_TRUE(d.pressure);
  ASSERT_EQ(d.victims.size(), 1u);
  EXPECT_EQ(d.victims[0], 0u);
  EXPECT_LE(d.aggregate_after, static_cast<Bytes>(0.80 * 10_GiB));
  EXPECT_FALSE(d.insufficient);
}

// --- destination placement (pure logic) -----------------------------------

TEST(Placement, BestFitPicksTightestSufficientHeadroom) {
  // low = 1.0 to make headroom arithmetic transparent.
  std::vector<HostHeadroom> hosts = {{"h0", 8_GiB, 1_GiB},   // headroom 7
                                     {"h1", 4_GiB, 1_GiB},   // headroom 3
                                     {"h2", 8_GiB, 4_GiB}};  // headroom 4
  std::vector<std::size_t> p = place_victims({2_GiB}, hosts, 1.0);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1u);  // tightest fit that still admits 2 GiB
}

TEST(Placement, TiesBreakByInputOrder) {
  std::vector<HostHeadroom> hosts = {{"h0", 4_GiB, 0}, {"h1", 4_GiB, 0}};
  std::vector<std::size_t> p = place_victims({1_GiB}, hosts, 1.0);
  EXPECT_EQ(p[0], 0u);
}

TEST(Placement, EarlierPlacementsReserveHeadroom) {
  // Both victims fit h0 individually, but the first placement consumes its
  // headroom so the second spreads to h1.
  std::vector<HostHeadroom> hosts = {{"h0", 4_GiB, 1_GiB},
                                     {"h1", 8_GiB, 1_GiB}};
  std::vector<std::size_t> p = place_victims({2_GiB, 2_GiB}, hosts, 1.0);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 0u);  // best fit: 3 GiB headroom < 7 GiB
  EXPECT_EQ(p[1], 1u);  // h0 only has 1 GiB left
}

TEST(Placement, RespectsLowWatermarkNotRawRam) {
  // 8 GiB host at low = 0.5 admits only up to 4 GiB committed.
  std::vector<HostHeadroom> hosts = {{"h0", 8_GiB, 3_GiB}};
  EXPECT_EQ(place_victims({2_GiB}, hosts, 0.5)[0], kNoPlacement);
  EXPECT_EQ(place_victims({1_GiB}, hosts, 0.5)[0], 0u);
}

TEST(Placement, UnplaceableVictimGetsNoPlacement) {
  std::vector<HostHeadroom> hosts = {{"h0", 2_GiB, 1_GiB}};
  std::vector<std::size_t> p = place_victims({4_GiB, 512_MiB}, hosts, 1.0);
  EXPECT_EQ(p[0], kNoPlacement);
  EXPECT_EQ(p[1], 0u);  // later victims still get their shot
}

TEST(Placement, NoCandidatesMeansNoPlacement) {
  std::vector<std::size_t> p = place_victims({1_GiB}, {}, 0.75);
  EXPECT_EQ(p[0], kNoPlacement);
}

TEST(Placement, RackAwarePrefersSourceRackEvenWhenLooser) {
  // h1 (other rack) is the tighter global best-fit, but rack-aware gives the
  // source rack first refusal.
  std::vector<HostHeadroom> hosts = {{"h0", 8_GiB, 1_GiB, /*rack=*/0},
                                     {"h1", 4_GiB, 1_GiB, /*rack=*/1}};
  std::vector<std::size_t> p = place_victims(
      {2_GiB}, hosts, 1.0, PlacementPolicy::kRackAware, /*source_rack=*/0);
  EXPECT_EQ(p[0], 0u);
  // kBestFit ignores the rack hint and keeps the global pick.
  EXPECT_EQ(place_victims({2_GiB}, hosts, 1.0, PlacementPolicy::kBestFit,
                          0)[0],
            1u);
}

TEST(Placement, RackAwareFallsBackToGlobalBestFit) {
  std::vector<HostHeadroom> hosts = {{"h0", 2_GiB, 1536_MiB, /*rack=*/0},
                                     {"h1", 8_GiB, 1_GiB, /*rack=*/1},
                                     {"h2", 4_GiB, 1_GiB, /*rack=*/1}};
  // The only rack-0 candidate cannot admit 2 GiB: fall back to best-fit over
  // the other racks (h2, the tighter of the two).
  std::vector<std::size_t> p = place_victims(
      {2_GiB}, hosts, 1.0, PlacementPolicy::kRackAware, /*source_rack=*/0);
  EXPECT_EQ(p[0], 2u);
}

TEST(Placement, RackAwareReservationsSpillAcrossRacks) {
  // Two victims; the single same-rack candidate admits only the first, so
  // the second spills to the remote rack — one decision, both semantics.
  std::vector<HostHeadroom> hosts = {{"h0", 4_GiB, 1_GiB, /*rack=*/0},
                                     {"h1", 8_GiB, 1_GiB, /*rack=*/1}};
  std::vector<std::size_t> p = place_victims(
      {2_GiB, 2_GiB}, hosts, 1.0, PlacementPolicy::kRackAware, 0);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[1], 1u);
}

TEST(Placement, FleetScaleCascadingTiesStayDeterministic) {
  // 300 identical candidates (a cascade of exact ties) and 40 identical
  // victims: best-fit with index tie-breaking must fill candidates strictly
  // in input order, each taking ceil-of-share victims before the next opens.
  const std::size_t candidates = 300;
  std::vector<HostHeadroom> hosts;
  hosts.reserve(candidates);
  for (std::size_t i = 0; i < candidates; ++i) {
    hosts.push_back({"h" + std::to_string(i), 4_GiB, 1_GiB, 0});
  }
  std::vector<Bytes> victims(40, 1_GiB);
  std::vector<std::size_t> p = place_victims(victims, hosts, 1.0);
  ASSERT_EQ(p.size(), victims.size());
  // Each candidate has 3 GiB headroom = room for three 1 GiB victims; the
  // first placement makes h0 the tightest fit, so it absorbs three before
  // the cascade moves to h1, and so on.
  for (std::size_t v = 0; v < p.size(); ++v) {
    EXPECT_EQ(p[v], v / 3) << "victim " << v;
  }
}

TEST(Placement, FleetScalePolicyOverloadMatchesDefault) {
  // Several hundred mixed candidates: the kBestFit policy overload must
  // reproduce the 3-arg overload exactly, whatever source_rack says.
  std::vector<HostHeadroom> hosts;
  std::vector<Bytes> victims;
  for (std::size_t i = 0; i < 257; ++i) {
    hosts.push_back({"h" + std::to_string(i), 2_GiB + (i % 7) * 512_MiB,
                     (i % 5) * 256_MiB, static_cast<std::uint32_t>(i % 8)});
  }
  for (std::size_t v = 0; v < 64; ++v) {
    victims.push_back(128_MiB + (v % 11) * 96_MiB);
  }
  std::vector<std::size_t> base = place_victims(victims, hosts, 0.9);
  for (std::uint32_t rack = 0; rack < 3; ++rack) {
    EXPECT_EQ(place_victims(victims, hosts, 0.9, PlacementPolicy::kBestFit,
                            rack),
              base);
  }
  // Rack-aware from rack 2 keeps every placement that fits inside rack 2 or
  // falls back deterministically; it must still place every victim some
  // candidate admits.
  std::vector<std::size_t> aware =
      place_victims(victims, hosts, 0.9, PlacementPolicy::kRackAware, 2);
  ASSERT_EQ(aware.size(), victims.size());
  for (std::size_t v = 0; v < victims.size(); ++v) {
    EXPECT_EQ(aware[v] == kNoPlacement, base[v] == kNoPlacement)
        << "policy changed placeability of victim " << v;
  }
}

// --- reservation controller (closed loop on a live testbed) ---------------

struct ControllerBed {
  core::TestbedConfig cfg;
  std::unique_ptr<core::Testbed> bed;
  core::VmHandle* handle = nullptr;
  workload::YcsbWorkload* ycsb = nullptr;

  ControllerBed() {
    cfg.source.ram = 8_GiB;
    cfg.vmd_server_capacity = 4_GiB;
    bed = std::make_unique<core::Testbed>(cfg);
    core::VmSpec spec;
    spec.name = "vm1";
    spec.memory = 1_GiB;
    spec.reservation = 1_GiB;  // start over-provisioned, like Fig. 9
    spec.swap = core::SwapBinding::kPerVmDevice;
    handle = &bed->create_vm(spec);
    workload::YcsbConfig ycfg;
    ycfg.dataset_bytes = 300_MiB;  // the true working set
    ycfg.guest_os_bytes = 16_MiB;
    ycfg.active_bytes = 300_MiB;
    ycfg.read_fraction = 0.9;
    auto load = std::make_unique<workload::YcsbWorkload>(
        handle->machine, &bed->cluster().network(), bed->client_node(), ycfg,
        bed->make_rng("ycsb"));
    ycsb = load.get();
    bed->attach_workload(*handle, std::move(load));
    ycsb->load(0);
  }
};

TEST(ReservationController, ShrinksTowardWorkingSet) {
  ControllerBed cb;
  WssConfig wc;
  ReservationController ctl(&cb.bed->cluster(), cb.handle->machine, wc);
  ctl.start();
  cb.bed->cluster().run_for_seconds(300);
  Bytes wss = ctl.wss_estimate();
  // True WS is ~316 MiB (dataset + guest OS); estimate must be within ~35%.
  EXPECT_GT(wss, 250_MiB);
  EXPECT_LT(wss, 450_MiB);
  EXPECT_GT(ctl.adjustments(), 10u);
}

TEST(ReservationController, StabilizesAndRelaxesCadence) {
  ControllerBed cb;
  ReservationController ctl(&cb.bed->cluster(), cb.handle->machine, {});
  ctl.start();
  cb.bed->cluster().run_for_seconds(400);
  EXPECT_TRUE(ctl.stable());
  // Fast cadence would have made ~200 adjustments in 400 s; the switch to
  // 30 s must have cut that down substantially.
  EXPECT_LT(ctl.adjustments(), 150u);
}

TEST(ReservationController, GrowsWhenWorkingSetGrows) {
  ControllerBed cb;
  ReservationController ctl(&cb.bed->cluster(), cb.handle->machine, {});
  ctl.start();
  cb.bed->cluster().run_for_seconds(300);
  Bytes before = ctl.wss_estimate();
  // The VM cannot grow beyond its dataset, so shrink the active set first,
  // let the controller follow down, then widen it again.
  cb.ycsb->set_active_bytes(100_MiB);
  cb.bed->cluster().run_for_seconds(300);
  Bytes small_ws = ctl.wss_estimate();
  EXPECT_LT(small_ws, before);
  cb.ycsb->set_active_bytes(300_MiB);
  cb.bed->cluster().run_for_seconds(300);
  EXPECT_GT(ctl.wss_estimate(), small_ws);
}

TEST(ReservationController, RecordsSeries) {
  ControllerBed cb;
  ReservationController ctl(&cb.bed->cluster(), cb.handle->machine, {});
  ctl.start();
  cb.bed->cluster().run_for_seconds(60);
  EXPECT_GT(ctl.reservation_series().size(), 5u);
  EXPECT_EQ(ctl.reservation_series().size(), ctl.swap_rate_series().size());
  ctl.stop();
  std::size_t frozen = ctl.reservation_series().size();
  cb.bed->cluster().run_for_seconds(60);
  EXPECT_EQ(ctl.reservation_series().size(), frozen);
}

TEST(ReservationController, RespectsMinimumReservation) {
  ControllerBed cb;
  WssConfig wc;
  wc.min_reservation = 200_MiB;
  ReservationController ctl(&cb.bed->cluster(), cb.handle->machine, wc);
  // Idle VM (detach workload effect: just don't run any ops): shrink forever
  // → must stop at the floor.
  cb.ycsb->set_active_bytes(4_KiB);
  ctl.start();
  cb.bed->cluster().run_for_seconds(600);
  EXPECT_GE(ctl.wss_estimate(), 200_MiB);
}

}  // namespace
}  // namespace agile::wss
