#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "host/cluster.hpp"
#include "workload/ycsb.hpp"

namespace agile::host {
namespace {

TEST(Host, ConstructionWiresNicSsdAndSwap) {
  net::Network net;
  HostConfig cfg;
  cfg.name = "h0";
  cfg.swap_partition_bytes = 1_GiB;
  Host h(&net, cfg);
  EXPECT_EQ(net.node_name(h.node()), "h0");
  EXPECT_NE(h.ssd(), nullptr);
  EXPECT_EQ(h.swap_partition()->capacity_slots(), pages_for(1_GiB));
  EXPECT_EQ(h.vm_count(), 0u);
  EXPECT_EQ(h.memory_in_use(), cfg.host_os_bytes);
}

TEST(Cluster, QuantumAdvancesTickIndex) {
  Cluster cluster;
  EXPECT_EQ(cluster.tick_index(), 0u);
  cluster.run_for_seconds(1.0);
  EXPECT_EQ(cluster.tick_index(), 10u);  // 100 ms quantum
}

TEST(Cluster, HooksRunInPhaseOrder) {
  Cluster cluster;
  std::vector<int> order;
  cluster.add_observer_hook([&](SimTime, SimTime, std::uint32_t) {
    order.push_back(2);
  });
  cluster.add_control_hook([&](SimTime, SimTime, std::uint32_t) {
    order.push_back(1);
  });
  cluster.run_until(msec(100));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Cluster, RemoveHookStopsInvocations) {
  Cluster cluster;
  int count = 0;
  std::uint64_t id =
      cluster.add_control_hook([&](SimTime, SimTime, std::uint32_t) { ++count; });
  cluster.run_for_seconds(0.5);
  EXPECT_EQ(count, 5);
  cluster.remove_hook(id);
  cluster.run_for_seconds(0.5);
  EXPECT_EQ(count, 5);
}

TEST(Cluster, HookMayRemoveItselfWhileRunning) {
  Cluster cluster;
  int count = 0;
  std::uint64_t id = 0;
  id = cluster.add_control_hook([&](SimTime, SimTime, std::uint32_t) {
    ++count;
    cluster.remove_hook(id);
  });
  cluster.run_for_seconds(1.0);
  EXPECT_EQ(count, 1);
}

TEST(Cluster, DeterministicRngStreams) {
  Cluster a, b;
  Rng ra = a.make_rng("x");
  Rng rb = b.make_rng("x");
  EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(Testbed, BuildsThePaperTopology) {
  core::TestbedConfig cfg;
  cfg.vmd_servers = 2;
  core::Testbed bed(cfg);
  EXPECT_EQ(bed.cluster().host_count(), 2u);
  EXPECT_EQ(bed.vmd_server_count(), 2u);
  // Nodes: source, dest, clients, intermediate1, intermediate2.
  EXPECT_EQ(bed.cluster().network().node_count(), 5u);
}

TEST(Testbed, CreateVmAttachesToSource) {
  core::Testbed bed;
  core::VmSpec spec;
  spec.name = "vm1";
  spec.memory = 128_MiB;
  spec.reservation = 64_MiB;
  core::VmHandle& h = bed.create_vm(spec);
  EXPECT_TRUE(bed.source()->has_vm(h.machine));
  EXPECT_FALSE(bed.dest()->has_vm(h.machine));
  EXPECT_EQ(h.machine->memory().reservation(), 64_MiB);
  EXPECT_EQ(h.per_vm_swap, nullptr);
  EXPECT_EQ(h.machine->memory().swap_device(), bed.source()->swap_partition());
}

TEST(Testbed, PerVmSwapBindingCreatesNamespace) {
  core::Testbed bed;
  core::VmSpec spec;
  spec.name = "vm1";
  spec.memory = 128_MiB;
  spec.swap = core::SwapBinding::kPerVmDevice;
  core::VmHandle& h = bed.create_vm(spec);
  ASSERT_NE(h.per_vm_swap, nullptr);
  EXPECT_EQ(h.machine->memory().swap_device(), h.per_vm_swap);
  EXPECT_EQ(h.per_vm_swap->stored_pages(), 0u);  // allocate-on-write
}

TEST(Testbed, WorkloadRunsOnlyWhileVmRuns) {
  core::Testbed bed;
  core::VmSpec spec;
  spec.name = "vm1";
  spec.memory = 128_MiB;
  core::VmHandle& h = bed.create_vm(spec);
  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = 64_MiB;
  ycfg.guest_os_bytes = 8_MiB;
  ycfg.active_bytes = 32_MiB;
  auto load = std::make_unique<workload::YcsbWorkload>(
      h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
      bed.make_rng("y"));
  auto* ycsb = load.get();
  bed.attach_workload(h, std::move(load));
  ycsb->load(0);
  bed.cluster().run_for_seconds(1.0);
  std::uint64_t running_ops = ycsb->ops_total();
  EXPECT_GT(running_ops, 0u);
  h.machine->suspend();
  bed.cluster().run_for_seconds(1.0);
  EXPECT_EQ(ycsb->ops_total(), running_ops);
  h.machine->resume();
  bed.cluster().run_for_seconds(1.0);
  EXPECT_GT(ycsb->ops_total(), running_ops);
}

TEST(Testbed, ThroughputProbeSamplesOncePerSecond) {
  core::Testbed bed;
  core::VmSpec spec;
  spec.name = "vm1";
  spec.memory = 128_MiB;
  core::VmHandle& h = bed.create_vm(spec);
  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = 64_MiB;
  ycfg.guest_os_bytes = 8_MiB;
  ycfg.active_bytes = 32_MiB;
  auto load = std::make_unique<workload::YcsbWorkload>(
      h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
      bed.make_rng("y"));
  auto* ycsb = load.get();
  bed.attach_workload(h, std::move(load));
  ycsb->load(0);
  core::ThroughputProbe probe(&bed.cluster(), ycsb, "vm1");
  bed.cluster().run_for_seconds(10.0);
  EXPECT_EQ(probe.series().size(), 10u);
  EXPECT_GT(probe.series().mean_between(1, 10), 1000.0);
}

TEST(Host, MemoryInUseTracksResidentSets) {
  core::Testbed bed;
  core::VmSpec spec;
  spec.name = "vm1";
  spec.memory = 128_MiB;
  spec.reservation = 64_MiB;
  core::VmHandle& h = bed.create_vm(spec);
  Bytes before = bed.source()->memory_in_use();
  h.machine->memory().prefill(h.machine->page_count(), 0);
  EXPECT_EQ(bed.source()->memory_in_use(), before + 64_MiB);
}

TEST(Host, MaintenanceEnforcesShrunkenReservations) {
  core::Testbed bed;
  core::VmSpec spec;
  spec.name = "vm1";
  spec.memory = 128_MiB;
  core::VmHandle& h = bed.create_vm(spec);
  h.machine->memory().prefill(h.machine->page_count(), 0);
  h.machine->memory().set_reservation(32_MiB);
  EXPECT_TRUE(h.machine->memory().over_reservation());
  bed.cluster().run_for_seconds(2.0);  // kswapd catches up
  EXPECT_FALSE(h.machine->memory().over_reservation());
  EXPECT_EQ(h.machine->memory().resident_pages(), pages_for(32_MiB));
}

}  // namespace
}  // namespace agile::host
