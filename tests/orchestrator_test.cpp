#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenarios.hpp"
#include "workload/ycsb.hpp"

namespace agile::core {
namespace {

// Two-host orchestration bed (the PressureResponder tests, ported): N VMs
// consolidated on the source, one destination.
struct OrchestratorBed {
  TestbedConfig cfg;
  std::unique_ptr<Testbed> bed;
  std::vector<VmHandle*> handles;
  std::vector<workload::YcsbWorkload*> ycsbs;

  explicit OrchestratorBed(int vm_count, Bytes host_ram = 2_GiB,
                           Bytes dest_ram = 0) {
    cfg.source.ram = host_ram;
    cfg.source.host_os_bytes = 64_MiB;
    cfg.dest = cfg.source;
    cfg.dest.name = "dest";
    if (dest_ram != 0) cfg.dest.ram = dest_ram;
    cfg.vmd_server_capacity = 8_GiB;
    bed = std::make_unique<Testbed>(cfg);
    for (int i = 0; i < vm_count; ++i) {
      VmSpec spec;
      spec.name = "vm" + std::to_string(i);
      spec.memory = 1_GiB;
      spec.reservation = 512_MiB;
      spec.swap = SwapBinding::kPerVmDevice;
      VmHandle& h = bed->create_vm(spec);
      handles.push_back(&h);
      workload::YcsbConfig ycfg;
      ycfg.dataset_bytes = 768_MiB;
      ycfg.guest_os_bytes = 32_MiB;
      ycfg.active_bytes = 128_MiB;
      auto load = std::make_unique<workload::YcsbWorkload>(
          h.machine, &bed->cluster().network(), bed->client_node(), ycfg,
          bed->make_rng(spec.name + "/y"));
      ycsbs.push_back(load.get());
      bed->attach_workload(h, std::move(load));
      ycsbs.back()->load(0);
    }
    bed->source()->ssd()->advance(sec(3600));
  }

  MigrationOrchestratorConfig brisk() {
    MigrationOrchestratorConfig cfg2;
    cfg2.wss.alpha = 0.80;
    cfg2.wss.beta = 1.15;
    return cfg2;
  }
};

TEST(MigrationOrchestrator, NoPressureNoMigration) {
  OrchestratorBed ob(2, 4_GiB);  // plenty of headroom
  MigrationOrchestrator orch(ob.bed.get(), ob.brisk());
  for (VmHandle* h : ob.handles) orch.track(h);
  orch.start();
  ob.bed->cluster().run_for_seconds(120);
  EXPECT_EQ(orch.migrations_launched(), 0u);
  EXPECT_FALSE(orch.last_decision().pressure);
  EXPECT_TRUE(orch.decisions().empty());
  EXPECT_EQ(ob.bed->dest()->vm_count(), 0u);
}

TEST(MigrationOrchestrator, MigratesWhenAWorkingSetGrows) {
  OrchestratorBed ob(2, 1_GiB, /*dest_ram=*/2_GiB);
  MigrationOrchestrator orch(ob.bed.get(), ob.brisk());
  for (VmHandle* h : ob.handles) orch.track(h);
  orch.start();
  ob.bed->cluster().run_for_seconds(90);
  ASSERT_EQ(orch.migrations_launched(), 0u);
  // vm1's working set explodes; the aggregate crosses the high watermark and
  // vm1 (by far the largest estimate) must be the one evicted.
  ob.ycsbs[1]->set_active_bytes(768_MiB);
  ob.bed->cluster().run_for_seconds(250);
  ASSERT_GE(orch.migrations_launched(), 1u);
  EXPECT_TRUE(ob.bed->dest()->has_vm(ob.handles[1]->machine));
  EXPECT_TRUE(ob.bed->source()->has_vm(ob.handles[0]->machine));
  EXPECT_TRUE(orch.migrations()[0]->completed());
  EXPECT_EQ(ob.bed->host_of(ob.handles[1]->machine), ob.bed->dest());
}

TEST(MigrationOrchestrator, PerLinkCapSerializesWhenOne) {
  OrchestratorBed ob(3, 2_GiB, /*dest_ram=*/8_GiB);
  MigrationOrchestratorConfig cfg = ob.brisk();
  cfg.check_interval = sec(5);
  cfg.per_link_in_flight_cap = 1;
  // Hot working sets bounce off the vm_memory estimate cap and never read as
  // "stable" — evaluate on the warmup timer alone.
  cfg.wait_for_stable_estimates = false;
  MigrationOrchestrator orch(ob.bed.get(), cfg);
  for (VmHandle* h : ob.handles) orch.track(h);
  // Everyone is hot from the start, so by the end of the warmup every
  // estimate is already wide and the first decision selects several victims
  // at once; with a cap of 1 on the single source→dest link the orchestrator
  // must serialize them.
  for (auto* y : ob.ycsbs) y->set_active_bytes(768_MiB);
  orch.start();
  bool overlapped = false;
  for (int i = 0; i < 300; ++i) {
    ob.bed->cluster().run_for_seconds(1);
    if (orch.migrations_in_flight() > 1) overlapped = true;
  }
  EXPECT_FALSE(overlapped);
  EXPECT_GE(orch.migrations_launched(), 1u);
  // Deferred victims are recorded, not dropped.
  bool saw_deferral = false;
  for (const FleetDecision& d : orch.decisions()) {
    saw_deferral |= d.deferred > 0;
  }
  EXPECT_TRUE(saw_deferral);
}

TEST(MigrationOrchestrator, PerLinkCapAllowsConcurrencyWhenRaised) {
  OrchestratorBed ob(3, 2_GiB, /*dest_ram=*/8_GiB);
  MigrationOrchestratorConfig cfg = ob.brisk();
  cfg.check_interval = sec(5);
  cfg.per_link_in_flight_cap = 3;
  cfg.wait_for_stable_estimates = false;
  MigrationOrchestrator orch(ob.bed.get(), cfg);
  for (VmHandle* h : ob.handles) orch.track(h);
  for (auto* y : ob.ycsbs) y->set_active_bytes(768_MiB);
  orch.start();
  std::size_t peak = 0;
  for (int i = 0; i < 300; ++i) {
    ob.bed->cluster().run_for_seconds(1);
    peak = std::max(peak, orch.migrations_in_flight());
  }
  EXPECT_GE(peak, 2u);
}

TEST(MigrationOrchestrator, TracksEstimatesPerVm) {
  OrchestratorBed ob(2, 4_GiB);
  MigrationOrchestrator orch(ob.bed.get(), ob.brisk());
  for (VmHandle* h : ob.handles) orch.track(h);
  EXPECT_EQ(orch.tracked_count(), 2u);
  orch.start();
  ob.ycsbs[0]->set_active_bytes(640_MiB);
  ob.bed->cluster().run_for_seconds(180);
  EXPECT_GT(orch.wss_estimate(ob.handles[0]),
            orch.wss_estimate(ob.handles[1]));
}

TEST(MigrationOrchestrator, StopHaltsMonitoring) {
  OrchestratorBed ob(2, 2_GiB);
  MigrationOrchestrator orch(ob.bed.get(), ob.brisk());
  for (VmHandle* h : ob.handles) orch.track(h);
  orch.start();
  ob.bed->cluster().run_for_seconds(50);
  orch.stop();
  for (auto* y : ob.ycsbs) y->set_active_bytes(768_MiB);
  ob.bed->cluster().run_for_seconds(120);
  EXPECT_EQ(orch.migrations_launched(), 0u);
}

TEST(MigrationOrchestrator, InsufficientHostIsFlagged) {
  // The host OS alone exceeds the low watermark: evicting the only VM still
  // leaves the host over it, and the decision must say so.
  OrchestratorBed ob(0, 1_GiB, /*dest_ram=*/4_GiB);
  ob.cfg.source.host_os_bytes = 960_MiB;  // > 0.90 × 1 GiB
  ob.cfg.vmd_server_capacity = 8_GiB;
  ob.bed = std::make_unique<Testbed>(ob.cfg);
  VmSpec spec;
  spec.name = "vm0";
  spec.memory = 256_MiB;
  spec.reservation = 128_MiB;
  spec.swap = SwapBinding::kPerVmDevice;
  VmHandle& h = ob.bed->create_vm(spec);
  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = 128_MiB;
  ycfg.guest_os_bytes = 16_MiB;
  ycfg.active_bytes = 64_MiB;
  auto load = std::make_unique<workload::YcsbWorkload>(
      h.machine, &ob.bed->cluster().network(), ob.bed->client_node(), ycfg,
      ob.bed->make_rng("vm0/y"));
  workload::YcsbWorkload* y = load.get();
  ob.bed->attach_workload(h, std::move(load));
  y->load(0);
  ob.bed->source()->ssd()->advance(sec(3600));

  MigrationOrchestrator orch(ob.bed.get(), ob.brisk());
  orch.track(&h);
  orch.start();
  ob.bed->cluster().run_for_seconds(200);
  ASSERT_FALSE(orch.decisions().empty());
  EXPECT_TRUE(orch.decisions().front().trigger.insufficient);
  // The one eviction it could make still happens (best effort).
  EXPECT_GE(orch.migrations_launched(), 1u);
}

// Acceptance scenario: one watermark decision selects ≥2 victims, they
// migrate concurrently (overlapping metric windows), spread across ≥2
// destination hosts, and no destination ends over its own low watermark.
TEST(MigrationOrchestrator, MultiVictimConcurrentSpread) {
  scenarios::FleetOptions opt;
  scenarios::Fleet fleet = scenarios::make_fleet(opt);
  fleet.load_all();
  fleet.orchestrator->start();
  fleet.bed->cluster().run_for_seconds(400);
  fleet.orchestrator->stop();
  MigrationOrchestrator& orch = *fleet.orchestrator;

  // One decision launched at least two victims.
  const FleetDecision* multi = nullptr;
  for (const FleetDecision& d : orch.decisions()) {
    if (d.launches.size() >= 2) {
      multi = &d;
      break;
    }
  }
  ASSERT_NE(multi, nullptr) << "no multi-victim decision fired";
  EXPECT_GE(multi->trigger.victims.size(), 2u);

  // ...to at least two distinct destinations (placement spread them).
  std::vector<std::string> dests;
  for (const FleetLaunch& l : multi->launches) dests.push_back(l.dest);
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  EXPECT_GE(dests.size(), 2u);

  // The launched migrations of that decision ran concurrently: overlapping
  // [start_time, end_time] windows, and all completed.
  std::vector<const migration::MigrationManager*> batch;
  for (const auto& m : orch.migrations()) {
    for (const FleetLaunch& l : multi->launches) {
      if (m->machine()->name() == l.vm &&
          to_seconds(m->metrics().start_time) >= to_seconds(multi->time) - 1) {
        batch.push_back(m.get());
      }
    }
  }
  ASSERT_GE(batch.size(), 2u);
  SimTime max_start = -1, min_end = -1;
  for (const auto* m : batch) {
    ASSERT_TRUE(m->completed());
    max_start = std::max(max_start, m->metrics().start_time);
    min_end = min_end < 0 ? m->metrics().end_time
                          : std::min(min_end, m->metrics().end_time);
  }
  EXPECT_LT(max_start, min_end) << "migration windows do not overlap";

  // Admission control held: every destination stays under its own low
  // watermark, counting host OS + the tracked working sets now resident.
  for (std::size_t i = 1; i < fleet.bed->host_count(); ++i) {
    host::Host* dest = fleet.bed->host_at(i);
    Bytes committed = dest->config().host_os_bytes;
    for (VmHandle* h : fleet.handles) {
      if (dest->has_vm(h->machine)) committed += orch.wss_estimate(h);
    }
    EXPECT_LE(static_cast<double>(committed),
              opt.watermarks.low * static_cast<double>(dest->ram()))
        << dest->name() << " pushed over its low watermark";
  }

  // The source is relieved: its tracked aggregate fell under the high mark.
  Bytes source_agg = fleet.bed->host_at(0)->config().host_os_bytes;
  for (VmHandle* h : fleet.handles) {
    if (fleet.bed->host_at(0)->has_vm(h->machine)) {
      source_agg += orch.wss_estimate(h);
    }
  }
  EXPECT_LE(static_cast<double>(source_agg),
            opt.watermarks.high * static_cast<double>(opt.source_ram));
}

// Two simultaneous bulk flows leaving one host share its egress NIC max–min
// fairly: each concurrent migration takes about twice as long as the same
// migration running alone, and they finish together.
TEST(MigrationOrchestrator, SharedLinkSplitsFairly) {
  auto build = [](int vm_count) {
    TestbedConfig cfg;
    for (int i = 0; i < 3; ++i) {
      host::HostConfig hc = named_host("host" + std::to_string(i));
      hc.ram = 4_GiB;
      hc.host_os_bytes = 64_MiB;
      cfg.hosts.push_back(hc);
    }
    cfg.vmd_server_capacity = 8_GiB;
    auto bed = std::make_unique<Testbed>(cfg);
    for (int i = 0; i < vm_count; ++i) {
      VmSpec spec;
      spec.name = "vm" + std::to_string(i);
      spec.memory = 512_MiB;
      spec.swap = SwapBinding::kPerVmDevice;
      VmHandle& h = bed->create_vm(spec);
      h.machine->memory().prefill(h.machine->page_count(), 0);
    }
    for (std::size_t i = 0; i < bed->host_count(); ++i) {
      bed->host_at(i)->ssd()->advance(sec(3600));
    }
    bed->cluster().run_for_seconds(2);
    return bed;
  };

  // Baseline: one migration, sole user of the egress NIC.
  auto solo_bed = build(1);
  auto solo = solo_bed->make_migration_to(Technique::kAgile,
                                          solo_bed->vm_at(0),
                                          solo_bed->host_at(1));
  solo->start();
  while (!solo->completed()) solo_bed->cluster().run_for_seconds(1);
  double solo_s = to_seconds(solo->metrics().total_time());
  ASSERT_GT(solo_s, 0);

  // Concurrent: two identical migrations to different destinations share
  // host0's egress.
  auto bed = build(2);
  auto m0 = bed->make_migration_to(Technique::kAgile, bed->vm_at(0),
                                   bed->host_at(1));
  auto m1 = bed->make_migration_to(Technique::kAgile, bed->vm_at(1),
                                   bed->host_at(2));
  m0->start();
  m1->start();
  while (!m0->completed() || !m1->completed()) {
    bed->cluster().run_for_seconds(1);
  }
  double t0 = to_seconds(m0->metrics().total_time());
  double t1 = to_seconds(m1->metrics().total_time());

  // Windows overlap (they started together and share the link end to end).
  EXPECT_LT(std::max(m0->metrics().start_time, m1->metrics().start_time),
            std::min(m0->metrics().end_time, m1->metrics().end_time));
  // Max–min fair halves: each takes ~2× the solo time, and neither starves.
  EXPECT_GT(t0, 1.5 * solo_s);
  EXPECT_LT(t0, 2.6 * solo_s);
  EXPECT_GT(t1, 1.5 * solo_s);
  EXPECT_LT(t1, 2.6 * solo_s);
  EXPECT_NEAR(t0, t1, 0.25 * solo_s);
  // Identical VMs move identical bytes.
  EXPECT_EQ(m0->metrics().pages_sent_full, m1->metrics().pages_sent_full);
}

}  // namespace
}  // namespace agile::core
