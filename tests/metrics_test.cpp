#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/table.hpp"
#include "metrics/timeseries.hpp"

namespace agile::metrics {
namespace {

TimeSeries ramp() {
  TimeSeries ts("ramp");
  for (int i = 0; i <= 10; ++i) ts.add(i, i * 10.0);
  return ts;
}

TEST(TimeSeries, BasicAppendAndAccess) {
  TimeSeries ts("x");
  EXPECT_TRUE(ts.empty());
  ts.add(1.0, 5.0);
  ts.add(2.0, 7.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[1].value, 7.0);
  EXPECT_EQ(ts.name(), "x");
}

TEST(TimeSeries, MeanBetween) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.mean_between(0, 10), 50.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(4, 6), 50.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(100, 200), 0.0);
}

TEST(TimeSeries, MaxValueAndBetween) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.max_value(), 100.0);
  EXPECT_DOUBLE_EQ(ts.max_between(2, 5), 50.0);
}

TEST(TimeSeries, TimeToReach) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.time_to_reach(55.0, 0), 6.0);
  EXPECT_DOUBLE_EQ(ts.time_to_reach(55.0, 8), 8.0);
  EXPECT_DOUBLE_EQ(ts.time_to_reach(1000.0, 0), -1.0);
}

TEST(TimeSeries, TimeToReachWithHoldSkipsTransients) {
  TimeSeries ts("spiky");
  ts.add(0, 0);
  ts.add(1, 90);  // transient spike
  ts.add(2, 10);
  ts.add(3, 90);
  ts.add(4, 95);
  ts.add(5, 92);
  EXPECT_DOUBLE_EQ(ts.time_to_reach(85.0, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.time_to_reach(85.0, 0, 1.5), 3.0);
}

TEST(TimeSeries, MeanBetweenEdgeCases) {
  TimeSeries empty("empty");
  EXPECT_DOUBLE_EQ(empty.mean_between(0, 10), 0.0);

  TimeSeries ts = ramp();
  // Inverted window selects nothing.
  EXPECT_DOUBLE_EQ(ts.mean_between(6, 4), 0.0);
  // The window is closed on both ends: boundary samples are included.
  EXPECT_DOUBLE_EQ(ts.mean_between(4, 4), 40.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(0, 0), 0.0);   // sample (0, 0)
  EXPECT_DOUBLE_EQ(ts.mean_between(10, 10), 100.0);
  EXPECT_DOUBLE_EQ(ts.mean_between(9, 10), 95.0);
  // Window straddling the series' end clips to existing samples.
  EXPECT_DOUBLE_EQ(ts.mean_between(9.5, 20), 100.0);
}

TEST(TimeSeries, TimeToReachEdgeCases) {
  TimeSeries empty("empty");
  EXPECT_DOUBLE_EQ(empty.time_to_reach(1.0, 0), -1.0);

  TimeSeries ts = ramp();
  // `from` past the last sample: nothing qualifies.
  EXPECT_DOUBLE_EQ(ts.time_to_reach(10.0, 11.0), -1.0);
  // `from` exactly on a qualifying sample counts (>= from, not >).
  EXPECT_DOUBLE_EQ(ts.time_to_reach(60.0, 6.0), 6.0);
  // Threshold met exactly at a sample value counts (>= threshold).
  EXPECT_DOUBLE_EQ(ts.time_to_reach(60.0, 0), 6.0);
  // A hold window running past the series' end still succeeds as long as
  // every remaining sample stays at or above the threshold.
  EXPECT_DOUBLE_EQ(ts.time_to_reach(90.0, 0, 100.0), 9.0);
  // Value that dips below the threshold at the end is rejected under hold.
  TimeSeries dip("dip");
  dip.add(0, 100);
  dip.add(1, 100);
  dip.add(2, 0);
  EXPECT_DOUBLE_EQ(dip.time_to_reach(50.0, 0, 5.0), -1.0);
}

TEST(TimeSeries, ValueAtIsLastSampleAtOrBefore) {
  TimeSeries ts = ramp();
  EXPECT_DOUBLE_EQ(ts.value_at(4.5), 40.0);
  EXPECT_DOUBLE_EQ(ts.value_at(-1), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100), 100.0);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"precopy", "470"});
  t.add_row({"agile", "108"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| precopy | 470"), std::string::npos);
  EXPECT_NE(s.find("| agile"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(Table, WritesCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::string path = "/tmp/agile_metrics_test_table.csv";
  ASSERT_TRUE(t.write_csv(path).is_ok());
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(SeriesCsv, AlignsMultipleSeriesOnFirst) {
  TimeSeries a("a"), b("b");
  a.add(1, 10);
  a.add(2, 20);
  b.add(1.5, 99);
  std::string path = "/tmp/agile_metrics_test_series.csv";
  ASSERT_TRUE(write_series_csv(path, {&a, &b}).is_ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "t,a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,10,0");
  std::getline(f, line);
  EXPECT_EQ(line, "2,20,99");
  std::remove(path.c_str());
}

TEST(EnsureDir, CreatesNestedDirs) {
  EXPECT_TRUE(ensure_dir("/tmp/agile_metrics_test_dir/a/b").is_ok());
  std::ofstream f("/tmp/agile_metrics_test_dir/a/b/x");
  EXPECT_TRUE(f.good());
}

}  // namespace
}  // namespace agile::metrics
