#include <gtest/gtest.h>

#include <memory>

#include "mem/guest_memory.hpp"
#include "net/network.hpp"
#include "swap/swap_device.hpp"
#include "vm/virtual_machine.hpp"
#include "workload/oltp.hpp"
#include "workload/ycsb.hpp"

namespace agile::workload {
namespace {

struct Fixture {
  net::Network net;
  net::NodeId host_node, client_node;
  std::shared_ptr<storage::SsdModel> ssd = std::make_shared<storage::SsdModel>();
  swap::LocalSwapDevice swap_dev{"swap", ssd, 4_GiB};
  vm::VirtualMachine* machine = nullptr;
  std::unique_ptr<vm::VirtualMachine> machine_owned;

  explicit Fixture(Bytes vm_size = 512_MiB, Bytes reservation = 512_MiB) {
    host_node = net.add_node("host");
    client_node = net.add_node("client");
    mem::GuestMemoryConfig mc;
    mc.size = vm_size;
    mc.reservation = reservation;
    auto memory = std::make_unique<mem::GuestMemory>(mc, &swap_dev, Rng(1, "m"));
    vm::VmConfig vc;
    vc.memory = vm_size;
    vc.reservation = reservation;
    machine_owned = std::make_unique<vm::VirtualMachine>(vc, std::move(memory),
                                                         host_node);
    machine = machine_owned.get();
  }

  YcsbConfig ycsb_cfg() {
    YcsbConfig cfg;
    cfg.dataset_bytes = 256_MiB;
    cfg.guest_os_bytes = 16_MiB;
    cfg.active_bytes = 64_MiB;
    return cfg;
  }
};

TEST(Ycsb, LoadTouchesDatasetAndGuestOs) {
  Fixture fx;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, fx.ycsb_cfg(), Rng(2, "y"));
  w.load(0);
  EXPECT_EQ(fx.machine->memory().resident_pages(),
            pages_for(16_MiB) + pages_for(256_MiB));
}

TEST(Ycsb, ThroughputEmergesFromOpCost) {
  Fixture fx;
  YcsbConfig cfg = fx.ycsb_cfg();
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  std::uint64_t ops = w.run_quantum(msec(100), 1);
  // width = min(concurrency=8, 4*vcpus=8); per-op = 45 µs + ~210 µs RTT.
  // ~ 8 * 100000 / 255 ≈ 3100 ops per 100 ms.
  EXPECT_GT(ops, 2000u);
  EXPECT_LT(ops, 5000u);
  EXPECT_EQ(w.ops_total(), ops);
}

TEST(Ycsb, MemoryPressureCollapsesThroughput) {
  // Reservation far below the active set: most accesses fault to the SSD.
  Fixture fx(512_MiB, 32_MiB);
  YcsbConfig cfg = fx.ycsb_cfg();
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  std::uint64_t pressured = 0;
  for (int q = 0; q < 10; ++q) {
    pressured += w.run_quantum(msec(100), static_cast<std::uint32_t>(q + 1));
    fx.ssd->advance(msec(100));
  }
  Fixture fx2(512_MiB, 512_MiB);
  YcsbWorkload w2(fx2.machine, &fx2.net, fx2.client_node, cfg, Rng(2, "y"));
  w2.load(0);
  std::uint64_t unpressured = 0;
  for (int q = 0; q < 10; ++q) {
    unpressured += w2.run_quantum(msec(100), static_cast<std::uint32_t>(q + 1));
    fx2.ssd->advance(msec(100));
  }
  EXPECT_LT(pressured * 5, unpressured);  // at least 5x collapse
}

TEST(Ycsb, WritesDirtyPages) {
  Fixture fx;
  YcsbConfig cfg = fx.ycsb_cfg();
  cfg.read_fraction = 0.5;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  Bitmap dirty(fx.machine->page_count());
  fx.machine->memory().attach_dirty_log(&dirty);
  w.run_quantum(msec(100), 1);
  EXPECT_GT(dirty.count(), 100u);
}

TEST(Ycsb, ReadOnlyWorkloadDirtiesNothing) {
  Fixture fx;
  YcsbConfig cfg = fx.ycsb_cfg();
  cfg.read_fraction = 1.0;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  Bitmap dirty(fx.machine->page_count());
  fx.machine->memory().attach_dirty_log(&dirty);
  w.run_quantum(msec(100), 1);
  EXPECT_EQ(dirty.count(), 0u);
}

TEST(Ycsb, AccessesStayInActivePrefix) {
  Fixture fx;
  YcsbConfig cfg = fx.ycsb_cfg();
  cfg.read_fraction = 1.0;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  std::uint32_t tick = 100;
  w.run_quantum(msec(500), tick);
  // Pages beyond the active prefix must not have tick-100 accesses.
  const mem::GuestMemory& memory = fx.machine->memory();
  std::uint64_t active_end = w.dataset_base() + pages_for(cfg.active_bytes);
  EXPECT_EQ(memory.true_working_set_pages(tick, 0),
            memory.true_working_set_pages(tick, 0));
  std::uint64_t ws = memory.true_working_set_pages(tick, 0);
  EXPECT_LE(ws, active_end);
}

TEST(Ycsb, SetActiveBytesWidensTouchedRange) {
  Fixture fx;
  YcsbConfig cfg = fx.ycsb_cfg();
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  EXPECT_EQ(w.active_bytes(), 64_MiB);
  w.set_active_bytes(1_GiB);  // clamped to dataset
  EXPECT_EQ(w.active_bytes(), 256_MiB);
  w.set_active_bytes(128_MiB);
  EXPECT_EQ(w.active_bytes(), 128_MiB);
}

TEST(Ycsb, OpsConsumeNetworkBandwidth) {
  Fixture fx;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, fx.ycsb_cfg(), Rng(2, "y"));
  w.load(0);
  std::uint64_t ops = w.run_quantum(msec(100), 1);
  fx.net.advance(msec(100));
  EXPECT_GE(fx.net.stats(fx.host_node).tx_bytes, ops * 1024);
}

TEST(Ycsb, CongestedNetworkLowersThroughput) {
  Fixture fx;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, fx.ycsb_cfg(), Rng(2, "y"));
  w.load(0);
  std::uint64_t free_ops = w.run_quantum(msec(100), 1);
  // Saturate host -> client (the response direction).
  net::FlowId f = fx.net.open_flow(fx.host_node, fx.client_node, [](Bytes) {});
  fx.net.offer(f, 10_GiB);
  fx.net.advance(sec(1));
  std::uint64_t congested_ops = w.run_quantum(msec(100), 2);
  EXPECT_LT(congested_ops * 2, free_ops);
}

TEST(Ycsb, ZipfianSkewsTouches) {
  Fixture fx;
  YcsbConfig cfg = fx.ycsb_cfg();
  cfg.zipf_theta = 0.99;
  cfg.read_fraction = 1.0;
  YcsbWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(2, "y"));
  w.load(0);
  w.run_quantum(sec(1), 50);
  // Under heavy skew the recently-touched set is much smaller than the
  // active prefix.
  std::uint64_t ws = fx.machine->memory().true_working_set_pages(50, 0);
  EXPECT_LT(ws, pages_for(cfg.active_bytes) / 2);
}

TEST(Oltp, TransactionsAreSlowerThanKvOps) {
  Fixture fx;
  OltpConfig cfg;
  cfg.dataset_bytes = 256_MiB;
  cfg.guest_os_bytes = 16_MiB;
  OltpWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(3, "o"));
  w.load(0);
  std::uint64_t txns = w.run_quantum(sec(1), 1);
  // ~ concurrency(4) / 28 ms ≈ 140 tps.
  EXPECT_GT(txns, 50u);
  EXPECT_LT(txns, 400u);
}

TEST(Oltp, WriteTransactionsDirtyMultiplePages) {
  Fixture fx;
  OltpConfig cfg;
  cfg.dataset_bytes = 256_MiB;
  cfg.guest_os_bytes = 16_MiB;
  cfg.write_txn_fraction = 1.0;
  OltpWorkload w(fx.machine, &fx.net, fx.client_node, cfg, Rng(3, "o"));
  w.load(0);
  Bitmap dirty(fx.machine->page_count());
  fx.machine->memory().attach_dirty_log(&dirty);
  std::uint64_t txns = w.run_quantum(sec(1), 1);
  EXPECT_GT(dirty.count(), txns);  // several dirtied pages per txn
}

TEST(Idle, DoesNothing) {
  IdleWorkload idle;
  EXPECT_EQ(idle.run_quantum(sec(1), 1), 0u);
  EXPECT_EQ(idle.ops_total(), 0u);
  EXPECT_STREQ(idle.kind(), "idle");
}

}  // namespace
}  // namespace agile::workload
