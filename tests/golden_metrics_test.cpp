// Behavior-preservation guard for the migration data path.
//
// Runs one deterministic scaled-down migration per technique (idle and busy
// variants) and compares every MigrationMetrics field — bytes on the wire,
// full/descriptor page counts, downtime, total time, fault counts — plus the
// final source/destination memory-state tallies against a checked-in golden
// file. Optimizations to the wire path (run-length batching, allocation-free
// callbacks, word-scan iteration) must keep this dump byte-identical: the
// metrics are simulation-observable behavior, not implementation detail.
//
// Regenerate (only when an intentional behavior change is made) with:
//   AGILE_GOLDEN_WRITE=1 ./golden_metrics_test
// which rewrites tests/golden/migration_metrics.txt (path baked in at
// configure time via AGILE_GOLDEN_FILE).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/testbed.hpp"
#include "workload/ycsb.hpp"

#ifndef AGILE_GOLDEN_FILE
#define AGILE_GOLDEN_FILE "golden/migration_metrics.txt"
#endif

namespace agile::core {
namespace {

struct GoldenCase {
  Technique technique;
  bool busy;
};

std::string case_name(const GoldenCase& c) {
  return std::string(technique_name(c.technique)) + (c.busy ? "/busy" : "/idle");
}

// A small two-host bed: 1 GiB hosts, 256 MiB VM with a 128 MiB reservation so
// part of the dataset is swapped out — exercising descriptor runs, swap-ins at
// the source, and dirty-page invalidations in every technique.
std::string run_case(const GoldenCase& c) {
  TestbedConfig cfg;
  cfg.cluster.seed = 42;
  cfg.source.ram = 1_GiB;
  cfg.source.host_os_bytes = 32_MiB;
  cfg.source.swap_partition_bytes = 2_GiB;
  cfg.dest = cfg.source;
  cfg.dest.name = "dest";
  cfg.vmd_server_capacity = 2_GiB;
  Testbed bed(cfg);

  VmSpec spec;
  spec.name = "vm";
  spec.memory = 256_MiB;
  spec.reservation = 128_MiB;
  spec.swap = (c.technique == Technique::kPrecopy ||
               c.technique == Technique::kPostcopy)
                  ? SwapBinding::kHostPartition
                  : SwapBinding::kPerVmDevice;
  VmHandle& handle = bed.create_vm(spec);

  if (c.busy) {
    workload::YcsbConfig wcfg;
    wcfg.dataset_bytes = 200_MiB;
    wcfg.guest_os_bytes = 16_MiB;
    wcfg.active_bytes = 64_MiB;
    wcfg.read_fraction = 0.7;
    auto load = std::make_unique<workload::YcsbWorkload>(
        handle.machine, &bed.cluster().network(), bed.client_node(), wcfg,
        bed.make_rng("vm/ycsb"));
    load->load(0);
    bed.attach_workload(handle, std::move(load));
  } else {
    // Idle VM still has touched memory (page cache): prefill past the
    // reservation so a cold tail sits on the swap device.
    handle.machine->memory().prefill(pages_for(192_MiB), 0);
  }
  bed.cluster().run_for_seconds(2.0);

  auto migration = bed.make_migration(c.technique, handle);
  migration->start();
  double deadline = bed.cluster().now_seconds() + 1200;
  while (!migration->completed() && bed.cluster().now_seconds() < deadline) {
    bed.cluster().run_for_seconds(1.0);
  }

  const migration::MigrationMetrics& m = migration->metrics();
  const mem::GuestMemory& mem = handle.machine->memory();
  std::ostringstream os;
  os << case_name(c) << " completed=" << (m.completed ? 1 : 0)
     << " total_time=" << m.total_time() << " downtime=" << m.downtime
     << " switchover=" << (m.switchover_time - m.start_time)
     << " bytes=" << m.bytes_transferred << " scattered=" << m.bytes_scattered
     << " full=" << m.pages_sent_full << " desc=" << m.pages_sent_descriptor
     << " demand=" << m.pages_demand_served
     << " src_swapins=" << m.pages_swapped_in_at_source
     << " dup=" << m.duplicate_pages << " rounds=" << m.precopy_rounds
     << " dest_resident=" << mem.resident_pages()
     << " dest_swapped=" << mem.swapped_pages()
     << " dest_untouched=" << mem.untouched_pages()
     << " dest_remote=" << mem.remote_pages()
     << " dest_minor=" << mem.stats().minor_faults
     << " dest_major=" << mem.stats().major_faults
     << " dest_installs=" << mem.stats().remote_installs;
  mem.check_consistency();
  return os.str();
}

std::string dump_all() {
  const GoldenCase cases[] = {
      {Technique::kPrecopy, false},       {Technique::kPrecopy, true},
      {Technique::kPostcopy, false},      {Technique::kPostcopy, true},
      {Technique::kAgile, false},         {Technique::kAgile, true},
      {Technique::kScatterGather, false}, {Technique::kScatterGather, true},
  };
  std::string out;
  for (const GoldenCase& c : cases) out += run_case(c) + "\n";
  return out;
}

TEST(GoldenMetrics, MigrationMetricsMatchGolden) {
  std::string actual = dump_all();
  const char* path = AGILE_GOLDEN_FILE;
  if (const char* w = std::getenv("AGILE_GOLDEN_WRITE"); w != nullptr && w[0] == '1') {
    std::ofstream f(path, std::ios::trunc);
    ASSERT_TRUE(f.good()) << "cannot write golden file " << path;
    f << actual;
    GTEST_SKIP() << "golden file rewritten: " << path;
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "missing golden file " << path
                        << " (regenerate with AGILE_GOLDEN_WRITE=1)";
  std::stringstream buf;
  buf << f.rdbuf();
  if (buf.str().size() < actual.size()) {
    // A truncated checkout / interrupted rewrite shows up as a confusing
    // whole-dump diff; name the real problem and the file first.
    std::fprintf(stderr,
                 "warning: golden file '%s' is short (%zu bytes, expected %zu)"
                 " — truncated or stale?\n",
                 path, buf.str().size(), actual.size());
  }
  EXPECT_EQ(buf.str(), actual)
      << "migration metrics diverged from the golden dump — the data path is "
         "supposed to be behavior-preserving; regenerate only for an "
         "intentional behavior change";
}

}  // namespace
}  // namespace agile::core
