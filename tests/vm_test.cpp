#include <gtest/gtest.h>

#include <memory>

#include "mem/guest_memory.hpp"
#include "swap/swap_device.hpp"
#include "vm/virtual_machine.hpp"

namespace agile::vm {
namespace {

struct Fixture {
  std::shared_ptr<storage::SsdModel> ssd = std::make_shared<storage::SsdModel>();
  swap::LocalSwapDevice swap_dev{"swap", ssd, 1_GiB};

  std::unique_ptr<VirtualMachine> make(Bytes size = 64_MiB,
                                       Bytes reservation = 32_MiB) {
    mem::GuestMemoryConfig mc;
    mc.size = size;
    mc.reservation = reservation;
    auto memory =
        std::make_unique<mem::GuestMemory>(mc, &swap_dev, Rng(1, "vm"));
    VmConfig vc;
    vc.name = "vm";
    vc.memory = size;
    vc.reservation = reservation;
    vc.vcpus = 2;
    return std::make_unique<VirtualMachine>(vc, std::move(memory), 0);
  }
};

TEST(VirtualMachine, BasicAccessors) {
  Fixture fx;
  auto machine = fx.make();
  EXPECT_EQ(machine->name(), "vm");
  EXPECT_EQ(machine->page_count(), pages_for(64_MiB));
  EXPECT_EQ(machine->vcpus(), 2u);
  EXPECT_EQ(machine->host_node(), 0u);
  EXPECT_TRUE(machine->running());
  machine->set_host_node(3);
  EXPECT_EQ(machine->host_node(), 3u);
}

TEST(VirtualMachine, AccessRoutesToMemory) {
  Fixture fx;
  auto machine = fx.make();
  EXPECT_GE(machine->access_page(0, true, 1), 0);
  EXPECT_TRUE(machine->memory().is_resident(0));
  EXPECT_EQ(machine->access_page(0, false, 2), 0);  // fast path
}

TEST(VirtualMachine, SuspendResume) {
  Fixture fx;
  auto machine = fx.make();
  machine->suspend();
  EXPECT_FALSE(machine->running());
  machine->resume();
  EXPECT_TRUE(machine->running());
  EXPECT_GE(machine->access_page(1, false, 1), 0);
}

TEST(VirtualMachine, RemoteFaultHandlerInstallsAndGetsCharged) {
  Fixture fx;
  auto machine = fx.make();
  // Build a "destination process" memory and swap it in.
  mem::GuestMemoryConfig mc;
  mc.size = 64_MiB;
  mc.reservation = 32_MiB;
  auto dest = std::make_unique<mem::GuestMemory>(mc, &fx.swap_dev, Rng(2, "d"));
  dest->mark_all_remote();
  mem::GuestMemory* dest_raw = dest.get();
  auto old = machine->swap_memory(std::move(dest));
  EXPECT_NE(old, nullptr);

  int faults = 0;
  machine->set_remote_fault_handler(
      [&](PageIndex p, bool, std::uint32_t tick) -> SimTime {
        ++faults;
        dest_raw->install_resident(p, tick);
        return 1234;
      });
  EXPECT_TRUE(machine->has_remote_fault_handler());
  SimTime lat = machine->access_page(7, true, 1);
  EXPECT_EQ(faults, 1);
  EXPECT_GE(lat, 1234);
  // Installed: the second access is a plain resident hit.
  EXPECT_EQ(machine->access_page(7, false, 2), 0);
  EXPECT_EQ(faults, 1);
  machine->clear_remote_fault_handler();
  EXPECT_FALSE(machine->has_remote_fault_handler());
}

TEST(VirtualMachine, SwapMemoryReturnsOldMemory) {
  Fixture fx;
  auto machine = fx.make();
  machine->access_page(0, true, 1);
  mem::GuestMemory* original = &machine->memory();
  mem::GuestMemoryConfig mc;
  mc.size = 64_MiB;
  mc.reservation = 32_MiB;
  auto fresh = std::make_unique<mem::GuestMemory>(mc, &fx.swap_dev, Rng(3, "f"));
  auto old = machine->swap_memory(std::move(fresh));
  EXPECT_EQ(old.get(), original);
  EXPECT_TRUE(old->is_resident(0));       // state travels with the object
  EXPECT_FALSE(machine->memory().is_resident(0));  // new memory is fresh
}

}  // namespace
}  // namespace agile::vm
