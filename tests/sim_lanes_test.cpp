// Sharded event lanes (sim/lanes.hpp): the determinism contract.
//
// Unit level: (time, channel, seq) execution order, mailbox drain ordering,
// horizon handling at quantum edges, lane-count independence of per-channel
// observables, and death tests for the two contract violations (conservative
// lookahead and cross-lane scheduling). Integration level: a small fleet
// scenario must produce byte-identical metrics digests *and* Chrome trace
// JSON at lane counts 1, 2 and 3, and `Cluster::run_until` must behave when
// the bound lands exactly on a barrier (quantum edge).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "host/cluster.hpp"
#include "sim/lanes.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace agile {
namespace {

namespace scen = core::scenarios;
using sim::LaneCoordinator;

/// Coordinator plus the pool it needs; lanes == 1 runs poolless.
struct LaneRig {
  std::unique_ptr<util::ThreadPool> pool;
  std::unique_ptr<LaneCoordinator> coord;

  explicit LaneRig(std::size_t lanes) {
    LaneCoordinator::Config cfg;
    cfg.lanes = lanes;
    if (lanes > 1) {
      pool = std::make_unique<util::ThreadPool>(lanes - 1);
      cfg.pool = pool.get();
    }
    coord = std::make_unique<LaneCoordinator>(cfg);
  }
};

TEST(LaneCoordinator, ExecutesInTimeChannelSeqOrder) {
  LaneRig rig(1);
  LaneCoordinator& c = *rig.coord;
  c.ensure_channels(3);
  // Interleave scheduling across channels and times; the log must come out
  // sorted by (time, channel, insertion-within-channel).
  std::vector<std::string> log;
  auto ev = [&log](const char* tag) {
    return [&log, tag] { log.emplace_back(tag); };
  };
  c.schedule(2, 20, ev("t20c2"));
  c.schedule(0, 20, ev("t20c0a"));
  c.schedule(1, 10, ev("t10c1"));
  c.schedule(0, 20, ev("t20c0b"));
  c.schedule(0, 10, ev("t10c0"));
  c.advance_to(20);
  EXPECT_EQ(log, (std::vector<std::string>{"t10c0", "t10c1", "t20c0a",
                                           "t20c0b", "t20c2"}));
  EXPECT_EQ(c.events_executed(), 5u);
}

TEST(LaneCoordinator, HorizonIsInclusiveAndMonotonic) {
  LaneRig rig(1);
  LaneCoordinator& c = *rig.coord;
  c.ensure_channels(2);
  int fired = 0;
  c.schedule(0, 100, [&] { ++fired; });  // exactly on the horizon: runs
  c.schedule(1, 101, [&] { ++fired; });  // one past: stays pending
  EXPECT_EQ(c.next_event_time(), 100);
  EXPECT_EQ(c.pending_events(), 2u);
  c.advance_to(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(c.barrier_time(), 100);
  EXPECT_EQ(c.next_event_time(), 101);
  EXPECT_EQ(c.pending_events(), 1u);
  c.advance_to(100);  // empty window at the same horizon is fine
  EXPECT_EQ(fired, 1);
  c.advance_to(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(c.next_event_time(), -1);
  EXPECT_EQ(c.pending_events(), 0u);
}

TEST(LaneCoordinator, MailboxDrainsInTimeSourceSeqOrder) {
  LaneRig rig(1);
  LaneCoordinator& c = *rig.coord;
  c.ensure_channels(4);
  std::vector<std::string> arrivals;
  auto arrive = [&arrivals](const char* tag) {
    return [&arrivals, tag] { arrivals.emplace_back(tag); };
  };
  // Three source channels post to channel 3 for the next window. Drain order
  // is (delivery time, source channel, per-source seq) — channel 2's earlier
  // delivery time beats channel 0's source index, and channel 0's two posts
  // keep their issue order.
  c.schedule(0, 10, [&] {
    c.post(3, 200, arrive("c0-first"));
    c.post(3, 200, arrive("c0-second"));
  });
  c.schedule(1, 10, [&] { c.post(3, 200, arrive("c1")); });
  c.schedule(2, 10, [&] { c.post(3, 150, arrive("c2-early")); });
  c.advance_to(100);
  EXPECT_EQ(c.pending_events(), 4u);
  c.advance_to(300);
  EXPECT_EQ(arrivals, (std::vector<std::string>{"c2-early", "c0-first",
                                                "c0-second", "c1"}));
}

TEST(LaneCoordinator, ThreadEventTimeStampsTheRunningEvent) {
  LaneRig rig(1);
  LaneCoordinator& c = *rig.coord;
  c.ensure_channels(1);
  SimTime inside = -1;
  c.schedule(0, 70, [&] { inside = LaneCoordinator::thread_event_time(-7); });
  c.advance_to(100);
  EXPECT_EQ(inside, 70);
  // Off-lane threads (here: the test body) get the fallback.
  EXPECT_EQ(LaneCoordinator::thread_event_time(-7), -7);
}

/// Runs the same scripted two-window workload and returns the per-channel
/// logs. Channel-confined appends plus cross-channel posts; any lane count
/// must produce identical logs.
std::vector<std::vector<std::string>> scripted_run(std::size_t lanes) {
  LaneRig rig(lanes);
  LaneCoordinator& c = *rig.coord;
  constexpr std::size_t kChannels = 8;
  c.ensure_channels(kChannels);
  std::vector<std::vector<std::string>> logs(kChannels);
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    for (int k = 0; k < 3; ++k) {
      SimTime t = 10 * (1 + static_cast<SimTime>((ch + static_cast<std::size_t>(k)) % 3));
      c.schedule(ch, t, [&logs, ch, t, k] {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "t%lld-k%d", static_cast<long long>(t), k);
        logs[ch].emplace_back(buf);
      });
    }
    // Cross-channel: tell channel (ch+3)%kChannels about us, next window.
    std::size_t target = (ch + 3) % kChannels;
    c.schedule(ch, 10, [&c, &logs, ch, target] {
      c.post(target, 100, [&logs, ch, target] {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "from%zu", ch);
        logs[target].emplace_back(buf);
      });
    });
  }
  c.advance_to(50);
  c.advance_to(100);
  return logs;
}

TEST(LaneCoordinator, LaneCountDoesNotChangeObservables) {
  auto sequential = scripted_run(1);
  EXPECT_EQ(scripted_run(2), sequential);
  EXPECT_EQ(scripted_run(4), sequential);
}

TEST(LaneCoordinatorDeath, PostBelowHorizonDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        LaneCoordinator::Config cfg;
        LaneCoordinator coord(cfg);
        coord.ensure_channels(2);
        // Delivery before the open window's horizon breaks conservative
        // lookahead: the target lane may already have run past t=50.
        coord.schedule(0, 10, [&coord] { coord.post(1, 50, [] {}); });
        coord.advance_to(100);
      },
      "AGILE_CHECK failed");
}

TEST(LaneCoordinatorDeath, CrossLaneScheduleDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        util::ThreadPool pool(1);
        LaneCoordinator::Config cfg;
        cfg.lanes = 2;
        cfg.pool = &pool;
        LaneCoordinator coord(cfg);
        coord.ensure_channels(2);  // default plan: channel 1 on lane 1
        coord.schedule(0, 10, [&coord] { coord.schedule(1, 20, [] {}); });
        coord.advance_to(100);
      },
      "AGILE_CHECK failed");
}

TEST(ClusterLanes, RunUntilLandsExactlyOnQuantumEdge) {
  host::ClusterConfig cfg;
  cfg.lanes = 2;
  host::Cluster cluster(cfg);
  host::HostConfig h;
  h.name = "h0";
  cluster.add_host(h);
  h.name = "h1";
  cluster.add_host(h);
  const SimTime q = cfg.quantum;
  std::vector<int> fired;
  cluster.schedule_on_host(0, q, [&] { fired.push_back(0); });
  cluster.schedule_on_host(1, 2 * q, [&] { fired.push_back(1); });
  cluster.run_until(q);  // bound == first barrier
  EXPECT_EQ(cluster.simulation().now(), q);
  EXPECT_EQ(fired, (std::vector<int>{0}));
  cluster.run_until(3 * q);  // continues cleanly past the landing point
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
  EXPECT_EQ(cluster.simulation().now(), 3 * q);
}

TEST(ClusterLanes, ScheduleOnHostWithoutLanesFallsBackToHeap) {
  host::ClusterConfig cfg;
  cfg.lanes = 1;
  host::Cluster cluster(cfg);
  host::HostConfig h;
  h.name = "h0";
  cluster.add_host(h);
  int fired = 0;
  cluster.schedule_on_host(0, 50, [&] { ++fired; });
  cluster.run_until(50);
  EXPECT_EQ(fired, 1);
}

/// One small fleet run at the given lane count: returns a metrics digest and
/// the full Chrome trace JSON. Everything must be byte-identical across lane
/// counts.
void fleet_fingerprint(std::uint32_t lanes, std::string* digest,
                       std::string* trace_json) {
  trace::TraceSession session;  // before the testbed: capture construction
  scen::FleetOptions opt;
  // Bench-default bed (4 hosts, 6 VMs, 3 turning hot at t=90). Don't move
  // the hotspot earlier: the orchestrator holds its first decision until
  // every WSS estimate stabilizes, and a hotspot inside that stabilization
  // window defers the decision past any short horizon. With the default
  // timing the multi-victim decision lands at t=150.
  opt.lanes = lanes;
  scen::Fleet fleet = scen::make_fleet(opt);
  fleet.load_all();
  fleet.orchestrator->start();
  fleet.bed->cluster().run_for_seconds(200);
  fleet.orchestrator->stop();

  std::uint64_t ops = 0;
  for (const workload::YcsbWorkload* y : fleet.ycsbs) ops += y->ops_total();
  std::size_t completed = 0;
  Bytes wire = 0;
  for (const auto& m : fleet.orchestrator->migrations()) {
    if (m->completed()) ++completed;
    wire += m->metrics().bytes_transferred;
  }
  // No event *counts* here: host-bound one-shots live on the sim heap at
  // lanes=1 but in the lane mailbox at lanes>1, so neither counter is
  // comparable across lane counts. Observables (clock, ops, migrations,
  // bytes) and the full trace are.
  char buf[256];
  std::snprintf(
      buf, sizeof(buf), "now=%lld ops=%llu migs=%zu done=%zu wire=%llu",
      static_cast<long long>(fleet.bed->cluster().simulation().now()),
      static_cast<unsigned long long>(ops),
      fleet.orchestrator->migrations_launched(), completed,
      static_cast<unsigned long long>(wire));
  *digest = buf;
  *trace_json = session.recorder().to_chrome_json();
}

TEST(ClusterLanes, FleetByteIdenticalAcrossLaneCounts) {
  std::string d1, d2, d3, t1, t2, t3;
  fleet_fingerprint(1, &d1, &t1);
  fleet_fingerprint(2, &d2, &t2);
  fleet_fingerprint(3, &d3, &t3);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d3);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t3);
  // Something actually ran and migrated in this bed, or the identity above
  // proves much less than it claims.
  EXPECT_NE(d1.find("migs="), std::string::npos);
  EXPECT_EQ(d1.find("migs=0 "), std::string::npos) << d1;
}

}  // namespace
}  // namespace agile
