// Tests for the invariant subsystem (util/check.hpp) and the deep auditors:
// the checking tiers behave as documented, and a seeded corruption is
// actually caught (death tests) — an auditor that never fires is worse than
// none, because it buys false confidence.

#include <cstdint>

#include <gtest/gtest.h>

#include "util/bitmap.hpp"
#include "util/check.hpp"

namespace agile {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  AGILE_CHECK(1 + 1 == 2);
  AGILE_CHECK_MSG(true, "never printed");
  AGILE_CHECK_S(2 > 1) << "never evaluated into a message";
  AGILE_DCHECK(true) << "fine";
  AGILE_DCHECK_EQ(3, 3) << "fine";
  AGILE_DCHECK_LE(3, 4);
}

TEST(CheckDeathTest, CheckAborts) {
  EXPECT_DEATH(AGILE_CHECK(1 == 2), "AGILE_CHECK failed");
}

TEST(CheckDeathTest, CheckMsgCarriesMessage) {
  EXPECT_DEATH(AGILE_CHECK_MSG(false, "the context string"),
               "the context string");
}

TEST(CheckDeathTest, StreamedCheckCarriesStreamedContext) {
  const std::uint64_t page = 42;
  EXPECT_DEATH(AGILE_CHECK_S(page == 0) << "offending page " << page,
               "offending page 42");
}

#ifdef AGILE_AUDIT
TEST(CheckDeathTest, DcheckOpPrintsBothOperands) {
  EXPECT_DEATH(AGILE_DCHECK_EQ(3, 5), "\\(3 vs 5\\)");
}
#else
TEST(CheckTest, CompiledOutDcheckEvaluatesNothing) {
  int evaluations = 0;
  auto bump = [&evaluations] {
    ++evaluations;
    return false;  // would fail if evaluated
  };
  AGILE_DCHECK(bump()) << "never built";
  AGILE_DCHECK_EQ(++evaluations, 99);
  EXPECT_EQ(evaluations, 0);
}
#endif

TEST(AuditTest, RuntimeToggleOverridesEnvironment) {
  audit::set_enabled_for_test(true);
  EXPECT_TRUE(audit::enabled());
  audit::set_enabled_for_test(false);
  EXPECT_FALSE(audit::enabled());
  audit::set_enabled_for_test(true);
  EXPECT_TRUE(audit::enabled());
}

TEST(BitmapAuditTest, DeepAuditAcceptsHealthyBitmaps) {
  Bitmap empty;
  empty.reset(0, false);
  empty.deep_audit();

  Bitmap b;
  b.reset(200, false);
  b.deep_audit();
  b.set(0);
  b.set(63);
  b.set_range(64, 130);
  b.set(199);
  b.deep_audit();
  b.clear_range(100, 128);
  b.deep_audit();
  b.set_range(0, 200);
  b.deep_audit();
}

// The seeded-fault demonstrations: plant each corruption class the auditor
// exists to catch and require the abort.

TEST(BitmapAuditDeathTest, CatchesPopulationCountDrift) {
  Bitmap b;
  b.reset(128, false);
  b.set(3);
  // Flip extra bits behind the cached count's back — the classic
  // incremental-update bug the popcount cross-check exists for.
  b.corrupt_word_for_test(1, 0xFFull);
  EXPECT_DEATH(b.deep_audit(), "AGILE_CHECK failed");
}

TEST(BitmapAuditDeathTest, CatchesBitsBeyondSize) {
  Bitmap b;
  b.reset(70, false);  // word 1 holds bits 64..69; 70..127 must stay zero
  b.set_range(0, 70);
  b.corrupt_word_for_test(1, ~0ull);  // plant garbage in the tail
  EXPECT_DEATH(b.deep_audit(), "AGILE_CHECK failed");
}

TEST(BitmapAuditDeathTest, CatchesClearedWordWithStaleCount) {
  Bitmap b;
  b.reset(256, false);
  b.set_range(64, 128);
  b.corrupt_word_for_test(1, 0);  // lose a whole word of set bits
  EXPECT_DEATH(b.deep_audit(), "AGILE_CHECK failed");
}

}  // namespace
}  // namespace agile
