// Stats subsystem tests: registry get-or-create semantics, exact export
// formats (Prometheus text and snapshots JSON), histogram edge cases (empty
// export, inclusive bucket boundaries, saturation, merge associativity),
// health-model arithmetic, the write paths (parent-dir creation and the
// warning on failure), and end-to-end determinism: a full instrumented
// scenario run twice produces byte-identical exports. The ctest rerun with
// AGILE_AUDIT=1 proves the deep auditors never perturb a snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "core/scenarios.hpp"
#include "stats/health.hpp"
#include "stats/stats.hpp"

using namespace agile;
using stats::Histogram;
using stats::Labels;
using stats::MigrationHealth;
using stats::MigrationHealthModel;
using stats::MigrationObservation;
using stats::Registry;

namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// --- registry ----------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableCells) {
  Registry reg;
  stats::Counter* a = reg.counter("reqs_total", {{"vm", "a"}});
  stats::Counter* again = reg.counter("reqs_total", {{"vm", "a"}});
  EXPECT_EQ(a, again);
  stats::Counter* b = reg.counter("reqs_total", {{"vm", "b"}});
  EXPECT_NE(a, b);
  stats::Gauge* g = reg.gauge("depth");
  EXPECT_EQ(g, reg.gauge("depth"));
  EXPECT_EQ(reg.metric_count(), 3u);

  // Registry growth must not move live cells (lane events hold raw pointers).
  a->add(7);
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler", {{"i", std::to_string(i)}});
  }
  EXPECT_EQ(a->value(), 7u);
  EXPECT_EQ(reg.counter("reqs_total", {{"vm", "a"}}), a);
}

TEST(RegistryDeathTest, KindMismatchDies) {
  Registry reg;
  reg.counter("series");
  EXPECT_DEATH(reg.gauge("series"), "different kind");
}

TEST(RegistryDeathTest, HistogramBoundsMismatchDies) {
  Registry reg;
  reg.histogram("lat", {10, 20});
  EXPECT_DEATH(reg.histogram("lat", {10, 30}), "different bounds");
}

// --- export formats ----------------------------------------------------

TEST(Export, PrometheusExactText) {
  Registry reg;
  reg.counter("reqs_total", {{"vm", "a"}}, "Total requests")->add(3);
  reg.gauge("temp")->set(-5);
  Histogram* h = reg.histogram("lat", {10, 20});
  h->observe(5);
  h->observe(10);
  h->observe(15);
  h->observe(25);
  EXPECT_EQ(reg.to_prometheus(2'500'000),
            "# HELP reqs_total Total requests\n"
            "# TYPE reqs_total counter\n"
            "reqs_total{vm=\"a\"} 3 2500\n"
            "# HELP temp (no help)\n"
            "# TYPE temp gauge\n"
            "temp -5 2500\n"
            "# HELP lat (no help)\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"10\"} 2 2500\n"
            "lat_bucket{le=\"20\"} 3 2500\n"
            "lat_bucket{le=\"+Inf\"} 4 2500\n"
            "lat_sum 55 2500\n"
            "lat_count 4 2500\n");
}

TEST(Export, PrometheusHeaderOncePerFamily) {
  Registry reg;
  reg.gauge("ram", {{"host", "a"}})->set(1);
  reg.gauge("ram", {{"host", "b"}})->set(2);
  std::string text = reg.to_prometheus(0);
  EXPECT_EQ(text.find("# TYPE ram gauge"), text.rfind("# TYPE ram gauge"));
}

TEST(Export, SnapshotsJsonExactWithLateRegistration) {
  Registry reg;
  stats::Counter* c = reg.counter("c");
  c->add(1);
  reg.record_snapshot(1000);
  stats::Gauge* g = reg.gauge("g");
  g->set(7);
  c->add(1);
  reg.record_snapshot(2000);
  EXPECT_EQ(reg.snapshots_json(),
            "{\n"
            "  \"series\": [\n"
            "    {\"name\": \"c\", \"kind\": \"counter\", \"labels\": {}},\n"
            "    {\"name\": \"g\", \"kind\": \"gauge\", \"labels\": {}}\n"
            "  ],\n"
            "  \"snapshots\": [\n"
            "    {\"t_usec\": 1000, \"values\": [1]},\n"
            "    {\"t_usec\": 2000, \"values\": [2, 7]}\n"
            "  ]\n"
            "}\n");
}

TEST(Export, HistogramSnapshotRowIsCumulative) {
  Registry reg;
  Histogram* h = reg.histogram("lat", {10, 20}, {}, "");
  h->observe(5);
  h->observe(15);
  reg.record_snapshot(0);
  // Row: cumulative per bound, cumulative total, count, sum.
  std::string json = reg.snapshots_json();
  EXPECT_NE(json.find("\"bounds\": [10, 20]"), std::string::npos);
  EXPECT_NE(json.find("\"values\": [[1, 2, 2, 2, 20]]"), std::string::npos);
}

// --- histogram edge cases ----------------------------------------------

TEST(Histogram, EmptyExportsAllZeroes) {
  Registry reg;
  reg.histogram("lat", {1, 2});
  EXPECT_EQ(reg.to_prometheus(0),
            "# HELP lat (no help)\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 0 0\n"
            "lat_bucket{le=\"2\"} 0 0\n"
            "lat_bucket{le=\"+Inf\"} 0 0\n"
            "lat_sum 0 0\n"
            "lat_count 0 0\n");
}

TEST(Histogram, BoundariesAreInclusiveUpperEdges) {
  Histogram h({0, 10});
  h.observe(-1);  // below the first bound -> first bucket
  h.observe(0);   // exactly the first bound -> first bucket
  h.observe(10);  // exactly the second bound -> second bucket
  h.observe(11);  // past every bound -> overflow
  EXPECT_EQ(h.cumulative(0), 2u);  // <= 0
  EXPECT_EQ(h.cumulative(1), 3u);  // <= 10
  EXPECT_EQ(h.cumulative(2), 4u);  // total
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 20);  // -1 + 0 + 10 + 11 — negatives subtract exactly
}

TEST(Histogram, SaturatesInsteadOfWrapping) {
  Histogram h({10});
  h.observe_n(5, kMax - 1);
  h.observe_n(5, kMax - 1);  // would wrap; must clamp
  EXPECT_EQ(h.count(), kMax);
  EXPECT_EQ(h.cumulative(0), kMax);
  h.observe(5);  // further observations keep it pinned
  EXPECT_EQ(h.count(), kMax);
  // Sum clamps on the n*value multiply too — at the signed ceiling.
  Histogram s({10});
  s.observe_n(std::numeric_limits<std::int64_t>::max(), 1000);
  EXPECT_EQ(s.sum(), std::numeric_limits<std::int64_t>::max());
}

TEST(Histogram, MergeIsAssociativeEvenWhenSaturating) {
  auto make = [](std::uint64_t n) {
    Histogram h({10, 20});
    h.observe_n(5, n);
    h.observe_n(15, 2);
    h.observe(25);
    return h;
  };
  // One shard near the ceiling so at least one merge order saturates
  // mid-way; totals must come out identical regardless.
  Histogram a = make(kMax / 2), b = make(kMax / 2), c = make(7);

  Histogram left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  Histogram right = c;  // c + (b + a) — different order
  Histogram bc = b;
  bc.merge(a);
  right.merge(bc);

  for (std::size_t i = 0; i <= 2; ++i) {
    EXPECT_EQ(left.cumulative(i), right.cumulative(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.count(), kMax);  // proves saturation actually engaged
}

TEST(HistogramDeathTest, MergeRequiresIdenticalBounds) {
  Histogram a({10});
  Histogram b({20});
  EXPECT_DEATH(a.merge(b), "identical bounds");
}

TEST(HistogramDeathTest, UnsortedBoundsDie) {
  EXPECT_DEATH(Histogram({20, 10}), "ascending");
  EXPECT_DEATH(Histogram({10, 10}), "distinct");
}

// --- health model ------------------------------------------------------

TEST(HealthModel, FirstObservationPrimes) {
  MigrationHealthModel model;
  MigrationObservation obs;
  obs.now = 1'000'000;
  obs.bytes_transferred = 500;
  obs.pages_owed = 10;
  MigrationHealth h = model.update(obs);
  EXPECT_EQ(h.transfer_rate_bps, 0);
  EXPECT_EQ(h.page_drain_rate, 0);
  EXPECT_EQ(h.eta_usec, -1);
  EXPECT_EQ(h.projected_downtime_usec, -1);
}

TEST(HealthModel, WindowedRatesAndProjections) {
  MigrationHealthModel model;
  MigrationObservation obs;
  obs.now = 0;
  obs.bytes_transferred = 0;
  obs.pages_owed = 10;
  obs.wire_page_bytes = 100;
  obs.cpu_state_bytes = 200;
  model.update(obs);

  obs.now = 1'000'000;  // one second later
  obs.bytes_transferred = 1000;
  obs.pages_owed = 5;
  obs.backlog_bytes = 0;
  MigrationHealth h = model.update(obs);
  EXPECT_EQ(h.transfer_rate_bps, 1000);
  EXPECT_EQ(h.page_drain_rate, 5);
  // ETA: (5 pages * 100 B) / 1000 B/s = 0.5 s.
  EXPECT_EQ(h.eta_usec, 500'000);
  // Stop-and-copy now: (5 * 100 + 200) / 1000 B/s = 0.7 s.
  EXPECT_EQ(h.projected_downtime_usec, 700'000);
}

TEST(HealthModel, DirtyBurstZeroesDrainRateNotNegative) {
  MigrationHealthModel model;
  MigrationObservation obs;
  obs.now = 0;
  obs.pages_owed = 5;
  model.update(obs);
  obs.now = 1'000'000;
  obs.pages_owed = 50;  // debt grew
  MigrationHealth h = model.update(obs);
  EXPECT_EQ(h.page_drain_rate, 0);
  EXPECT_EQ(h.eta_usec, -1);  // no transfer observed either
}

TEST(HealthModel, ActualDowntimeOverridesModelAfterSwitchover) {
  MigrationHealthModel model;
  MigrationObservation obs;
  obs.now = 0;
  model.update(obs);
  obs.now = 1'000'000;
  obs.bytes_transferred = 4096;
  obs.switched_over = true;
  obs.downtime_usec = 123'456;
  MigrationHealth h = model.update(obs);
  EXPECT_EQ(h.projected_downtime_usec, 123'456);
}

// --- write paths -------------------------------------------------------

TEST(Write, CreatesParentDirectories) {
  Registry reg;
  reg.counter("c")->add(1);
  reg.record_snapshot(0);
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "agile_stats_test_dirs";
  std::filesystem::remove_all(dir);
  std::string path = (dir / "a" / "b" / "out.json").string();
  EXPECT_TRUE(reg.write_snapshots_json(path).is_ok());
  EXPECT_EQ(slurp(path), reg.snapshots_json());
  EXPECT_TRUE(reg.write_prometheus(path + ".prom", 0).is_ok());
  EXPECT_EQ(slurp(path + ".prom"), reg.to_prometheus(0));
  std::filesystem::remove_all(dir);
}

TEST(Write, FailureWarnsAndReturnsError) {
  Registry reg;
  reg.counter("c");
  // Parent "directory" is a regular file, so create_directories and fopen
  // both fail — the export must warn loudly, not vanish.
  std::filesystem::path file =
      std::filesystem::temp_directory_path() / "agile_stats_test_blocker";
  { std::ofstream(file.string()) << "x"; }
  std::string path = (file / "out.json").string();
  testing::internal::CaptureStderr();
  Status st = reg.write_snapshots_json(path);
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(err.find("stats: cannot open"), std::string::npos);
  EXPECT_NE(err.find("json export dropped"), std::string::npos);
  std::filesystem::remove(file);
}

// --- end-to-end determinism --------------------------------------------

// Instrumented scenario exports are a pure function of (options, seed): two
// fresh processes-worth of state in one test — build, run, export, twice —
// must agree byte-for-byte. Lane-count and job-count invariance is covered
// by the bench_smoke_stats_* ctest legs; the AGILE_AUDIT=1 rerun of this
// binary covers audit invariance of the in-process path.
TEST(EndToEnd, SingleVmRunTwiceIsByteIdentical) {
  auto run = [] {
    core::scenarios::SingleVmOptions opt;
    opt.technique = core::Technique::kAgile;
    opt.host_ram = 1_GiB;
    opt.vm_memory = 512_MiB;
    opt.guest_os = 32_MiB;
    opt.free_margin = 64_MiB;
    opt.stats = true;
    core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    EXPECT_TRUE(sc.migration->metrics().completed);
    return sc.registry->snapshots_json() +
           sc.registry->to_prometheus(sc.bed->cluster().simulation().now());
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("agile_migration_phase"), std::string::npos);
  EXPECT_NE(first.find("agile_vm_resident_pages"), std::string::npos);
}

}  // namespace
