#include <gtest/gtest.h>

#include "net/network.hpp"

namespace agile::net {
namespace {

NetworkConfig gbit() {
  NetworkConfig cfg;
  cfg.link_bits_per_sec = 1e9;
  cfg.protocol_efficiency = 1.0;  // exact math in tests
  cfg.base_rtt = 200;
  return cfg;
}

TEST(Network, NodeBookkeeping) {
  Network net(gbit());
  NodeId a = net.add_node("src");
  NodeId b = net.add_node("dst");
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.node_name(a), "src");
  EXPECT_EQ(net.node_name(b), "dst");
  EXPECT_DOUBLE_EQ(net.link_bytes_per_sec(), 1e9 / 8.0);
}

TEST(Network, SingleFlowGetsFullLineRate) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  // 1 Gbps = 125e6 bytes/sec.
  EXPECT_NEAR(static_cast<double>(delivered), 125e6, 1e3);
  EXPECT_EQ(net.backlog(f), 1_GiB - delivered);
}

TEST(Network, BacklogSmallerThanCapacityFullyDrains) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_MiB);
  net.advance(msec(100));
  EXPECT_EQ(delivered, 1_MiB);
  EXPECT_EQ(net.backlog(f), 0u);
}

TEST(Network, TwoFlowsOnSameLinkSplitFairly) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes d1 = 0, d2 = 0;
  FlowId f1 = net.open_flow(a, b, [&](Bytes n) { d1 += n; });
  FlowId f2 = net.open_flow(a, b, [&](Bytes n) { d2 += n; });
  net.offer(f1, 1_GiB);
  net.offer(f2, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(d1), 62.5e6, 1e3);
  EXPECT_NEAR(static_cast<double>(d2), 62.5e6, 1e3);
}

TEST(Network, MaxMinGivesBottleneckedFlowItsShareElsewhere) {
  // Flows a->c and b->c contend at c's ingress; flow a->d should then pick up
  // the slack on a's egress.
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  NodeId c = net.add_node("c"), d = net.add_node("d");
  Bytes dac = 0, dbc = 0, dad = 0;
  FlowId fac = net.open_flow(a, c, [&](Bytes n) { dac += n; });
  FlowId fbc = net.open_flow(b, c, [&](Bytes n) { dbc += n; });
  FlowId fad = net.open_flow(a, d, [&](Bytes n) { dad += n; });
  net.offer(fac, 1_GiB);
  net.offer(fbc, 1_GiB);
  net.offer(fad, 1_GiB);
  net.advance(sec(1));
  // c ingress 125e6 split between fac and fbc; a egress 125e6 split between
  // fac (62.5e6) and fad (rest).
  EXPECT_NEAR(static_cast<double>(dac), 62.5e6, 2e3);
  EXPECT_NEAR(static_cast<double>(dbc), 62.5e6, 2e3);
  EXPECT_NEAR(static_cast<double>(dad), 62.5e6, 2e3);
}

TEST(Network, ShortFlowFinishesAndLongFlowTakesRemainder) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes d1 = 0, d2 = 0;
  FlowId f1 = net.open_flow(a, b, [&](Bytes n) { d1 += n; });
  FlowId f2 = net.open_flow(a, b, [&](Bytes n) { d2 += n; });
  net.offer(f1, 10_MiB);  // finishes well within the quantum's fair share
  net.offer(f2, 1_GiB);
  net.advance(sec(1));
  EXPECT_EQ(d1, 10_MiB);
  EXPECT_NEAR(static_cast<double>(d2), 125e6 - 10.0 * 1024 * 1024, 2e3);
}

TEST(Network, BackgroundTrafficReducesFlowCapacity) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.consume_background(a, b, 25'000'000);  // 25 MB of RPC traffic
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(delivered), 100e6, 1e3);
}

TEST(Network, UtilizationReflectsFlowAndBackground) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(net.tx_utilization(a), 1.0, 1e-6);
  EXPECT_NEAR(net.rx_utilization(b), 1.0, 1e-6);
  EXPECT_NEAR(net.tx_utilization(b), 0.0, 1e-6);
  net.close_flow(f);
  net.advance(sec(1));
  EXPECT_NEAR(net.tx_utilization(a), 0.0, 1e-6);
}

TEST(Network, RpcLatencyGrowsWithCongestion) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  SimTime idle = net.rpc_latency(b, a, kPageSize);
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 10_GiB);
  net.advance(sec(1));  // saturate a->b
  SimTime busy = net.rpc_latency(b, a, kPageSize);
  EXPECT_GT(busy, 5 * idle);
  EXPECT_GE(idle, 200);  // at least the base RTT
}

TEST(Network, RpcLatencyIncludesTransferTime) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  SimTime small = net.rpc_latency(a, b, 64);
  SimTime large = net.rpc_latency(a, b, 1_MiB);
  // 1 MiB at 125 MB/s is ~8.4 ms.
  EXPECT_GT(large, small + msec(7));
}

TEST(Network, StatsAccumulate) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 1_MiB);
  net.consume_background(b, a, 500);
  net.advance(sec(1));
  EXPECT_EQ(net.stats(a).tx_bytes, 1_MiB);
  EXPECT_EQ(net.stats(a).rx_bytes, 500u);
  EXPECT_EQ(net.stats(b).rx_bytes, 1_MiB);
  EXPECT_EQ(net.stats(b).tx_bytes, 500u);
}

TEST(Network, CloseFlowDropsBacklog) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_MiB);
  net.close_flow(f);
  EXPECT_EQ(net.open_flow_count(), 0u);
  net.advance(sec(1));
  EXPECT_EQ(delivered, 0u);
}

TEST(Network, DeliveryCallbackMayOpenFlows) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  bool opened = false;
  FlowId f = net.open_flow(a, b, [&](Bytes) {
    if (!opened) {
      opened = true;
      FlowId g = net.open_flow(b, a, [](Bytes) {});
      net.offer(g, 1_KiB);
    }
  });
  net.offer(f, 1_KiB);
  net.advance(msec(10));
  EXPECT_TRUE(opened);
  EXPECT_EQ(net.open_flow_count(), 2u);
}

TEST(Network, ProtocolEfficiencyShavesGoodput) {
  NetworkConfig cfg = gbit();
  cfg.protocol_efficiency = 0.94;
  Network net(cfg);
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(delivered), 125e6 * 0.94, 1e4);
}

}  // namespace
}  // namespace agile::net
