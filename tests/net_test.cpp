#include <gtest/gtest.h>

#include <limits>

#include "net/network.hpp"

namespace agile::net {
namespace {

NetworkConfig gbit() {
  NetworkConfig cfg;
  cfg.link_bits_per_sec = 1e9;
  cfg.protocol_efficiency = 1.0;  // exact math in tests
  cfg.base_rtt = 200;
  return cfg;
}

TEST(Network, NodeBookkeeping) {
  Network net(gbit());
  NodeId a = net.add_node("src");
  NodeId b = net.add_node("dst");
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.node_name(a), "src");
  EXPECT_EQ(net.node_name(b), "dst");
  EXPECT_DOUBLE_EQ(net.link_bytes_per_sec(), 1e9 / 8.0);
}

TEST(Network, SingleFlowGetsFullLineRate) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  // 1 Gbps = 125e6 bytes/sec.
  EXPECT_NEAR(static_cast<double>(delivered), 125e6, 1e3);
  EXPECT_EQ(net.backlog(f), 1_GiB - delivered);
}

TEST(Network, BacklogSmallerThanCapacityFullyDrains) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_MiB);
  net.advance(msec(100));
  EXPECT_EQ(delivered, 1_MiB);
  EXPECT_EQ(net.backlog(f), 0u);
}

TEST(Network, TwoFlowsOnSameLinkSplitFairly) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes d1 = 0, d2 = 0;
  FlowId f1 = net.open_flow(a, b, [&](Bytes n) { d1 += n; });
  FlowId f2 = net.open_flow(a, b, [&](Bytes n) { d2 += n; });
  net.offer(f1, 1_GiB);
  net.offer(f2, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(d1), 62.5e6, 1e3);
  EXPECT_NEAR(static_cast<double>(d2), 62.5e6, 1e3);
}

TEST(Network, MaxMinGivesBottleneckedFlowItsShareElsewhere) {
  // Flows a->c and b->c contend at c's ingress; flow a->d should then pick up
  // the slack on a's egress.
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  NodeId c = net.add_node("c"), d = net.add_node("d");
  Bytes dac = 0, dbc = 0, dad = 0;
  FlowId fac = net.open_flow(a, c, [&](Bytes n) { dac += n; });
  FlowId fbc = net.open_flow(b, c, [&](Bytes n) { dbc += n; });
  FlowId fad = net.open_flow(a, d, [&](Bytes n) { dad += n; });
  net.offer(fac, 1_GiB);
  net.offer(fbc, 1_GiB);
  net.offer(fad, 1_GiB);
  net.advance(sec(1));
  // c ingress 125e6 split between fac and fbc; a egress 125e6 split between
  // fac (62.5e6) and fad (rest).
  EXPECT_NEAR(static_cast<double>(dac), 62.5e6, 2e3);
  EXPECT_NEAR(static_cast<double>(dbc), 62.5e6, 2e3);
  EXPECT_NEAR(static_cast<double>(dad), 62.5e6, 2e3);
}

TEST(Network, ShortFlowFinishesAndLongFlowTakesRemainder) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes d1 = 0, d2 = 0;
  FlowId f1 = net.open_flow(a, b, [&](Bytes n) { d1 += n; });
  FlowId f2 = net.open_flow(a, b, [&](Bytes n) { d2 += n; });
  net.offer(f1, 10_MiB);  // finishes well within the quantum's fair share
  net.offer(f2, 1_GiB);
  net.advance(sec(1));
  EXPECT_EQ(d1, 10_MiB);
  EXPECT_NEAR(static_cast<double>(d2), 125e6 - 10.0 * 1024 * 1024, 2e3);
}

TEST(Network, BackgroundTrafficReducesFlowCapacity) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.consume_background(a, b, 25'000'000);  // 25 MB of RPC traffic
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(delivered), 100e6, 1e3);
}

TEST(Network, UtilizationReflectsFlowAndBackground) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(net.tx_utilization(a), 1.0, 1e-6);
  EXPECT_NEAR(net.rx_utilization(b), 1.0, 1e-6);
  EXPECT_NEAR(net.tx_utilization(b), 0.0, 1e-6);
  net.close_flow(f);
  net.advance(sec(1));
  EXPECT_NEAR(net.tx_utilization(a), 0.0, 1e-6);
}

TEST(Network, RpcLatencyGrowsWithCongestion) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  SimTime idle = net.rpc_latency(b, a, kPageSize);
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 10_GiB);
  net.advance(sec(1));  // saturate a->b
  SimTime busy = net.rpc_latency(b, a, kPageSize);
  EXPECT_GT(busy, 5 * idle);
  EXPECT_GE(idle, 200);  // at least the base RTT
}

TEST(Network, RpcLatencyIncludesTransferTime) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  SimTime small = net.rpc_latency(a, b, 64);
  SimTime large = net.rpc_latency(a, b, 1_MiB);
  // 1 MiB at 125 MB/s is ~8.4 ms.
  EXPECT_GT(large, small + msec(7));
}

TEST(Network, StatsAccumulate) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 1_MiB);
  net.consume_background(b, a, 500);
  net.advance(sec(1));
  EXPECT_EQ(net.stats(a).tx_bytes, 1_MiB);
  EXPECT_EQ(net.stats(a).rx_bytes, 500u);
  EXPECT_EQ(net.stats(b).rx_bytes, 1_MiB);
  EXPECT_EQ(net.stats(b).tx_bytes, 500u);
}

TEST(Network, CloseFlowDropsBacklog) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_MiB);
  net.close_flow(f);
  EXPECT_EQ(net.open_flow_count(), 0u);
  net.advance(sec(1));
  EXPECT_EQ(delivered, 0u);
}

TEST(Network, DeliveryCallbackMayOpenFlows) {
  Network net(gbit());
  NodeId a = net.add_node("a"), b = net.add_node("b");
  bool opened = false;
  FlowId f = net.open_flow(a, b, [&](Bytes) {
    if (!opened) {
      opened = true;
      FlowId g = net.open_flow(b, a, [](Bytes) {});
      net.offer(g, 1_KiB);
    }
  });
  net.offer(f, 1_KiB);
  net.advance(msec(10));
  EXPECT_TRUE(opened);
  EXPECT_EQ(net.open_flow_count(), 2u);
}

TEST(Network, ProtocolEfficiencyShavesGoodput) {
  NetworkConfig cfg = gbit();
  cfg.protocol_efficiency = 0.94;
  Network net(cfg);
  NodeId a = net.add_node("a"), b = net.add_node("b");
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(delivered), 125e6 * 0.94, 1e4);
}

// --- Degenerate flows and topology configs (defined, not modeled) --------

TEST(NetworkDeathTest, OpenFlowSameEndpointDies) {
  Network net(gbit());
  NodeId a = net.add_node("a");
  net.add_node("b");
  EXPECT_DEATH(net.open_flow(a, a, [](Bytes) {}),
               "flow endpoints must differ");
}

NetworkConfig leaf_spine(std::uint32_t racks, std::uint32_t hosts_per_rack,
                         double oversub) {
  NetworkConfig cfg = gbit();
  cfg.topology.kind = TopologyKind::kLeafSpine;
  cfg.topology.racks = racks;
  cfg.topology.hosts_per_rack = hosts_per_rack;
  cfg.topology.oversubscription = oversub;
  return cfg;
}

TEST(NetworkDeathTest, ZeroCapacityUplinkConfigsDie) {
  // Each of these would build a zero- or undefined-capacity leaf uplink; the
  // topology refuses instead of silently starving every inter-rack flow.
  EXPECT_DEATH(Network(leaf_spine(2, 2, 0.0)),
               "oversubscription must be positive and finite");
  EXPECT_DEATH(Network(leaf_spine(2, 2, -4.0)),
               "oversubscription must be positive and finite");
  EXPECT_DEATH(Network(leaf_spine(2, 2,
                                  std::numeric_limits<double>::infinity())),
               "oversubscription must be positive and finite");
  EXPECT_DEATH(Network(leaf_spine(2, 2,
                                  std::numeric_limits<double>::quiet_NaN())),
               "oversubscription must be positive and finite");
}

TEST(NetworkDeathTest, LeafSpineShapeChecks) {
  EXPECT_DEATH(Network(leaf_spine(0, 2, 4.0)), "at least one rack");
  EXPECT_DEATH(Network(leaf_spine(2, 0, 4.0)), "hosts_per_rack");
  Network net(leaf_spine(2, 2, 4.0));
  EXPECT_DEATH(net.add_node("stray", /*rack=*/2), "rack out of range");
}

// --- Leaf-spine routing and capacity -------------------------------------

TEST(Topology, FlatRouteIsTheNicPair) {
  Topology topo(TopologyConfig{}, 125e6);
  NodeId a = topo.add_node(kCoreAttached);
  NodeId b = topo.add_node(kCoreAttached);
  Topology::Path p = topo.route(a, b);
  ASSERT_EQ(p.count, 2);
  EXPECT_EQ(p.link[0], topo.host_up(a));
  EXPECT_EQ(p.link[1], topo.host_down(b));
  // Flat ignores the rack argument entirely.
  Topology topo2(TopologyConfig{}, 125e6);
  EXPECT_EQ(topo2.rack_of(topo2.add_node(7)), kCoreAttached);
}

TEST(Topology, LeafSpineHopCountFollowsRackPlacement) {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kLeafSpine;
  cfg.racks = 2;
  cfg.hosts_per_rack = 2;
  cfg.oversubscription = 4.0;
  Topology topo(cfg, 125e6);
  NodeId r0a = topo.add_node(0), r0b = topo.add_node(0);
  NodeId r1a = topo.add_node(1);
  NodeId ext = topo.add_node(kCoreAttached);
  EXPECT_EQ(topo.route(r0a, r0b).count, 2);  // intra-rack: leaf turnaround
  EXPECT_EQ(topo.route(r0a, r1a).count, 4);  // inter-rack: up + core + down
  EXPECT_EQ(topo.route(r0a, ext).count, 3);  // racked -> spine-attached
  EXPECT_EQ(topo.route(ext, r1a).count, 3);  // spine-attached -> racked
  // The inter-rack path crosses exactly the source uplink and dest downlink.
  Topology::Path p = topo.route(r0a, r1a);
  EXPECT_EQ(topo.link(p.link[1]).tier, LinkTier::kLeafUp);
  EXPECT_EQ(topo.link(p.link[2]).tier, LinkTier::kLeafDown);
  double uplink = 2 * 125e6 / 4.0;
  EXPECT_DOUBLE_EQ(topo.link(p.link[1]).payload_rate, uplink);
  EXPECT_DOUBLE_EQ(topo.link(p.link[2]).payload_rate, uplink);
}

TEST(Network, IntraRackFlowNeverSeesTheCore) {
  Network net(leaf_spine(2, 2, 8.0));  // uplink: 2*125e6/8 = 31.25 MB/s
  NodeId a = net.add_node("a", 0), b = net.add_node("b", 0);
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  // Full NIC rate despite the heavily oversubscribed core.
  EXPECT_NEAR(static_cast<double>(delivered), 125e6, 1e3);
  EXPECT_EQ(net.tier_totals(LinkTier::kLeafUp).bytes_total, 0u);
}

TEST(Network, InterRackFlowIsCappedByTheOversubscribedUplink) {
  Network net(leaf_spine(2, 2, 4.0));  // uplink: 2*125e6/4 = 62.5 MB/s
  NodeId a = net.add_node("a", 0), b = net.add_node("b", 1);
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.advance(sec(1));
  EXPECT_NEAR(static_cast<double>(delivered), 62.5e6, 1e3);
  // The constrained uplink runs hot while the NIC has slack.
  EXPECT_NEAR(net.tier_totals(LinkTier::kLeafUp).peak_utilization, 1.0, 1e-6);
  EXPECT_NEAR(net.tx_utilization(a), 0.5, 1e-6);
}

TEST(Network, BackgroundTrafficOnTheUplinkStallsInterRackFlows) {
  Network net(leaf_spine(2, 2, 4.0));  // uplink: 62.5 MB/s
  NodeId a = net.add_node("a", 0), b = net.add_node("b", 1);
  Bytes delivered = 0;
  FlowId f = net.open_flow(a, b, [&](Bytes n) { delivered += n; });
  net.offer(f, 1_GiB);
  net.consume_background(a, b, 62'500'000);  // fills the uplink for 1 s
  net.advance(sec(1));
  EXPECT_EQ(delivered, 0u);
  net.advance(sec(1));  // background is per-quantum; the flow recovers
  EXPECT_NEAR(static_cast<double>(delivered), 62.5e6, 1e3);
}

TEST(Network, RpcLatencyScalesWithHopCount) {
  NetworkConfig cfg = leaf_spine(2, 2, 4.0);
  cfg.base_rtt = 200;
  Network net(cfg);
  NodeId a = net.add_node("a", 0), b = net.add_node("b", 0);
  NodeId c = net.add_node("c", 1);
  NodeId ext = net.add_node("ext", kCoreAttached);
  // One base RTT per switch crossing: 2-link path = 1x, 3-link = 2x, 4-link
  // = 3x (payload 0 isolates the RTT term).
  EXPECT_EQ(net.rpc_latency(a, b, 0), 200);
  EXPECT_EQ(net.rpc_latency(a, ext, 0), 400);
  EXPECT_EQ(net.rpc_latency(a, c, 0), 600);
}

TEST(Network, TierTotalsAggregatePerTierLinks) {
  Network net(leaf_spine(2, 2, 4.0));
  NodeId a = net.add_node("a", 0), b = net.add_node("b", 1);
  net.add_node("c", 0);
  FlowId f = net.open_flow(a, b, [](Bytes) {});
  net.offer(f, 10_MiB);
  net.consume_background(b, a, 1_MiB);
  net.advance(sec(1));
  TierTotals up = net.tier_totals(LinkTier::kLeafUp);
  TierTotals down = net.tier_totals(LinkTier::kLeafDown);
  TierTotals host_up = net.tier_totals(LinkTier::kHostUp);
  EXPECT_EQ(up.links, 2u);    // one uplink per rack
  EXPECT_EQ(down.links, 2u);
  EXPECT_EQ(host_up.links, 3u);  // one NIC egress per node
  // a->b flow crosses rack0's uplink; b->a background crosses rack1's.
  EXPECT_EQ(up.bytes_total, 10_MiB + 1_MiB);
  EXPECT_EQ(down.bytes_total, 10_MiB + 1_MiB);
  EXPECT_DOUBLE_EQ(up.capacity_bytes_per_sec, 2 * 62.5e6);
  // The flat shape has no leaf tier at all.
  Network flat(gbit());
  flat.add_node("x");
  EXPECT_EQ(flat.tier_totals(LinkTier::kLeafUp).links, 0u);
}

}  // namespace
}  // namespace agile::net
