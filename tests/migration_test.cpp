// End-to-end protocol tests for the three migration techniques, driven
// through the public Testbed facade on a scaled-down cluster (hundreds of
// MiB instead of tens of GiB so each case runs in milliseconds).
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "workload/ycsb.hpp"

namespace agile::core {
namespace {

struct SmallBed {
  TestbedConfig cfg;
  std::unique_ptr<Testbed> bed;

  explicit SmallBed(std::uint64_t seed = 42) {
    cfg.cluster.seed = seed;
    cfg.source.ram = 1_GiB;
    cfg.source.host_os_bytes = 32_MiB;
    cfg.source.swap_partition_bytes = 2_GiB;
    cfg.dest = cfg.source;
    cfg.dest.name = "dest";
    cfg.vmd_server_capacity = 2_GiB;
    bed = std::make_unique<Testbed>(cfg);
  }

  Testbed& operator*() { return *bed; }
  Testbed* operator->() { return bed.get(); }
};

VmSpec small_vm(const std::string& name, SwapBinding binding) {
  VmSpec spec;
  spec.name = name;
  spec.memory = 256_MiB;
  spec.reservation = 128_MiB;
  spec.swap = binding;
  return spec;
}

workload::YcsbConfig small_ycsb() {
  workload::YcsbConfig cfg;
  cfg.dataset_bytes = 200_MiB;
  cfg.guest_os_bytes = 16_MiB;
  cfg.active_bytes = 64_MiB;
  cfg.read_fraction = 0.9;
  return cfg;
}

// Attaches a YCSB workload and pre-loads the dataset.
workload::YcsbWorkload* add_ycsb(Testbed& bed, VmHandle& h,
                                 workload::YcsbConfig cfg = small_ycsb()) {
  auto load = std::make_unique<workload::YcsbWorkload>(
      h.machine, &bed.cluster().network(), bed.client_node(), cfg,
      bed.make_rng(h.machine->name() + "/ycsb"));
  auto* raw = load.get();
  bed.attach_workload(h, std::move(load));
  raw->load(0);
  return raw;
}

// Runs until the migration completes (asserting it does within `limit_s`).
void run_to_completion(Testbed& bed, migration::MigrationManager& mig,
                       double limit_s = 600) {
  double deadline = bed.cluster().now_seconds() + limit_s;
  while (!mig.completed() && bed.cluster().now_seconds() < deadline) {
    bed.cluster().run_for_seconds(1.0);
  }
  ASSERT_TRUE(mig.completed()) << mig.technique() << " migration did not finish";
}

// Destination memory must hold every page (no kRemote left) and the VM must
// run on the destination host.
void expect_fully_migrated(Testbed& bed, VmHandle& h,
                           migration::MigrationManager& mig) {
  EXPECT_EQ(h.machine->memory().remote_pages(), 0u);
  EXPECT_TRUE(bed.dest()->has_vm(h.machine));
  EXPECT_FALSE(bed.source()->has_vm(h.machine));
  EXPECT_TRUE(h.machine->running());
  EXPECT_GT(mig.metrics().total_time(), 0);
  EXPECT_GE(mig.metrics().downtime, 0);
  EXPECT_GT(mig.metrics().bytes_transferred, 0u);
  // The source process must have released everything.
  EXPECT_EQ(mig.source_memory()->resident_pages(), 0u);
  EXPECT_EQ(mig.source_memory()->swapped_pages(), 0u);
  h.machine->memory().check_consistency();
  mig.source_memory()->check_consistency();
}

TEST(Migration, PrecopyIdleVmCompletes) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  h.machine->memory().prefill(h.machine->page_count(), 0);  // fully touched
  auto mig = bed->make_migration(Technique::kPrecopy, h);
  mig->start();
  run_to_completion(*bed, *mig);
  expect_fully_migrated(*bed, h, *mig);
  // An idle VM converges after one round: no dirtying at all.
  EXPECT_EQ(mig->metrics().precopy_rounds, 1u);
}

TEST(Migration, PrecopyTransfersAtLeastWholeMemory) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  h.machine->memory().prefill(h.machine->page_count(), 0);
  auto mig = bed->make_migration(Technique::kPrecopy, h);
  mig->start();
  run_to_completion(*bed, *mig);
  EXPECT_GE(mig->metrics().bytes_transferred, 256_MiB);
  // 128 MiB resident + 128 MiB swapped: the swapped half was swapped in.
  EXPECT_GE(mig->metrics().pages_swapped_in_at_source, pages_for(100_MiB));
}

TEST(Migration, PrecopyBusyVmRetransmitsDirtyPages) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  add_ycsb(*bed, h);
  bed->cluster().run_for_seconds(5);
  // At this miniature scale a 256 MiB VM transfers in ~2 s, so force the
  // convergence criterion to actually bite: a (near-)zero downtime target.
  migration::MigrationConfig cfg;
  cfg.downtime_target = msec(2);
  auto mig = bed->make_migration(Technique::kPrecopy, h, 0, cfg);
  mig->start();
  run_to_completion(*bed, *mig);
  expect_fully_migrated(*bed, h, *mig);
  EXPECT_GT(mig->metrics().precopy_rounds, 1u);
  EXPECT_GT(mig->metrics().pages_sent_full, h.machine->page_count() / 4);
}

TEST(Migration, PostcopyIdleVmCompletes) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  h.machine->memory().prefill(h.machine->page_count(), 0);
  auto mig = bed->make_migration(Technique::kPostcopy, h);
  mig->start();
  run_to_completion(*bed, *mig);
  expect_fully_migrated(*bed, h, *mig);
  EXPECT_EQ(mig->metrics().pages_demand_served, 0u);  // nobody faulted
}

TEST(Migration, PostcopyFlipsQuicklyAndDowntimeIsSmall) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  h.machine->memory().prefill(h.machine->page_count(), 0);
  auto mig = bed->make_migration(Technique::kPostcopy, h);
  mig->start();
  bed->cluster().run_for_seconds(2.0);
  // Execution must already be at the destination long before completion.
  EXPECT_TRUE(bed->dest()->has_vm(h.machine));
  EXPECT_TRUE(h.machine->running());
  run_to_completion(*bed, *mig);
  EXPECT_LT(mig->metrics().downtime, sec(1.5));
  EXPECT_LT(mig->metrics().switchover_time - mig->metrics().start_time, sec(2));
}

TEST(Migration, PostcopyBusyVmDemandPages) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  auto* ycsb = add_ycsb(*bed, h);
  bed->cluster().run_for_seconds(5);
  std::uint64_t ops_before = ycsb->ops_total();
  auto mig = bed->make_migration(Technique::kPostcopy, h);
  mig->start();
  run_to_completion(*bed, *mig);
  expect_fully_migrated(*bed, h, *mig);
  EXPECT_GT(mig->metrics().pages_demand_served, 0u);
  // The workload kept running through the migration.
  EXPECT_GT(ycsb->ops_total(), ops_before);
}

TEST(Migration, PostcopyTransfersEachPageOnce) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kHostPartition));
  auto* ycsb = add_ycsb(*bed, h);
  (void)ycsb;
  bed->cluster().run_for_seconds(5);
  auto mig = bed->make_migration(Technique::kPostcopy, h);
  mig->start();
  run_to_completion(*bed, *mig);
  std::uint64_t unique_payloads = mig->metrics().pages_sent_full +
                                  mig->metrics().pages_demand_served -
                                  mig->metrics().duplicate_pages;
  EXPECT_LE(unique_payloads, h.machine->page_count());
  // Duplicates (push racing a demand fault within the in-flight window) are
  // possible but must stay a small fraction of the VM.
  EXPECT_LT(mig->metrics().duplicate_pages, h.machine->page_count() / 20);
}

TEST(Migration, AgileIdleVmSkipsColdPages) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kPerVmDevice));
  h.machine->memory().prefill(h.machine->page_count(), 0);
  std::uint64_t cold_before = h.per_vm_swap->stored_pages();
  EXPECT_GT(cold_before, pages_for(100_MiB));  // half the VM is cold
  auto mig = bed->make_migration(Technique::kAgile, h);
  mig->start();
  run_to_completion(*bed, *mig);
  EXPECT_TRUE(bed->dest()->has_vm(h.machine));
  // Only the resident set crossed the wire: well under half the VM + headers.
  EXPECT_LT(mig->metrics().bytes_transferred, 160_MiB);
  EXPECT_GE(mig->metrics().pages_sent_descriptor, cold_before);
  // Cold pages survived in the VMD and are still reachable.
  EXPECT_EQ(h.machine->memory().swapped_pages(), cold_before);
  h.machine->memory().check_consistency();
}

TEST(Migration, AgileNeverTouchesSourceSsd) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kPerVmDevice));
  h.machine->memory().prefill(h.machine->page_count(), 0);
  std::uint64_t ssd_reads_before = bed->source()->ssd()->stats().reads;
  auto mig = bed->make_migration(Technique::kAgile, h);
  mig->start();
  run_to_completion(*bed, *mig);
  EXPECT_EQ(bed->source()->ssd()->stats().reads, ssd_reads_before);
  EXPECT_EQ(mig->metrics().pages_swapped_in_at_source, 0u);
}

TEST(Migration, AgileBusyVmPushesOnlyDirtySet) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kPerVmDevice));
  auto* ycsb = add_ycsb(*bed, h);
  bed->cluster().run_for_seconds(5);
  auto mig = bed->make_migration(Technique::kAgile, h);
  mig->start();
  run_to_completion(*bed, *mig);
  EXPECT_TRUE(bed->dest()->has_vm(h.machine));
  EXPECT_TRUE(h.machine->running());
  EXPECT_EQ(h.machine->memory().remote_pages(), 0u);  // dirty set fully owed & paid
  EXPECT_GT(ycsb->ops_total(), 0u);
  h.machine->memory().check_consistency();
  mig->source_memory()->check_consistency();
  // Exactly one live round, per the paper.
  EXPECT_EQ(mig->metrics().precopy_rounds, 1u);
}

TEST(Migration, AgileSlotOwnershipHandsOverCleanly) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kPerVmDevice));
  auto* ycsb = add_ycsb(*bed, h);
  (void)ycsb;
  bed->cluster().run_for_seconds(5);
  auto mig = bed->make_migration(Technique::kAgile, h);
  mig->start();
  run_to_completion(*bed, *mig);
  // Every slot still allocated on the per-VM device must be referenced by
  // the (now authoritative) destination memory — no leaks, no losses.
  std::uint64_t referenced = 0;
  mem::GuestMemory& memory = h.machine->memory();
  for (PageIndex p = 0; p < memory.page_count(); ++p) {
    if (memory.swap_slot(p) != swap::kNoSlot) ++referenced;
  }
  EXPECT_EQ(h.per_vm_swap->used_slots(), referenced);
}

TEST(Migration, AgileDestReadsColdPagesFromVmdAfterMigration) {
  SmallBed bed;
  VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kPerVmDevice));
  auto* ycsb = add_ycsb(*bed, h);
  bed->cluster().run_for_seconds(5);
  auto mig = bed->make_migration(Technique::kAgile, h);
  mig->start();
  run_to_completion(*bed, *mig);
  // Widen the active set: the workload now touches cold pages, which must be
  // served by the VMD (device reads), not the source.
  std::uint64_t vmd_reads_before = h.per_vm_swap->stats().reads;
  ycsb->set_active_bytes(200_MiB);
  bed->cluster().run_for_seconds(10);
  EXPECT_GT(h.per_vm_swap->stats().reads, vmd_reads_before);
  EXPECT_GT(ycsb->ops_total(), 0u);
}

TEST(Migration, TechniquesAreDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    SmallBed bed(seed);
    VmHandle& h = bed->create_vm(small_vm("vm1", SwapBinding::kPerVmDevice));
    add_ycsb(*bed, h);
    bed->cluster().run_for_seconds(5);
    auto mig = bed->make_migration(Technique::kAgile, h);
    mig->start();
    double deadline = bed->cluster().now_seconds() + 600;
    while (!mig->completed() && bed->cluster().now_seconds() < deadline) {
      bed->cluster().run_for_seconds(1.0);
    }
    return std::tuple(mig->metrics().total_time(),
                      mig->metrics().bytes_transferred,
                      mig->metrics().pages_sent_full);
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // and the seed actually matters
}

TEST(Migration, AgileFasterAndLeanerThanBaselinesUnderPressure) {
  // The headline claim at miniature scale: with half the VM cold, Agile
  // finishes faster and moves fewer bytes than pre-copy and post-copy.
  auto measure = [](Technique technique) {
    SmallBed bed;
    SwapBinding binding = technique == Technique::kAgile
                              ? SwapBinding::kPerVmDevice
                              : SwapBinding::kHostPartition;
    VmHandle& h = bed->create_vm(small_vm("vm1", binding));
    add_ycsb(*bed, h);
    bed->cluster().run_for_seconds(5);
    auto mig = bed->make_migration(technique, h);
    mig->start();
    double deadline = bed->cluster().now_seconds() + 600;
    while (!mig->completed() && bed->cluster().now_seconds() < deadline) {
      bed->cluster().run_for_seconds(1.0);
    }
    EXPECT_TRUE(mig->completed());
    return std::pair(mig->metrics().total_time(),
                     mig->metrics().bytes_transferred);
  };
  auto [pre_t, pre_b] = measure(Technique::kPrecopy);
  auto [post_t, post_b] = measure(Technique::kPostcopy);
  auto [agile_t, agile_b] = measure(Technique::kAgile);
  EXPECT_LT(agile_t, pre_t);
  EXPECT_LT(agile_t, post_t);
  EXPECT_LT(agile_b, pre_b);
  EXPECT_LT(agile_b, post_b);
}

}  // namespace
}  // namespace agile::core
