#include <gtest/gtest.h>

#include <vector>

#include "core/scenarios.hpp"
#include "migration/stream_group.hpp"

namespace agile::migration {
namespace {

struct Fixture {
  net::Network net;
  net::NodeId a, b;
  explicit Fixture(net::NetworkConfig cfg = {})
      : net(cfg), a(net.add_node("a")), b(net.add_node("b")) {}
};

TEST(StreamGroup, SingleLaneMatchesWireStream) {
  // With one lane the group must be timing-identical to a raw WireStream:
  // same delivery progress at every quantum for a mixed send/batch sequence.
  Fixture group_fx, wire_fx;
  StreamGroup group(&group_fx.net, group_fx.a, group_fx.b);
  WireStream wire(&wire_fx.net, wire_fx.a, wire_fx.b);
  ASSERT_EQ(group.lane_count(), 1u);

  std::uint64_t group_items = 0, wire_items = 0;
  auto feed = [](auto& stream, std::uint64_t* items) {
    stream.send(4_MiB, [items] { ++*items; });
    stream.send_batch(30, 1'000'000, [items](std::uint64_t k) { *items += k; });
    stream.send(64, [items] { ++*items; });
  };
  feed(group, &group_items);
  feed(wire, &wire_items);
  for (int q = 0; q < 6; ++q) {
    group_fx.net.advance(msec(100));
    wire_fx.net.advance(msec(100));
    EXPECT_EQ(group_items, wire_items) << "diverged at quantum " << q;
    EXPECT_EQ(group.delivered_bytes(), wire.delivered_bytes());
    EXPECT_EQ(group.backlog(), wire.backlog());
  }
  EXPECT_TRUE(group.idle());
  EXPECT_EQ(group_items, 32u);
}

TEST(StreamGroup, PerRunDeliveryOrderPreserved) {
  // Each run (one send_batch) lives on one FIFO lane: its chunks must arrive
  // in item order even when other runs on other lanes interleave with it.
  Fixture fx;
  StreamGroup group(&fx.net, fx.a, fx.b, 0, 4);
  constexpr int kRuns = 8;
  std::vector<std::uint64_t> delivered(kRuns, 0);
  std::vector<std::uint64_t> order_violations(kRuns, 0);
  for (int r = 0; r < kRuns; ++r) {
    group.send_batch(100, 50'000, [&delivered, &order_violations, r,
                                   expected = std::uint64_t{0}](
                                      std::uint64_t k) mutable {
      if (delivered[r] != expected) ++order_violations[r];
      expected += k;
      delivered[r] += k;
    });
  }
  for (int q = 0; q < 10; ++q) fx.net.advance(msec(100));
  for (int r = 0; r < kRuns; ++r) {
    EXPECT_EQ(delivered[r], 100u) << "run " << r;
    EXPECT_EQ(order_violations[r], 0u) << "run " << r;
  }
  EXPECT_TRUE(group.idle());
}

TEST(StreamGroup, RoundRobinDispatchIsDeterministic) {
  // Two groups fed the same sequence must produce identical per-lane
  // assignments and identical delivery traces.
  Fixture fx1, fx2;
  StreamGroup g1(&fx1.net, fx1.a, fx1.b, 0, 3);
  StreamGroup g2(&fx2.net, fx2.a, fx2.b, 0, 3);
  std::vector<int> trace1, trace2;
  for (int i = 0; i < 9; ++i) {
    g1.send_batch(10, 10'000 * (i + 1),
                  [&trace1, i](std::uint64_t) { trace1.push_back(i); });
    g2.send_batch(10, 10'000 * (i + 1),
                  [&trace2, i](std::uint64_t) { trace2.push_back(i); });
  }
  for (int q = 0; q < 5; ++q) {
    fx1.net.advance(msec(100));
    fx2.net.advance(msec(100));
  }
  EXPECT_EQ(trace1, trace2);
  for (std::size_t k = 0; k < g1.lane_count(); ++k) {
    EXPECT_EQ(g1.lane(k).offered_bytes(), g2.lane(k).offered_bytes());
  }
}

TEST(StreamGroup, FenceWaitsForAllLanes) {
  // Unequal lane backlogs: the fence callback must not fire until the
  // *slowest* lane has drained everything queued before the fence, even
  // though the fence message itself is tiny and lands early.
  Fixture fx;
  StreamGroup group(&fx.net, fx.a, fx.b, 0, 4);
  // Lanes get 5 MB / 10 MB / 20 MB / 40 MB (round-robin).
  for (Bytes mb : {5, 10, 20, 40}) {
    group.send_batch(1, mb * 1'000'000, nullptr);
  }
  bool fence_fired = false;
  group.send_fenced(64, [&] { fence_fired = true; });
  for (int q = 0; q < 50 && !fence_fired; ++q) {
    fx.net.advance(msec(100));
    if (group.backlog() > 0) {
      EXPECT_FALSE(fence_fired)
          << "fence fired with " << group.backlog() << " bytes still queued";
    }
  }
  EXPECT_TRUE(fence_fired);
  EXPECT_TRUE(group.idle());
}

TEST(StreamGroup, FenceOnSingleLaneFiresLikePlainSend) {
  Fixture group_fx, wire_fx;
  StreamGroup group(&group_fx.net, group_fx.a, group_fx.b);
  WireStream wire(&wire_fx.net, wire_fx.a, wire_fx.b);
  group.send_batch(4, 5'000'000, nullptr);
  wire.send_batch(4, 5'000'000, nullptr);
  int group_q = -1, wire_q = -1;
  bool gf = false, wf = false;
  group.send_fenced(4_MiB, [&] { gf = true; });
  wire.send(4_MiB, [&] { wf = true; });
  for (int q = 0; q < 10; ++q) {
    group_fx.net.advance(msec(100));
    wire_fx.net.advance(msec(100));
    if (gf && group_q < 0) group_q = q;
    if (wf && wire_q < 0) wire_q = q;
  }
  EXPECT_EQ(group_q, wire_q);
  EXPECT_GE(group_q, 0);
}

TEST(StreamGroup, FlowCapLimitsOneLane) {
  // A 10 Gbps link with a 1 Gbps per-flow cap: one lane drains at the flow
  // cap, not at line rate.
  net::NetworkConfig cfg;
  cfg.link_bits_per_sec = 10e9;
  cfg.flow_max_bits_per_sec = 1e9;
  Fixture fx(cfg);
  StreamGroup one(&fx.net, fx.a, fx.b, 0, 1);
  one.send_batch(1, 200'000'000, nullptr);
  fx.net.advance(sec(1));
  // 1 Gbps * protocol efficiency ~= 117.5 MB/s.
  EXPECT_NEAR(static_cast<double>(one.delivered_bytes()), 1e9 / 8 * 0.94,
              1e9 / 8 * 0.94 * 0.02);
}

TEST(StreamGroup, ThroughputScalesWithLanesUnderFlowCap) {
  net::NetworkConfig cfg;
  cfg.link_bits_per_sec = 10e9;
  cfg.flow_max_bits_per_sec = 1e9;
  Fixture one_fx(cfg), four_fx(cfg);
  StreamGroup one(&one_fx.net, one_fx.a, one_fx.b, 0, 1);
  StreamGroup four(&four_fx.net, four_fx.a, four_fx.b, 0, 4);
  // Eight 125 MB runs land on every lane of each group (round-robin), enough
  // that no lane runs dry within the measured second (~117.5 MB/s per flow).
  for (int i = 0; i < 8; ++i) {
    one.send_batch(1, 125'000'000, nullptr);
    four.send_batch(1, 125'000'000, nullptr);
  }
  one_fx.net.advance(sec(1));
  four_fx.net.advance(sec(1));
  double ratio = static_cast<double>(four.delivered_bytes()) /
                 static_cast<double>(one.delivered_bytes());
  EXPECT_NEAR(ratio, 4.0, 0.05);
}

TEST(StreamGroup, ConservesBytesAcrossPartialDrains) {
  // offered == delivered + backlog must hold at every quantum boundary, with
  // partially delivered runs in flight on several lanes at once. (The audit
  // rerun additionally exercises the internal per-quantum group auditor.)
  Fixture fx;
  StreamGroup group(&fx.net, fx.a, fx.b, 0, 4);
  for (int i = 0; i < 6; ++i) {
    group.send_batch(7, 3'000'000 + 1'000 * i, nullptr);
  }
  const Bytes offered = group.offered_bytes();
  EXPECT_EQ(offered, group.backlog() + group.delivered_bytes());
  while (!group.idle()) {
    fx.net.advance(msec(100));
    EXPECT_EQ(offered, group.backlog() + group.delivered_bytes());
  }
  EXPECT_EQ(group.delivered_bytes(), offered);
}

TEST(StreamGroup, ZeroPageElisionAccounting) {
  // A fifth of the guest is all-zero: every technique must elide those pages
  // to descriptors, and the wire byte total must decompose exactly into
  // full pages + descriptors (+ CPU state for pre-copy), i.e. every elided
  // page was charged descriptor bytes, not a 4 KiB payload.
  using core::Technique;
  for (Technique technique :
       {Technique::kPrecopy, Technique::kPostcopy, Technique::kAgile,
        Technique::kScatterGather}) {
    core::scenarios::SingleVmOptions opt;
    opt.technique = technique;
    opt.host_ram = 1_GiB;
    opt.vm_memory = 256_MiB;
    opt.zero_page_fraction = 0.2;
    core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    const MigrationMetrics& m = sc.migration->metrics();
    ASSERT_TRUE(m.completed) << core::technique_name(technique);
    EXPECT_GT(m.pages_zero_elided, 0u) << core::technique_name(technique);
    const std::uint64_t pages = sc.handle->machine->page_count();
    // ~20% of pages marked zero (hash-selected, so not exact).
    EXPECT_NEAR(static_cast<double>(m.pages_zero_elided),
                0.2 * static_cast<double>(pages),
                0.02 * static_cast<double>(pages))
        << core::technique_name(technique);
    if (technique == Technique::kPrecopy) {
      // Idle VM, one round: offered == full * wire size + descriptors
      // (elided pages included) * 16 B + the CPU state blob.
      MigrationConfig defaults;
      EXPECT_EQ(m.bytes_transferred,
                m.pages_sent_full * (kPageSize + defaults.page_header) +
                    m.pages_sent_descriptor * defaults.descriptor_bytes +
                    defaults.cpu_state_bytes);
      EXPECT_EQ(m.pages_sent_full + m.pages_sent_descriptor, pages);
      EXPECT_GE(m.pages_sent_descriptor, m.pages_zero_elided);
    }
  }
}

TEST(StreamGroup, ZeroFractionOffKeepsClassificationIdentical) {
  // Control: zero_page_fraction = 0 must not change a single metric relative
  // to the (golden-pinned) defaults — tracking stays off entirely.
  core::scenarios::SingleVmOptions opt;
  opt.host_ram = 1_GiB;
  opt.vm_memory = 256_MiB;
  opt.technique = core::Technique::kPrecopy;
  core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
  sc.prepare();
  sc.run_migration();
  const MigrationMetrics& m = sc.migration->metrics();
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.pages_zero_elided, 0u);
  EXPECT_EQ(m.compressed_bytes_saved, 0u);
  EXPECT_EQ(m.pages_sent_full, sc.handle->machine->page_count());
}

TEST(StreamGroup, MultiStreamMatchesSingleStreamByteTotals) {
  // Streams change *when* bytes move, never *how many*: the same migration
  // at 1 and 4 streams must offer identical wire totals and classifications,
  // and the 4-stream run must not be slower.
  auto run = [](std::uint32_t streams) {
    core::scenarios::SingleVmOptions opt;
    opt.technique = core::Technique::kPrecopy;
    opt.host_ram = 1_GiB;
    opt.vm_memory = 256_MiB;
    opt.num_streams = streams;
    opt.link_bits_per_sec = 10e9;
    opt.flow_max_bits_per_sec = 1e9;
    opt.send_window = 64_MiB;
    core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    return sc.migration->metrics();
  };
  const MigrationMetrics one = run(1);
  const MigrationMetrics four = run(4);
  ASSERT_TRUE(one.completed);
  ASSERT_TRUE(four.completed);
  EXPECT_EQ(one.bytes_transferred, four.bytes_transferred);
  EXPECT_EQ(one.pages_sent_full, four.pages_sent_full);
  EXPECT_EQ(one.pages_sent_descriptor, four.pages_sent_descriptor);
  EXPECT_LE(four.total_time(), one.total_time());
}

}  // namespace
}  // namespace agile::migration
