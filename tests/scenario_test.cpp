// The canned §V scenarios must assemble the right topology and respond to
// their scripts (ramp, migration scheduling) — these are what every bench
// binary trusts.
#include <gtest/gtest.h>

#include "core/scenarios.hpp"

namespace agile::core::scenarios {
namespace {

ConsolidationOptions mini_consolidation(Technique technique) {
  ConsolidationOptions opt;
  opt.technique = technique;
  opt.vm_count = 2;
  opt.host_ram = 1_GiB;
  opt.vm_memory = 384_MiB;
  opt.reservation = 192_MiB;
  opt.dataset = 256_MiB;
  opt.guest_os = 16_MiB;
  opt.initial_active = 32_MiB;
  opt.ramped_active = 224_MiB;
  return opt;
}

TEST(ConsolidationScenario, BuildsTopologyPerTechnique) {
  for (Technique t : {Technique::kPrecopy, Technique::kAgile}) {
    Consolidation sc = make_consolidation(mini_consolidation(t));
    EXPECT_EQ(sc.handles.size(), 2u);
    EXPECT_EQ(sc.loads.size(), 2u);
    EXPECT_EQ(sc.probes.size(), 2u);
    for (VmHandle* h : sc.handles) {
      EXPECT_TRUE(sc.bed->source()->has_vm(h->machine));
      if (t == Technique::kAgile) {
        EXPECT_NE(h->per_vm_swap, nullptr);
      } else {
        EXPECT_EQ(h->per_vm_swap, nullptr);
      }
    }
  }
}

TEST(ConsolidationScenario, LoadFillsReservations) {
  Consolidation sc = make_consolidation(mini_consolidation(Technique::kAgile));
  sc.load_all();
  for (VmHandle* h : sc.handles) {
    EXPECT_EQ(h->machine->memory().resident_pages(), pages_for(192_MiB));
    EXPECT_GT(h->machine->memory().swapped_pages(), 0u);
  }
}

TEST(ConsolidationScenario, RampWidensActiveSetsInOrder) {
  Consolidation sc = make_consolidation(mini_consolidation(Technique::kAgile));
  sc.load_all();
  sc.schedule_ramp(sec(5), sec(5));
  auto active = [&](std::size_t i) {
    return static_cast<workload::YcsbWorkload*>(sc.loads[i])->active_bytes();
  };
  sc.bed->cluster().run_for_seconds(6);
  EXPECT_EQ(active(0), 224_MiB);
  EXPECT_EQ(active(1), 32_MiB);  // not yet
  sc.bed->cluster().run_for_seconds(5);
  EXPECT_EQ(active(1), 224_MiB);
}

TEST(ConsolidationScenario, ScheduledMigrationFiresAndCompletes) {
  Consolidation sc = make_consolidation(mini_consolidation(Technique::kAgile));
  sc.load_all();
  sc.schedule_migration(sec(3));
  sc.bed->cluster().run_for_seconds(2);
  EXPECT_FALSE(sc.migration->started());
  sc.bed->cluster().run_for_seconds(120);
  EXPECT_TRUE(sc.migration->completed());
  EXPECT_TRUE(sc.bed->dest()->has_vm(sc.handles[0]->machine));
}

TEST(ConsolidationScenario, AverageThroughputAveragesProbes) {
  Consolidation sc = make_consolidation(mini_consolidation(Technique::kAgile));
  sc.load_all();
  sc.bed->cluster().run_for_seconds(10);
  metrics::TimeSeries avg = sc.average_throughput();
  ASSERT_GT(avg.size(), 5u);
  double expected = (sc.probes[0]->series().value_at(8.0) +
                     sc.probes[1]->series().value_at(8.0)) /
                    2.0;
  EXPECT_DOUBLE_EQ(avg.value_at(8.0), expected);
}

TEST(SingleVmScenario, IdleVmIsFullyTouched) {
  SingleVmOptions opt;
  opt.technique = Technique::kPrecopy;
  opt.host_ram = 512_MiB;
  opt.vm_memory = 768_MiB;
  opt.busy = false;
  opt.guest_os = 32_MiB;
  opt.free_margin = 64_MiB;
  SingleVm sc = make_single_vm(opt);
  sc.prepare();
  EXPECT_EQ(sc.handle->machine->memory().untouched_pages(), 0u);
  // Reservation capped by host RAM minus host OS.
  EXPECT_LE(sc.handle->machine->memory().reservation(), 512_MiB);
  EXPECT_EQ(sc.ycsb, nullptr);
}

TEST(SingleVmScenario, BusyVmRunsAClient) {
  SingleVmOptions opt;
  opt.technique = Technique::kAgile;
  opt.host_ram = 512_MiB;
  opt.vm_memory = 768_MiB;
  opt.busy = true;
  opt.guest_os = 32_MiB;
  opt.free_margin = 64_MiB;
  SingleVm sc = make_single_vm(opt);
  sc.prepare();
  ASSERT_NE(sc.ycsb, nullptr);
  EXPECT_GT(sc.ycsb->ops_total(), 0u);
  sc.run_migration(600);
  ASSERT_TRUE(sc.migration->completed());
  EXPECT_TRUE(sc.bed->dest()->has_vm(sc.handle->machine));
}

TEST(WssScenario, BuildsTrackedVm) {
  WssTrackingOptions opt;
  opt.host_ram = 4_GiB;
  opt.vm_memory = 1_GiB;
  opt.initial_reservation = 1_GiB;
  opt.dataset = 256_MiB;
  opt.guest_os = 32_MiB;
  WssTracking sc = make_wss_tracking(opt);
  sc.load();
  ASSERT_NE(sc.controller, nullptr);
  ASSERT_NE(sc.probe, nullptr);
  EXPECT_NE(sc.handle->per_vm_swap, nullptr);  // tracking needs per-VM iostat
  sc.controller->start();
  sc.bed->cluster().run_for_seconds(120);
  // Tracks down toward the ~288 MiB working set.
  EXPECT_LT(sc.controller->wss_estimate(), 600_MiB);
  EXPECT_GT(sc.controller->wss_estimate(), 200_MiB);
}

}  // namespace
}  // namespace agile::core::scenarios
