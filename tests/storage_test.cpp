#include <gtest/gtest.h>

#include "storage/device.hpp"

namespace agile::storage {
namespace {

SsdConfig small_ssd() {
  SsdConfig cfg;
  cfg.read_bytes_per_sec = 100e6;
  cfg.write_bytes_per_sec = 50e6;
  cfg.iops = 10000;
  cfg.base_read_latency = 100;
  cfg.base_write_latency = 50;
  return cfg;
}

TEST(Ssd, UncontendedReadLatencyNearBase) {
  SsdModel ssd(small_ssd());
  // 4 KiB at 10k IOPS: the IOPS cost (100 µs) dominates the bandwidth cost.
  SimTime lat = ssd.submit_read(kPageSize);
  EXPECT_GE(lat, 100);
  EXPECT_LE(lat, 300);
}

TEST(Ssd, LargeReadPaysBandwidthCost) {
  SsdModel ssd(small_ssd());
  SimTime lat = ssd.submit_read(100'000'000);  // 1 s at 100 MB/s
  EXPECT_NEAR(static_cast<double>(lat), 1e6, 1e4);
}

TEST(Ssd, WritesSlowerThanReads) {
  SsdModel ssd(small_ssd());
  SimTime r = ssd.submit_read(10_MiB);
  ssd.advance(sec(10));
  SimTime w = ssd.submit_write(10_MiB);
  EXPECT_GT(w, r);  // write bandwidth is half
}

TEST(Ssd, UtilizationAmplifiesNextQuantumLatency) {
  SsdModel ssd(small_ssd());
  SimTime idle = ssd.submit_read(kPageSize);
  ssd.advance(sec(1));
  // Load the read channel to ~80% utilization for one quantum.
  for (int i = 0; i < 8000; ++i) ssd.submit_read(kPageSize);
  ssd.advance(sec(1));
  EXPECT_NEAR(ssd.read_utilization(), 0.8, 0.01);
  SimTime busy = ssd.submit_read(kPageSize);
  // 100 µs cost stretched by 1/(1-0.8) = 5x.
  EXPECT_GT(busy, idle + 300);
}

TEST(Ssd, OverloadCarriesAcrossQuanta) {
  SsdModel ssd(small_ssd());
  // 2 s of work submitted into a 1 s quantum: 1 s carries over.
  for (int i = 0; i < 20000; ++i) ssd.submit_read(kPageSize);
  ssd.advance(sec(1));
  EXPECT_NEAR(ssd.read_backlog_seconds(), 1.0, 1e-6);
  SimTime lat = ssd.submit_read(kPageSize);
  EXPECT_GT(lat, sec(0.9));  // queued behind a second of backlog
  ssd.advance(sec(2));
  EXPECT_DOUBLE_EQ(ssd.read_backlog_seconds(), 0.0);
  ssd.advance(sec(1));
  EXPECT_LE(ssd.submit_read(kPageSize), 300);  // fully recovered
}

TEST(Ssd, WriteBacklogOnlyPartiallyDisturbsReads) {
  SsdModel ssd(small_ssd());
  // 3 s of write overload in one 1 s quantum: 2 s of write carry.
  for (int i = 0; i < 30000; ++i) ssd.submit_write(kPageSize);
  ssd.advance(sec(1));
  SimTime read_lat = ssd.submit_read(kPageSize);
  SimTime write_lat = ssd.submit_write(kPageSize);
  // Reads see only the interference fraction (0.2) of the write carry.
  EXPECT_LT(read_lat, write_lat / 2);
  EXPECT_GT(read_lat, sec(0.2) / 2);
}

TEST(Ssd, ChannelsAreIndependentUnderModestLoad) {
  SsdModel ssd(small_ssd());
  // Saturate writes mildly; reads should barely notice.
  for (int i = 0; i < 3000; ++i) ssd.submit_write(kPageSize);
  ssd.advance(sec(1));
  EXPECT_NEAR(ssd.write_utilization(), 0.3, 0.01);
  EXPECT_LE(ssd.submit_read(kPageSize), 400);
}

TEST(Ssd, IopsBoundVsBandwidthBound) {
  SsdModel ssd(small_ssd());
  // Per-op cost for 4 KiB: max(4096/100e6, 1/10000) = 100 µs (IOPS bound).
  ssd.submit_read(kPageSize);
  EXPECT_NEAR(ssd.read_backlog_seconds(), 1.0 / 10000, 1e-9);
  ssd.advance(sec(1));
  // Per-op cost for 1 MiB: 1 MiB / 100 MB/s ≈ 10.5 ms (bandwidth bound).
  ssd.submit_read(1_MiB);
  EXPECT_NEAR(ssd.read_backlog_seconds(), 1048576.0 / 100e6, 1e-9);
}

TEST(Ssd, StatsTrackTotalsAndWindows) {
  SsdModel ssd(small_ssd());
  ssd.submit_read(kPageSize);
  ssd.submit_write(2 * kPageSize);
  const DeviceStats& st = ssd.stats();
  EXPECT_EQ(st.reads, 1u);
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.bytes_read, kPageSize);
  EXPECT_EQ(st.bytes_written, 2 * kPageSize);
  EXPECT_EQ(st.window_bytes_read, kPageSize);
  ssd.mutable_stats().reset_window();
  EXPECT_EQ(ssd.stats().window_bytes_read, 0u);
  EXPECT_EQ(ssd.stats().bytes_read, kPageSize);  // totals survive
  ssd.submit_read(kPageSize);
  EXPECT_EQ(ssd.stats().window_reads, 1u);
  EXPECT_EQ(ssd.stats().reads, 2u);
}

TEST(NullDevice, InstantAndCounted) {
  NullDevice dev;
  EXPECT_EQ(dev.submit_read(1_GiB), 0);
  EXPECT_EQ(dev.submit_write(1_GiB), 0);
  EXPECT_EQ(dev.stats().bytes_read, 1_GiB);
  EXPECT_EQ(dev.stats().bytes_written, 1_GiB);
}

}  // namespace
}  // namespace agile::storage
