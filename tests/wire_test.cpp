#include <gtest/gtest.h>

#include <vector>

#include "migration/wire.hpp"

namespace agile::migration {
namespace {

struct Fixture {
  net::Network net;
  net::NodeId a, b;
  Fixture() : a(net.add_node("a")), b(net.add_node("b")) {}
};

TEST(WireStream, DeliversMessagesInOrder) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::vector<int> order;
  ws.send(1000, [&] { order.push_back(1); });
  ws.send(1000, [&] { order.push_back(2); });
  ws.send(1000, [&] { order.push_back(3); });
  fx.net.advance(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(ws.idle());
  EXPECT_EQ(ws.delivered_bytes(), 3000u);
}

TEST(WireStream, PartialDeliveryDefersCallback) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  bool delivered = false;
  // ~11.7 MB/100ms at 1 Gbps: a 20 MB message needs two quanta.
  ws.send(20'000'000, [&] { delivered = true; });
  fx.net.advance(msec(100));
  EXPECT_FALSE(delivered);
  EXPECT_GT(ws.backlog(), 0u);
  fx.net.advance(msec(100));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(ws.backlog(), 0u);
}

TEST(WireStream, LargeMessageDoesNotStarveLaterOnes) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::vector<int> order;
  ws.send(5'000'000, [&] { order.push_back(1); });
  ws.send(64, [&] { order.push_back(2); });
  fx.net.advance(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WireStream, CallbackMaySendMore) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) ws.send(100, next);
  };
  ws.send(100, next);
  for (int i = 0; i < 10; ++i) fx.net.advance(msec(100));
  EXPECT_EQ(chain, 5);
}

TEST(WireStream, NullCallbackIsFine) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  ws.send(1000, nullptr);
  fx.net.advance(msec(100));
  EXPECT_TRUE(ws.idle());
}

TEST(WireStream, QueuedMessagesCountTracksBacklog) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  for (int i = 0; i < 10; ++i) ws.send(1_MiB, nullptr);
  EXPECT_EQ(ws.queued_messages(), 10u);
  fx.net.advance(msec(100));  // ~11 of the 10 MiB fit in one quantum
  EXPECT_LT(ws.queued_messages(), 10u);
}

TEST(WireStream, DestructionClosesFlow) {
  Fixture fx;
  {
    WireStream ws(&fx.net, fx.a, fx.b);
    ws.send(1_MiB, nullptr);
    EXPECT_EQ(fx.net.open_flow_count(), 1u);
  }
  EXPECT_EQ(fx.net.open_flow_count(), 0u);
  fx.net.advance(msec(100));  // must not crash on the closed flow
}

TEST(WireStream, TwoStreamsShareTheLinkFairly) {
  Fixture fx;
  net::NodeId c = fx.net.add_node("c");
  WireStream w1(&fx.net, fx.a, fx.b);
  WireStream w2(&fx.net, fx.a, c);
  w1.send(100_MiB, nullptr);
  w2.send(100_MiB, nullptr);
  fx.net.advance(sec(1));
  double r = static_cast<double>(w1.delivered_bytes()) /
             static_cast<double>(w2.delivered_bytes());
  EXPECT_NEAR(r, 1.0, 0.01);
}

}  // namespace
}  // namespace agile::migration
