#include <gtest/gtest.h>

#include <vector>

#include "migration/wire.hpp"

namespace agile::migration {
namespace {

struct Fixture {
  net::Network net;
  net::NodeId a, b;
  Fixture() : a(net.add_node("a")), b(net.add_node("b")) {}
};

TEST(WireStream, DeliversMessagesInOrder) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::vector<int> order;
  ws.send(1000, [&] { order.push_back(1); });
  ws.send(1000, [&] { order.push_back(2); });
  ws.send(1000, [&] { order.push_back(3); });
  fx.net.advance(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(ws.idle());
  EXPECT_EQ(ws.delivered_bytes(), 3000u);
}

TEST(WireStream, PartialDeliveryDefersCallback) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  bool delivered = false;
  // ~11.7 MB/100ms at 1 Gbps: a 20 MB message needs two quanta.
  ws.send(20'000'000, [&] { delivered = true; });
  fx.net.advance(msec(100));
  EXPECT_FALSE(delivered);
  EXPECT_GT(ws.backlog(), 0u);
  fx.net.advance(msec(100));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(ws.backlog(), 0u);
}

TEST(WireStream, LargeMessageDoesNotStarveLaterOnes) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::vector<int> order;
  ws.send(5'000'000, [&] { order.push_back(1); });
  ws.send(64, [&] { order.push_back(2); });
  fx.net.advance(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(WireStream, CallbackMaySendMore) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) ws.send(100, next);
  };
  ws.send(100, next);
  for (int i = 0; i < 10; ++i) fx.net.advance(msec(100));
  EXPECT_EQ(chain, 5);
}

TEST(WireStream, NullCallbackIsFine) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  ws.send(1000, nullptr);
  fx.net.advance(msec(100));
  EXPECT_TRUE(ws.idle());
}

TEST(WireStream, QueuedMessagesCountTracksBacklog) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  for (int i = 0; i < 10; ++i) ws.send(1_MiB, nullptr);
  EXPECT_EQ(ws.queued_messages(), 10u);
  fx.net.advance(msec(100));  // ~11 of the 10 MiB fit in one quantum
  EXPECT_LT(ws.queued_messages(), 10u);
}

TEST(WireStream, BatchDeliversChunksInOrder) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::uint64_t items = 0;
  int calls = 0;
  ws.send_batch(100, 1000, [&](std::uint64_t k) {
    items += k;
    ++calls;
  });
  EXPECT_EQ(ws.queued_messages(), 1u);  // one queue entry for the whole batch
  fx.net.advance(msec(100));
  EXPECT_EQ(items, 100u);
  EXPECT_EQ(calls, 1);  // everything fit in one quantum -> one chunk
  EXPECT_TRUE(ws.idle());
  EXPECT_EQ(ws.delivered_bytes(), 100'000u);
}

TEST(WireStream, BatchChunksMatchPerItemSends) {
  // A batch's chunk callbacks must fire at exactly the quanta where the same
  // items sent individually would have completed.
  Fixture batch_fx, single_fx;
  WireStream batch_ws(&batch_fx.net, batch_fx.a, batch_fx.b);
  WireStream single_ws(&single_fx.net, single_fx.a, single_fx.b);
  constexpr std::uint64_t kItems = 40;
  constexpr Bytes kItemBytes = 1'000'000;  // 40 MB total: several quanta

  std::vector<std::uint64_t> batch_progress, single_progress;
  std::uint64_t batch_total = 0;
  batch_ws.send_batch(kItems, kItemBytes,
                      [&](std::uint64_t k) { batch_total += k; });
  std::uint64_t single_total = 0;
  for (std::uint64_t i = 0; i < kItems; ++i) {
    single_ws.send(kItemBytes, [&] { ++single_total; });
  }
  for (int q = 0; q < 10; ++q) {
    batch_fx.net.advance(msec(100));
    single_fx.net.advance(msec(100));
    batch_progress.push_back(batch_total);
    single_progress.push_back(single_total);
  }
  EXPECT_EQ(batch_progress, single_progress);
  EXPECT_EQ(batch_total, kItems);
}

TEST(WireStream, BatchPartialItemCarriesAcrossQuanta) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  // Item size above one quantum's drain (~11.7 MB at 1 Gbps/100ms): each
  // item needs two quanta, so chunks alternate 0-advance/1-advance.
  std::uint64_t items = 0;
  ws.send_batch(3, 15'000'000, [&](std::uint64_t k) { items += k; });
  fx.net.advance(msec(100));
  EXPECT_EQ(items, 0u);
  fx.net.advance(msec(100));
  EXPECT_EQ(items, 1u);
  fx.net.advance(msec(200));
  EXPECT_EQ(items, 3u);
  EXPECT_TRUE(ws.idle());
}

TEST(WireStream, BatchCallbackMaySendMore) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::uint64_t followups = 0;
  ws.send_batch(5, 100, [&](std::uint64_t k) {
    // Reentrant send from inside a chunk callback must not invalidate the
    // in-flight queue entry.
    for (std::uint64_t i = 0; i < k; ++i) {
      ws.send(50, [&](/*done*/) { ++followups; });
    }
  });
  for (int i = 0; i < 5; ++i) fx.net.advance(msec(100));
  EXPECT_EQ(followups, 5u);
  EXPECT_TRUE(ws.idle());
}

TEST(WireStream, BatchNullCallbackIsFine) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  ws.send_batch(1000, 16, nullptr);
  fx.net.advance(msec(100));
  EXPECT_TRUE(ws.idle());
  EXPECT_EQ(ws.delivered_bytes(), 16'000u);
}

TEST(WireStream, MixedBatchAndSingleKeepFifoOrder) {
  Fixture fx;
  WireStream ws(&fx.net, fx.a, fx.b);
  std::vector<int> order;
  ws.send(1000, [&] { order.push_back(1); });
  ws.send_batch(10, 100, [&](std::uint64_t) { order.push_back(2); });
  ws.send(1000, [&] { order.push_back(3); });
  fx.net.advance(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(WireStream, DestructionClosesFlow) {
  Fixture fx;
  {
    WireStream ws(&fx.net, fx.a, fx.b);
    ws.send(1_MiB, nullptr);
    EXPECT_EQ(fx.net.open_flow_count(), 1u);
  }
  EXPECT_EQ(fx.net.open_flow_count(), 0u);
  fx.net.advance(msec(100));  // must not crash on the closed flow
}

TEST(WireStream, TwoStreamsShareTheLinkFairly) {
  Fixture fx;
  net::NodeId c = fx.net.add_node("c");
  WireStream w1(&fx.net, fx.a, fx.b);
  WireStream w2(&fx.net, fx.a, c);
  w1.send(100_MiB, nullptr);
  w2.send(100_MiB, nullptr);
  fx.net.advance(sec(1));
  double r = static_cast<double>(w1.delivered_bytes()) /
             static_cast<double>(w2.delivered_bytes());
  EXPECT_NEAR(r, 1.0, 0.01);
}

}  // namespace
}  // namespace agile::migration
