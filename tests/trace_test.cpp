#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/scenarios.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace agile {
namespace {

std::int64_t g_fake_now = 0;
std::int64_t fake_now() { return g_fake_now; }

/// Installs a controllable clock for the recorder unit tests and detaches it
/// on exit so scenario-driven tests get the cluster's clock again.
class ScopedFakeClock {
 public:
  ScopedFakeClock() {
    g_fake_now = 0;
    trace::set_time_source(&fake_now);
  }
  ~ScopedFakeClock() { trace::set_time_source(nullptr); }
};

TEST(TraceRecorder, RecordsAllEventKinds) {
  ScopedFakeClock clock;
  trace::TraceRecorder rec;
  g_fake_now = 10;
  rec.begin_span("engine", "round", 1, 2.0);
  g_fake_now = 30;
  rec.instant("engine", "switchover", 1);
  g_fake_now = 40;
  rec.counter("net", "backlog", 0, 512);
  g_fake_now = 50;
  rec.end_span("engine", "round", 1);

  ASSERT_EQ(rec.event_count(), 4u);
  const auto& ev = rec.events();
  EXPECT_EQ(ev[0].kind, trace::EventKind::kBegin);
  EXPECT_EQ(ev[0].ts, 10);
  EXPECT_DOUBLE_EQ(ev[0].value, 2.0);
  EXPECT_EQ(ev[1].kind, trace::EventKind::kInstant);
  EXPECT_EQ(ev[2].kind, trace::EventKind::kCounter);
  EXPECT_DOUBLE_EQ(ev[2].value, 512);
  EXPECT_EQ(ev[3].kind, trace::EventKind::kEnd);
  EXPECT_EQ(ev[3].ts, 50);
}

TEST(TraceRecorder, MacrosAreNoOpsWithoutARecorder) {
  ASSERT_EQ(trace::recorder(), nullptr);
  EXPECT_FALSE(trace::enabled());
  // None of these may crash or allocate a recorder.
  AGILE_TRACE_SPAN_BEGIN("x", "y", 0);
  AGILE_TRACE_SPAN_END("x", "y", 0);
  AGILE_TRACE_INSTANT("x", "y", 0);
  AGILE_TRACE_COUNTER("x", "y", 0, 1);
  { AGILE_TRACE_SPAN("x", "scoped", 0); }
  EXPECT_FALSE(trace::enabled());
}

TEST(TraceSession, InstallsAndRestoresThreadRecorder) {
  ASSERT_EQ(trace::recorder(), nullptr);
  {
    trace::TraceSession outer;
    EXPECT_EQ(trace::recorder(), &outer.recorder());
    {
      trace::TraceSession inner;
      EXPECT_EQ(trace::recorder(), &inner.recorder());
      AGILE_TRACE_INSTANT("t", "inner_only", 0);
      EXPECT_EQ(inner.recorder().event_count(), 1u);
      EXPECT_EQ(outer.recorder().event_count(), 0u);
    }
    EXPECT_EQ(trace::recorder(), &outer.recorder());
  }
  EXPECT_EQ(trace::recorder(), nullptr);
}

TEST(TraceSession, ScopedSpanEmitsBalancedPair) {
  trace::TraceSession session;
  {
    AGILE_TRACE_SPAN("engine", "phase", 3, 7.0);
    AGILE_TRACE_INSTANT("engine", "tick", 3);
  }
  const auto& ev = session.recorder().events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].kind, trace::EventKind::kBegin);
  EXPECT_EQ(ev[1].kind, trace::EventKind::kInstant);
  EXPECT_EQ(ev[2].kind, trace::EventKind::kEnd);
  EXPECT_STREQ(ev[2].name, "phase");
}

TEST(TraceRecorder, ChromeJsonShapeAndEscaping) {
  ScopedFakeClock clock;
  trace::TraceRecorder rec;
  rec.set_entity_name(0, "cluster");
  rec.set_entity_name(1, "vm\"0\"\n");  // hostile name must be escaped
  g_fake_now = 5;
  rec.begin_span("engine", "round", 1);
  g_fake_now = 9;
  rec.end_span("engine", "round", 1);
  rec.counter("net", "backlog", 0, 1.5);
  rec.instant("engine", "flip", 1, 2);

  std::string json = rec.to_chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("vm\\\"0\\\"\\n"), std::string::npos);
  // No raw newline may survive inside a string (the export is one line per
  // event; a raw newline would corrupt the JSON).
  EXPECT_EQ(json.find("vm\"0\""), std::string::npos);
}

TEST(TraceRecorder, SummaryAggregatesSpansAndCounters) {
  ScopedFakeClock clock;
  trace::TraceRecorder rec;
  g_fake_now = 0;
  rec.begin_span("engine", "round", 1);
  g_fake_now = 1000;
  rec.end_span("engine", "round", 1);
  g_fake_now = 1000;
  rec.begin_span("engine", "round", 1);
  g_fake_now = 4000;
  rec.end_span("engine", "round", 1);
  rec.counter("net", "backlog", 0, 10);
  rec.counter("net", "backlog", 0, 30);
  rec.instant("engine", "flip", 1);

  std::string s = rec.summary();
  EXPECT_NE(s.find("engine/round"), std::string::npos);
  EXPECT_NE(s.find("net/backlog"), std::string::npos);
  EXPECT_NE(s.find("engine/flip"), std::string::npos);
  EXPECT_EQ(s.find("unmatched"), std::string::npos);
}

TEST(TraceRecorder, SummaryReportsUnbalancedSpans) {
  trace::TraceRecorder rec;
  rec.begin_span("engine", "never_closed", 1);
  rec.end_span("engine", "never_opened", 2);
  std::string s = rec.summary();
  EXPECT_NE(s.find("unmatched"), std::string::npos);
}

TEST(TraceSampling, FirstAndEveryPeriodth) {
  EXPECT_TRUE(trace::sample_counter(1));
  EXPECT_FALSE(trace::sample_counter(2));
  EXPECT_FALSE(trace::sample_counter(63));
  EXPECT_TRUE(trace::sample_counter(64));
  EXPECT_FALSE(trace::sample_counter(65));
  EXPECT_TRUE(trace::sample_counter(128));
  EXPECT_TRUE(trace::sample_counter(10, 5));
}

// --- end-to-end determinism -----------------------------------------------

std::string traced_single_vm_json(core::Technique technique) {
  core::scenarios::SingleVmOptions opt;
  opt.technique = technique;
  // Small but still pressured: the host keeps 500 MiB for its OS, so a
  // 640 MiB host gives the 768 MiB VM a 140 MiB reservation and the run
  // exercises eviction, swap and demand paths without taking seconds.
  opt.host_ram = 640_MiB;
  opt.vm_memory = 768_MiB;
  opt.busy = true;
  opt.guest_os = 32_MiB;
  opt.free_margin = 64_MiB;
  opt.trace = true;
  core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
  sc.prepare();
  sc.run_migration();
  EXPECT_TRUE(sc.migration->completed());
  return sc.session->recorder().to_chrome_json();
}

/// Reference trace, computed once per process (and per audit mode — the
/// audit rerun of this binary recomputes it with AGILE_AUDIT=1).
const std::string& reference_agile_json() {
  static const std::string json =
      traced_single_vm_json(core::Technique::kAgile);
  return json;
}

// The trace is a pure function of the scenario: rerunning the same seed must
// reproduce the export byte for byte. This is what makes trace diffs
// meaningful — any byte difference is a behavior change, not noise.
TEST(TraceDeterminism, RerunIsByteIdentical) {
  std::string rerun = traced_single_vm_json(core::Technique::kAgile);
  ASSERT_FALSE(rerun.empty());
  EXPECT_EQ(reference_agile_json(), rerun);
}

// Recorders are thread-local: a simulation traced on a pool worker (as
// AGILE_TRACE does under AGILE_BENCH_JOBS>1) must produce the same bytes as
// one traced on the main thread, and concurrent traced runs must not bleed
// into each other.
TEST(TraceDeterminism, IdenticalAcrossWorkerThreads) {
  util::ThreadPool pool(2);
  auto a = pool.submit([] {
    return traced_single_vm_json(core::Technique::kAgile);
  });
  auto b = pool.submit([] {
    return traced_single_vm_json(core::Technique::kScatterGather);
  });
  EXPECT_EQ(a.get(), reference_agile_json());
  // The concurrent scatter-gather run records its own distinct trace.
  std::string sg = b.get();
  EXPECT_NE(sg, reference_agile_json());
  EXPECT_NE(sg.find("scatter"), std::string::npos);
}

// Deep audits are observation-only: enabling them must not move a single
// event. (The ctest registration also reruns this whole binary with
// AGILE_AUDIT=1 to cover compiled-in AGILE_DCHECK paths.)
TEST(TraceDeterminism, AuditModeDoesNotChangeTheTrace) {
  bool was_enabled = audit::enabled();
  audit::set_enabled_for_test(!was_enabled);
  std::string flipped = traced_single_vm_json(core::Technique::kAgile);
  audit::set_enabled_for_test(was_enabled);
  EXPECT_EQ(reference_agile_json(), flipped);
}

// Golden-file style anchor on the components present: the acceptance bar is
// spans/counters from at least the engine, wss, wire/net and memory layers.
TEST(TraceDeterminism, TraceCoversAllInstrumentedLayers) {
  const std::string& json = reference_agile_json();
  for (const char* component :
       {"\"migration\"", "\"wire\"", "\"net\"", "\"mem\"", "\"vmd\""}) {
    EXPECT_NE(json.find(component), std::string::npos) << component;
  }
}

}  // namespace
}  // namespace agile
