#include <gtest/gtest.h>

#include "core/fleet_rebalancer.hpp"
#include "core/scenarios.hpp"

namespace agile::core {
namespace {

// --- pure round planner ----------------------------------------------------

FleetRebalancerConfig planner_config() {
  FleetRebalancerConfig cfg;
  cfg.imbalance_threshold = 0.10;
  cfg.max_moves_per_round = 4;
  return cfg;
}

TEST(RebalancePlanner, ImbalanceMovesSmallestAdmissibleVmFirst) {
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 8_GiB, 0},
                                           {"h1", 10_GiB, 2_GiB, 0}};
  std::vector<RebalanceVmState> vms = {{"big", 0, 3_GiB, true},
                                       {"small", 0, 1_GiB, true}};
  std::vector<RebalanceProposal> p =
      plan_rebalance_round(hosts, vms, planner_config(), 0.75);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].vm, 1u);  // smallest VM narrows the peak first
  EXPECT_EQ(p[0].dest, 1u);
  EXPECT_EQ(p[0].partner_vm, kNoVm);
  EXPECT_EQ(p[1].vm, 0u);  // then the big one, once the gap persists
  EXPECT_EQ(p[1].dest, 1u);
}

TEST(RebalancePlanner, BalancedFleetProposesNothing) {
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 5_GiB, 0},
                                           {"h1", 10_GiB, 45 * 100_MiB, 0}};
  std::vector<RebalanceVmState> vms = {{"vm", 0, 1_GiB, true}};
  EXPECT_TRUE(
      plan_rebalance_round(hosts, vms, planner_config(), 0.75).empty());
}

TEST(RebalancePlanner, BudgetBoundsTheBatch) {
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 8_GiB, 0},
                                           {"h1", 10_GiB, 1_GiB, 0}};
  std::vector<RebalanceVmState> vms = {{"a", 0, 1_GiB, true},
                                       {"b", 0, 1_GiB, true},
                                       {"c", 0, 1_GiB, true}};
  FleetRebalancerConfig cfg = planner_config();
  cfg.max_moves_per_round = 1;
  EXPECT_EQ(plan_rebalance_round(hosts, vms, cfg, 0.75).size(), 1u);
}

TEST(RebalancePlanner, ImmovableVmsNeverMove) {
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 9_GiB, 0},
                                           {"h1", 10_GiB, 1_GiB, 0}};
  std::vector<RebalanceVmState> vms = {{"inflight", 0, 2_GiB, false},
                                       {"hungry", 0, 4_GiB, false}};
  EXPECT_TRUE(
      plan_rebalance_round(hosts, vms, planner_config(), 0.75).empty());
}

TEST(RebalancePlanner, DestinationSwapWhenNoDirectMoveIsAdmissible) {
  // The coolest host already sits near the low watermark (7.5 GiB limit), so
  // the source's 2 GiB VM cannot move directly; swapping it against the
  // destination's 1664 MiB VM shifts only the 384 MiB difference.
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 9_GiB, 0},
                                           {"h1", 10_GiB, 7_GiB, 0}};
  std::vector<RebalanceVmState> vms = {{"heavy", 0, 2_GiB, true},
                                       {"light", 1, 1664_MiB, true}};
  std::vector<RebalanceProposal> p =
      plan_rebalance_round(hosts, vms, planner_config(), 0.75);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].vm, 0u);
  EXPECT_EQ(p[0].dest, 1u);
  EXPECT_EQ(p[0].partner_vm, 1u);
}

TEST(RebalancePlanner, SwapNeedsBudgetForBothHalves) {
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 9_GiB, 0},
                                           {"h1", 10_GiB, 7_GiB, 0}};
  std::vector<RebalanceVmState> vms = {{"heavy", 0, 2_GiB, true},
                                       {"light", 1, 1664_MiB, true}};
  FleetRebalancerConfig cfg = planner_config();
  cfg.max_moves_per_round = 1;  // a swap costs two launches
  EXPECT_TRUE(plan_rebalance_round(hosts, vms, cfg, 0.75).empty());
  cfg.enable_swaps = false;
  cfg.max_moves_per_round = 4;
  EXPECT_TRUE(plan_rebalance_round(hosts, vms, cfg, 0.75).empty());
}

TEST(RebalancePlanner, RackAwarePrefersTheLocalDestination) {
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 8_GiB, 0},
                                           {"h1", 10_GiB, 4_GiB, 0},
                                           {"h2", 10_GiB, 2_GiB, 1}};
  std::vector<RebalanceVmState> vms = {{"vm", 0, 1_GiB, true}};
  FleetRebalancerConfig cfg = planner_config();
  cfg.rack_aware = true;
  std::vector<RebalanceProposal> p =
      plan_rebalance_round(hosts, vms, cfg, 0.75);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].dest, 1u);  // same rack, though h2 is globally coolest
  cfg.rack_aware = false;
  p = plan_rebalance_round(hosts, vms, cfg, 0.75);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].dest, 2u);
}

TEST(RebalancePlanner, RackAwareFallsBackAcrossRacks) {
  // The only same-rack neighbor cannot admit the VM; the move crosses racks
  // rather than being dropped.
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 8_GiB, 0},
                                           {"h1", 10_GiB, 7_GiB, 0},
                                           {"h2", 10_GiB, 2_GiB, 1}};
  std::vector<RebalanceVmState> vms = {{"vm", 0, 1_GiB, true}};
  FleetRebalancerConfig cfg = planner_config();
  cfg.rack_aware = true;
  std::vector<RebalanceProposal> p =
      plan_rebalance_round(hosts, vms, cfg, 0.75);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].dest, 2u);
}

TEST(RebalancePlanner, NeverOvercommitsADestinationWithinOneRound) {
  // Three 1 GiB VMs could all "fit" h1 as judged from the starting
  // snapshot, but applying each proposal must reserve its WSS so the batch
  // stops at the low watermark (7.5 GiB).
  std::vector<RebalanceHostState> hosts = {{"h0", 10_GiB, 9_GiB, 0},
                                           {"h1", 10_GiB, 6_GiB, 0}};
  std::vector<RebalanceVmState> vms = {{"a", 0, 1_GiB, true},
                                       {"b", 0, 1_GiB, true},
                                       {"c", 0, 1_GiB, true}};
  std::vector<RebalanceProposal> p =
      plan_rebalance_round(hosts, vms, planner_config(), 0.75);
  Bytes dest_committed = 6_GiB;
  for (const RebalanceProposal& prop : p) {
    ASSERT_EQ(prop.partner_vm, kNoVm);
    dest_committed += vms[prop.vm].wss;
  }
  EXPECT_LE(static_cast<double>(dest_committed), 0.75 * 10.0 * 1024 * 1024 * 1024);
}

// --- execution through the orchestrator ------------------------------------

TEST(FleetRebalancer, LaunchRebalanceObeysThePerLinkCap) {
  scenarios::FleetOptions opt;
  opt.host_count = 3;
  opt.vm_count = 4;
  opt.per_link_cap = 1;
  scenarios::Fleet fleet = scenarios::make_fleet(opt);
  fleet.load_all();
  fleet.orchestrator->start();
  fleet.bed->cluster().run_for_seconds(5);
  // Two tracked VMs on host0; push both toward host1 on the same link. The
  // second launch must be refused by the in-flight cap, not queued.
  EXPECT_TRUE(fleet.orchestrator->launch_rebalance(fleet.handles[0],
                                                   fleet.bed->host_at(1)));
  EXPECT_FALSE(fleet.orchestrator->launch_rebalance(fleet.handles[1],
                                                    fleet.bed->host_at(1)));
  // A different link is unaffected.
  EXPECT_TRUE(fleet.orchestrator->launch_rebalance(fleet.handles[1],
                                                   fleet.bed->host_at(2)));
  // Re-launching an in-flight VM is refused too.
  EXPECT_FALSE(fleet.orchestrator->launch_rebalance(fleet.handles[0],
                                                    fleet.bed->host_at(2)));
  fleet.orchestrator->stop();
}

TEST(FleetRebalancer, SpreadsAPerRackHotspotFleet) {
  // Miniature of the fleet_topology bench: VMs spread two-per-host on a
  // 2-rack leaf-spine fabric, one hotspot VM per rack. The hot VMs pin their
  // estimates at the reservation cap (immovable); the rebalancer must move
  // cold neighbors off the hot hosts without any watermark decision firing.
  scenarios::FleetOptions opt;
  opt.host_count = 4;
  opt.vm_count = 8;
  opt.racks = 2;
  opt.spread_initial = true;
  opt.hot_per_rack = true;
  opt.hot_vms = 2;
  opt.hot_at = sec(90);
  opt.hot_active = 640_MiB;
  opt.source_ram = 2176_MiB;
  opt.dest_ram = 2176_MiB;
  opt.ycsb_concurrency = 2;
  opt.rack_aware_placement = true;
  opt.rebalance = true;
  opt.rebalancer_config.rack_aware = true;
  scenarios::Fleet fleet = scenarios::make_fleet(opt);
  ASSERT_NE(fleet.rebalancer, nullptr);
  fleet.load_all();
  fleet.orchestrator->start();
  fleet.rebalancer->start();
  fleet.bed->cluster().run_for_seconds(240);
  fleet.rebalancer->stop();
  fleet.orchestrator->stop();

  EXPECT_TRUE(fleet.orchestrator->decisions().empty())
      << "host RAM is sized so the orchestrator never fires";
  EXPECT_GT(fleet.rebalancer->rounds().size(), 0u);
  EXPECT_GT(fleet.rebalancer->moves_launched(), 0u);
  // Every recorded move is a real launched migration.
  std::size_t audited = 0;
  for (const RebalanceRound& r : fleet.rebalancer->rounds()) {
    audited += r.moves.size();
  }
  EXPECT_EQ(audited, fleet.rebalancer->moves_launched());
  EXPECT_EQ(fleet.orchestrator->migrations_launched(), audited);
}

}  // namespace
}  // namespace agile::core
