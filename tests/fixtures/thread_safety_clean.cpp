// Compiled by tools/check_thread_safety.sh (and nothing else) under
// clang -Wthread-safety with the diagnostics promoted to errors: canonical
// *correct* usage of every annotated primitive in util/thread_annotations.hpp.
// It must stay warning-free — it is the positive control next to
// thread_safety_violation.cpp, and it instantiates the annotated header-only
// templates (ThreadPool::submit, the bench run cache) so their bodies are
// analyzed too.
//
// Not part of any CMake target: the default (GCC) build never sees it.
#include "run_cache.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace {

struct Guarded {
  agile::util::Mutex mu;
  agile::util::CondVar cv;
  int value AGILE_GUARDED_BY(mu) = 0;

  void set(int v) AGILE_EXCLUDES(mu) {
    agile::util::MutexLock lock(mu);
    value = v;
    cv.notify_one();
  }

  int wait_nonzero() AGILE_EXCLUDES(mu) {
    agile::util::MutexLock lock(mu);
    while (value == 0) cv.wait(mu);
    return value;
  }

  int read_locked() const AGILE_REQUIRES(mu) { return value; }

  void manual_pair() AGILE_EXCLUDES(mu) {
    mu.lock();
    value += 1;
    mu.unlock();
  }
};

int fixture_guarded() {
  Guarded g;
  g.set(1);
  g.manual_pair();
  int got = g.wait_nonzero();
  {
    agile::util::MutexLock lock(g.mu);
    got += g.read_locked();
  }
  return got;
}

int fixture_pool() {
  agile::util::ThreadPool pool(1);
  return pool.submit([] { return 7; }).get();
}

agile::bench::CachedRun fixture_run_cache() {
  return agile::bench::cached_run("thread_safety_fixture",
                                  [] { return agile::bench::CachedRun{}; });
}

}  // namespace

int thread_safety_clean_fixture() {
  return fixture_guarded() + fixture_pool() +
         static_cast<int>(fixture_run_cache().avg_perf);
}
