// Compile-FAIL fixture for tools/check_thread_safety.sh: reads and writes a
// guarded member without holding its mutex. The script asserts that clang
// rejects this file *with a thread-safety diagnostic* — proving the
// MutexLock/AGILE_GUARDED_BY wrappers actually arm the analysis rather than
// expanding to accepted-but-inert attributes.
//
// Not part of any CMake target: the default (GCC) build never sees it.
#include "util/thread_annotations.hpp"

namespace {

struct Guarded {
  agile::util::Mutex mu;
  int value AGILE_GUARDED_BY(mu) = 0;

  // BAD: no MutexLock, no AGILE_REQUIRES — the analysis must reject both
  // the read and the write.
  int read_unguarded() const { return value; }
  void write_unguarded(int v) { value = v; }
};

}  // namespace

int thread_safety_violation_fixture() {
  Guarded g;
  g.write_unguarded(3);
  return g.read_unguarded();
}
