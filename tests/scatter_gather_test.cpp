// Scatter-gather migration: the fast-deprovisioning technique built on the
// same portable per-VM swap device as Agile migration.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "migration/scatter_gather.hpp"
#include "workload/ycsb.hpp"

namespace agile::core {
namespace {

struct Bed {
  TestbedConfig cfg;
  std::unique_ptr<Testbed> bed;
  VmHandle* handle = nullptr;
  workload::YcsbWorkload* ycsb = nullptr;

  explicit Bed(bool busy, std::uint64_t seed = 42) {
    cfg.cluster.seed = seed;
    cfg.source.ram = 1_GiB;
    cfg.source.host_os_bytes = 32_MiB;
    cfg.dest = cfg.source;
    cfg.dest.name = "dest";
    cfg.vmd_server_capacity = 2_GiB;
    bed = std::make_unique<Testbed>(cfg);
    VmSpec spec;
    spec.name = "vm";
    spec.memory = 256_MiB;
    spec.reservation = 128_MiB;
    spec.swap = SwapBinding::kPerVmDevice;
    handle = &bed->create_vm(spec);
    if (busy) {
      workload::YcsbConfig ycfg;
      ycfg.dataset_bytes = 200_MiB;
      ycfg.guest_os_bytes = 16_MiB;
      ycfg.active_bytes = 64_MiB;
      ycfg.read_fraction = 0.8;
      auto load = std::make_unique<workload::YcsbWorkload>(
          handle->machine, &bed->cluster().network(), bed->client_node(), ycfg,
          bed->make_rng("y"));
      ycsb = load.get();
      bed->attach_workload(*handle, std::move(load));
      ycsb->load(0);
    } else {
      handle->machine->memory().prefill(handle->machine->page_count(), 0);
    }
  }

  migration::ScatterGatherMigration* run(double limit_s = 600) {
    auto mig = bed->make_migration(Technique::kScatterGather, *handle);
    auto* sg = static_cast<migration::ScatterGatherMigration*>(mig.get());
    migration_ = std::move(mig);
    migration_->start();
    double deadline = bed->cluster().now_seconds() + limit_s;
    while (!migration_->completed() && bed->cluster().now_seconds() < deadline) {
      bed->cluster().run_for_seconds(1);
    }
    return sg;
  }

  std::unique_ptr<migration::MigrationManager> migration_;
};

TEST(ScatterGather, IdleVmDeprovisionsAndStaysConsistent) {
  Bed bed(/*busy=*/false);
  auto* sg = bed.run();
  ASSERT_TRUE(bed.migration_->completed());
  EXPECT_GE(sg->scatter_complete_time(), 0);
  // Source fully released.
  EXPECT_EQ(bed.migration_->source_memory()->resident_pages(), 0u);
  EXPECT_EQ(bed.migration_->source_memory()->swapped_pages(), 0u);
  // Destination resolved every page.
  EXPECT_EQ(bed.handle->machine->memory().remote_pages(), 0u);
  bed.handle->machine->memory().check_consistency();
  bed.migration_->source_memory()->check_consistency();
  EXPECT_TRUE(bed.bed->dest()->has_vm(bed.handle->machine));
}

TEST(ScatterGather, ResidentSetTravelsThroughVmdNotTheWire) {
  Bed bed(/*busy=*/false);
  auto* sg = bed.run();
  ASSERT_TRUE(bed.migration_->completed());
  const migration::MigrationMetrics& m = bed.migration_->metrics();
  // Only descriptors + CPU state cross the direct channel...
  EXPECT_LT(m.bytes_transferred, 16_MiB);
  // ...while the 128 MiB resident set was scattered to the intermediaries.
  EXPECT_GT(m.bytes_scattered, 100_MiB);
  EXPECT_EQ(m.pages_sent_full, 0u);
  EXPECT_EQ(m.pages_sent_descriptor, bed.handle->machine->page_count());
  (void)sg;
}

TEST(ScatterGather, DeprovisionsFasterWhenDestinationIsCongested) {
  // The Cloud'14 motivation: the destination can't absorb pages at line rate
  // (here: its ingress is saturated by unrelated traffic), but the source
  // must be freed NOW. Agile's live round is throttled by the destination;
  // scatter-gather evicts through the intermediaries at full speed.
  auto deprovision_time = [](Technique technique) {
    Bed bed(/*busy=*/false);
    // Saturate dest ingress with a persistent bulk flow.
    net::Network& net = bed.bed->cluster().network();
    net::FlowId noise = net.open_flow(bed.bed->client_node(),
                                      bed.bed->dest()->node(), [](Bytes) {});
    auto feeder = bed.bed->cluster().simulation().schedule_periodic(
        msec(100), [&net, noise](SimTime) { net.offer(noise, 16_MiB); }, 0);
    auto mig = bed.bed->make_migration(technique, *bed.handle);
    mig->start();
    double deadline = bed.bed->cluster().now_seconds() + 600;
    while (!mig->completed() && bed.bed->cluster().now_seconds() < deadline) {
      bed.bed->cluster().run_for_seconds(1);
    }
    EXPECT_TRUE(mig->completed()) << core::technique_name(technique);
    feeder->cancel();
    return mig->metrics().total_time();
  };
  SimTime sg = deprovision_time(Technique::kScatterGather);
  SimTime agile = deprovision_time(Technique::kAgile);
  EXPECT_LT(sg, agile);
}

TEST(ScatterGather, GatherRefillsDestinationMemory) {
  Bed bed(/*busy=*/false);
  auto* sg = bed.run();
  ASSERT_TRUE(bed.migration_->completed());
  EXPECT_GT(sg->pages_gathered(), 0u);
  // Gather respects the destination reservation.
  EXPECT_LE(bed.handle->machine->memory().resident_pages(),
            bed.handle->machine->memory().reservation_pages());
}

TEST(ScatterGather, BusyVmKeepsWorkingThroughMigration) {
  Bed bed(/*busy=*/true);
  bed.bed->cluster().run_for_seconds(3);
  std::uint64_t before = bed.ycsb->ops_total();
  bed.run();
  ASSERT_TRUE(bed.migration_->completed());
  EXPECT_GT(bed.ycsb->ops_total(), before);
  // And keeps working afterwards (pages reachable in the VMD).
  std::uint64_t after = bed.ycsb->ops_total();
  bed.bed->cluster().run_for_seconds(5);
  EXPECT_GT(bed.ycsb->ops_total(), after);
  bed.handle->machine->memory().check_consistency();
}

TEST(ScatterGather, SlotAccountingBalances) {
  Bed bed(/*busy=*/true);
  bed.bed->cluster().run_for_seconds(3);
  bed.run();
  ASSERT_TRUE(bed.migration_->completed());
  bed.bed->cluster().run_for_seconds(5);
  std::uint64_t referenced = 0;
  const mem::GuestMemory& memory = bed.handle->machine->memory();
  for (PageIndex p = 0; p < memory.page_count(); ++p) {
    if (memory.swap_slot(p) != swap::kNoSlot) ++referenced;
  }
  EXPECT_EQ(bed.handle->per_vm_swap->used_slots(), referenced);
}

TEST(ScatterGather, Deterministic) {
  auto run_once = [](std::uint64_t seed) {
    Bed bed(/*busy=*/true, seed);
    bed.bed->cluster().run_for_seconds(3);
    bed.run();
    return std::tuple(bed.migration_->metrics().total_time(),
                      bed.migration_->metrics().bytes_scattered,
                      bed.migration_->metrics().pages_demand_served);
  };
  EXPECT_EQ(run_once(3), run_once(3));
}

}  // namespace
}  // namespace agile::core
