// Parallel sweep execution: result ordering, run-cache concurrency safety,
// and — the property everything rests on — bit-identical results whether a
// sweep point runs serially or on a pool worker.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "parallel_sweep.hpp"
#include "run_cache.hpp"
#include "util/thread_pool.hpp"

namespace agile::bench {
namespace {

// Point the bench cache at a test-local directory and neutralize the mode
// knobs before any test touches out_dir() (which latches on first use).
const bool g_env_ready = [] {
  ::setenv("AGILE_BENCH_OUT", "parallel_sweep_test_out", 1);
  ::unsetenv("AGILE_BENCH_FRESH");
  ::unsetenv("AGILE_BENCH_QUICK");
  ::unsetenv("AGILE_BENCH_JOBS");
  return true;
}();

TEST(ParallelSweep, MapPreservesInputOrder) {
  ASSERT_TRUE(g_env_ready);
  std::vector<int> points;
  for (int i = 0; i < 100; ++i) points.push_back(i);
  ParallelSweep sweep(4);
  EXPECT_EQ(sweep.jobs(), 4u);
  std::vector<int> doubled = sweep.map(points, [](const int& v) { return 2 * v; });
  ASSERT_EQ(doubled.size(), points.size());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(doubled[static_cast<std::size_t>(i)], 2 * i);
  }
}

TEST(ParallelSweep, SingleJobRunsInline) {
  ParallelSweep sweep(1);
  EXPECT_EQ(sweep.jobs(), 1u);
  std::vector<int> points = {1, 2, 3};
  std::vector<int> out = sweep.map(points, [](const int& v) { return v + 1; });
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TEST(RunCache, ConcurrentSameKeyComputesOnce) {
  std::remove(cache_path("test_once_key").c_str());  // drop prior-run state
  std::atomic<int> computed{0};
  auto compute = [&computed] {
    computed.fetch_add(1);
    CachedRun r;
    r.migration.bytes_transferred = 12345;
    r.avg_perf = 6.5;
    return r;
  };
  util::ThreadPool pool(4);
  std::vector<std::future<CachedRun>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(
        pool.submit([&] { return cached_run("test_once_key", compute); }));
  }
  for (auto& f : futures) {
    CachedRun r = f.get();
    EXPECT_EQ(r.migration.bytes_transferred, 12345u);
    EXPECT_DOUBLE_EQ(r.avg_perf, 6.5);
  }
  EXPECT_EQ(computed.load(), 1);
}

// Regression test: a compute that throws used to leave its exception-holding
// future in the in-flight table forever, so every later cached_run(key)
// rethrew the stale exception instead of retrying. The failed attempt must
// be retired from the table (found by lane-audit review of the run cache).
TEST(RunCache, FailedComputeRetriesInsteadOfCachingTheThrow) {
  std::remove(cache_path("test_retry_key").c_str());  // drop prior-run state
  int calls = 0;
  auto compute = [&calls] {
    if (++calls == 1) throw std::runtime_error("transient failure");
    CachedRun r;
    r.avg_perf = 42.0;
    return r;
  };
  EXPECT_THROW(cached_run("test_retry_key", compute), std::runtime_error);
  CachedRun r = cached_run("test_retry_key", compute);
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(r.avg_perf, 42.0);
  // And the successful retry is cached like any other result.
  CachedRun again = cached_run("test_retry_key", compute);
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(again.avg_perf, 42.0);
}

TEST(RunCache, RoundTripsThroughDisk) {
  CachedRun r;
  r.migration.start_time = 100;
  r.migration.switchover_time = 200;
  r.migration.end_time = 321;
  r.migration.downtime = 17;
  r.migration.bytes_transferred = 1_GiB;
  r.migration.pages_sent_full = 11;
  r.migration.pages_sent_descriptor = 22;
  r.migration.pages_demand_served = 33;
  r.migration.pages_swapped_in_at_source = 44;
  r.migration.duplicate_pages = 55;
  r.migration.precopy_rounds = 3;
  r.migration.completed = true;
  r.avg_perf = 123.456;
  store_cached("test_roundtrip", r);

  auto loaded = load_cached("test_roundtrip");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->migration.start_time, r.migration.start_time);
  EXPECT_EQ(loaded->migration.end_time, r.migration.end_time);
  EXPECT_EQ(loaded->migration.bytes_transferred, r.migration.bytes_transferred);
  EXPECT_EQ(loaded->migration.precopy_rounds, r.migration.precopy_rounds);
  EXPECT_EQ(loaded->migration.completed, r.migration.completed);
  EXPECT_DOUBLE_EQ(loaded->avg_perf, r.avg_perf);
}

TEST(RunCache, GarbledEntryIsAMissNotPartialMetrics) {
  std::FILE* f = std::fopen(cache_path("test_garbled").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "%s 100 200", kCacheFormatTag);  // truncated field list
  std::fclose(f);
  EXPECT_FALSE(load_cached("test_garbled").has_value());
}

TEST(RunCache, FormatVersionMismatchIsAMiss) {
  std::FILE* f = std::fopen(cache_path("test_oldformat").c_str(), "w");
  ASSERT_NE(f, nullptr);
  // The seed's untagged v1 layout: 13 numeric fields, no tag.
  std::fprintf(f, "0 1 2 3 4 5 6 7 8 9 1 1 2.5\n");
  std::fclose(f);
  EXPECT_FALSE(load_cached("test_oldformat").has_value());
}

// The tentpole determinism guarantee: a Fig-7 sweep point produces identical
// MigrationMetrics whether it runs serially or through ParallelSweep, since
// every task owns its Simulation and Rng streams.
TEST(ParallelSweep, SingleVmPointDeterministicAcrossScheduling) {
  auto run_point = [](const core::Technique& technique) {
    core::scenarios::SingleVmOptions opt;
    opt.technique = technique;
    opt.host_ram = 1_GiB;
    opt.vm_memory = 512_MiB;
    opt.busy = true;
    opt.guest_os = 32_MiB;
    opt.free_margin = 64_MiB;
    core::scenarios::SingleVm sc = core::scenarios::make_single_vm(opt);
    sc.prepare();
    sc.run_migration();
    return sc.migration->metrics();
  };

  std::vector<core::Technique> points = {core::Technique::kPrecopy,
                                         core::Technique::kPostcopy,
                                         core::Technique::kAgile};
  std::vector<migration::MigrationMetrics> serial;
  serial.reserve(points.size());
  for (const core::Technique& t : points) serial.push_back(run_point(t));

  ParallelSweep sweep(4);
  std::vector<migration::MigrationMetrics> pooled = sweep.map(points, run_point);

  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const migration::MigrationMetrics& a = serial[i];
    const migration::MigrationMetrics& b = pooled[i];
    EXPECT_EQ(a.start_time, b.start_time) << "point " << i;
    EXPECT_EQ(a.switchover_time, b.switchover_time) << "point " << i;
    EXPECT_EQ(a.end_time, b.end_time) << "point " << i;
    EXPECT_EQ(a.downtime, b.downtime) << "point " << i;
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << "point " << i;
    EXPECT_EQ(a.bytes_from_swap_device, b.bytes_from_swap_device) << "point " << i;
    EXPECT_EQ(a.bytes_scattered, b.bytes_scattered) << "point " << i;
    EXPECT_EQ(a.pages_sent_full, b.pages_sent_full) << "point " << i;
    EXPECT_EQ(a.pages_sent_descriptor, b.pages_sent_descriptor) << "point " << i;
    EXPECT_EQ(a.pages_demand_served, b.pages_demand_served) << "point " << i;
    EXPECT_EQ(a.pages_swap_faulted, b.pages_swap_faulted) << "point " << i;
    EXPECT_EQ(a.pages_swapped_in_at_source, b.pages_swapped_in_at_source)
        << "point " << i;
    EXPECT_EQ(a.duplicate_pages, b.duplicate_pages) << "point " << i;
    EXPECT_EQ(a.precopy_rounds, b.precopy_rounds) << "point " << i;
    EXPECT_EQ(a.completed, b.completed) << "point " << i;
  }
}

// A cache store that cannot open its file must warn on stderr — the result
// silently not being cached is acceptable, the silence is not (see the
// matching stats-export warning test in stats_test.cpp).
TEST(RunCache, StoreFailureWarnsInsteadOfSilentlyDropping) {
  CachedRun r;
  r.migration.completed = true;
  testing::internal::CaptureStderr();
  store_cached("nosuchdir/key", r);  // out_dir()/cache_nosuchdir/ is absent
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("bench cache: cannot write"), std::string::npos);
  EXPECT_NE(err.find("result not cached"), std::string::npos);
}

}  // namespace
}  // namespace agile::bench
