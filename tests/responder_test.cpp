#include <gtest/gtest.h>

#include "core/pressure_responder.hpp"
#include "workload/ycsb.hpp"

namespace agile::core {
namespace {

struct ResponderBed {
  TestbedConfig cfg;
  std::unique_ptr<Testbed> bed;
  std::vector<VmHandle*> handles;
  std::vector<workload::YcsbWorkload*> ycsbs;

  explicit ResponderBed(int vm_count, Bytes host_ram = 2_GiB) {
    cfg.source.ram = host_ram;
    cfg.source.host_os_bytes = 64_MiB;
    cfg.dest = cfg.source;
    cfg.dest.name = "dest";
    cfg.vmd_server_capacity = 8_GiB;
    bed = std::make_unique<Testbed>(cfg);
    for (int i = 0; i < vm_count; ++i) {
      VmSpec spec;
      spec.name = "vm" + std::to_string(i);
      spec.memory = 1_GiB;
      spec.reservation = 512_MiB;
      spec.swap = SwapBinding::kPerVmDevice;
      VmHandle& h = bed->create_vm(spec);
      handles.push_back(&h);
      workload::YcsbConfig ycfg;
      ycfg.dataset_bytes = 768_MiB;
      ycfg.guest_os_bytes = 32_MiB;
      ycfg.active_bytes = 128_MiB;
      auto load = std::make_unique<workload::YcsbWorkload>(
          h.machine, &bed->cluster().network(), bed->client_node(), ycfg,
          bed->make_rng(spec.name + "/y"));
      ycsbs.push_back(load.get());
      bed->attach_workload(h, std::move(load));
      ycsbs.back()->load(0);
    }
    bed->source()->ssd()->advance(sec(3600));
  }

  wss::WssConfig brisk() {
    wss::WssConfig w;
    w.alpha = 0.80;
    w.beta = 1.15;
    return w;
  }
};

TEST(PressureResponder, NoPressureNoMigration) {
  ResponderBed rb(2, 4_GiB);  // plenty of headroom
  PressureResponderConfig cfg;
  cfg.wss = rb.brisk();
  PressureResponder responder(rb.bed.get(), cfg);
  for (VmHandle* h : rb.handles) responder.track(h);
  responder.start();
  rb.bed->cluster().run_for_seconds(120);
  EXPECT_EQ(responder.migrations_launched(), 0u);
  EXPECT_FALSE(responder.last_decision().pressure);
  EXPECT_EQ(rb.bed->dest()->vm_count(), 0u);
}

TEST(PressureResponder, MigratesWhenAWorkingSetGrows) {
  ResponderBed rb(2, 1_GiB);
  PressureResponderConfig cfg;
  cfg.wss = rb.brisk();
  PressureResponder responder(rb.bed.get(), cfg);
  for (VmHandle* h : rb.handles) responder.track(h);
  responder.start();
  rb.bed->cluster().run_for_seconds(90);
  ASSERT_EQ(responder.migrations_launched(), 0u);
  // vm1's working set explodes; the aggregate crosses the high watermark and
  // vm1 (by far the largest estimate) must be the one evicted.
  rb.ycsbs[1]->set_active_bytes(768_MiB);
  rb.bed->cluster().run_for_seconds(250);
  ASSERT_GE(responder.migrations_launched(), 1u);
  // The grown VM (the largest WSS) is the victim, and it actually moved.
  EXPECT_TRUE(rb.bed->dest()->has_vm(rb.handles[1]->machine));
  EXPECT_TRUE(rb.bed->source()->has_vm(rb.handles[0]->machine));
  EXPECT_TRUE(responder.migrations()[0]->completed());
}

TEST(PressureResponder, OneMigrationAtATime) {
  ResponderBed rb(3, 2_GiB);
  PressureResponderConfig cfg;
  cfg.wss = rb.brisk();
  cfg.check_interval = sec(5);
  PressureResponder responder(rb.bed.get(), cfg);
  for (VmHandle* h : rb.handles) responder.track(h);
  responder.start();
  rb.bed->cluster().run_for_seconds(60);
  // Everyone grows at once; the responder must serialize migrations.
  for (auto* y : rb.ycsbs) y->set_active_bytes(768_MiB);
  bool overlapped = false;
  for (int i = 0; i < 300; ++i) {
    rb.bed->cluster().run_for_seconds(1);
    std::size_t in_flight = 0;
    for (const auto& m : responder.migrations()) in_flight += !m->completed();
    if (in_flight > 1) overlapped = true;
  }
  EXPECT_FALSE(overlapped);
  EXPECT_GE(responder.migrations_launched(), 1u);
}

TEST(PressureResponder, TracksEstimatesPerVm) {
  ResponderBed rb(2, 4_GiB);
  PressureResponderConfig cfg;
  cfg.wss = rb.brisk();
  PressureResponder responder(rb.bed.get(), cfg);
  for (VmHandle* h : rb.handles) responder.track(h);
  EXPECT_EQ(responder.tracked_count(), 2u);
  responder.start();
  rb.ycsbs[0]->set_active_bytes(640_MiB);
  rb.bed->cluster().run_for_seconds(180);
  EXPECT_GT(responder.wss_estimate(rb.handles[0]),
            responder.wss_estimate(rb.handles[1]));
}

TEST(PressureResponder, StopHaltsMonitoring) {
  ResponderBed rb(2, 2_GiB);
  PressureResponderConfig cfg;
  cfg.wss = rb.brisk();
  PressureResponder responder(rb.bed.get(), cfg);
  for (VmHandle* h : rb.handles) responder.track(h);
  responder.start();
  rb.bed->cluster().run_for_seconds(50);
  responder.stop();
  for (auto* y : rb.ycsbs) y->set_active_bytes(768_MiB);
  rb.bed->cluster().run_for_seconds(120);
  EXPECT_EQ(responder.migrations_launched(), 0u);
}

}  // namespace
}  // namespace agile::core
