#include "migration/postcopy.hpp"

#include "util/log.hpp"

namespace agile::migration {

void PostcopyMigration::on_tick(SimTime, SimTime dt, std::uint32_t tick) {
  if (phase_ == Phase::kInit) {
    // "Upon beginning the migration, the VM is immediately suspended."
    sent_.reset(page_count(), false);
    received_.reset(page_count(), false);
    begin_suspend();
    metrics_.bytes_transferred += config_.cpu_state_bytes;
    stream_->send(config_.cpu_state_bytes, [this] {
      complete_switchover(cluster_->tick_index());
      params_.machine->set_remote_fault_handler(
          [this](PageIndex p, bool write, std::uint32_t t) {
            return handle_fault(p, write, t);
          });
      phase_ = Phase::kPush;
    });
    phase_ = Phase::kFlipWait;
    return;
  }
  if (phase_ != Phase::kPush) return;

  SimTime budget = dt - debt_;
  debt_ = 0;
  if (budget <= 0) {
    debt_ = -budget;
    return;
  }
  while (budget > 0 && phase_ == Phase::kPush) {
    if (stream_->backlog() >= config_.send_window) break;
    std::size_t p = sent_.find_next_clear(cursor_);
    if (p == Bitmap::npos) break;  // all enqueued; finish fires on delivery
    cursor_ = p + 1;
    sent_.set(p);
    budget -= push_page(p, tick);
  }
  if (budget < 0) debt_ = -budget;
}

SimTime PostcopyMigration::push_page(PageIndex p, std::uint32_t tick) {
  SimTime spent = config_.page_copy_cost;
  mem::PageState st = source_mem_->state(p);
  AGILE_CHECK_MSG(st != mem::PageState::kRemote, "pushing an already-released page");
  if (st == mem::PageState::kSwapped) {
    spent += source_mem_->swap_in_for_transfer(p, tick);
    ++metrics_.pages_swapped_in_at_source;
    st = mem::PageState::kResident;
  }
  if (st == mem::PageState::kUntouched) {
    ++metrics_.pages_sent_descriptor;
    metrics_.bytes_transferred += config_.descriptor_bytes;
    stream_->send(config_.descriptor_bytes, [this, p] { deliver_page(p); });
  } else {
    ++metrics_.pages_sent_full;
    metrics_.bytes_transferred += full_page_bytes();
    stream_->send(full_page_bytes(), [this, p] { deliver_page(p); });
  }
  return spent;
}

void PostcopyMigration::deliver_page(PageIndex p) {
  if (received_.test(p)) {
    // A demand fault overtook this pushed copy; the receiver discards it.
    ++metrics_.duplicate_pages;
  } else {
    received_.set(p);
    if (source_mem_->state(p) == mem::PageState::kUntouched) {
      dest_mem_->install_untouched(p);
    } else {
      dest_mem_->install_resident(p, cluster_->tick_index());
    }
  }
  source_mem_->release_page(p);  // progressive source memory relief
  maybe_finish();
}

SimTime PostcopyMigration::handle_fault(PageIndex p, bool, std::uint32_t tick) {
  AGILE_CHECK(!received_.test(p));
  SimTime latency = config_.fault_overhead;
  net::Network& net = cluster_->network();
  net::NodeId dst = params_.dest->node();
  net::NodeId src = params_.source->node();

  mem::PageState st = source_mem_->state(p);
  AGILE_CHECK_MSG(st != mem::PageState::kRemote, "fault on a released page");
  if (st == mem::PageState::kSwapped) {
    // The memory-constrained source must read the page off its swap device
    // before it can answer — the paper's post-copy degradation mechanism.
    latency += source_mem_->swap_in_for_transfer(p, tick, /*sequential=*/false);
    st = mem::PageState::kResident;
  }
  if (st == mem::PageState::kUntouched) {
    latency += net.rpc_latency(dst, src, config_.descriptor_bytes);
    net.consume_background(dst, src, config_.descriptor_bytes);
    net.consume_background(src, dst, config_.descriptor_bytes);
    metrics_.bytes_transferred += config_.descriptor_bytes;
    dest_mem_->install_untouched(p);
  } else {
    latency += net.rpc_latency(dst, src, full_page_bytes());
    net.consume_background(dst, src, config_.descriptor_bytes);  // request
    net.consume_background(src, dst, full_page_bytes());         // response
    metrics_.bytes_transferred += full_page_bytes();
    dest_mem_->install_resident(p, tick);
  }
  sent_.set(p);
  received_.set(p);
  ++metrics_.pages_demand_served;
  source_mem_->release_page(p);
  maybe_finish();
  return latency;
}

void PostcopyMigration::maybe_finish() {
  if (phase_ == Phase::kDone || received_.count() != page_count()) return;
  phase_ = Phase::kDone;
  params_.machine->clear_remote_fault_handler();
  source_mem_->teardown(/*free_slots=*/true);
  finish();
}

}  // namespace agile::migration
