#include "migration/postcopy.hpp"

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::migration {

void PostcopyMigration::on_tick(SimTime, SimTime dt, std::uint32_t tick) {
  if (phase_ == Phase::kInit) {
    // "Upon beginning the migration, the VM is immediately suspended."
    sent_.reset(page_count(), false);
    received_.reset(page_count(), false);
    begin_suspend();
    AGILE_TRACE_SPAN_BEGIN("migration", "flip", trace_id());
    metrics_.bytes_transferred += config_.cpu_state_bytes;
    // Fenced for uniformity: the CPU state is the first message of the
    // migration, so the fence is trivially satisfied on delivery.
    stream_->send_fenced(config_.cpu_state_bytes, [this] {
      complete_switchover(cluster_->tick_index());
      AGILE_TRACE_SPAN_END("migration", "flip", trace_id());
      AGILE_TRACE_SPAN_BEGIN("migration", "push", trace_id());
      params_.machine->set_remote_fault_handler(
          [this](PageIndex p, bool write, std::uint32_t t) {
            return handle_fault(p, write, t);
          });
      phase_ = Phase::kPush;
      set_phase(2, "push");
    });
    phase_ = Phase::kFlipWait;
    set_phase(1, "flip-wait");
    return;
  }
  if (phase_ != Phase::kPush) return;

  SimTime budget = dt - debt_;
  debt_ = 0;
  if (budget <= 0) {
    debt_ = -budget;
    return;
  }
  while (budget > 0 && phase_ == Phase::kPush) {
    const Bytes backlog = stream_->backlog();
    if (backlog >= config_.send_window) break;
    Bitmap::Run run = sent_.next_clear_run(cursor_);
    if (run.empty()) break;  // all enqueued; finish fires on delivery
    const PageIndex p = run.begin;
    if (source_mem_->state(p) == mem::PageState::kUntouched) {
      // Descriptor run: uniform cost and no mid-run class changes (nothing
      // here swaps anything in), so the whole run collapses into one batch,
      // capped by the thread budget and the remaining send window.
      const PageIndex limit = source_mem_->state_run_end(p, run.end);
      std::uint64_t n = limit - p;
      n = std::min(n, (static_cast<std::uint64_t>(budget) +
                       config_.page_copy_cost - 1) /
                          config_.page_copy_cost);
      n = std::min(n, (config_.send_window - backlog +
                       config_.descriptor_bytes - 1) /
                          config_.descriptor_bytes);
      sent_.set_range(p, p + n);
      cursor_ = p + n;
      budget -= static_cast<SimTime>(n) * config_.page_copy_cost;
      metrics_.pages_sent_descriptor += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      stream_->send_batch(n, config_.descriptor_bytes,
                          [this, p = p](std::uint64_t k) mutable {
                            for (std::uint64_t i = 0; i < k; ++i) {
                              deliver_page(p++);
                            }
                          });
      continue;
    }
    if (zero_elidable(p)) {
      // Zero-page elision run: all-zero content travels as a descriptor and
      // installs as untouched at the destination. Classification is
      // read-only (no swap-ins), so the class cannot change mid-run.
      PageIndex q = p;
      std::uint64_t n = 0;
      while (q < run.end && budget > 0 &&
             backlog + n * config_.descriptor_bytes < config_.send_window &&
             zero_elidable(q)) {
        budget -= config_.page_copy_cost;
        ++n;
        ++q;
      }
      sent_.set_range(p, q);
      cursor_ = q;
      metrics_.pages_sent_descriptor += n;
      metrics_.pages_zero_elided += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      stream_->send_batch(n, config_.descriptor_bytes,
                          [this, p = p](std::uint64_t k) mutable {
                            for (std::uint64_t i = 0; i < k; ++i) {
                              deliver_page(p++);
                            }
                          });
      continue;
    }
    // Full-copy stretch (resident or swapped pages). A swap-in can evict
    // other pages — possibly inside this run — so class and cost are re-read
    // page by page while the messages coalesce into one batch.
    PageIndex q = p;
    std::uint64_t n = 0;
    while (q < run.end && budget > 0 &&
           backlog + n * wire_page_bytes() < config_.send_window) {
      const mem::PageState st = source_mem_->state(q);
      AGILE_CHECK_MSG(st != mem::PageState::kRemote,
                      "pushing an already-released page");
      if (st == mem::PageState::kUntouched) break;
      if (zero_elidable(q)) break;  // next stretch elides to a descriptor
      SimTime spent = page_send_cost();
      if (st == mem::PageState::kSwapped) {
        spent += source_mem_->swap_in_for_transfer(q, tick);
        ++metrics_.pages_swapped_in_at_source;
      }
      budget -= spent;
      ++n;
      ++q;
    }
    account_full_pages(n);
    sent_.set_range(p, q);
    cursor_ = q;
    stream_->send_batch(n, wire_page_bytes(),
                        [this, p = p](std::uint64_t k) mutable {
                          for (std::uint64_t i = 0; i < k; ++i) {
                            deliver_page(p++);
                          }
                        });
  }
  if (budget < 0) debt_ = -budget;
}

void PostcopyMigration::deliver_page(PageIndex p) {
  if (received_.test(p)) {
    // A demand fault overtook this pushed copy; the receiver discards it.
    ++metrics_.duplicate_pages;
  } else {
    received_.set(p);
    // Untouched and zero-elided pages both install as the canonical zero
    // page; the source still holds `p` here (release below), so the zero
    // mark is readable and stable (the source is suspended post-flip).
    if (source_mem_->state(p) == mem::PageState::kUntouched || zero_elidable(p)) {
      dest_mem_->install_untouched(p);
    } else {
      dest_mem_->install_resident(p, cluster_->tick_index());
    }
  }
  source_mem_->release_page(p);  // progressive source memory relief
  maybe_finish();
}

SimTime PostcopyMigration::handle_fault(PageIndex p, bool, std::uint32_t tick) {
  AGILE_CHECK(!received_.test(p));
  SimTime latency = config_.fault_overhead;
  net::Network& net = cluster_->network();
  net::NodeId dst = params_.dest->node();
  net::NodeId src = params_.source->node();

  mem::PageState st = source_mem_->state(p);
  AGILE_CHECK_MSG(st != mem::PageState::kRemote, "fault on a released page");
  const bool zero = zero_elidable(p);  // answered by descriptor, no data read
  if (st == mem::PageState::kSwapped && !zero) {
    // The memory-constrained source must read the page off its swap device
    // before it can answer — the paper's post-copy degradation mechanism.
    latency += source_mem_->swap_in_for_transfer(p, tick, /*sequential=*/false);
    st = mem::PageState::kResident;
  }
  if (st == mem::PageState::kUntouched || zero) {
    latency += net.rpc_latency(dst, src, config_.descriptor_bytes);
    net.consume_background(dst, src, config_.descriptor_bytes);
    net.consume_background(src, dst, config_.descriptor_bytes);
    metrics_.bytes_transferred += config_.descriptor_bytes;
    if (zero) ++metrics_.pages_zero_elided;
    dest_mem_->install_untouched(p);
  } else {
    latency += net.rpc_latency(dst, src, full_page_bytes());
    net.consume_background(dst, src, config_.descriptor_bytes);  // request
    net.consume_background(src, dst, full_page_bytes());         // response
    metrics_.bytes_transferred += full_page_bytes();
    dest_mem_->install_resident(p, tick);
  }
  sent_.set(p);
  received_.set(p);
  ++metrics_.pages_demand_served;
  AGILE_TRACE_INSTANT("migration", "demand_fault", trace_id(),
                      static_cast<double>(p));
  AGILE_LOG_EVERY_N(kDebug, 1000, "post-copy %s: %llu demand faults served",
                    params_.machine->name().c_str(),
                    static_cast<unsigned long long>(metrics_.pages_demand_served));
  source_mem_->release_page(p);
  maybe_finish();
  return latency;
}

void PostcopyMigration::maybe_finish() {
  if (phase_ == Phase::kDone || received_.count() != page_count()) return;
  if (audit::enabled()) {
    // Every page reached the destination exactly once, counting the push /
    // demand-fault race explicitly: pushes + demand serves = guest size +
    // duplicates (a duplicate is a page that travelled both ways).
    AGILE_CHECK_S(metrics_.pages_sent_full + metrics_.pages_sent_descriptor +
                      metrics_.pages_demand_served ==
                  page_count() + metrics_.duplicate_pages)
        << "page classification does not cover the guest exactly once: full "
        << metrics_.pages_sent_full << " + desc "
        << metrics_.pages_sent_descriptor << " + demand "
        << metrics_.pages_demand_served << " vs " << page_count() << " + dup "
        << metrics_.duplicate_pages;
    AGILE_CHECK_S(sent_.count() == page_count())
        << "finishing with " << page_count() - sent_.count() << " unsent pages";
    received_.deep_audit();
  }
  phase_ = Phase::kDone;
  set_phase(3, "done");
  AGILE_TRACE_SPAN_END("migration", "push", trace_id());
  params_.machine->clear_remote_fault_handler();
  source_mem_->teardown(/*free_slots=*/true);
  finish();
}

}  // namespace agile::migration
