// Iterative pre-copy live migration (the QEMU baseline).
//
// Round 1 transfers every page; later rounds re-send pages dirtied during
// the previous round. Swapped-out pages must be swapped in from the host
// swap partition before they can travel — the migration thread pays that
// read latency (and contends with guest faults for the SSD), which is the
// agility problem the paper demonstrates. When the remaining dirty set can
// be sent within the downtime target (or the round cap is hit), the VM is
// suspended, the rest is flushed, the CPU state follows, and the VM resumes
// at the destination.
#pragma once

#include "migration/migration.hpp"

namespace agile::migration {

class PrecopyMigration final : public MigrationManager {
 public:
  using MigrationManager::MigrationManager;

  const char* technique() const override { return "pre-copy"; }

  /// This round's unsent dirty pages plus the dirty log accumulating for
  /// the next round.
  std::uint64_t pages_owed() const override {
    return dirty_.count() + next_dirty_.count();
  }

 protected:
  void on_tick(SimTime now, SimTime dt, std::uint32_t tick) override;

 private:
  enum class Phase { kInit, kLive, kStopCopy, kAwaitResume };

  void end_of_live_round();
  void start_stop_copy();

  Phase phase_ = Phase::kInit;
  Bitmap dirty_;       ///< Pages still to send this round.
  Bitmap next_dirty_;  ///< KVM dirty log for the running round.
  std::uint64_t cursor_ = 0;
  std::uint32_t round_ = 0;
  SimTime debt_ = 0;  ///< Thread time overdrawn from the last quantum.
};

}  // namespace agile::migration
