// Multi-stream migration data path.
//
// A `StreamGroup` fans one migration's traffic across `num_streams` parallel
// `WireStream` lanes sharing the link — the PMigrate-KVM master/slave split:
// a producer (the engine's send loop) hands whole runs to consumer lanes in
// deterministic round-robin order. Each run (one `send_batch`) lives on
// exactly one FIFO lane, so per-run delivery order — the property every
// engine's completion callbacks rely on — is preserved; only *across* runs
// may delivery interleave, which the engines tolerate (runs cover disjoint
// page ranges and installs are state-idempotent).
//
// Cross-lane ordering is restored only where it matters: `send_fenced` (the
// CPU-state blob, the agile flip message) delays its completion callback
// until every lane has drained everything queued before the fence — the
// multi-stream equivalent of "the CPU state was queued behind all pages on
// the same TCP connection".
//
// With `num_streams == 1` the group degenerates to a single WireStream with
// identical flow, timing and trace output: the golden tests pin that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "migration/wire.hpp"

namespace agile::migration {

class StreamGroup {
 public:
  using ChunkFn = WireStream::ChunkFn;

  /// Hard ceiling on lanes per group: keeps the per-lane trace component
  /// table static and matches the useful range (PMigrate saturated a 10 Gbps
  /// NIC well below this).
  static constexpr std::uint32_t kMaxStreams = 16;

  StreamGroup(net::Network* network, net::NodeId src, net::NodeId dst,
              std::uint64_t trace_id = 0, std::uint32_t num_streams = 1);

  StreamGroup(const StreamGroup&) = delete;
  StreamGroup& operator=(const StreamGroup&) = delete;

  /// Single message on the next round-robin lane; `on_delivered` fires when
  /// its last byte arrives (per-lane FIFO order).
  template <typename F>
  void send(Bytes bytes, F on_delivered) {
    next_lane().send(bytes, std::move(on_delivered));
  }
  void send(Bytes bytes, std::nullptr_t) { next_lane().send(bytes, nullptr); }

  /// Dispatches one run of `items` equal payloads to the next round-robin
  /// lane. Chunk callbacks fire in item order within the run.
  void send_batch(std::uint64_t items, Bytes item_bytes, ChunkFn on_items);

  /// Barrier send: queues `bytes` on the next round-robin lane and fires
  /// `on_delivered` only once (a) the fence message itself has arrived and
  /// (b) every lane has delivered everything offered before the fence. With
  /// one lane this is exactly `send`. No other sends may be issued while a
  /// fence is pending (the engines never do — they stop pushing until the
  /// switchover/flip callback runs).
  void send_fenced(Bytes bytes, InlineFunction<void()> on_delivered);

  /// Aggregates over all lanes.
  Bytes backlog() const;
  Bytes delivered_bytes() const;
  Bytes offered_bytes() const;
  bool idle() const;
  std::size_t queued_messages() const;

  std::size_t lane_count() const { return lanes_.size(); }
  const WireStream& lane(std::size_t k) const { return *lanes_[k]; }

 private:
  /// Round-robin dispatch point; also enforces the no-send-while-fenced rule.
  WireStream& next_lane();

  /// Invoked by every lane at the end of each delivery quantum.
  void on_lane_progress();
  void maybe_fire_fence();

  /// Group-level byte-conservation auditor (satellite of the per-lane
  /// auditor): with N flows sharing one link, per-quantum fair-share rounding
  /// must still conserve bytes across the whole group. Runs when
  /// `audit::enabled()`: exactly at send points (stable, between network
  /// quanta) and as a no-over-delivery bound at mid-quantum delivery
  /// callbacks, where sibling-lane notifications may still be pending.
  void audit_group(bool exact) const;

  std::vector<std::unique_ptr<WireStream>> lanes_;
  std::size_t next_lane_ = 0;
  bool fence_pending_ = false;
  bool fence_delivered_ = false;
  /// Per-lane offered_bytes() snapshot taken when the fence was queued; the
  /// fence is satisfied once every lane's delivered_bytes() reaches it.
  std::vector<Bytes> fence_floor_;
  InlineFunction<void()> fence_fn_;
};

}  // namespace agile::migration
