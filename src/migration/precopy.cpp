#include "migration/precopy.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::migration {

void PrecopyMigration::on_tick(SimTime, SimTime dt, std::uint32_t tick) {
  if (phase_ == Phase::kInit) {
    dirty_.reset(page_count(), /*initial=*/true);  // round 1: everything
    next_dirty_.reset(page_count(), false);
    source_mem_->attach_dirty_log(&next_dirty_);
    round_ = 1;
    phase_ = Phase::kLive;
    set_phase(1, "live");
    AGILE_TRACE_SPAN_BEGIN("migration", "round", trace_id(), 1);
  }
  if (phase_ == Phase::kAwaitResume) return;  // CPU state in flight

  SimTime budget = dt - debt_;
  debt_ = 0;
  if (budget <= 0) {
    debt_ = -budget;
    return;
  }

  mem::GuestMemory* dest = dest_memory();
  while (budget > 0 &&
         (phase_ == Phase::kLive || phase_ == Phase::kStopCopy)) {
    const Bytes backlog = stream_->backlog();
    if (backlog >= config_.send_window) break;  // TCP window full
    Bitmap::Run run = dirty_.next_set_run(cursor_);
    if (run.empty()) {
      if (phase_ == Phase::kLive) {
        end_of_live_round();
      } else {
        start_stop_copy();  // stop-copy scan finished: ship CPU state
        break;
      }
      continue;
    }
    PageIndex p = run.begin;
    if (source_mem_->state(p) == mem::PageState::kUntouched) {
      // Descriptor run: every page costs the same and nothing can change a
      // page's class mid-run (descriptors trigger no swap-ins), so the whole
      // run collapses into one batch send, capped by the thread budget
      // (ceil: the per-page loop sent while budget was still positive) and
      // the remaining send window.
      const PageIndex limit = source_mem_->state_run_end(p, run.end);
      std::uint64_t n = limit - p;
      n = std::min(n, (static_cast<std::uint64_t>(budget) +
                       config_.page_copy_cost - 1) /
                          config_.page_copy_cost);
      n = std::min(n, (config_.send_window - backlog +
                       config_.descriptor_bytes - 1) /
                          config_.descriptor_bytes);
      dirty_.clear_range(p, p + n);
      cursor_ = p + n;
      budget -= static_cast<SimTime>(n) * config_.page_copy_cost;
      metrics_.pages_sent_descriptor += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      stream_->send_batch(n, config_.descriptor_bytes,
                          [dest, p](std::uint64_t k) mutable {
                            dest->install_untouched_range(p, p + k);
                            p += k;
                          });
      continue;
    }
    if (zero_elidable(p)) {
      // Zero-page elision run: touched pages whose content is all zeroes
      // travel as descriptors — the destination installs them as untouched
      // (the canonical zero page). Classification is read-only, so nothing
      // can change a page's class mid-run; swapped zero pages skip the
      // swap-in entirely (the mark is authoritative, no data is read).
      PageIndex q = p;
      std::uint64_t n = 0;
      while (q < run.end && budget > 0 &&
             backlog + n * config_.descriptor_bytes < config_.send_window &&
             zero_elidable(q)) {
        budget -= config_.page_copy_cost;
        ++n;
        ++q;
      }
      dirty_.clear_range(p, q);
      cursor_ = q;
      metrics_.pages_sent_descriptor += n;
      metrics_.pages_zero_elided += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      stream_->send_batch(n, config_.descriptor_bytes,
                          [dest, p](std::uint64_t k) mutable {
                            dest->install_untouched_range(p, p + k);
                            p += k;
                          });
      continue;
    }
    // Full-copy stretch (resident or swapped pages). A swap-in can evict
    // other pages of this very VM — possibly inside this run — so class and
    // cost are re-read page by page; the wire messages still coalesce into a
    // single batch, since every one is a full-page copy with the same
    // delivery semantics.
    PageIndex q = p;
    std::uint64_t n = 0;
    while (q < run.end && budget > 0 &&
           backlog + n * wire_page_bytes() < config_.send_window) {
      const mem::PageState st = source_mem_->state(q);
      if (st == mem::PageState::kUntouched) break;
      if (zero_elidable(q)) break;  // next stretch elides to a descriptor
      SimTime spent = page_send_cost();
      if (st == mem::PageState::kSwapped) {
        // Must be brought back into memory before it can be sent (and doing
        // so can evict other pages of this very VM).
        spent += source_mem_->swap_in_for_transfer(q, tick);
        ++metrics_.pages_swapped_in_at_source;
      }
      budget -= spent;
      ++n;
      ++q;
    }
    account_full_pages(n);
    dirty_.clear_range(p, q);
    cursor_ = q;
    host::Cluster* cluster = cluster_;
    stream_->send_batch(n, wire_page_bytes(),
                        [dest, p, cluster](std::uint64_t k) mutable {
                          dest->receive_overwrite_range(p, p + k,
                                                        cluster->tick_index());
                          p += k;
                        });
  }
  if (budget < 0) debt_ = -budget;
}

void PrecopyMigration::end_of_live_round() {
  metrics_.precopy_rounds = round_;
  if (audit::enabled()) {
    // A round ends only when its scan cleared every dirty bit — each owed
    // page was classified (and sent) exactly once this round.
    AGILE_CHECK_S(dirty_.none())
        << "round " << round_ << " ended with " << dirty_.count()
        << " unvisited dirty pages";
    if (round_ == 1) {
      // Round 1 scans the whole guest: full + descriptor accounting must sum
      // to the guest size, and the byte total must decompose into the two
      // message classes.
      AGILE_CHECK_S(metrics_.pages_sent_full + metrics_.pages_sent_descriptor ==
                    page_count())
          << "round 1 classified " << metrics_.pages_sent_full << " full + "
          << metrics_.pages_sent_descriptor << " descriptor pages, guest has "
          << page_count();
      AGILE_CHECK_S(metrics_.bytes_transferred ==
                    metrics_.pages_sent_full * wire_page_bytes() +
                        metrics_.pages_sent_descriptor * config_.descriptor_bytes)
          << "round 1 byte total does not decompose into page classes";
    }
    next_dirty_.deep_audit();
  }
  std::uint64_t remaining = next_dirty_.count();
  AGILE_TRACE_SPAN_END("migration", "round", trace_id());
  AGILE_TRACE_INSTANT("migration", "round_dirty_left", trace_id(),
                      static_cast<double>(remaining));
  // Achievable stop-copy rate: the NIC pair, or — under a per-flow cap —
  // what `num_streams` parallel connections can carry together. Pages travel
  // at the compressed wire size. Defaults reduce to remaining * full page
  // size over the link rate, exactly the pre-multi-stream estimate.
  const net::Network& network = cluster_->network();
  double rate = std::min(network.link_bytes_per_sec(),
                         network.flow_bytes_per_sec() *
                             static_cast<double>(config_.num_streams));
  double est_seconds = static_cast<double>(remaining * wire_page_bytes()) / rate;
  bool converged = est_seconds * 1e6 <= static_cast<double>(config_.downtime_target);
  if (converged || round_ >= config_.max_rounds) {
    AGILE_LOG_INFO("pre-copy %s: round %u done, %llu dirty left -> stop-and-copy",
                   params_.machine->name().c_str(), round_,
                   static_cast<unsigned long long>(remaining));
    begin_suspend();
    source_mem_->detach_dirty_log();
    std::swap(dirty_, next_dirty_);
    next_dirty_.clear_all();
    cursor_ = 0;
    phase_ = Phase::kStopCopy;
    set_phase(2, "stop-copy");
    AGILE_TRACE_SPAN_BEGIN("migration", "stop_copy", trace_id());
    return;
  }
  ++round_;
  AGILE_TRACE_SPAN_BEGIN("migration", "round", trace_id(), round_);
  std::swap(dirty_, next_dirty_);
  next_dirty_.clear_all();
  cursor_ = 0;
}

void PrecopyMigration::start_stop_copy() {
  phase_ = Phase::kAwaitResume;
  set_phase(3, "await-resume");
  AGILE_TRACE_SPAN_END("migration", "stop_copy", trace_id());
  AGILE_TRACE_SPAN_BEGIN("migration", "await_resume", trace_id());
  metrics_.bytes_transferred += config_.cpu_state_bytes;
  stream_->send_fenced(config_.cpu_state_bytes, [this] {
    // The fence guarantees every lane drained everything queued before the
    // CPU state (with one stream: plain FIFO order), so the destination
    // memory is complete when this fires.
    complete_switchover(cluster_->tick_index());
    AGILE_TRACE_SPAN_END("migration", "await_resume", trace_id());
    source_mem_->teardown(/*free_slots=*/true);
    finish();
  });
}

}  // namespace agile::migration
