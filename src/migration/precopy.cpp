#include "migration/precopy.hpp"

#include "util/log.hpp"

namespace agile::migration {

void PrecopyMigration::on_tick(SimTime, SimTime dt, std::uint32_t tick) {
  if (phase_ == Phase::kInit) {
    dirty_.reset(page_count(), /*initial=*/true);  // round 1: everything
    next_dirty_.reset(page_count(), false);
    source_mem_->attach_dirty_log(&next_dirty_);
    round_ = 1;
    phase_ = Phase::kLive;
  }
  if (phase_ == Phase::kAwaitResume) return;  // CPU state in flight

  SimTime budget = dt - debt_;
  debt_ = 0;
  if (budget <= 0) {
    debt_ = -budget;
    return;
  }

  while (budget > 0 &&
         (phase_ == Phase::kLive || phase_ == Phase::kStopCopy)) {
    if (stream_->backlog() >= config_.send_window) break;  // TCP window full
    std::size_t p = dirty_.find_next_set(cursor_);
    if (p == Bitmap::npos) {
      if (phase_ == Phase::kLive) {
        end_of_live_round();
      } else {
        start_stop_copy();  // stop-copy scan finished: ship CPU state
        break;
      }
      continue;
    }
    cursor_ = p + 1;
    dirty_.clear(p);
    budget -= send_page(p, tick);
  }
  if (budget < 0) debt_ = -budget;
}

SimTime PrecopyMigration::send_page(PageIndex p, std::uint32_t tick) {
  SimTime spent = config_.page_copy_cost;
  mem::PageState st = source_mem_->state(p);
  if (st == mem::PageState::kSwapped) {
    // Must be brought back into memory before it can be sent (and doing so
    // can evict other pages of this very VM).
    spent += source_mem_->swap_in_for_transfer(p, tick);
    ++metrics_.pages_swapped_in_at_source;
    st = mem::PageState::kResident;
  }
  mem::GuestMemory* dest = dest_memory();
  if (st == mem::PageState::kUntouched) {
    ++metrics_.pages_sent_descriptor;
    metrics_.bytes_transferred += config_.descriptor_bytes;
    stream_->send(config_.descriptor_bytes, [dest, p] {
      if (dest->state(p) == mem::PageState::kRemote) dest->install_untouched(p);
    });
  } else {
    ++metrics_.pages_sent_full;
    metrics_.bytes_transferred += full_page_bytes();
    host::Cluster* cluster = cluster_;
    stream_->send(full_page_bytes(), [dest, p, cluster] {
      dest->receive_overwrite(p, cluster->tick_index());
    });
  }
  return spent;
}

void PrecopyMigration::end_of_live_round() {
  metrics_.precopy_rounds = round_;
  std::uint64_t remaining = next_dirty_.count();
  double est_seconds = static_cast<double>(remaining * full_page_bytes()) /
                       cluster_->network().link_bytes_per_sec();
  bool converged = est_seconds * 1e6 <= static_cast<double>(config_.downtime_target);
  if (converged || round_ >= config_.max_rounds) {
    AGILE_LOG_INFO("pre-copy %s: round %u done, %llu dirty left -> stop-and-copy",
                   params_.machine->name().c_str(), round_,
                   static_cast<unsigned long long>(remaining));
    begin_suspend();
    source_mem_->detach_dirty_log();
    std::swap(dirty_, next_dirty_);
    next_dirty_.clear_all();
    cursor_ = 0;
    phase_ = Phase::kStopCopy;
    return;
  }
  ++round_;
  std::swap(dirty_, next_dirty_);
  next_dirty_.clear_all();
  cursor_ = 0;
}

void PrecopyMigration::start_stop_copy() {
  phase_ = Phase::kAwaitResume;
  metrics_.bytes_transferred += config_.cpu_state_bytes;
  stream_->send(config_.cpu_state_bytes, [this] {
    // Everything was queued ahead of the CPU state on the same stream, so
    // the destination memory is complete when this fires.
    complete_switchover(cluster_->tick_index());
    source_mem_->teardown(/*free_slots=*/true);
    finish();
  });
}

}  // namespace agile::migration
