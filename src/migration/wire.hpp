// The Migration Managers' TCP connection.
//
// A `WireStream` wraps a network flow and keeps the FIFO of messages riding
// it (full pages, SWAPPED descriptors, the CPU state blob, the dirty
// bitmap). Delivery callbacks fire in send order once the receiver has the
// complete message — exactly the semantics of a byte stream.
//
// The run-length batched wire format: a *batch* send queues `items` equal
// payloads (one page or one descriptor each) as a single queue entry — the
// run header (first page + length + class) lives in the sender's completion
// state, not in extra wire bytes. As the flow drains, the batch's chunk
// callback fires with the number of items whose last byte has now arrived,
// preserving exactly the per-item delivery timing of `items` individual
// sends while costing one queue slot and zero heap allocations (callbacks
// are `InlineFunction`s, never `std::function`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "net/network.hpp"
#include "util/inline_function.hpp"

namespace agile::migration {

class WireStream {
 public:
  /// Batch completion callback: invoked with the number of additional items
  /// (>= 1) fully delivered, in send order, possibly several times per batch.
  using ChunkFn = InlineFunction<void(std::uint64_t)>;

  /// `trace_id` is the trace-lane of the owning migration's VM (0 = global).
  /// `trace_component` names the trace thread ("wire" for the primary lane;
  /// a StreamGroup gives secondary lanes their own component so each stream
  /// shows up as its own lane in the Chrome export). Must be a string with
  /// static storage duration — the trace recorder stores the pointer.
  WireStream(net::Network* network, net::NodeId src, net::NodeId dst,
             std::uint64_t trace_id = 0, const char* trace_component = "wire");
  ~WireStream();

  WireStream(const WireStream&) = delete;
  WireStream& operator=(const WireStream&) = delete;

  /// Queues a message of `bytes`; `on_delivered` fires when the last byte
  /// reaches the receiver. Wraps the callable into the batch path directly
  /// (a one-item batch), so the adapter costs no extra storage.
  template <typename F>
  void send(Bytes bytes, F on_delivered) {
    send_batch(1, bytes,
               [fn = std::move(on_delivered)](std::uint64_t) mutable { fn(); });
  }
  /// Fire-and-forget single message.
  void send(Bytes bytes, std::nullptr_t) { send_batch(1, bytes, nullptr); }

  /// Queues `items` back-to-back messages of `item_bytes` each as one queue
  /// entry. `on_items(n)` fires as each item's last byte arrives (batched
  /// per network-delivery quantum): timing is identical to `items` separate
  /// `send` calls.
  void send_batch(std::uint64_t items, Bytes item_bytes, ChunkFn on_items);

  /// Bytes queued but not yet delivered.
  Bytes backlog() const { return network_->backlog(flow_); }

  /// Total bytes delivered so far.
  Bytes delivered_bytes() const { return delivered_; }

  /// Total bytes ever offered to the flow (delivered + in flight).
  Bytes offered_bytes() const { return offered_; }

  bool idle() const { return queue_.empty(); }
  /// Queue entries in flight (a batch of any length counts once).
  std::size_t queued_messages() const { return queue_.size(); }

  /// Installs a hook invoked once at the end of every delivery quantum (after
  /// all chunk callbacks of that quantum have fired). A StreamGroup uses this
  /// to re-evaluate cross-lane fences and run the group byte-conservation
  /// auditor. At most one listener; pass nullptr to clear.
  void set_progress_listener(InlineFunction<void()> listener) {
    progress_listener_ = std::move(listener);
  }

 private:
  void on_progress(Bytes n);

  struct Message {
    Bytes item_bytes = 0;         ///< Wire size of one item.
    std::uint64_t items_left = 0; ///< Items not yet fully delivered.
    Bytes partial = 0;        ///< Bytes of the current item already arrived.
    ChunkFn on_items;
  };

  /// Deep auditor (O(1)): byte conservation across the stream and its
  /// network flow — everything offered is either delivered or still in the
  /// flow backlog, the delivered total equals the per-item completion
  /// accounting (batch delivery is tick-equivalent to per-item sends), and
  /// the FIFO never over-delivers. Called per delivery quantum when
  /// `audit::enabled()`.
  void audit_conservation() const;

  net::Network* network_;
  net::FlowId flow_;
  std::uint64_t trace_id_ = 0;
  const char* trace_component_ = "wire";
  bool busy_span_open_ = false;  ///< A "wire/busy" trace span is open.
  InlineFunction<void()> progress_listener_;
  std::deque<Message> queue_;
  Bytes delivered_ = 0;
  Bytes offered_ = 0;
  std::uint64_t items_offered_ = 0;
  std::uint64_t items_completed_ = 0;
  Bytes items_completed_bytes_ = 0;  ///< Wire bytes of fully delivered items.
};

}  // namespace agile::migration
