// The Migration Managers' TCP connection.
//
// A `WireStream` wraps a network flow and keeps the FIFO of messages riding
// it (full pages, SWAPPED descriptors, the CPU state blob, the dirty
// bitmap). Delivery callbacks fire in send order once the receiver has the
// complete message — exactly the semantics of a byte stream.
#pragma once

#include <deque>
#include <functional>

#include "net/network.hpp"

namespace agile::migration {

class WireStream {
 public:
  WireStream(net::Network* network, net::NodeId src, net::NodeId dst);
  ~WireStream();

  WireStream(const WireStream&) = delete;
  WireStream& operator=(const WireStream&) = delete;

  /// Queues a message of `bytes`; `on_delivered` fires when the last byte
  /// reaches the receiver (may be null for fire-and-forget).
  void send(Bytes bytes, std::function<void()> on_delivered);

  /// Bytes queued but not yet delivered.
  Bytes backlog() const { return network_->backlog(flow_); }

  /// Total bytes delivered so far.
  Bytes delivered_bytes() const { return delivered_; }

  bool idle() const { return queue_.empty(); }
  std::size_t queued_messages() const { return queue_.size(); }

 private:
  void on_progress(Bytes n);

  struct Message {
    Bytes remaining;
    std::function<void()> on_delivered;
  };

  net::Network* network_;
  net::FlowId flow_;
  std::deque<Message> queue_;
  Bytes delivered_ = 0;
};

}  // namespace agile::migration
