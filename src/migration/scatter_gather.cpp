#include "migration/scatter_gather.hpp"

#include <vector>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::migration {

namespace {
// Slot table for in-flight scattered pages lives protocol-side (the source
// page table forgets slots it hands over). kNoSlot marks an untouched page.
}  // namespace

ScatterGatherMigration::ScatterGatherMigration(host::Cluster* cluster,
                                               MigrationParams params,
                                               MigrationConfig config)
    : MigrationManager(cluster, params, config) {
  AGILE_CHECK_MSG(params.dest_swap == params.machine->memory().swap_device(),
                  "scatter-gather needs the portable per-VM swap device");
}

void ScatterGatherMigration::on_tick(SimTime now, SimTime dt,
                                     std::uint32_t tick) {
  if (phase_ == Phase::kInit) {
    handled_.reset(page_count(), false);
    scattered_slot_.assign(page_count(), swap::kNoSlot);
    begin_suspend();
    AGILE_TRACE_SPAN_BEGIN("migration", "flip_wait", trace_id());
    metrics_.bytes_transferred += config_.cpu_state_bytes;
    // Fenced for uniformity: the CPU state is the first message of the
    // migration, so the fence is trivially satisfied on delivery.
    stream_->send_fenced(config_.cpu_state_bytes, [this] {
      complete_switchover(cluster_->tick_index());
      AGILE_TRACE_SPAN_END("migration", "flip_wait", trace_id());
      AGILE_TRACE_SPAN_BEGIN("migration", "scatter", trace_id());
      params_.machine->set_remote_fault_handler(
          [this](PageIndex p, bool write, std::uint32_t t) {
            return handle_fault(p, write, t);
          });
      if (on_switchover_) on_switchover_();
      phase_ = Phase::kScatter;
      set_phase(2, "scatter");
    });
    phase_ = Phase::kFlipWait;
    set_phase(1, "flip-wait");
    return;
  }
  if (phase_ == Phase::kFlipWait || phase_ == Phase::kDone) return;

  if (phase_ == Phase::kGatherOnly) maybe_finish_scatter();
  if (phase_ == Phase::kDone) return;

  if (phase_ == Phase::kScatter) {
    SimTime budget = dt - debt_;
    debt_ = 0;
    if (budget > 0) {
      // Scatter near NIC line rate: evicting a page moves it over the
      // network to an intermediate host, so pace by bytes per quantum —
      // leaving headroom so the descriptor stream to the destination is not
      // starved by our own background traffic.
      double byte_budget = cluster_->network().link_bytes_per_sec() *
                           to_seconds(dt) * 0.9;
      while (budget > 0 && byte_budget > 0) {
        const Bytes backlog = stream_->backlog();
        if (backlog >= config_.send_window) break;
        Bitmap::Run run = handled_.next_clear_run(scatter_cursor_);
        if (run.empty()) {
          maybe_finish_scatter();
          break;
        }
        // The per-page source work (targeted eviction, slot handoff,
        // release) is inherently page-at-a-time, but every wire message is
        // an identical 16-byte descriptor: accumulate the run's worth and
        // flush one batch. The window check counts descriptors not yet
        // offered to the flow.
        const PageIndex p = run.begin;
        PageIndex q = p;
        std::uint64_t n = 0;
        while (q < run.end && budget > 0 && byte_budget > 0 &&
               backlog + n * config_.descriptor_bytes < config_.send_window) {
          Bytes before = metrics_.bytes_scattered;
          budget -= scatter_work(q, tick);
          // Pace by what actually hit the network: evictions cost a page,
          // descriptor-only pages (already in the VMD / untouched) only
          // their 16-byte message.
          byte_budget -= static_cast<double>(metrics_.bytes_scattered -
                                             before + config_.descriptor_bytes);
          ++n;
          ++q;
        }
        scatter_cursor_ = q;
        metrics_.pages_sent_descriptor += n;
        metrics_.bytes_transferred += n * config_.descriptor_bytes;
        stream_->send_batch(n, config_.descriptor_bytes,
                            [this, p = p](std::uint64_t k) mutable {
                              for (std::uint64_t i = 0; i < k; ++i) {
                                descriptor_delivered(p++);
                              }
                            });
      }
      if (budget < 0) debt_ = -budget;
    }
  }
  gather(dt, tick);
  (void)now;
}

SimTime ScatterGatherMigration::scatter_work(PageIndex p, std::uint32_t tick) {
  (void)tick;
  mem::PageState st = source_mem_->state(p);
  AGILE_CHECK_MSG(st != mem::PageState::kRemote, "scattering a released page");
  handled_.set(p);
  SimTime spent = config_.page_copy_cost;
  swap::SwapSlot slot = swap::kNoSlot;
  if (st != mem::PageState::kUntouched && zero_elidable(p)) {
    // All-zero content: the descriptor says "untouched" (slot stays kNoSlot)
    // and the destination installs the canonical zero page. Resident zero
    // pages skip the eviction entirely; swapped ones keep their VMD slot at
    // the source, which frees it at teardown — the destination never learns
    // about it.
    ++metrics_.pages_zero_elided;
    scattered_slot_[p] = swap::kNoSlot;
    source_mem_->release_page(p);
    return spent;
  }
  switch (st) {
    case mem::PageState::kResident: {
      // Targeted eviction: the page travels source -> intermediary (free if
      // a clean swap copy already exists there).
      bool had_copy = source_mem_->swap_slot(p) != swap::kNoSlot;
      source_mem_->evict_page(p);
      if (!had_copy) metrics_.bytes_scattered += kPageSize;
      slot = source_mem_->swap_slot(p);
      break;
    }
    case mem::PageState::kSwapped:
      // Already on the portable device: only the descriptor moves.
      slot = source_mem_->swap_slot(p);
      break;
    case mem::PageState::kUntouched:
    case mem::PageState::kRemote:
      break;
  }
  scattered_slot_[p] = slot;
  if (st == mem::PageState::kSwapped || st == mem::PageState::kResident) {
    // Ownership passes to the destination now; the source must not free the
    // slot at teardown.
    source_mem_->forget_slot(p);
  }
  if (source_mem_->state(p) != mem::PageState::kRemote) {
    source_mem_->release_page(p);
  }
  return spent;
}

void ScatterGatherMigration::descriptor_delivered(PageIndex p) {
  // `scattered_slot_[p]` was fixed when the page was scattered (handled_ is
  // already set, so a later fault cannot rewrite it) — reading it here is
  // equivalent to the descriptor carrying the slot on the wire.
  if (dest_mem_->state(p) != mem::PageState::kRemote) return;  // fault overtook us
  if (scattered_slot_[p] == swap::kNoSlot) {
    dest_mem_->install_untouched(p);
  } else {
    dest_mem_->install_swapped(p, scattered_slot_[p]);
  }
}

void ScatterGatherMigration::gather(SimTime dt, std::uint32_t tick) {
  // Background prefetch out of the VMD into destination memory, up to the
  // reservation and a bandwidth share (it competes with the scatter stream
  // at the intermediaries, which the network model accounts for).
  double byte_budget =
      cluster_->network().link_bytes_per_sec() * to_seconds(dt) * 0.5;
  mem::GuestMemory* dest = dest_mem_;
  const std::uint64_t gathered_before = pages_gathered_;
  while (byte_budget > 0) {
    if (dest->resident_pages() + 1 > dest->reservation_pages()) break;
    // Next gatherable page (installed as swapped at the dest): word-scan the
    // destination's swapped bitmap instead of walking the state array.
    std::size_t candidate = dest->swapped_bitmap().find_next_set(gather_cursor_);
    if (candidate == Bitmap::npos) break;
    gather_cursor_ = candidate + 1;
    dest->swap_in_for_transfer(candidate, tick);
    ++pages_gathered_;
    byte_budget -= kPageSize;
  }
  if (pages_gathered_ != gathered_before) {
    AGILE_TRACE_COUNTER("migration", "gathered_pages", trace_id(),
                        pages_gathered_);
  }
}

SimTime ScatterGatherMigration::handle_fault(PageIndex p, bool,
                                             std::uint32_t tick) {
  SimTime latency = config_.fault_overhead;
  if (handled_.test(p)) {
    // Scattered, descriptor still in flight: resolve from the slot table; the
    // subsequent touch() pays the actual VMD read.
    if (scattered_slot_[p] == swap::kNoSlot) {
      dest_mem_->install_untouched(p);
    } else {
      dest_mem_->install_swapped(p, scattered_slot_[p]);
    }
    return latency;
  }
  // Source still authoritative for this page.
  handled_.set(p);
  net::Network& net = cluster_->network();
  net::NodeId dst = params_.dest->node();
  net::NodeId src = params_.source->node();
  mem::PageState st = source_mem_->state(p);
  AGILE_CHECK(st != mem::PageState::kRemote);
  if (st != mem::PageState::kUntouched && zero_elidable(p)) {
    // Zero content resolves like an untouched page: descriptor-only, no data
    // read. The source keeps any VMD slot it still holds (freed at teardown).
    ++metrics_.pages_zero_elided;
    st = mem::PageState::kUntouched;
  }
  switch (st) {
    case mem::PageState::kUntouched:
      scattered_slot_[p] = swap::kNoSlot;
      dest_mem_->install_untouched(p);
      break;
    case mem::PageState::kSwapped:
      // Point the destination at the existing VMD copy.
      scattered_slot_[p] = source_mem_->swap_slot(p);
      dest_mem_->install_swapped(p, scattered_slot_[p]);
      source_mem_->forget_slot(p);
      break;
    case mem::PageState::kResident:
      latency += net.rpc_latency(dst, src, full_page_bytes());
      net.consume_background(dst, src, config_.descriptor_bytes);
      net.consume_background(src, dst, full_page_bytes());
      metrics_.bytes_transferred += full_page_bytes();
      ++metrics_.pages_demand_served;
      AGILE_TRACE_INSTANT("migration", "demand_fault", trace_id(),
                          static_cast<double>(p));
      dest_mem_->install_resident(p, tick);
      break;
    case mem::PageState::kRemote:
      break;  // unreachable
  }
  if (source_mem_->state(p) != mem::PageState::kRemote) {
    source_mem_->release_page(p);
  }
  maybe_finish_scatter();
  return latency;
}

void ScatterGatherMigration::maybe_finish_scatter() {
  if (phase_ == Phase::kDone) return;
  if (handled_.count() != page_count() || !stream_->idle()) {
    if (handled_.count() == page_count() && !stream_->idle() &&
        phase_ == Phase::kScatter) {
      phase_ = Phase::kGatherOnly;
      set_phase(3, "gather");  // descriptors still draining
      AGILE_TRACE_SPAN_END("migration", "scatter", trace_id());
      AGILE_TRACE_SPAN_BEGIN("migration", "drain", trace_id());
    }
    return;
  }
  if (audit::enabled()) {
    // Scatter completion: every page was handled exactly once (scattered or
    // demand-resolved), and only handled pages can carry a slot descriptor.
    AGILE_CHECK_S(metrics_.pages_sent_descriptor <= page_count())
        << "more descriptors (" << metrics_.pages_sent_descriptor
        << ") than guest pages";
    handled_.deep_audit();
  }
  AGILE_TRACE_SPAN_END(
      "migration", phase_ == Phase::kGatherOnly ? "drain" : "scatter",
      trace_id());
  phase_ = Phase::kDone;
  set_phase(4, "done");
  scatter_done_ = cluster_->simulation().now();
  params_.machine->clear_remote_fault_handler();
  source_mem_->teardown(/*free_slots=*/true);
  AGILE_LOG_INFO("scatter-gather %s: source deprovisioned in %.1f s "
                 "(%.0f MiB scattered, %llu gathered so far)",
                 params_.machine->name().c_str(),
                 to_seconds(scatter_done_ - metrics_.start_time),
                 to_mib(metrics_.bytes_scattered),
                 static_cast<unsigned long long>(pages_gathered_));
  finish();
}

}  // namespace agile::migration
