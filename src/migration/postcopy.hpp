// Post-copy live migration (the Hines/Deshpande/Gopalan baseline).
//
// The VM is suspended immediately; once the CPU state lands, execution
// resumes at the destination with *no* memory. Two mechanisms fill it:
// demand paging (guest faults trap into the fault engine, which fetches the
// page from the source over the network — the source first swapping it in
// from its SSD if it was cold) and an active push sweep from the source.
// Every page travels exactly once; duplicates from push/fault races are
// detected at the receiver and dropped. Source memory is freed progressively
// as pages are delivered, which is what relieves source memory pressure.
#pragma once

#include "migration/migration.hpp"

namespace agile::migration {

class PostcopyMigration final : public MigrationManager {
 public:
  using MigrationManager::MigrationManager;

  const char* technique() const override { return "post-copy"; }

  /// Everything the destination does not yet hold (push + demand debt).
  std::uint64_t pages_owed() const override {
    return page_count() - received_.count();
  }

  /// Pages the destination received (for tests).
  std::uint64_t pages_received() const { return received_.count(); }

 protected:
  void on_tick(SimTime now, SimTime dt, std::uint32_t tick) override;

 private:
  enum class Phase { kInit, kFlipWait, kPush, kDone };

  SimTime handle_fault(PageIndex p, bool write, std::uint32_t tick);
  void deliver_page(PageIndex p);
  void maybe_finish();

  Phase phase_ = Phase::kInit;
  Bitmap sent_;      ///< Enqueued on the stream or served via a fault.
  Bitmap received_;  ///< Destination holds the authoritative copy.
  std::uint64_t cursor_ = 0;
  SimTime debt_ = 0;
};

}  // namespace agile::migration
