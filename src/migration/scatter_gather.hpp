// Scatter-Gather live migration (Deshpande et al., IEEE Cloud 2014 — the
// authors' companion technique, cited as related work [22] in the paper).
//
// Goal: *evict* the VM from the source as fast as possible, even when the
// destination cannot absorb it at line rate. Execution flips immediately
// (post-copy style). The source then "scatters" every page it still holds
// into the VM's portable per-VM swap device — the VMD's intermediate hosts —
// at NIC line rate, handing the destination a 16-byte descriptor per page.
// The destination "gathers": it prefetches pages back out of the VMD into
// its memory in the background, and demand faults are served from the VMD
// (or from the source, for pages not yet scattered).
//
// Compared to Agile migration: no live pre-copy round (nothing is sent in
// full on the direct channel except demand-fault responses), so the source
// is free after scattering its resident set once — the fastest
// deprovisioning of the four techniques, at the cost of a longer
// degradation tail at the destination.
#pragma once

#include "migration/migration.hpp"

namespace agile::migration {

class ScatterGatherMigration final : public MigrationManager {
 public:
  ScatterGatherMigration(host::Cluster* cluster, MigrationParams params,
                         MigrationConfig config);

  const char* technique() const override { return "scatter-gather"; }

  /// Pages the source still holds (not yet scattered or demand-resolved).
  std::uint64_t pages_owed() const override {
    return page_count() - handled_.count();
  }

  /// Fired at the execution flip (re-attach the portable device, etc.).
  void set_on_switchover(std::function<void()> fn) {
    on_switchover_ = std::move(fn);
  }

  /// When the source finished scattering (its memory is fully released);
  /// -1 while still scattering. The "deprovision time" metric.
  SimTime scatter_complete_time() const { return scatter_done_; }

  /// Pages the gatherer has prefetched from the VMD so far.
  std::uint64_t pages_gathered() const { return pages_gathered_; }

 protected:
  void on_tick(SimTime now, SimTime dt, std::uint32_t tick) override;

 private:
  enum class Phase { kInit, kFlipWait, kScatter, kGatherOnly, kDone };

  /// Source-side work of scattering page `p` (eviction / slot handoff /
  /// release); the 16-byte descriptor itself travels in a batched send.
  SimTime scatter_work(PageIndex p, std::uint32_t tick);
  /// Receiver side of one scattered descriptor (batch chunk callback).
  void descriptor_delivered(PageIndex p);
  void gather(SimTime dt, std::uint32_t tick);
  SimTime handle_fault(PageIndex p, bool write, std::uint32_t tick);
  void maybe_finish_scatter();

  Phase phase_ = Phase::kInit;
  Bitmap handled_;  ///< Source no longer holds this page.
  /// Slot each scattered page occupies on the per-VM device (kNoSlot marks a
  /// zero page); resolves faults that overtake their descriptor.
  std::vector<swap::SwapSlot> scattered_slot_;
  std::uint64_t scatter_cursor_ = 0;
  std::uint64_t gather_cursor_ = 0;
  std::uint64_t pages_gathered_ = 0;
  SimTime scatter_done_ = -1;
  SimTime debt_ = 0;
  std::function<void()> on_switchover_;
};

}  // namespace agile::migration
