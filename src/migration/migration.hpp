// Live migration framework.
//
// `MigrationManager` is the per-VM migration thread of the paper. A concrete
// manager (PrecopyMigration, PostcopyMigration, AgileMigration) is created
// for one VM, wired to the cluster's quantum loop, and drives the transfer
// state machine:
//
//  * a fresh destination-process memory is allocated (all pages kRemote),
//  * pages travel over a WireStream between the hosts' NICs,
//  * the migration thread's time budget (one quantum per tick) self-paces
//    the scan — swap-ins, page copies and a full send window all consume it,
//  * switchover suspends the VM, moves it (and its workload) to the
//    destination host, swaps in the destination memory, and resumes it,
//  * `MigrationMetrics` records the paper's measures: total time, downtime,
//    bytes on the migration channel, demand-fault counts, etc.
#pragma once

#include <functional>
#include <memory>

#include "host/cluster.hpp"
#include "mem/pagemap.hpp"
#include "migration/stream_group.hpp"
#include "stats/health.hpp"
#include "util/bitmap.hpp"

namespace agile::migration {

/// Modeled per-page compression of full-page payloads (PMigrate's
/// compress-new branch): the sender pays CPU time per page, the wire carries
/// the compressed payload. Descriptors, CPU state and demand-fault RPCs are
/// never compressed.
enum class Compression : std::uint8_t {
  kOff = 0,
  kFast = 1,   ///< LZO-class: cheap, modest ratio.
  kHeavy = 2,  ///< zlib-class: expensive, strong ratio.
};

const char* compression_name(Compression c);

struct MigrationConfig {
  Bytes page_header = 64;        ///< Wire framing per full page.
  Bytes descriptor_bytes = 16;   ///< SWAPPED/zero-page descriptor message.
  Bytes cpu_state_bytes = 4_MiB; ///< vCPU + virtual device state blob.
  SimTime downtime_target = msec(300);  ///< Pre-copy convergence target.
  std::uint32_t max_rounds = 30;        ///< Pre-copy iteration cap.
  /// Max stream backlog before the thread stalls. Must comfortably exceed
  /// one quantum of line rate (~12 MB at 1 Gbps / 100 ms) or the stream runs
  /// dry between scheduling quanta — with multiple streams, one quantum of
  /// the *aggregate* rate.
  Bytes send_window = 32_MiB;
  SimTime page_copy_cost = 2;    ///< µs of thread time per resident page sent.
  SimTime fault_overhead = 25;   ///< µs: UMEM trap + UMEMD dispatch.
  /// Parallel wire streams (1..StreamGroup::kMaxStreams). Run dispatch is
  /// deterministic round-robin; 1 keeps the single-TCP-connection model.
  std::uint32_t num_streams = 1;
  Compression compression = Compression::kOff;
  /// Compression model, per full page: thread µs charged to the sender and
  /// the payload size ratio on the wire.
  SimTime compress_fast_cost = 5;      ///< µs/page (LZO-class).
  double compress_fast_ratio = 0.55;
  SimTime compress_heavy_cost = 17;    ///< µs/page (zlib-class).
  double compress_heavy_ratio = 0.35;
};

struct MigrationMetrics {
  SimTime start_time = -1;
  SimTime switchover_time = -1;  ///< When execution flipped to the destination.
  SimTime end_time = -1;         ///< When the source released the last state.
  SimTime downtime = 0;

  Bytes bytes_transferred = 0;   ///< On the direct source→dest channel.
  Bytes bytes_from_swap_device = 0;  ///< Cold pages demand-read at the dest.
  Bytes bytes_scattered = 0;     ///< Source → intermediaries (scatter-gather).

  std::uint64_t pages_sent_full = 0;   ///< Full page payloads (incl. resends).
  std::uint64_t pages_sent_descriptor = 0;  ///< SWAPPED / zero-page markers.
  std::uint64_t pages_demand_served = 0;    ///< Network demand faults served.
  std::uint64_t pages_swap_faulted = 0;     ///< Dest faults served by the swap device.
  std::uint64_t pages_swapped_in_at_source = 0;  ///< Baseline swap-in cost.
  std::uint64_t duplicate_pages = 0;   ///< Push raced a demand fault.
  std::uint32_t precopy_rounds = 0;
  std::uint64_t pages_zero_elided = 0;  ///< Zero pages shipped as descriptors.
  Bytes compressed_bytes_saved = 0;     ///< full-page bytes minus wire bytes.

  bool completed = false;

  SimTime total_time() const {
    return (completed && start_time >= 0) ? end_time - start_time : -1;
  }
};

struct MigrationParams {
  vm::VirtualMachine* machine = nullptr;
  workload::Workload* load = nullptr;  ///< May be null (bare VM).
  host::Host* source = nullptr;
  host::Host* dest = nullptr;
  /// Swap device for the destination process (baselines: the destination
  /// host's partition; Agile: the VM's portable per-VM device).
  swap::SwapDevice* dest_swap = nullptr;
  Bytes dest_reservation = 0;  ///< cgroup reservation at the destination.
};

class MigrationManager {
 public:
  MigrationManager(host::Cluster* cluster, MigrationParams params,
                   MigrationConfig config);
  virtual ~MigrationManager();

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  /// Begins the migration (registers with the cluster quantum loop).
  void start();

  bool started() const { return started_; }
  bool completed() const { return metrics_.completed; }
  const MigrationMetrics& metrics() const { return metrics_; }

  /// Fires once when the migration completes.
  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }

  /// Fires from the destructor (before members tear down). The Testbed uses
  /// this to deregister the migration from its lane-affinity registry; the
  /// registrar must outlive the manager.
  void set_on_destroy(std::function<void(MigrationManager*)> fn) {
    on_destroy_ = std::move(fn);
  }

  virtual const char* technique() const = 0;

  /// Engine phase for observability: a small engine-defined code plus a
  /// stable human-readable name ("init", "live", "push", ...). Engines call
  /// `set_phase` at every transition; the codes order monotonically within
  /// one engine but are not comparable across techniques.
  int phase_code() const { return phase_code_; }
  const char* phase_name() const { return phase_name_; }

  /// Pages the engine still owes the destination over the wire (dirty set /
  /// unsent scan remainder — *not* cold pages served from the swap device).
  /// Engines override with their own debt notion; 0 once done.
  virtual std::uint64_t pages_owed() const = 0;

  /// Unsent bytes queued on the wire stream group (0 before start()).
  Bytes wire_backlog() const { return stream_ ? stream_->backlog() : 0; }

  /// Snapshot of this migration's health inputs at simulated time `now`;
  /// feed to a stats::MigrationHealthModel. Valid any time after start().
  stats::MigrationObservation sample_health(SimTime now) const;

  vm::VirtualMachine* machine() const { return params_.machine; }
  host::Host* source_host() const { return params_.source; }
  host::Host* dest_host() const { return params_.dest; }

  /// Destination-process memory. The pointer is stable from start() through
  /// the end of the migration (ownership moves into the VM at switchover,
  /// but the object does not).
  mem::GuestMemory* dest_memory() const { return dest_mem_; }
  /// Source-process memory (the VM's own until switchover, then retained
  /// here until completion).
  mem::GuestMemory* source_memory() const { return source_mem_; }

 protected:
  /// Per-quantum protocol step; `budget` is the migration thread's time.
  virtual void on_tick(SimTime now, SimTime dt, std::uint32_t tick) = 0;

  /// Moves execution to the destination: suspend accounting, host move,
  /// memory swap, resume. Subclasses call this at their switchover point,
  /// after `begin_suspend` + CPU-state delivery.
  void complete_switchover(std::uint32_t tick);

  /// Marks the VM suspended and remembers when (downtime starts).
  void begin_suspend();

  /// Wraps up: metrics, hook removal, completion callback. Subclasses finish
  /// source teardown before calling.
  void finish();

  std::uint64_t page_count() const { return params_.machine->page_count(); }
  Bytes full_page_bytes() const { return kPageSize + config_.page_header; }
  /// Wire size of one full-page payload after the modeled compression stage
  /// (== full_page_bytes() with compression off).
  Bytes wire_page_bytes() const { return wire_page_bytes_; }
  /// Thread µs per full page sent: the copy cost plus the compression cost.
  SimTime page_send_cost() const { return page_send_cost_; }
  /// Accounts `n` full pages offered to the wire: metrics bytes at the
  /// compressed size plus the savings counter/trace sample. Engines call this
  /// instead of open-coding `bytes_transferred += n * full_page_bytes()`.
  void account_full_pages(std::uint64_t n);
  /// True when page `p` can travel as a zero-page descriptor instead of a
  /// full payload (the destination installs it as untouched).
  bool zero_elidable(PageIndex p) const;
  /// Trace entity id: the migrating VM's lane.
  std::uint64_t trace_id() const { return params_.machine->config().trace_id; }
  /// Records a phase transition (see phase_code/phase_name). `name` must be
  /// a string literal; also emits a trace instant on the migration track.
  void set_phase(int code, const char* name);

  host::Cluster* cluster_;
  MigrationParams params_;
  MigrationConfig config_;
  MigrationMetrics metrics_;

  std::unique_ptr<StreamGroup> stream_;
  std::unique_ptr<mem::GuestMemory> dest_mem_owned_;  ///< Until switchover.
  mem::GuestMemory* dest_mem_ = nullptr;              ///< Stable view of it.
  mem::GuestMemory* source_mem_ = nullptr;
  std::unique_ptr<mem::GuestMemory> source_mem_owned_;  ///< After switchover.

 private:
  bool started_ = false;
  int phase_code_ = 0;
  const char* phase_name_ = "init";
  SimTime suspend_time_ = -1;
  std::uint64_t hook_id_ = 0;
  std::function<void()> on_complete_;
  std::function<void(MigrationManager*)> on_destroy_;
  Bytes wire_page_bytes_ = 0;     ///< Cached: header + compressed page body.
  SimTime page_send_cost_ = 0;    ///< Cached: copy + compression µs per page.
};

}  // namespace agile::migration
