// Agile live migration — the paper's contribution.
//
// One live pre-copy round transfers the resident working set in full while
// swapped-out (cold) pages are covered by 16-byte SWAPPED descriptors (page
// index + offset on the per-VM swap device) read from the pagemap — the
// migration never touches the swap device at the source. After that single
// round the VM flips to the destination (CPU state + dirty bitmap), which
// then fills the remainder two ways:
//
//   * pages dirtied during the live round: active push from the source plus
//     network demand paging, exactly like post-copy but over a set the size
//     of the *write* working set rather than the whole VM;
//   * cold pages: demand-paged straight from the portable per-VM swap device
//     (VMD) — they never cross the source link at all. These arrive through
//     the normal swap-in path (the descriptor made them look locally
//     swapped), so no fault-engine round trip to the source is needed.
//
// Source memory is released progressively as dirty pages are delivered; at
// completion, slot ownership for the cold set is handed to the destination
// and everything else at the source is reclaimed.
#pragma once

#include <functional>

#include "migration/migration.hpp"

namespace agile::migration {

class AgileMigration final : public MigrationManager {
 public:
  AgileMigration(host::Cluster* cluster, MigrationParams params,
                 MigrationConfig config);

  const char* technique() const override { return "agile"; }

  /// Invoked at switchover — the core layer uses it to re-attach the
  /// portable per-VM swap device to the destination host.
  void set_on_switchover(std::function<void()> fn) {
    on_switchover_ = std::move(fn);
  }

  /// Dirty pages still owed to the destination (0 once push completes).
  std::uint64_t dirty_remaining() const {
    return dirty_total_ - received_.count();
  }

  /// Live round: pages not yet scanned; after the flip: the dirty debt.
  std::uint64_t pages_owed() const override {
    if (phase_ == Phase::kInit || phase_ == Phase::kLiveRound) {
      return page_count() - cursor_;
    }
    return dirty_remaining();
  }

 protected:
  void on_tick(SimTime now, SimTime dt, std::uint32_t tick) override;

 private:
  enum class Phase { kInit, kLiveRound, kFlipWait, kPush, kDone };

  /// Run-batched live-round scan / post-flip push; each consumes `budget`
  /// thread time and returns what is left (negative = overdrawn into debt).
  SimTime scan_runs(SimTime budget, std::uint32_t tick);
  SimTime push_runs(SimTime budget, std::uint32_t tick);
  void end_live_round();
  void apply_dirty_invalidations();
  void handoff_cold_slots();
  SimTime handle_fault(PageIndex p, bool write, std::uint32_t tick);
  void deliver_dirty_page(PageIndex p);
  void maybe_finish();

  Phase phase_ = Phase::kInit;
  Bitmap dirty_log_;          ///< Writes during the live round.
  Bitmap installed_swapped_;  ///< Dest pages installed from SWAPPED descriptors.
  Bitmap dirty_;              ///< Snapshot at suspension: pages owed post-flip.
  Bitmap sent_;               ///< Dirty pages enqueued/served.
  Bitmap received_;           ///< Dirty pages the destination holds.
  /// Swap slot of each page as read from the PTE during the live round; the
  /// batched descriptor sends deliver from this buffer (the source may have
  /// dropped the slot by delivery time).
  std::vector<swap::SwapSlot> slot_at_scan_;
  std::uint64_t dirty_total_ = 0;
  std::uint64_t cursor_ = 0;       ///< Live-round scan position.
  std::uint64_t push_cursor_ = 0;  ///< Push-phase scan position.
  SimTime debt_ = 0;
  std::function<void()> on_switchover_;
};

}  // namespace agile::migration
