#include "migration/wire.hpp"

namespace agile::migration {

WireStream::WireStream(net::Network* network, net::NodeId src, net::NodeId dst)
    : network_(network) {
  AGILE_CHECK(network_ != nullptr);
  flow_ = network_->open_flow(src, dst, [this](Bytes n) { on_progress(n); });
}

WireStream::~WireStream() { network_->close_flow(flow_); }

void WireStream::send(Bytes bytes, std::function<void()> on_delivered) {
  AGILE_CHECK(bytes > 0);
  queue_.push_back({bytes, std::move(on_delivered)});
  network_->offer(flow_, bytes);
}

void WireStream::on_progress(Bytes n) {
  delivered_ += n;
  while (n > 0 && !queue_.empty()) {
    Message& m = queue_.front();
    if (m.remaining > n) {
      m.remaining -= n;
      return;
    }
    n -= m.remaining;
    // Move the message out before invoking: the callback may send more.
    auto fn = std::move(m.on_delivered);
    queue_.pop_front();
    if (fn) fn();
  }
}

}  // namespace agile::migration
