#include "migration/wire.hpp"

#include "trace/trace.hpp"

namespace agile::migration {

WireStream::WireStream(net::Network* network, net::NodeId src, net::NodeId dst,
                       std::uint64_t trace_id, const char* trace_component)
    : network_(network), trace_id_(trace_id), trace_component_(trace_component) {
  AGILE_CHECK(network_ != nullptr);
  AGILE_CHECK(trace_component_ != nullptr);
  flow_ = network_->open_flow(src, dst, [this](Bytes n) { on_progress(n); });
}

WireStream::~WireStream() {
  if (busy_span_open_) AGILE_TRACE_SPAN_END(trace_component_, "busy", trace_id_);
  network_->close_flow(flow_);
}

void WireStream::send_batch(std::uint64_t items, Bytes item_bytes,
                            ChunkFn on_items) {
  AGILE_CHECK(items > 0 && item_bytes > 0);
  if (!busy_span_open_ && trace::enabled()) {
    AGILE_TRACE_SPAN_BEGIN(trace_component_, "busy", trace_id_);
    busy_span_open_ = true;
  }
  queue_.push_back({item_bytes, items, 0, std::move(on_items)});
  offered_ += items * item_bytes;
  items_offered_ += items;
  network_->offer(flow_, items * item_bytes);
}

void WireStream::audit_conservation() const {
  // The network decrements the flow backlog before any delivery callback
  // fires, so at every observation point: offered == delivered + in flight.
  AGILE_CHECK_S(offered_ == delivered_ + network_->backlog(flow_))
      << "wire flow leaks bytes: offered " << offered_ << ", delivered "
      << delivered_ << ", backlog " << network_->backlog(flow_);
  AGILE_CHECK_S(items_completed_ <= items_offered_)
      << "more item completions (" << items_completed_ << ") than sends ("
      << items_offered_ << ")";
  // Batch chunk delivery must be tick-equivalent to per-item sends: the
  // delivered byte total decomposes exactly into whole completed items plus
  // the partial bytes of the single item at the FIFO head.
  Bytes partial = queue_.empty() ? 0 : queue_.front().partial;
  AGILE_CHECK_S(delivered_ == items_completed_bytes_ + partial)
      << "delivered " << delivered_ << " bytes but item accounting covers "
      << items_completed_bytes_ << " + partial " << partial;
  if (queue_.empty()) {
    AGILE_CHECK_S(items_completed_ == items_offered_)
        << "idle stream with " << items_offered_ - items_completed_
        << " unaccounted items";
  }
}

void WireStream::on_progress(Bytes n) {
  delivered_ += n;
  // Per-quantum stream telemetry (the flow delivers once per network
  // quantum): backlog after this delivery, cumulative bytes received.
  AGILE_TRACE_COUNTER(trace_component_, "backlog_bytes", trace_id_,
                      network_->backlog(flow_));
  AGILE_TRACE_COUNTER(trace_component_, "delivered_bytes", trace_id_, delivered_);
  while (n > 0 && !queue_.empty()) {
    // Deque references stay valid across push_back, so callbacks may queue
    // more messages while `m` is still the front entry.
    Message& m = queue_.front();
    AGILE_DCHECK_GT(m.items_left, 0u);
    AGILE_DCHECK_LT(m.partial, m.item_bytes);
    Bytes avail = m.partial + n;
    std::uint64_t done = avail / m.item_bytes;
    if (done >= m.items_left) {
      // The whole entry completes; pop before invoking so the callback can
      // observe an idle stream / send follow-ups, then pass leftover bytes
      // to the next entry.
      std::uint64_t items = m.items_left;
      n = avail - items * m.item_bytes;
      items_completed_ += items;
      items_completed_bytes_ += items * m.item_bytes;
      ChunkFn fn = std::move(m.on_items);
      queue_.pop_front();
      if (fn) fn(items);
      continue;
    }
    // Partial progress: some (possibly zero) items of the batch completed;
    // everything delivered this quantum is consumed by the front entry.
    m.items_left -= done;
    m.partial = avail - done * m.item_bytes;
    items_completed_ += done;
    items_completed_bytes_ += done * m.item_bytes;
    if (done > 0 && m.on_items) m.on_items(done);
    n = 0;
    break;
  }
  // The FIFO must never over-deliver: leftover bytes with an empty queue
  // would mean the network handed us more than was ever offered.
  AGILE_CHECK_S(n == 0) << "wire stream over-delivered by " << n << " bytes";
  if (busy_span_open_ && queue_.empty()) {
    AGILE_TRACE_SPAN_END(trace_component_, "busy", trace_id_);
    busy_span_open_ = false;
  }
  if (audit::enabled()) audit_conservation();
  if (progress_listener_) progress_listener_();
}

}  // namespace agile::migration
