#include "migration/wire.hpp"

namespace agile::migration {

WireStream::WireStream(net::Network* network, net::NodeId src, net::NodeId dst)
    : network_(network) {
  AGILE_CHECK(network_ != nullptr);
  flow_ = network_->open_flow(src, dst, [this](Bytes n) { on_progress(n); });
}

WireStream::~WireStream() { network_->close_flow(flow_); }

void WireStream::send_batch(std::uint64_t items, Bytes item_bytes,
                            ChunkFn on_items) {
  AGILE_CHECK(items > 0 && item_bytes > 0);
  queue_.push_back({item_bytes, items, 0, std::move(on_items)});
  network_->offer(flow_, items * item_bytes);
}

void WireStream::on_progress(Bytes n) {
  delivered_ += n;
  while (n > 0 && !queue_.empty()) {
    // Deque references stay valid across push_back, so callbacks may queue
    // more messages while `m` is still the front entry.
    Message& m = queue_.front();
    Bytes avail = m.partial + n;
    std::uint64_t done = avail / m.item_bytes;
    if (done >= m.items_left) {
      // The whole entry completes; pop before invoking so the callback can
      // observe an idle stream / send follow-ups, then pass leftover bytes
      // to the next entry.
      std::uint64_t items = m.items_left;
      n = avail - items * m.item_bytes;
      ChunkFn fn = std::move(m.on_items);
      queue_.pop_front();
      if (fn) fn(items);
      continue;
    }
    // Partial progress: some (possibly zero) items of the batch completed.
    m.items_left -= done;
    m.partial = avail - done * m.item_bytes;
    if (done > 0 && m.on_items) m.on_items(done);
    return;
  }
}

}  // namespace agile::migration
