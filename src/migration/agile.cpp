#include "migration/agile.hpp"

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::migration {

AgileMigration::AgileMigration(host::Cluster* cluster, MigrationParams params,
                               MigrationConfig config)
    : MigrationManager(cluster, params, config) {
  // Agile requires the *same* portable per-VM swap device on both sides:
  // that is what makes the SWAPPED descriptors meaningful at the destination.
  AGILE_CHECK_MSG(params.dest_swap == params.machine->memory().swap_device(),
                  "Agile migration needs the portable per-VM swap device");
}

void AgileMigration::on_tick(SimTime, SimTime dt, std::uint32_t tick) {
  if (phase_ == Phase::kInit) {
    dirty_log_.reset(page_count(), false);
    installed_swapped_.reset(page_count(), false);
    slot_at_scan_.assign(page_count(), swap::kNoSlot);
    source_mem_->attach_dirty_log(&dirty_log_);
    cursor_ = 0;
    phase_ = Phase::kLiveRound;
    set_phase(1, "live-round");
    AGILE_TRACE_SPAN_BEGIN("migration", "live_round", trace_id());
  }
  if (phase_ == Phase::kFlipWait) return;

  SimTime budget = dt - debt_;
  debt_ = 0;
  if (budget <= 0) {
    debt_ = -budget;
    return;
  }

  if (phase_ == Phase::kLiveRound) {
    budget = scan_runs(budget, tick);
  } else if (phase_ == Phase::kPush) {
    budget = push_runs(budget, tick);
  }
  if (budget < 0) debt_ = -budget;
}

SimTime AgileMigration::scan_runs(SimTime budget, std::uint32_t) {
  // The live-round scan mutates nothing at the source, so a PTE run read at
  // the top of the tick stays valid for the whole batch: one class run
  // collapses into one batch send.
  mem::Pagemap pagemap(*source_mem_);
  mem::GuestMemory* dest = dest_mem_;
  while (budget > 0) {
    const Bytes backlog = stream_->backlog();
    if (backlog >= config_.send_window) break;
    if (cursor_ >= page_count()) {
      end_live_round();
      break;
    }
    const PageIndex p = cursor_;  // lambdas re-capture a mutable copy below
    PageIndex limit = pagemap.entry_run_end(p, page_count());
    const mem::PagemapEntry e = pagemap.entry(p);
    bool zero_run = false;
    if (e.present && source_mem_->zero_tracking()) {
      // Sub-split present runs on zero-content boundaries: an all-zero
      // stretch collapses into a descriptor batch. Gated on tracking so
      // default memories keep the O(1)-per-run scan. Swapped zero pages need
      // no elision — they already travel as 16-byte SWAPPED descriptors.
      zero_run = source_mem_->is_zero_page(p);
      PageIndex z = p + 1;
      while (z < limit && source_mem_->is_zero_page(z) == zero_run) ++z;
      limit = z;
    }
    // Full pages cost the copy loop; descriptor assembly is nearly free.
    const SimTime cost =
        e.present ? (zero_run ? config_.page_copy_cost : page_send_cost()) : 1;
    const Bytes item = e.present && !zero_run ? wire_page_bytes()
                                              : config_.descriptor_bytes;
    std::uint64_t n = limit - p;
    n = std::min(n, (static_cast<std::uint64_t>(budget) +
                     static_cast<std::uint64_t>(cost) - 1) /
                        static_cast<std::uint64_t>(cost));
    n = std::min(n, (config_.send_window - backlog + item - 1) / item);
    cursor_ = p + n;
    budget -= static_cast<SimTime>(n) * cost;
    if (e.swapped) {
      // The whole point: ship the 16-byte offsets, not the 4 KiB pages. The
      // slots are captured at scan time — the source drops a slot the moment
      // the guest writes to its page, but the descriptor on the wire keeps
      // the value the PTE held when it was read.
      for (PageIndex q = p; q < p + n; ++q) {
        slot_at_scan_[q] = static_cast<swap::SwapSlot>(pagemap.entry(q).swap_offset);
      }
      metrics_.pages_sent_descriptor += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      Bitmap* installed = &installed_swapped_;
      const swap::SwapSlot* slots = slot_at_scan_.data();
      stream_->send_batch(n, config_.descriptor_bytes,
                          [dest, installed, slots, p = p](std::uint64_t k) mutable {
                            dest->install_swapped_batch(p, {slots + p, k});
                            installed->set_range(p, p + k);
                            p += k;
                          });
    } else if (!e.present || zero_run) {  // untouched or zero-elided pages
      metrics_.pages_sent_descriptor += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      if (zero_run) metrics_.pages_zero_elided += n;
      stream_->send_batch(n, config_.descriptor_bytes,
                          [dest, p = p](std::uint64_t k) mutable {
                            for (std::uint64_t i = 0; i < k; ++i) {
                              dest->install_untouched(p++);
                            }
                          });
    } else {
      account_full_pages(n);
      host::Cluster* cluster = cluster_;
      stream_->send_batch(n, wire_page_bytes(),
                          [dest, p = p, cluster](std::uint64_t k) mutable {
                            dest->receive_overwrite_range(p, p + k,
                                                          cluster->tick_index());
                            p += k;
                          });
    }
  }
  return budget;
}

SimTime AgileMigration::push_runs(SimTime budget, std::uint32_t tick) {
  while (budget > 0) {
    const Bytes backlog = stream_->backlog();
    if (backlog >= config_.send_window) break;
    // `sent_` holds only dirty pages as clear bits; the rest is pre-marked,
    // so a clear run is a run of owed pages.
    Bitmap::Run run = sent_.next_clear_run(push_cursor_);
    if (run.empty()) break;
    const PageIndex p = run.begin;
    if (source_mem_->state(p) == mem::PageState::kUntouched) {
      // Descriptor run: uniform cost and no mid-run class changes (nothing
      // here swaps anything in).
      const PageIndex limit = source_mem_->state_run_end(p, run.end);
      std::uint64_t n = limit - p;
      n = std::min(n, (static_cast<std::uint64_t>(budget) +
                       config_.page_copy_cost - 1) /
                          config_.page_copy_cost);
      n = std::min(n, (config_.send_window - backlog +
                       config_.descriptor_bytes - 1) /
                          config_.descriptor_bytes);
      sent_.set_range(p, p + n);
      push_cursor_ = p + n;
      budget -= static_cast<SimTime>(n) * config_.page_copy_cost;
      metrics_.pages_sent_descriptor += n;
      metrics_.bytes_transferred += n * config_.descriptor_bytes;
      stream_->send_batch(n, config_.descriptor_bytes,
                          [this, p = p](std::uint64_t k) mutable {
                            for (std::uint64_t i = 0; i < k; ++i) {
                              deliver_dirty_page(p++);
                            }
                          });
      continue;
    }
    // Full-copy stretch (resident or swapped pages). A swap-in can evict
    // other pages — possibly inside this run — so class and cost are re-read
    // page by page while the messages coalesce into one batch.
    PageIndex q = p;
    std::uint64_t n = 0;
    while (q < run.end && budget > 0 &&
           backlog + n * wire_page_bytes() < config_.send_window) {
      const mem::PageState st = source_mem_->state(q);
      AGILE_CHECK_MSG(st != mem::PageState::kRemote, "pushing a released page");
      if (st == mem::PageState::kUntouched) break;
      // No zero-elision branch here: the push set is exactly the dirty set,
      // and a guest write clears the zero mark, so dirty pages are never zero.
      SimTime spent = page_send_cost();
      if (st == mem::PageState::kSwapped) {
        // Rare: dirtied during the live round, then evicted again. Reading
        // the per-VM device is a remote-memory hit, not an SSD seek.
        spent += source_mem_->swap_in_for_transfer(q, tick);
      }
      budget -= spent;
      ++n;
      ++q;
    }
    account_full_pages(n);
    sent_.set_range(p, q);
    push_cursor_ = q;
    stream_->send_batch(n, wire_page_bytes(),
                        [this, p = p](std::uint64_t k) mutable {
                          for (std::uint64_t i = 0; i < k; ++i) {
                            deliver_dirty_page(p++);
                          }
                        });
  }
  return budget;
}

void AgileMigration::end_live_round() {
  metrics_.precopy_rounds = 1;
  begin_suspend();
  source_mem_->detach_dirty_log();
  // Snapshot the dirty set; nothing can dirty pages while suspended.
  dirty_ = dirty_log_;
  dirty_total_ = dirty_.count();
  // Pre-mark non-dirty pages as sent so the push sweep only visits the owed set.
  sent_.reset(page_count(), true);
  received_.reset(page_count(), false);
  for (Bitmap::Run r = dirty_.next_set_run(0); !r.empty();
       r = dirty_.next_set_run(r.end)) {
    sent_.clear_range(r.begin, r.end);
  }
  push_cursor_ = 0;

  if (audit::enabled()) {
    // Every page was classified exactly once during the live round: the
    // cursor sweep visits each PTE once, so full-page and swap-offset
    // (descriptor) accounting must sum to exactly the guest size, and the
    // byte total must decompose into those two message classes.
    AGILE_CHECK_S(metrics_.pages_sent_full + metrics_.pages_sent_descriptor ==
                  page_count())
        << "live round classified " << metrics_.pages_sent_full << " full + "
        << metrics_.pages_sent_descriptor << " descriptor pages, guest has "
        << page_count();
    AGILE_CHECK_S(metrics_.bytes_transferred ==
                  metrics_.pages_sent_full * wire_page_bytes() +
                      metrics_.pages_sent_descriptor * config_.descriptor_bytes)
        << "live-round byte total does not decompose into page classes";
    dirty_.deep_audit();
    sent_.deep_audit();
  }

  AGILE_LOG_INFO("agile %s: live round done, %llu dirty pages owed post-flip",
                 params_.machine->name().c_str(),
                 static_cast<unsigned long long>(dirty_total_));
  AGILE_TRACE_SPAN_END("migration", "live_round", trace_id());
  AGILE_TRACE_SPAN_BEGIN("migration", "flip_wait", trace_id());
  AGILE_TRACE_INSTANT("migration", "round_dirty_left", trace_id(),
                      static_cast<double>(dirty_total_));

  // CPU state + the dirty bitmap travel behind every queued page message.
  // Fenced: with multiple streams the flip may not run until every lane has
  // drained the live-round copies queued before it.
  Bytes flip_bytes = config_.cpu_state_bytes + (page_count() + 7) / 8;
  metrics_.bytes_transferred += flip_bytes;
  stream_->send_fenced(flip_bytes, [this] {
    apply_dirty_invalidations();
    handoff_cold_slots();
    complete_switchover(cluster_->tick_index());
    AGILE_TRACE_SPAN_END("migration", "flip_wait", trace_id());
    AGILE_TRACE_SPAN_BEGIN("migration", "push", trace_id());
    params_.machine->set_remote_fault_handler(
        [this](PageIndex p, bool write, std::uint32_t t) {
          return handle_fault(p, write, t);
        });
    if (on_switchover_) on_switchover_();
    phase_ = Phase::kPush;
    set_phase(3, "push");
    maybe_finish();  // a write-free live round leaves nothing owed
  });
  phase_ = Phase::kFlipWait;
  set_phase(2, "flip-wait");
}

void AgileMigration::apply_dirty_invalidations() {
  // Pages the source dirtied after their live-round copy went out are stale
  // at the destination. Descriptor-installed pages lost their slot when the
  // source wrote to them (swap-cache drop), so the destination must not free
  // those slots; pages it evicted itself own their slots. Dirty runs are
  // sub-split on slot-ownership boundaries so each sub-run invalidates with
  // a uniform free_slot policy.
  for (Bitmap::Run r = dirty_.next_set_run(0); !r.empty();
       r = dirty_.next_set_run(r.end)) {
    PageIndex p = r.begin;
    while (p < r.end) {
      const bool installed = installed_swapped_.test(p);
      PageIndex q = p + 1;
      while (q < r.end && installed_swapped_.test(q) == installed) ++q;
      dest_mem_->invalidate_range_to_remote(p, q, /*free_slot=*/!installed);
      p = q;
    }
  }
}

void AgileMigration::deliver_dirty_page(PageIndex p) {
  AGILE_DCHECK(dirty_.test(p)) << "push delivered page " << p
                               << " outside the dirty set";
  if (received_.test(p)) {
    ++metrics_.duplicate_pages;
  } else {
    received_.set(p);
    if (source_mem_->state(p) == mem::PageState::kUntouched) {
      dest_mem_->install_untouched(p);
    } else {
      dest_mem_->install_resident(p, cluster_->tick_index());
    }
  }
  source_mem_->release_page(p);
  maybe_finish();
}

SimTime AgileMigration::handle_fault(PageIndex p, bool, std::uint32_t tick) {
  // Only pages dirtied during the live round can still be kRemote at the
  // destination; cold pages were installed as locally-swapped and take the
  // ordinary swap-in path against the per-VM device.
  AGILE_CHECK_MSG(dirty_.test(p), "remote fault outside the dirty set");
  AGILE_CHECK(!received_.test(p));
  SimTime latency = config_.fault_overhead;
  net::Network& net = cluster_->network();
  net::NodeId dst = params_.dest->node();
  net::NodeId src = params_.source->node();

  mem::PageState st = source_mem_->state(p);
  AGILE_CHECK(st != mem::PageState::kRemote);
  if (st == mem::PageState::kSwapped) {
    latency += source_mem_->swap_in_for_transfer(p, tick, /*sequential=*/false);
    st = mem::PageState::kResident;
  }
  if (st == mem::PageState::kUntouched) {
    latency += net.rpc_latency(dst, src, config_.descriptor_bytes);
    net.consume_background(dst, src, config_.descriptor_bytes);
    net.consume_background(src, dst, config_.descriptor_bytes);
    metrics_.bytes_transferred += config_.descriptor_bytes;
    dest_mem_->install_untouched(p);
  } else {
    latency += net.rpc_latency(dst, src, full_page_bytes());
    net.consume_background(dst, src, config_.descriptor_bytes);
    net.consume_background(src, dst, full_page_bytes());
    metrics_.bytes_transferred += full_page_bytes();
    dest_mem_->install_resident(p, tick);
  }
  sent_.set(p);
  received_.set(p);
  ++metrics_.pages_demand_served;
  AGILE_TRACE_INSTANT("migration", "demand_fault", trace_id(),
                      static_cast<double>(p));
  source_mem_->release_page(p);
  maybe_finish();
  return latency;
}

void AgileMigration::handoff_cold_slots() {
  // The source "disconnects" from the per-VM swap device here (paper §IV-B):
  // every slot the destination now references — the live cold set — stops
  // being the source's to manage, so a later guest write at the destination
  // can drop the swap copy without the source double-freeing it at teardown.
  // The source keeps managing only slots the destination never learned about
  // (its own swap-cache copies and post-scan re-evictions of dirty pages).
  std::uint64_t handed_over = 0;
  for (std::size_t p = installed_swapped_.find_next_set(0); p != Bitmap::npos;
       p = installed_swapped_.find_next_set(p + 1)) {
    if (dest_mem_->state(p) == mem::PageState::kSwapped) {
      source_mem_->forget_slot(p);
      ++handed_over;
    }
  }
  AGILE_LOG_INFO("agile %s: handed %llu cold-page slots to the destination",
                 params_.machine->name().c_str(),
                 static_cast<unsigned long long>(handed_over));
  AGILE_TRACE_INSTANT("migration", "slot_handoff", trace_id(),
                      static_cast<double>(handed_over));
}

void AgileMigration::maybe_finish() {
  if (phase_ != Phase::kPush || received_.count() != dirty_total_) return;
  if (audit::enabled()) {
    // Completion implies the owed set drained exactly: every page is marked
    // sent and every received page was owed.
    AGILE_CHECK_S(sent_.count() == page_count())
        << "finishing with " << page_count() - sent_.count() << " unsent pages";
    received_.deep_audit();
  }
  phase_ = Phase::kDone;
  set_phase(4, "done");
  AGILE_TRACE_SPAN_END("migration", "push", trace_id());
  params_.machine->clear_remote_fault_handler();
  // Reclaim what the source still holds: frames, swap-cache copies of pages
  // that were sent in full, and re-evicted dirty pages' slots. None of these
  // are referenced by the destination (see handoff_cold_slots).
  source_mem_->teardown(/*free_slots=*/true);
  finish();
}

}  // namespace agile::migration
