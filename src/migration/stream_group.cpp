#include "migration/stream_group.hpp"

#include "util/check.hpp"

namespace agile::migration {
namespace {

// Trace components for the wire lanes. Lane 0 keeps the plain "wire" thread
// so single-stream traces are byte-identical to the pre-StreamGroup output;
// extra lanes get their own thread in the VM's trace process. Static storage:
// the trace recorder keeps the pointers.
const char* lane_component(std::size_t lane) {
  static constexpr const char* kLane[] = {
      "wire",     "wire.s1",  "wire.s2",  "wire.s3",
      "wire.s4",  "wire.s5",  "wire.s6",  "wire.s7",
      "wire.s8",  "wire.s9",  "wire.s10", "wire.s11",
      "wire.s12", "wire.s13", "wire.s14", "wire.s15",
  };
  static_assert(sizeof(kLane) / sizeof(kLane[0]) == StreamGroup::kMaxStreams);
  return kLane[lane < StreamGroup::kMaxStreams ? lane
                                               : StreamGroup::kMaxStreams - 1];
}

}  // namespace

StreamGroup::StreamGroup(net::Network* network, net::NodeId src,
                         net::NodeId dst, std::uint64_t trace_id,
                         std::uint32_t num_streams) {
  AGILE_CHECK_MSG(num_streams >= 1 && num_streams <= kMaxStreams,
                  "num_streams out of range");
  lanes_.reserve(num_streams);
  for (std::uint32_t k = 0; k < num_streams; ++k) {
    lanes_.push_back(std::make_unique<WireStream>(network, src, dst, trace_id,
                                                  lane_component(k)));
    lanes_.back()->set_progress_listener([this] { on_lane_progress(); });
  }
}

WireStream& StreamGroup::next_lane() {
  AGILE_CHECK_MSG(!fence_pending_,
                  "send while a stream-group fence is pending");
  // Engines send between network quanta, so every delivery callback of the
  // previous quantum has run: conservation must hold exactly here.
  if (audit::enabled()) audit_group(/*exact=*/true);
  WireStream& lane = *lanes_[next_lane_];
  next_lane_ = (next_lane_ + 1) % lanes_.size();
  return lane;
}

void StreamGroup::send_batch(std::uint64_t items, Bytes item_bytes,
                             ChunkFn on_items) {
  WireStream& lane = next_lane();
  lane.send_batch(items, item_bytes, std::move(on_items));
  AGILE_DCHECK_LE(lane.delivered_bytes(), lane.offered_bytes())
      << "lane delivered more than was ever offered";
}

void StreamGroup::send_fenced(Bytes bytes, InlineFunction<void()> on_delivered) {
  WireStream& lane = next_lane();
  fence_pending_ = true;
  fence_delivered_ = false;
  fence_fn_ = std::move(on_delivered);
  fence_floor_.resize(lanes_.size());
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    fence_floor_[k] = lanes_[k]->offered_bytes();
  }
  // The fence completion runs inside the lane's own chunk callback, so with
  // one lane (or with all other lanes already drained) the callback fires at
  // exactly the point a plain `send` would have fired it.
  lane.send(bytes, [this] {
    fence_delivered_ = true;
    maybe_fire_fence();
  });
}

void StreamGroup::maybe_fire_fence() {
  if (!fence_pending_ || !fence_delivered_) return;
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    if (lanes_[k]->delivered_bytes() < fence_floor_[k]) return;
  }
  fence_pending_ = false;
  fence_delivered_ = false;
  InlineFunction<void()> fn = std::move(fence_fn_);
  if (fn) fn();
}

void StreamGroup::on_lane_progress() {
  if (audit::enabled()) audit_group(/*exact=*/false);
  maybe_fire_fence();
}

void StreamGroup::audit_group(bool exact) const {
  Bytes offered = 0;
  Bytes delivered = 0;
  Bytes in_flight = 0;
  for (const auto& lane : lanes_) {
    offered += lane->offered_bytes();
    delivered += lane->delivered_bytes();
    in_flight += lane->backlog();
  }
  if (exact) {
    // Per-quantum fair-share rounding across N flows on one link must still
    // conserve bytes for the group as a whole.
    AGILE_CHECK_S(offered == delivered + in_flight)
        << "stream group leaks bytes: offered " << offered << ", delivered "
        << delivered << ", in flight " << in_flight;
  } else {
    // Mid-quantum observation (a lane's delivery callback): the network
    // decrements every flow's backlog before it runs any callback, so a
    // sibling lane's delivery may not be notified yet — bytes can transiently
    // sit in neither column, but the group must never OVER-deliver.
    AGILE_CHECK_S(delivered + in_flight <= offered)
        << "stream group over-delivered: offered " << offered << ", delivered "
        << delivered << ", in flight " << in_flight;
  }
}

Bytes StreamGroup::backlog() const {
  Bytes total = 0;
  for (const auto& lane : lanes_) total += lane->backlog();
  return total;
}

Bytes StreamGroup::delivered_bytes() const {
  Bytes total = 0;
  for (const auto& lane : lanes_) total += lane->delivered_bytes();
  return total;
}

Bytes StreamGroup::offered_bytes() const {
  Bytes total = 0;
  for (const auto& lane : lanes_) total += lane->offered_bytes();
  return total;
}

bool StreamGroup::idle() const {
  for (const auto& lane : lanes_) {
    if (!lane->idle()) return false;
  }
  return true;
}

std::size_t StreamGroup::queued_messages() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->queued_messages();
  return total;
}

}  // namespace agile::migration
