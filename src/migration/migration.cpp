#include "migration/migration.hpp"

#include <cmath>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::migration {

const char* compression_name(Compression c) {
  switch (c) {
    case Compression::kOff: return "off";
    case Compression::kFast: return "fast";
    case Compression::kHeavy: return "heavy";
  }
  return "?";
}

MigrationManager::MigrationManager(host::Cluster* cluster,
                                   MigrationParams params,
                                   MigrationConfig config)
    : cluster_(cluster), params_(params), config_(config) {
  AGILE_CHECK(cluster_ != nullptr);
  AGILE_CHECK(params_.machine != nullptr);
  AGILE_CHECK(params_.source != nullptr && params_.dest != nullptr);
  AGILE_CHECK(params_.dest_swap != nullptr);
  AGILE_CHECK(params_.dest_reservation > 0);
  AGILE_CHECK_MSG(params_.source->has_vm(params_.machine),
                  "VM is not running on the source host");
  AGILE_CHECK_MSG(config_.num_streams >= 1 &&
                      config_.num_streams <= StreamGroup::kMaxStreams,
                  "num_streams out of range");
  AGILE_CHECK(config_.compress_fast_ratio > 0 && config_.compress_fast_ratio <= 1.0);
  AGILE_CHECK(config_.compress_heavy_ratio > 0 && config_.compress_heavy_ratio <= 1.0);
  // Resolve the compression model once: the page body shrinks by the class
  // ratio (header framing does not compress), the sender's thread pays the
  // class cost on top of the copy cost. Off keeps both identical to the
  // uncompressed path, bit for bit.
  double ratio = 1.0;
  SimTime compress_cost = 0;
  switch (config_.compression) {
    case Compression::kOff:
      break;
    case Compression::kFast:
      ratio = config_.compress_fast_ratio;
      compress_cost = config_.compress_fast_cost;
      break;
    case Compression::kHeavy:
      ratio = config_.compress_heavy_ratio;
      compress_cost = config_.compress_heavy_cost;
      break;
  }
  Bytes body = config_.compression == Compression::kOff
                   ? kPageSize
                   : static_cast<Bytes>(
                         std::ceil(static_cast<double>(kPageSize) * ratio));
  wire_page_bytes_ = config_.page_header + body;
  page_send_cost_ = config_.page_copy_cost + compress_cost;
}

void MigrationManager::account_full_pages(std::uint64_t n) {
  metrics_.pages_sent_full += n;
  metrics_.bytes_transferred += n * wire_page_bytes_;
  if (wire_page_bytes_ == full_page_bytes()) return;  // compression off
  metrics_.compressed_bytes_saved += n * (full_page_bytes() - wire_page_bytes_);
  // Sampled only while compressing, so default traces stay byte-identical.
  AGILE_TRACE_COUNTER("wire", "compressed_bytes_saved", trace_id(),
                      metrics_.compressed_bytes_saved);
}

bool MigrationManager::zero_elidable(PageIndex p) const {
  return source_mem_->is_zero_page(p);
}

void MigrationManager::set_phase(int code, const char* name) {
  if (phase_code_ == code) return;
  phase_code_ = code;
  phase_name_ = name;
  AGILE_TRACE_INSTANT("migration", name, trace_id(),
                      static_cast<double>(code));
}

stats::MigrationObservation MigrationManager::sample_health(
    SimTime now) const {
  stats::MigrationObservation obs;
  obs.now = now;
  obs.bytes_transferred = metrics_.bytes_transferred;
  obs.pages_remote = dest_mem_ != nullptr ? dest_mem_->remote_pages()
                                          : page_count();
  obs.pages_owed = pages_owed();
  obs.backlog_bytes = wire_backlog();
  obs.wire_page_bytes = wire_page_bytes_;
  obs.cpu_state_bytes = config_.cpu_state_bytes;
  obs.switched_over = metrics_.switchover_time >= 0;
  obs.downtime_usec = metrics_.downtime;
  return obs;
}

MigrationManager::~MigrationManager() {
  if (on_destroy_) on_destroy_(this);
  if (hook_id_ != 0) cluster_->remove_hook(hook_id_);
}

void MigrationManager::start() {
  AGILE_CHECK_MSG(!started_, "migration already started");
  started_ = true;
  metrics_.start_time = cluster_->simulation().now();

  AGILE_TRACE_SPAN_BEGIN("migration", "migrate", trace_id());

  source_mem_ = &params_.machine->memory();

  mem::GuestMemoryConfig dest_cfg;
  dest_cfg.size = params_.machine->config().memory;
  dest_cfg.reservation = params_.dest_reservation;
  dest_mem_owned_ = std::make_unique<mem::GuestMemory>(
      dest_cfg, params_.dest_swap,
      cluster_->make_rng(params_.machine->name() + "/dest-mem"));
  dest_mem_owned_->mark_all_remote();
  dest_mem_ = dest_mem_owned_.get();
  // The destination process's memory traces on the same lane as the VM but a
  // separate track, so source evictions and dest installs don't interleave.
  dest_mem_owned_->set_trace_identity("mem.dest", trace_id());

  stream_ = std::make_unique<StreamGroup>(
      &cluster_->network(), params_.source->node(), params_.dest->node(),
      trace_id(), config_.num_streams);

  hook_id_ = cluster_->add_control_hook(
      [this](SimTime now, SimTime dt, std::uint32_t tick) {
        if (!metrics_.completed) on_tick(now, dt, tick);
      });

  AGILE_LOG_INFO("%s migration of %s: %s -> %s starting", technique(),
                 params_.machine->name().c_str(),
                 params_.source->name().c_str(), params_.dest->name().c_str());
}

void MigrationManager::begin_suspend() {
  AGILE_CHECK(suspend_time_ < 0);
  params_.machine->suspend();
  suspend_time_ = cluster_->simulation().now();
}

void MigrationManager::complete_switchover(std::uint32_t tick) {
  AGILE_CHECK_MSG(suspend_time_ >= 0, "switchover without suspension");
  AGILE_CHECK(metrics_.switchover_time < 0);
  (void)tick;

  vm::VirtualMachine* machine = params_.machine;
  params_.source->detach_vm(machine);
  params_.dest->attach_vm(machine, params_.load);
  // The destination process's memory becomes the VM's memory; the source
  // process's copy stays with the manager to serve push/demand traffic.
  source_mem_owned_ = machine->swap_memory(std::move(dest_mem_owned_));
  source_mem_ = source_mem_owned_.get();
  machine->resume();

  SimTime now = cluster_->simulation().now();
  metrics_.switchover_time = now;
  metrics_.downtime = now - suspend_time_;
  AGILE_TRACE_INSTANT("migration", "switchover", trace_id(),
                      static_cast<double>(metrics_.downtime));
  AGILE_LOG_INFO("%s migration of %s: resumed at destination (downtime %.0f ms)",
                 technique(), machine->name().c_str(),
                 static_cast<double>(metrics_.downtime) / 1000.0);
}

void MigrationManager::finish() {
  AGILE_CHECK(!metrics_.completed);
  metrics_.completed = true;
  metrics_.end_time = cluster_->simulation().now();
  if (hook_id_ != 0) {
    cluster_->remove_hook(hook_id_);
    hook_id_ = 0;
  }
  // `stream_` stays alive until the manager is destroyed: finish() is often
  // reached from inside one of the stream's own delivery callbacks, and late
  // duplicate deliveries may still be in flight.
  AGILE_TRACE_SPAN_END("migration", "migrate", trace_id());
  AGILE_LOG_INFO("%s migration of %s: complete in %.1f s (%.1f MiB on wire)",
                 technique(), params_.machine->name().c_str(),
                 to_seconds(metrics_.total_time()),
                 to_mib(metrics_.bytes_transferred));
  if (on_complete_) on_complete_();
}

}  // namespace agile::migration
