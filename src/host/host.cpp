#include "host/host.hpp"

#include <algorithm>

namespace agile::host {

Host::Host(net::Network* network, HostConfig config)
    : config_(std::move(config)) {
  AGILE_CHECK(network != nullptr);
  node_ = network->add_node(config_.name, config_.rack);
  ssd_ = std::make_shared<storage::SsdModel>(config_.ssd);
  swap_partition_ = std::make_unique<swap::LocalSwapDevice>(
      config_.name + ":swap", ssd_, config_.swap_partition_bytes);
}

void Host::attach_vm(vm::VirtualMachine* machine, workload::Workload* load) {
  AGILE_CHECK(machine != nullptr);
  AGILE_CHECK_MSG(!has_vm(machine), "VM already attached");
  machine->set_host_node(node_);
  vms_.push_back({machine, load});
}

void Host::detach_vm(vm::VirtualMachine* machine) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&](const Entry& e) { return e.machine == machine; });
  AGILE_CHECK_MSG(it != vms_.end(), "detaching VM not on this host");
  vms_.erase(it);
}

bool Host::has_vm(const vm::VirtualMachine* machine) const {
  return std::any_of(vms_.begin(), vms_.end(),
                     [&](const Entry& e) { return e.machine == machine; });
}

Bytes Host::memory_in_use() const {
  Bytes total = config_.host_os_bytes;
  for (const Entry& e : vms_) total += e.machine->memory().resident_bytes();
  return total;
}

void Host::run_workloads(SimTime dt, std::uint32_t tick) {
  for (Entry& e : vms_) {
    if (e.load != nullptr && e.machine->running()) {
      e.load->run_quantum(dt, tick);
    }
  }
}

void Host::run_maintenance(SimTime dt) {
  for (Entry& e : vms_) {
    e.machine->memory().enforce_reservation(config_.reclaim_pages_per_quantum);
  }
  ssd_->advance(dt);
}

}  // namespace agile::host
