// Cluster: the simulation harness tying hosts, network and VMs together.
//
// One periodic "quantum" event drives the whole system in a fixed, documented
// order, so runs are deterministic:
//
//   1. every host runs its guest workloads (accesses hit memory/swap/faults),
//   2. control hooks run (migration state machines, WSS controllers),
//   3. hosts run maintenance (bounded reclaim, SSD queue drain),
//   4. the network advances (flow deliveries fire — pages land at the
//      destination),
//   5. observer hooks run (metric sampling).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "host/host.hpp"
#include "sim/lanes.hpp"
#include "sim/simulation.hpp"
#include "util/thread_pool.hpp"
#include "vm/virtual_machine.hpp"
#include "workload/workload.hpp"

namespace agile::host {

struct ClusterConfig {
  SimTime quantum = msec(100);
  std::uint64_t seed = 42;
  net::NetworkConfig network;
  /// Parallel event lanes for per-host quantum phases (workload execution,
  /// maintenance) and host-bound one-shots. 0 reads AGILE_SIM_LANES from the
  /// environment (default 1); 1 keeps today's sequential loop byte-for-byte.
  /// Output is byte-identical at any lane count — see sim/lanes.hpp for the
  /// determinism contract and DESIGN.md for why it holds here.
  std::uint32_t lanes = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return net_; }
  const ClusterConfig& config() const { return config_; }

  /// Resolved lane count (config override or AGILE_SIM_LANES, floored at 1).
  std::uint32_t lane_count() const { return lane_count_; }
  /// Lane coordinator, or null when running sequentially (lanes == 1).
  sim::LaneCoordinator* lanes() { return lanes_.get(); }

  /// One-shot bound to a host: with lanes it runs on the host's lane (cross
  /// -lane sends ride the mailbox), sequentially on the global heap. Either
  /// way it executes *before* any coordinator event (quantum, probe) sharing
  /// its timestamp — schedule host-bound work accordingly.
  void schedule_on_host(std::size_t host, SimTime t, sim::EventFn fn);

  /// Deterministic host→lane affinity plan, recomputed at each quantum.
  /// The Testbed installs one that keeps migration source/dest pairs on a
  /// shared lane; without a planner hosts are spread round-robin.
  using LanePlanner =
      std::function<std::vector<std::uint32_t>(std::size_t host_count,
                                               std::size_t lanes)>;
  void set_lane_planner(LanePlanner planner) {
    lane_planner_ = std::move(planner);
  }

  /// Events executed across the coordinator heap and all lanes.
  std::uint64_t events_executed_total() const {
    return sim_.events_executed() +
           (lanes_ ? lanes_->events_executed() : 0);
  }

  /// Quantum index (the LRU clock ticks once per quantum).
  std::uint32_t tick_index() const { return tick_index_; }
  double now_seconds() const { return to_seconds(sim_.now()); }

  /// Fresh deterministic RNG stream for a component.
  Rng make_rng(std::string_view tag) { return Rng(config_.seed, tag); }

  Host* add_host(HostConfig config);
  std::size_t host_count() const { return hosts_.size(); }
  Host* host_at(std::size_t i) const { return hosts_[i].get(); }

  /// A network endpoint that is not a simulated host (e.g. the external
  /// machine YCSB clients run on).
  net::NodeId add_client_node(const std::string& name) {
    return net_.add_node(name);
  }

  /// Takes ownership of a VM / workload (they outlive migrations and hosts'
  /// attach/detach cycles).
  vm::VirtualMachine* adopt_vm(std::unique_ptr<vm::VirtualMachine> machine);
  workload::Workload* adopt_workload(std::unique_ptr<workload::Workload> load);

  using Hook = std::function<void(SimTime now, SimTime dt, std::uint32_t tick)>;

  /// Runs in phase 2 (after workloads, before device maintenance). Returns an
  /// id usable with `remove_hook`.
  std::uint64_t add_control_hook(Hook hook);
  /// Runs in phase 5 (after network deliveries).
  std::uint64_t add_observer_hook(Hook hook);
  void remove_hook(std::uint64_t id);

  /// Periodic metrics scrape. Every `interval`, `per_host(index, host)` runs
  /// for each host — fanned across the event lanes exactly like a quantum
  /// phase (lane-affine, deterministic merge order) — then `finalize(now)`
  /// runs on the coordinator thread after the lane barrier joins. The scrape
  /// event shares the quantum's timestamp ordering: the quantum task is
  /// created first, so at a coinciding timestamp the scrape observes
  /// post-quantum state. Cancel the returned task to stop scraping.
  /// Per-host collection must only touch commutative `util::RelaxedCell`
  /// state or cells written by exactly one host (single writer per window) —
  /// the same contract every lane phase lives under.
  using ScrapePerHost = std::function<void(std::size_t index, Host& host)>;
  using ScrapeFinalize = std::function<void(SimTime now)>;
  std::shared_ptr<sim::PeriodicTask> start_scrape(SimTime interval,
                                                  ScrapePerHost per_host,
                                                  ScrapeFinalize finalize);

  /// Runs the simulation until simulated time `t`.
  void run_until(SimTime t);

  /// Runs `seconds` more of simulated time.
  void run_for_seconds(double seconds) { run_until(sim_.now() + sec(seconds)); }

 private:
  void quantum(SimTime now);
  /// Fans a per-host phase across the lanes and barriers at `now`.
  void parallel_phase(SimTime now, const std::function<void(Host&)>& phase);
  /// Installs the current host→lane plan (planner or round-robin).
  void install_lane_plan();
  /// One scrape: per-host fan-out (lanes or sequential) + finalize.
  void scrape(SimTime now, const ScrapePerHost& per_host,
              const ScrapeFinalize& finalize);

  struct HookEntry {
    std::uint64_t id;
    Hook fn;
  };

  ClusterConfig config_;
  sim::Simulation sim_;
  net::Network net_;
  std::uint32_t lane_count_ = 1;
  std::unique_ptr<util::ThreadPool> lane_pool_;
  std::unique_ptr<sim::LaneCoordinator> lanes_;
  LanePlanner lane_planner_;
  std::uint32_t tick_index_ = 0;
  std::uint64_t next_hook_id_ = 1;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<vm::VirtualMachine>> vms_;
  std::vector<std::unique_ptr<workload::Workload>> workloads_;
  std::vector<HookEntry> control_hooks_;
  std::vector<HookEntry> observer_hooks_;
  std::shared_ptr<sim::PeriodicTask> quantum_task_;
};

}  // namespace agile::host
