// Physical host model.
//
// A host owns a NIC (a network node), an SSD, a system-wide swap partition
// on that SSD (what the pre-copy/post-copy baselines swap to), and a set of
// attached VMs, each in its own cgroup (memory reservation + bound swap
// device). Per simulation quantum the host runs the workloads of its running
// VMs, applies bounded background reclaim (kswapd), and advances its SSD
// queue.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "storage/device.hpp"
#include "swap/swap_device.hpp"
#include "vm/virtual_machine.hpp"
#include "workload/workload.hpp"

namespace agile::host {

struct HostConfig {
  std::string name = "host";
  Bytes ram = 128_GiB;
  Bytes host_os_bytes = 200_MiB;       ///< Kernel + hypervisor overhead.
  storage::SsdConfig ssd;              ///< The 128 GB Crucial SSD.
  Bytes swap_partition_bytes = 30_GiB; ///< System-wide swap on the SSD.
  std::uint64_t reclaim_pages_per_quantum = 8192;  ///< kswapd rate bound.
  /// Rack the host's NIC attaches to. Ignored by the flat topology; must
  /// name a valid rack when the cluster's network is leaf-spine.
  std::uint32_t rack = 0;
};

class Host {
 public:
  Host(net::Network* network, HostConfig config);

  const std::string& name() const { return config_.name; }
  const HostConfig& config() const { return config_; }
  net::NodeId node() const { return node_; }
  std::uint32_t rack() const { return config_.rack; }

  const std::shared_ptr<storage::SsdModel>& ssd() const { return ssd_; }
  swap::LocalSwapDevice* swap_partition() { return swap_partition_.get(); }

  /// Attaches a VM (and its workload driver, may be null for a bare VM).
  void attach_vm(vm::VirtualMachine* machine, workload::Workload* load);
  void detach_vm(vm::VirtualMachine* machine);
  bool has_vm(const vm::VirtualMachine* machine) const;
  std::size_t vm_count() const { return vms_.size(); }
  vm::VirtualMachine* vm_at(std::size_t i) const { return vms_[i].machine; }
  workload::Workload* workload_at(std::size_t i) const { return vms_[i].load; }

  /// Host memory in use: host OS + resident pages of attached VMs.
  Bytes memory_in_use() const;
  Bytes ram() const { return config_.ram; }

  /// Runs one quantum of guest work on every running VM.
  void run_workloads(SimTime dt, std::uint32_t tick);

  /// Background reclaim + device queue drain.
  void run_maintenance(SimTime dt);

 private:
  struct Entry {
    vm::VirtualMachine* machine;
    workload::Workload* load;
  };

  HostConfig config_;
  net::NodeId node_;
  std::shared_ptr<storage::SsdModel> ssd_;
  std::unique_ptr<swap::LocalSwapDevice> swap_partition_;
  std::vector<Entry> vms_;
};

}  // namespace agile::host
