#include "host/cluster.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::host {

namespace {
// Lets the logger and tracer stamp simulated time. Thread-local because the
// parallel bench runner drives one Cluster per worker thread; each thread's
// log lines and trace events carry its own cluster's virtual time.
thread_local sim::Simulation* g_active_sim = nullptr;
std::int64_t active_sim_now() { return g_active_sim ? g_active_sim->now() : 0; }
}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config), net_(config.network) {
  AGILE_CHECK(config_.quantum > 0);
  g_active_sim = &sim_;
  log::set_time_source(&active_sim_now);
  trace::set_time_source(&active_sim_now);
  quantum_task_ = sim_.schedule_periodic(
      config_.quantum, [this](SimTime now) { quantum(now); });
}

Cluster::~Cluster() {
  quantum_task_->cancel();
  if (g_active_sim == &sim_) {
    g_active_sim = nullptr;
    log::set_time_source(nullptr);
    trace::set_time_source(nullptr);
  }
}

Host* Cluster::add_host(HostConfig config) {
  hosts_.push_back(std::make_unique<Host>(&net_, std::move(config)));
  return hosts_.back().get();
}

vm::VirtualMachine* Cluster::adopt_vm(
    std::unique_ptr<vm::VirtualMachine> machine) {
  vms_.push_back(std::move(machine));
  return vms_.back().get();
}

workload::Workload* Cluster::adopt_workload(
    std::unique_ptr<workload::Workload> load) {
  workloads_.push_back(std::move(load));
  return workloads_.back().get();
}

std::uint64_t Cluster::add_control_hook(Hook hook) {
  control_hooks_.push_back({next_hook_id_, std::move(hook)});
  return next_hook_id_++;
}

std::uint64_t Cluster::add_observer_hook(Hook hook) {
  observer_hooks_.push_back({next_hook_id_, std::move(hook)});
  return next_hook_id_++;
}

void Cluster::remove_hook(std::uint64_t id) {
  auto drop = [id](std::vector<HookEntry>& hooks) {
    hooks.erase(std::remove_if(hooks.begin(), hooks.end(),
                               [id](const HookEntry& h) { return h.id == id; }),
                hooks.end());
  };
  drop(control_hooks_);
  drop(observer_hooks_);
}

void Cluster::quantum(SimTime now) {
  ++tick_index_;
  const SimTime dt = config_.quantum;
  for (auto& h : hosts_) h->run_workloads(dt, tick_index_);
  // Hooks may unregister themselves (or others) while running; iterate over
  // a snapshot of ids and re-check liveness.
  auto run_hooks = [&](std::vector<HookEntry>& hooks) {
    std::vector<std::uint64_t> ids;
    ids.reserve(hooks.size());
    for (const HookEntry& h : hooks) ids.push_back(h.id);
    for (std::uint64_t id : ids) {
      auto it = std::find_if(hooks.begin(), hooks.end(),
                             [id](const HookEntry& h) { return h.id == id; });
      if (it != hooks.end()) it->fn(now, dt, tick_index_);
    }
  };
  run_hooks(control_hooks_);
  for (auto& h : hosts_) h->run_maintenance(dt);
  net_.advance(dt);
  run_hooks(observer_hooks_);
}

void Cluster::run_until(SimTime t) { sim_.run_until(t); }

}  // namespace agile::host
