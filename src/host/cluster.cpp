#include "host/cluster.hpp"

#include <algorithm>
#include <cstdlib>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::host {

namespace {
// Lets the logger and tracer stamp simulated time. Thread-local because the
// parallel bench runner drives one Cluster per worker thread; each thread's
// log lines and trace events carry its own cluster's virtual time. Inside a
// lane event the stamp is the event's own time (the coordinator clock may
// still be behind the window).
thread_local sim::Simulation* g_active_sim = nullptr;
// Saved previous value around a lane execution on this thread (the
// coordinator runs one lane inline, so a plain null-reset would wipe it).
thread_local sim::Simulation* g_saved_sim = nullptr;
std::int64_t active_sim_now() {
  if (g_active_sim == nullptr) return 0;
  return sim::LaneCoordinator::thread_event_time(g_active_sim->now());
}

std::uint32_t resolve_lane_count(std::uint32_t configured) {
  if (configured >= 1) return configured;
  if (const char* env = std::getenv("AGILE_SIM_LANES")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 256) return static_cast<std::uint32_t>(v);
  }
  return 1;
}
}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config), net_(config.network),
      lane_count_(resolve_lane_count(config.lanes)) {
  AGILE_CHECK(config_.quantum > 0);
  g_active_sim = &sim_;
  log::set_time_source(&active_sim_now);
  trace::set_time_source(&active_sim_now);
  if (lane_count_ > 1) {
    lane_pool_ = std::make_unique<util::ThreadPool>(lane_count_ - 1);
    sim::LaneCoordinator::Config lane_cfg;
    lane_cfg.lanes = lane_count_;
    lane_cfg.pool = lane_pool_.get();
    lanes_ = std::make_unique<sim::LaneCoordinator>(lane_cfg);
    // Lane threads need this cluster's clock for log/trace stamps. The time
    // sources are thread-local, so pool workers start with none installed —
    // without this hook their trace events would all stamp ts=0. Restore
    // whatever the thread had (the coordinator thread runs one lane inline
    // and already carries this cluster's source).
    lanes_->set_thread_hooks(
        [this](std::size_t) {
          g_saved_sim = g_active_sim;
          g_active_sim = &sim_;
          log::set_time_source(&active_sim_now);
          trace::set_time_source(&active_sim_now);
        },
        [](std::size_t) {
          g_active_sim = g_saved_sim;
          if (g_saved_sim == nullptr) {
            log::set_time_source(nullptr);
            trace::set_time_source(nullptr);
          }
        });
  }
  quantum_task_ = sim_.schedule_periodic(
      config_.quantum, [this](SimTime now) { quantum(now); });
}

Cluster::~Cluster() {
  quantum_task_->cancel();
  if (g_active_sim == &sim_) {
    g_active_sim = nullptr;
    log::set_time_source(nullptr);
    trace::set_time_source(nullptr);
  }
}

Host* Cluster::add_host(HostConfig config) {
  hosts_.push_back(std::make_unique<Host>(&net_, std::move(config)));
  if (lanes_) lanes_->ensure_channels(hosts_.size());
  return hosts_.back().get();
}

void Cluster::schedule_on_host(std::size_t host, SimTime t, sim::EventFn fn) {
  AGILE_CHECK(host < hosts_.size());
  if (!lanes_) {
    sim_.schedule_at(t, std::move(fn));
    return;
  }
  lanes_->post(host, t, std::move(fn));
}

vm::VirtualMachine* Cluster::adopt_vm(
    std::unique_ptr<vm::VirtualMachine> machine) {
  vms_.push_back(std::move(machine));
  return vms_.back().get();
}

workload::Workload* Cluster::adopt_workload(
    std::unique_ptr<workload::Workload> load) {
  workloads_.push_back(std::move(load));
  return workloads_.back().get();
}

std::uint64_t Cluster::add_control_hook(Hook hook) {
  control_hooks_.push_back({next_hook_id_, std::move(hook)});
  return next_hook_id_++;
}

std::uint64_t Cluster::add_observer_hook(Hook hook) {
  observer_hooks_.push_back({next_hook_id_, std::move(hook)});
  return next_hook_id_++;
}

void Cluster::remove_hook(std::uint64_t id) {
  auto drop = [id](std::vector<HookEntry>& hooks) {
    hooks.erase(std::remove_if(hooks.begin(), hooks.end(),
                               [id](const HookEntry& h) { return h.id == id; }),
                hooks.end());
  };
  drop(control_hooks_);
  drop(observer_hooks_);
}

void Cluster::parallel_phase(SimTime now,
                             const std::function<void(Host&)>& phase) {
  // One lane event per host: the (time, channel, seq) merge contract then
  // reproduces the sequential host-index iteration order exactly, for the
  // phase work and for any trace events it records.
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    Host* host = hosts_[h].get();
    lanes_->schedule(h, now, [&phase, host] { phase(*host); });
  }
  lanes_->advance_to(now);
}

void Cluster::install_lane_plan() {
  lanes_->ensure_channels(hosts_.size());
  lanes_->set_plan(lane_planner_
                       ? lane_planner_(hosts_.size(), lane_count_)
                       : [&] {
                           std::vector<std::uint32_t> plan(hosts_.size());
                           for (std::size_t i = 0; i < plan.size(); ++i) {
                             plan[i] = static_cast<std::uint32_t>(
                                 i % lane_count_);
                           }
                           return plan;
                         }());
}

void Cluster::quantum(SimTime now) {
  ++tick_index_;
  const SimTime dt = config_.quantum;
  if (lanes_) install_lane_plan();
  const std::uint32_t tick = tick_index_;
  if (lanes_) {
    parallel_phase(now,
                   [dt, tick](Host& h) { h.run_workloads(dt, tick); });
  } else {
    for (auto& h : hosts_) h->run_workloads(dt, tick_index_);
  }
  // Hooks may unregister themselves (or others) while running; iterate over
  // a snapshot of ids and re-check liveness.
  auto run_hooks = [&](std::vector<HookEntry>& hooks) {
    std::vector<std::uint64_t> ids;
    ids.reserve(hooks.size());
    for (const HookEntry& h : hooks) ids.push_back(h.id);
    for (std::uint64_t id : ids) {
      auto it = std::find_if(hooks.begin(), hooks.end(),
                             [id](const HookEntry& h) { return h.id == id; });
      if (it != hooks.end()) it->fn(now, dt, tick_index_);
    }
  };
  run_hooks(control_hooks_);
  if (lanes_) {
    parallel_phase(now, [dt](Host& h) { h.run_maintenance(dt); });
  } else {
    for (auto& h : hosts_) h->run_maintenance(dt);
  }
  net_.advance(dt);
  run_hooks(observer_hooks_);
}

void Cluster::scrape(SimTime now, const ScrapePerHost& per_host,
                     const ScrapeFinalize& finalize) {
  if (lanes_) {
    // The scrape may fire between quanta (interval not a multiple of the
    // quantum) or before the first one, so install the plan itself rather
    // than relying on the last quantum's.
    install_lane_plan();
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      Host* host = hosts_[h].get();
      lanes_->schedule(h, now, [&per_host, h, host] { per_host(h, *host); });
    }
    lanes_->advance_to(now);
  } else {
    for (std::size_t h = 0; h < hosts_.size(); ++h) per_host(h, *hosts_[h]);
  }
  if (finalize) finalize(now);
}

std::shared_ptr<sim::PeriodicTask> Cluster::start_scrape(
    SimTime interval, ScrapePerHost per_host, ScrapeFinalize finalize) {
  AGILE_CHECK(interval > 0);
  return sim_.schedule_periodic(
      interval, [this, per_host = std::move(per_host),
                 finalize = std::move(finalize)](SimTime now) {
        scrape(now, per_host, finalize);
      });
}

void Cluster::run_until(SimTime t) {
  if (!lanes_) {
    sim_.run_until(t);
    return;
  }
  // Lane-aware driver: between coordinator events, open a lane window up to
  // the next coordinator event time (the conservative lookahead horizon —
  // cross-host effects only materialize at coordinator events, i.e. network
  // quantum edges). Lane events sharing a coordinator event's timestamp run
  // before it, mirroring the sequential heap order for host-bound one-shots
  // scheduled ahead of time.
  AGILE_CHECK(t >= sim_.now());
  sim_.clear_stop();
  while (!sim_.stopped()) {
    SimTime next = sim_.next_event_time();
    if (next < 0 || next > t) break;
    lanes_->advance_to(next);
    if (!sim_.step()) break;
  }
  if (!sim_.stopped()) {
    lanes_->advance_to(t);
    sim_.run_until(t);
  }
}

}  // namespace agile::host
