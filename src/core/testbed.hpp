// Public facade: the paper's testbed in one object.
//
// A `Testbed` assembles the setup of §V — a fleet of general-purpose hosts
// (two by default: the paper's source and destination), an external client
// machine, and one or more intermediate hosts contributing memory to the
// VMD — and offers factories for VMs (with either a baseline host-level swap
// binding or an Agile per-VM VMD namespace) and for migrations of each
// technique between any pair of hosts. Benches and examples build everything
// through this API; `TestbedConfig::hosts` widens the fleet beyond two.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "host/cluster.hpp"
#include "metrics/timeseries.hpp"
#include "migration/agile.hpp"
#include "migration/postcopy.hpp"
#include "migration/precopy.hpp"
#include "migration/scatter_gather.hpp"
#include "vmd/vmd_swap_device.hpp"

namespace agile::core {

enum class Technique { kPrecopy, kPostcopy, kAgile, kScatterGather };

const char* technique_name(Technique technique);

inline host::HostConfig named_host(std::string name) {
  host::HostConfig cfg;
  cfg.name = std::move(name);
  return cfg;
}

struct TestbedConfig {
  host::ClusterConfig cluster;
  host::HostConfig source = named_host("source");
  host::HostConfig dest = named_host("dest");
  /// Fleet mode: when non-empty these hosts are built instead of
  /// {source, dest}, each a general-purpose migration source *and*
  /// destination. Must contain at least two hosts; `source()`/`dest()`
  /// keep aliasing hosts 0 and 1 for the two-host benches.
  std::vector<host::HostConfig> hosts;
  std::uint32_t vmd_servers = 1;        ///< Intermediate hosts.
  Bytes vmd_server_capacity = 64_GiB;   ///< Free memory each contributes.
  Bytes vmd_server_disk = 0;            ///< Optional disk tier per server.
  SimTime vmd_heartbeat = sec(1);       ///< Availability update period.
};

/// How a VM's cold pages are stored.
enum class SwapBinding {
  kHostPartition,  ///< Shared system-wide swap on the host SSD (baselines).
  kPerVmDevice,    ///< Private, portable VMD namespace (Agile).
};

struct VmSpec {
  std::string name = "vm";
  Bytes memory = 10_GiB;
  Bytes reservation = 0;  ///< 0: same as memory (uncapped).
  std::uint32_t vcpus = 2;
  SwapBinding swap = SwapBinding::kHostPartition;
  Bytes per_vm_swap_capacity = 0;  ///< 0: 2× memory.
  std::size_t host = 0;            ///< Index of the host the VM starts on.
  /// Fraction of prefilled pages whose content is all zeroes (free-page pools,
  /// zeroed allocations). 0 keeps zero tracking off entirely.
  double zero_page_fraction = 0.0;
};

/// Everything the testbed knows about one VM.
struct VmHandle {
  vm::VirtualMachine* machine = nullptr;
  workload::Workload* load = nullptr;          ///< Null until attached.
  vmd::VmdSwapDevice* per_vm_swap = nullptr;   ///< Null for host binding.
  vmd::VmdClient* vmd_client = nullptr;        ///< Null for host binding.
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  host::Cluster& cluster() { return cluster_; }
  /// Two-host compatibility shim: hosts 0 and 1 of the fleet.
  host::Host* source() { return hosts_[0]; }
  host::Host* dest() { return hosts_[1]; }
  std::size_t host_count() const { return hosts_.size(); }
  host::Host* host_at(std::size_t i) { return hosts_[i]; }
  /// Rack of host `i` (0 for every host on the flat topology default).
  std::uint32_t rack_of_host(std::size_t i) const { return hosts_[i]->rack(); }
  /// Whether the cluster network is a real (leaf-spine) rack topology —
  /// rack-aware placement and per-rack lane grouping only engage then.
  bool rack_topology() const {
    return config_.cluster.network.topology.kind ==
           net::TopologyKind::kLeafSpine;
  }
  /// Host the VM currently resides on (placement is tracked via the hosts'
  /// attach lists, so this follows migrations). Null if on none.
  host::Host* host_of(const vm::VirtualMachine* machine);
  net::NodeId client_node() const { return client_node_; }

  std::size_t vmd_server_count() const { return vmd_servers_.size(); }
  vmd::VmdServer* vmd_server_at(std::size_t i) { return vmd_servers_[i].get(); }

  /// Creates a VM on host `spec.host` (no workload yet).
  VmHandle& create_vm(const VmSpec& spec);

  std::size_t vm_count() const { return vms_.size(); }
  VmHandle& vm_at(std::size_t i) { return *vms_[i]; }

  /// Binds a workload to the VM (it will run whenever the VM runs).
  /// Typical construction: testbed.attach_workload(h,
  ///     std::make_unique<workload::YcsbWorkload>(h.machine, &net, client, cfg, rng)).
  void attach_workload(VmHandle& handle,
                       std::unique_ptr<workload::Workload> load);

  /// Creates (but does not start) a migration of `handle`'s VM from the host
  /// it currently resides on to an explicit `destination` (any other fleet
  /// host). `dest_reservation` of 0 keeps the current cgroup reservation.
  /// Agile requires the VM to use a per-VM swap device.
  std::unique_ptr<migration::MigrationManager> make_migration_to(
      Technique technique, VmHandle& handle, host::Host* destination,
      Bytes dest_reservation = 0, migration::MigrationConfig config = {});

  /// Two-host shorthand: migrate to `dest()` (host 1).
  std::unique_ptr<migration::MigrationManager> make_migration(
      Technique technique, VmHandle& handle, Bytes dest_reservation = 0,
      migration::MigrationConfig config = {}) {
    return make_migration_to(technique, handle, dest(), dest_reservation,
                             config);
  }

  /// Shorthand used everywhere in the benches.
  Rng make_rng(std::string_view tag) { return cluster_.make_rng(tag); }

  /// Deterministic host→lane affinity plan for parallel event lanes (see
  /// sim/lanes.hpp). On a rack topology, hosts sharing a rack are unioned
  /// onto one lane (intra-rack traffic then never crosses a lane barrier);
  /// hosts coupled by an in-flight migration (demand faults reach back into
  /// source-side state) are unioned likewise — a cross-rack migration
  /// merges the two rack groups. When any VMD server runs a disk tier or is
  /// within the safety margin of full — where placement would become
  /// order-dependent — the whole fleet collapses onto lane 0 (sequential
  /// semantics). Installed on the cluster at construction; public for
  /// tests.
  std::vector<std::uint32_t> plan_lanes(std::size_t host_count,
                                        std::size_t lanes);

  /// Live (constructed, not yet destroyed) migrations in registration order
  /// — the deterministic iteration set for fleet health collection.
  const std::vector<migration::MigrationManager*>& live_migrations() const {
    return live_migrations_;
  }

 private:
  /// Registers a migration in the lane-affinity registry; the manager
  /// deregisters itself on destruction (it must not outlive the Testbed).
  std::unique_ptr<migration::MigrationManager> register_migration(
      std::unique_ptr<migration::MigrationManager> migration);

  TestbedConfig config_;
  host::Cluster cluster_;
  std::vector<host::Host*> hosts_;
  net::NodeId client_node_;
  std::vector<std::unique_ptr<vmd::VmdServer>> vmd_servers_;
  std::vector<std::unique_ptr<vmd::VmdClient>> vmd_clients_;
  std::vector<std::unique_ptr<vmd::VmdSwapDevice>> vmd_devices_;
  std::vector<std::unique_ptr<VmHandle>> vms_;
  std::vector<std::shared_ptr<sim::PeriodicTask>> heartbeats_;
  /// Live (constructed, not yet destroyed) migrations for plan_lanes.
  std::vector<migration::MigrationManager*> live_migrations_;
};

/// Samples a workload's throughput (ops/s) once a second into a TimeSeries —
/// the probe behind every timeline figure.
class ThroughputProbe {
 public:
  ThroughputProbe(host::Cluster* cluster, const workload::Workload* load,
                  std::string name, SimTime interval = sec(1));
  ~ThroughputProbe();

  const metrics::TimeSeries& series() const { return series_; }

 private:
  host::Cluster* cluster_;
  const workload::Workload* load_;
  SimTime interval_;
  std::uint64_t last_ops_ = 0;
  std::shared_ptr<sim::PeriodicTask> task_;
  metrics::TimeSeries series_;
};

}  // namespace agile::core
