#include "core/scenarios.hpp"

#include <algorithm>

namespace agile::core::scenarios {

namespace {

SwapBinding binding_for(Technique technique) {
  bool portable = technique == Technique::kAgile ||
                  technique == Technique::kScatterGather;
  return portable ? SwapBinding::kPerVmDevice : SwapBinding::kHostPartition;
}

// Datasets are loaded before the paper's measurement window opens; drain the
// write-behind backlog the bulk load left on the SSDs so t=0 starts clean.
void drain_ssd(Testbed& bed) {
  for (std::size_t i = 0; i < bed.host_count(); ++i) {
    bed.host_at(i)->ssd()->advance(sec(36000));
  }
}

}  // namespace

Consolidation make_consolidation(const ConsolidationOptions& options) {
  Consolidation scenario;
  scenario.options = options;

  TestbedConfig cfg;
  cfg.cluster.seed = options.seed;
  cfg.source.ram = options.host_ram;
  cfg.source.host_os_bytes = 200_MiB;
  cfg.dest = cfg.source;
  cfg.dest.name = "dest";
  scenario.bed = std::make_unique<Testbed>(cfg);
  Testbed& bed = *scenario.bed;

  for (std::uint32_t i = 0; i < options.vm_count; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    spec.memory = options.vm_memory;
    spec.reservation = options.reservation;
    spec.vcpus = 2;
    spec.swap = binding_for(options.technique);
    VmHandle& h = bed.create_vm(spec);
    scenario.handles.push_back(&h);

    std::unique_ptr<workload::Workload> load;
    if (options.app == AppKind::kYcsb) {
      workload::YcsbConfig ycfg;
      ycfg.dataset_bytes = options.dataset;
      ycfg.guest_os_bytes = options.guest_os;
      ycfg.active_bytes = options.initial_active;
      ycfg.read_fraction = options.read_fraction;
      load = std::make_unique<workload::YcsbWorkload>(
          h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
          bed.make_rng(spec.name + "/ycsb"));
    } else {
      workload::OltpConfig ocfg;
      ocfg.dataset_bytes = options.dataset;
      ocfg.guest_os_bytes = options.guest_os;
      load = std::make_unique<workload::OltpWorkload>(
          h.machine, &bed.cluster().network(), bed.client_node(), ocfg,
          bed.make_rng(spec.name + "/oltp"));
    }
    scenario.loads.push_back(load.get());
    bed.attach_workload(h, std::move(load));
    scenario.probes.push_back(std::make_unique<ThroughputProbe>(
        &bed.cluster(), scenario.loads.back(), spec.name));
  }
  return scenario;
}

void Consolidation::load_all() {
  for (workload::Workload* load : loads) load->load(0);
  drain_ssd(*bed);
}

void Consolidation::schedule_ramp(SimTime ramp_start, SimTime ramp_step) {
  if (options.app != AppKind::kYcsb) return;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    auto* ycsb = static_cast<workload::YcsbWorkload*>(loads[i]);
    Bytes target = options.ramped_active;
    bed->cluster().simulation().schedule_at(
        ramp_start + static_cast<SimTime>(i) * ramp_step,
        [ycsb, target] { ycsb->set_active_bytes(target); });
  }
}

void Consolidation::schedule_migration(SimTime at) {
  migration = bed->make_migration(options.technique, *handles[0]);
  migration::MigrationManager* mig = migration.get();
  bed->cluster().simulation().schedule_at(at, [mig] { mig->start(); });
}

metrics::TimeSeries Consolidation::average_throughput() const {
  metrics::TimeSeries avg("avg_throughput");
  if (probes.empty()) return avg;
  const metrics::TimeSeries& first = probes[0]->series();
  for (std::size_t i = 0; i < first.size(); ++i) {
    double t = first[i].t;
    double sum = 0;
    for (const auto& probe : probes) sum += probe->series().value_at(t);
    avg.add(t, sum / static_cast<double>(probes.size()));
  }
  return avg;
}

SingleVm make_single_vm(const SingleVmOptions& options) {
  SingleVm scenario;
  scenario.options = options;
  if (options.trace) {
    // Installed before the Testbed so VM-creation entity names land in it.
    scenario.session = std::make_unique<trace::TraceSession>();
  }

  TestbedConfig cfg;
  cfg.cluster.seed = options.seed;
  cfg.source.ram = options.host_ram;
  cfg.source.host_os_bytes = 500_MiB;
  cfg.dest = cfg.source;
  cfg.dest.name = "dest";
  if (options.link_bits_per_sec > 0) {
    cfg.cluster.network.link_bits_per_sec = options.link_bits_per_sec;
  }
  if (options.flow_max_bits_per_sec > 0) {
    cfg.cluster.network.flow_max_bits_per_sec = options.flow_max_bits_per_sec;
  }
  scenario.bed = std::make_unique<Testbed>(cfg);
  Testbed& bed = *scenario.bed;

  Bytes reservation =
      std::min(options.vm_memory, options.host_ram - cfg.source.host_os_bytes);
  VmSpec spec;
  spec.name = "vm0";
  spec.memory = options.vm_memory;
  spec.reservation = reservation;
  spec.vcpus = 2;
  spec.swap = binding_for(options.technique);
  spec.zero_page_fraction = options.zero_page_fraction;
  scenario.handle = &bed.create_vm(spec);

  if (options.busy) {
    // "Busy VM runs a Redis server with a dataset almost as large as the
    // memory size leaving only 500MB of free memory."
    AGILE_CHECK_MSG(options.vm_memory > options.free_margin + options.guest_os,
                    "busy VM too small for dataset + margin");
    workload::YcsbConfig ycfg;
    ycfg.dataset_bytes =
        options.vm_memory - options.free_margin - options.guest_os;
    ycfg.guest_os_bytes = options.guest_os;
    ycfg.active_bytes = ycfg.dataset_bytes;
    ycfg.read_fraction = options.read_fraction;
    auto load = std::make_unique<workload::YcsbWorkload>(
        scenario.handle->machine, &bed.cluster().network(), bed.client_node(),
        ycfg, bed.make_rng("vm0/ycsb"));
    scenario.ycsb = load.get();
    bed.attach_workload(*scenario.handle, std::move(load));
  }
  if (options.stats) {
    scenario.registry = std::make_unique<stats::Registry>();
    scenario.collector = std::make_unique<FleetStatsCollector>(
        scenario.bed.get(), scenario.registry.get());
    scenario.collector->start(options.stats_interval);
  }
  return scenario;
}

void SingleVm::prepare() {
  if (ycsb != nullptr) {
    ycsb->load(0);
  } else {
    // An idle VM's memory is still in use (page cache etc.): the baselines
    // must transfer it all, which is what makes Fig. 7/8 linear in VM size.
    handle->machine->memory().prefill(handle->machine->page_count(), 0);
  }
  drain_ssd(*bed);
  bed->cluster().run_for_seconds(5);
}

void SingleVm::run_migration(double limit_s) {
  migration::MigrationConfig mcfg;
  mcfg.num_streams = options.num_streams;
  mcfg.compression = options.compression;
  if (options.send_window > 0) mcfg.send_window = options.send_window;
  migration = bed->make_migration(options.technique, *handle,
                                  /*dest_reservation=*/0, mcfg);
  migration->start();
  double deadline = bed->cluster().now_seconds() + limit_s;
  while (!migration->completed() && bed->cluster().now_seconds() < deadline) {
    bed->cluster().run_for_seconds(1.0);
  }
}

WssTracking make_wss_tracking(const WssTrackingOptions& options) {
  WssTracking scenario;
  scenario.options = options;

  TestbedConfig cfg;
  cfg.cluster.seed = options.seed;
  cfg.source.ram = options.host_ram;
  cfg.dest = cfg.source;
  cfg.dest.name = "dest";
  scenario.bed = std::make_unique<Testbed>(cfg);
  Testbed& bed = *scenario.bed;

  VmSpec spec;
  spec.name = "vm0";
  spec.memory = options.vm_memory;
  spec.reservation = options.initial_reservation;
  spec.vcpus = 2;
  spec.swap = SwapBinding::kPerVmDevice;  // the tool reads per-VM iostat
  scenario.handle = &bed.create_vm(spec);

  workload::YcsbConfig ycfg;
  ycfg.dataset_bytes = options.dataset;
  ycfg.guest_os_bytes = options.guest_os;
  ycfg.active_bytes = options.dataset;
  ycfg.read_fraction = 0.95;
  auto load = std::make_unique<workload::YcsbWorkload>(
      scenario.handle->machine, &bed.cluster().network(), bed.client_node(),
      ycfg, bed.make_rng("vm0/ycsb"));
  scenario.ycsb = load.get();
  bed.attach_workload(*scenario.handle, std::move(load));

  scenario.controller = std::make_unique<wss::ReservationController>(
      &bed.cluster(), scenario.handle->machine, options.wss);
  scenario.probe = std::make_unique<ThroughputProbe>(&bed.cluster(),
                                                     scenario.ycsb, "ycsb");
  return scenario;
}

void WssTracking::load() {
  ycsb->load(0);
  bed->source()->ssd()->advance(sec(36000));
}

Fleet make_fleet(const FleetOptions& options) {
  AGILE_CHECK(options.host_count >= 2 && options.vm_count >= 1);
  AGILE_CHECK(options.hot_vms <= options.vm_count);
  Fleet scenario;
  scenario.options = options;

  TestbedConfig cfg;
  cfg.cluster.seed = options.seed;
  cfg.cluster.lanes = options.lanes;
  cfg.vmd_server_capacity = options.vmd_server_capacity;
  std::uint32_t hosts_per_rack = 0;
  if (options.racks > 0) {
    AGILE_CHECK_MSG(options.host_count % options.racks == 0,
                    "host_count must divide evenly into racks");
    hosts_per_rack = options.host_count / options.racks;
    cfg.cluster.network.topology.kind = net::TopologyKind::kLeafSpine;
    cfg.cluster.network.topology.racks = options.racks;
    cfg.cluster.network.topology.hosts_per_rack = hosts_per_rack;
    cfg.cluster.network.topology.oversubscription = options.oversubscription;
  }
  if (options.hot_per_rack) {
    AGILE_CHECK_MSG(options.racks > 0 && options.spread_initial &&
                        options.hot_vms % options.racks == 0,
                    "hot_per_rack needs racks, spread_initial, and a hot set "
                    "divisible by racks");
  }
  for (std::uint32_t i = 0; i < options.host_count; ++i) {
    host::HostConfig host_cfg = named_host("host" + std::to_string(i));
    host_cfg.ram = i == 0 ? options.source_ram : options.dest_ram;
    host_cfg.host_os_bytes = options.host_os;
    if (hosts_per_rack > 0) host_cfg.rack = i / hosts_per_rack;
    cfg.hosts.push_back(host_cfg);
  }
  scenario.bed = std::make_unique<Testbed>(cfg);
  Testbed& bed = *scenario.bed;

  for (std::uint32_t i = 0; i < options.vm_count; ++i) {
    VmSpec spec;
    spec.name = "vm" + std::to_string(i);
    spec.memory = options.vm_memory;
    spec.reservation = options.reservation;
    spec.vcpus = 2;
    // Orchestrated VMs always carry a per-VM VMD namespace: the reservation
    // controller reads its iostat window, whatever engine later moves them.
    spec.swap = SwapBinding::kPerVmDevice;
    // Consolidated start (everyone on host 0) unless the scaling benches ask
    // for an even spread.
    spec.host = options.spread_initial ? i % options.host_count : 0;
    VmHandle& h = bed.create_vm(spec);
    scenario.handles.push_back(&h);

    workload::YcsbConfig ycfg;
    ycfg.dataset_bytes = options.dataset;
    ycfg.guest_os_bytes = options.guest_os;
    ycfg.active_bytes = options.initial_active;
    ycfg.read_fraction = options.read_fraction;
    ycfg.concurrency = options.ycsb_concurrency;
    auto load = std::make_unique<workload::YcsbWorkload>(
        h.machine, &bed.cluster().network(), bed.client_node(), ycfg,
        bed.make_rng(spec.name + "/ycsb"));
    scenario.ycsbs.push_back(load.get());
    bed.attach_workload(h, std::move(load));
  }

  MigrationOrchestratorConfig ocfg;
  ocfg.watermarks = options.watermarks;
  ocfg.wss = options.wss;
  ocfg.technique = options.technique;
  ocfg.per_link_in_flight_cap = options.per_link_cap;
  ocfg.rack_aware_placement = options.rack_aware_placement;
  scenario.orchestrator =
      std::make_unique<MigrationOrchestrator>(&bed, ocfg);
  for (VmHandle* h : scenario.handles) scenario.orchestrator->track(h);
  if (options.rebalance) {
    scenario.rebalancer = std::make_unique<FleetRebalancer>(
        &bed, scenario.orchestrator.get(), options.rebalancer_config);
  }
  if (options.stats) {
    scenario.registry = std::make_unique<stats::Registry>();
    scenario.collector = std::make_unique<FleetStatsCollector>(
        scenario.bed.get(), scenario.registry.get());
    scenario.collector->set_orchestrator(scenario.orchestrator.get());
    scenario.collector->start(options.stats_interval);
    // After the collector (which registers the fleet's static metric set):
    // the rebalancer's counters append in a fixed order.
    if (scenario.rebalancer != nullptr) {
      scenario.rebalancer->bind_stats(scenario.registry.get());
    }
  }
  return scenario;
}

void Fleet::load_all() {
  for (workload::YcsbWorkload* y : ycsbs) y->load(0);
  drain_ssd(*bed);
  // The hot set: first hot_vms VMs, or — per-rack hotspots — the VMs homed
  // on the first hot_vms/racks hosts of each rack, in VM index order.
  std::vector<std::uint32_t> hot;
  if (options.hot_per_rack && options.racks > 0) {
    const std::uint32_t per_rack = options.host_count / options.racks;
    const std::uint32_t per_rack_hot = options.hot_vms / options.racks;
    for (std::uint32_t i = 0;
         i < ycsbs.size() && hot.size() < options.hot_vms; ++i) {
      const std::uint32_t home = i % options.host_count;
      if (home % per_rack < per_rack_hot) hot.push_back(i);
    }
  } else {
    for (std::uint32_t i = 0; i < options.hot_vms; ++i) hot.push_back(i);
  }
  for (std::uint32_t i : hot) {
    workload::YcsbWorkload* y = ycsbs[i];
    Bytes target = options.hot_active;
    // Host-bound: the hotspot mutates the workload, so it must run on the
    // lane that owns the VM's host (a plain schedule_at would race with that
    // host's phase work under AGILE_SIM_LANES > 1). The VM cannot have moved
    // before `hot_at` — the hotspot itself is what first creates pressure.
    std::size_t home = options.spread_initial ? i % options.host_count : 0;
    bed->cluster().schedule_on_host(
        home, options.hot_at, [y, target] { y->set_active_bytes(target); });
  }
}

std::size_t Fleet::host_index_of(const VmHandle* handle) const {
  for (std::size_t i = 0; i < bed->host_count(); ++i) {
    if (bed->host_at(i)->has_vm(handle->machine)) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace agile::core::scenarios
