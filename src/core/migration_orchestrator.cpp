#include "core/migration_orchestrator.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace agile::core {

MigrationOrchestrator::MigrationOrchestrator(Testbed* testbed,
                                             MigrationOrchestratorConfig config)
    : testbed_(testbed), config_(config) {
  AGILE_CHECK(testbed_ != nullptr);
  AGILE_CHECK(config_.per_link_in_flight_cap >= 1);
}

MigrationOrchestrator::~MigrationOrchestrator() { stop(); }

void MigrationOrchestrator::track(VmHandle* handle) {
  AGILE_CHECK(handle != nullptr);
  AGILE_CHECK_MSG(handle->per_vm_swap != nullptr,
                  "orchestration requires per-VM swap devices");
  AGILE_CHECK_MSG(monitor_ == nullptr, "track VMs before start()");
  entries_.push_back({handle, std::make_unique<wss::ReservationController>(
                                  &testbed_->cluster(), handle->machine,
                                  config_.wss)});
}

void MigrationOrchestrator::start() {
  AGILE_CHECK_MSG(monitor_ == nullptr, "already started");
  started_at_ = testbed_->cluster().simulation().now();
  for (Entry& e : entries_) e.controller->start();
  monitor_ = testbed_->cluster().simulation().schedule_periodic(
      config_.check_interval, [this](SimTime now) { evaluate(now); });
}

void MigrationOrchestrator::stop() {
  if (monitor_ != nullptr) {
    monitor_->cancel();
    monitor_.reset();
  }
  for (Entry& e : entries_) e.controller->stop();
}

Bytes MigrationOrchestrator::wss_estimate(const VmHandle* handle) const {
  for (const Entry& e : entries_) {
    if (e.handle == handle) return e.controller->wss_estimate();
  }
  AGILE_CHECK_MSG(false, "VM not tracked");
  return 0;
}

Bytes MigrationOrchestrator::reserved_bytes_at(const host::Host* host) const {
  Bytes total = 0;
  for (const InFlight& f : in_flight_) {
    if (f.dest == host && !host->has_vm(f.handle->machine)) {
      total += f.reserved_wss;
    }
  }
  return total;
}

void MigrationOrchestrator::bind_stats(stats::Registry* registry) {
  if (registry == nullptr) {
    stats_ = StatsCells{};
    return;
  }
  stats_.evaluations = registry->counter(
      "agile_orchestrator_evaluations_total", {},
      "Periodic watermark evaluation sweeps run");
  stats_.decisions = registry->counter(
      "agile_orchestrator_decisions_total", {},
      "Pressured decisions recorded (victims selected)");
  stats_.launches = registry->counter(
      "agile_orchestrator_launches_total", {},
      "Migrations launched (admissions)");
  stats_.deferrals = registry->counter(
      "agile_orchestrator_deferrals_total", {},
      "Victims deferred (no admissible destination or link cap)");
  stats_.insufficient = registry->counter(
      "agile_orchestrator_insufficient_total", {},
      "Decisions where even migrating every tracked VM leaves pressure");
  stats_.in_flight = registry->gauge(
      "agile_orchestrator_in_flight", {},
      "Launched migrations not yet completed");
  stats_.reserved_bytes = registry->gauge(
      "agile_orchestrator_reserved_bytes", {},
      "Admission reservations held by in-flight migrations");
}

std::size_t MigrationOrchestrator::migrations_in_flight() const {
  std::size_t count = 0;
  for (const auto& m : migrations_) count += !m->completed();
  return count;
}

bool MigrationOrchestrator::vm_in_flight(const VmHandle* handle) const {
  for (const InFlight& f : in_flight_) {
    if (f.handle == handle) return true;
  }
  return false;
}

std::size_t MigrationOrchestrator::link_load(const host::Host* source,
                                             const host::Host* dest) const {
  std::size_t count = 0;
  for (const InFlight& f : in_flight_) {
    count += f.source == source && f.dest == dest;
  }
  return count;
}

Bytes MigrationOrchestrator::committed_bytes(host::Host* host) const {
  Bytes committed = host->config().host_os_bytes;
  for (std::size_t i = 0; i < testbed_->vm_count(); ++i) {
    const VmHandle& h = testbed_->vm_at(i);
    if (!host->has_vm(h.machine)) continue;
    Bytes claim = h.machine->memory().resident_bytes();
    for (const Entry& e : entries_) {
      if (e.handle == &h) {
        claim = e.controller->wss_estimate();
        break;
      }
    }
    committed += claim;
  }
  // Arrivals not yet attached: admission reservations of in-flight
  // migrations targeting this host.
  for (const InFlight& f : in_flight_) {
    if (f.dest == host && !host->has_vm(f.handle->machine)) {
      committed += f.reserved_wss;
    }
  }
  return committed;
}

void MigrationOrchestrator::retire_completed() {
  in_flight_.erase(std::remove_if(in_flight_.begin(), in_flight_.end(),
                                  [](const InFlight& f) {
                                    return f.migration->completed();
                                  }),
                   in_flight_.end());
}

bool MigrationOrchestrator::estimates_stable() const {
  for (const Entry& e : entries_) {
    if (!e.controller->stable()) return false;
  }
  return true;
}

bool MigrationOrchestrator::estimates_ready() {
  if (!config_.wait_for_stable_estimates) return true;
  if (!estimates_ready_ && estimates_stable()) {
    estimates_ready_ = true;  // one-shot: later instability is pressure
  }
  return estimates_ready_;
}

bool MigrationOrchestrator::launch_rebalance(VmHandle* handle,
                                             host::Host* dest) {
  AGILE_CHECK(handle != nullptr && dest != nullptr);
  retire_completed();
  Entry* entry = nullptr;
  for (Entry& e : entries_) {
    if (e.handle == handle) {
      entry = &e;
      break;
    }
  }
  AGILE_CHECK_MSG(entry != nullptr, "rebalance of an untracked VM");
  host::Host* source = testbed_->host_of(handle->machine);
  AGILE_CHECK_MSG(source != nullptr, "rebalance victim resides on no host");
  AGILE_CHECK_MSG(source != dest, "rebalance destination is the source");
  if (vm_in_flight(handle)) return false;
  if (link_load(source, dest) >= config_.per_link_in_flight_cap) return false;
  Bytes estimate = entry->controller->wss_estimate();
  AGILE_LOG_INFO("orchestrator: rebalancing %s (WSS %.1f GiB) from %s to %s",
                 handle->machine->name().c_str(), to_gib(estimate),
                 source->name().c_str(), dest->name().c_str());
  migrations_.push_back(
      testbed_->make_migration_to(config_.technique, *handle, dest, estimate));
  migrations_.back()->start();
  in_flight_.push_back(
      {migrations_.back().get(), handle, source, dest, estimate});
  if (stats_.launches != nullptr) stats_.launches->inc();
  publish_in_flight_stats();
  if (on_migration_) on_migration_(handle, dest);
  return true;
}

void MigrationOrchestrator::evaluate(SimTime now) {
  retire_completed();
  if (stats_.evaluations != nullptr) stats_.evaluations->inc();
  // Publish after retiring completed migrations and again after the host
  // sweep below: a migration launched this sweep must be visible to every
  // scrape between now and the next evaluation, or a short migration
  // (launch and completion inside one check interval) never shows up.
  publish_in_flight_stats();
  if (now - started_at_ < config_.warmup) return;
  if (!estimates_ready()) return;
  // Every host is a potential source; evaluation order is host index order,
  // so one sweep's launches (and their destination reservations) are
  // deterministic.
  for (std::size_t h = 0; h < testbed_->host_count(); ++h) {
    evaluate_host(now, testbed_->host_at(h));
  }
  publish_in_flight_stats();
}

void MigrationOrchestrator::publish_in_flight_stats() {
  if (stats_.in_flight == nullptr && stats_.reserved_bytes == nullptr) return;
  Bytes reserved = 0;
  for (const InFlight& f : in_flight_) reserved += f.reserved_wss;
  if (stats_.in_flight != nullptr) {
    stats_.in_flight->set(static_cast<std::int64_t>(in_flight_.size()));
  }
  if (stats_.reserved_bytes != nullptr) {
    stats_.reserved_bytes->set(static_cast<std::int64_t>(reserved));
  }
}

void MigrationOrchestrator::evaluate_host(SimTime now, host::Host* source) {
  std::vector<wss::VmPressure> pressures;
  std::vector<Entry*> present;
  for (Entry& e : entries_) {
    if (!source->has_vm(e.handle->machine)) continue;
    // A departing VM's pages still sit on the source, but its migration is
    // already relieving it; counting it would double-trigger.
    if (vm_in_flight(e.handle)) continue;
    pressures.push_back({e.handle->machine->name(),
                         e.controller->wss_estimate()});
    present.push_back(&e);
  }
  last_decision_ = wss::evaluate_watermarks(source->ram(),
                                            source->config().host_os_bytes,
                                            pressures, config_.watermarks);
  if (!last_decision_.pressure || last_decision_.victims.empty()) return;
  if (last_decision_.insufficient) {
    if (stats_.insufficient != nullptr) stats_.insufficient->inc();
    AGILE_LOG_WARN(
        "orchestrator: %s stays over the low watermark even if every "
        "tracked VM leaves (aggregate after %.2f GiB)",
        source->name().c_str(), to_gib(last_decision_.aggregate_after));
  }

  FleetDecision record;
  record.time = now;
  record.source_host = source->name();
  record.trigger = last_decision_;

  // Candidate destinations: every other host, in index order, with its
  // currently committed bytes (tracked WSS + in-flight reservations).
  std::vector<host::Host*> candidates;
  std::vector<wss::HostHeadroom> headrooms;
  for (std::size_t i = 0; i < testbed_->host_count(); ++i) {
    host::Host* dest = testbed_->host_at(i);
    if (dest == source) continue;
    candidates.push_back(dest);
    headrooms.push_back(
        {dest->name(), dest->ram(), committed_bytes(dest), dest->rack()});
  }
  std::vector<Bytes> victim_wss;
  victim_wss.reserve(last_decision_.victims.size());
  for (std::size_t idx : last_decision_.victims) {
    victim_wss.push_back(pressures[idx].wss);
  }
  wss::PlacementPolicy policy = config_.rack_aware_placement
                                    ? wss::PlacementPolicy::kRackAware
                                    : wss::PlacementPolicy::kBestFit;
  std::vector<std::size_t> placement = wss::place_victims(
      victim_wss, headrooms, config_.watermarks.low, policy, source->rack());

  for (std::size_t v = 0; v < last_decision_.victims.size(); ++v) {
    Entry* victim = present[last_decision_.victims[v]];
    if (placement[v] == wss::kNoPlacement) {
      ++record.deferred;
      if (stats_.deferrals != nullptr) stats_.deferrals->inc();
      continue;
    }
    host::Host* dest = candidates[placement[v]];
    // The cap check runs after placement, so a capped victim's reservation
    // is still held against its candidate for the rest of this decision —
    // conservative for one round; the victim retries next evaluation.
    if (link_load(source, dest) >= config_.per_link_in_flight_cap) {
      ++record.deferred;
      if (stats_.deferrals != nullptr) stats_.deferrals->inc();
      continue;
    }
    Bytes estimate = victim->controller->wss_estimate();
    AGILE_LOG_INFO(
        "orchestrator: %s aggregate WSS %.1f GiB over the high watermark; "
        "migrating %s (WSS %.1f GiB) to %s",
        source->name().c_str(), to_gib(last_decision_.aggregate_wss),
        victim->handle->machine->name().c_str(), to_gib(estimate),
        dest->name().c_str());
    migrations_.push_back(testbed_->make_migration_to(
        config_.technique, *victim->handle, dest, estimate));
    migrations_.back()->start();
    in_flight_.push_back(
        {migrations_.back().get(), victim->handle, source, dest, estimate});
    record.launches.push_back(
        {victim->handle->machine->name(), dest->name(), estimate});
    if (stats_.launches != nullptr) stats_.launches->inc();
    if (on_migration_) on_migration_(victim->handle, dest);
  }
  if (stats_.decisions != nullptr) stats_.decisions->inc();
  decisions_.push_back(std::move(record));
}

}  // namespace agile::core
