// Fleet-wide closed-loop memory-pressure response (paper §III-B, automated).
//
// A MigrationOrchestrator owns the whole loop the paper describes, across
// every host of the fleet: it watches the aggregate working-set estimate of
// the tracked VMs on each host, detects high-watermark crossings, selects the
// fewest VMs whose departure brings that host under the low watermark, and
// launches migrations for *all* victims of a decision concurrently — the
// network model shares the links max–min fairly, so a multi-victim decision
// drains in parallel instead of serially. Destinations are chosen by the pure
// best-fit policy in wss/ and admission-controlled against their own low
// watermark with reservation = tracked WSS, so relieving one host cannot
// cascade pressure onto another. A per-link in-flight cap bounds how many
// simultaneous migrations share one source→destination pair; victims beyond
// the cap (or without an admissible destination) are deferred and retried on
// later evaluations while pressure persists.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "stats/stats.hpp"
#include "wss/reservation_controller.hpp"
#include "wss/watermark_trigger.hpp"

namespace agile::core {

struct MigrationOrchestratorConfig {
  wss::WatermarkConfig watermarks;
  SimTime check_interval = sec(10);
  /// Grace period after start before the first evaluation (lets the
  /// reservation controllers converge on initial estimates).
  SimTime warmup = sec(30);
  /// Additionally hold off until every tracked controller has reached its
  /// first stable estimate — initial cgroup reservations are not working
  /// sets, and acting on them migrates the wrong VM.
  bool wait_for_stable_estimates = true;
  wss::WssConfig wss;  ///< Controller parameters applied to every tracked VM.
  /// Engine used for orchestrated migrations (per-VM swap techniques only).
  Technique technique = Technique::kAgile;
  /// Max concurrent migrations sharing one source→destination link. Victims
  /// over the cap are deferred to a later evaluation, not dropped.
  std::uint32_t per_link_in_flight_cap = 2;
  /// Place victims with wss::PlacementPolicy::kRackAware (same-rack best
  /// fit first, global fallback) instead of plain best-fit. Only changes
  /// behavior on a rack topology — on the flat default every candidate
  /// shares rack 0 and the policies coincide.
  bool rack_aware_placement = false;
};

/// One VM launched by a fleet decision (for observability / bench output).
struct FleetLaunch {
  std::string vm;
  std::string dest;
  Bytes reserved_wss = 0;
};

/// One pressured watermark evaluation of one host, with what came of it.
struct FleetDecision {
  SimTime time = 0;
  std::string source_host;
  wss::TriggerDecision trigger;
  std::vector<FleetLaunch> launches;
  /// Victims without an admissible destination or over the link cap; they
  /// stay on the source and are re-evaluated while pressure persists.
  std::uint32_t deferred = 0;
};

class MigrationOrchestrator {
 public:
  MigrationOrchestrator(Testbed* testbed,
                        MigrationOrchestratorConfig config = {});
  ~MigrationOrchestrator();

  MigrationOrchestrator(const MigrationOrchestrator&) = delete;
  MigrationOrchestrator& operator=(const MigrationOrchestrator&) = delete;

  /// Registers a VM for tracking + eligibility for migration. Must use a
  /// per-VM swap device (the controller reads its iostat window, and the
  /// orchestrated techniques require a portable namespace).
  void track(VmHandle* handle);

  /// Starts the controllers and the fleet-wide watermark monitor.
  void start();
  void stop();

  std::size_t tracked_count() const { return entries_.size(); }
  /// Tracked VM / its reservation controller by registration index (for
  /// stats binding and tests).
  VmHandle* tracked_at(std::size_t i) const { return entries_[i].handle; }
  wss::ReservationController* controller_at(std::size_t i) const {
    return entries_[i].controller.get();
  }

  const MigrationOrchestratorConfig& config() const { return config_; }

  /// Admission reservations currently held against `host` by in-flight
  /// migrations whose VM has not yet attached there.
  Bytes reserved_bytes_at(const host::Host* host) const;

  /// Registers the orchestrator's counters/gauges on `registry` (decision /
  /// deferral / admission / reservation counts). Coordinator-thread-only;
  /// call before start(). Pass nullptr to detach.
  void bind_stats(stats::Registry* registry);

  /// Working-set estimate for a tracked VM.
  Bytes wss_estimate(const VmHandle* handle) const;

  /// Migrations launched so far (completed or in flight, launch order).
  const std::vector<std::unique_ptr<migration::MigrationManager>>& migrations()
      const {
    return migrations_;
  }
  std::size_t migrations_launched() const { return migrations_.size(); }
  std::size_t migrations_in_flight() const;

  /// Most recent watermark evaluation (of any host, for observability).
  const wss::TriggerDecision& last_decision() const { return last_decision_; }

  /// Every pressured decision so far, in evaluation order (host index order
  /// within one sweep) — the deterministic record the fleet bench prints.
  const std::vector<FleetDecision>& decisions() const { return decisions_; }

  /// Optional callback fired per launched migration (victim, destination).
  void set_on_migration(std::function<void(VmHandle*, host::Host*)> fn) {
    on_migration_ = std::move(fn);
  }

  // --- Shared fleet-state queries (the FleetRebalancer plans rounds on
  // --- exactly the orchestrator's admission view, so its moves and the
  // --- watermark responses can never disagree about what is committed).

  /// Whether `handle`'s VM has a launched, not-yet-completed migration.
  bool vm_in_flight(const VmHandle* handle) const;
  /// In-flight migrations currently sharing the source→dest pair.
  std::size_t link_load(const host::Host* source, const host::Host* dest) const;
  /// Bytes already claimed against `host`'s RAM: host OS + working sets of
  /// resident VMs (tracked estimate, else resident bytes) + reservations of
  /// in-flight migrations targeting it.
  Bytes committed_bytes(host::Host* host) const;
  /// Whether every tracked controller has reached a stable estimate right
  /// now. A VM pinned hungry at its reservation cap is never stable, so
  /// policy code should usually gate on estimates_ready() instead.
  bool estimates_stable() const;
  /// One-shot readiness latch: true once every controller has been stable
  /// simultaneously (or wait_for_stable_estimates is off). Later
  /// instability is pressure to act on, not a reason to wait — evaluate()
  /// and the FleetRebalancer both gate on this.
  bool estimates_ready();

  /// Launches a policy-driven (rebalancing) migration of a tracked VM to
  /// `dest`, through the same throttle and accounting as watermark
  /// responses: refused (returns false) while the VM is already in flight
  /// or the source→dest link is at its in-flight cap; on success the VM's
  /// WSS estimate is reserved against `dest` until the migration completes.
  /// Admission against dest's watermark is the *caller's* policy decision —
  /// destination-swap pairs intentionally overlap reservations.
  bool launch_rebalance(VmHandle* handle, host::Host* dest);

 private:
  struct Entry {
    VmHandle* handle;
    std::unique_ptr<wss::ReservationController> controller;
  };
  /// A not-yet-completed migration and the WSS it reserves at its
  /// destination for admission control.
  struct InFlight {
    migration::MigrationManager* migration;
    VmHandle* handle;
    host::Host* source;
    host::Host* dest;
    Bytes reserved_wss;
  };

  void evaluate(SimTime now);
  void evaluate_host(SimTime now, host::Host* source);
  /// Publishes the in-flight/reservation gauges (no-op when unbound).
  void publish_in_flight_stats();
  /// Drops in-flight entries whose migration has completed (releases their
  /// destination reservations).
  void retire_completed();

  Testbed* testbed_;
  MigrationOrchestratorConfig config_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<migration::MigrationManager>> migrations_;
  std::vector<InFlight> in_flight_;
  std::shared_ptr<sim::PeriodicTask> monitor_;
  SimTime started_at_ = -1;
  bool estimates_ready_ = false;
  wss::TriggerDecision last_decision_;
  std::vector<FleetDecision> decisions_;
  struct StatsCells {
    stats::Counter* evaluations = nullptr;
    stats::Counter* decisions = nullptr;
    stats::Counter* launches = nullptr;
    stats::Counter* deferrals = nullptr;
    stats::Counter* insufficient = nullptr;
    stats::Gauge* in_flight = nullptr;
    stats::Gauge* reserved_bytes = nullptr;
  };
  StatsCells stats_;
  std::function<void(VmHandle*, host::Host*)> on_migration_;
};

}  // namespace agile::core
