// Closed-loop memory-pressure response (paper §III-B, automated).
//
// A PressureResponder owns the whole loop the paper describes: it watches
// the aggregate working-set estimate of every tracked VM on one host,
// detects high-watermark crossings, selects the fewest VMs whose departure
// brings the aggregate under the low watermark, and launches Agile
// migrations for them (serially — the migration channel is shared). After a
// migration the VM's reservation at the destination equals its tracked WSS,
// so the destination admits exactly the working set.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "wss/reservation_controller.hpp"
#include "wss/watermark_trigger.hpp"

namespace agile::core {

struct PressureResponderConfig {
  wss::WatermarkConfig watermarks;
  SimTime check_interval = sec(10);
  /// Grace period after start before the first evaluation (lets the
  /// reservation controllers converge on initial estimates).
  SimTime warmup = sec(30);
  /// Additionally hold off until every tracked controller has reached its
  /// first stable estimate — initial cgroup reservations are not working
  /// sets, and acting on them migrates the wrong VM.
  bool wait_for_stable_estimates = true;
  wss::WssConfig wss;  ///< Controller parameters applied to every tracked VM.
};

class PressureResponder {
 public:
  PressureResponder(Testbed* testbed, PressureResponderConfig config = {});
  ~PressureResponder();

  PressureResponder(const PressureResponder&) = delete;
  PressureResponder& operator=(const PressureResponder&) = delete;

  /// Registers a VM for tracking + eligibility for migration. Must use a
  /// per-VM swap device (Agile migration requires it).
  void track(VmHandle* handle);

  /// Starts the controllers and the watermark monitor.
  void start();
  void stop();

  std::size_t tracked_count() const { return entries_.size(); }

  /// Working-set estimate for a tracked VM.
  Bytes wss_estimate(const VmHandle* handle) const;

  /// Migrations launched so far (completed or in flight, launch order).
  const std::vector<std::unique_ptr<migration::MigrationManager>>& migrations()
      const {
    return migrations_;
  }
  std::size_t migrations_launched() const { return migrations_.size(); }
  bool migration_in_flight() const;

  /// Most recent watermark evaluation (for observability).
  const wss::TriggerDecision& last_decision() const { return last_decision_; }

  /// Optional callback fired when a migration is launched.
  void set_on_migration(std::function<void(VmHandle*)> fn) {
    on_migration_ = std::move(fn);
  }

 private:
  struct Entry {
    VmHandle* handle;
    std::unique_ptr<wss::ReservationController> controller;
  };

  void evaluate(SimTime now);

  Testbed* testbed_;
  PressureResponderConfig config_;
  std::vector<Entry> entries_;
  std::vector<std::unique_ptr<migration::MigrationManager>> migrations_;
  std::shared_ptr<sim::PeriodicTask> monitor_;
  SimTime started_at_ = -1;
  bool estimates_ready_ = false;
  wss::TriggerDecision last_decision_;
  std::function<void(VmHandle*)> on_migration_;
};

}  // namespace agile::core
