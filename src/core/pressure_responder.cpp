#include "core/pressure_responder.hpp"

#include "util/log.hpp"

namespace agile::core {

PressureResponder::PressureResponder(Testbed* testbed,
                                     PressureResponderConfig config)
    : testbed_(testbed), config_(config) {
  AGILE_CHECK(testbed_ != nullptr);
}

PressureResponder::~PressureResponder() { stop(); }

void PressureResponder::track(VmHandle* handle) {
  AGILE_CHECK(handle != nullptr);
  AGILE_CHECK_MSG(handle->per_vm_swap != nullptr,
                  "pressure response requires per-VM swap devices");
  AGILE_CHECK_MSG(monitor_ == nullptr, "track VMs before start()");
  entries_.push_back({handle, std::make_unique<wss::ReservationController>(
                                  &testbed_->cluster(), handle->machine,
                                  config_.wss)});
}

void PressureResponder::start() {
  AGILE_CHECK_MSG(monitor_ == nullptr, "already started");
  started_at_ = testbed_->cluster().simulation().now();
  for (Entry& e : entries_) e.controller->start();
  monitor_ = testbed_->cluster().simulation().schedule_periodic(
      config_.check_interval, [this](SimTime now) { evaluate(now); });
}

void PressureResponder::stop() {
  if (monitor_ != nullptr) {
    monitor_->cancel();
    monitor_.reset();
  }
  for (Entry& e : entries_) e.controller->stop();
}

Bytes PressureResponder::wss_estimate(const VmHandle* handle) const {
  for (const Entry& e : entries_) {
    if (e.handle == handle) return e.controller->wss_estimate();
  }
  AGILE_CHECK_MSG(false, "VM not tracked");
  return 0;
}

bool PressureResponder::migration_in_flight() const {
  for (const auto& m : migrations_) {
    if (!m->completed()) return true;
  }
  return false;
}

void PressureResponder::evaluate(SimTime now) {
  if (now - started_at_ < config_.warmup) return;
  if (config_.wait_for_stable_estimates && !estimates_ready_) {
    for (const Entry& e : entries_) {
      if (!e.controller->stable()) return;
    }
    estimates_ready_ = true;  // one-shot gate: later instability is pressure
  }
  // One migration at a time: they share the migration channel, and each
  // departure changes the pressure picture.
  if (migration_in_flight()) return;

  host::Host* source = testbed_->source();
  std::vector<wss::VmPressure> pressures;
  std::vector<Entry*> present;
  for (Entry& e : entries_) {
    if (!source->has_vm(e.handle->machine)) continue;
    pressures.push_back({e.handle->machine->name(), e.controller->wss_estimate()});
    present.push_back(&e);
  }
  last_decision_ = wss::evaluate_watermarks(source->ram(),
                                       source->config().host_os_bytes,
                                       pressures, config_.watermarks);
  if (!last_decision_.pressure || last_decision_.victims.empty()) return;

  // Launch the first victim now; the rest will be picked up on subsequent
  // evaluations if pressure persists after this migration completes.
  Entry* victim = present[last_decision_.victims.front()];
  AGILE_LOG_INFO(
      "pressure responder: aggregate WSS %.1f GiB over the high watermark; "
      "migrating %s (WSS %.1f GiB)",
      to_gib(last_decision_.aggregate_wss),
      victim->handle->machine->name().c_str(),
      to_gib(victim->controller->wss_estimate()));
  migrations_.push_back(testbed_->make_migration(
      Technique::kAgile, *victim->handle,
      victim->controller->wss_estimate()));
  migrations_.back()->start();
  if (on_migration_) on_migration_(victim->handle);
}

}  // namespace agile::core
