// Canned experiment scenarios matching the paper's evaluation setups (§V).
//
// Three scenarios cover every figure and table:
//
//  * Consolidation (§V-A, §V-C, Figs. 4–6, Tables I–III): a 23 GB source
//    host running four 10 GB / 2 vCPU VMs with 5.5 GB reservations, each
//    serving a 9 GB dataset (YCSB/Redis or Sysbench/MySQL) to an external
//    client; load ramps per VM, then one VM is migrated to relieve pressure.
//  * SingleVm (§V-B, Figs. 7–8): a 6 GB host with one VM of 2–12 GB, idle or
//    busy, migrated mid-test.
//  * WssTracking (§V-D, Figs. 9–10): one 5 GB VM with a 1.5 GB dataset on a
//    128 GB host, under the reservation controller.
#pragma once

#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "trace/trace.hpp"
#include "workload/oltp.hpp"
#include "workload/ycsb.hpp"
#include "wss/reservation_controller.hpp"

namespace agile::core::scenarios {

enum class AppKind { kYcsb, kOltp };

struct ConsolidationOptions {
  Technique technique = Technique::kAgile;
  AppKind app = AppKind::kYcsb;
  std::uint32_t vm_count = 4;
  Bytes host_ram = 23_GiB;
  Bytes vm_memory = 10_GiB;
  Bytes reservation = 5632_MiB;  ///< 5.5 GB, manually matched to the WS.
  Bytes dataset = 9_GiB;         ///< 8 GiB for Sysbench in the paper.
  Bytes guest_os = 200_MiB;      ///< Guest kernel + server binaries.
  Bytes initial_active = 200_MiB;
  Bytes ramped_active = 6_GiB;
  /// Read share of YCSB ops. The paper's phase 1 is read-only but the ramped
  /// phase retransmits gigabytes under pre-copy, implying an update-heavy
  /// mix (YCSB A/B territory).
  double read_fraction = 0.7;
  std::uint64_t seed = 42;
};

struct Consolidation {
  ConsolidationOptions options;
  std::unique_ptr<Testbed> bed;
  std::vector<VmHandle*> handles;
  std::vector<workload::Workload*> loads;
  std::vector<std::unique_ptr<ThroughputProbe>> probes;
  std::unique_ptr<migration::MigrationManager> migration;

  /// Loads all datasets (simulated time 0; call before running).
  void load_all();

  /// Schedules the §V-A script: starting at `ramp_start`, one VM's active
  /// set widens to `ramped_active` every `ramp_step` (YCSB only — Sysbench
  /// runs at full intensity throughout).
  void schedule_ramp(SimTime ramp_start = sec(150), SimTime ramp_step = sec(50));

  /// Schedules the migration of VM 0 at `at` (paper: t = 400 s).
  void schedule_migration(SimTime at);

  /// Average client throughput across all VMs: mean of the per-VM series.
  metrics::TimeSeries average_throughput() const;
};

/// Builds the consolidation testbed, VMs and workloads (datasets not yet
/// loaded — call `load_all`).
Consolidation make_consolidation(const ConsolidationOptions& options);

struct SingleVmOptions {
  Technique technique = Technique::kAgile;
  Bytes host_ram = 6_GiB;
  Bytes vm_memory = 8_GiB;
  bool busy = false;  ///< Busy: Redis dataset ≈ memory − 500 MB + YCSB client.
  Bytes guest_os = 200_MiB;
  Bytes free_margin = 500_MiB;  ///< "leaving only 500MB of free memory".
  /// Busy client's read share (update-heavy enough to matter for pre-copy).
  double read_fraction = 0.7;
  std::uint64_t seed = 42;
  /// Record a trace of the run (spans/counters from every layer). Read it
  /// from `SingleVm::session` after the migration.
  bool trace = false;
};

struct SingleVm {
  /// First member: outlives the testbed so teardown events are captured and
  /// the recorder stays installed until everything else is destroyed.
  /// Heap-allocated because SingleVm is moved around (the session's address
  /// must stay stable — it is installed as the thread's recorder).
  std::unique_ptr<trace::TraceSession> session;
  SingleVmOptions options;
  std::unique_ptr<Testbed> bed;
  VmHandle* handle = nullptr;
  workload::YcsbWorkload* ycsb = nullptr;  ///< Null when idle.
  std::unique_ptr<migration::MigrationManager> migration;

  /// Fills guest memory (idle VMs have touched memory too — page cache) or
  /// loads the dataset, then settles the testbed briefly.
  void prepare();

  /// Starts the migration now and runs until it completes (or `limit_s`).
  void run_migration(double limit_s = 36000);
};

SingleVm make_single_vm(const SingleVmOptions& options);

struct WssTrackingOptions {
  Bytes host_ram = 128_GiB;
  Bytes vm_memory = 5_GiB;
  Bytes initial_reservation = 5_GiB;
  Bytes dataset = 1536_MiB;  ///< 1.5 GB Redis.
  Bytes guest_os = 200_MiB;
  wss::WssConfig wss;        ///< α=0.95, β=1.03, τ=4 KB/s per the paper.
  std::uint64_t seed = 42;
};

struct WssTracking {
  WssTrackingOptions options;
  std::unique_ptr<Testbed> bed;
  VmHandle* handle = nullptr;
  workload::YcsbWorkload* ycsb = nullptr;
  std::unique_ptr<wss::ReservationController> controller;
  std::unique_ptr<ThroughputProbe> probe;

  void load();
};

WssTracking make_wss_tracking(const WssTrackingOptions& options);

}  // namespace agile::core::scenarios
