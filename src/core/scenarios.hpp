// Canned experiment scenarios matching the paper's evaluation setups (§V).
//
// Three scenarios cover every figure and table:
//
//  * Consolidation (§V-A, §V-C, Figs. 4–6, Tables I–III): a 23 GB source
//    host running four 10 GB / 2 vCPU VMs with 5.5 GB reservations, each
//    serving a 9 GB dataset (YCSB/Redis or Sysbench/MySQL) to an external
//    client; load ramps per VM, then one VM is migrated to relieve pressure.
//  * SingleVm (§V-B, Figs. 7–8): a 6 GB host with one VM of 2–12 GB, idle or
//    busy, migrated mid-test.
//  * WssTracking (§V-D, Figs. 9–10): one 5 GB VM with a 1.5 GB dataset on a
//    128 GB host, under the reservation controller.
//  * Fleet (beyond the paper's two-host bed): N VMs consolidated on one host
//    of a multi-host fleet under the MigrationOrchestrator; several working
//    sets widen at once, so one watermark decision selects multiple victims
//    and spreads them across destinations concurrently.
#pragma once

#include <memory>
#include <vector>

#include "core/fleet_rebalancer.hpp"
#include "core/fleet_stats.hpp"
#include "core/migration_orchestrator.hpp"
#include "core/testbed.hpp"
#include "trace/trace.hpp"
#include "workload/oltp.hpp"
#include "workload/ycsb.hpp"
#include "wss/reservation_controller.hpp"

namespace agile::core::scenarios {

enum class AppKind { kYcsb, kOltp };

struct ConsolidationOptions {
  Technique technique = Technique::kAgile;
  AppKind app = AppKind::kYcsb;
  std::uint32_t vm_count = 4;
  Bytes host_ram = 23_GiB;
  Bytes vm_memory = 10_GiB;
  Bytes reservation = 5632_MiB;  ///< 5.5 GB, manually matched to the WS.
  Bytes dataset = 9_GiB;         ///< 8 GiB for Sysbench in the paper.
  Bytes guest_os = 200_MiB;      ///< Guest kernel + server binaries.
  Bytes initial_active = 200_MiB;
  Bytes ramped_active = 6_GiB;
  /// Read share of YCSB ops. The paper's phase 1 is read-only but the ramped
  /// phase retransmits gigabytes under pre-copy, implying an update-heavy
  /// mix (YCSB A/B territory).
  double read_fraction = 0.7;
  std::uint64_t seed = 42;
};

struct Consolidation {
  ConsolidationOptions options;
  std::unique_ptr<Testbed> bed;
  std::vector<VmHandle*> handles;
  std::vector<workload::Workload*> loads;
  std::vector<std::unique_ptr<ThroughputProbe>> probes;
  std::unique_ptr<migration::MigrationManager> migration;

  /// Loads all datasets (simulated time 0; call before running).
  void load_all();

  /// Schedules the §V-A script: starting at `ramp_start`, one VM's active
  /// set widens to `ramped_active` every `ramp_step` (YCSB only — Sysbench
  /// runs at full intensity throughout).
  void schedule_ramp(SimTime ramp_start = sec(150), SimTime ramp_step = sec(50));

  /// Schedules the migration of VM 0 at `at` (paper: t = 400 s).
  void schedule_migration(SimTime at);

  /// Average client throughput across all VMs: mean of the per-VM series.
  metrics::TimeSeries average_throughput() const;
};

/// Builds the consolidation testbed, VMs and workloads (datasets not yet
/// loaded — call `load_all`).
Consolidation make_consolidation(const ConsolidationOptions& options);

struct SingleVmOptions {
  Technique technique = Technique::kAgile;
  Bytes host_ram = 6_GiB;
  Bytes vm_memory = 8_GiB;
  bool busy = false;  ///< Busy: Redis dataset ≈ memory − 500 MB + YCSB client.
  Bytes guest_os = 200_MiB;
  Bytes free_margin = 500_MiB;  ///< "leaving only 500MB of free memory".
  /// Busy client's read share (update-heavy enough to matter for pre-copy).
  double read_fraction = 0.7;
  std::uint64_t seed = 42;
  /// Record a trace of the run (spans/counters from every layer). Read it
  /// from `SingleVm::session` after the migration.
  bool trace = false;
  /// Record deterministic metrics snapshots every `stats_interval`; read
  /// them from `SingleVm::registry` after the run (see src/stats).
  bool stats = false;
  SimTime stats_interval = sec(1);
  /// Wire data-path knobs. Defaults keep the classic single-stream,
  /// uncompressed path (byte-identical to the pre-multi-stream scenarios).
  std::uint32_t num_streams = 1;
  migration::Compression compression = migration::Compression::kOff;
  /// Fraction of the VM's prefilled pages that are all-zero (elided to
  /// descriptors when > 0).
  double zero_page_fraction = 0.0;
  /// Network overrides; 0 keeps the NetworkConfig defaults (1 Gbps NIC,
  /// no per-flow cap).
  double link_bits_per_sec = 0.0;
  double flow_max_bits_per_sec = 0.0;
  /// Send-window override; 0 keeps the engine default.
  Bytes send_window = 0;
};

struct SingleVm {
  /// First member: outlives the testbed so teardown events are captured and
  /// the recorder stays installed until everything else is destroyed.
  /// Heap-allocated because SingleVm is moved around (the session's address
  /// must stay stable — it is installed as the thread's recorder).
  std::unique_ptr<trace::TraceSession> session;
  SingleVmOptions options;
  std::unique_ptr<Testbed> bed;
  /// Engaged when options.stats: the registry outlives the collector, and
  /// the collector (whose scrape task lives in the cluster) is declared
  /// after `bed` so it is destroyed first.
  std::unique_ptr<stats::Registry> registry;
  std::unique_ptr<FleetStatsCollector> collector;
  VmHandle* handle = nullptr;
  workload::YcsbWorkload* ycsb = nullptr;  ///< Null when idle.
  std::unique_ptr<migration::MigrationManager> migration;

  /// Fills guest memory (idle VMs have touched memory too — page cache) or
  /// loads the dataset, then settles the testbed briefly.
  void prepare();

  /// Starts the migration now and runs until it completes (or `limit_s`).
  void run_migration(double limit_s = 36000);
};

SingleVm make_single_vm(const SingleVmOptions& options);

struct WssTrackingOptions {
  Bytes host_ram = 128_GiB;
  Bytes vm_memory = 5_GiB;
  Bytes initial_reservation = 5_GiB;
  Bytes dataset = 1536_MiB;  ///< 1.5 GB Redis.
  Bytes guest_os = 200_MiB;
  wss::WssConfig wss;        ///< α=0.95, β=1.03, τ=4 KB/s per the paper.
  std::uint64_t seed = 42;
};

struct WssTracking {
  WssTrackingOptions options;
  std::unique_ptr<Testbed> bed;
  VmHandle* handle = nullptr;
  workload::YcsbWorkload* ycsb = nullptr;
  std::unique_ptr<wss::ReservationController> controller;
  std::unique_ptr<ThroughputProbe> probe;

  void load();
};

WssTracking make_wss_tracking(const WssTrackingOptions& options);

/// Brisk controller factors so fleet scenarios converge in simulated minutes
/// (the paper's α=0.95/β=1.03 takes tens of minutes to track a step).
inline wss::WssConfig fleet_wss_defaults() {
  wss::WssConfig w;
  w.alpha = 0.80;
  w.beta = 1.15;
  return w;
}

struct FleetOptions {
  Technique technique = Technique::kAgile;
  std::uint32_t host_count = 4;   ///< Host 0 + (N−1) destinations.
  std::uint32_t vm_count = 6;     ///< All start consolidated on host 0.
  Bytes source_ram = 2_GiB;       ///< Host 0.
  /// Hosts 1..N−1. Sized so one widened working set fills a destination to
  /// its low watermark — a multi-victim decision must spread out — yet a
  /// single estimate at its cap (`vm_memory`) still fits under low, so a
  /// post-arrival estimate spike cannot push a destination into pressure.
  Bytes dest_ram = 1536_MiB;
  Bytes host_os = 64_MiB;
  Bytes vm_memory = 1_GiB;
  Bytes reservation = 512_MiB;
  Bytes dataset = 768_MiB;
  Bytes guest_os = 32_MiB;
  Bytes initial_active = 96_MiB;
  Bytes hot_active = 512_MiB;     ///< Widened working set of the hot VMs.
  std::uint32_t hot_vms = 3;      ///< VMs 0..hot_vms−1 turn hot together.
  SimTime hot_at = sec(90);
  double read_fraction = 0.8;
  /// Outstanding client requests per VM (YcsbConfig::concurrency). Topology
  /// benches lower this so background RPC traffic does not saturate the
  /// oversubscribed leaf tier and drown the reservation controllers.
  std::uint32_t ycsb_concurrency = 8;
  wss::WatermarkConfig watermarks;
  wss::WssConfig wss = fleet_wss_defaults();
  std::uint32_t per_link_cap = 2;
  std::uint64_t seed = 42;
  /// Record deterministic metrics snapshots every `stats_interval` (host /
  /// VM / VMD / migration-health / orchestrator series); read them from
  /// `Fleet::registry` after the run.
  bool stats = false;
  SimTime stats_interval = sec(1);
  /// Scaling benches: start VM i on host i % host_count instead of
  /// consolidating everyone on host 0, so per-host phase work is spread and
  /// lane scaling is visible. The default keeps the consolidated hotspot bed.
  bool spread_initial = false;
  /// ClusterConfig::lanes passthrough (0: AGILE_SIM_LANES env / 1).
  std::uint32_t lanes = 0;
  /// VMD capacity of the single intermediate host. Scaling benches raise it
  /// with the fleet so the lane planner's near-full safety collapse (see
  /// Testbed::plan_lanes) never triggers.
  Bytes vmd_server_capacity = 64_GiB;
  /// Rack topology: 0 keeps the flat single-switch network (byte-identical
  /// to every historical run). Otherwise the cluster is built on an
  /// oversubscribed leaf-spine fabric with this many racks; hosts are
  /// block-assigned (host i → rack i / (host_count / racks)) and host_count
  /// must divide evenly.
  std::uint32_t racks = 0;
  /// Core oversubscription ratio of the leaf-spine fabric (racks > 0 only).
  double oversubscription = 4.0;
  /// Orchestrator victim placement prefers destinations in the source's
  /// rack (wss::PlacementPolicy::kRackAware).
  bool rack_aware_placement = false;
  /// Run a FleetRebalancer alongside the orchestrator (the caller starts it
  /// together with the orchestrator).
  bool rebalance = false;
  FleetRebalancerConfig rebalancer_config;
  /// With racks: make the hot set the first hot_vms/racks VMs *of each
  /// rack* instead of the first hot_vms VMs globally, creating a per-rack
  /// hotspot with cold local neighbors (requires spread_initial and
  /// hot_vms divisible by racks).
  bool hot_per_rack = false;
};

struct Fleet {
  FleetOptions options;
  std::unique_ptr<Testbed> bed;
  std::vector<VmHandle*> handles;
  std::vector<workload::YcsbWorkload*> ycsbs;
  std::unique_ptr<MigrationOrchestrator> orchestrator;
  /// Engaged when options.rebalance (declared after the orchestrator it
  /// launches through; destroyed first, cancelling its round task).
  std::unique_ptr<FleetRebalancer> rebalancer;
  /// Engaged when options.stats (declared after bed/orchestrator: the
  /// collector is destroyed first, cancelling its scrape task).
  std::unique_ptr<stats::Registry> registry;
  std::unique_ptr<FleetStatsCollector> collector;

  /// Loads all datasets (simulated time 0; call before running), then
  /// schedules the hotspot step: at `hot_at` the first `hot_vms` clients
  /// widen their active sets to `hot_active` simultaneously.
  void load_all();

  /// Host index a VM currently resides on (for reports).
  std::size_t host_index_of(const VmHandle* handle) const;
};

/// Builds the fleet testbed, VMs, workloads and orchestrator (all VMs
/// tracked; datasets not yet loaded — call `load_all`, then
/// `orchestrator->start()`).
Fleet make_fleet(const FleetOptions& options);

}  // namespace agile::core::scenarios
