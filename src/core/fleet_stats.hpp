// Fleet-wide stats collection: the bridge between a Testbed and a
// stats::Registry.
//
// A FleetStatsCollector pre-registers per-host and per-VM gauges on the
// coordinator thread (stable registration order: hosts by index, VMs by
// index), then drives a periodic scrape through Cluster::start_scrape. The
// per-host half runs inside the host's event lane — it only *sets* gauges
// owned by that host's resident VMs (a VM lives on exactly one host, so each
// cell has a single writer per scrape window; the cells themselves are
// relaxed-atomic). The finalize half runs on the coordinator thread after
// the lane barrier: VMD occupancy, per-host network counters and link
// utilization, per-migration health (model-derived ETA / projected
// downtime), orchestrator gauges, then one registry snapshot. Everything is
// integer state of the simulation, so snapshots are byte-identical at any
// lane count, job count or audit mode.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "stats/health.hpp"
#include "stats/stats.hpp"

namespace agile::core {

class MigrationOrchestrator;

class FleetStatsCollector {
 public:
  FleetStatsCollector(Testbed* bed, stats::Registry* registry);
  ~FleetStatsCollector();

  FleetStatsCollector(const FleetStatsCollector&) = delete;
  FleetStatsCollector& operator=(const FleetStatsCollector&) = delete;

  /// Also scrape orchestrator state: decision counters (bound directly on
  /// the orchestrator), per-VM WSS estimates, and per-host watermark
  /// distance. Call before start().
  void set_orchestrator(MigrationOrchestrator* orchestrator);

  /// Registers all static metrics and begins scraping every `interval`.
  void start(SimTime interval);
  void stop();

  stats::Registry* registry() { return registry_; }

 private:
  struct HostCells {
    stats::Gauge* ram_used = nullptr;
    stats::Gauge* vm_count = nullptr;
    stats::Counter* net_tx = nullptr;
    stats::Counter* net_rx = nullptr;
    stats::Gauge* link_util_pct = nullptr;
    stats::Gauge* watermark_distance = nullptr;  ///< Null w/o orchestrator.
    std::uint64_t prev_tx = 0;  ///< Coordinator-only (utilization window).
    std::uint64_t prev_rx = 0;
  };
  struct VmCells {
    stats::Gauge* resident = nullptr;
    stats::Gauge* swapped = nullptr;
    stats::Gauge* remote = nullptr;
    stats::Gauge* zero = nullptr;
    stats::Gauge* reservation = nullptr;
    stats::Counter* major_faults = nullptr;
    stats::Counter* swap_ins = nullptr;
    stats::Counter* swap_outs = nullptr;
  };
  struct VmdCells {
    stats::Gauge* used = nullptr;
    stats::Gauge* free = nullptr;
    stats::Gauge* memory_pages = nullptr;
    stats::Gauge* disk_pages = nullptr;
  };
  /// One link tier of the fabric (host NIC up/down, leaf up/down). Only
  /// registered on a rack (leaf-spine) topology — the flat default keeps
  /// its historical metric set byte-identical.
  struct TierCells {
    net::LinkTier tier = net::LinkTier::kHostUp;
    stats::Counter* bytes_total = nullptr;
    stats::Gauge* util_pct = nullptr;       ///< Mean over the scrape window.
    stats::Gauge* peak_util_pct = nullptr;  ///< Max link util, last quantum.
    Bytes prev_bytes = 0;  ///< Coordinator-only (utilization window).
  };
  /// One observed migration, keyed by VM name (never by pointer: managers
  /// are destroyed and reallocated, and name keys keep map order
  /// deterministic). Health gauges are registered on first sight.
  struct MigrationTrack {
    SimTime start_time = -1;  ///< Detects manager reuse for the same VM.
    stats::MigrationHealthModel model;
    stats::Gauge* phase = nullptr;
    stats::Gauge* pages_owed = nullptr;
    stats::Gauge* pages_remote = nullptr;
    stats::Gauge* backlog = nullptr;
    stats::Gauge* bytes_wire = nullptr;
    stats::Gauge* transfer_rate = nullptr;
    stats::Gauge* eta = nullptr;
    stats::Gauge* projected_downtime = nullptr;
    bool completion_recorded = false;
  };

  void register_static_metrics();
  void collect_host(std::size_t index, host::Host& host);  ///< Lane context.
  void finalize(SimTime now);                              ///< Coordinator.
  void update_migration_health(SimTime now);
  MigrationTrack& track_for(const std::string& vm_name);

  Testbed* bed_;
  stats::Registry* registry_;
  MigrationOrchestrator* orchestrator_ = nullptr;
  SimTime interval_ = 0;
  std::vector<HostCells> host_cells_;  ///< By host index.
  std::vector<VmCells> vm_cells_;      ///< By testbed VM index.
  /// Lane-side lookup from a resident machine to its cells (lookups only —
  /// never iterated, so the pointer keys cannot leak address order).
  std::map<const vm::VirtualMachine*, std::size_t> vm_index_;
  std::vector<VmdCells> vmd_cells_;    ///< By VMD server index.
  std::vector<TierCells> tier_cells_;  ///< Tier enum order; leaf-spine only.
  std::map<std::string, MigrationTrack> migrations_;  ///< By VM name.
  stats::Histogram* migration_time_ms_ = nullptr;
  stats::Histogram* migration_downtime_ms_ = nullptr;
  stats::Counter* migrations_completed_ = nullptr;
  stats::Counter* scrapes_ = nullptr;
  std::shared_ptr<sim::PeriodicTask> task_;
};

}  // namespace agile::core
