#include "core/fleet_rebalancer.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace agile::core {

namespace {

double load_of(const RebalanceHostState& host) {
  if (host.ram == 0) return 0.0;
  return static_cast<double>(host.committed) / static_cast<double>(host.ram);
}

Bytes admission_limit(const RebalanceHostState& host, double low_watermark) {
  return static_cast<Bytes>(low_watermark * static_cast<double>(host.ram));
}

}  // namespace

std::vector<RebalanceProposal> plan_rebalance_round(
    std::vector<RebalanceHostState> hosts, std::vector<RebalanceVmState> vms,
    const FleetRebalancerConfig& config, double low_watermark) {
  AGILE_CHECK(low_watermark > 0 && low_watermark <= 1.0);
  AGILE_CHECK(config.imbalance_threshold >= 0);
  for (const RebalanceVmState& vm : vms) AGILE_CHECK(vm.host < hosts.size());

  std::vector<RebalanceProposal> proposals;
  std::size_t budget = config.max_moves_per_round;

  auto has_movable = [&](std::size_t h) {
    for (const RebalanceVmState& vm : vms) {
      if (vm.movable && vm.host == h) return true;
    }
    return false;
  };
  // Peak strictly narrows: neither end of the move may end up as loaded as
  // the source was (otherwise rounds could oscillate a VM back and forth).
  auto improves = [&](std::size_t src, std::size_t dst, Bytes src_after,
                      Bytes dst_after) {
    double peak_before = load_of(hosts[src]);
    RebalanceHostState s = hosts[src];
    s.committed = src_after;
    RebalanceHostState d = hosts[dst];
    d.committed = dst_after;
    return std::max(load_of(s), load_of(d)) < peak_before;
  };
  // Smallest movable VM of `src` whose direct move to `dst` is admissible
  // under the low watermark and narrows the peak (ties: lowest index).
  auto pick_direct = [&](std::size_t src, std::size_t dst) {
    std::size_t best = kNoVm;
    for (std::size_t v = 0; v < vms.size(); ++v) {
      if (!vms[v].movable || vms[v].host != src) continue;
      Bytes wss = vms[v].wss;
      if (wss == 0 || wss > hosts[src].committed) continue;
      if (hosts[dst].committed + wss > admission_limit(hosts[dst], low_watermark))
        continue;
      if (!improves(src, dst, hosts[src].committed - wss,
                    hosts[dst].committed + wss))
        continue;
      if (best == kNoVm || wss < vms[best].wss) best = v;
    }
    return best;
  };

  while (budget > 0) {
    // Most loaded host that still has something to move.
    std::size_t src = kNoVm;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (!has_movable(h)) continue;
      if (src == kNoVm || load_of(hosts[h]) > load_of(hosts[src])) src = h;
    }
    if (src == kNoVm) break;
    // Least loaded host overall (the gap that defines imbalance).
    std::size_t coolest = kNoVm;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (h == src) continue;
      if (coolest == kNoVm || load_of(hosts[h]) < load_of(hosts[coolest]))
        coolest = h;
    }
    if (coolest == kNoVm) break;
    if (load_of(hosts[src]) - load_of(hosts[coolest]) <
        config.imbalance_threshold)
      break;

    // Destination preference: with rack awareness, the least loaded host of
    // the source's own rack gets first refusal (keeps the move off the
    // oversubscribed core); the fleet-wide coolest host is the fallback.
    std::vector<std::size_t> dests;
    if (config.rack_aware) {
      std::size_t local = kNoVm;
      for (std::size_t h = 0; h < hosts.size(); ++h) {
        if (h == src || hosts[h].rack != hosts[src].rack) continue;
        if (local == kNoVm || load_of(hosts[h]) < load_of(hosts[local]))
          local = h;
      }
      if (local != kNoVm && local != coolest) dests.push_back(local);
    }
    dests.push_back(coolest);

    bool placed = false;
    for (std::size_t dst : dests) {
      std::size_t vm = pick_direct(src, dst);
      if (vm == kNoVm) continue;
      proposals.push_back({vm, dst, kNoVm});
      hosts[src].committed -= vms[vm].wss;
      hosts[dst].committed += vms[vm].wss;
      vms[vm].movable = false;
      vms[vm].host = dst;
      --budget;
      placed = true;
      break;
    }
    if (placed) continue;

    // No direct move is admissible — the coolest host is itself near its
    // watermark. Destination swap: exchange the source's largest VM with a
    // strictly smaller VM of the destination, so load moves without
    // needing headroom for the whole VM. Costs two migration launches.
    if (!config.enable_swaps || budget < 2) break;
    std::size_t sx = kNoVm, sy = kNoVm;
    // Largest source VM first (ties: lowest index) …
    std::vector<std::size_t> order;
    for (std::size_t v = 0; v < vms.size(); ++v) {
      if (vms[v].movable && vms[v].host == src && vms[v].wss > 0)
        order.push_back(v);
    }
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return vms[a].wss > vms[b].wss;
    });
    for (std::size_t x : order) {
      // … against the smallest strictly-lighter destination VM that keeps
      // the destination admissible and narrows the peak.
      std::size_t best_y = kNoVm;
      for (std::size_t y = 0; y < vms.size(); ++y) {
        if (!vms[y].movable || vms[y].host != coolest) continue;
        if (vms[y].wss == 0 || vms[y].wss >= vms[x].wss) continue;
        Bytes delta = vms[x].wss - vms[y].wss;
        if (delta > hosts[src].committed) continue;
        Bytes dst_after = hosts[coolest].committed + delta;
        Bytes src_after = hosts[src].committed - delta;
        if (dst_after > admission_limit(hosts[coolest], low_watermark)) continue;
        if (!improves(src, coolest, src_after, dst_after)) continue;
        if (best_y == kNoVm || vms[y].wss < vms[best_y].wss) best_y = y;
      }
      if (best_y != kNoVm) {
        sx = x;
        sy = best_y;
        break;
      }
    }
    if (sx == kNoVm) break;
    proposals.push_back({sx, coolest, sy});
    Bytes delta = vms[sx].wss - vms[sy].wss;
    hosts[src].committed -= delta;
    hosts[coolest].committed += delta;
    vms[sx].movable = false;
    vms[sx].host = coolest;
    vms[sy].movable = false;
    vms[sy].host = src;
    budget -= 2;
  }
  return proposals;
}

FleetRebalancer::FleetRebalancer(Testbed* testbed,
                                 MigrationOrchestrator* orchestrator,
                                 FleetRebalancerConfig config)
    : testbed_(testbed), orchestrator_(orchestrator), config_(config) {
  AGILE_CHECK(testbed_ != nullptr && orchestrator_ != nullptr);
  AGILE_CHECK(config_.round_interval > 0);
  AGILE_CHECK(config_.max_moves_per_round >= 1);
}

FleetRebalancer::~FleetRebalancer() { stop(); }

void FleetRebalancer::start() {
  AGILE_CHECK_MSG(task_ == nullptr, "already started");
  started_at_ = testbed_->cluster().simulation().now();
  task_ = testbed_->cluster().simulation().schedule_periodic(
      config_.round_interval, [this](SimTime now) { run_round(now); });
}

void FleetRebalancer::stop() {
  if (task_ != nullptr) {
    task_->cancel();
    task_.reset();
  }
}

void FleetRebalancer::bind_stats(stats::Registry* registry) {
  if (registry == nullptr) {
    stats_ = StatsCells{};
    return;
  }
  stats_.rounds = registry->counter("agile_rebalancer_rounds_total", {},
                                    "Rebalance rounds run (post-warmup)");
  stats_.moves = registry->counter("agile_rebalancer_moves_total", {},
                                   "Rebalance migrations launched");
  stats_.swaps = registry->counter(
      "agile_rebalancer_swap_moves_total", {},
      "Launched moves that were halves of destination-swap pairs");
  stats_.throttled = registry->counter(
      "agile_rebalancer_throttled_total", {},
      "Proposed moves refused by the per-link in-flight cap");
  stats_.load_spread_millis = registry->gauge(
      "agile_rebalancer_load_spread_millis", {},
      "Max minus min host load fraction x1000 at the last round");
}

void FleetRebalancer::run_round(SimTime now) {
  // Warmup gate only applies to scheduled rounds (tests may drive
  // run_round directly before start()).
  if (started_at_ >= 0 && now - started_at_ < config_.warmup) return;
  const double low = orchestrator_->config().watermarks.low;

  std::vector<RebalanceHostState> hosts;
  hosts.reserve(testbed_->host_count());
  for (std::size_t h = 0; h < testbed_->host_count(); ++h) {
    host::Host* host = testbed_->host_at(h);
    hosts.push_back({host->name(), host->ram(),
                     orchestrator_->committed_bytes(host), host->rack()});
  }
  std::vector<RebalanceVmState> vms;
  vms.reserve(orchestrator_->tracked_count());
  for (std::size_t t = 0; t < orchestrator_->tracked_count(); ++t) {
    VmHandle* handle = orchestrator_->tracked_at(t);
    host::Host* host = testbed_->host_of(handle->machine);
    std::size_t host_index = hosts.size();
    for (std::size_t h = 0; h < testbed_->host_count(); ++h) {
      if (testbed_->host_at(h) == host) {
        host_index = h;
        break;
      }
    }
    // Only settled VMs move: an in-flight VM is already travelling, and a
    // hungry estimate (pinned at its cap, or still trending) would make the
    // move size a guess. Global simultaneous stability is never reached on
    // a large loaded fleet, so the gate is per-VM rather than a fleet-wide
    // latch.
    bool movable = host_index < hosts.size() &&
                   !orchestrator_->vm_in_flight(handle) &&
                   orchestrator_->controller_at(t)->stable();
    vms.push_back({handle->machine->name(),
                   host_index < hosts.size() ? host_index : 0,
                   orchestrator_->controller_at(t)->wss_estimate(), movable});
  }

  RebalanceRound round;
  round.time = now;
  round.index = static_cast<std::uint32_t>(rounds_.size());
  double max_load = 0.0, min_load = hosts.empty() ? 0.0 : load_of(hosts[0]);
  for (const RebalanceHostState& h : hosts) {
    max_load = std::max(max_load, load_of(h));
    min_load = std::min(min_load, load_of(h));
  }
  round.max_load_millis = static_cast<std::int64_t>(max_load * 1000.0);
  round.min_load_millis = static_cast<std::int64_t>(min_load * 1000.0);
  if (stats_.load_spread_millis != nullptr) {
    stats_.load_spread_millis->set(round.max_load_millis -
                                   round.min_load_millis);
  }

  if (max_load - min_load < config_.imbalance_threshold) {
    round.balanced = true;
  } else {
    std::vector<RebalanceProposal> proposals =
        plan_rebalance_round(hosts, vms, config_, low);
    auto launch = [&](std::size_t vm, std::size_t from, std::size_t to,
                      bool swap) {
      bool ok = orchestrator_->launch_rebalance(orchestrator_->tracked_at(vm),
                                                testbed_->host_at(to));
      if (!ok) {
        ++round.throttled;
        if (stats_.throttled != nullptr) stats_.throttled->inc();
        return;
      }
      round.moves.push_back({vms[vm].name, hosts[from].name, hosts[to].name,
                             vms[vm].wss, swap});
      ++moves_launched_;
      if (stats_.moves != nullptr) stats_.moves->inc();
      if (swap && stats_.swaps != nullptr) stats_.swaps->inc();
    };
    for (const RebalanceProposal& p : proposals) {
      std::size_t from = vms[p.vm].host;
      bool swap = p.partner_vm != kNoVm;
      launch(p.vm, from, p.dest, swap);
      // The swap's counter-move: the destination's partner VM travels back
      // to the source (a different source→dest pair, so the link cap
      // throttles each direction independently).
      if (swap) launch(p.partner_vm, p.dest, from, true);
    }
    if (!round.moves.empty() || round.throttled > 0) {
      AGILE_LOG_INFO(
          "rebalancer: round %u spread %.3f launched %zu moves (%u throttled)",
          round.index, max_load - min_load, round.moves.size(),
          round.throttled);
    }
  }
  if (stats_.rounds != nullptr) stats_.rounds->inc();
  rounds_.push_back(std::move(round));
}

}  // namespace agile::core
