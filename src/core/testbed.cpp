#include "core/testbed.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace agile::core {

const char* technique_name(Technique technique) {
  switch (technique) {
    case Technique::kPrecopy: return "pre-copy";
    case Technique::kPostcopy: return "post-copy";
    case Technique::kAgile: return "agile";
    case Technique::kScatterGather: return "scatter-gather";
  }
  return "?";
}

Testbed::Testbed(TestbedConfig config)
    : config_(config), cluster_(config.cluster) {
  if (config_.hosts.empty()) {
    config_.hosts = {config_.source, config_.dest};
  }
  AGILE_CHECK_MSG(config_.hosts.size() >= 2,
                  "a testbed needs at least two hosts");
  for (const host::HostConfig& host_cfg : config_.hosts) {
    hosts_.push_back(cluster_.add_host(host_cfg));
  }
  client_node_ = cluster_.add_client_node("clients");
  for (std::uint32_t i = 0; i < config_.vmd_servers; ++i) {
    std::string name = "intermediate" + std::to_string(i + 1);
    net::NodeId node = cluster_.add_client_node(name);
    vmd::VmdServerConfig server_cfg;
    server_cfg.capacity = config_.vmd_server_capacity;
    server_cfg.service_time = 3;
    server_cfg.disk_capacity = config_.vmd_server_disk;
    vmd_servers_.push_back(
        std::make_unique<vmd::VmdServer>(name, node, server_cfg));
  }
  if (!vmd_servers_.empty()) {
    // Intermediate hosts are not full Host objects; drain their (optional)
    // disk-tier queues from the cluster quantum loop.
    cluster_.add_control_hook([this](SimTime, SimTime dt, std::uint32_t) {
      for (auto& server : vmd_servers_) server->advance(dt);
    });
  }
  cluster_.set_lane_planner([this](std::size_t host_count, std::size_t lanes) {
    return plan_lanes(host_count, lanes);
  });
}

host::Host* Testbed::host_of(const vm::VirtualMachine* machine) {
  for (host::Host* host : hosts_) {
    if (host->has_vm(machine)) return host;
  }
  return nullptr;
}

VmHandle& Testbed::create_vm(const VmSpec& spec) {
  Bytes reservation = spec.reservation == 0 ? spec.memory : spec.reservation;
  AGILE_CHECK_MSG(spec.host < hosts_.size(), "VmSpec.host out of range");
  host::Host* home = hosts_[spec.host];
  auto handle = std::make_unique<VmHandle>();

  swap::SwapDevice* swap_device = nullptr;
  if (spec.swap == SwapBinding::kPerVmDevice) {
    AGILE_CHECK_MSG(!vmd_servers_.empty(),
                    "per-VM swap requested but the testbed has no VMD servers");
    // One client module per VM keeps the namespace attachment portable
    // independently of other VMs on the host.
    auto client = std::make_unique<vmd::VmdClient>(&cluster_.network(),
                                                   home->node());
    for (auto& server : vmd_servers_) client->register_server(server.get());
    Bytes capacity = spec.per_vm_swap_capacity == 0 ? 2 * spec.memory
                                                    : spec.per_vm_swap_capacity;
    auto device = std::make_unique<vmd::VmdSwapDevice>("blk:" + spec.name,
                                                       client.get(), capacity);
    swap_device = device.get();
    handle->vmd_client = client.get();
    handle->per_vm_swap = device.get();
    heartbeats_.push_back(cluster_.simulation().schedule_periodic(
        config_.vmd_heartbeat,
        [c = client.get()](SimTime) { c->update_availability(); }));
    vmd_clients_.push_back(std::move(client));
    vmd_devices_.push_back(std::move(device));
  } else {
    swap_device = home->swap_partition();
  }

  mem::GuestMemoryConfig mem_cfg;
  mem_cfg.size = spec.memory;
  mem_cfg.reservation = reservation;
  mem_cfg.zero_page_fraction = spec.zero_page_fraction;
  auto memory = std::make_unique<mem::GuestMemory>(
      mem_cfg, swap_device, cluster_.make_rng(spec.name + "/mem"));

  vm::VmConfig vm_cfg;
  vm_cfg.name = spec.name;
  vm_cfg.memory = spec.memory;
  vm_cfg.reservation = reservation;
  vm_cfg.vcpus = spec.vcpus;
  // Trace lanes: 0 is the shared/global lane, VMs count from 1 in creation
  // order (deterministic for a fixed scenario).
  vm_cfg.trace_id = vms_.size() + 1;
  memory->set_trace_identity("mem", vm_cfg.trace_id);
  if (handle->per_vm_swap != nullptr) {
    handle->per_vm_swap->set_trace_id(vm_cfg.trace_id);
  }
  if (trace::TraceRecorder* r = trace::recorder()) {
    r->set_entity_name(0, "cluster");
    r->set_entity_name(vm_cfg.trace_id, spec.name);
  }
  handle->machine = cluster_.adopt_vm(std::make_unique<vm::VirtualMachine>(
      vm_cfg, std::move(memory), home->node()));
  home->attach_vm(handle->machine, nullptr);

  vms_.push_back(std::move(handle));
  return *vms_.back();
}

void Testbed::attach_workload(VmHandle& handle,
                              std::unique_ptr<workload::Workload> load) {
  AGILE_CHECK_MSG(handle.load == nullptr, "VM already has a workload");
  handle.load = cluster_.adopt_workload(std::move(load));
  // Re-attach so the host runs the workload each quantum.
  host::Host* where = host_of(handle.machine);
  AGILE_CHECK_MSG(where != nullptr, "VM is not on any fleet host");
  where->detach_vm(handle.machine);
  where->attach_vm(handle.machine, handle.load);
}

std::vector<std::uint32_t> Testbed::plan_lanes(std::size_t host_count,
                                               std::size_t lanes) {
  std::vector<std::uint32_t> plan(host_count, 0);
  if (lanes <= 1 || host_count == 0) return plan;

  // VMD placement is order-dependent near capacity (stale-cache retries,
  // live-availability fallback) and whenever a disk tier exists (spill
  // decisions, SSD queue state). Stores are otherwise commutative counter
  // bumps. One quantum's cluster-wide store volume is far below the margin,
  // so above it every concurrent store lands on the memory tier regardless
  // of interleaving; below it, collapse to one lane (sequential semantics).
  constexpr Bytes kVmdSafetyMargin = 1_GiB;
  for (const auto& server : vmd_servers_) {
    if (server->disk_capacity() > 0 ||
        server->free_bytes() < kVmdSafetyMargin) {
      return plan;  // every host on lane 0
    }
  }

  // Union-find: an in-flight migration couples its source and destination —
  // destination demand faults reach back into source-side engine state,
  // memory and swap devices, so both hosts must share a lane.
  std::vector<std::size_t> parent(host_count);
  for (std::size_t i = 0; i < host_count; ++i) parent[i] = i;
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto host_index = [this, host_count](const host::Host* h) -> std::size_t {
    for (std::size_t i = 0; i < host_count && i < hosts_.size(); ++i) {
      if (hosts_[i] == h) return i;
    }
    return host_count;  // not found (host added after plan size was fixed)
  };
  // On a rack topology, a rack is one affinity group: its hosts share the
  // leaf switch, so keeping them on one lane means intra-rack traffic never
  // crosses a lane barrier. Gated on the topology kind — on the flat
  // default every host reports rack 0 and unioning would serialize the
  // whole fleet.
  if (rack_topology()) {
    std::vector<std::pair<std::uint32_t, std::size_t>> rack_first;
    for (std::size_t i = 0; i < host_count && i < hosts_.size(); ++i) {
      std::uint32_t rack = hosts_[i]->rack();
      std::size_t first = host_count;
      for (const auto& [r, idx] : rack_first) {
        if (r == rack) {
          first = idx;
          break;
        }
      }
      if (first == host_count) {
        rack_first.emplace_back(rack, i);
      } else {
        std::size_t rs = find(first), ri = find(i);
        if (rs != ri) parent[std::max(rs, ri)] = std::min(rs, ri);
      }
    }
  }
  for (migration::MigrationManager* m : live_migrations_) {
    if (!m->started() || m->completed()) continue;
    std::size_t si = host_index(m->source_host());
    std::size_t di = host_index(m->dest_host());
    if (si >= host_count || di >= host_count) continue;
    std::size_t rs = find(si), rd = find(di);
    // Union by smaller index so a group's root is its lowest member — group
    // enumeration order below is then deterministic.
    if (rs != rd) parent[std::max(rs, rd)] = std::min(rs, rd);
  }

  // Greedy balance: groups in root-index order onto the least-loaded lane.
  std::vector<std::size_t> group_size(host_count, 0);
  for (std::size_t i = 0; i < host_count; ++i) ++group_size[find(i)];
  std::vector<std::size_t> lane_load(lanes, 0);
  std::vector<std::uint32_t> group_lane(host_count, 0);
  for (std::size_t i = 0; i < host_count; ++i) {
    if (find(i) != i) continue;  // not a root
    std::size_t best = 0;
    for (std::size_t l = 1; l < lanes; ++l) {
      if (lane_load[l] < lane_load[best]) best = l;
    }
    group_lane[i] = static_cast<std::uint32_t>(best);
    lane_load[best] += group_size[i];
  }
  for (std::size_t i = 0; i < host_count; ++i) plan[i] = group_lane[find(i)];
  return plan;
}

std::unique_ptr<migration::MigrationManager> Testbed::register_migration(
    std::unique_ptr<migration::MigrationManager> migration) {
  live_migrations_.push_back(migration.get());
  migration->set_on_destroy([this](migration::MigrationManager* m) {
    live_migrations_.erase(
        std::remove(live_migrations_.begin(), live_migrations_.end(), m),
        live_migrations_.end());
  });
  return migration;
}

std::unique_ptr<migration::MigrationManager> Testbed::make_migration_to(
    Technique technique, VmHandle& handle, host::Host* destination,
    Bytes dest_reservation, migration::MigrationConfig config) {
  host::Host* source = host_of(handle.machine);
  AGILE_CHECK_MSG(source != nullptr, "VM is not on any fleet host");
  AGILE_CHECK_MSG(destination != nullptr && destination != source,
                  "destination must be a different fleet host");
  migration::MigrationParams params;
  params.machine = handle.machine;
  params.load = handle.load;
  params.source = source;
  params.dest = destination;
  params.dest_reservation = dest_reservation == 0
                                ? handle.machine->memory().reservation()
                                : dest_reservation;
  switch (technique) {
    case Technique::kPrecopy:
      params.dest_swap = destination->swap_partition();
      return register_migration(std::make_unique<migration::PrecopyMigration>(
          &cluster_, params, config));
    case Technique::kPostcopy:
      params.dest_swap = destination->swap_partition();
      return register_migration(std::make_unique<migration::PostcopyMigration>(
          &cluster_, params, config));
    case Technique::kAgile: {
      AGILE_CHECK_MSG(handle.per_vm_swap != nullptr,
                      "Agile migration needs a per-VM swap device");
      params.dest_swap = handle.per_vm_swap;
      auto migration = std::make_unique<migration::AgileMigration>(&cluster_,
                                                                   params, config);
      // Disconnect the per-VM device from the source and attach it at the
      // destination the moment execution flips (paper §IV-B).
      vmd::VmdSwapDevice* device = handle.per_vm_swap;
      net::NodeId dest_node = destination->node();
      migration->set_on_switchover(
          [device, dest_node] { device->attach_to(dest_node); });
      return register_migration(std::move(migration));
    }
    case Technique::kScatterGather: {
      AGILE_CHECK_MSG(handle.per_vm_swap != nullptr,
                      "scatter-gather needs a per-VM swap device");
      params.dest_swap = handle.per_vm_swap;
      auto migration = std::make_unique<migration::ScatterGatherMigration>(
          &cluster_, params, config);
      vmd::VmdSwapDevice* device = handle.per_vm_swap;
      net::NodeId dest_node = destination->node();
      migration->set_on_switchover(
          [device, dest_node] { device->attach_to(dest_node); });
      return register_migration(std::move(migration));
    }
  }
  AGILE_CHECK_MSG(false, "unknown technique");
  return nullptr;
}

ThroughputProbe::ThroughputProbe(host::Cluster* cluster,
                                 const workload::Workload* load,
                                 std::string name, SimTime interval)
    : cluster_(cluster),
      load_(load),
      interval_(interval),
      series_(std::move(name)) {
  AGILE_CHECK(cluster_ != nullptr && load_ != nullptr);
  last_ops_ = load_->ops_total();
  task_ = cluster_->simulation().schedule_periodic(interval_, [this](SimTime now) {
    std::uint64_t ops = load_->ops_total();
    double rate = static_cast<double>(ops - last_ops_) / to_seconds(interval_);
    last_ops_ = ops;
    series_.add(to_seconds(now), rate);
  });
}

ThroughputProbe::~ThroughputProbe() { task_->cancel(); }

}  // namespace agile::core
