#include "core/fleet_stats.hpp"

#include <cstdio>

#include "core/migration_orchestrator.hpp"

namespace agile::core {

namespace {

/// Completion-time buckets (ms): sub-second through multi-hour.
const std::vector<std::int64_t>& time_bounds() {
  static const std::vector<std::int64_t> b = {
      500, 1000, 2000, 5000, 10000, 30000, 60000, 120000, 300000, 900000};
  return b;
}

/// Downtime buckets (ms): the paper's sub-second claims need resolution at
/// the low end.
const std::vector<std::int64_t>& downtime_bounds() {
  static const std::vector<std::int64_t> b = {1,   5,    10,   50,  100,
                                              300, 1000, 3000, 10000};
  return b;
}

/// Swap-in-rate buckets (bytes/s) around the controller's τ = 4 KB/s.
const std::vector<std::int64_t>& swap_rate_bounds() {
  static const std::vector<std::int64_t> b = {
      0, 1024, 4096, 16384, 65536, 1 << 20, 16 << 20, 256 << 20};
  return b;
}

}  // namespace

FleetStatsCollector::FleetStatsCollector(Testbed* bed,
                                         stats::Registry* registry)
    : bed_(bed), registry_(registry) {
  AGILE_CHECK(bed_ != nullptr && registry_ != nullptr);
}

FleetStatsCollector::~FleetStatsCollector() { stop(); }

void FleetStatsCollector::set_orchestrator(
    MigrationOrchestrator* orchestrator) {
  AGILE_CHECK_MSG(task_ == nullptr, "set_orchestrator before start()");
  orchestrator_ = orchestrator;
}

void FleetStatsCollector::register_static_metrics() {
  host_cells_.resize(bed_->host_count());
  for (std::size_t h = 0; h < bed_->host_count(); ++h) {
    host::Host* host = bed_->host_at(h);
    const stats::Labels l = {{"host", host->name()}};
    HostCells& c = host_cells_[h];
    c.ram_used = registry_->gauge("agile_host_ram_used_bytes", l,
                                  "Host OS + resident pages of attached VMs");
    c.vm_count =
        registry_->gauge("agile_host_vm_count", l, "VMs attached to the host");
    c.net_tx = registry_->counter("agile_host_net_tx_bytes_total", l,
                                  "Bytes sent from the host NIC");
    c.net_rx = registry_->counter("agile_host_net_rx_bytes_total", l,
                                  "Bytes received at the host NIC");
    c.link_util_pct = registry_->gauge(
        "agile_host_link_utilization_pct", l,
        "NIC send utilization over the last scrape window (percent)");
    if (orchestrator_ != nullptr) {
      c.watermark_distance = registry_->gauge(
          "agile_host_watermark_distance_bytes", l,
          "High watermark minus committed working sets (negative: over)");
    }
  }
  vm_cells_.resize(bed_->vm_count());
  for (std::size_t v = 0; v < bed_->vm_count(); ++v) {
    VmHandle& handle = bed_->vm_at(v);
    vm_index_[handle.machine] = v;
    const stats::Labels l = {{"vm", handle.machine->name()}};
    VmCells& c = vm_cells_[v];
    c.resident = registry_->gauge("agile_vm_resident_pages", l,
                                  "Pages resident in host RAM");
    c.swapped = registry_->gauge("agile_vm_swapped_pages", l,
                                 "Pages on the swap device");
    c.remote = registry_->gauge("agile_vm_remote_pages", l,
                                "Pages still owned by a remote source");
    c.zero =
        registry_->gauge("agile_vm_zero_pages", l, "Known all-zero pages");
    c.reservation = registry_->gauge("agile_vm_reservation_bytes", l,
                                     "cgroup memory reservation");
    c.major_faults = registry_->counter("agile_vm_major_faults_total", l,
                                        "Swap-ins caused by guest access");
    c.swap_ins = registry_->counter("agile_vm_swap_ins_total", l,
                                    "All swap-ins (access + migration)");
    c.swap_outs = registry_->counter("agile_vm_swap_outs_total", l,
                                     "Dirty evictions written to swap");
  }
  vmd_cells_.resize(bed_->vmd_server_count());
  for (std::size_t i = 0; i < bed_->vmd_server_count(); ++i) {
    char idx[16];
    std::snprintf(idx, sizeof(idx), "%zu", i);
    const stats::Labels l = {{"server", idx}};
    VmdCells& c = vmd_cells_[i];
    c.used = registry_->gauge("agile_vmd_used_bytes", l,
                              "VMD memory tier bytes in use");
    c.free = registry_->gauge("agile_vmd_free_bytes", l,
                              "VMD memory tier bytes free");
    c.memory_pages = registry_->gauge("agile_vmd_memory_pages", l,
                                      "Pages held in the memory tier");
    c.disk_pages = registry_->gauge("agile_vmd_disk_pages", l,
                                    "Pages spilled to the disk tier");
  }
  // Per-link-tier gauges, tier enum order. Only on a rack topology: the
  // flat default predates these metrics and its stats goldens must stay
  // byte-identical.
  const net::Network& net = bed_->cluster().network();
  if (net.topology().kind == net::TopologyKind::kLeafSpine) {
    for (std::size_t t = 0; t < net::kLinkTierCount; ++t) {
      const auto tier = static_cast<net::LinkTier>(t);
      if (net.tier_totals(tier).links == 0) continue;
      const stats::Labels l = {{"tier", net::tier_name(tier)}};
      TierCells c;
      c.tier = tier;
      c.bytes_total = registry_->counter(
          "agile_net_tier_bytes_total", l,
          "Flow + background bytes carried by the tier's links");
      c.util_pct = registry_->gauge(
          "agile_net_tier_utilization_pct", l,
          "Tier utilization over the last scrape window (percent)");
      c.peak_util_pct = registry_->gauge(
          "agile_net_tier_peak_utilization_pct", l,
          "Most utilized link of the tier, last quantum (percent)");
      tier_cells_.push_back(c);
    }
  }
  migration_time_ms_ = registry_->histogram(
      "agile_migration_total_time_ms", time_bounds(), {},
      "Completed migration total time (start to source release)");
  migration_downtime_ms_ = registry_->histogram(
      "agile_migration_downtime_ms", downtime_bounds(), {},
      "Completed migration downtime (suspend to resume)");
  migrations_completed_ = registry_->counter(
      "agile_migrations_completed_total", {}, "Migrations run to completion");
  scrapes_ = registry_->counter("agile_stats_scrapes_total", {},
                                "Scrape rounds taken");
  if (orchestrator_ != nullptr) {
    orchestrator_->bind_stats(registry_);
    for (std::size_t i = 0; i < orchestrator_->tracked_count(); ++i) {
      VmHandle* handle = orchestrator_->tracked_at(i);
      const stats::Labels l = {{"vm", handle->machine->name()}};
      orchestrator_->controller_at(i)->bind_stats(
          registry_->gauge("agile_wss_estimate_bytes", l,
                           "Working-set estimate (= reservation set)"),
          registry_->counter("agile_wss_adjustments_total", l,
                             "Reservation adjustments applied"),
          registry_->histogram("agile_wss_swap_in_rate_bps", swap_rate_bounds(),
                               l, "Observed swap-in rate at each adjustment"));
    }
  }
}

void FleetStatsCollector::start(SimTime interval) {
  AGILE_CHECK_MSG(task_ == nullptr, "collector already started");
  AGILE_CHECK(interval > 0);
  interval_ = interval;
  register_static_metrics();
  task_ = bed_->cluster().start_scrape(
      interval,
      [this](std::size_t index, host::Host& host) {
        collect_host(index, host);
      },
      [this](SimTime now) { finalize(now); });
}

void FleetStatsCollector::stop() {
  if (task_ != nullptr) {
    task_->cancel();
    task_.reset();
  }
}

void FleetStatsCollector::collect_host(std::size_t index, host::Host& host) {
  HostCells& c = host_cells_[index];
  c.ram_used->set(static_cast<std::int64_t>(host.memory_in_use()));
  c.vm_count->set(static_cast<std::int64_t>(host.vm_count()));
  // Per-VM gauges for the VMs resident here. A VM is attached to exactly one
  // host, so each cell has one writer this window regardless of lane plan.
  for (std::size_t i = 0; i < host.vm_count(); ++i) {
    vm::VirtualMachine* machine = host.vm_at(i);
    auto it = vm_index_.find(machine);
    if (it == vm_index_.end()) continue;  // not a testbed VM
    VmCells& vc = vm_cells_[it->second];
    const mem::GuestMemory& mem = machine->memory();
    vc.resident->set(static_cast<std::int64_t>(mem.resident_pages()));
    vc.swapped->set(static_cast<std::int64_t>(mem.swapped_pages()));
    vc.remote->set(static_cast<std::int64_t>(mem.remote_pages()));
    vc.zero->set(static_cast<std::int64_t>(mem.zero_pages()));
    vc.reservation->set(static_cast<std::int64_t>(mem.reservation()));
    const mem::MemStats& ms = mem.stats();
    vc.major_faults->set(ms.major_faults);
    vc.swap_ins->set(ms.swap_ins);
    vc.swap_outs->set(ms.swap_outs);
  }
}

FleetStatsCollector::MigrationTrack& FleetStatsCollector::track_for(
    const std::string& vm_name) {
  auto it = migrations_.find(vm_name);
  if (it != migrations_.end()) return it->second;
  MigrationTrack& t = migrations_[vm_name];
  const stats::Labels l = {{"vm", vm_name}};
  t.phase = registry_->gauge("agile_migration_phase", l,
                             "Engine phase code (engine-specific ordering)");
  t.pages_owed = registry_->gauge("agile_migration_pages_owed", l,
                                  "Pages the engine still owes over the wire");
  t.pages_remote = registry_->gauge("agile_migration_pages_remote", l,
                                    "Destination pages still remote");
  t.backlog = registry_->gauge("agile_migration_wire_backlog_bytes", l,
                               "Unsent bytes queued on the stream group");
  t.bytes_wire = registry_->gauge("agile_migration_bytes_transferred", l,
                                  "Cumulative bytes on the migration channel");
  t.transfer_rate = registry_->gauge(
      "agile_migration_transfer_rate_bps", l,
      "Wire bytes per second over the last scrape window");
  t.eta = registry_->gauge("agile_migration_eta_usec", l,
                           "Model-derived time to drain the page debt (-1 "
                           "unknown)");
  t.projected_downtime = registry_->gauge(
      "agile_migration_projected_downtime_usec", l,
      "Modeled stop-and-copy downtime (actual once switched over)");
  return t;
}

void FleetStatsCollector::update_migration_health(SimTime now) {
  for (migration::MigrationManager* m : bed_->live_migrations()) {
    if (!m->started()) continue;
    MigrationTrack& t = track_for(m->machine()->name());
    if (t.start_time != m->metrics().start_time) {
      // A new migration of the same VM reuses the gauges but restarts the
      // model and the completion latch.
      t.start_time = m->metrics().start_time;
      t.model = stats::MigrationHealthModel{};
      t.completion_recorded = false;
    }
    const stats::MigrationObservation obs = m->sample_health(now);
    const stats::MigrationHealth health = t.model.update(obs);
    t.phase->set(m->phase_code());
    t.pages_owed->set(static_cast<std::int64_t>(obs.pages_owed));
    t.pages_remote->set(static_cast<std::int64_t>(obs.pages_remote));
    t.backlog->set(static_cast<std::int64_t>(obs.backlog_bytes));
    t.bytes_wire->set(static_cast<std::int64_t>(obs.bytes_transferred));
    t.transfer_rate->set(health.transfer_rate_bps);
    t.eta->set(health.eta_usec);
    t.projected_downtime->set(health.projected_downtime_usec);
    if (m->completed() && !t.completion_recorded) {
      t.completion_recorded = true;
      migrations_completed_->inc();
      migration_time_ms_->observe(m->metrics().total_time() / 1000);
      migration_downtime_ms_->observe(m->metrics().downtime / 1000);
    }
  }
}

void FleetStatsCollector::finalize(SimTime now) {
  scrapes_->inc();
  for (std::size_t i = 0; i < vmd_cells_.size(); ++i) {
    vmd::VmdServer* server = bed_->vmd_server_at(i);
    VmdCells& c = vmd_cells_[i];
    c.used->set(static_cast<std::int64_t>(server->used_bytes()));
    c.free->set(static_cast<std::int64_t>(server->free_bytes()));
    c.memory_pages->set(static_cast<std::int64_t>(server->memory_pages()));
    c.disk_pages->set(static_cast<std::int64_t>(server->disk_pages()));
  }
  const net::Network& net = bed_->cluster().network();
  const double link_rate = net.link_bytes_per_sec();
  for (std::size_t h = 0; h < host_cells_.size(); ++h) {
    HostCells& c = host_cells_[h];
    const net::NodeStats& ns = net.stats(bed_->host_at(h)->node());
    c.net_tx->set(ns.tx_bytes);
    c.net_rx->set(ns.rx_bytes);
    // Send-side utilization over the scrape window, in whole percent
    // (integer math keeps the export exact).
    const std::uint64_t tx_delta =
        ns.tx_bytes >= c.prev_tx ? ns.tx_bytes - c.prev_tx : 0;
    c.prev_tx = ns.tx_bytes;
    c.prev_rx = ns.rx_bytes;
    const double window_capacity =
        link_rate * to_seconds(interval_);
    std::int64_t pct = 0;
    if (window_capacity > 0) {
      pct = static_cast<std::int64_t>(
          static_cast<double>(tx_delta) * 100.0 / window_capacity);
    }
    c.link_util_pct->set(pct);
  }
  for (TierCells& c : tier_cells_) {
    const net::TierTotals totals = net.tier_totals(c.tier);
    c.bytes_total->set(static_cast<std::int64_t>(totals.bytes_total));
    const Bytes delta =
        totals.bytes_total >= c.prev_bytes ? totals.bytes_total - c.prev_bytes
                                           : 0;
    c.prev_bytes = totals.bytes_total;
    const double window_capacity =
        totals.capacity_bytes_per_sec * to_seconds(interval_);
    std::int64_t pct = 0;
    if (window_capacity > 0) {
      pct = static_cast<std::int64_t>(static_cast<double>(delta) * 100.0 /
                                      window_capacity);
    }
    c.util_pct->set(pct);
    c.peak_util_pct->set(
        static_cast<std::int64_t>(totals.peak_utilization * 100.0));
  }
  if (orchestrator_ != nullptr) {
    // Watermark distance: high watermark minus committed working sets
    // (tracked estimates of resident VMs + in-flight admission
    // reservations + host OS). Negative means the host is over.
    for (std::size_t h = 0; h < host_cells_.size(); ++h) {
      host::Host* host = bed_->host_at(h);
      Bytes committed = host->config().host_os_bytes;
      for (std::size_t i = 0; i < orchestrator_->tracked_count(); ++i) {
        VmHandle* handle = orchestrator_->tracked_at(i);
        if (host->has_vm(handle->machine)) {
          committed += orchestrator_->controller_at(i)->wss_estimate();
        }
      }
      committed += orchestrator_->reserved_bytes_at(host);
      const double high =
          orchestrator_->config().watermarks.high *
          static_cast<double>(host->ram());
      host_cells_[h].watermark_distance->set(
          static_cast<std::int64_t>(high) -
          static_cast<std::int64_t>(committed));
    }
  }
  update_migration_health(now);
  registry_->record_snapshot(now);
}

}  // namespace agile::core
