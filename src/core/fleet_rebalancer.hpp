// Fleet-wide load rebalancer: MongoDB-balancer-style rounds over the
// orchestrator's admission state.
//
// The MigrationOrchestrator is reactive — it fires when a host crosses its
// high watermark. The FleetRebalancer is proactive: on a fixed period it
// computes the load fraction (committed bytes / RAM, the orchestrator's own
// admission view) of every host, and while the gap between the most and
// least loaded hosts exceeds a threshold it proposes a bounded batch of
// moves from the hottest host toward the coolest (the round-based,
// throttled shape of MongoDB's sharding balancer). Two move kinds:
//
//  * direct move — the smallest resident VM whose departure narrows the
//    load peak and whose WSS the destination admits under its low
//    watermark;
//  * destination swap — when no direct move is admissible (the coolest
//    host is itself near the watermark), exchange the hottest host's
//    largest VM with a strictly smaller VM of the destination (the
//    adaptive intra-/inter-tenant destination-swap strategy), which moves
//    load without needing free headroom for the full VM.
//
// Planning is a pure function (`plan_rebalance_round`) over value-type
// snapshots — unit-testable and deterministic. Execution throttles every
// proposal through MigrationOrchestrator::launch_rebalance, so rebalancing
// obeys the same per-link in-flight caps and reservation accounting as
// watermark responses, and each round is logged to an audit record the
// fleet benches print as a FLEET_GOLDEN-style block.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/migration_orchestrator.hpp"
#include "core/testbed.hpp"
#include "stats/stats.hpp"

namespace agile::core {

struct FleetRebalancerConfig {
  SimTime round_interval = sec(30);
  /// Grace period after start before the first acting round (the
  /// orchestrator's controllers need a first pass at convergence; after
  /// that, only VMs whose own controller is stable are movable).
  SimTime warmup = sec(60);
  /// Max migrations launched per round (a destination swap counts as two).
  std::uint32_t max_moves_per_round = 4;
  /// Minimum load-fraction gap (committed/RAM) between the most and least
  /// loaded hosts before a round proposes anything.
  double imbalance_threshold = 0.10;
  /// Prefer a destination inside the source host's rack when one admits
  /// the move — keeps rebalancing traffic off the oversubscribed core.
  bool rack_aware = false;
  /// Allow destination-swap pairs when no direct move is admissible.
  bool enable_swaps = true;
};

/// Snapshot of one host for round planning. `committed` is the
/// orchestrator's admission view (host OS + tracked working sets +
/// in-flight reservations).
struct RebalanceHostState {
  std::string name;
  Bytes ram = 0;
  Bytes committed = 0;
  std::uint32_t rack = 0;
};

/// Snapshot of one tracked VM for round planning.
struct RebalanceVmState {
  std::string name;
  std::size_t host = 0;  ///< Index into the host snapshot vector.
  Bytes wss = 0;
  /// False while already migrating or while the VM's reservation controller
  /// is still hunting (an unsettled estimate makes the move size a guess).
  bool movable = true;
};

inline constexpr std::size_t kNoVm = static_cast<std::size_t>(-1);

/// One planned migration. `partner_vm` != kNoVm marks a destination swap:
/// `vm` moves host→`dest` while `partner_vm` moves `dest`→`vm`'s host.
struct RebalanceProposal {
  std::size_t vm = kNoVm;
  std::size_t dest = 0;
  std::size_t partner_vm = kNoVm;
};

/// Pure round planner. Repeatedly takes the most loaded host (among those
/// with a movable VM) and the least loaded host; while their load-fraction
/// gap exceeds `config.imbalance_threshold` and the batch bound permits, it
/// proposes the smallest VM of the source whose move to the destination is
/// admissible under `low_watermark` and strictly narrows the load peak —
/// preferring a same-rack destination when `config.rack_aware` — else, with
/// `config.enable_swaps`, a destination swap of the source's largest VM
/// against a strictly smaller destination VM that leaves the destination
/// under `low_watermark`. Proposal effects are applied to the snapshot
/// between iterations, so one round never overcommits a destination. All
/// tie-breaks are by input index; the result is deterministic.
std::vector<RebalanceProposal> plan_rebalance_round(
    std::vector<RebalanceHostState> hosts, std::vector<RebalanceVmState> vms,
    const FleetRebalancerConfig& config, double low_watermark);

/// One launched (or throttled) migration of a round, for the audit block.
struct RebalanceMove {
  std::string vm;
  std::string from;
  std::string to;
  Bytes wss = 0;
  bool swap = false;  ///< Half of a destination-swap pair.
};

/// Audit record of one round (the deterministic log the benches print).
struct RebalanceRound {
  SimTime time = 0;
  std::uint32_t index = 0;
  /// Load fraction ×1000 of the most/least loaded host before the round's
  /// moves (integer so golden blocks format identically everywhere).
  std::int64_t max_load_millis = 0;
  std::int64_t min_load_millis = 0;
  bool balanced = false;  ///< Gap under threshold; nothing proposed.
  std::vector<RebalanceMove> moves;
  std::uint32_t throttled = 0;  ///< Proposals refused by the link cap.
};

class FleetRebalancer {
 public:
  FleetRebalancer(Testbed* testbed, MigrationOrchestrator* orchestrator,
                  FleetRebalancerConfig config = {});
  ~FleetRebalancer();

  FleetRebalancer(const FleetRebalancer&) = delete;
  FleetRebalancer& operator=(const FleetRebalancer&) = delete;

  /// Starts the periodic rounds. Start after the orchestrator (it owns the
  /// tracked controllers the planner reads).
  void start();
  void stop();

  const FleetRebalancerConfig& config() const { return config_; }

  /// Every acting round so far, in time order (warmup rounds are skipped,
  /// not recorded).
  const std::vector<RebalanceRound>& rounds() const { return rounds_; }
  std::size_t moves_launched() const { return moves_launched_; }

  /// Registers round/move counters on `registry`. Coordinator-thread-only;
  /// call before start(). Pass nullptr to detach.
  void bind_stats(stats::Registry* registry);

  /// One planning+launch round (public for tests; normally periodic).
  void run_round(SimTime now);

 private:
  Testbed* testbed_;
  MigrationOrchestrator* orchestrator_;
  FleetRebalancerConfig config_;
  std::shared_ptr<sim::PeriodicTask> task_;
  SimTime started_at_ = -1;
  std::vector<RebalanceRound> rounds_;
  std::size_t moves_launched_ = 0;
  struct StatsCells {
    stats::Counter* rounds = nullptr;
    stats::Counter* moves = nullptr;
    stats::Counter* swaps = nullptr;
    stats::Counter* throttled = nullptr;
    stats::Gauge* load_spread_millis = nullptr;
  };
  StatsCells stats_;
};

}  // namespace agile::core
