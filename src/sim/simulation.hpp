// Discrete-event simulation core.
//
// A `Simulation` owns virtual time and a priority queue of events. Ties in
// time are broken by insertion sequence, so runs are fully deterministic.
// Components that need a regular cadence (device models, workload execution,
// metric sampling) register periodic tasks; one-shot events drive experiment
// scripts ("ramp the workload at t=150 s", "start migration at t=400 s") and
// protocol timeouts.
//
// The queue is a hand-rolled binary heap over a reserved vector rather than
// `std::priority_queue`: it lets us move events out on pop and pre-size the
// storage. Periodic tasks are first-class queue entries — re-arming one
// copies a `shared_ptr` instead of heap-allocating a fresh `std::function`
// closure per firing, which is the hottest scheduling path in the system
// (the cluster quantum alone fires ten times per simulated second).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulation;

/// Handle to a periodic task. Allows cancellation and period changes (the
/// WSS reservation controller moves from a 2 s to a 30 s cadence once the
/// estimate stabilizes).
class PeriodicTask {
 public:
  void cancel() { alive_ = false; }
  bool alive() const { return alive_; }

  SimTime period() const { return period_; }
  void set_period(SimTime period) {
    AGILE_CHECK(period > 0);
    period_ = period;
  }

 private:
  friend class Simulation;
  explicit PeriodicTask(SimTime period, std::function<void(SimTime)> fn)
      : period_(period), fn_(std::move(fn)) {}

  bool alive_ = true;
  SimTime period_;
  std::function<void(SimTime)> fn_;
};

class Simulation {
 public:
  Simulation() { heap_.reserve(kInitialQueueCapacity); }
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns an id usable with
  /// `cancel`.
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` `dt` after now.
  EventId schedule_after(SimTime dt, EventFn fn) {
    AGILE_CHECK(dt >= 0);
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled. Cancellation marks the queued entry in place (a tombstone
  /// skipped on pop): one O(pending) scan here instead of a cancelled-id
  /// list consulted on every pop, which degraded to O(pending × cancelled)
  /// under timeout-heavy runs.
  bool cancel(EventId id);

  /// Registers a periodic task firing every `period`, first at
  /// `now + first_delay` (default: one period from now). The task receives
  /// the current simulated time. The returned handle stays valid until the
  /// simulation is destroyed.
  std::shared_ptr<PeriodicTask> schedule_periodic(SimTime period,
                                                  std::function<void(SimTime)> fn,
                                                  SimTime first_delay = -1);

  /// Runs events until the queue is exhausted or `stop()` is called.
  void run();

  /// Runs events with time <= `t`, then sets now to `t`.
  void run_until(SimTime t);

  /// Executes the single earliest pending event. Returns false if none.
  bool step();

  /// Stops `run()`/`run_until()` after the current event returns.
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  /// Clears a previous `stop()` without running anything (external drivers —
  /// the lane coordinator — interleave their own work with `step()` calls).
  void clear_stop() { stopped_ = false; }

  /// Time of the earliest pending (non-cancelled) event, or -1 when the
  /// queue is empty. Purges tombstones at the top as a side effect.
  SimTime next_event_time();

  /// Number of events executed so far (for tests and diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }
  /// Net pending events: queued minus cancelled-but-not-yet-popped.
  std::size_t pending_events() const;

 private:
  static constexpr std::size_t kInitialQueueCapacity = 1024;

  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    EventFn fn;  ///< One-shot payload; empty for periodic entries.
    PeriodicTask* periodic;  ///< Set for periodic entries; owned by tasks_.
    bool cancelled = false;  ///< Tombstone: skip (don't execute) on pop.
  };
  struct EventOrder {
    // Max-heap comparator where "later" sorts lower, leaving the earliest
    // (time, seq) at the heap root.
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push_event(Event ev);
  Event pop_event();
  void push_periodic(PeriodicTask* task, SimTime at);
  void purge_cancelled_top();

  /// Deep auditor: a Simulation is single-threaded state — the parallel
  /// sweep runner gives every worker its own instance, and nothing
  /// synchronizes the event heap. Binds the simulation to the first thread
  /// that drives it and aborts if a different thread ever does (cross-worker
  /// aliasing). Called from run()/run_until()/step() when audit::enabled().
  void audit_bind_thread();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::size_t cancelled_pending_ = 0;
  std::vector<Event> heap_;
  // Keep-alive for periodic tasks: the queue stores raw pointers (re-arming
  // must not fatten every Event), and the documented contract is that
  // handles stay valid until the simulation is destroyed anyway.
  std::vector<std::shared_ptr<PeriodicTask>> tasks_;
  // Thread that first drove this simulation (audit_bind_thread). Atomic so
  // the auditor itself is race-free under TSan.
  std::atomic<std::thread::id> audit_owner_{};
};

}  // namespace agile::sim
