#include "sim/lanes.hpp"

#include <algorithm>
#include <future>

namespace agile::sim {

namespace {

// Context of the lane event currently executing on this thread. Null coord
// means the thread is not inside a lane event (coordinator context).
struct LaneCtx {
  LaneCoordinator* coord = nullptr;
  std::size_t lane = 0;
  std::size_t channel = 0;
  SimTime time = 0;
  bool dirty = false;  ///< The event scheduled new lane-local work.
};
thread_local LaneCtx t_lane_ctx;

bool due_order(SimTime at, std::size_t ac, std::uint64_t as, SimTime bt,
               std::size_t bc, std::uint64_t bs) {
  if (at != bt) return at < bt;
  if (ac != bc) return ac < bc;
  return as < bs;
}

}  // namespace

LaneCoordinator::LaneCoordinator(Config config)
    : lanes_(config.lanes), pool_(config.pool) {
  AGILE_CHECK(lanes_ >= 1);
  if (lanes_ > 1) {
    AGILE_CHECK_MSG(pool_ != nullptr && pool_->worker_count() >= lanes_ - 1,
                    "lanes > 1 requires a pool of at least lanes-1 workers");
  }
  lane_runs_.resize(lanes_);
}

LaneCoordinator::~LaneCoordinator() = default;

void LaneCoordinator::ensure_channels(std::size_t count) {
  AGILE_CHECK(window_horizon_ < 0);
  while (channels_.size() < count) {
    Channel ch;
    ch.lane = static_cast<std::uint32_t>(channels_.size() % lanes_);
    channels_.push_back(std::move(ch));
  }
}

void LaneCoordinator::set_plan(const std::vector<std::uint32_t>& lane_of_channel) {
  AGILE_CHECK(window_horizon_ < 0);
  AGILE_CHECK_MSG(lane_of_channel.size() == channels_.size(),
                  "lane plan must cover every channel");
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    AGILE_CHECK(lane_of_channel[c] < lanes_);
    channels_[c].lane = lane_of_channel[c];
  }
}

void LaneCoordinator::set_thread_hooks(
    std::function<void(std::size_t)> enter,
    std::function<void(std::size_t)> exit) {
  // Lane threads invoke the hooks unsynchronized; swapping them mid-window
  // would race every running lane.
  AGILE_CHECK_MSG(window_horizon_ < 0,
                  "set_thread_hooks() inside a window races the lanes");
  enter_hook_ = std::move(enter);
  exit_hook_ = std::move(exit);
}

SimTime LaneCoordinator::thread_event_time(SimTime fallback) {
  return t_lane_ctx.coord != nullptr ? t_lane_ctx.time : fallback;
}

void LaneCoordinator::push_channel_event(Channel& ch, SimTime t, EventFn fn) {
  ch.heap.push_back(LaneEvent{t, ch.next_seq++, std::move(fn)});
  std::push_heap(ch.heap.begin(), ch.heap.end(), LaneEventOrder{});
}

void LaneCoordinator::schedule(std::size_t channel, SimTime t, EventFn fn) {
  AGILE_CHECK(channel < channels_.size());
  Channel& target = channels_[channel];
  if (t_lane_ctx.coord == this) {
    // Lane-local scheduling from inside a running event: the target channel
    // must belong to the same lane (its heap is owned by this thread for the
    // duration of the window); cross-lane work must go through post().
    AGILE_CHECK_MSG(target.lane == channels_[t_lane_ctx.channel].lane,
                    "cross-lane schedule() from a lane event; use post()");
    AGILE_CHECK(t >= t_lane_ctx.time);
    push_channel_event(target, t, std::move(fn));
    if (t <= window_horizon_) t_lane_ctx.dirty = true;
    return;
  }
  AGILE_CHECK_MSG(window_horizon_ < 0,
                  "schedule() raced a window from a non-lane thread");
  AGILE_CHECK_MSG(t >= barrier_time_, "cannot schedule behind the barrier");
  push_channel_event(target, t, std::move(fn));
}

void LaneCoordinator::post(std::size_t channel, SimTime t, EventFn fn) {
  AGILE_CHECK(channel < channels_.size());
  if (t_lane_ctx.coord == this) {
    // Conservative lookahead: a message may not arrive before the horizon
    // the peer lanes were allowed to advance to.
    AGILE_CHECK_MSG(t >= window_horizon_,
                    "post() delivery before the window horizon violates "
                    "conservative lookahead");
    Channel& source = channels_[t_lane_ctx.channel];
    lane_runs_[t_lane_ctx.lane].outbox.push_back(
        MailboxEntry{t, t_lane_ctx.channel, source.next_post_seq++, channel,
                     std::move(fn)});
    return;
  }
  AGILE_CHECK_MSG(window_horizon_ < 0,
                  "post() raced a window from a non-lane thread");
  AGILE_CHECK_MSG(t >= barrier_time_, "cannot post behind the barrier");
  push_channel_event(channels_[channel], t, std::move(fn));
}

bool LaneCoordinator::collect_due(LaneRun& run, SimTime horizon,
                                  std::vector<DueEvent>& batch) {
  for (std::size_t c : run.channels) {
    Channel& ch = channels_[c];
    while (!ch.heap.empty() && ch.heap.front().time <= horizon) {
      std::pop_heap(ch.heap.begin(), ch.heap.end(), LaneEventOrder{});
      LaneEvent ev = std::move(ch.heap.back());
      ch.heap.pop_back();
      batch.push_back(DueEvent{ev.time, c, ev.seq, std::move(ev.fn)});
    }
  }
  if (batch.empty()) return false;
  std::sort(batch.begin(), batch.end(),
            [](const DueEvent& a, const DueEvent& b) {
              return due_order(a.time, a.channel, a.seq, b.time, b.channel,
                               b.seq);
            });
  return true;
}

void LaneCoordinator::run_lane(std::size_t lane, SimTime horizon,
                               bool buffer_effects) {
  LaneRun& run = lane_runs_[lane];
  std::vector<DueEvent> batch;
  if (!collect_due(run, horizon, batch)) return;

  if (enter_hook_) enter_hook_(lane);
  trace::TraceRecorder* prev_recorder = nullptr;
  if (buffer_effects) {
    if (!run.recorder) run.recorder = std::make_unique<trace::TraceRecorder>();
    prev_recorder = trace::set_recorder(run.recorder.get());
  }

  LaneCtx saved = t_lane_ctx;
  std::size_t i = 0;
  while (i < batch.size()) {
    DueEvent& ev = batch[i];
    t_lane_ctx = LaneCtx{this, lane, ev.channel, ev.time, false};
    std::size_t rec_begin =
        buffer_effects ? run.recorder->event_count() : 0;
    ev.fn();
    if (buffer_effects && run.recorder->event_count() > rec_begin) {
      run.segments.push_back(TraceSegment{ev.time, ev.channel, ev.seq,
                                          rec_begin,
                                          run.recorder->event_count(), lane});
    }
    ++run.executed;
    ++i;
    if (t_lane_ctx.dirty) {
      // The event scheduled lane-local work that may still be due in this
      // window: merge the newly due events into the remaining batch so the
      // (time, channel, seq) execution order stays exact.
      std::vector<DueEvent> remaining(std::make_move_iterator(batch.begin() +
                                                              static_cast<std::ptrdiff_t>(i)),
                                      std::make_move_iterator(batch.end()));
      batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(i), batch.end());
      collect_due(run, horizon, remaining);
      std::sort(remaining.begin(), remaining.end(),
                [](const DueEvent& a, const DueEvent& b) {
                  return due_order(a.time, a.channel, a.seq, b.time, b.channel,
                                   b.seq);
                });
      for (DueEvent& r : remaining) batch.push_back(std::move(r));
    }
  }
  t_lane_ctx = saved;

  if (buffer_effects) trace::set_recorder(prev_recorder);
  if (exit_hook_) exit_hook_(lane);
}

void LaneCoordinator::drain_mailbox(SimTime horizon) {
  std::vector<MailboxEntry> inbox;
  for (LaneRun& run : lane_runs_) {
    for (MailboxEntry& e : run.outbox) inbox.push_back(std::move(e));
    run.outbox.clear();
  }
  if (inbox.empty()) return;
  std::sort(inbox.begin(), inbox.end(),
            [](const MailboxEntry& a, const MailboxEntry& b) {
              return due_order(a.time, a.source, a.seq, b.time, b.source,
                               b.seq);
            });
  for (MailboxEntry& e : inbox) {
    AGILE_CHECK(e.time >= horizon);
    push_channel_event(channels_[e.target], e.time, std::move(e.fn));
  }
}

void LaneCoordinator::advance_to(SimTime horizon) {
  AGILE_CHECK_MSG(horizon >= barrier_time_,
                  "lane horizon must not move backwards");
  AGILE_CHECK_MSG(window_horizon_ < 0, "advance_to() is not reentrant");

  bool any_due = false;
  for (const Channel& ch : channels_) {
    if (!ch.heap.empty() && ch.heap.front().time <= horizon) {
      any_due = true;
      break;
    }
  }
  if (!any_due) {
    barrier_time_ = horizon;
    return;
  }

  window_horizon_ = horizon;
  for (LaneRun& run : lane_runs_) {
    run.channels.clear();
    run.segments.clear();
    run.executed = 0;
    if (run.recorder) run.recorder->clear();
  }

  const bool parallel = lanes_ > 1 && pool_ != nullptr;
  if (!parallel) {
    // Sequential fallback: one merged pass over every channel — the merge
    // loop *is* the (time, channel, seq) contract, with effects applied
    // directly (no buffering).
    LaneRun& run = lane_runs_[0];
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      run.channels.push_back(c);
    }
    run_lane(0, horizon, /*buffer_effects=*/false);
  } else {
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      lane_runs_[channels_[c].lane].channels.push_back(c);
    }
    trace::TraceRecorder* main_recorder = trace::recorder();
    const bool buffer = main_recorder != nullptr;

    // Fork: lanes with due work run concurrently — the first busy lane
    // inline on this thread, the rest on the pool. future::get() is the
    // barrier (and the happens-before edge for every lane's effects).
    std::vector<std::size_t> busy;
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      bool has_due = false;
      for (std::size_t c : lane_runs_[lane].channels) {
        const Channel& ch = channels_[c];
        if (!ch.heap.empty() && ch.heap.front().time <= horizon) {
          has_due = true;
          break;
        }
      }
      if (has_due) busy.push_back(lane);
    }
    std::vector<std::future<void>> joins;
    joins.reserve(busy.size());
    for (std::size_t i = 1; i < busy.size(); ++i) {
      std::size_t lane = busy[i];
      joins.push_back(pool_->submit(
          [this, lane, horizon, buffer] { run_lane(lane, horizon, buffer); }));
    }
    if (!busy.empty()) run_lane(busy[0], horizon, buffer);
    for (std::future<void>& j : joins) j.get();

    // Merge buffered trace effects in (time, channel, seq) order — exactly
    // the order the sequential fallback would have recorded them in.
    if (buffer) {
      std::vector<TraceSegment> segments;
      for (const LaneRun& run : lane_runs_) {
        segments.insert(segments.end(), run.segments.begin(),
                        run.segments.end());
      }
      std::sort(segments.begin(), segments.end(),
                [](const TraceSegment& a, const TraceSegment& b) {
                  return due_order(a.time, a.channel, a.seq, b.time, b.channel,
                                   b.seq);
                });
      for (const TraceSegment& seg : segments) {
        main_recorder->append_events(*lane_runs_[seg.lane].recorder, seg.begin,
                                     seg.end);
      }
      for (const LaneRun& run : lane_runs_) {
        if (run.recorder) main_recorder->merge_entity_names(*run.recorder);
      }
    }
  }

  for (const LaneRun& run : lane_runs_) events_executed_ += run.executed;
  if (audit::enabled()) {
    // Post-window invariant: every event at or before the horizon ran; only
    // future work (and, after the drain below, mailbox deliveries at exactly
    // the horizon) may remain queued.
    for (const Channel& ch : channels_) {
      AGILE_CHECK(ch.heap.empty() || ch.heap.front().time > horizon);
    }
  }
  drain_mailbox(horizon);
  window_horizon_ = -1;
  barrier_time_ = horizon;
}

SimTime LaneCoordinator::next_event_time() const {
  // Between-windows only: during a window the heaps belong to the lane
  // threads, and this coordinator-side sweep would race their pops.
  AGILE_CHECK_MSG(window_horizon_ < 0,
                  "next_event_time() inside a window races the lanes");
  SimTime best = -1;
  for (const Channel& ch : channels_) {
    if (ch.heap.empty()) continue;
    if (best < 0 || ch.heap.front().time < best) best = ch.heap.front().time;
  }
  return best;
}

std::size_t LaneCoordinator::pending_events() const {
  AGILE_CHECK_MSG(window_horizon_ < 0,
                  "pending_events() inside a window races the lanes");
  std::size_t n = 0;
  for (const Channel& ch : channels_) n += ch.heap.size();
  return n;
}

}  // namespace agile::sim
