// Sharded event lanes: conservative parallel intra-scenario execution.
//
// A `LaneCoordinator` shards per-host (lane-local) work out of the global
// `Simulation` heap. It owns one event queue per *channel* (channel = host
// in the cluster; tests may use arbitrary channels) and a deterministic
// channel→lane plan. Between two coordinator events the driver opens a
// *window*: `advance_to(H)` runs every lane event with `time <= H`, lanes in
// parallel on a `util::ThreadPool`, then barriers and drains the inter-lane
// mailbox. `H` is the conservative lookahead horizon — in the cluster it is
// the next coordinator event time (usually the network quantum edge), i.e.
// the earliest instant at which cross-lane state can legally interact.
//
// Determinism contract (what makes output byte-identical at any lane count):
//  * Lane events execute, and their buffered effects merge, in
//    (time, channel, seq) order — exactly the order the sequential fallback
//    uses. `seq` is a per-channel monotonic counter.
//  * Cross-channel sends from inside a running lane event must go through
//    `post` and carry a delivery time >= the window horizon (conservative
//    lookahead; violating it aborts). Posts are drained at the barrier in
//    (time, source-channel, per-source seq) order and only then inserted
//    into the target channels, so insertion order — and therefore execution
//    order next window — is independent of lane interleaving.
//  * Trace events recorded during a window land in per-lane buffers and are
//    re-emitted into the main recorder at the barrier, segment by segment in
//    (time, channel, seq) order of the emitting event: byte-identical to the
//    sequential recording order.
//
// With `lanes == 1` (or no pool) everything runs inline on the calling
// thread in the same (time, channel, seq) order, with no buffering — the
// sequential fallback is literally the merge loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulation.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace agile::sim {

class LaneCoordinator {
 public:
  struct Config {
    std::size_t lanes = 1;
    /// Required when lanes > 1. The coordinator runs one busy lane inline,
    /// so a pool of `lanes - 1` workers saturates `lanes` cores.
    util::ThreadPool* pool = nullptr;
  };

  explicit LaneCoordinator(Config config);
  ~LaneCoordinator();

  LaneCoordinator(const LaneCoordinator&) = delete;
  LaneCoordinator& operator=(const LaneCoordinator&) = delete;

  std::size_t lane_count() const { return lanes_; }
  std::size_t channel_count() const { return channels_.size(); }

  /// Grows the channel set (new channels default to lane `index % lanes`).
  /// Only callable between windows.
  void ensure_channels(std::size_t count);

  /// Installs the channel→lane plan for subsequent windows. Must cover every
  /// channel with values < lane_count(). Only callable between windows.
  void set_plan(const std::vector<std::uint32_t>& lane_of_channel);

  /// Schedules `fn` on `channel` at absolute time `t`. From the coordinator
  /// (between windows): `t` must be >= the last barrier time. From inside a
  /// running lane event: only channels of the *same* lane may be targeted
  /// (lane-local scheduling), with `t` >= the running event's time; anything
  /// cross-lane must use `post`.
  void schedule(std::size_t channel, SimTime t, EventFn fn);

  /// Cross-channel send. From inside a window the delivery time must be >=
  /// the window horizon (conservative lookahead — enforced); the entry is
  /// buffered and drained at the barrier in (time, source-channel, seq)
  /// order. From the coordinator between windows this is `schedule`.
  void post(std::size_t channel, SimTime t, EventFn fn);

  /// Runs every lane event with time <= `horizon` (lanes in parallel when a
  /// pool is configured), barriers, then drains the mailbox. `horizon` must
  /// be monotonically non-decreasing across calls.
  void advance_to(SimTime horizon);

  /// Earliest pending lane event time over all channels, or -1 when idle.
  /// Only callable between windows (checked): during a window the channel
  /// heaps belong to their lane threads and a coordinator-side sweep would
  /// race them.
  SimTime next_event_time() const;
  /// Total queued lane events; between windows only (checked), like
  /// next_event_time().
  std::size_t pending_events() const;
  std::uint64_t events_executed() const { return events_executed_; }
  SimTime barrier_time() const { return barrier_time_; }

  /// Per-lane-execution thread environment (e.g. the cluster installs its
  /// simulation as the thread's time source). `enter` runs on the executing
  /// thread before a lane's first event of a window, `exit` after its last.
  /// Only callable between windows (checked): lane threads read the hooks
  /// unsynchronized, which is safe precisely because the coordinator never
  /// swaps them while a window is open.
  void set_thread_hooks(std::function<void(std::size_t lane)> enter,
                        std::function<void(std::size_t lane)> exit);

  /// Time of the lane event currently executing on this thread, or
  /// `fallback` when the calling thread is not inside a lane event. Lets a
  /// cluster-level time source stamp lane-event effects with the event's own
  /// time rather than the coordinator clock.
  static SimTime thread_event_time(SimTime fallback);

 private:
  struct LaneEvent {
    SimTime time;
    std::uint64_t seq;  ///< Per-channel monotonic.
    EventFn fn;
  };
  struct LaneEventOrder {
    // Max-heap comparator: earliest (time, seq) at the root.
    bool operator()(const LaneEvent& a, const LaneEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Channel {
    std::vector<LaneEvent> heap;
    std::uint64_t next_seq = 0;       ///< Orders events within the channel.
    std::uint64_t next_post_seq = 0;  ///< Orders this channel's posts.
    std::uint32_t lane = 0;
  };
  /// One due event lifted out of its channel heap for window execution.
  struct DueEvent {
    SimTime time;
    std::size_t channel;
    std::uint64_t seq;
    EventFn fn;
  };
  struct MailboxEntry {
    SimTime time;
    std::size_t source;
    std::uint64_t seq;
    std::size_t target;
    EventFn fn;
  };
  /// Trace span of one lane event inside a lane's window recorder.
  struct TraceSegment {
    SimTime time;
    std::size_t channel;
    std::uint64_t seq;
    std::size_t begin;
    std::size_t end;
    std::size_t lane;
  };
  /// Everything one lane produces during a window.
  struct LaneRun {
    std::vector<std::size_t> channels;  ///< Channels assigned to this lane.
    std::vector<MailboxEntry> outbox;
    std::vector<TraceSegment> segments;
    std::unique_ptr<trace::TraceRecorder> recorder;  ///< Lazily created.
    std::uint64_t executed = 0;
  };

  void push_channel_event(Channel& ch, SimTime t, EventFn fn);
  /// Pops every event with time <= horizon from the lane's channels into a
  /// (time, channel, seq)-sorted batch. Returns false when none were due.
  bool collect_due(LaneRun& run, SimTime horizon, std::vector<DueEvent>& batch);
  void run_lane(std::size_t lane, SimTime horizon, bool buffer_effects);
  void drain_mailbox(SimTime horizon);

  // Concurrency contract (see DESIGN.md "Concurrency contract"): nothing
  // here is mutex-guarded because nothing is ever *shared* mutably —
  // ownership moves with the window fork/join instead.
  //  * channels_[c] is lane-confined: during a window, only the thread
  //    running lane `channels_[c].lane` touches its heap; between windows
  //    only the coordinator thread does. The pool's submit/join pair is the
  //    happens-before edge at each ownership transfer.
  //  * lane_runs_[l] (outbox, trace buffer, executed) is written only by
  //    lane `l`'s thread during a window and only by the coordinator at the
  //    barrier.
  //  * window_horizon_ / barrier_time_ / hooks are written by the
  //    coordinator strictly outside windows; lane threads read them inside a
  //    window, after the fork edge.
  //  * events_executed_ is coordinator-only.
  // tools/lane_lint.py checks the call-site side of this contract (no
  // cross-lane Simulation::schedule_*, no raw Simulation*/TraceRecorder*
  // captured into pool tasks); the AGILE_CHECKs in lanes.cpp enforce the
  // window-state transitions at runtime.
  std::size_t lanes_;
  util::ThreadPool* pool_;
  std::vector<Channel> channels_;
  std::vector<LaneRun> lane_runs_;
  std::function<void(std::size_t)> enter_hook_;
  std::function<void(std::size_t)> exit_hook_;
  SimTime barrier_time_ = 0;
  SimTime window_horizon_ = -1;  ///< -1 outside a window.
  std::uint64_t events_executed_ = 0;
};

}  // namespace agile::sim
