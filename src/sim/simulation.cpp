#include "sim/simulation.hpp"

#include <algorithm>

namespace agile::sim {

EventId Simulation::schedule_at(SimTime t, EventFn fn) {
  AGILE_CHECK_MSG(t >= now_, "cannot schedule into the past");
  EventId id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  return id;
}

bool Simulation::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  ++cancelled_pending_;
  return true;
}

std::shared_ptr<PeriodicTask> Simulation::schedule_periodic(
    SimTime period, std::function<void(SimTime)> fn, SimTime first_delay) {
  AGILE_CHECK(period > 0);
  auto task = std::shared_ptr<PeriodicTask>(new PeriodicTask(period, std::move(fn)));
  SimTime delay = first_delay >= 0 ? first_delay : period;
  schedule_at(now_ + delay, [this, task] {
    if (!task->alive()) return;
    task->fn_(now_);
    reschedule_periodic(task);
  });
  return task;
}

void Simulation::reschedule_periodic(const std::shared_ptr<PeriodicTask>& task) {
  schedule_at(now_ + task->period_, [this, task] {
    if (!task->alive()) return;
    task->fn_(now_);
    reschedule_periodic(task);
  });
}

void Simulation::purge_cancelled_top() {
  while (!queue_.empty()) {
    auto it = std::find(cancelled_.begin(), cancelled_.end(), queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    --cancelled_pending_;
    queue_.pop();
  }
}

bool Simulation::step() {
  purge_cancelled_top();
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  AGILE_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  ev.fn();
  return true;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  AGILE_CHECK(t >= now_);
  stopped_ = false;
  while (!stopped_) {
    purge_cancelled_top();
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

std::size_t Simulation::pending_events() const {
  return queue_.size() - cancelled_pending_;
}

}  // namespace agile::sim
