#include "sim/simulation.hpp"

#include <algorithm>

namespace agile::sim {

void Simulation::push_event(Event ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

Simulation::Event Simulation::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

EventId Simulation::schedule_at(SimTime t, EventFn fn) {
  AGILE_CHECK_MSG(t >= now_, "cannot schedule into the past");
  EventId id = next_id_++;
  push_event(Event{t, next_seq_++, id, std::move(fn), nullptr});
  return id;
}

bool Simulation::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  auto it = std::find_if(heap_.begin(), heap_.end(),
                         [id](const Event& ev) { return ev.id == id; });
  // Not queued (already ran, already popped as a tombstone) or already
  // cancelled: nothing to do. The old id-list bookkeeping returned true for
  // events that had long since executed and leaked their ids forever,
  // corrupting pending_events(); marking in place makes cancel exact.
  if (it == heap_.end() || it->cancelled) return false;
  it->cancelled = true;
  it->fn = nullptr;  // Release the closure's captures eagerly.
  ++cancelled_pending_;
  return true;
}

void Simulation::push_periodic(PeriodicTask* task, SimTime at) {
  push_event(Event{at, next_seq_++, next_id_++, nullptr, task});
}

std::shared_ptr<PeriodicTask> Simulation::schedule_periodic(
    SimTime period, std::function<void(SimTime)> fn, SimTime first_delay) {
  AGILE_CHECK(period > 0);
  auto task = std::shared_ptr<PeriodicTask>(new PeriodicTask(period, std::move(fn)));
  tasks_.push_back(task);
  SimTime delay = first_delay >= 0 ? first_delay : period;
  push_periodic(task.get(), now_ + delay);
  return task;
}

void Simulation::purge_cancelled_top() {
  while (!heap_.empty() && heap_.front().cancelled) {
    --cancelled_pending_;
    pop_event();
  }
}

SimTime Simulation::next_event_time() {
  purge_cancelled_top();
  return heap_.empty() ? -1 : heap_.front().time;
}

void Simulation::audit_bind_thread() {
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id owner = audit_owner_.load(std::memory_order_relaxed);
  if (owner == self) return;
  std::thread::id expected{};
  if (audit_owner_.compare_exchange_strong(expected, self,
                                           std::memory_order_relaxed)) {
    return;
  }
  AGILE_CHECK_S(expected == self)
      << "Simulation driven from a second thread (cross-worker aliasing): "
         "each parallel-sweep worker must own a private Simulation";
}

bool Simulation::step() {
  if (audit::enabled()) audit_bind_thread();
  purge_cancelled_top();
  if (heap_.empty()) return false;
  Event ev = pop_event();
  AGILE_CHECK(ev.time >= now_);
  now_ = ev.time;
  ++events_executed_;
  if (ev.periodic != nullptr) {
    PeriodicTask* task = ev.periodic;
    if (task->alive()) {
      task->fn_(now_);
      // Re-arm after the callback (it may cancel the task or change the
      // period); sequence numbering therefore matches the old closure-based
      // implementation exactly.
      if (task->alive()) push_periodic(task, now_ + task->period_);
    }
  } else {
    ev.fn();
  }
  return true;
}

void Simulation::run() {
  if (audit::enabled()) audit_bind_thread();
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  if (audit::enabled()) audit_bind_thread();
  AGILE_CHECK(t >= now_);
  stopped_ = false;
  while (!stopped_) {
    purge_cancelled_top();
    if (heap_.empty() || heap_.front().time > t) break;
    step();
  }
  if (!stopped_ && now_ < t) now_ = t;
}

std::size_t Simulation::pending_events() const {
  return heap_.size() - cancelled_pending_;
}

}  // namespace agile::sim
