// Datacenter topology: nodes, links, and deterministic routing.
//
// The network model historically hung every NIC off one non-blocking switch
// (the paper's top-of-rack setup). A `Topology` generalizes that to a graph
// of capacitated links with two builders:
//
//  * kFlat — the compatibility shape. Every node gets a full-duplex NIC pair
//    (one egress link, one ingress link) and the switch core is non-blocking,
//    so a flow's path is exactly [src egress, dst ingress]. This reproduces
//    the legacy single-switch allocations bit-for-bit.
//  * kLeafSpine — an oversubscribed two-tier fabric. Hosts attach to their
//    rack's leaf switch; leaves connect to a non-blocking spine through an
//    uplink/downlink pair whose capacity is
//        hosts_per_rack × NIC rate / oversubscription.
//    Intra-rack flows never leave the leaf (path = NIC pair, the leaf itself
//    is non-blocking for its own rack); inter-rack flows additionally cross
//    the source rack's uplink and the destination rack's downlink. Nodes
//    without a rack (external clients, VMD intermediate hosts) attach
//    directly at the spine, so their traffic crosses exactly the racked
//    endpoint's leaf links.
//
// Routing is static and deterministic: a flow's path is fixed at open time
// from the endpoints' rack placement alone. Paths are at most four links
// (NIC egress, leaf uplink, leaf downlink, NIC ingress).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace agile::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

enum class TopologyKind : std::uint8_t {
  kFlat,       ///< Single non-blocking switch (legacy shape, the default).
  kLeafSpine,  ///< Two-tier oversubscribed fabric with per-rack leaves.
};

/// Which stage of the fabric a link implements (per-tier stats aggregate on
/// this). Host tiers exist in every topology; leaf tiers only in kLeafSpine.
enum class LinkTier : std::uint8_t {
  kHostUp = 0,    ///< Host/node NIC egress.
  kHostDown = 1,  ///< Host/node NIC ingress.
  kLeafUp = 2,    ///< Rack leaf → spine uplink (the oversubscribed core).
  kLeafDown = 3,  ///< Spine → rack leaf downlink.
};
inline constexpr std::size_t kLinkTierCount = 4;

const char* tier_name(LinkTier tier);

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kFlat;
  /// Number of racks (leaf switches); kLeafSpine only.
  std::uint32_t racks = 1;
  /// Hosts each leaf uplink is sized for; the uplink payload capacity is
  /// hosts_per_rack × NIC payload rate / oversubscription.
  std::uint32_t hosts_per_rack = 1;
  /// Core oversubscription ratio (≥ 1 oversubscribes, < 1 overprovisions).
  /// Must be positive and finite: an infinite or zero ratio would build a
  /// zero-capacity uplink, which the model rejects rather than dividing by.
  double oversubscription = 4.0;
};

/// Rack id for nodes that attach at the spine instead of a leaf (external
/// clients, VMD intermediates). Also what flat-topology nodes report.
inline constexpr std::uint32_t kCoreAttached = 0xffffffffu;

class Topology {
 public:
  /// A flow's ordered link list. Bounded: NIC egress [+ leaf up] [+ leaf
  /// down] + NIC ingress.
  struct Path {
    std::array<LinkId, 4> link{};
    std::uint8_t count = 0;
    void push(LinkId id) {
      AGILE_CHECK(count < link.size());
      link[count++] = id;
    }
  };

  struct LinkSpec {
    LinkTier tier;
    double payload_rate;  ///< Usable payload bytes/sec on this link.
  };

  /// `nic_payload_rate` is the usable payload bytes/sec of one NIC direction
  /// (line rate × protocol efficiency / 8). Leaf links are built here; NIC
  /// links are appended per add_node.
  Topology(const TopologyConfig& config, double nic_payload_rate);

  /// Registers a node on `rack` (kCoreAttached → spine). Creates the node's
  /// NIC egress/ingress links. In kLeafSpine, racked nodes must name a rack
  /// below `config.racks`.
  NodeId add_node(std::uint32_t rack);

  std::size_t node_count() const { return node_rack_.size(); }
  std::uint32_t rack_of(NodeId node) const;

  /// Deterministic path for src → dst traffic, fixed by rack placement.
  Path route(NodeId src, NodeId dst) const;

  std::size_t link_count() const { return links_.size(); }
  const LinkSpec& link(LinkId id) const;
  LinkId host_up(NodeId node) const;
  LinkId host_down(NodeId node) const;

  const TopologyConfig& config() const { return config_; }

 private:
  TopologyConfig config_;
  double nic_payload_rate_;
  std::vector<LinkSpec> links_;
  std::vector<std::uint32_t> node_rack_;
  std::vector<LinkId> node_up_;
  std::vector<LinkId> node_down_;
  std::vector<LinkId> leaf_up_;    ///< Per rack; kLeafSpine only.
  std::vector<LinkId> leaf_down_;  ///< Per rack; kLeafSpine only.
};

}  // namespace agile::net
