// Flow-level network model over a capacitated link topology.
//
// Nodes attach to a `Topology` (net/topology.hpp): the default flat shape is
// the paper's single non-blocking top-of-rack switch, where each NIC is full
// duplex with a configurable line rate (default 1 Gbps); the leaf-spine shape
// adds an oversubscribed per-rack core tier. Two kinds of traffic are
// modeled:
//
//  * Flows — bulk byte streams (migration memory transfer, VMD swap-out
//    trains). A flow carries a backlog of offered bytes and a fixed
//    multi-hop path; every simulation quantum the network drains backlogs
//    under a max–min fair allocation in which *every link of the path* is a
//    constraining resource (progressive filling). Delivered bytes are
//    reported to the owner, which maps them back onto page descriptors
//    (FIFO order, matching a TCP stream).
//  * Background/RPC traffic — small request/response exchanges (demand-page
//    faults, VMD point reads, client ops). Callers account the bytes via
//    `consume_background`, which debits every link on the pair's path, and
//    query `rpc_latency` for a latency estimate that includes transmission
//    plus a congestion-dependent queueing factor over the most loaded link
//    of the path — so demand paging slows down while a bulk migration
//    saturates a shared link and vice versa.
//
// Degenerate flows are rejected, not modeled: a flow with src == dst is a
// loopback that never touches the fabric (callers short-circuit those), and
// the topology refuses to build zero-capacity links — both fail an
// AGILE_CHECK at the call site instead of silently starving.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "util/relaxed_cell.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::net {

using FlowId = std::uint64_t;

struct NetworkConfig {
  double link_bits_per_sec = 1e9;  ///< NIC line rate, full duplex (1 Gbps).
  SimTime base_rtt = 200;          ///< Switch round-trip for a minimal frame, µs.
  double protocol_efficiency = 0.94;  ///< TCP/IP+Ethernet framing overhead factor.
  double max_queue_factor = 200.0;  ///< Cap on the congestion queueing multiplier.
  /// Per-flow rate ceiling in bits/sec; 0 means uncapped (NIC rate only).
  /// Models a single TCP connection's throughput limit (window/cwnd bound),
  /// which is what makes N parallel migration streams faster than one on a
  /// fat pipe — with no per-flow cap, max–min filling already saturates the
  /// NIC pair with a single flow.
  double flow_max_bits_per_sec = 0.0;
  /// Fabric shape. The default (flat single switch) reproduces the legacy
  /// model bit-for-bit; kLeafSpine adds the oversubscribed core tier.
  TopologyConfig topology;
};

struct NodeStats {
  std::uint64_t tx_bytes = 0;  ///< Total bytes sent (flows + background).
  std::uint64_t rx_bytes = 0;
};

/// Aggregate view of one link tier over the run (per-tier stats gauges and
/// bench verdicts read this).
struct TierTotals {
  std::size_t links = 0;
  Bytes bytes_total = 0;  ///< Cumulative flow + background bytes on the tier.
  double capacity_bytes_per_sec = 0.0;  ///< Sum of link payload rates.
  double peak_utilization = 0.0;  ///< Max per-link utilization, last quantum.
};

class Network {
 public:
  explicit Network(NetworkConfig config = {});

  /// Adds a node on `rack` (kCoreAttached → spine / external). The rack is
  /// ignored by the flat topology.
  NodeId add_node(std::string name, std::uint32_t rack = kCoreAttached);
  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const;
  std::uint32_t rack_of(NodeId id) const { return topo_.rack_of(id); }

  /// Usable payload bytes per second on one NIC direction.
  double link_bytes_per_sec() const { return payload_rate_; }

  /// Usable payload bytes per second a single flow may carry. Equals
  /// link_bytes_per_sec() when no per-flow cap is configured.
  double flow_bytes_per_sec() const {
    return flow_payload_rate_ < payload_rate_ ? flow_payload_rate_ : payload_rate_;
  }

  /// Opens a bulk stream from `src` to `dst`; its path through the fabric is
  /// fixed here. `on_delivered(bytes)` is called as bytes reach the
  /// receiver. Streams start with an empty backlog; feed them with `offer`.
  /// Loopback (src == dst) is rejected — such traffic never touches the
  /// fabric and callers must short-circuit it.
  FlowId open_flow(NodeId src, NodeId dst, std::function<void(Bytes)> on_delivered);

  /// Adds bytes to a flow's send backlog.
  void offer(FlowId flow, Bytes bytes);

  /// Bytes offered but not yet delivered.
  Bytes backlog(FlowId flow) const;

  /// Closes a flow; undelivered backlog is dropped.
  void close_flow(FlowId flow);

  std::size_t open_flow_count() const { return flows_.size(); }

  /// Accounts small-message traffic for this quantum on every link of the
  /// src→dst path (affects fairness and congestion next `advance`).
  void consume_background(NodeId src, NodeId dst, Bytes bytes);

  /// Latency estimate for a request/response exchange where the response of
  /// `payload` bytes travels server→client, under current congestion. The
  /// queueing factor follows the most utilized link of the path, the
  /// transfer time its narrowest link, and the base RTT scales with the
  /// path's hop count (one switch crossing per extra link).
  SimTime rpc_latency(NodeId client, NodeId server, Bytes payload) const;

  /// Advances the model by `dt`: allocates bandwidth max–min fair over every
  /// path link, drains flow backlogs, fires delivery callbacks, folds
  /// background usage into the utilization estimate, and resets per-quantum
  /// accumulators.
  void advance(SimTime dt);

  /// Utilization (0..1) of a node's egress/ingress over the last quantum.
  double tx_utilization(NodeId node) const;
  double rx_utilization(NodeId node) const;

  const NodeStats& stats(NodeId node) const;

  // --- Link/topology observability -----------------------------------
  const TopologyConfig& topology() const { return config_.topology; }
  std::size_t link_count() const { return topo_.link_count(); }
  LinkTier link_tier(LinkId id) const { return topo_.link(id).tier; }
  double link_payload_rate(LinkId id) const { return topo_.link(id).payload_rate; }
  /// Utilization (0..1) of one link over the last quantum.
  double link_utilization(LinkId id) const;
  /// Cumulative flow + background bytes carried by one link.
  Bytes link_bytes_total(LinkId id) const;
  /// Aggregates every link of `tier` (zero-links TierTotals when the
  /// topology has none, e.g. leaf tiers on the flat shape).
  TierTotals tier_totals(LinkTier tier) const;

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    Topology::Path path;
    Bytes backlog = 0;
    Bytes delivered_total = 0;
    std::function<void(Bytes)> on_delivered;
  };

  /// Runtime state of one topology link.
  struct Link {
    /// Background bytes this quantum, reset in advance(). Relaxed cell:
    /// parallel event lanes accumulate client traffic and demand-RPC bytes
    /// concurrently — a commutative sum, so the post-barrier value (the only
    /// one advance() reads) is interleaving-independent. This member is in
    /// tools/lane_lint.py's shared-counter registry (LL004): the lint fails
    /// if it is ever re-declared as a plain integer.
    util::RelaxedCell<Bytes> background;
    double util = 0.0;  ///< Last quantum.
    Bytes bytes_total = 0;
  };

  struct Node {
    std::string name;
    NodeStats stats;
  };

  Flow& flow_ref(FlowId id);
  const Flow& flow_ref(FlowId id) const;

  NetworkConfig config_;
  double payload_rate_;       ///< bytes/sec usable per NIC direction.
  double flow_payload_rate_;  ///< bytes/sec usable per flow (inf = uncapped).
  Topology topo_;
  std::vector<Link> links_;
  std::vector<Node> nodes_;
  FlowId next_flow_id_ = 1;
  /// Ordered by id: advance() iterates flows in open order without an extra
  /// sort key, and the determinism lint's strict profile bans unordered
  /// containers in this module.
  std::map<FlowId, Flow> flows_;
  Bytes delivered_total_ = 0;  ///< Flow bytes delivered while traced.
};

}  // namespace agile::net
