// Flow-level network model.
//
// Hosts hang off a single non-blocking switch (the paper's top-of-rack
// setup); each host NIC is full duplex with a configurable line rate
// (default 1 Gbps). Two kinds of traffic are modeled:
//
//  * Flows — bulk byte streams (migration memory transfer, VMD swap-out
//    trains). A flow carries a backlog of offered bytes; every simulation
//    quantum the network drains backlogs under a max–min fair allocation
//    constrained by the sender's egress and receiver's ingress rates.
//    Delivered bytes are reported to the owner, which maps them back onto
//    page descriptors (FIFO order, matching a TCP stream).
//  * Background/RPC traffic — small request/response exchanges (demand-page
//    faults, VMD point reads, client ops). Callers account the bytes via
//    `consume_background` and query `rpc_latency` for a latency estimate
//    that includes transmission plus a congestion-dependent queueing factor,
//    so demand paging slows down while a bulk migration saturates the link
//    and vice versa.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/relaxed_cell.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

struct NetworkConfig {
  double link_bits_per_sec = 1e9;  ///< NIC line rate, full duplex (1 Gbps).
  SimTime base_rtt = 200;          ///< Switch round-trip for a minimal frame, µs.
  double protocol_efficiency = 0.94;  ///< TCP/IP+Ethernet framing overhead factor.
  double max_queue_factor = 200.0;  ///< Cap on the congestion queueing multiplier.
  /// Per-flow rate ceiling in bits/sec; 0 means uncapped (NIC rate only).
  /// Models a single TCP connection's throughput limit (window/cwnd bound),
  /// which is what makes N parallel migration streams faster than one on a
  /// fat pipe — with no per-flow cap, max–min filling already saturates the
  /// NIC pair with a single flow.
  double flow_max_bits_per_sec = 0.0;
};

struct NodeStats {
  std::uint64_t tx_bytes = 0;  ///< Total bytes sent (flows + background).
  std::uint64_t rx_bytes = 0;
};

class Network {
 public:
  explicit Network(NetworkConfig config = {});

  NodeId add_node(std::string name);
  std::size_t node_count() const { return nodes_.size(); }
  const std::string& node_name(NodeId id) const;

  /// Usable payload bytes per second on one NIC direction.
  double link_bytes_per_sec() const { return payload_rate_; }

  /// Usable payload bytes per second a single flow may carry. Equals
  /// link_bytes_per_sec() when no per-flow cap is configured.
  double flow_bytes_per_sec() const {
    return flow_payload_rate_ < payload_rate_ ? flow_payload_rate_ : payload_rate_;
  }

  /// Opens a bulk stream from `src` to `dst`. `on_delivered(bytes)` is called
  /// as bytes reach the receiver. Streams start with an empty backlog; feed
  /// them with `offer`.
  FlowId open_flow(NodeId src, NodeId dst, std::function<void(Bytes)> on_delivered);

  /// Adds bytes to a flow's send backlog.
  void offer(FlowId flow, Bytes bytes);

  /// Bytes offered but not yet delivered.
  Bytes backlog(FlowId flow) const;

  /// Closes a flow; undelivered backlog is dropped.
  void close_flow(FlowId flow);

  std::size_t open_flow_count() const { return flows_.size(); }

  /// Accounts small-message traffic for this quantum (affects fairness and
  /// congestion next `advance`).
  void consume_background(NodeId src, NodeId dst, Bytes bytes);

  /// Latency estimate for a request/response exchange where the response of
  /// `payload` bytes travels server→client, under current congestion.
  SimTime rpc_latency(NodeId client, NodeId server, Bytes payload) const;

  /// Advances the model by `dt`: allocates bandwidth max–min fair, drains
  /// flow backlogs, fires delivery callbacks, folds background usage into the
  /// utilization estimate, and resets per-quantum accumulators.
  void advance(SimTime dt);

  /// Utilization (0..1) of a node's egress/ingress over the last quantum.
  double tx_utilization(NodeId node) const;
  double rx_utilization(NodeId node) const;

  const NodeStats& stats(NodeId node) const;

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    Bytes backlog = 0;
    Bytes delivered_total = 0;
    std::function<void(Bytes)> on_delivered;
  };

  struct Node {
    std::string name;
    /// Background bytes this quantum, reset in advance(). Relaxed cells:
    /// parallel event lanes accumulate client traffic and demand-RPC bytes
    /// concurrently — a commutative sum, so the post-barrier value (the only
    /// one advance() reads) is interleaving-independent. These two members
    /// are in tools/lane_lint.py's shared-counter registry (LL004): the lint
    /// fails if either is ever re-declared as a plain integer.
    util::RelaxedCell<Bytes> background_tx;
    util::RelaxedCell<Bytes> background_rx;
    double util_tx = 0.0;  ///< Last quantum.
    double util_rx = 0.0;
    NodeStats stats;
  };

  Flow& flow_ref(FlowId id);
  const Flow& flow_ref(FlowId id) const;

  NetworkConfig config_;
  double payload_rate_;       ///< bytes/sec usable per direction.
  double flow_payload_rate_;  ///< bytes/sec usable per flow (inf = uncapped).
  std::vector<Node> nodes_;
  FlowId next_flow_id_ = 1;
  std::unordered_map<FlowId, Flow> flows_;
  Bytes delivered_total_ = 0;  ///< Flow bytes delivered while traced.
};

}  // namespace agile::net
