#include "net/topology.hpp"

#include <cmath>

namespace agile::net {

const char* tier_name(LinkTier tier) {
  switch (tier) {
    case LinkTier::kHostUp: return "host_up";
    case LinkTier::kHostDown: return "host_down";
    case LinkTier::kLeafUp: return "leaf_up";
    case LinkTier::kLeafDown: return "leaf_down";
  }
  return "?";
}

Topology::Topology(const TopologyConfig& config, double nic_payload_rate)
    : config_(config), nic_payload_rate_(nic_payload_rate) {
  AGILE_CHECK(nic_payload_rate_ > 0);
  if (config_.kind == TopologyKind::kLeafSpine) {
    AGILE_CHECK_MSG(config_.racks >= 1, "leaf-spine needs at least one rack");
    AGILE_CHECK_MSG(config_.hosts_per_rack >= 1,
                    "leaf uplinks are sized by hosts_per_rack");
    AGILE_CHECK_MSG(
        config_.oversubscription > 0 && std::isfinite(config_.oversubscription),
        "oversubscription must be positive and finite");
    double uplink_rate = static_cast<double>(config_.hosts_per_rack) *
                         nic_payload_rate_ / config_.oversubscription;
    AGILE_CHECK_MSG(uplink_rate > 0 && std::isfinite(uplink_rate),
                    "leaf uplink capacity must be positive and finite");
    leaf_up_.reserve(config_.racks);
    leaf_down_.reserve(config_.racks);
    for (std::uint32_t r = 0; r < config_.racks; ++r) {
      leaf_up_.push_back(static_cast<LinkId>(links_.size()));
      links_.push_back({LinkTier::kLeafUp, uplink_rate});
      leaf_down_.push_back(static_cast<LinkId>(links_.size()));
      links_.push_back({LinkTier::kLeafDown, uplink_rate});
    }
  }
}

NodeId Topology::add_node(std::uint32_t rack) {
  if (config_.kind == TopologyKind::kLeafSpine) {
    AGILE_CHECK_MSG(rack == kCoreAttached || rack < config_.racks,
                    "node rack out of range for the leaf-spine topology");
  } else {
    rack = kCoreAttached;  // flat: everyone hangs off the one switch
  }
  node_rack_.push_back(rack);
  node_up_.push_back(static_cast<LinkId>(links_.size()));
  links_.push_back({LinkTier::kHostUp, nic_payload_rate_});
  node_down_.push_back(static_cast<LinkId>(links_.size()));
  links_.push_back({LinkTier::kHostDown, nic_payload_rate_});
  return static_cast<NodeId>(node_rack_.size() - 1);
}

std::uint32_t Topology::rack_of(NodeId node) const {
  AGILE_CHECK(node < node_rack_.size());
  return node_rack_[node];
}

Topology::Path Topology::route(NodeId src, NodeId dst) const {
  AGILE_CHECK(src < node_rack_.size() && dst < node_rack_.size());
  Path path;
  path.push(node_up_[src]);
  if (config_.kind == TopologyKind::kLeafSpine) {
    std::uint32_t rs = node_rack_[src];
    std::uint32_t rd = node_rack_[dst];
    // Same-rack traffic turns around inside the (non-blocking) leaf; only
    // traffic between different racks — or to/from a spine-attached node —
    // crosses the oversubscribed core.
    if (rs != rd) {
      if (rs != kCoreAttached) path.push(leaf_up_[rs]);
      if (rd != kCoreAttached) path.push(leaf_down_[rd]);
    }
  }
  path.push(node_down_[dst]);
  return path;
}

const Topology::LinkSpec& Topology::link(LinkId id) const {
  AGILE_CHECK(id < links_.size());
  return links_[id];
}

LinkId Topology::host_up(NodeId node) const {
  AGILE_CHECK(node < node_up_.size());
  return node_up_[node];
}

LinkId Topology::host_down(NodeId node) const {
  AGILE_CHECK(node < node_down_.size());
  return node_down_[node];
}

}  // namespace agile::net
