#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "trace/trace.hpp"

namespace agile::net {

Network::Network(NetworkConfig config)
    : config_(config),
      payload_rate_(config.link_bits_per_sec / 8.0 * config.protocol_efficiency),
      flow_payload_rate_(0.0),
      topo_(config.topology, payload_rate_) {
  AGILE_CHECK(config_.link_bits_per_sec > 0);
  AGILE_CHECK(config_.protocol_efficiency > 0 && config_.protocol_efficiency <= 1.0);
  AGILE_CHECK(config_.flow_max_bits_per_sec >= 0);
  // Uncapped flows carry an infinite per-flow budget: min(x, inf) == x, so
  // the default allocation arithmetic is bitwise identical to the pre-cap
  // model (the golden tests depend on that).
  flow_payload_rate_ =
      config_.flow_max_bits_per_sec > 0
          ? config_.flow_max_bits_per_sec / 8.0 * config_.protocol_efficiency
          : std::numeric_limits<double>::infinity();
  links_.resize(topo_.link_count());  // leaf links exist before any node
}

NodeId Network::add_node(std::string name, std::uint32_t rack) {
  NodeId id = topo_.add_node(rack);
  links_.resize(topo_.link_count());
  nodes_.push_back(Node{std::move(name), {}});
  AGILE_CHECK(nodes_.size() == topo_.node_count());
  return id;
}

const std::string& Network::node_name(NodeId id) const {
  AGILE_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

FlowId Network::open_flow(NodeId src, NodeId dst,
                          std::function<void(Bytes)> on_delivered) {
  AGILE_CHECK(src < nodes_.size() && dst < nodes_.size());
  AGILE_CHECK_MSG(src != dst, "flow endpoints must differ");
  FlowId id = next_flow_id_++;
  flows_.emplace(id, Flow{src, dst, topo_.route(src, dst), 0, 0,
                          std::move(on_delivered)});
  return id;
}

Network::Flow& Network::flow_ref(FlowId id) {
  auto it = flows_.find(id);
  AGILE_CHECK_MSG(it != flows_.end(), "unknown flow");
  return it->second;
}

const Network::Flow& Network::flow_ref(FlowId id) const {
  auto it = flows_.find(id);
  AGILE_CHECK_MSG(it != flows_.end(), "unknown flow");
  return it->second;
}

void Network::offer(FlowId flow, Bytes bytes) { flow_ref(flow).backlog += bytes; }

Bytes Network::backlog(FlowId flow) const { return flow_ref(flow).backlog; }

void Network::close_flow(FlowId flow) {
  auto it = flows_.find(flow);
  AGILE_CHECK_MSG(it != flows_.end(), "closing unknown flow");
  flows_.erase(it);
}

void Network::consume_background(NodeId src, NodeId dst, Bytes bytes) {
  AGILE_CHECK(src < nodes_.size() && dst < nodes_.size());
  // Relaxed adds: callable concurrently from parallel event lanes (workload
  // client traffic, demand-fault RPCs); advance() reads the sums only after
  // the lane barrier.
  Topology::Path path = topo_.route(src, dst);
  for (std::uint8_t i = 0; i < path.count; ++i) {
    links_[path.link[i]].background.add(bytes);
  }
}

SimTime Network::rpc_latency(NodeId client, NodeId server, Bytes payload) const {
  AGILE_CHECK(client < nodes_.size() && server < nodes_.size());
  // The response travels server → client; congestion follows the most
  // utilized link of that path, transmission its narrowest link.
  Topology::Path path = topo_.route(server, client);
  double u = 0.0;
  double rate = std::numeric_limits<double>::infinity();
  for (std::uint8_t i = 0; i < path.count; ++i) {
    u = std::max(u, links_[path.link[i]].util);
    rate = std::min(rate, topo_.link(path.link[i]).payload_rate);
  }
  u = std::clamp(u, 0.0, 1.0 - 1.0 / config_.max_queue_factor);
  double transfer_sec = static_cast<double>(payload) / rate;
  double queue_factor = std::min(1.0 / (1.0 - u), config_.max_queue_factor);
  // One base RTT per switch crossing: a flat path (2 links) pays exactly the
  // configured RTT; each extra fabric hop adds another.
  SimTime rtt = config_.base_rtt * static_cast<SimTime>(path.count - 1);
  return rtt + static_cast<SimTime>(transfer_sec * queue_factor * 1e6);
}

void Network::advance(SimTime dt) {
  AGILE_CHECK(dt > 0);
  const double dt_sec = to_seconds(dt);
  const std::size_t link_count = links_.size();

  // One read per background cell this quantum (the lane barrier has already
  // joined, so the sums are final).
  std::vector<Bytes> background(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    background[l] = links_[l].background;
  }

  // Per-link remaining capacity after this quantum's background traffic.
  std::vector<double> quantum_cap(link_count), cap(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    quantum_cap[l] = topo_.link(static_cast<LinkId>(l)).payload_rate * dt_sec;
    cap[l] = std::max(0.0, quantum_cap[l] - static_cast<double>(background[l]));
  }

  // Per-flow budget for this quantum (infinite when no cap is configured, so
  // min() with it leaves the increments untouched).
  const double flow_cap = flow_payload_rate_ * dt_sec;

  // Progressive-filling max–min fair allocation over active flows: every
  // link of a flow's path is a constraining resource.
  struct Active {
    FlowId id;
    Topology::Path path;
    double remaining;  // backlog still unallocated
    double alloc = 0.0;
    double cap_left = 0.0;  // per-flow budget still unallocated
  };
  std::vector<Active> active;
  active.reserve(flows_.size());
  // std::map iteration is id order — the deterministic open order.
  for (auto& [id, f] : flows_) {
    if (f.backlog > 0) {
      active.push_back({id, f.path, static_cast<double>(f.backlog), 0.0, flow_cap});
    }
  }

  std::vector<bool> frozen(active.size(), false);
  std::size_t live = active.size();
  constexpr double kEps = 1e-6;
  while (live > 0) {
    // Users per link among live flows.
    std::vector<int> users(link_count, 0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      for (std::uint8_t p = 0; p < active[i].path.count; ++p) {
        ++users[active[i].path.link[p]];
      }
    }
    // Largest uniform increment every live flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      inc = std::min(inc, active[i].remaining);
      inc = std::min(inc, active[i].cap_left);
      for (std::uint8_t p = 0; p < active[i].path.count; ++p) {
        LinkId l = active[i].path.link[p];
        inc = std::min(inc, cap[l] / users[l]);
      }
    }
    if (!std::isfinite(inc)) break;
    inc = std::max(inc, 0.0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      active[i].alloc += inc;
      active[i].remaining -= inc;
      active[i].cap_left -= inc;  // inf - inc == inf for uncapped flows
      for (std::uint8_t p = 0; p < active[i].path.count; ++p) {
        cap[active[i].path.link[p]] -= inc;
      }
    }
    // Freeze flows that hit their backlog, their per-flow budget, or a
    // saturated link anywhere on their path.
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      bool saturated = false;
      for (std::uint8_t p = 0; p < active[i].path.count; ++p) {
        if (cap[active[i].path.link[p]] <= kEps) {
          saturated = true;
          break;
        }
      }
      if (active[i].remaining <= kEps || active[i].cap_left <= kEps ||
          saturated) {
        frozen[i] = true;
        --live;
      }
    }
    if (inc <= kEps && live > 0) {
      // All remaining flows sit on saturated links; stop.
      break;
    }
  }

  // Commit deliveries and gather callbacks before invoking any of them, so a
  // callback that opens/closes flows can't invalidate our iteration.
  struct Delivery {
    // By value: a callback may close its own (or any other) flow, so
    // pointers into `flows_` must not outlive this loop.
    std::function<void(Bytes)> fn;
    Bytes bytes;
  };
  std::vector<Delivery> deliveries;
  std::vector<double> flow_link(link_count, 0.0);
  for (const Active& a : active) {
    auto bytes = static_cast<Bytes>(a.alloc);
    if (bytes == 0) continue;
    Flow& f = flow_ref(a.id);
    bytes = std::min<Bytes>(bytes, f.backlog);
    f.backlog -= bytes;
    f.delivered_total += bytes;
    for (std::uint8_t p = 0; p < f.path.count; ++p) {
      LinkId l = f.path.link[p];
      flow_link[l] += static_cast<double>(bytes);
      links_[l].bytes_total += bytes;
    }
    nodes_[f.src].stats.tx_bytes += bytes;
    nodes_[f.dst].stats.rx_bytes += bytes;
    if (f.on_delivered) deliveries.push_back({f.on_delivered, bytes});
  }

  // Fold background traffic into link totals and compute utilization for the
  // RPC latency model; reset the per-quantum accumulators.
  for (std::size_t l = 0; l < link_count; ++l) {
    Link& link = links_[l];
    link.bytes_total += background[l];
    link.util = std::min(
        1.0, (flow_link[l] + static_cast<double>(background[l])) / quantum_cap[l]);
    link.background = 0;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    nodes_[i].stats.tx_bytes += background[topo_.host_up(id)];
    nodes_[i].stats.rx_bytes += background[topo_.host_down(id)];
  }

  // Fabric-level telemetry on the global lane: one sample per quantum while
  // any flow is active (idle quanta add nothing to the trace).
  if (trace::enabled() && !active.empty()) {
    Bytes backlog_total = 0;
    for (const auto& [id, f] : flows_) backlog_total += f.backlog;
    Bytes delivered_quantum = 0;
    for (const Delivery& d : deliveries) delivered_quantum += d.bytes;
    delivered_total_ += delivered_quantum;
    AGILE_TRACE_COUNTER("net", "backlog_bytes", 0, backlog_total);
    AGILE_TRACE_COUNTER("net", "delivered_bytes", 0, delivered_total_);
    AGILE_TRACE_COUNTER("net", "active_flows", 0, active.size());
  }

  for (const Delivery& d : deliveries) d.fn(d.bytes);
}

double Network::tx_utilization(NodeId node) const {
  AGILE_CHECK(node < nodes_.size());
  return links_[topo_.host_up(node)].util;
}

double Network::rx_utilization(NodeId node) const {
  AGILE_CHECK(node < nodes_.size());
  return links_[topo_.host_down(node)].util;
}

const NodeStats& Network::stats(NodeId node) const {
  AGILE_CHECK(node < nodes_.size());
  return nodes_[node].stats;
}

double Network::link_utilization(LinkId id) const {
  AGILE_CHECK(id < links_.size());
  return links_[id].util;
}

Bytes Network::link_bytes_total(LinkId id) const {
  AGILE_CHECK(id < links_.size());
  return links_[id].bytes_total;
}

TierTotals Network::tier_totals(LinkTier tier) const {
  TierTotals totals;
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (topo_.link(static_cast<LinkId>(l)).tier != tier) continue;
    ++totals.links;
    totals.bytes_total += links_[l].bytes_total;
    totals.capacity_bytes_per_sec += topo_.link(static_cast<LinkId>(l)).payload_rate;
    totals.peak_utilization = std::max(totals.peak_utilization, links_[l].util);
  }
  return totals;
}

}  // namespace agile::net
