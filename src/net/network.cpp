#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "trace/trace.hpp"

namespace agile::net {

Network::Network(NetworkConfig config) : config_(config) {
  AGILE_CHECK(config_.link_bits_per_sec > 0);
  AGILE_CHECK(config_.protocol_efficiency > 0 && config_.protocol_efficiency <= 1.0);
  AGILE_CHECK(config_.flow_max_bits_per_sec >= 0);
  payload_rate_ = config_.link_bits_per_sec / 8.0 * config_.protocol_efficiency;
  // Uncapped flows carry an infinite per-flow budget: min(x, inf) == x, so
  // the default allocation arithmetic is bitwise identical to the pre-cap
  // model (the golden tests depend on that).
  flow_payload_rate_ =
      config_.flow_max_bits_per_sec > 0
          ? config_.flow_max_bits_per_sec / 8.0 * config_.protocol_efficiency
          : std::numeric_limits<double>::infinity();
}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(Node{std::move(name), 0, 0, 0.0, 0.0, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const {
  AGILE_CHECK(id < nodes_.size());
  return nodes_[id].name;
}

FlowId Network::open_flow(NodeId src, NodeId dst,
                          std::function<void(Bytes)> on_delivered) {
  AGILE_CHECK(src < nodes_.size() && dst < nodes_.size());
  AGILE_CHECK_MSG(src != dst, "flow endpoints must differ");
  FlowId id = next_flow_id_++;
  flows_.emplace(id, Flow{src, dst, 0, 0, std::move(on_delivered)});
  return id;
}

Network::Flow& Network::flow_ref(FlowId id) {
  auto it = flows_.find(id);
  AGILE_CHECK_MSG(it != flows_.end(), "unknown flow");
  return it->second;
}

const Network::Flow& Network::flow_ref(FlowId id) const {
  auto it = flows_.find(id);
  AGILE_CHECK_MSG(it != flows_.end(), "unknown flow");
  return it->second;
}

void Network::offer(FlowId flow, Bytes bytes) { flow_ref(flow).backlog += bytes; }

Bytes Network::backlog(FlowId flow) const { return flow_ref(flow).backlog; }

void Network::close_flow(FlowId flow) {
  auto it = flows_.find(flow);
  AGILE_CHECK_MSG(it != flows_.end(), "closing unknown flow");
  flows_.erase(it);
}

void Network::consume_background(NodeId src, NodeId dst, Bytes bytes) {
  AGILE_CHECK(src < nodes_.size() && dst < nodes_.size());
  // Relaxed adds: callable concurrently from parallel event lanes (workload
  // client traffic, demand-fault RPCs); advance() reads the sums only after
  // the lane barrier.
  nodes_[src].background_tx.add(bytes);
  nodes_[dst].background_rx.add(bytes);
}

SimTime Network::rpc_latency(NodeId client, NodeId server, Bytes payload) const {
  AGILE_CHECK(client < nodes_.size() && server < nodes_.size());
  double u = std::max(nodes_[server].util_tx, nodes_[client].util_rx);
  u = std::clamp(u, 0.0, 1.0 - 1.0 / config_.max_queue_factor);
  double transfer_sec = static_cast<double>(payload) / payload_rate_;
  double queue_factor = std::min(1.0 / (1.0 - u), config_.max_queue_factor);
  return config_.base_rtt + static_cast<SimTime>(transfer_sec * queue_factor * 1e6);
}

void Network::advance(SimTime dt) {
  AGILE_CHECK(dt > 0);
  const double dt_sec = to_seconds(dt);
  const double raw_capacity = payload_rate_ * dt_sec;

  // Per-direction remaining capacity after this quantum's background traffic.
  std::vector<double> cap_tx(nodes_.size()), cap_rx(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    cap_tx[i] = std::max(0.0, raw_capacity - static_cast<double>(nodes_[i].background_tx));
    cap_rx[i] = std::max(0.0, raw_capacity - static_cast<double>(nodes_[i].background_rx));
  }

  // Per-flow budget for this quantum (infinite when no cap is configured, so
  // min() with it leaves the increments untouched).
  const double flow_cap = flow_payload_rate_ * dt_sec;

  // Progressive-filling max–min fair allocation over active flows.
  struct Active {
    FlowId id;
    NodeId src, dst;
    double remaining;  // backlog still unallocated
    double alloc = 0.0;
    double cap_left = 0.0;  // per-flow budget still unallocated
  };
  std::vector<Active> active;
  active.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    if (f.backlog > 0) {
      active.push_back(
          {id, f.src, f.dst, static_cast<double>(f.backlog), 0.0, flow_cap});
    }
  }
  // Deterministic order (unordered_map iteration order is not portable).
  std::sort(active.begin(), active.end(),
            [](const Active& a, const Active& b) { return a.id < b.id; });

  std::vector<bool> frozen(active.size(), false);
  std::size_t live = active.size();
  constexpr double kEps = 1e-6;
  while (live > 0) {
    // Users per resource among live flows.
    std::vector<int> users_tx(nodes_.size(), 0), users_rx(nodes_.size(), 0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      ++users_tx[active[i].src];
      ++users_rx[active[i].dst];
    }
    // Largest uniform increment every live flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      inc = std::min(inc, active[i].remaining);
      inc = std::min(inc, active[i].cap_left);
      inc = std::min(inc, cap_tx[active[i].src] / users_tx[active[i].src]);
      inc = std::min(inc, cap_rx[active[i].dst] / users_rx[active[i].dst]);
    }
    if (!std::isfinite(inc)) break;
    inc = std::max(inc, 0.0);
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      active[i].alloc += inc;
      active[i].remaining -= inc;
      active[i].cap_left -= inc;  // inf - inc == inf for uncapped flows
      cap_tx[active[i].src] -= inc;
      cap_rx[active[i].dst] -= inc;
    }
    // Freeze flows that hit their backlog, their per-flow budget, or a
    // saturated resource.
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      if (active[i].remaining <= kEps || active[i].cap_left <= kEps ||
          cap_tx[active[i].src] <= kEps || cap_rx[active[i].dst] <= kEps) {
        frozen[i] = true;
        --live;
      }
    }
    if (inc <= kEps && live > 0) {
      // All remaining flows sit on saturated resources; stop.
      break;
    }
  }

  // Commit deliveries and gather callbacks before invoking any of them, so a
  // callback that opens/closes flows can't invalidate our iteration.
  struct Delivery {
    // By value: a callback may close its own (or any other) flow, so
    // pointers into `flows_` must not outlive this loop.
    std::function<void(Bytes)> fn;
    Bytes bytes;
  };
  std::vector<Delivery> deliveries;
  std::vector<double> flow_tx(nodes_.size(), 0.0), flow_rx(nodes_.size(), 0.0);
  for (const Active& a : active) {
    auto bytes = static_cast<Bytes>(a.alloc);
    if (bytes == 0) continue;
    Flow& f = flow_ref(a.id);
    bytes = std::min<Bytes>(bytes, f.backlog);
    f.backlog -= bytes;
    f.delivered_total += bytes;
    flow_tx[f.src] += static_cast<double>(bytes);
    flow_rx[f.dst] += static_cast<double>(bytes);
    nodes_[f.src].stats.tx_bytes += bytes;
    nodes_[f.dst].stats.rx_bytes += bytes;
    if (f.on_delivered) deliveries.push_back({f.on_delivered, bytes});
  }

  // Fold background traffic into stats and compute utilization for the RPC
  // latency model; reset the per-quantum accumulators.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    n.stats.tx_bytes += n.background_tx;
    n.stats.rx_bytes += n.background_rx;
    n.util_tx = std::min(1.0, (flow_tx[i] + static_cast<double>(n.background_tx)) / raw_capacity);
    n.util_rx = std::min(1.0, (flow_rx[i] + static_cast<double>(n.background_rx)) / raw_capacity);
    n.background_tx = 0;
    n.background_rx = 0;
  }

  // Fabric-level telemetry on the global lane: one sample per quantum while
  // any flow is active (idle quanta add nothing to the trace).
  if (trace::enabled() && !active.empty()) {
    Bytes backlog_total = 0;
    for (const auto& [id, f] : flows_) backlog_total += f.backlog;
    Bytes delivered_quantum = 0;
    for (const Delivery& d : deliveries) delivered_quantum += d.bytes;
    delivered_total_ += delivered_quantum;
    AGILE_TRACE_COUNTER("net", "backlog_bytes", 0, backlog_total);
    AGILE_TRACE_COUNTER("net", "delivered_bytes", 0, delivered_total_);
    AGILE_TRACE_COUNTER("net", "active_flows", 0, active.size());
  }

  for (const Delivery& d : deliveries) d.fn(d.bytes);
}

double Network::tx_utilization(NodeId node) const {
  AGILE_CHECK(node < nodes_.size());
  return nodes_[node].util_tx;
}

double Network::rx_utilization(NodeId node) const {
  AGILE_CHECK(node < nodes_.size());
  return nodes_[node].util_rx;
}

const NodeStats& Network::stats(NodeId node) const {
  AGILE_CHECK(node < nodes_.size());
  return nodes_[node].stats;
}

}  // namespace agile::net
