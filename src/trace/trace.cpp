#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/check.hpp"

namespace agile::trace {
namespace {

// Thread-local, mirroring the logger: each sweep worker traces (or doesn't)
// its own simulation without synchronization or cross-talk.
thread_local TraceRecorder* g_recorder = nullptr;
thread_local std::int64_t (*g_time_source)() = nullptr;

/// Appends `v` to `out` as a JSON number. Integral values print without a
/// fractional part (counters are almost always byte/page counts); the rest
/// use %.17g which round-trips doubles exactly.
void append_json_number(std::string* out, double v) {
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

/// JSON string escaping for component/entity names (conservative: names are
/// identifiers in practice, but a VM name could contain anything).
void append_json_string(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

struct SpanStats {
  std::uint64_t count = 0;
  std::int64_t total = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
};

struct CounterStats {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
};

}  // namespace

TraceRecorder* recorder() { return g_recorder; }

TraceRecorder* set_recorder(TraceRecorder* r) {
  TraceRecorder* prev = g_recorder;
  g_recorder = r;
  return prev;
}

void set_time_source(std::int64_t (*now_usec)()) { g_time_source = now_usec; }

std::int64_t now_usec() {
  return g_time_source != nullptr ? g_time_source() : 0;
}

void TraceRecorder::record(EventKind kind, const char* component,
                           const char* name, std::uint64_t id, double value) {
  AGILE_DCHECK(component != nullptr && name != nullptr);
  events_.push_back(TraceEvent{kind, component, name, id, now_usec(), value});
}

void TraceRecorder::begin_span(const char* component, const char* name,
                               std::uint64_t id, double value) {
  record(EventKind::kBegin, component, name, id, value);
}

void TraceRecorder::end_span(const char* component, const char* name,
                             std::uint64_t id) {
  record(EventKind::kEnd, component, name, id, 0);
}

void TraceRecorder::instant(const char* component, const char* name,
                            std::uint64_t id, double value) {
  record(EventKind::kInstant, component, name, id, value);
}

void TraceRecorder::counter(const char* component, const char* name,
                            std::uint64_t id, double value) {
  record(EventKind::kCounter, component, name, id, value);
}

void TraceRecorder::set_entity_name(std::uint64_t id, const std::string& name) {
  entity_names_[id] = name;
}

void TraceRecorder::append_events(const TraceRecorder& src, std::size_t begin,
                                  std::size_t end) {
  AGILE_CHECK(begin <= end && end <= src.events_.size());
  events_.insert(events_.end(),
                 src.events_.begin() + static_cast<std::ptrdiff_t>(begin),
                 src.events_.begin() + static_cast<std::ptrdiff_t>(end));
}

void TraceRecorder::merge_entity_names(const TraceRecorder& src) {
  for (const auto& [id, name] : src.entity_names_) entity_names_[id] = name;
}

void TraceRecorder::clear() {
  events_.clear();
  entity_names_.clear();
}

std::string TraceRecorder::to_chrome_json() const {
  // Entity id -> Chrome pid (id+1: pid 0 renders oddly), component -> tid
  // interned by *content* in first-appearance order so exports stay
  // byte-identical regardless of which TU's copy of a literal we saw first.
  std::map<std::string, int> tids;
  auto tid_of = [&tids](const char* component) {
    auto it = tids.find(component);
    if (it != tids.end()) return it->second;
    int tid = static_cast<int>(tids.size()) + 1;
    tids.emplace(component, tid);
    return tid;
  };

  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) out.append(",\n");
    first = false;
  };

  // Metadata first: process names for named entities, then thread names for
  // every (entity, component) pair that appears in the buffer.
  for (const auto& [id, name] : entity_names_) {
    comma();
    out.append("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
    append_json_number(&out, static_cast<double>(id + 1));
    out.append(",\"tid\":0,\"args\":{\"name\":");
    append_json_string(&out, name.c_str());
    out.append("}}");
  }
  std::map<std::pair<std::uint64_t, int>, const char*> thread_names;
  for (const TraceEvent& e : events_) {
    thread_names.emplace(std::make_pair(e.id, tid_of(e.component)), e.component);
  }
  for (const auto& [key, component] : thread_names) {
    comma();
    out.append("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
    append_json_number(&out, static_cast<double>(key.first + 1));
    out.append(",\"tid\":");
    append_json_number(&out, key.second);
    out.append(",\"args\":{\"name\":");
    append_json_string(&out, component);
    out.append("}}");
  }

  for (const TraceEvent& e : events_) {
    comma();
    out.append("{\"ph\":\"");
    switch (e.kind) {
      case EventKind::kBegin: out.push_back('B'); break;
      case EventKind::kEnd: out.push_back('E'); break;
      case EventKind::kInstant: out.push_back('i'); break;
      case EventKind::kCounter: out.push_back('C'); break;
    }
    out.append("\",\"ts\":");
    append_json_number(&out, static_cast<double>(e.ts));
    out.append(",\"pid\":");
    append_json_number(&out, static_cast<double>(e.id + 1));
    out.append(",\"tid\":");
    append_json_number(&out, tid_of(e.component));
    if (e.kind != EventKind::kEnd) {
      out.append(",\"name\":");
      append_json_string(&out, e.name);
    }
    switch (e.kind) {
      case EventKind::kBegin:
        if (e.value != 0) {
          out.append(",\"args\":{\"v\":");
          append_json_number(&out, e.value);
          out.append("}");
        }
        break;
      case EventKind::kEnd:
        break;
      case EventKind::kInstant:
        out.append(",\"s\":\"t\"");
        if (e.value != 0) {
          out.append(",\"args\":{\"v\":");
          append_json_number(&out, e.value);
          out.append("}");
        }
        break;
      case EventKind::kCounter:
        out.append(",\"args\":{\"value\":");
        append_json_number(&out, e.value);
        out.append("}");
        break;
    }
    out.append("}");
  }
  out.append("\n]}\n");
  return out;
}

Status TraceRecorder::write_chrome_json(const std::string& path) const {
  std::string json = to_chrome_json();
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;  // fopen below reports the real failure
    std::filesystem::create_directories(parent, ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return unavailable("trace: cannot open '" + path + "' for writing");
  }
  std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return unavailable("trace: short write to '" + path + "'");
  }
  return Status::ok();
}

std::string TraceRecorder::summary() const {
  using Key = std::pair<std::string, std::string>;  // (component, name)
  std::map<Key, SpanStats> spans;
  std::map<Key, CounterStats> counters;
  std::map<Key, std::uint64_t> instants;
  // Open-begin stack per (component, name, id): spans of the same name nest
  // LIFO (rounds are sequential; recursion would be same-name nesting).
  std::map<std::tuple<std::string, std::string, std::uint64_t>,
           std::vector<std::int64_t>> open;
  std::uint64_t unmatched = 0;

  for (const TraceEvent& e : events_) {
    Key key{e.component, e.name};
    switch (e.kind) {
      case EventKind::kBegin:
        open[{e.component, e.name, e.id}].push_back(e.ts);
        break;
      case EventKind::kEnd: {
        auto it = open.find({e.component, e.name, e.id});
        if (it == open.end() || it->second.empty()) {
          ++unmatched;
          break;
        }
        std::int64_t dur = e.ts - it->second.back();
        it->second.pop_back();
        SpanStats& s = spans[key];
        if (s.count == 0 || dur < s.min) s.min = dur;
        if (s.count == 0 || dur > s.max) s.max = dur;
        ++s.count;
        s.total += dur;
        break;
      }
      case EventKind::kInstant:
        ++instants[key];
        break;
      case EventKind::kCounter: {
        CounterStats& c = counters[key];
        if (c.count == 0 || e.value < c.min) c.min = e.value;
        if (c.count == 0 || e.value > c.max) c.max = e.value;
        ++c.count;
        c.sum += e.value;
        break;
      }
    }
  }
  std::uint64_t still_open = 0;
  for (const auto& [key, stack] : open) still_open += stack.size();

  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "trace: %zu events\n", events_.size());
  out.append(line);
  if (!spans.empty()) {
    out.append("  spans (count, total/min/max ms):\n");
    for (const auto& [key, s] : spans) {
      std::snprintf(line, sizeof(line),
                    "    %-28s %6llu  %10.3f %10.3f %10.3f\n",
                    (key.first + "/" + key.second).c_str(),
                    static_cast<unsigned long long>(s.count),
                    static_cast<double>(s.total) / 1e3,
                    static_cast<double>(s.min) / 1e3,
                    static_cast<double>(s.max) / 1e3);
      out.append(line);
    }
  }
  if (!counters.empty()) {
    out.append("  counters (samples, min/mean/max):\n");
    for (const auto& [key, c] : counters) {
      std::snprintf(line, sizeof(line),
                    "    %-28s %6llu  %12.0f %14.1f %12.0f\n",
                    (key.first + "/" + key.second).c_str(),
                    static_cast<unsigned long long>(c.count), c.min,
                    c.sum / static_cast<double>(c.count), c.max);
      out.append(line);
    }
  }
  if (!instants.empty()) {
    out.append("  instants (count):\n");
    for (const auto& [key, n] : instants) {
      std::snprintf(line, sizeof(line), "    %-28s %6llu\n",
                    (key.first + "/" + key.second).c_str(),
                    static_cast<unsigned long long>(n));
      out.append(line);
    }
  }
  if (unmatched != 0 || still_open != 0) {
    std::snprintf(line, sizeof(line),
                  "  (%llu unmatched ends, %llu spans still open)\n",
                  static_cast<unsigned long long>(unmatched),
                  static_cast<unsigned long long>(still_open));
    out.append(line);
  }
  return out;
}

}  // namespace agile::trace
