// Deterministic, simulated-time tracing.
//
// A `TraceRecorder` collects phase spans, instant events and counter samples
// from every layer of the simulator into one append-only buffer. Timestamps
// come from the simulated clock (the same thread-local hook the logger uses),
// never from the wall clock, so a trace is a pure function of the scenario
// and seed: the golden-trace test asserts byte-identical exports across
// sweep-worker counts and audit modes.
//
// Recording is off unless a recorder is installed on the current thread
// (`TraceSession` does this RAII-style). The AGILE_TRACE_* macros compile to
// a thread-local load plus a branch when disabled — cheap enough to leave in
// cold and warm paths permanently. Hot inner loops (e.g. GuestMemory::touch)
// are deliberately left uninstrumented.
//
// Export formats:
//  * Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev):
//    entity id -> process, component -> thread, so one migration's engine
//    phases, wire activity and memory churn line up on adjacent tracks.
//  * A compact text summary (span durations, counter min/mean/max, event
//    counts) for terminals and diffs; tools/trace_report.py reads the JSON.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace agile::trace {

enum class EventKind : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

/// One trace record. `component` and `name` must be string literals (or
/// otherwise outlive the recorder); events store the pointers, and the
/// exporter interns by content so duplicate literals across TUs are fine.
struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  const char* component = nullptr;
  const char* name = nullptr;
  std::uint64_t id = 0;  // entity id: VM index, namespace id, 0 = global
  std::int64_t ts = 0;   // simulated microseconds
  double value = 0;      // counter sample / instant or span argument
};

/// Thread-confined by contract, not by locks: a recorder is only ever
/// touched by the thread it is installed on (`set_recorder` is
/// thread-local), and the lane coordinator's merge paths (`append_events`,
/// `merge_entity_names`) run strictly after the window barrier, when every
/// lane thread has finished writing its per-lane recorder. tools/lane_lint.py
/// rule LL002 keeps raw TraceRecorder* from leaking into pool tasks, which
/// is what would break this confinement.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void begin_span(const char* component, const char* name, std::uint64_t id,
                  double value = 0);
  void end_span(const char* component, const char* name, std::uint64_t id);
  void instant(const char* component, const char* name, std::uint64_t id,
               double value = 0);
  void counter(const char* component, const char* name, std::uint64_t id,
               double value);

  /// Names the entity (Chrome "process") for `id`, e.g. a VM's name. Safe to
  /// call repeatedly; the last name wins.
  void set_entity_name(std::uint64_t id, const std::string& name);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t event_count() const { return events_.size(); }

  /// Appends `src`'s events [begin, end) verbatim. Used by the lane
  /// coordinator to merge per-lane window buffers back into the main
  /// recorder in deterministic (time, channel, seq) segment order.
  void append_events(const TraceRecorder& src, std::size_t begin,
                     std::size_t end);
  /// Copies `src`'s entity names (last write wins, ordered by id).
  void merge_entity_names(const TraceRecorder& src);
  /// Drops all events and entity names (per-window buffer reuse).
  void clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]}). Deterministic: event
  /// order is record order, tids are interned in first-appearance order, and
  /// metadata is emitted from ordered maps.
  std::string to_chrome_json() const;
  Status write_chrome_json(const std::string& path) const;

  /// Compact text summary: span duration stats, counter min/mean/max and
  /// instant counts, grouped by component/name in sorted order.
  std::string summary() const;

 private:
  void record(EventKind kind, const char* component, const char* name,
              std::uint64_t id, double value);

  std::vector<TraceEvent> events_;
  std::map<std::uint64_t, std::string> entity_names_;
};

/// Recorder installed on the current thread, or nullptr when tracing is off.
TraceRecorder* recorder();

/// Installs `r` as the current thread's recorder and returns the previous
/// one. Thread-local, like the logger's time source: each sweep worker runs
/// its simulation with its own recorder (or none).
TraceRecorder* set_recorder(TraceRecorder* r);

inline bool enabled() { return recorder() != nullptr; }

/// Deterministic 1-in-`period` sampling for per-page-operation counters
/// (evictions, swap-ins, namespace I/O): true on the first event and every
/// `period`-th thereafter. Keyed by a monotonic count — never time or rate —
/// so sampled traces remain a pure function of the scenario and seed.
constexpr bool sample_counter(std::uint64_t count, std::uint64_t period = 64) {
  return count == 1 || count % period == 0;
}

/// Registers the simulated-clock hook used to timestamp events; installed by
/// Cluster alongside the logger's time source. Pass nullptr to detach.
void set_time_source(std::int64_t (*now_usec)());

/// Current simulated time per the installed hook, or 0 when detached.
std::int64_t now_usec();

/// Owns a recorder and installs it on the current thread for its lifetime
/// (restoring the previous recorder on destruction). Create the session
/// before the Testbed so construction-time events are captured, and keep its
/// address stable (heap-allocate if the owner is moved around).
class TraceSession {
 public:
  TraceSession() : previous_(set_recorder(&recorder_)) {}
  ~TraceSession() { set_recorder(previous_); }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  TraceRecorder& recorder() { return recorder_; }

 private:
  TraceRecorder recorder_;
  TraceRecorder* previous_;
};

/// RAII span used by AGILE_TRACE_SPAN. Captures the recorder at construction
/// so begin/end pair up even if a nested call swaps recorders (tests do).
class ScopedSpan {
 public:
  ScopedSpan(const char* component, const char* name, std::uint64_t id,
             double value = 0)
      : recorder_(trace::recorder()), component_(component), name_(name), id_(id) {
    if (recorder_ != nullptr) recorder_->begin_span(component_, name_, id_, value);
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->end_span(component_, name_, id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* component_;
  const char* name_;
  std::uint64_t id_;
};

}  // namespace agile::trace

#define AGILE_TRACE_CONCAT_INNER(a, b) a##b
#define AGILE_TRACE_CONCAT(a, b) AGILE_TRACE_CONCAT_INNER(a, b)

/// Scoped span: begins on entry, ends when the enclosing scope exits.
/// Optional trailing argument is exported as the span's "v" arg.
#define AGILE_TRACE_SPAN(component, name, id, ...)                       \
  ::agile::trace::ScopedSpan AGILE_TRACE_CONCAT(agile_trace_span_,       \
                                                __LINE__)(              \
      (component), (name), (id), ##__VA_ARGS__)

/// Explicit begin/end pair for phases that open and close in different
/// scopes (e.g. a migration phase spanning many simulation quanta).
#define AGILE_TRACE_SPAN_BEGIN(component, name, id, ...)                     \
  do {                                                                       \
    if (::agile::trace::TraceRecorder* agile_trace_r =                       \
            ::agile::trace::recorder())                                      \
      agile_trace_r->begin_span((component), (name), (id), ##__VA_ARGS__);   \
  } while (0)

#define AGILE_TRACE_SPAN_END(component, name, id)                      \
  do {                                                                 \
    if (::agile::trace::TraceRecorder* agile_trace_r =                 \
            ::agile::trace::recorder())                                \
      agile_trace_r->end_span((component), (name), (id));              \
  } while (0)

/// Point event (Chrome "instant"); `value` lands in the event's args.
#define AGILE_TRACE_INSTANT(component, name, id, ...)                    \
  do {                                                                   \
    if (::agile::trace::TraceRecorder* agile_trace_r =                   \
            ::agile::trace::recorder())                                  \
      agile_trace_r->instant((component), (name), (id), ##__VA_ARGS__);  \
  } while (0)

/// Counter sample: the current value of a monotonic or gauge-style series.
#define AGILE_TRACE_COUNTER(component, name, id, value)                    \
  do {                                                                     \
    if (::agile::trace::TraceRecorder* agile_trace_r =                     \
            ::agile::trace::recorder())                                    \
      agile_trace_r->counter((component), (name), (id),                    \
                             static_cast<double>(value));                  \
  } while (0)
