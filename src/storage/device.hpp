// Block device models.
//
// `SsdModel` is a two-channel (read/write) queueing server driven by the
// simulation quantum. Each submitted I/O contributes its service cost (in
// device-seconds) to the current quantum's work; `advance(dt)` turns that
// work into (a) a carried backlog for whatever exceeded the quantum's
// service capacity and (b) a utilization signal. A request's quoted latency
// is base + carried backlog + its own service cost amplified by last
// quantum's utilization (M/G/1-flavored). Same-quantum requests do not queue
// behind each other — all submitters here are closed loops that pace
// themselves by the returned latency. When swap-in demand from a migrating
// VM competes with application page faults the channels saturate, the carry
// grows, and latencies balloon — exactly the thrashing mechanism the
// paper's busy-VM experiments exercise. Writes interfere with reads at a
// configurable fraction (write-back caching absorbs most of it).
//
// `DeviceStats` doubles as the simulator's `iostat`: the WSS estimator reads
// the per-window byte counters of a per-VM swap device to compute the swap
// rate S.
#pragma once

#include <cstdint>

#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::storage {

struct DeviceStats {
  std::uint64_t reads = 0;          ///< Read ops, cumulative.
  std::uint64_t writes = 0;         ///< Write ops, cumulative.
  Bytes bytes_read = 0;             ///< Cumulative.
  Bytes bytes_written = 0;          ///< Cumulative.
  std::uint64_t window_reads = 0;   ///< Since last `reset_window`.
  std::uint64_t window_writes = 0;
  Bytes window_bytes_read = 0;
  Bytes window_bytes_written = 0;

  void reset_window() {
    window_reads = window_writes = 0;
    window_bytes_read = window_bytes_written = 0;
  }
};

/// Abstract device: submitting an I/O returns the latency the caller should
/// charge. Models are advanced once per simulation quantum.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Submits a read of `bytes`; returns completion latency from now.
  virtual SimTime submit_read(Bytes bytes) = 0;

  /// Submits a write of `bytes`; returns completion latency from now.
  virtual SimTime submit_write(Bytes bytes) = 0;

  /// Drains queued work for `dt` of simulated time.
  virtual void advance(SimTime dt) = 0;

  virtual const DeviceStats& stats() const = 0;
  virtual DeviceStats& mutable_stats() = 0;
};

struct SsdConfig {
  // Defaults model a 2013-class consumer SATA SSD (the testbed's Crucial
  // 128 GB) in the kernel swap path: spec-sheet IOPS never survive queue
  // depth 1-4 random access mixed with write-back traffic.
  double read_bytes_per_sec = 200e6;   ///< Sustained sequential read.
  double write_bytes_per_sec = 120e6;  ///< Sustained write.
  double iops = 10000;                 ///< Effective 4 KiB random ops/sec.
  SimTime base_read_latency = 120;     ///< µs, uncontended.
  SimTime base_write_latency = 60;     ///< µs, uncontended.
  /// Reads and writes are served by separate channels (NCQ + write-back
  /// caching); a read queues behind pending reads plus this fraction of the
  /// pending write work.
  double write_read_interference = 0.35;
};

class SsdModel final : public BlockDevice {
 public:
  explicit SsdModel(SsdConfig config = {});

  SimTime submit_read(Bytes bytes) override;
  SimTime submit_write(Bytes bytes) override;
  void advance(SimTime dt) override;

  const DeviceStats& stats() const override { return stats_; }
  DeviceStats& mutable_stats() override { return stats_; }

  /// Outstanding work, in device-seconds (carried overload + this quantum).
  double backlog_seconds() const {
    return read_carry_ + write_carry_ + read_work_ + write_work_;
  }
  double read_backlog_seconds() const { return read_carry_ + read_work_; }
  double write_backlog_seconds() const { return write_carry_ + write_work_; }

  /// Utilization (0..1) of each channel over the last advanced quantum.
  double read_utilization() const { return u_read_; }
  double write_utilization() const { return u_write_; }

  const SsdConfig& config() const { return config_; }

 private:
  double op_cost_seconds(Bytes bytes, double dir_bw) const;
  static double queue_factor(double utilization);

  SsdConfig config_;
  double read_work_ = 0.0;   ///< Submitted this quantum (device-seconds).
  double write_work_ = 0.0;
  double read_carry_ = 0.0;  ///< Overload carried across quanta.
  double write_carry_ = 0.0;
  double u_read_ = 0.0;      ///< Last quantum's utilization.
  double u_write_ = 0.0;
  DeviceStats stats_;
};

/// Infinitely fast device (used for "no swap" configurations and tests).
class NullDevice final : public BlockDevice {
 public:
  SimTime submit_read(Bytes bytes) override {
    ++stats_.reads;
    ++stats_.window_reads;
    stats_.bytes_read += bytes;
    stats_.window_bytes_read += bytes;
    return 0;
  }
  SimTime submit_write(Bytes bytes) override {
    ++stats_.writes;
    ++stats_.window_writes;
    stats_.bytes_written += bytes;
    stats_.window_bytes_written += bytes;
    return 0;
  }
  void advance(SimTime) override {}
  const DeviceStats& stats() const override { return stats_; }
  DeviceStats& mutable_stats() override { return stats_; }

 private:
  DeviceStats stats_;
};

}  // namespace agile::storage
