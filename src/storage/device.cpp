#include "storage/device.hpp"

#include <algorithm>

namespace agile::storage {

SsdModel::SsdModel(SsdConfig config) : config_(config) {
  AGILE_CHECK(config_.read_bytes_per_sec > 0);
  AGILE_CHECK(config_.write_bytes_per_sec > 0);
  AGILE_CHECK(config_.iops > 0);
}

double SsdModel::op_cost_seconds(Bytes bytes, double dir_bw) const {
  // An op costs whichever is scarcer for it: bandwidth or IOPS. Large
  // (clustered) requests are bandwidth-bound, 4 KiB randoms IOPS-bound.
  double bw_cost = static_cast<double>(bytes) / dir_bw;
  double iop_cost = 1.0 / config_.iops;
  return std::max(bw_cost, iop_cost);
}

double SsdModel::queue_factor(double utilization) {
  return 1.0 / (1.0 - std::min(utilization, 0.98));
}

SimTime SsdModel::submit_read(Bytes bytes) {
  double cost = op_cost_seconds(bytes, config_.read_bytes_per_sec);
  read_work_ += cost;
  // Latency composition: any overload carried from previous quanta (the
  // device is genuinely behind), plus this request's service time stretched
  // by last quantum's load (M/G/1-flavored congestion). Same-quantum
  // submissions do NOT queue behind each other: submitters in this simulator
  // are closed loops that already pace themselves by the returned latency.
  double u = u_read_ + config_.write_read_interference * u_write_;
  double carried = read_carry_ + config_.write_read_interference * write_carry_;
  SimTime latency = config_.base_read_latency +
                    static_cast<SimTime>((carried + cost * queue_factor(u)) * 1e6);
  ++stats_.reads;
  ++stats_.window_reads;
  stats_.bytes_read += bytes;
  stats_.window_bytes_read += bytes;
  return latency;
}

SimTime SsdModel::submit_write(Bytes bytes) {
  double cost = op_cost_seconds(bytes, config_.write_bytes_per_sec);
  write_work_ += cost;
  SimTime latency =
      config_.base_write_latency +
      static_cast<SimTime>((write_carry_ + cost * queue_factor(u_write_)) * 1e6);
  ++stats_.writes;
  ++stats_.window_writes;
  stats_.bytes_written += bytes;
  stats_.window_bytes_written += bytes;
  return latency;
}

void SsdModel::advance(SimTime dt) {
  AGILE_CHECK(dt >= 0);
  if (dt == 0) return;
  double d = to_seconds(dt);
  // Overload beyond one quantum's service capacity carries over; the rest
  // becomes the utilization signal that congests the next quantum.
  read_carry_ = std::max(0.0, read_carry_ + read_work_ - d);
  write_carry_ = std::max(0.0, write_carry_ + write_work_ - d);
  u_read_ = std::min(1.0, read_work_ / d);
  u_write_ = std::min(1.0, write_work_ / d);
  read_work_ = 0;
  write_work_ = 0;
}

}  // namespace agile::storage
