#include "swap/swap_device.hpp"

namespace agile::swap {

SwapSlot SlotAllocator::allocate() {
  if (!free_list_.empty()) {
    SwapSlot s = free_list_.back();
    free_list_.pop_back();
    ++used_;
    return s;
  }
  AGILE_CHECK_MSG(next_fresh_ < capacity_, "swap device full");
  ++used_;
  return next_fresh_++;
}

void SlotAllocator::release(SwapSlot slot) {
  AGILE_CHECK(slot != kNoSlot && slot < next_fresh_);
  AGILE_CHECK(used_ > 0);
  --used_;
  free_list_.push_back(slot);
}

LocalSwapDevice::LocalSwapDevice(std::string name,
                                 std::shared_ptr<storage::SsdModel> ssd,
                                 Bytes capacity)
    : name_(std::move(name)), ssd_(std::move(ssd)), slots_(pages_for(capacity)) {
  AGILE_CHECK(ssd_ != nullptr);
}

SwapSlot LocalSwapDevice::allocate_slot() { return slots_.allocate(); }

void LocalSwapDevice::free_slot(SwapSlot slot) { slots_.release(slot); }

SimTime LocalSwapDevice::read_page(SwapSlot slot) {
  AGILE_CHECK(slot != kNoSlot);
  ++stats_.reads;
  ++stats_.window_reads;
  stats_.bytes_read += kPageSize;
  stats_.window_bytes_read += kPageSize;
  return ssd_->submit_read(kPageSize);
}

SimTime LocalSwapDevice::read_page_sequential(SwapSlot slot) {
  AGILE_CHECK(slot != kNoSlot);
  ++stats_.reads;
  ++stats_.window_reads;
  stats_.bytes_read += kPageSize;
  stats_.window_bytes_read += kPageSize;
  if (readahead_counter_++ % kReadaheadPages == 0) {
    // One clustered I/O prefetches the window.
    return ssd_->submit_read(kReadaheadPages * kPageSize);
  }
  return 2;  // µs: copy from the prefetched cluster
}

void LocalSwapDevice::write_page(SwapSlot slot) {
  AGILE_CHECK(slot != kNoSlot);
  ++stats_.writes;
  ++stats_.window_writes;
  stats_.bytes_written += kPageSize;
  stats_.window_bytes_written += kPageSize;
  ssd_->submit_write(kPageSize);  // write-behind: latency absorbed by queue
}

}  // namespace agile::swap
