// Swap device abstraction.
//
// A swap device stores whole 4 KiB pages addressed by *slot* (the paper's
// "offset on the swap device"). Two families exist:
//
//  * `LocalSwapDevice` — a partition on the host SSD, shared by every VM on
//    the host (the pre-copy/post-copy baseline configuration). Contention is
//    real: all local swap devices created from the same `SsdModel` share its
//    queue.
//  * `VmdSwapDevice` (src/vmd) — a per-VM namespace in the distributed
//    Virtualized Memory Device; portable across hosts, which is what makes
//    Agile migration's "leave the cold pages where they are" work.
//
// Reads are synchronous from the faulting VM's point of view (the returned
// latency is charged to the access). Writes are write-behind: the device
// queues them and the caller is not delayed, but the queued work does delay
// subsequent reads — that asymmetry is what makes reclaim cheap until the
// device saturates.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/device.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::swap {

using SwapSlot = std::uint32_t;
inline constexpr SwapSlot kNoSlot = static_cast<SwapSlot>(-1);

class SwapDevice {
 public:
  virtual ~SwapDevice() = default;

  /// Allocates a free slot; aborts if the device is full (a production
  /// system would OOM-kill; the simulator treats it as a config error).
  virtual SwapSlot allocate_slot() = 0;

  /// Releases a slot for reuse.
  virtual void free_slot(SwapSlot slot) = 0;

  /// Synchronous page read; returns latency to charge the faulting access.
  virtual SimTime read_page(SwapSlot slot) = 0;

  /// Read as part of a sequential sweep (a migration scan). Devices with
  /// readahead amortize seek/IOPS cost across a cluster of pages; the default
  /// is an ordinary random read.
  virtual SimTime read_page_sequential(SwapSlot slot) { return read_page(slot); }

  /// Write-behind page write; returns immediately (latency 0 for caller).
  virtual void write_page(SwapSlot slot) = 0;

  /// Slots currently allocated.
  virtual std::uint64_t used_slots() const = 0;

  /// Capacity in slots.
  virtual std::uint64_t capacity_slots() const = 0;

  /// iostat view of this swap device (per-VM for per-VM devices).
  virtual const storage::DeviceStats& stats() const = 0;
  virtual storage::DeviceStats& mutable_stats() = 0;

  virtual const std::string& name() const = 0;
};

/// Slot allocator shared by the concrete devices.
class SlotAllocator {
 public:
  explicit SlotAllocator(std::uint64_t capacity) : capacity_(capacity) {}

  SwapSlot allocate();
  void release(SwapSlot slot);
  std::uint64_t used() const { return used_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  SwapSlot next_fresh_ = 0;
  std::vector<SwapSlot> free_list_;
};

/// Swap partition on a (possibly shared) host SSD.
class LocalSwapDevice final : public SwapDevice {
 public:
  LocalSwapDevice(std::string name, std::shared_ptr<storage::SsdModel> ssd,
                  Bytes capacity);

  SwapSlot allocate_slot() override;
  void free_slot(SwapSlot slot) override;
  SimTime read_page(SwapSlot slot) override;
  /// Kernel-style swap readahead: every `kReadaheadPages`-th sequential read
  /// issues one clustered I/O covering the whole window; the rest hit the
  /// just-prefetched pages. Sequential sweeps therefore run near device
  /// bandwidth instead of being IOPS-bound, while still queueing behind (and
  /// adding to) whatever else the SSD is serving.
  SimTime read_page_sequential(SwapSlot slot) override;
  void write_page(SwapSlot slot) override;

  static constexpr std::uint32_t kReadaheadPages = 16;
  std::uint64_t used_slots() const override { return slots_.used(); }
  std::uint64_t capacity_slots() const override { return slots_.capacity(); }
  const storage::DeviceStats& stats() const override { return stats_; }
  storage::DeviceStats& mutable_stats() override { return stats_; }
  const std::string& name() const override { return name_; }

  const std::shared_ptr<storage::SsdModel>& ssd() const { return ssd_; }

 private:
  std::string name_;
  std::shared_ptr<storage::SsdModel> ssd_;
  SlotAllocator slots_;
  storage::DeviceStats stats_;
  std::uint64_t readahead_counter_ = 0;
};

}  // namespace agile::swap
