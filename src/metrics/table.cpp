#include "metrics/table.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace agile::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  AGILE_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(width[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

Status Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return unavailable("cannot open " + path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return Status::ok();
}

Status write_series_csv(const std::string& path,
                        const std::vector<const TimeSeries*>& series) {
  if (series.empty()) return invalid_argument("no series");
  std::ofstream f(path);
  if (!f) return unavailable("cannot open " + path);
  f << "t";
  for (const TimeSeries* s : series) f << ',' << s->name();
  f << '\n';
  for (const Sample& s : series[0]->samples()) {
    f << s.t;
    for (const TimeSeries* ts : series) f << ',' << ts->value_at(s.t);
    f << '\n';
  }
  return Status::ok();
}

Status ensure_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return unavailable("mkdir " + dir + ": " + ec.message());
  return Status::ok();
}

}  // namespace agile::metrics
