// Time-series recording and the aggregations the paper's figures need.
//
// Samples are (simulated-seconds, value) pairs. Figures 4–6, 9 and 10 are
// timelines of these; Table I is `mean_between` over the migration window;
// the "time to restore 90% of peak" rows come from `time_to_reach`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace agile::metrics {

struct Sample {
  double t = 0;  ///< simulated seconds
  double value = 0;
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add(double t, double value) {
    AGILE_CHECK_MSG(samples_.empty() || t >= samples_.back().t,
                    "samples must be appended in time order");
    samples_.push_back({t, value});
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Mean of samples with t in [t0, t1]. 0 if none.
  double mean_between(double t0, double t1) const;

  /// Max value over the whole series (0 if empty).
  double max_value() const;

  /// Max value among samples with t in [t0, t1] (0 if none).
  double max_between(double t0, double t1) const;

  /// First time >= `from` at which the value reaches `threshold` and stays
  /// at or above it for `hold` seconds. Returns -1 if never.
  double time_to_reach(double threshold, double from, double hold = 0.0) const;

  /// Value of the last sample at or before `t` (0 if none).
  double value_at(double t) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace agile::metrics
