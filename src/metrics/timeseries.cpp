#include "metrics/timeseries.hpp"

#include <algorithm>

namespace agile::metrics {

double TimeSeries::mean_between(double t0, double t1) const {
  double sum = 0;
  std::size_t n = 0;
  for (const Sample& s : samples_) {
    if (s.t < t0) continue;
    if (s.t > t1) break;
    sum += s.value;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::max_value() const {
  double best = 0;
  for (const Sample& s : samples_) best = std::max(best, s.value);
  return best;
}

double TimeSeries::max_between(double t0, double t1) const {
  double best = 0;
  for (const Sample& s : samples_) {
    if (s.t < t0) continue;
    if (s.t > t1) break;
    best = std::max(best, s.value);
  }
  return best;
}

double TimeSeries::time_to_reach(double threshold, double from, double hold) const {
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    if (s.t < from || s.value < threshold) continue;
    // Candidate: check it holds.
    bool held = true;
    for (std::size_t j = i; j < samples_.size() && samples_[j].t <= s.t + hold; ++j) {
      if (samples_[j].value < threshold) {
        held = false;
        break;
      }
    }
    if (held) return s.t;
  }
  return -1.0;
}

double TimeSeries::value_at(double t) const {
  double v = 0;
  for (const Sample& s : samples_) {
    if (s.t > t) break;
    v = s.value;
  }
  return v;
}

}  // namespace agile::metrics
