// Console tables and CSV emission for the benchmark harness.
//
// Every bench prints a paper-style table to stdout and mirrors the raw
// series/rows into CSV files under an output directory so the figures can be
// re-plotted.
#pragma once

#include <string>
#include <vector>

#include "metrics/timeseries.hpp"

namespace agile::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 1);

  /// Renders with aligned columns.
  std::string to_string() const;

  /// Writes "h1,h2,...\nr1c1,r1c2,..." CSV.
  Status write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes one or more time series as CSV: t,<name1>,<name2>,... Series are
/// sampled at each distinct time of the first series using value_at.
Status write_series_csv(const std::string& path,
                        const std::vector<const TimeSeries*>& series);

/// Creates `dir` (and parents) if missing.
Status ensure_dir(const std::string& dir);

}  // namespace agile::metrics
