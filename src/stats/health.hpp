// Per-migration health model.
//
// Pure integer arithmetic over periodic observations of one migration:
// windowed transfer/dirty/push rates, a model-derived ETA (time until the
// remaining page debt drains at the observed push rate) and a projected
// downtime (the stop-and-copy cost of what is still owed at switchover).
// Deterministic by construction — every input is simulated state, every
// output an integer function of the observation sequence — so health gauges
// can be exported in golden stats snapshots.
#pragma once

#include <cstdint>

namespace agile::stats {

/// One scrape-interval sample of a migration, taken from the engine's own
/// accounting (see MigrationManager::sample_health).
struct MigrationObservation {
  std::int64_t now = 0;                 ///< Simulated µs.
  std::uint64_t bytes_transferred = 0;  ///< Cumulative wire bytes.
  std::uint64_t pages_remote = 0;       ///< Dest pages still remote.
  std::uint64_t pages_owed = 0;         ///< Engine's page debt (dirty/queue).
  std::uint64_t backlog_bytes = 0;      ///< Unsent bytes queued on the wire.
  std::uint64_t wire_page_bytes = 0;    ///< Wire size of one full page.
  std::uint64_t cpu_state_bytes = 0;    ///< Switchover CPU-state blob.
  bool switched_over = false;
  std::int64_t downtime_usec = 0;       ///< Actual, once known.
};

/// Windowed rates and projections derived from successive observations.
struct MigrationHealth {
  std::int64_t transfer_rate_bps = 0;   ///< Wire bytes/s over the last window.
  std::int64_t page_drain_rate = 0;     ///< Pages of debt retired per second.
  std::int64_t eta_usec = -1;           ///< Projected time to drain; -1 unknown.
  std::int64_t projected_downtime_usec = -1;  ///< Model (or actual once known).
};

class MigrationHealthModel {
 public:
  /// Feeds the next observation; returns the updated health. The first call
  /// establishes the window origin (rates stay 0, ETA unknown).
  MigrationHealth update(const MigrationObservation& obs);

  const MigrationHealth& health() const { return health_; }

 private:
  bool primed_ = false;
  MigrationObservation prev_;
  MigrationHealth health_;
};

}  // namespace agile::stats
