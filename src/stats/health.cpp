#include "stats/health.hpp"

namespace agile::stats {

namespace {

/// delta/dt scaled to per-second, in exact integer arithmetic.
std::int64_t per_second(std::uint64_t delta, std::int64_t dt_usec) {
  if (dt_usec <= 0) return 0;
  return static_cast<std::int64_t>(delta * 1'000'000 /
                                   static_cast<std::uint64_t>(dt_usec));
}

}  // namespace

MigrationHealth MigrationHealthModel::update(const MigrationObservation& obs) {
  if (!primed_) {
    primed_ = true;
    prev_ = obs;
    health_ = MigrationHealth{};
    if (obs.switched_over) health_.projected_downtime_usec = obs.downtime_usec;
    return health_;
  }
  const std::int64_t dt = obs.now - prev_.now;
  const std::uint64_t wire_delta =
      obs.bytes_transferred >= prev_.bytes_transferred
          ? obs.bytes_transferred - prev_.bytes_transferred
          : 0;
  health_.transfer_rate_bps = per_second(wire_delta, dt);
  // Page debt drains when owed pages go down; a dirtying burst can push it
  // back up, in which case the drain rate for the window is 0 (the ETA goes
  // unknown rather than negative).
  const std::uint64_t owed_drop =
      prev_.pages_owed > obs.pages_owed ? prev_.pages_owed - obs.pages_owed : 0;
  health_.page_drain_rate = per_second(owed_drop, dt) ;
  if (obs.switched_over) {
    health_.projected_downtime_usec = obs.downtime_usec;
  } else if (health_.transfer_rate_bps > 0) {
    // Stop-and-copy model: what is still owed must cross the wire while the
    // VM is suspended, plus the CPU-state blob.
    const std::uint64_t stop_copy_bytes =
        obs.pages_owed * obs.wire_page_bytes + obs.cpu_state_bytes;
    health_.projected_downtime_usec = static_cast<std::int64_t>(
        stop_copy_bytes * 1'000'000 /
        static_cast<std::uint64_t>(health_.transfer_rate_bps));
  } else {
    health_.projected_downtime_usec = -1;
  }
  // ETA: remaining wire work (owed pages + queued backlog) at the observed
  // transfer rate. Remote pages that are merely *cold* (postcopy serves them
  // on demand) are not counted as wire debt — pages_owed is the engine's own
  // notion of what it still must push.
  if (health_.transfer_rate_bps > 0) {
    const std::uint64_t remaining_bytes =
        obs.pages_owed * obs.wire_page_bytes + obs.backlog_bytes;
    health_.eta_usec = static_cast<std::int64_t>(
        remaining_bytes * 1'000'000 /
        static_cast<std::uint64_t>(health_.transfer_rate_bps));
  } else {
    health_.eta_usec = -1;
  }
  prev_ = obs;
  return health_;
}

}  // namespace agile::stats
