#include "stats/stats.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "util/check.hpp"
#include "util/log.hpp"

namespace agile::stats {

namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

/// Saturating add on a relaxed cell. The cell is only ever *increased*
/// toward the ceiling, so concurrent saturating adds from lanes commute:
/// whichever interleaving runs, the post-barrier value is
/// min(ceiling, sum of all adds).
void saturating_add(util::RelaxedCell<std::uint64_t>& cell, std::uint64_t d) {
  std::uint64_t cur = cell.load();
  if (d >= kSaturated - cur) {
    cell.store(kSaturated);
  } else {
    cell.add(d);
  }
}

constexpr std::int64_t kSaturatedMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kSaturatedMin = std::numeric_limits<std::int64_t>::min();

/// Saturating signed add on a cell holding a two's-complement running total
/// (the histogram sum). Latches at either int64 ceiling; while unsaturated,
/// adds are exact (the wrapping unsigned add of the bit pattern *is* signed
/// addition), so merges of non-negative observation streams stay
/// associative and commutative like the unsigned cells.
void saturating_add_signed(util::RelaxedCell<std::uint64_t>& cell,
                           std::int64_t d) {
  std::int64_t cur = static_cast<std::int64_t>(cell.load());
  if (cur == kSaturatedMax || cur == kSaturatedMin) return;
  if (d > 0 && cur > kSaturatedMax - d) {
    cell.store(static_cast<std::uint64_t>(kSaturatedMax));
  } else if (d < 0 && cur < kSaturatedMin - d) {
    cell.store(static_cast<std::uint64_t>(kSaturatedMin));
  } else {
    cell.add(static_cast<std::uint64_t>(d));
  }
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void append_i64(std::string* out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void append_u64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

/// JSON string escaping for names/labels (metric names are ASCII by
/// convention; this keeps arbitrary label values from breaking the export).
void append_json_string(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

Status write_text(const std::string& path, const std::string& text,
                  const char* what) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    AGILE_LOG_WARN("stats: cannot open '%s' for writing (%s export dropped)",
                   path.c_str(), what);
    return unavailable(std::string("stats: cannot open '") + path +
                       "' for writing");
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::ok();
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  AGILE_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bounds must be ascending");
  AGILE_CHECK_MSG(std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
              "histogram bounds must be distinct");
}

void Histogram::observe_n(std::int64_t v, std::uint64_t n) {
  if (n == 0) return;
  // First bucket whose inclusive upper edge admits v; past-the-end is the
  // overflow bucket.
  std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  saturating_add(buckets_[idx], n);
  saturating_add(count_, n);
  // The sum is a signed running total saturating at the int64 ceilings.
  // Clamp the n*|v| multiply to the ceiling first so it cannot overflow.
  std::uint64_t mag = static_cast<std::uint64_t>(v < 0 ? -v : v);
  std::uint64_t total = (mag != 0 && n > kSaturated / mag) ? kSaturated : mag * n;
  if (total > static_cast<std::uint64_t>(kSaturatedMax)) {
    total = static_cast<std::uint64_t>(kSaturatedMax);
  }
  saturating_add_signed(sum_, v < 0 ? -static_cast<std::int64_t>(total)
                                    : static_cast<std::int64_t>(total));
}

void Histogram::merge(const Histogram& other) {
  AGILE_CHECK_MSG(other.bounds_ == bounds_,
              "histogram merge requires identical bounds");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    saturating_add(buckets_[i], other.buckets_[i].load());
  }
  saturating_add(count_, other.count_.load());
  saturating_add_signed(sum_, static_cast<std::int64_t>(other.sum_.load()));
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  AGILE_CHECK_MSG(i <= bounds_.size(), "histogram bucket index out of range");
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i; ++b) {
    std::uint64_t v = buckets_[b].load();
    total = (v >= kSaturated - total) ? kSaturated : total + v;
  }
  return total;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

std::string Registry::series_key(const std::string& name,
                                 const Labels& labels) {
  return name + render_labels(labels);
}

Registry::Metric* Registry::find_or_null(const std::string& key) {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

Counter* Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  const std::string key = series_key(name, labels);
  if (Metric* m = find_or_null(key)) {
    AGILE_CHECK_MSG(m->kind == MetricKind::kCounter,
                "stats: series re-registered with a different kind");
    return m->counter.get();
  }
  Metric m;
  m.kind = MetricKind::kCounter;
  m.name = name;
  m.labels = labels;
  m.help = help;
  m.counter = std::make_unique<Counter>();
  Counter* out = m.counter.get();
  index_[key] = metrics_.size();
  metrics_.push_back(std::move(m));
  return out;
}

Gauge* Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  const std::string key = series_key(name, labels);
  if (Metric* m = find_or_null(key)) {
    AGILE_CHECK_MSG(m->kind == MetricKind::kGauge,
                "stats: series re-registered with a different kind");
    return m->gauge.get();
  }
  Metric m;
  m.kind = MetricKind::kGauge;
  m.name = name;
  m.labels = labels;
  m.help = help;
  m.gauge = std::make_unique<Gauge>();
  Gauge* out = m.gauge.get();
  index_[key] = metrics_.size();
  metrics_.push_back(std::move(m));
  return out;
}

Histogram* Registry::histogram(const std::string& name,
                               const std::vector<std::int64_t>& bounds,
                               const Labels& labels, const std::string& help) {
  const std::string key = series_key(name, labels);
  if (Metric* m = find_or_null(key)) {
    AGILE_CHECK_MSG(m->kind == MetricKind::kHistogram,
                "stats: series re-registered with a different kind");
    AGILE_CHECK_MSG(m->histogram->bounds() == bounds,
                "stats: histogram re-registered with different bounds");
    return m->histogram.get();
  }
  Metric m;
  m.kind = MetricKind::kHistogram;
  m.name = name;
  m.labels = labels;
  m.help = help;
  m.histogram = std::make_unique<Histogram>(bounds);
  Histogram* out = m.histogram.get();
  index_[key] = metrics_.size();
  metrics_.push_back(std::move(m));
  return out;
}

void Registry::record_snapshot(StatsTime now) {
  Snapshot snap;
  snap.t = now;
  snap.values.reserve(metrics_.size());
  for (const Metric& m : metrics_) {
    std::vector<std::int64_t> row;
    switch (m.kind) {
      case MetricKind::kCounter:
        row.push_back(static_cast<std::int64_t>(m.counter->value()));
        break;
      case MetricKind::kGauge:
        row.push_back(m.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m.histogram;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          row.push_back(static_cast<std::int64_t>(h.cumulative(b)));
        }
        row.push_back(static_cast<std::int64_t>(h.count()));
        row.push_back(h.sum());
        break;
      }
    }
    snap.values.push_back(std::move(row));
  }
  snapshots_.push_back(std::move(snap));
}

std::string Registry::to_prometheus(StatsTime now) const {
  std::string out;
  out.reserve(metrics_.size() * 96);
  const std::int64_t ts_ms = now / 1000;
  // HELP/TYPE once per family, at its first series (registration order).
  std::map<std::string, bool> emitted_header;
  for (const Metric& m : metrics_) {
    bool& seen = emitted_header[m.name];
    if (!seen) {
      seen = true;
      out += "# HELP " + m.name + " " +
             (m.help.empty() ? std::string("(no help)") : m.help) + "\n";
      out += "# TYPE " + m.name + " " + kind_name(m.kind) + "\n";
    }
    const std::string labels = render_labels(m.labels);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += m.name + labels + " ";
        append_u64(&out, m.counter->value());
        out += " ";
        append_i64(&out, ts_ms);
        out += "\n";
        break;
      case MetricKind::kGauge:
        out += m.name + labels + " ";
        append_i64(&out, m.gauge->value());
        out += " ";
        append_i64(&out, ts_ms);
        out += "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m.histogram;
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          Labels le = m.labels;
          std::string edge;
          if (b < h.bounds().size()) {
            append_i64(&edge, h.bounds()[b]);
          } else {
            edge = "+Inf";
          }
          le.emplace_back("le", edge);
          out += m.name + "_bucket" + render_labels(le) + " ";
          append_u64(&out, h.cumulative(b));
          out += " ";
          append_i64(&out, ts_ms);
          out += "\n";
        }
        out += m.name + "_sum" + labels + " ";
        append_i64(&out, h.sum());
        out += " ";
        append_i64(&out, ts_ms);
        out += "\n";
        out += m.name + "_count" + labels + " ";
        append_u64(&out, h.count());
        out += " ";
        append_i64(&out, ts_ms);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::snapshots_json() const {
  std::string out = "{\n  \"series\": [\n";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Metric& m = metrics_[i];
    out += "    {\"name\": ";
    append_json_string(&out, m.name);
    out += ", \"kind\": \"";
    out += kind_name(m.kind);
    out += "\", \"labels\": {";
    for (std::size_t l = 0; l < m.labels.size(); ++l) {
      if (l > 0) out += ", ";
      append_json_string(&out, m.labels[l].first);
      out += ": ";
      append_json_string(&out, m.labels[l].second);
    }
    out += "}";
    if (m.kind == MetricKind::kHistogram) {
      out += ", \"bounds\": [";
      const auto& bounds = m.histogram->bounds();
      for (std::size_t b = 0; b < bounds.size(); ++b) {
        if (b > 0) out += ", ";
        append_i64(&out, bounds[b]);
      }
      out += "]";
    }
    out += "}";
    if (i + 1 < metrics_.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"snapshots\": [\n";
  for (std::size_t s = 0; s < snapshots_.size(); ++s) {
    const Snapshot& snap = snapshots_[s];
    out += "    {\"t_usec\": ";
    append_i64(&out, snap.t);
    out += ", \"values\": [";
    for (std::size_t v = 0; v < snap.values.size(); ++v) {
      if (v > 0) out += ", ";
      const std::vector<std::int64_t>& row = snap.values[v];
      if (row.size() == 1) {
        append_i64(&out, row[0]);
      } else {
        out += "[";
        for (std::size_t k = 0; k < row.size(); ++k) {
          if (k > 0) out += ", ";
          append_i64(&out, row[k]);
        }
        out += "]";
      }
    }
    out += "]}";
    if (s + 1 < snapshots_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Status Registry::write_prometheus(const std::string& path,
                                  StatsTime now) const {
  return write_text(path, to_prometheus(now), "prometheus");
}

Status Registry::write_snapshots_json(const std::string& path) const {
  return write_text(path, snapshots_json(), "json");
}

}  // namespace agile::stats
