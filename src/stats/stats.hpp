// Deterministic fleet metrics registry.
//
// A `Registry` holds counters, gauges and fixed-bucket histograms and takes
// sim-time-stamped snapshots of all of them. The contract mirrors the trace
// subsystem's: exports are a pure function of the scenario and seed —
// byte-identical across reruns, lane counts, sweep-job counts and audit mode.
// The rules that make that hold:
//
//  * all values are integers (no doubles in metric state, so printf export
//    is exact and accumulation order cannot perturb low bits),
//  * every cell is a `util::RelaxedCell` — lane events may bump counters
//    concurrently, and commutative integer sums are interleaving-independent
//    once the lane barrier joins (see src/util/relaxed_cell.hpp),
//  * metric *registration* is coordinator-thread-only and keyed by
//    (name, labels); export order is registration order, never hash order,
//  * timestamps come from the simulated clock the caller passes in — this
//    module never reads a wall clock, the environment, or ambient RNG
//    (enforced by tools/lint_determinism.py's strict profile).
//
// Snapshots (`record_snapshot`) append one row of every registered metric's
// current value; metrics registered after a snapshot simply have no value in
// the earlier rows. Export formats: Prometheus exposition text (HELP/TYPE,
// `_bucket{le=}`/`_sum`/`_count` for histograms) and a time-indexed JSON
// document read by tools/stats_report.py.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/relaxed_cell.hpp"
#include "util/status.hpp"

namespace agile::stats {

/// Simulated microseconds; matches SimTime without pulling in sim headers.
using StatsTime = std::int64_t;

/// Monotonic counter. `add` is safe from lane events (commutative relaxed
/// sum); `set` is coordinator-thread-only (single writer per window).
class Counter {
 public:
  void add(std::uint64_t d) { v_.add(d); }
  void inc() { v_.add(1); }
  void set(std::uint64_t v) { v_.store(v); }
  std::uint64_t value() const { return v_.load(); }

 private:
  // In tools/lane_lint.py's shared-counter registry (LL004): lane events bump
  // this cell concurrently, so it must stay a commutative RelaxedCell.
  util::RelaxedCell<std::uint64_t> v_;
};

/// Point-in-time signed value. Lane collectors may `set` disjoint gauges
/// concurrently (single writer per gauge per window); `add`/`sub` are
/// commutative and safe from any lane.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v); }
  void add(std::int64_t d) { v_.add(d); }
  void sub(std::int64_t d) { v_.sub(d); }
  std::int64_t value() const { return v_.load(); }

 private:
  // lane_lint LL004 registry member: see the Counter cell's note above.
  util::RelaxedCell<std::int64_t> v_;
};

/// Fixed-bucket histogram over signed integer observations. Bucket bounds
/// are inclusive upper edges in ascending order; one implicit overflow
/// bucket (`+Inf`) catches the rest. Per-bucket counts and the total count
/// are saturating `uint64` cells; the sum is a signed running total
/// saturating at the int64 ceilings. A runaway series clamps instead of
/// wrapping, and merges stay associative: saturation is ceiling-capped
/// addition, order-independent at the barrier (for the mixed-sign case the
/// guarantee holds while the total stays off the ceilings — every quantity
/// this repo records is non-negative).
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  /// Records one observation (lane-safe, commutative).
  void observe(std::int64_t v) { observe_n(v, 1); }
  /// Records `n` identical observations in one update.
  void observe_n(std::int64_t v, std::uint64_t n);

  /// Folds `other` into this histogram (same bounds required). Saturating
  /// per-cell addition — associative and commutative, so merging per-lane
  /// shards in any order yields identical totals.
  void merge(const Histogram& other);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; the last entry
  /// (index bounds().size()) is the total including overflow.
  std::uint64_t cumulative(std::size_t i) const;
  std::uint64_t count() const { return count_.load(); }
  /// Signed running total of observations (two's complement in the cell).
  std::int64_t sum() const { return static_cast<std::int64_t>(sum_.load()); }

 private:
  std::vector<std::int64_t> bounds_;
  // The three value cells are lane_lint LL004 registry members (commutative
  // cross-lane counters); bounds_ is immutable after construction.
  std::vector<util::RelaxedCell<std::uint64_t>> buckets_;  ///< +1 overflow.
  util::RelaxedCell<std::uint64_t> count_;
  util::RelaxedCell<std::uint64_t> sum_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Label set: ordered key→value pairs, rendered `{k1="v1",k2="v2"}`.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by (name, labels). Registration must happen on the
  /// coordinator thread (stable registration order is part of the
  /// determinism contract); lane events only touch the returned cells.
  /// `help` is recorded on first registration of a name and reused after.
  Counter* counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge* gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram* histogram(const std::string& name,
                       const std::vector<std::int64_t>& bounds,
                       const Labels& labels = {}, const std::string& help = "");

  std::size_t metric_count() const { return metrics_.size(); }
  std::size_t snapshot_count() const { return snapshots_.size(); }

  /// Appends one row: the current value of every registered metric, stamped
  /// with simulated time `now`. Coordinator-thread-only, after the lane
  /// barrier for the scrape window has joined.
  void record_snapshot(StatsTime now);

  /// Prometheus exposition text of the current values. Families appear in
  /// first-registration order; series within a family in registration order.
  /// `now` stamps every sample (milliseconds, Prometheus convention).
  std::string to_prometheus(StatsTime now) const;

  /// Time-indexed JSON: {"snapshots":[{"t_usec":..,"values":{series:val}}]}
  /// with a metadata block describing each series. Histograms export their
  /// cumulative bucket vector, count and sum per snapshot.
  std::string snapshots_json() const;

  /// Writes, creating parent directories first; on failure returns an error
  /// *and* logs a warning (callers on bench paths historically dropped the
  /// Status — the warning makes the drop visible either way).
  Status write_prometheus(const std::string& path, StatsTime now) const;
  Status write_snapshots_json(const std::string& path) const;

 private:
  struct Metric {
    MetricKind kind;
    std::string name;
    Labels labels;
    std::string help;
    // Exactly one is engaged, matching `kind`. Stable addresses: metrics are
    // held by unique-ownership so registry growth never moves live cells.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Snapshot {
    StatsTime t;
    /// One entry per metric registered at snapshot time, metric order.
    /// Counters/gauges contribute one value; histograms contribute their
    /// cumulative buckets then count then sum.
    std::vector<std::vector<std::int64_t>> values;
  };

  /// Canonical series key used for lookup (ordered map: no hashing).
  static std::string series_key(const std::string& name, const Labels& labels);
  Metric* find_or_null(const std::string& key);

  std::vector<Metric> metrics_;
  std::map<std::string, std::size_t> index_;  ///< series key → metrics_ idx.
  std::vector<Snapshot> snapshots_;
};

/// Renders a label set as `{k="v",...}` (empty string for no labels).
std::string render_labels(const Labels& labels);

}  // namespace agile::stats
