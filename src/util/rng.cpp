#include "util/rng.hpp"

#include <cmath>

#include "util/status.hpp"

namespace agile {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = h;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed, std::string_view tag) {
  std::uint64_t s = seed ^ hash_tag(tag);
  for (auto& word : s_) word = splitmix64(s);
}

double Rng::next_range(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  // Guard against log(0).
  if (u >= 1.0) u = 0x1.fffffffffffffp-1;
  return -mean * std::log1p(-u);
}

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

// Incremental zeta for large n: approximate tail with the integral. Accurate
// to well under 1% for the dataset sizes used here, and keeps setup O(1).
double zeta_approx(std::uint64_t n, double theta) {
  constexpr std::uint64_t kExact = 10000;
  if (n <= kExact) return zeta(n, theta);
  double head = zeta(kExact, theta);
  // Integral of x^-theta from kExact to n.
  double a = static_cast<double>(kExact);
  double b = static_cast<double>(n);
  double tail;
  if (theta == 1.0) {
    tail = std::log(b / a);
  } else {
    tail = (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  }
  return head + tail;
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  AGILE_CHECK(n > 0);
  AGILE_CHECK(theta > 0.0 && theta < 2.0 && theta != 1.0);
  zetan_ = zeta_approx(n, theta);
  zeta2_ = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Standard YCSB-style Zipfian generator (Gray et al., "Quickly generating
  // billion-record synthetic databases").
  double u = rng.next_double();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (idx >= n_) idx = n_ - 1;
  return idx;
}

}  // namespace agile
