#include "util/log.hpp"

#include <cstdio>

namespace agile::log {
namespace {

LogLevel g_level = LogLevel::kWarn;
// Thread-local: each sweep worker registers its own cluster's clock, so
// concurrent simulations never race on (or misattribute) the time source.
thread_local std::int64_t (*g_time_source)() = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(LogLevel level) { g_level = level; }
LogLevel level() { return g_level; }
void set_time_source(std::int64_t (*now_usec)()) { g_time_source = now_usec; }

void write(LogLevel lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) < static_cast<int>(g_level)) return;
  if (g_time_source != nullptr) {
    double t = static_cast<double>(g_time_source()) / 1e6;
    std::fprintf(stderr, "[%10.3fs %-5s] ", t, level_name(lvl));
  } else {
    std::fprintf(stderr, "[%-5s] ", level_name(lvl));
  }
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace agile::log
