// Invariant-checking tiers for the simulator.
//
// Three tiers, ordered by cost:
//
//   AGILE_CHECK / AGILE_CHECK_MSG — always compiled, always on. Cheap O(1)
//       preconditions on every path, including the hottest ones (a broken
//       simulation must die, not publish corrupt metrics). The failure path
//       is a single out-of-line [[noreturn]] call, so the macro costs one
//       predictable branch at the call site.
//
//   AGILE_CHECK_S(expr) << "context " << v — always compiled, always on,
//       with streamed context. Use on cold paths (round boundaries, protocol
//       transitions) where naming the offending page/byte count is worth a
//       few extra instructions of failure-path code.
//
//   AGILE_DCHECK / AGILE_DCHECK_EQ / _NE / _LT / _LE / _GT / _GE — compiled
//       only when the build defines AGILE_AUDIT (the `asan-ubsan` and `tsan`
//       presets do; `cmake -DAGILE_AUDIT=ON` for a plain build). Streamed
//       context; the _OP forms print both operand values. Zero cost — the
//       condition is not even evaluated — in ordinary builds. Use freely on
//       hot paths.
//
// Deep auditors (the O(n) cross-structure sweeps: GuestMemory::deep_audit,
// Bitmap::deep_audit, the wire/migration conservation checks) are *runtime*
// gated on audit::enabled() instead, so a stock binary can run fully audited
// with `AGILE_AUDIT=1` in the environment — that is how the golden-metrics
// audit ctest proves the auditors don't perturb behavior without a rebuild.
// Inside an `if (audit::enabled())` block, use the always-compiled tiers
// (AGILE_CHECK / AGILE_CHECK_S), never AGILE_DCHECK, or the audit would
// silently vanish from non-AGILE_AUDIT builds.
#pragma once

#include <sstream>
#include <string>

namespace agile {

namespace detail {

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

/// Failure-message accumulator behind the streamed check tiers. Holds no
/// buffer when the check passed; aborts from the destructor when it failed,
/// after the caller's streamed context has been collected.
class CheckStream {
 public:
  CheckStream() = default;
  CheckStream(const char* file, int line, const char* expr)
      : failed_(true), file_(file), line_(line), expr_(expr) {}

  CheckStream(CheckStream&& other) noexcept
      : failed_(other.failed_),
        file_(other.file_),
        line_(other.line_),
        expr_(other.expr_),
        os_(std::move(other.os_)) {
    other.failed_ = false;
  }
  CheckStream(const CheckStream&) = delete;
  CheckStream& operator=(const CheckStream&) = delete;
  CheckStream& operator=(CheckStream&&) = delete;

  ~CheckStream() {
    if (failed_) check_failed(file_, line_, expr_, os_.str());
  }

  template <typename T>
  CheckStream& operator<<(const T& v) {
    if (failed_) os_ << v;
    return *this;
  }

 private:
  bool failed_ = false;
  const char* file_ = nullptr;
  int line_ = 0;
  const char* expr_ = nullptr;
  std::ostringstream os_;
};

inline CheckStream make_check(bool ok, const char* file, int line,
                              const char* expr) {
  return ok ? CheckStream() : CheckStream(file, line, expr);
}

/// Evaluates both operands exactly once; on failure the message leads with
/// their values ("(3 vs 5) ").
template <typename A, typename B, typename Op>
CheckStream make_check_op(const A& a, const B& b, Op op, const char* file,
                          int line, const char* expr) {
  if (op(a, b)) return CheckStream();
  CheckStream s(file, line, expr);
  s << "(" << a << " vs " << b << ") ";
  return s;
}

/// Swallows streamed operands of compiled-out AGILE_DCHECKs.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail

namespace audit {

/// True when the deep (O(n)) auditors should run. Forced on by building with
/// AGILE_AUDIT defined (the sanitizer presets); otherwise enabled at process
/// start by `AGILE_AUDIT=1` in the environment. Cached after the first call.
bool enabled();

/// Test-only override (takes effect immediately, bypassing the cache).
void set_enabled_for_test(bool on);

}  // namespace audit
}  // namespace agile

/// Fail-fast invariant check; always on (simulation correctness > speed of a
/// broken run).
#define AGILE_CHECK(expr)                                                \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::agile::detail::check_failed(__FILE__, __LINE__, #expr, "");      \
    }                                                                    \
  } while (0)

#define AGILE_CHECK_MSG(expr, msg)                                       \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::agile::detail::check_failed(__FILE__, __LINE__, #expr, (msg));   \
    }                                                                    \
  } while (0)

/// Always-on check with streamed context:
///   AGILE_CHECK_S(a == b) << "while installing page " << p;
#define AGILE_CHECK_S(expr) \
  ::agile::detail::make_check(static_cast<bool>(expr), __FILE__, __LINE__, #expr)

#ifdef AGILE_AUDIT

#define AGILE_DCHECK(expr) AGILE_CHECK_S(expr)
#define AGILE_DCHECK_OP_(a, b, opname, opstr)                                \
  ::agile::detail::make_check_op(                                            \
      (a), (b), [](const auto& x, const auto& y) { return x opname y; },     \
      __FILE__, __LINE__, #a " " opstr " " #b)

#else  // !AGILE_AUDIT

// Compiled out: operands are parsed (so they can't rot) but never evaluated,
// and the whole statement folds to nothing.
#define AGILE_DCHECK(expr) \
  while (false && static_cast<bool>(expr)) ::agile::detail::NullStream()
#define AGILE_DCHECK_OP_(a, b, opname, opstr) \
  while (false && ((a) opname (b))) ::agile::detail::NullStream()

#endif  // AGILE_AUDIT

#define AGILE_DCHECK_EQ(a, b) AGILE_DCHECK_OP_(a, b, ==, "==")
#define AGILE_DCHECK_NE(a, b) AGILE_DCHECK_OP_(a, b, !=, "!=")
#define AGILE_DCHECK_LT(a, b) AGILE_DCHECK_OP_(a, b, <, "<")
#define AGILE_DCHECK_LE(a, b) AGILE_DCHECK_OP_(a, b, <=, "<=")
#define AGILE_DCHECK_GT(a, b) AGILE_DCHECK_OP_(a, b, >, ">")
#define AGILE_DCHECK_GE(a, b) AGILE_DCHECK_OP_(a, b, >=, ">=")
