// Fixed-size dynamic bitmap with fast scanning.
//
// Used for the migration dirty bitmap, the destination's swapped bitmap, and
// residency tracking. Supports O(words) population count,
// find-first-set-at-or-after, and word-at-a-time *run* iteration
// (`next_set_run` / `next_clear_run`) — the primitive behind the run-length
// batched migration wire path, which coalesces contiguous same-class pages
// into a single stream message instead of one per page.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace agile {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size, bool initial = false) { reset(size, initial); }

  /// Re-initializes to `size` bits, all set to `initial`.
  void reset(std::size_t size, bool initial = false);

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    AGILE_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    AGILE_CHECK(i < size_);
    std::uint64_t& w = words_[i >> 6];
    std::uint64_t bit = 1ULL << (i & 63);
    if (!(w & bit)) {
      w |= bit;
      ++count_;
    }
  }

  void clear(std::size_t i) {
    AGILE_CHECK(i < size_);
    std::uint64_t& w = words_[i >> 6];
    std::uint64_t bit = 1ULL << (i & 63);
    if (w & bit) {
      w &= ~bit;
      --count_;
    }
  }

  void set_all();
  void clear_all();

  /// Number of set bits (maintained incrementally; O(1)).
  std::size_t count() const { return count_; }

  bool any() const { return count_ > 0; }
  bool none() const { return count_ == 0; }

  /// Index of the first set bit at or after `from`, or `npos` if none.
  std::size_t find_next_set(std::size_t from) const;

  /// Index of the first clear bit at or after `from`, or `npos` if none.
  std::size_t find_next_clear(std::size_t from) const;

  /// Half-open run of identical bits. `empty()` marks "no such run".
  struct Run {
    std::size_t begin;
    std::size_t end;
    bool empty() const { return begin == npos; }
    std::size_t length() const { return end - begin; }
  };

  /// Maximal run of set bits starting at the first set bit at or after
  /// `from`: `{begin, end}` with every bit in [begin, end) set and bit `end`
  /// (if in range) clear. Returns `{npos, npos}` when no set bit remains.
  /// Scans 64-bit words with ctz, so sparse and dense bitmaps are both
  /// O(words), not O(bits).
  Run next_set_run(std::size_t from) const;

  /// Maximal run of clear bits starting at the first clear bit at or after
  /// `from`; `{npos, npos}` when no clear bit remains.
  Run next_clear_run(std::size_t from) const;

  /// Sets every bit in [begin, end), word-masked. No-op on an empty range.
  void set_range(std::size_t begin, std::size_t end);

  /// Clears every bit in [begin, end), word-masked.
  void clear_range(std::size_t begin, std::size_t end);

  /// Bitwise OR with another bitmap of the same size.
  void or_with(const Bitmap& other);

  /// Deep auditor (O(bits)): the incremental population count matches an
  /// actual recount, bits past `size()` are zero, and set/clear run iteration
  /// yields maximal, disjoint, ascending runs covering exactly the set and
  /// clear populations. Aborts on violation. Call sites gate on
  /// `audit::enabled()`; calling directly always audits.
  void deep_audit() const;

  /// Test-only fault injection for auditor negative tests: overwrites word
  /// `word_index` without maintaining the population count, so a subsequent
  /// `deep_audit()` must abort. Never call outside tests.
  void corrupt_word_for_test(std::size_t word_index, std::uint64_t value) {
    AGILE_CHECK(word_index < words_.size());
    words_[word_index] = value;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  void recount();

  std::size_t size_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace agile
