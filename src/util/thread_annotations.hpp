// Clang thread-safety annotations + annotated synchronization primitives.
//
// The repo's concurrency contract (DESIGN.md "Concurrency contract") is
// enforced in layers; this header is the *type-system* layer. Every
// mutex-guarded structure declares which lock protects it via
// AGILE_GUARDED_BY, and every function that expects a lock held says so with
// AGILE_REQUIRES — Clang's `-Wthread-safety` analysis (the `analyze` preset,
// tools/check_thread_safety.sh) then rejects any unguarded access at compile
// time, independent of which interleavings a test happens to exercise.
//
// Under GCC (the everyday toolchain) every macro expands to nothing, so the
// annotations are free. The `Mutex`/`MutexLock`/`CondVar` wrappers exist
// because the analysis only tracks *annotated* capabilities: a raw
// `std::mutex` is invisible to it. They are thin, header-only shims over the
// std primitives with zero behavioral difference.
//
// State that is intentionally *not* lock-guarded falls into two documented
// classes the analysis cannot express (the AST layer, tools/lane_lint.py,
// covers them instead):
//   * lane-confined  — owned by exactly one lane thread between barriers
//     (LaneCoordinator channel heaps, per-lane outboxes, TraceRecorder);
//   * relaxed cells  — commutative cross-lane sums (util::RelaxedCell).
#pragma once

#include <condition_variable>
#include <mutex>

// Thread-safety attributes are a Clang extension. GCC parses
// __has_attribute, but only Clang implements the analysis, so gate on both.
#if defined(__clang__) && defined(__has_attribute)
#define AGILE_TSA(x) __attribute__((x))
#else
#define AGILE_TSA(x)  // no-op outside Clang
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define AGILE_CAPABILITY(x) AGILE_TSA(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock below).
#define AGILE_SCOPED_CAPABILITY AGILE_TSA(scoped_lockable)

/// Declares that a member is protected by the given capability.
#define AGILE_GUARDED_BY(x) AGILE_TSA(guarded_by(x))

/// Declares that the data *pointed to* by a member is protected.
#define AGILE_PT_GUARDED_BY(x) AGILE_TSA(pt_guarded_by(x))

/// The function may only be called with the capabilities held.
#define AGILE_REQUIRES(...) AGILE_TSA(requires_capability(__VA_ARGS__))

/// The function acquires / releases the capabilities.
#define AGILE_ACQUIRE(...) AGILE_TSA(acquire_capability(__VA_ARGS__))
#define AGILE_RELEASE(...) AGILE_TSA(release_capability(__VA_ARGS__))
#define AGILE_TRY_ACQUIRE(...) AGILE_TSA(try_acquire_capability(__VA_ARGS__))

/// The function may only be called with the capabilities *not* held
/// (deadlock guard for functions that acquire internally).
#define AGILE_EXCLUDES(...) AGILE_TSA(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations.
#define AGILE_ACQUIRED_BEFORE(...) AGILE_TSA(acquired_before(__VA_ARGS__))
#define AGILE_ACQUIRED_AFTER(...) AGILE_TSA(acquired_after(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define AGILE_RETURN_CAPABILITY(x) AGILE_TSA(lock_returned(x))

/// Escape hatch; every use needs a comment saying why the analysis is wrong.
#define AGILE_NO_THREAD_SAFETY_ANALYSIS AGILE_TSA(no_thread_safety_analysis)

namespace agile::util {

class CondVar;

/// std::mutex with the capability attribute the analysis needs. Use with
/// MutexLock for scopes and CondVar for waits; prefer MutexLock over manual
/// lock()/unlock() pairs.
class AGILE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AGILE_ACQUIRE() { mu_.lock(); }
  void unlock() AGILE_RELEASE() { mu_.unlock(); }
  bool try_lock() AGILE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over a Mutex (std::lock_guard shape, but visible to the
/// analysis: members guarded by the mutex are accessible inside the scope).
class AGILE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AGILE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AGILE_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. wait() requires the mutex held (the
/// analysis checks callers); internally it adopts the already-held
/// std::mutex for the duration of the wait and releases the adoption before
/// returning, so ownership bookkeeping stays with the caller's MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and sleeps; `mu` is re-held on return.
  /// Spurious wakeups happen: always wait in a predicate loop.
  void wait(Mutex& mu) AGILE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace agile::util
