// Minimal leveled logger.
//
// The simulator injects the current simulated time via a thread-local clock
// hook so log lines carry virtual — not wall — time. Default level is WARN so
// tests and benches stay quiet; examples turn on INFO.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace agile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log {

void set_level(LogLevel level);
LogLevel level();

/// Registers a function returning the current simulated time in microseconds;
/// pass nullptr to go back to "no time" prefixes.
void set_time_source(std::int64_t (*now_usec)());

void write(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace log
}  // namespace agile

#define AGILE_LOG_DEBUG(...) ::agile::log::write(::agile::LogLevel::kDebug, __VA_ARGS__)
#define AGILE_LOG_INFO(...) ::agile::log::write(::agile::LogLevel::kInfo, __VA_ARGS__)
#define AGILE_LOG_WARN(...) ::agile::log::write(::agile::LogLevel::kWarn, __VA_ARGS__)
#define AGILE_LOG_ERROR(...) ::agile::log::write(::agile::LogLevel::kError, __VA_ARGS__)
