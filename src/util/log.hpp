// Minimal leveled logger.
//
// The simulator injects the current simulated time via a thread-local clock
// hook so log lines carry virtual — not wall — time. Default level is WARN so
// tests and benches stay quiet; examples turn on INFO.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdint>

namespace agile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log {

void set_level(LogLevel level);
LogLevel level();

/// Registers a function returning the current simulated time in microseconds;
/// pass nullptr to go back to "no time" prefixes.
void set_time_source(std::int64_t (*now_usec)());

void write(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace log
}  // namespace agile

#define AGILE_LOG_DEBUG(...) ::agile::log::write(::agile::LogLevel::kDebug, __VA_ARGS__)
#define AGILE_LOG_INFO(...) ::agile::log::write(::agile::LogLevel::kInfo, __VA_ARGS__)
#define AGILE_LOG_WARN(...) ::agile::log::write(::agile::LogLevel::kWarn, __VA_ARGS__)
#define AGILE_LOG_ERROR(...) ::agile::log::write(::agile::LogLevel::kError, __VA_ARGS__)

/// Rate-limited logging for chatty (e.g. per-page) paths: emits on the 1st,
/// (n+1)-th, (2n+1)-th ... execution of this statement. `level` is a bare
/// LogLevel enumerator (kDebug/kInfo/kWarn/kError). The counter is
/// per-call-site and process-wide, so suppression spans threads; the log
/// stream is diagnostics, not a deterministic artifact.
#define AGILE_LOG_EVERY_N(level, n, ...)                                      \
  do {                                                                        \
    static ::std::atomic<::std::uint64_t> agile_log_every_count{0};           \
    if (agile_log_every_count.fetch_add(1, ::std::memory_order_relaxed) %     \
            (n) ==                                                            \
        0)                                                                    \
      ::agile::log::write(::agile::LogLevel::level, __VA_ARGS__);             \
  } while (0)
