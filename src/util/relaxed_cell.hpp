// Relaxed atomic counter cell for commutative cross-lane accumulation.
//
// Parallel event lanes (sim/lanes.hpp) let per-host work from different
// lanes touch a handful of shared integer accumulators concurrently — node
// background-byte counters in the network, page-frame counts on a VMD
// server. All of those are *commutative sums*: the final value after a lane
// barrier is independent of interleaving, so relaxed atomics preserve
// byte-identical output while making the access race-free under TSan. The
// barrier's fork/join provides the ordering for every subsequent read.
//
// The cell is copyable/movable (value snapshot, like a plain integer) so it
// can live in vectors that grow, unlike a raw std::atomic.
//
// Counters that lanes may touch concurrently MUST use this type, never a
// plain integer; tools/lane_lint.py keeps a registry of such members (rule
// LL004) and fails if one is declared without a RelaxedCell. When adding a
// new cross-lane counter, add it to the registry in the same change.
#pragma once

#include <atomic>

namespace agile::util {

template <typename T>
class RelaxedCell {
 public:
  RelaxedCell() = default;
  // Implicit both ways: the cell stands in for a plain integer counter.
  RelaxedCell(T v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedCell(const RelaxedCell& o) : v_(o.load()) {}
  RelaxedCell& operator=(const RelaxedCell& o) {
    store(o.load());
    return *this;
  }
  RelaxedCell& operator=(T v) {
    store(v);
    return *this;
  }

  T load() const { return v_.load(std::memory_order_relaxed); }
  void store(T v) { v_.store(v, std::memory_order_relaxed); }
  void add(T d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(T d) { v_.fetch_sub(d, std::memory_order_relaxed); }

  operator T() const { return load(); }

 private:
  std::atomic<T> v_{};
};

}  // namespace agile::util
