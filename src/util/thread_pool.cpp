#include "util/thread_pool.hpp"

#include "util/status.hpp"

namespace agile::util {

ThreadPool::ThreadPool(unsigned workers) {
  AGILE_CHECK(workers >= 1);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.wait(mu_);
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future, not here
  }
}

}  // namespace agile::util
