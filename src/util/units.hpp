// Byte-size and time units used throughout the simulator.
//
// All simulated time is kept in microseconds as a signed 64-bit integer
// (`SimTime`). All memory sizes are kept in bytes as unsigned 64-bit
// (`Bytes`). Pages are fixed at 4 KiB, matching the x86 page size the paper's
// KVM/QEMU implementation operates on.
#pragma once

#include <cstdint>

namespace agile {

using Bytes = std::uint64_t;
using PageIndex = std::uint64_t;

inline constexpr Bytes kPageSize = 4096;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v} << 10; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v} << 20; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v} << 30; }

/// Number of whole pages needed to hold `bytes` (rounds up).
inline constexpr std::uint64_t pages_for(Bytes bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kUsec = 1;
inline constexpr SimTime kMsec = 1000;
inline constexpr SimTime kSec = 1000 * 1000;

inline constexpr SimTime usec(double v) { return static_cast<SimTime>(v); }
inline constexpr SimTime msec(double v) { return static_cast<SimTime>(v * 1e3); }
inline constexpr SimTime sec(double v) { return static_cast<SimTime>(v * 1e6); }

/// Convert a SimTime to (floating) seconds, for reporting.
inline constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Convert bytes to (floating) mebibytes, for reporting.
inline constexpr double to_mib(Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0); }

/// Convert bytes to (floating) gibibytes, for reporting.
inline constexpr double to_gib(Bytes b) { return static_cast<double>(b) / (1024.0 * 1024.0 * 1024.0); }

}  // namespace agile
