#include "util/bitmap.hpp"

#include <bit>

namespace agile {

void Bitmap::reset(std::size_t size, bool initial) {
  size_ = size;
  words_.assign((size + 63) / 64, initial ? ~0ULL : 0ULL);
  if (initial && size % 64 != 0 && !words_.empty()) {
    // Mask off bits past the end so count()/scans stay exact.
    words_.back() &= (1ULL << (size % 64)) - 1;
  }
  count_ = initial ? size : 0;
}

void Bitmap::set_all() {
  if (size_ == 0) return;
  for (auto& w : words_) w = ~0ULL;
  if (size_ % 64 != 0) words_.back() &= (1ULL << (size_ % 64)) - 1;
  count_ = size_;
}

void Bitmap::clear_all() {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

std::size_t Bitmap::find_next_set(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t word = from >> 6;
  std::uint64_t w = words_[word] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      std::size_t i = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return i < size_ ? i : npos;
    }
    if (++word >= words_.size()) return npos;
    w = words_[word];
  }
}

std::size_t Bitmap::find_next_clear(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t word = from >> 6;
  std::uint64_t w = ~words_[word] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      std::size_t i = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return i < size_ ? i : npos;
    }
    if (++word >= words_.size()) return npos;
    w = ~words_[word];
  }
}

void Bitmap::or_with(const Bitmap& other) {
  AGILE_CHECK(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  recount();
}

void Bitmap::recount() {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  count_ = c;
}

}  // namespace agile
