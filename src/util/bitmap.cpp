#include "util/bitmap.hpp"

#include <bit>

namespace agile {

void Bitmap::reset(std::size_t size, bool initial) {
  size_ = size;
  words_.assign((size + 63) / 64, initial ? ~0ULL : 0ULL);
  if (initial && size % 64 != 0 && !words_.empty()) {
    // Mask off bits past the end so count()/scans stay exact.
    words_.back() &= (1ULL << (size % 64)) - 1;
  }
  count_ = initial ? size : 0;
}

void Bitmap::set_all() {
  if (size_ == 0) return;
  for (auto& w : words_) w = ~0ULL;
  if (size_ % 64 != 0) words_.back() &= (1ULL << (size_ % 64)) - 1;
  count_ = size_;
}

void Bitmap::clear_all() {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

std::size_t Bitmap::find_next_set(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t word = from >> 6;
  std::uint64_t w = words_[word] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      std::size_t i = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return i < size_ ? i : npos;
    }
    if (++word >= words_.size()) return npos;
    w = words_[word];
  }
}

std::size_t Bitmap::find_next_clear(std::size_t from) const {
  if (from >= size_) return npos;
  std::size_t word = from >> 6;
  std::uint64_t w = ~words_[word] & (~0ULL << (from & 63));
  while (true) {
    if (w != 0) {
      std::size_t i = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return i < size_ ? i : npos;
    }
    if (++word >= words_.size()) return npos;
    w = ~words_[word];
  }
}

Bitmap::Run Bitmap::next_set_run(std::size_t from) const {
  std::size_t begin = find_next_set(from);
  if (begin == npos) return {npos, npos};
  // The run ends at the next clear bit; a fully-set tail runs to size_.
  std::size_t end = find_next_clear(begin);
  return {begin, end == npos ? size_ : end};
}

Bitmap::Run Bitmap::next_clear_run(std::size_t from) const {
  std::size_t begin = find_next_clear(from);
  if (begin == npos) return {npos, npos};
  std::size_t end = find_next_set(begin);
  return {begin, end == npos ? size_ : end};
}

namespace {
// Mask with bits [lo, hi) of one word set; requires lo < hi <= 64.
inline std::uint64_t word_mask(std::size_t lo, std::size_t hi) {
  std::uint64_t high = hi == 64 ? ~0ULL : (1ULL << hi) - 1;
  return high & ~((1ULL << lo) - 1);
}
}  // namespace

void Bitmap::set_range(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  AGILE_CHECK(end <= size_);
  std::size_t first_word = begin >> 6;
  std::size_t last_word = (end - 1) >> 6;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    std::size_t lo = (w == first_word) ? (begin & 63) : 0;
    std::size_t hi = (w == last_word) ? ((end - 1) & 63) + 1 : 64;
    std::uint64_t mask = word_mask(lo, hi);
    count_ += static_cast<std::size_t>(std::popcount(mask & ~words_[w]));
    words_[w] |= mask;
  }
}

void Bitmap::clear_range(std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  AGILE_CHECK(end <= size_);
  std::size_t first_word = begin >> 6;
  std::size_t last_word = (end - 1) >> 6;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    std::size_t lo = (w == first_word) ? (begin & 63) : 0;
    std::size_t hi = (w == last_word) ? ((end - 1) & 63) + 1 : 64;
    std::uint64_t mask = word_mask(lo, hi);
    count_ -= static_cast<std::size_t>(std::popcount(mask & words_[w]));
    words_[w] &= ~mask;
  }
}

void Bitmap::or_with(const Bitmap& other) {
  AGILE_CHECK(other.size_ == size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  recount();
}

void Bitmap::deep_audit() const {
  AGILE_CHECK_S(words_.size() == (size_ + 63) / 64)
      << "word storage does not match size " << size_;
  if (size_ % 64 != 0 && !words_.empty()) {
    AGILE_CHECK_S((words_.back() & ~((1ULL << (size_ % 64)) - 1)) == 0)
        << "bits set past size " << size_;
  }
  std::size_t pop = 0;
  for (std::uint64_t w : words_) pop += static_cast<std::size_t>(std::popcount(w));
  AGILE_CHECK_S(pop == count_)
      << "incremental count " << count_ << " != popcount " << pop;

  // Set-run iteration: runs must be maximal, disjoint, ascending, and cover
  // exactly the set population.
  std::size_t covered = 0;
  for (Run r = next_set_run(0); !r.empty(); r = next_set_run(r.end)) {
    AGILE_CHECK_S(r.begin < r.end && r.end <= size_)
        << "malformed set run [" << r.begin << ", " << r.end << ")";
    if (r.begin > 0) {
      AGILE_CHECK_S(!test(r.begin - 1)) << "set run not maximal at " << r.begin;
    }
    if (r.end < size_) {
      AGILE_CHECK_S(!test(r.end)) << "set run not maximal at " << r.end;
    }
    for (std::size_t i = r.begin; i < r.end; ++i) {
      AGILE_CHECK_S(test(i)) << "clear bit " << i << " inside set run";
    }
    covered += r.length();
  }
  AGILE_CHECK_S(covered == count_)
      << "set runs cover " << covered << " bits, count is " << count_;

  // Clear-run iteration covers the complement.
  std::size_t clear_covered = 0;
  for (Run r = next_clear_run(0); !r.empty(); r = next_clear_run(r.end)) {
    AGILE_CHECK_S(r.begin < r.end && r.end <= size_)
        << "malformed clear run [" << r.begin << ", " << r.end << ")";
    for (std::size_t i = r.begin; i < r.end; ++i) {
      AGILE_CHECK_S(!test(i)) << "set bit " << i << " inside clear run";
    }
    clear_covered += r.length();
  }
  AGILE_CHECK_S(clear_covered == size_ - count_)
      << "clear runs cover " << clear_covered << " bits, expected "
      << size_ - count_;
}

void Bitmap::recount() {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  count_ = c;
}

}  // namespace agile
