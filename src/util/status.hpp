// Lightweight status / result types.
//
// The simulator is exception-free on its hot paths; fallible operations
// return `Status` or `Result<T>`. Programming errors (broken invariants) are
// caught with the AGILE_CHECK family (see util/check.hpp), which aborts with
// a message — the simulator is a research tool and fail-fast beats limping on
// with corrupt state.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace agile {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
};

/// Human-readable name of a status code (stable, used in logs and tests).
const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status out_of_range(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// Value-or-status. `value()` aborts if called on an error result.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool is_ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    check_ok();
    return std::get<T>(v_);
  }
  T& value() & {
    check_ok();
    return std::get<T>(v_);
  }
  T&& take() && {
    check_ok();
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

 private:
  void check_ok() const {
    if (!is_ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(v_).to_string().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> v_;
};

}  // namespace agile
