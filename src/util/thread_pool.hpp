// Fixed-size worker pool for fanning independent work across cores.
//
// Deliberately work-stealing-free: one FIFO queue guarded by a mutex. The
// jobs this repo submits (whole simulation runs, seconds each) are far too
// coarse for queue contention to matter, and a single queue keeps dispatch
// order deterministic, which the bench suite relies on for stable progress
// output. Results and exceptions travel through `std::future`: a task that
// throws stores the exception and it rethrows from `future::get()` in the
// submitter, never in the worker.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.hpp"

namespace agile::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads (>= 1; defaults to hardware concurrency).
  explicit ThreadPool(unsigned workers = default_workers());

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. Safe to call from
  /// any thread, including from inside a running task.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
      AGILE_EXCLUDES(mu_) {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    // std::function requires copyable callables, so the packaged_task (which
    // is move-only) rides behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Hardware concurrency, floored at 1 (the spec allows 0 for "unknown").
  static unsigned default_workers() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  void worker_loop() AGILE_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ AGILE_GUARDED_BY(mu_);
  bool shutdown_ AGILE_GUARDED_BY(mu_) = false;
  // Written only by the constructor, joined by the destructor; never touched
  // by worker threads, so it needs no guard.
  std::vector<std::thread> workers_;
};

}  // namespace agile::util
