// Small-buffer move-only callable, for hot paths that must not allocate.
//
// The migration wire path queues millions of completion callbacks per run;
// `std::function` heap-allocates each one. `InlineFunction` stores the
// callable inline (rejecting, at compile time, anything larger than
// `kCapacity`), so a stream message costs a deque slot and nothing else.
// Unlike `std::function` it is move-only and never falls back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/status.hpp"

namespace agile {

template <typename Sig>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// Inline storage: fits a handful of pointers/indices — every capture the
  /// migration engines use. Enlarge deliberately if a caller legitimately
  /// needs more; do not fall back to heap allocation.
  static constexpr std::size_t kCapacity = 64;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kCapacity,
                  "callable too large for InlineFunction's inline storage");
    static_assert(alignof(D) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "InlineFunction requires nothrow-movable callables");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    ops_ = &kOpsFor<D>;
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    AGILE_CHECK_MSG(ops_ != nullptr, "invoking an empty InlineFunction");
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src);  ///< Move-construct dst, destroy src.
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kOpsFor{
      [](void* p, Args&&... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); }};

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kCapacity];
};

}  // namespace agile
