// Deterministic random number generation.
//
// Every stochastic component of the simulator owns its own `Rng` stream,
// seeded from an experiment-level seed plus a component tag, so adding or
// reordering components never perturbs the draws of the others. The generator
// is xoshiro256**, seeded via splitmix64 — fast, high quality, and fully
// reproducible across platforms (no implementation-defined std::distribution
// behaviour is relied on).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.hpp"

namespace agile {

/// splitmix64 step; used for seeding and hashing tags.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a string tag (FNV-1a folded through splitmix64).
std::uint64_t hash_tag(std::string_view tag);

class Rng {
 public:
  /// Seeds the stream from `seed` and a component `tag`.
  explicit Rng(std::uint64_t seed, std::string_view tag = "");

  /// Uniform in [0, 2^64). Defined inline: sampled-LRU eviction draws from
  /// this hundreds of millions of times per full-scale sweep, and an
  /// out-of-line call per draw is measurable there.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0. Uses Lemire's bounded rejection.
  std::uint64_t next_below(std::uint64_t n) {
    AGILE_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Uniform in [lo, hi) for doubles.
  double next_range(double lo, double hi);

  /// Approximately exponentially distributed with the given mean.
  double next_exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Bounded Zipfian sampler over {0, ..., n-1} with exponent `theta`.
///
/// Uses the standard rejection-inversion method (Gray et al.) so sampling is
/// O(1) per draw after O(1) setup — suitable for datasets of millions of keys.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace agile
