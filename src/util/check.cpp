#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace agile {
namespace detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  std::fprintf(stderr, "AGILE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace detail

namespace audit {

namespace {

// -1 = not yet resolved, 0 = off, 1 = on. Atomic so the bench thread pool can
// race the first call harmlessly (both writers store the same value).
std::atomic<int> g_enabled{-1};

int resolve() {
#ifdef AGILE_AUDIT
  return 1;
#else
  const char* env = std::getenv("AGILE_AUDIT");
  return (env != nullptr && env[0] == '1') ? 1 : 0;
#endif
}

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve();
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled_for_test(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace audit
}  // namespace agile
