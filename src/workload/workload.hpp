// Workload interfaces.
//
// A workload is a closed-loop client (YCSB, Sysbench) running on an external
// host, issuing operations against a server inside a VM. Each operation
// costs: base service time + network round trip (congestion-aware) + whatever
// page faults the touched pages incur. A quantum of client time is simulated
// by looping operations until the concurrency-scaled time budget is spent —
// so throughput *emerges* from memory pressure, swap latency and network
// interference instead of being scripted.
//
// Workloads reach guest memory only through `PageAccessor`, implemented by
// the VM layer, which routes accesses either to resident/swapped memory or —
// during the post-copy phase of a migration — to the fault engine.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "util/units.hpp"

namespace agile::workload {

class PageAccessor {
 public:
  virtual ~PageAccessor() = default;

  /// Touches guest page `p`; returns the fault latency to charge.
  virtual SimTime access_page(PageIndex p, bool write, std::uint32_t tick) = 0;

  /// Network node of the host the VM currently executes on.
  virtual net::NodeId host_node() const = 0;

  /// Guest memory size in pages.
  virtual std::uint64_t page_count() const = 0;

  /// Number of vCPUs (bounds effective client concurrency server-side).
  virtual std::uint32_t vcpus() const = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Simulates `dt` of client activity at LRU clock `tick`; returns
  /// operations completed within the quantum.
  virtual std::uint64_t run_quantum(SimTime dt, std::uint32_t tick) = 0;

  /// Pre-populates the dataset (runs once before the experiment clock).
  virtual void load(std::uint32_t tick) = 0;

  virtual std::uint64_t ops_total() const = 0;
  virtual const char* kind() const = 0;
};

/// A VM that only runs its (quiet) guest OS.
class IdleWorkload final : public Workload {
 public:
  std::uint64_t run_quantum(SimTime, std::uint32_t) override { return 0; }
  void load(std::uint32_t) override {}
  std::uint64_t ops_total() const override { return 0; }
  const char* kind() const override { return "idle"; }
};

}  // namespace agile::workload
