// Sysbench-OLTP-over-MySQL workload model.
//
// Transactions touch several pages (index walks + row reads, Zipfian-skewed
// like a B-tree under a uniform key distribution: hot inner nodes, colder
// leaves) and a write-transaction tail updates rows and log pages. Base
// transaction cost is tens of milliseconds of server work, so throughput is
// two orders of magnitude below YCSB's — matching the paper's Table I units
// (trans/s vs ops/s).
#pragma once

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace agile::workload {

struct OltpConfig {
  Bytes dataset_bytes = 8_GiB;     ///< InnoDB data + indexes.
  Bytes guest_os_bytes = 300_MiB;  ///< Guest kernel + mysqld code.
  double write_txn_fraction = 0.3; ///< Share of read-write transactions.
  std::uint32_t reads_per_txn = 10;   ///< Pages touched by a read txn.
  std::uint32_t writes_per_txn = 4;   ///< Extra dirtied pages in a write txn.
  double zipf_theta = 0.6;         ///< Index-walk skew.
  SimTime base_txn_time = 28000;   ///< µs of server CPU per transaction.
  std::uint32_t concurrency = 4;   ///< Client threads.
  Bytes request_bytes = 512;
  Bytes response_bytes = 4096;
};

class OltpWorkload final : public Workload {
 public:
  OltpWorkload(PageAccessor* accessor, net::Network* network,
               net::NodeId client_node, OltpConfig config, Rng rng);

  std::uint64_t run_quantum(SimTime dt, std::uint32_t tick) override;
  void load(std::uint32_t tick) override;
  std::uint64_t ops_total() const override { return txns_total_; }
  const char* kind() const override { return "oltp"; }

  PageIndex dataset_base() const { return base_page_; }
  std::uint64_t dataset_pages() const { return dataset_pages_; }

 private:
  PageAccessor* accessor_;
  net::Network* network_;
  net::NodeId client_node_;
  OltpConfig config_;
  Rng rng_;

  PageIndex base_page_;
  std::uint64_t dataset_pages_;
  ZipfSampler zipf_;
  std::uint64_t txns_total_ = 0;
};

}  // namespace agile::workload
