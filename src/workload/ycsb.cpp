#include "workload/ycsb.hpp"

#include <algorithm>

namespace agile::workload {

YcsbWorkload::YcsbWorkload(PageAccessor* accessor, net::Network* network,
                           net::NodeId client_node, YcsbConfig config, Rng rng)
    : accessor_(accessor),
      network_(network),
      client_node_(client_node),
      config_(config),
      rng_(rng) {
  AGILE_CHECK(accessor_ != nullptr && network_ != nullptr);
  AGILE_CHECK(config_.concurrency > 0);
  AGILE_CHECK(config_.base_op_time > 0);
  base_page_ = pages_for(config_.guest_os_bytes);
  dataset_pages_ = pages_for(config_.dataset_bytes);
  AGILE_CHECK_MSG(base_page_ + dataset_pages_ <= accessor_->page_count(),
                  "dataset does not fit in guest memory");
  active_pages_ = std::min(pages_for(config_.active_bytes), dataset_pages_);
  AGILE_CHECK(active_pages_ > 0);
}

void YcsbWorkload::set_active_bytes(Bytes bytes) {
  active_pages_ = std::clamp<std::uint64_t>(pages_for(bytes), 1, dataset_pages_);
  if (zipf_ && zipf_->n() != active_pages_) {
    zipf_.emplace(active_pages_, config_.zipf_theta);
  }
}

PageIndex YcsbWorkload::pick_page() {
  if (config_.zipf_theta > 0.0) {
    if (!zipf_ || zipf_->n() != active_pages_) {
      zipf_.emplace(active_pages_, config_.zipf_theta);
    }
    return base_page_ + zipf_->sample(rng_);
  }
  return base_page_ + rng_.next_below(active_pages_);
}

void YcsbWorkload::load(std::uint32_t tick) {
  // Bulk-load the store: the guest OS pages plus every dataset page are
  // written once (this is what pushes the cold tail out to swap when the
  // reservation is smaller than the dataset).
  for (PageIndex p = 0; p < base_page_ + dataset_pages_; ++p) {
    accessor_->access_page(p, /*write=*/true, tick);
  }
}

std::uint64_t YcsbWorkload::run_quantum(SimTime dt, std::uint32_t tick) {
  // Effective parallelism: client threads, capped by guest vCPUs for the
  // server-side portion. Page faults serialize on the guest side, so we
  // model the whole op pipeline at this effective width.
  std::uint32_t width = std::min(config_.concurrency, 4 * accessor_->vcpus());
  double budget = static_cast<double>(dt) * width;
  // One congestion estimate per quantum; the network state only changes at
  // quantum boundaries anyway.
  SimTime net_lat =
      network_->rpc_latency(client_node_, accessor_->host_node(), config_.response_bytes);
  double spent = 0;
  std::uint64_t ops = 0;
  Bytes tx_to_vm = 0, rx_from_vm = 0;
  while (spent < budget) {
    bool write = !rng_.next_bool(config_.read_fraction);
    PageIndex p = pick_page();
    SimTime fault = accessor_->access_page(p, write, tick);
    spent += static_cast<double>(config_.base_op_time + net_lat + fault);
    ++ops;
    tx_to_vm += config_.request_bytes;
    rx_from_vm += config_.response_bytes;
  }
  if (tx_to_vm > 0) {
    network_->consume_background(client_node_, accessor_->host_node(), tx_to_vm);
    network_->consume_background(accessor_->host_node(), client_node_, rx_from_vm);
  }
  ops_total_ += ops;
  return ops;
}

}  // namespace agile::workload
