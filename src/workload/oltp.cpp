#include "workload/oltp.hpp"

#include <algorithm>

namespace agile::workload {

OltpWorkload::OltpWorkload(PageAccessor* accessor, net::Network* network,
                           net::NodeId client_node, OltpConfig config, Rng rng)
    : accessor_(accessor),
      network_(network),
      client_node_(client_node),
      config_(config),
      rng_(rng),
      base_page_(pages_for(config.guest_os_bytes)),
      dataset_pages_(pages_for(config.dataset_bytes)),
      zipf_(dataset_pages_, config.zipf_theta) {
  AGILE_CHECK(accessor_ != nullptr && network_ != nullptr);
  AGILE_CHECK(config_.concurrency > 0);
  AGILE_CHECK_MSG(base_page_ + dataset_pages_ <= accessor_->page_count(),
                  "dataset does not fit in guest memory");
}

void OltpWorkload::load(std::uint32_t tick) {
  for (PageIndex p = 0; p < base_page_ + dataset_pages_; ++p) {
    accessor_->access_page(p, /*write=*/true, tick);
  }
}

std::uint64_t OltpWorkload::run_quantum(SimTime dt, std::uint32_t tick) {
  std::uint32_t width = std::min(config_.concurrency, 2 * accessor_->vcpus());
  double budget = static_cast<double>(dt) * width;
  SimTime net_lat =
      network_->rpc_latency(client_node_, accessor_->host_node(), config_.response_bytes);
  double spent = 0;
  std::uint64_t txns = 0;
  Bytes tx_to_vm = 0, rx_from_vm = 0;
  while (spent < budget) {
    bool rw_txn = rng_.next_bool(config_.write_txn_fraction);
    SimTime faults = 0;
    for (std::uint32_t i = 0; i < config_.reads_per_txn; ++i) {
      PageIndex p = base_page_ + zipf_.sample(rng_);
      faults += accessor_->access_page(p, /*write=*/false, tick);
    }
    if (rw_txn) {
      for (std::uint32_t i = 0; i < config_.writes_per_txn; ++i) {
        PageIndex p = base_page_ + zipf_.sample(rng_);
        faults += accessor_->access_page(p, /*write=*/true, tick);
      }
    }
    spent += static_cast<double>(config_.base_txn_time + net_lat + faults);
    ++txns;
    tx_to_vm += config_.request_bytes;
    rx_from_vm += config_.response_bytes;
  }
  if (tx_to_vm > 0) {
    network_->consume_background(client_node_, accessor_->host_node(), tx_to_vm);
    network_->consume_background(accessor_->host_node(), client_node_, rx_from_vm);
  }
  txns_total_ += txns;
  return txns;
}

}  // namespace agile::workload
