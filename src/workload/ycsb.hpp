// YCSB-over-Redis workload model.
//
// The guest runs an in-memory key-value store whose dataset occupies a
// contiguous range of guest pages (after a guest-OS carve-out). An external
// YCSB client queries keys drawn uniformly (or Zipfian) from the *active*
// prefix of the dataset; the active size is adjustable at runtime, which is
// how the paper's §V-A experiment ramps each VM from a 200 MB to a 6 GB
// working set.
#pragma once

#include <optional>

#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace agile::workload {

struct YcsbConfig {
  Bytes dataset_bytes = 9_GiB;      ///< Redis dataset size.
  Bytes guest_os_bytes = 200_MiB;   ///< Pages below the dataset (guest kernel).
  Bytes active_bytes = 200_MiB;     ///< Queried prefix of the dataset.
  double read_fraction = 0.95;      ///< Reads vs updates.
  double zipf_theta = 0.0;          ///< 0 = uniform (paper's setting).
  SimTime base_op_time = 45;        ///< µs of server CPU per op.
  std::uint32_t concurrency = 8;    ///< Outstanding client requests.
  Bytes request_bytes = 128;        ///< Client → server per op.
  Bytes response_bytes = 1024;      ///< Server → client per op.
};

class YcsbWorkload final : public Workload {
 public:
  YcsbWorkload(PageAccessor* accessor, net::Network* network,
               net::NodeId client_node, YcsbConfig config, Rng rng);

  std::uint64_t run_quantum(SimTime dt, std::uint32_t tick) override;
  void load(std::uint32_t tick) override;
  std::uint64_t ops_total() const override { return ops_total_; }
  const char* kind() const override { return "ycsb"; }

  /// Ramps the queried prefix (clamped to the dataset size).
  void set_active_bytes(Bytes bytes);
  Bytes active_bytes() const { return active_pages_ * kPageSize; }

  Bytes dataset_bytes() const { return config_.dataset_bytes; }

  /// First guest page of the dataset.
  PageIndex dataset_base() const { return base_page_; }
  std::uint64_t dataset_pages() const { return dataset_pages_; }

 private:
  PageIndex pick_page();

  PageAccessor* accessor_;
  net::Network* network_;
  net::NodeId client_node_;
  YcsbConfig config_;
  Rng rng_;

  PageIndex base_page_;
  std::uint64_t dataset_pages_;
  std::uint64_t active_pages_;
  std::optional<ZipfSampler> zipf_;
  std::uint64_t ops_total_ = 0;
};

}  // namespace agile::workload
