#include "wss/watermark_trigger.hpp"

#include <algorithm>
#include <numeric>

#include "trace/trace.hpp"

namespace agile::wss {

TriggerDecision evaluate_watermarks(Bytes host_ram, Bytes host_os_bytes,
                                    const std::vector<VmPressure>& vms,
                                    const WatermarkConfig& config) {
  AGILE_CHECK(config.low > 0 && config.low <= config.high && config.high <= 1.0);
  TriggerDecision decision;
  Bytes aggregate = host_os_bytes;
  for (const VmPressure& v : vms) aggregate += v.wss;
  decision.aggregate_wss = aggregate;
  decision.aggregate_after = aggregate;

  const auto high = static_cast<Bytes>(config.high * static_cast<double>(host_ram));
  const auto low = static_cast<Bytes>(config.low * static_cast<double>(host_ram));
  if (aggregate <= high) return decision;
  decision.pressure = true;
  AGILE_TRACE_INSTANT("wss", "watermark_pressure", 0,
                      static_cast<double>(aggregate));

  // Fewest VMs: evict the largest working sets first until we're under the
  // low watermark (ties broken by input order for determinism).
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return vms[a].wss > vms[b].wss;
  });
  Bytes remaining = aggregate;
  for (std::size_t idx : order) {
    if (remaining <= low) break;
    decision.victims.push_back(idx);
    remaining -= vms[idx].wss;
  }
  decision.aggregate_after = remaining;
  // Every VM is gone and we are still over the low watermark: the host OS
  // alone holds the pressure and no amount of migration can relieve it.
  decision.insufficient = remaining > low;
  return decision;
}

std::vector<std::size_t> place_victims(const std::vector<Bytes>& victim_wss,
                                       const std::vector<HostHeadroom>& hosts,
                                       double low_watermark) {
  return place_victims(victim_wss, hosts, low_watermark,
                       PlacementPolicy::kBestFit, 0);
}

std::vector<std::size_t> place_victims(const std::vector<Bytes>& victim_wss,
                                       const std::vector<HostHeadroom>& hosts,
                                       double low_watermark,
                                       PlacementPolicy policy,
                                       std::uint32_t source_rack) {
  AGILE_CHECK(low_watermark > 0 && low_watermark <= 1.0);
  // Remaining admissible bytes per candidate (0 when already at/over low).
  std::vector<Bytes> headroom(hosts.size(), 0);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const auto low =
        static_cast<Bytes>(low_watermark * static_cast<double>(hosts[i].ram));
    if (hosts[i].committed < low) headroom[i] = low - hosts[i].committed;
  }
  // Best-fit among candidates for which `eligible(i)` holds; kNoPlacement
  // when none admits the victim. Strictly-smaller comparison keeps the
  // earliest candidate on ties, so placement is deterministic for any input
  // order.
  auto best_fit = [&](Bytes wss, auto&& eligible) {
    std::size_t best = kNoPlacement;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (!eligible(i) || headroom[i] < wss) continue;
      if (best == kNoPlacement || headroom[i] < headroom[best]) best = i;
    }
    return best;
  };
  std::vector<std::size_t> placement(victim_wss.size(), kNoPlacement);
  for (std::size_t v = 0; v < victim_wss.size(); ++v) {
    std::size_t best = kNoPlacement;
    if (policy == PlacementPolicy::kRackAware) {
      // Keep the move off the core tier when the source rack can take it;
      // only then consider remote racks.
      best = best_fit(victim_wss[v], [&](std::size_t i) {
        return hosts[i].rack == source_rack;
      });
      if (best == kNoPlacement) {
        best = best_fit(victim_wss[v], [&](std::size_t i) {
          return hosts[i].rack != source_rack;
        });
      }
    } else {
      best = best_fit(victim_wss[v], [](std::size_t) { return true; });
    }
    if (best == kNoPlacement) continue;
    placement[v] = best;
    headroom[best] -= victim_wss[v];
  }
  return placement;
}

}  // namespace agile::wss
