#include "wss/watermark_trigger.hpp"

#include <algorithm>
#include <numeric>

#include "trace/trace.hpp"

namespace agile::wss {

TriggerDecision evaluate_watermarks(Bytes host_ram, Bytes host_os_bytes,
                                    const std::vector<VmPressure>& vms,
                                    const WatermarkConfig& config) {
  AGILE_CHECK(config.low > 0 && config.low <= config.high && config.high <= 1.0);
  TriggerDecision decision;
  Bytes aggregate = host_os_bytes;
  for (const VmPressure& v : vms) aggregate += v.wss;
  decision.aggregate_wss = aggregate;
  decision.aggregate_after = aggregate;

  const auto high = static_cast<Bytes>(config.high * static_cast<double>(host_ram));
  const auto low = static_cast<Bytes>(config.low * static_cast<double>(host_ram));
  if (aggregate <= high) return decision;
  decision.pressure = true;
  AGILE_TRACE_INSTANT("wss", "watermark_pressure", 0,
                      static_cast<double>(aggregate));

  // Fewest VMs: evict the largest working sets first until we're under the
  // low watermark (ties broken by input order for determinism).
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return vms[a].wss > vms[b].wss;
  });
  Bytes remaining = aggregate;
  for (std::size_t idx : order) {
    if (remaining <= low) break;
    decision.victims.push_back(idx);
    remaining -= vms[idx].wss;
  }
  decision.aggregate_after = remaining;
  return decision;
}

}  // namespace agile::wss
