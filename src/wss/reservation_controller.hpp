// Transparent working-set tracking (paper §IV-D).
//
// The hypervisor cannot see guest access bits cheaply, so the tool infers
// working-set fit from *swap activity on the per-VM swap device* (iostat):
// if the swap rate S exceeds a threshold τ the reservation is too small —
// grow it by β > 1; if S is at or below τ the VM may be over-provisioned —
// shrink by α < 1 (we measure S as the swap-IN rate: reclaim write-back is
// the controller's own doing and must not read as pressure). Adjustments run
// every 2 s until the estimate stabilizes
// (the controller starts oscillating around the working set instead of
// trending), then relax to every 30 s; sustained pressure snaps back to the
// fast cadence.
#pragma once

#include <memory>
#include <vector>

#include "host/cluster.hpp"
#include "metrics/timeseries.hpp"
#include "stats/stats.hpp"
#include "vm/virtual_machine.hpp"

namespace agile::wss {

struct WssConfig {
  double alpha = 0.95;                ///< Shrink factor (< 1).
  double beta = 1.03;                 ///< Grow factor (> 1).
  double tau_bytes_per_sec = 4096;    ///< τ: swap-in-rate threshold (4 KB/s).
  SimTime fast_interval = sec(2);
  SimTime slow_interval = sec(30);
  /// Stability detection: the estimate is "stable" once the reservation's
  /// max/min ratio over the last `stability_window` adjustments falls below
  /// `stability_ratio` (it oscillates around the working set instead of
  /// trending toward it). 0 auto-derives the ratio from α and β so the
  /// controller's own oscillation amplitude always fits the window.
  std::uint32_t stability_window = 8;
  double stability_ratio = 0;
  double pressure_factor = 16.0;      ///< "High" swap rate: S > factor·τ.
  /// Consecutive high intervals (in slow mode) before snapping back to the
  /// fast cadence. One burst is just the α-shrink overshooting and re-faulting
  /// its own margin; sustained bursts mean the working set actually grew.
  std::uint32_t pressure_streak = 2;
  Bytes min_reservation = 64_MiB;
  Bytes max_reservation = 0;          ///< 0: the VM's memory size.
};

class ReservationController {
 public:
  ReservationController(host::Cluster* cluster, vm::VirtualMachine* machine,
                        WssConfig config = {});
  ~ReservationController();

  ReservationController(const ReservationController&) = delete;
  ReservationController& operator=(const ReservationController&) = delete;

  void start();
  void stop();
  bool running() const { return task_ != nullptr; }

  /// Current working-set estimate == the reservation the controller set.
  Bytes wss_estimate() const { return machine_->memory().reservation(); }

  /// True once the controller has relaxed to the slow cadence.
  bool stable() const { return stable_; }

  std::uint64_t adjustments() const { return adjustments_; }

  /// Binds stats cells updated at every adjustment: the current estimate
  /// (gauge, bytes), the adjustment count (counter), and the observed
  /// swap-in rate distribution (histogram, bytes/s). Any pointer may be
  /// null; the caller owns the cells (typically a stats::Registry).
  void bind_stats(stats::Gauge* estimate, stats::Counter* adjustments,
                  stats::Histogram* swap_rate) {
    stats_estimate_ = estimate;
    stats_adjustments_ = adjustments;
    stats_swap_rate_ = swap_rate;
  }

  /// Reservation over time (simulated seconds) — Figure 9's main series.
  const metrics::TimeSeries& reservation_series() const { return series_; }
  /// Observed swap rate (bytes/s) at each adjustment.
  const metrics::TimeSeries& swap_rate_series() const { return rate_series_; }

 private:
  void on_interval(SimTime now);

  host::Cluster* cluster_;
  vm::VirtualMachine* machine_;
  WssConfig config_;
  std::shared_ptr<sim::PeriodicTask> task_;
  SimTime last_time_ = 0;
  bool stable_ = false;
  std::vector<Bytes> recent_;  ///< Ring of the last `stability_window` values.
  std::uint32_t high_streak_ = 0;
  std::uint64_t adjustments_ = 0;
  stats::Gauge* stats_estimate_ = nullptr;
  stats::Counter* stats_adjustments_ = nullptr;
  stats::Histogram* stats_swap_rate_ = nullptr;
  metrics::TimeSeries series_{"reservation_bytes"};
  metrics::TimeSeries rate_series_{"swap_rate_bps"};
};

}  // namespace agile::wss
