// Migration trigger and VM selection (paper §III-B).
//
// Memory pressure is declared when the aggregate working-set estimate of a
// host's VMs (plus the host OS) crosses a *high watermark* fraction of its
// RAM. The selector then picks the fewest VMs whose departure brings the
// aggregate under the *low watermark*, so no further migration is needed
// until the high watermark is crossed again. Greedy-largest-first over WSS
// yields the minimum count (all weights positive and we only need the count
// minimized, not the moved bytes).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::wss {

struct WatermarkConfig {
  double high = 0.90;  ///< Fraction of host RAM.
  double low = 0.75;
};

struct VmPressure {
  std::string name;
  Bytes wss = 0;
};

struct TriggerDecision {
  bool pressure = false;                 ///< High watermark crossed.
  std::vector<std::size_t> victims;      ///< Indices into the input entries.
  Bytes aggregate_wss = 0;
  Bytes aggregate_after = 0;             ///< After the victims leave.
};

/// Pure decision logic (unit-testable without a cluster).
TriggerDecision evaluate_watermarks(Bytes host_ram, Bytes host_os_bytes,
                                    const std::vector<VmPressure>& vms,
                                    const WatermarkConfig& config);

}  // namespace agile::wss
