// Migration trigger and VM selection (paper §III-B).
//
// Memory pressure is declared when the aggregate working-set estimate of a
// host's VMs (plus the host OS) crosses a *high watermark* fraction of its
// RAM. The selector then picks the fewest VMs whose departure brings the
// aggregate under the *low watermark*, so no further migration is needed
// until the high watermark is crossed again. Greedy-largest-first over WSS
// yields the minimum count (all weights positive and we only need the count
// minimized, not the moved bytes).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::wss {

struct WatermarkConfig {
  double high = 0.90;  ///< Fraction of host RAM.
  double low = 0.75;
};

struct VmPressure {
  std::string name;
  Bytes wss = 0;
};

struct TriggerDecision {
  bool pressure = false;                 ///< High watermark crossed.
  std::vector<std::size_t> victims;      ///< Indices into the input entries.
  Bytes aggregate_wss = 0;
  Bytes aggregate_after = 0;             ///< After the victims leave.
  /// Evicting every VM still leaves the aggregate above the low watermark
  /// (the host OS alone exceeds it, or there were no VMs to evict).
  /// Migration cannot fully relieve this host.
  bool insufficient = false;
};

/// Pure decision logic (unit-testable without a cluster).
TriggerDecision evaluate_watermarks(Bytes host_ram, Bytes host_os_bytes,
                                    const std::vector<VmPressure>& vms,
                                    const WatermarkConfig& config);

/// A destination candidate for victim placement. `committed` is everything
/// already claimed against its RAM: host OS, the working sets of resident
/// VMs, and reservations of migrations already in flight toward it.
struct HostHeadroom {
  std::string name;
  Bytes ram = 0;
  Bytes committed = 0;
  /// Rack the candidate sits in (only read by PlacementPolicy::kRackAware).
  std::uint32_t rack = 0;
};

/// Returned by `place_victims` for a victim no candidate can admit.
inline constexpr std::size_t kNoPlacement = static_cast<std::size_t>(-1);

/// Pure destination placement: assigns each victim (its WSS, in input order)
/// to the candidate host with the least headroom that still admits it below
/// `low_watermark × ram` — best-fit, so big victims keep their options open.
/// Ties break by candidate input order for determinism. Each placement
/// reserves the victim's WSS against the chosen candidate before the next
/// victim is placed, so one decision cannot overcommit a destination.
/// Victims that fit nowhere get `kNoPlacement`.
std::vector<std::size_t> place_victims(const std::vector<Bytes>& victim_wss,
                                       const std::vector<HostHeadroom>& hosts,
                                       double low_watermark);

/// Destination preference for the policy-selecting overload.
enum class PlacementPolicy {
  kBestFit,    ///< The default global best-fit above.
  kRackAware,  ///< Best-fit within the source rack first, then global.
};

/// Policy-selecting variant. kBestFit reproduces the default overload
/// exactly (source_rack is ignored). kRackAware places each victim best-fit
/// among candidates in `source_rack` when any of them admits it — keeping
/// migration traffic off the oversubscribed core tier — and falls back to
/// best-fit over the remaining candidates otherwise. Tie-breaking and
/// reservation semantics match the default policy.
std::vector<std::size_t> place_victims(const std::vector<Bytes>& victim_wss,
                                       const std::vector<HostHeadroom>& hosts,
                                       double low_watermark,
                                       PlacementPolicy policy,
                                       std::uint32_t source_rack);

}  // namespace agile::wss
