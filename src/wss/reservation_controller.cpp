#include "wss/reservation_controller.hpp"

#include <algorithm>

#include "trace/trace.hpp"
#include "util/log.hpp"

namespace agile::wss {

ReservationController::ReservationController(host::Cluster* cluster,
                                             vm::VirtualMachine* machine,
                                             WssConfig config)
    : cluster_(cluster), machine_(machine), config_(config) {
  AGILE_CHECK(cluster_ != nullptr && machine_ != nullptr);
  AGILE_CHECK(config_.alpha > 0 && config_.alpha < 1);
  AGILE_CHECK(config_.beta > 1);
  AGILE_CHECK(config_.stability_window >= 2);
  if (config_.stability_ratio == 0) {
    // Around the working set the estimate swings by roughly one grow and one
    // shrink step; admit that amplitude with a small margin.
    config_.stability_ratio = std::max(1.2, (config_.beta / config_.alpha) * 1.15);
  }
  AGILE_CHECK(config_.stability_ratio > 1.0);
  if (config_.max_reservation == 0) {
    config_.max_reservation = machine_->config().memory;
  }
}

ReservationController::~ReservationController() { stop(); }

void ReservationController::start() {
  AGILE_CHECK_MSG(task_ == nullptr, "controller already running");
  last_time_ = cluster_->simulation().now();
  // Zero the iostat window so the first interval measures only its own span.
  machine_->memory().swap_device()->mutable_stats().reset_window();
  task_ = cluster_->simulation().schedule_periodic(
      config_.fast_interval, [this](SimTime now) { on_interval(now); });
}

void ReservationController::stop() {
  if (task_ != nullptr) {
    task_->cancel();
    task_.reset();
  }
}

void ReservationController::on_interval(SimTime now) {
  storage::DeviceStats& stats = machine_->memory().swap_device()->mutable_stats();
  double span = to_seconds(now - last_time_);
  last_time_ = now;
  if (span <= 0) return;
  // S is the swap-IN rate: reads mean the guest is re-faulting pages it
  // needs (reservation too small). Write-backs are excluded — they are the
  // controller's own reclaim of cold pages and would otherwise read as
  // pressure, locking the estimate at the resident set instead of the
  // working set.
  double rate = static_cast<double>(stats.window_bytes_read) / span;
  stats.reset_window();

  Bytes reservation = machine_->memory().reservation();
  bool grow = rate > config_.tau_bytes_per_sec;
  if (grow) {
    reservation = static_cast<Bytes>(static_cast<double>(reservation) * config_.beta);
  } else {
    reservation = static_cast<Bytes>(static_cast<double>(reservation) * config_.alpha);
  }
  Bytes clamped = std::clamp(reservation, config_.min_reservation,
                             config_.max_reservation);
  machine_->memory().set_reservation(clamped);
  ++adjustments_;
  AGILE_TRACE_INSTANT("wss", grow ? "grow" : "shrink",
                      machine_->config().trace_id,
                      static_cast<double>(clamped));
  AGILE_TRACE_COUNTER("wss", "reservation_bytes", machine_->config().trace_id,
                      clamped);
  AGILE_TRACE_COUNTER("wss", "swapin_rate", machine_->config().trace_id, rate);

  // Cadence control: a trending estimate keeps the 2 s cadence; once it
  // merely oscillates around the working set we relax to 30 s. A value
  // pinned at a clamp while still pushing outward is *hungry*, not stable —
  // flatness there must not count as convergence.
  bool pinned = (grow && clamped < reservation) || (!grow && clamped > reservation);
  if (pinned && !stable_) recent_.clear();
  reservation = clamped;
  recent_.push_back(reservation);
  if (recent_.size() > config_.stability_window) {
    recent_.erase(recent_.begin());
  }
  if (!stable_ && recent_.size() == config_.stability_window) {
    Bytes lo = *std::min_element(recent_.begin(), recent_.end());
    Bytes hi = *std::max_element(recent_.begin(), recent_.end());
    if (static_cast<double>(hi) <=
        static_cast<double>(lo) * config_.stability_ratio) {
      stable_ = true;
      task_->set_period(config_.slow_interval);
      AGILE_TRACE_INSTANT("wss", "stable", machine_->config().trace_id,
                          static_cast<double>(reservation));
      AGILE_LOG_INFO("wss %s: stable at %.0f MiB, relaxing to %.0f s cadence",
                     machine_->name().c_str(), to_mib(reservation),
                     to_seconds(config_.slow_interval));
    }
  }
  if (rate > config_.pressure_factor * config_.tau_bytes_per_sec) {
    ++high_streak_;
  } else {
    high_streak_ = 0;
  }
  if (stable_ && high_streak_ >= config_.pressure_streak) {
    stable_ = false;
    recent_.clear();
    high_streak_ = 0;
    task_->set_period(config_.fast_interval);
    AGILE_TRACE_INSTANT("wss", "fast_cadence", machine_->config().trace_id,
                        rate);
    AGILE_LOG_INFO("wss %s: sustained pressure, back to fast cadence",
                   machine_->name().c_str());
  }

  series_.add(to_seconds(now), static_cast<double>(reservation));
  rate_series_.add(to_seconds(now), rate);
  if (stats_estimate_ != nullptr) {
    stats_estimate_->set(static_cast<std::int64_t>(reservation));
  }
  if (stats_adjustments_ != nullptr) stats_adjustments_->inc();
  if (stats_swap_rate_ != nullptr) {
    stats_swap_rate_->observe(static_cast<std::int64_t>(rate));
  }
}

}  // namespace agile::wss
