#include "mem/guest_memory.hpp"

#include <algorithm>

namespace agile::mem {

namespace {
constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);
constexpr SimTime kMinorFaultCost = 1;  // µs: zero-fill allocation
}  // namespace

GuestMemory::GuestMemory(const GuestMemoryConfig& config,
                         swap::SwapDevice* swap_device, Rng rng)
    : config_(config),
      page_count_(pages_for(config.size)),
      reservation_pages_(std::max<std::uint64_t>(1, config.reservation / kPageSize)),
      swap_(swap_device),
      rng_(rng) {
  AGILE_CHECK(page_count_ > 0);
  AGILE_CHECK(swap_ != nullptr);
  AGILE_CHECK(config_.eviction_samples > 0);
  state_.assign(page_count_, static_cast<std::uint8_t>(PageState::kUntouched));
  last_access_.assign(page_count_, 0);
  slot_.assign(page_count_, swap::kNoSlot);
  swap_copy_clean_.reset(page_count_, false);
  resident_pos_.assign(page_count_, kNoPos);
  resident_.reserve(std::min<std::uint64_t>(page_count_, reservation_pages_ + 1));
}

void GuestMemory::set_swap_device(swap::SwapDevice* device) {
  AGILE_CHECK(device != nullptr);
  swap_ = device;
}

std::uint64_t GuestMemory::untouched_pages() const {
  return page_count_ - resident_.size() - swapped_count_ - remote_count_;
}

SimTime GuestMemory::touch(PageIndex p, bool write, std::uint32_t tick) {
  AGILE_CHECK(p < page_count_);
  auto st = static_cast<PageState>(state_[p]);
  // Resident read is by far the hottest case (hundreds of millions per
  // paper-scale run): one state load, one LRU-stamp store, out.
  if (st == PageState::kResident && !write) {
    last_access_[p] = tick;
    return 0;
  }
  AGILE_CHECK_MSG(st != PageState::kRemote,
                  "kRemote access must go through the migration fault engine");
  SimTime latency = 0;
  switch (st) {
    case PageState::kResident:
      break;
    case PageState::kUntouched:
      ++stats_.minor_faults;
      make_resident(p, tick);
      latency = kMinorFaultCost;
      break;
    case PageState::kSwapped: {
      ++stats_.major_faults;
      ++stats_.swap_ins;
      latency = swap_->read_page(slot_[p]);
      --swapped_count_;
      make_resident(p, tick);
      // The swap slot now caches a clean copy (swap cache semantics).
      swap_copy_clean_.set(p);
      break;
    }
    case PageState::kRemote:
      break;  // unreachable
  }
  last_access_[p] = tick;
  if (write) {
    if (slot_[p] != swap::kNoSlot) {
      // Contents diverge from the swap copy; drop the swap-cache entry.
      swap_->free_slot(slot_[p]);
      slot_[p] = swap::kNoSlot;
      swap_copy_clean_.clear(p);
    }
    if (dirty_log_ != nullptr) dirty_log_->set(p);
  }
  return latency;
}

void GuestMemory::prefill(std::uint64_t n, std::uint32_t tick) {
  AGILE_CHECK(n <= page_count_);
  for (PageIndex p = 0; p < n; ++p) touch(p, /*write=*/true, tick);
}

void GuestMemory::set_reservation(Bytes bytes) {
  reservation_pages_ = std::max<std::uint64_t>(1, bytes / kPageSize);
}

std::uint64_t GuestMemory::enforce_reservation(std::uint64_t max_evictions) {
  std::uint64_t evicted = 0;
  while (resident_.size() > reservation_pages_ && evicted < max_evictions) {
    evict_one();
    ++evicted;
  }
  return evicted;
}

SimTime GuestMemory::swap_in_for_transfer(PageIndex p, std::uint32_t tick,
                                          bool sequential) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK(state(p) == PageState::kSwapped);
  ++stats_.swap_ins;
  SimTime latency = sequential ? swap_->read_page_sequential(slot_[p])
                               : swap_->read_page(slot_[p]);
  --swapped_count_;
  make_resident(p, tick);
  last_access_[p] = tick;
  swap_copy_clean_.set(p);  // read-only: swap copy stays valid
  return latency;
}

void GuestMemory::release_page(PageIndex p) {
  AGILE_CHECK(p < page_count_);
  switch (state(p)) {
    case PageState::kResident:
      remove_from_resident(p);
      if (slot_[p] != swap::kNoSlot) {
        swap_->free_slot(slot_[p]);
        slot_[p] = swap::kNoSlot;
        swap_copy_clean_.clear(p);
      }
      break;
    case PageState::kUntouched:
      break;
    case PageState::kSwapped:
      // Cold page: the copy on the (possibly portable) swap device survives;
      // whoever owns the namespace decides when slots die.
      --swapped_count_;
      break;
    case PageState::kRemote:
      return;  // already gone
  }
  state_[p] = static_cast<std::uint8_t>(PageState::kRemote);
  ++remote_count_;
}

void GuestMemory::mark_all_remote() {
  AGILE_CHECK_MSG(resident_.empty() && swapped_count_ == 0,
                  "mark_all_remote expects a fresh destination memory");
  std::fill(state_.begin(), state_.end(),
            static_cast<std::uint8_t>(PageState::kRemote));
  remote_count_ = page_count_;
}

void GuestMemory::install_resident(PageIndex p, std::uint32_t tick) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK_MSG(state(p) == PageState::kRemote, "double install");
  --remote_count_;
  ++stats_.remote_installs;
  make_resident(p, tick);
  last_access_[p] = tick;
}

void GuestMemory::install_swapped(PageIndex p, swap::SwapSlot s) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK_MSG(state(p) == PageState::kRemote, "double install");
  AGILE_CHECK(s != swap::kNoSlot);
  --remote_count_;
  ++stats_.remote_installs;
  state_[p] = static_cast<std::uint8_t>(PageState::kSwapped);
  slot_[p] = s;
  swap_copy_clean_.set(p);
  ++swapped_count_;
}

void GuestMemory::install_untouched(PageIndex p) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK_MSG(state(p) == PageState::kRemote, "double install");
  --remote_count_;
  state_[p] = static_cast<std::uint8_t>(PageState::kUntouched);
}

void GuestMemory::receive_overwrite(PageIndex p, std::uint32_t tick) {
  AGILE_CHECK(p < page_count_);
  switch (state(p)) {
    case PageState::kRemote:
      install_resident(p, tick);
      return;
    case PageState::kResident:
      break;
    case PageState::kSwapped:
      --swapped_count_;
      make_resident(p, tick);
      break;
    case PageState::kUntouched:
      make_resident(p, tick);
      return;  // fresh page, no slot possible
  }
  last_access_[p] = tick;
  if (slot_[p] != swap::kNoSlot) {
    // The incoming copy supersedes the swap copy.
    swap_->free_slot(slot_[p]);
    slot_[p] = swap::kNoSlot;
    swap_copy_clean_.clear(p);
  }
}

void GuestMemory::invalidate_to_remote(PageIndex p, bool free_slot) {
  AGILE_CHECK(p < page_count_);
  switch (state(p)) {
    case PageState::kRemote:
      return;  // never installed; nothing stale to drop
    case PageState::kResident:
      remove_from_resident(p);
      break;
    case PageState::kSwapped:
      --swapped_count_;
      break;
    case PageState::kUntouched:
      break;
  }
  if (slot_[p] != swap::kNoSlot) {
    if (free_slot) swap_->free_slot(slot_[p]);
    slot_[p] = swap::kNoSlot;
    swap_copy_clean_.clear(p);
  }
  state_[p] = static_cast<std::uint8_t>(PageState::kRemote);
  ++remote_count_;
}

void GuestMemory::teardown(bool free_slots) {
  for (PageIndex p = 0; p < page_count_; ++p) {
    switch (state(p)) {
      case PageState::kResident:
        remove_from_resident(p);
        break;
      case PageState::kSwapped:
        --swapped_count_;
        break;
      case PageState::kUntouched:
      case PageState::kRemote:
        break;
    }
    if (state(p) != PageState::kRemote) {
      state_[p] = static_cast<std::uint8_t>(PageState::kRemote);
      ++remote_count_;
    }
    if (free_slots && slot_[p] != swap::kNoSlot) {
      swap_->free_slot(slot_[p]);
      slot_[p] = swap::kNoSlot;
      swap_copy_clean_.clear(p);
    }
  }
}

void GuestMemory::make_resident(PageIndex p, std::uint32_t tick) {
  AGILE_CHECK(state(p) != PageState::kResident);
  while (resident_.size() >= reservation_pages_) evict_one();
  state_[p] = static_cast<std::uint8_t>(PageState::kResident);
  resident_pos_[p] = static_cast<std::uint32_t>(resident_.size());
  resident_.push_back(static_cast<std::uint32_t>(p));
  last_access_[p] = tick;
}

void GuestMemory::remove_from_resident(PageIndex p) {
  std::uint32_t pos = resident_pos_[p];
  AGILE_CHECK(pos != kNoPos);
  std::uint32_t last = resident_.back();
  resident_[pos] = last;
  resident_pos_[last] = pos;
  resident_.pop_back();
  resident_pos_[p] = kNoPos;
}

PageIndex GuestMemory::pick_victim() {
  AGILE_CHECK(!resident_.empty());
  // Sampled-LRU inner loop: hoist the table pointers and the current best's
  // stamp into locals so each sample costs two indexed loads, not four.
  const std::uint32_t* const resident = resident_.data();
  const std::uint32_t* const last_access = last_access_.data();
  const std::uint64_t n = resident_.size();
  const std::uint32_t samples = config_.eviction_samples;
  PageIndex best = resident[rng_.next_below(n)];
  std::uint32_t best_access = last_access[best];
  for (std::uint32_t i = 1; i < samples; ++i) {
    PageIndex cand = resident[rng_.next_below(n)];
    std::uint32_t cand_access = last_access[cand];
    if (cand_access < best_access) {
      best = cand;
      best_access = cand_access;
    }
  }
  return best;
}

void GuestMemory::evict_page(PageIndex p) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK(state(p) == PageState::kResident);
  remove_from_resident(p);
  if (slot_[p] != swap::kNoSlot && swap_copy_clean_.test(p)) {
    ++stats_.clean_drops;  // swap copy still valid; no I/O
  } else {
    if (slot_[p] == swap::kNoSlot) slot_[p] = swap_->allocate_slot();
    swap_->write_page(slot_[p]);  // write-behind
    swap_copy_clean_.set(p);
    ++stats_.swap_outs;
  }
  state_[p] = static_cast<std::uint8_t>(PageState::kSwapped);
  ++swapped_count_;
}

void GuestMemory::evict_one() { evict_page(pick_victim()); }

std::uint64_t GuestMemory::true_working_set_pages(
    std::uint32_t now_tick, std::uint32_t window_ticks) const {
  std::uint64_t count = 0;
  for (PageIndex p = 0; p < page_count_; ++p) {
    auto st = static_cast<PageState>(state_[p]);
    if (st == PageState::kUntouched) continue;
    if (now_tick - last_access_[p] <= window_ticks) ++count;
  }
  return count;
}

void GuestMemory::check_consistency() const {
  std::uint64_t resident = 0, swapped = 0, remote = 0;
  for (PageIndex p = 0; p < page_count_; ++p) {
    switch (static_cast<PageState>(state_[p])) {
      case PageState::kResident:
        ++resident;
        AGILE_CHECK(resident_pos_[p] != kNoPos);
        AGILE_CHECK(resident_[resident_pos_[p]] == p);
        break;
      case PageState::kSwapped:
        ++swapped;
        AGILE_CHECK(slot_[p] != swap::kNoSlot);
        AGILE_CHECK(resident_pos_[p] == kNoPos);
        break;
      case PageState::kUntouched:
      case PageState::kRemote:
        if (static_cast<PageState>(state_[p]) == PageState::kRemote) ++remote;
        AGILE_CHECK(resident_pos_[p] == kNoPos);
        break;
    }
    if (swap_copy_clean_.test(p)) AGILE_CHECK(slot_[p] != swap::kNoSlot);
  }
  AGILE_CHECK(resident == resident_.size());
  AGILE_CHECK(swapped == swapped_count_);
  AGILE_CHECK(remote == remote_count_);
}

}  // namespace agile::mem
