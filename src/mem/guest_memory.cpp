#include "mem/guest_memory.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace agile::mem {

namespace {
constexpr std::uint32_t kNoPos = static_cast<std::uint32_t>(-1);
constexpr SimTime kMinorFaultCost = 1;  // µs: zero-fill allocation
}  // namespace

GuestMemory::GuestMemory(const GuestMemoryConfig& config,
                         swap::SwapDevice* swap_device, Rng rng)
    : config_(config),
      page_count_(pages_for(config.size)),
      reservation_pages_(std::max<std::uint64_t>(1, config.reservation / kPageSize)),
      swap_(swap_device),
      rng_(rng) {
  AGILE_CHECK(page_count_ > 0);
  AGILE_CHECK(swap_ != nullptr);
  AGILE_CHECK(config_.eviction_samples > 0);
  AGILE_CHECK(config_.zero_page_fraction >= 0.0 &&
              config_.zero_page_fraction <= 1.0);
  zero_threshold_ = static_cast<std::uint32_t>(
      config_.zero_page_fraction * 10000.0 + 0.5);
  zero_tracking_ = zero_threshold_ > 0;
  state_.assign(page_count_, static_cast<std::uint8_t>(PageState::kUntouched));
  slot_.assign(page_count_, swap::kNoSlot);
  swap_copy_clean_.reset(page_count_, false);
  touched_.reset(page_count_, false);
  swapped_.reset(page_count_, false);
  zero_.reset(page_count_, false);
  page_lru_.assign(page_count_, PageLru{kNoPos, 0});
  resident_.reserve(std::min<std::uint64_t>(page_count_, reservation_pages_ + 1));
  if (audit::enabled()) deep_audit();
}

void GuestMemory::set_swap_device(swap::SwapDevice* device) {
  AGILE_CHECK(device != nullptr);
  swap_ = device;
}

std::uint64_t GuestMemory::untouched_pages() const {
  return page_count_ - touched_.count();
}

SimTime GuestMemory::touch_slow(PageIndex p, bool write, std::uint32_t tick) {
  auto st = static_cast<PageState>(state_[p]);
  AGILE_CHECK_MSG(st != PageState::kRemote,
                  "kRemote access must go through the migration fault engine");
  SimTime latency = 0;
  switch (st) {
    case PageState::kResident:
      break;
    case PageState::kUntouched:
      ++stats_.minor_faults;
      make_resident(p, tick);
      latency = kMinorFaultCost;
      break;
    case PageState::kSwapped: {
      ++stats_.major_faults;
      ++stats_.swap_ins;
      if (trace::sample_counter(stats_.swap_ins)) {
        AGILE_TRACE_COUNTER(trace_component_, "swap_ins", trace_id_,
                            stats_.swap_ins);
      }
      latency = swap_->read_page(slot_[p]);
      swapped_.clear(p);
      make_resident(p, tick);
      // The swap slot now caches a clean copy (swap cache semantics).
      swap_copy_clean_.set(p);
      break;
    }
    case PageState::kRemote:
      break;  // unreachable
  }
  stamp_access(p, tick);
  if (write) {
    if (zero_tracking_) zero_.clear(p);  // written content is not zeroes
    if (slot_[p] != swap::kNoSlot) {
      // Contents diverge from the swap copy; drop the swap-cache entry.
      swap_->free_slot(slot_[p]);
      slot_[p] = swap::kNoSlot;
      swap_copy_clean_.clear(p);
    }
    if (dirty_log_ != nullptr) dirty_log_->set(p);
  }
  return latency;
}

void GuestMemory::prefill(std::uint64_t n, std::uint32_t tick) {
  AGILE_CHECK(n <= page_count_);
  AGILE_TRACE_SPAN(trace_component_, "prefill", trace_id_,
                   static_cast<double>(n));
  for (PageIndex p = 0; p < n; ++p) {
    touch(p, /*write=*/true, tick);
    // Marked after the touch (which clears the bit): a configured fraction of
    // prefilled pages holds all-zero content until the guest writes to it.
    if (zero_tracking_ && zero_selected(p)) zero_.set(p);
  }
}

void GuestMemory::set_reservation(Bytes bytes) {
  reservation_pages_ = std::max<std::uint64_t>(1, bytes / kPageSize);
}

std::uint64_t GuestMemory::enforce_reservation(std::uint64_t max_evictions) {
  std::uint64_t evicted = 0;
  while (resident_.size() > reservation_pages_ && evicted < max_evictions) {
    evict_one();
    ++evicted;
  }
  return evicted;
}

SimTime GuestMemory::swap_in_for_transfer(PageIndex p, std::uint32_t tick,
                                          bool sequential) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK(state(p) == PageState::kSwapped);
  ++stats_.swap_ins;
  if (trace::sample_counter(stats_.swap_ins)) {
    AGILE_TRACE_COUNTER(trace_component_, "swap_ins", trace_id_,
                        stats_.swap_ins);
  }
  SimTime latency = sequential ? swap_->read_page_sequential(slot_[p])
                               : swap_->read_page(slot_[p]);
  swapped_.clear(p);
  make_resident(p, tick);
  swap_copy_clean_.set(p);  // read-only: swap copy stays valid
  return latency;
}

void GuestMemory::release_page(PageIndex p) {
  AGILE_CHECK(p < page_count_);
  switch (state(p)) {
    case PageState::kResident:
      remove_from_resident(p);
      if (slot_[p] != swap::kNoSlot) {
        swap_->free_slot(slot_[p]);
        slot_[p] = swap::kNoSlot;
        swap_copy_clean_.clear(p);
      }
      break;
    case PageState::kUntouched:
      break;
    case PageState::kSwapped:
      // Cold page: the copy on the (possibly portable) swap device survives;
      // whoever owns the namespace decides when slots die.
      swapped_.clear(p);
      break;
    case PageState::kRemote:
      return;  // already gone
  }
  if (zero_tracking_) zero_.clear(p);  // this memory holds no copy any more
  state_[p] = static_cast<std::uint8_t>(PageState::kRemote);
  touched_.set(p);
  ++remote_count_;
}

void GuestMemory::mark_all_remote() {
  AGILE_CHECK_MSG(resident_.empty() && swapped_.none(),
                  "mark_all_remote expects a fresh destination memory");
  std::fill(state_.begin(), state_.end(),
            static_cast<std::uint8_t>(PageState::kRemote));
  touched_.set_all();
  remote_count_ = page_count_;
  if (audit::enabled()) deep_audit();
}

void GuestMemory::install_resident(PageIndex p, std::uint32_t tick) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK_MSG(state(p) == PageState::kRemote, "double install");
  --remote_count_;
  ++stats_.remote_installs;
  make_resident(p, tick);
}

void GuestMemory::install_swapped(PageIndex p, swap::SwapSlot s) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK_MSG(state(p) == PageState::kRemote, "double install");
  AGILE_CHECK(s != swap::kNoSlot);
  --remote_count_;
  ++stats_.remote_installs;
  state_[p] = static_cast<std::uint8_t>(PageState::kSwapped);
  slot_[p] = s;
  swap_copy_clean_.set(p);
  swapped_.set(p);
  touched_.set(p);
}

void GuestMemory::install_untouched(PageIndex p) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK_MSG(state(p) == PageState::kRemote, "double install");
  AGILE_CHECK(slot_[p] == swap::kNoSlot);
  --remote_count_;
  state_[p] = static_cast<std::uint8_t>(PageState::kUntouched);
  touched_.clear(p);
}

void GuestMemory::install_untouched_range(PageIndex begin, PageIndex end) {
  AGILE_CHECK(begin <= end && end <= page_count_);
  for (PageIndex p = begin; p < end; ++p) {
    if (state(p) == PageState::kRemote) install_untouched(p);
  }
  maybe_deep_audit();
}

void GuestMemory::install_swapped_batch(PageIndex first,
                                        std::span<const swap::SwapSlot> slots) {
  AGILE_CHECK(first + slots.size() <= page_count_);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    install_swapped(first + i, slots[i]);
  }
  maybe_deep_audit();
}

void GuestMemory::receive_overwrite(PageIndex p, std::uint32_t tick) {
  AGILE_CHECK(p < page_count_);
  switch (state(p)) {
    case PageState::kRemote:
      install_resident(p, tick);
      return;
    case PageState::kResident:
      break;
    case PageState::kSwapped:
      swapped_.clear(p);
      make_resident(p, tick);
      break;
    case PageState::kUntouched:
      make_resident(p, tick);
      return;  // fresh page, no slot possible
  }
  stamp_access(p, tick);
  if (zero_tracking_) zero_.clear(p);  // incoming content is unknown
  if (slot_[p] != swap::kNoSlot) {
    // The incoming copy supersedes the swap copy.
    swap_->free_slot(slot_[p]);
    slot_[p] = swap::kNoSlot;
    swap_copy_clean_.clear(p);
  }
}

void GuestMemory::receive_overwrite_range(PageIndex begin, PageIndex end,
                                          std::uint32_t tick) {
  AGILE_CHECK(begin <= end && end <= page_count_);
  // Ascending order matters: each install may evict under the reservation.
  for (PageIndex p = begin; p < end; ++p) receive_overwrite(p, tick);
  maybe_deep_audit();
}

void GuestMemory::invalidate_to_remote(PageIndex p, bool free_slot) {
  AGILE_CHECK(p < page_count_);
  switch (state(p)) {
    case PageState::kRemote:
      return;  // never installed; nothing stale to drop
    case PageState::kResident:
      remove_from_resident(p);
      break;
    case PageState::kSwapped:
      swapped_.clear(p);
      break;
    case PageState::kUntouched:
      break;
  }
  if (slot_[p] != swap::kNoSlot) {
    if (free_slot) swap_->free_slot(slot_[p]);
    slot_[p] = swap::kNoSlot;
    swap_copy_clean_.clear(p);
  }
  if (zero_tracking_) zero_.clear(p);
  state_[p] = static_cast<std::uint8_t>(PageState::kRemote);
  touched_.set(p);
  ++remote_count_;
}

void GuestMemory::invalidate_range_to_remote(PageIndex begin, PageIndex end,
                                             bool free_slot) {
  AGILE_CHECK(begin <= end && end <= page_count_);
  for (PageIndex p = begin; p < end; ++p) invalidate_to_remote(p, free_slot);
  maybe_deep_audit();
}

void GuestMemory::teardown(bool free_slots) {
  AGILE_TRACE_SPAN(trace_component_, "teardown", trace_id_);
  // Per-page work only exists for touched pages: untouched pages hold no
  // frame and no slot. Word-scan the touched runs, then cover the whole state
  // array (untouched spans included) with one bulk fill.
  for (Bitmap::Run run = touched_.next_set_run(0); !run.empty();
       run = touched_.next_set_run(run.end)) {
    for (PageIndex p = run.begin; p < run.end; ++p) {
      if (state(p) == PageState::kResident) remove_from_resident(p);
      if (free_slots && slot_[p] != swap::kNoSlot) {
        swap_->free_slot(slot_[p]);
        slot_[p] = swap::kNoSlot;
        swap_copy_clean_.clear(p);
      }
    }
  }
  std::fill(state_.begin(), state_.end(),
            static_cast<std::uint8_t>(PageState::kRemote));
  remote_count_ = page_count_;
  touched_.set_all();
  swapped_.clear_all();
  zero_.clear_all();
  if (audit::enabled()) deep_audit();
}

void GuestMemory::make_resident(PageIndex p, std::uint32_t tick) {
  AGILE_CHECK(state(p) != PageState::kResident);
  while (resident_.size() >= reservation_pages_) evict_one();
  state_[p] = static_cast<std::uint8_t>(PageState::kResident);
  touched_.set(p);
  page_lru_[p] = PageLru{static_cast<std::uint32_t>(resident_.size()), tick};
  resident_.push_back(ResidentEntry{static_cast<std::uint32_t>(p), tick});
}

void GuestMemory::remove_from_resident(PageIndex p) {
  std::uint32_t pos = page_lru_[p].pos;
  AGILE_CHECK(pos != kNoPos);
  AGILE_DCHECK_EQ(resident_[pos].page, p)
      << "packed LRU position of page " << p << " names another page";
  AGILE_DCHECK_EQ(resident_[pos].stamp, page_lru_[p].stamp)
      << "stamp copies diverge for page " << p;
  ResidentEntry last = resident_.back();
  resident_[pos] = last;
  page_lru_[last.page].pos = pos;
  resident_.pop_back();
  page_lru_[p].pos = kNoPos;
}

PageIndex GuestMemory::pick_victim() {
  AGILE_CHECK(!resident_.empty());
  // Sampled-LRU inner loop: each sample reads one packed {page, stamp}
  // entry — a single random cache line — instead of chasing the page index
  // through the (equally cold) per-page stamp table. The draw order and the
  // first-minimum-wins reduction match the unpacked loop, so the RNG stream
  // and the chosen victim are identical.
  const ResidentEntry* const entries = resident_.data();
  const std::uint64_t n = resident_.size();
  const std::uint32_t samples = config_.eviction_samples;
  ResidentEntry best = entries[rng_.next_below(n)];
  for (std::uint32_t i = 1; i < samples; ++i) {
    ResidentEntry cand = entries[rng_.next_below(n)];
    if (cand.stamp < best.stamp) best = cand;
  }
  return best.page;
}

void GuestMemory::evict_page(PageIndex p) {
  AGILE_CHECK(p < page_count_);
  AGILE_CHECK(state(p) == PageState::kResident);
  AGILE_DCHECK(!swapped_.test(p)) << "resident page " << p << " in swapped bitmap";
  remove_from_resident(p);
  if (slot_[p] != swap::kNoSlot && swap_copy_clean_.test(p)) {
    ++stats_.clean_drops;  // swap copy still valid; no I/O
  } else {
    if (slot_[p] == swap::kNoSlot) slot_[p] = swap_->allocate_slot();
    swap_->write_page(slot_[p]);  // write-behind
    swap_copy_clean_.set(p);
    ++stats_.swap_outs;
  }
  state_[p] = static_cast<std::uint8_t>(PageState::kSwapped);
  swapped_.set(p);
  if (trace::sample_counter(stats_.swap_outs + stats_.clean_drops)) {
    AGILE_TRACE_COUNTER(trace_component_, "evictions", trace_id_,
                        stats_.swap_outs + stats_.clean_drops);
  }
}

void GuestMemory::evict_one() { evict_page(pick_victim()); }

std::uint64_t GuestMemory::true_working_set_pages(
    std::uint32_t now_tick, std::uint32_t window_ticks) const {
  std::uint64_t count = 0;
  // Only touched pages can have a meaningful access stamp; skip untouched
  // spans word-at-a-time instead of testing every page.
  for (Bitmap::Run run = touched_.next_set_run(0); !run.empty();
       run = touched_.next_set_run(run.end)) {
    for (PageIndex p = run.begin; p < run.end; ++p) {
      if (now_tick - page_lru_[p].stamp <= window_ticks) ++count;
    }
  }
  return count;
}

void GuestMemory::deep_audit() const {
  // Reverse direction of the packed-LRU cross-audit: every resident-vector
  // entry must name a resident page whose page_lru_ record points back at
  // this position with an identical stamp copy.
  for (std::uint32_t i = 0; i < resident_.size(); ++i) {
    const ResidentEntry& e = resident_[i];
    AGILE_CHECK_S(e.page < page_count_) << "resident entry " << i << " out of range";
    AGILE_CHECK_S(state(e.page) == PageState::kResident)
        << "resident entry " << i << " names non-resident page " << e.page;
    AGILE_CHECK_S(page_lru_[e.page].pos == i)
        << "page " << e.page << " lru pos " << page_lru_[e.page].pos
        << " does not point back at resident slot " << i;
    AGILE_CHECK_S(page_lru_[e.page].stamp == e.stamp)
        << "stamp copies diverge for page " << e.page;
  }
  touched_.deep_audit();
  swapped_.deep_audit();
  swap_copy_clean_.deep_audit();
  zero_.deep_audit();
  if (!zero_tracking_) {
    AGILE_CHECK_S(zero_.none())
        << "zero-page bits set while tracking is disabled";
  }

  std::uint64_t resident = 0, swapped = 0, remote = 0;
  for (PageIndex p = 0; p < page_count_; ++p) {
    const auto st = static_cast<PageState>(state_[p]);
    switch (st) {
      case PageState::kResident:
        ++resident;
        AGILE_CHECK(page_lru_[p].pos != kNoPos);
        AGILE_CHECK(resident_[page_lru_[p].pos].page == p);
        AGILE_CHECK(resident_[page_lru_[p].pos].stamp == page_lru_[p].stamp);
        break;
      case PageState::kSwapped:
        ++swapped;
        AGILE_CHECK(slot_[p] != swap::kNoSlot);
        AGILE_CHECK(page_lru_[p].pos == kNoPos);
        break;
      case PageState::kUntouched:
        AGILE_CHECK(slot_[p] == swap::kNoSlot);
        AGILE_CHECK(page_lru_[p].pos == kNoPos);
        break;
      case PageState::kRemote:
        ++remote;
        AGILE_CHECK(page_lru_[p].pos == kNoPos);
        break;
    }
    AGILE_CHECK(touched_.test(p) == (st != PageState::kUntouched));
    AGILE_CHECK(swapped_.test(p) == (st == PageState::kSwapped));
    if (swap_copy_clean_.test(p)) AGILE_CHECK(slot_[p] != swap::kNoSlot);
    if (zero_.test(p)) {
      // A zero mark asserts "this memory holds an all-zero copy": only pages
      // with a local copy qualify.
      AGILE_CHECK(st == PageState::kResident || st == PageState::kSwapped);
    }
  }
  AGILE_CHECK(resident == resident_.size());
  AGILE_CHECK(swapped == swapped_.count());
  AGILE_CHECK(remote == remote_count_);
  AGILE_CHECK(page_count_ - touched_.count() == untouched_pages());
  if (dirty_log_ != nullptr) {
    AGILE_CHECK_S(dirty_log_->size() == page_count_)
        << "dirty log size " << dirty_log_->size() << " != page count";
  }
}

}  // namespace agile::mem
