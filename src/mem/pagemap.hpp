// Userspace page-table view, mirroring /proc/<pid>/pagemap.
//
// The Migration Manager never manipulates guest memory directly during the
// pre-copy scan; like the paper's implementation it *reads the PTE* to learn
// whether a page is present or swapped and, if swapped, its offset on the
// per-VM swap device. This header is that read-only window.
#pragma once

#include "mem/guest_memory.hpp"

namespace agile::mem {

struct PagemapEntry {
  bool present = false;        ///< Page is resident in host memory.
  bool swapped = false;        ///< Page lives on the swap device.
  std::uint64_t swap_offset = 0;  ///< Valid iff `swapped`.
};

class Pagemap {
 public:
  explicit Pagemap(const GuestMemory& mem) : mem_(&mem) {}

  PagemapEntry entry(PageIndex p) const {
    PagemapEntry e;
    switch (mem_->state(p)) {
      case PageState::kResident:
        e.present = true;
        break;
      case PageState::kSwapped:
        e.swapped = true;
        e.swap_offset = mem_->swap_slot(p);
        break;
      case PageState::kUntouched:
      case PageState::kRemote:
        break;
    }
    return e;
  }

  /// End of the maximal run of PTEs sharing page `p`'s class (present,
  /// swapped, or neither), capped at `limit`. The batched live-round scan
  /// reads one entry per run instead of one per page.
  PageIndex entry_run_end(PageIndex p, PageIndex limit) const {
    return mem_->state_run_end(p, limit);
  }

  std::uint64_t page_count() const { return mem_->page_count(); }

 private:
  const GuestMemory* mem_;
};

}  // namespace agile::mem
