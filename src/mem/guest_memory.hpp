// Page-granular guest physical memory model.
//
// Each VM's memory is an array of 4 KiB pages, each in one of four states:
//
//   kUntouched — never written; costs no host frame (zero page).
//   kResident  — backed by a host frame, charged against the VM's cgroup
//                memory reservation.
//   kSwapped   — only copy lives at `swap_slot` on the VM's swap device.
//   kRemote    — (destination side, during the post-copy phase) the page has
//                not arrived yet; an access must go through the migration
//                fault engine. GuestMemory itself never services kRemote.
//
// Reservation enforcement mirrors the cgroup memory controller: making a page
// resident while the reservation is full evicts a victim chosen by sampled
// LRU (K random resident pages, oldest last-access wins — the same flavor of
// approximation the kernel's LRU lists give in practice). Victims with a
// still-valid swap copy are dropped for free; dirty victims are written back
// write-behind, so reclaim itself is cheap but the swap device queue grows —
// thrashing emerges when the working set exceeds the reservation.
//
// The migration dirty log hooks in exactly like KVM's dirty bitmap: when
// attached, every write access sets the page's bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "swap/swap_device.hpp"
#include "util/bitmap.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::mem {

enum class PageState : std::uint8_t {
  kUntouched = 0,
  kResident = 1,
  kSwapped = 2,
  kRemote = 3,
};

struct MemStats {
  std::uint64_t minor_faults = 0;   ///< Untouched → resident allocations.
  std::uint64_t major_faults = 0;   ///< Swap-ins caused by guest access.
  std::uint64_t swap_ins = 0;       ///< All swap-ins (access + migration reads).
  std::uint64_t swap_outs = 0;      ///< Dirty evictions written to swap.
  std::uint64_t clean_drops = 0;    ///< Evictions satisfied without I/O.
  std::uint64_t remote_installs = 0;  ///< Pages installed by the migration path.
};

struct GuestMemoryConfig {
  Bytes size = 1_GiB;            ///< Guest physical memory size.
  Bytes reservation = 1_GiB;     ///< cgroup memory reservation.
  std::uint32_t eviction_samples = 8;  ///< Sampled-LRU candidate count.
  /// Fraction of touched pages whose content is all zeroes (page-cache slack,
  /// zeroed-but-never-reused allocations). Marked deterministically at
  /// prefill by a hash of the page index — never from `rng_`, so enabling it
  /// cannot perturb the eviction-sampling draw order. A guest write clears
  /// the mark. The migration senders elide such pages to a descriptor.
  double zero_page_fraction = 0.0;
};

class GuestMemory {
 public:
  GuestMemory(const GuestMemoryConfig& config, swap::SwapDevice* swap_device,
              Rng rng);

  std::uint64_t page_count() const { return page_count_; }
  Bytes size_bytes() const { return config_.size; }

  PageState state(PageIndex p) const {
    AGILE_CHECK(p < page_count_);
    return static_cast<PageState>(state_[p]);
  }
  bool is_resident(PageIndex p) const { return state(p) == PageState::kResident; }
  bool is_swapped(PageIndex p) const { return state(p) == PageState::kSwapped; }

  std::uint64_t resident_pages() const { return resident_.size(); }
  Bytes resident_bytes() const { return resident_.size() * kPageSize; }
  std::uint64_t swapped_pages() const { return swapped_.count(); }
  std::uint64_t untouched_pages() const;
  std::uint64_t remote_pages() const { return remote_count_; }

  /// Pages currently kSwapped, maintained on every state transition. The
  /// scatter-gather gatherer and slot-handoff sweeps run-scan this instead of
  /// walking the state array page by page.
  const Bitmap& swapped_bitmap() const { return swapped_; }

  /// Pages that ever left kUntouched (equivalently: state != kUntouched).
  /// Word-scanning this keeps teardown and WSS probes O(touched) even on
  /// mostly-untouched memories.
  const Bitmap& touched_bitmap() const { return touched_; }

  /// Zero-page classification (see GuestMemoryConfig::zero_page_fraction).
  /// True when page `p` is touched but its content is all zeroes, so a
  /// migration sender may ship a descriptor instead of the 4 KiB payload.
  /// Always false when tracking is off (the default).
  bool is_zero_page(PageIndex p) const {
    AGILE_CHECK(p < page_count_);
    return zero_tracking_ && zero_.test(p);
  }
  /// True when zero-page classification is active. Senders use this to skip
  /// per-page zero probes entirely on default-configured memories.
  bool zero_tracking() const { return zero_tracking_; }
  std::uint64_t zero_pages() const { return zero_.count(); }

  /// End of the maximal run of pages sharing page `p`'s state, capped at
  /// `limit`: every page in [p, result) has state(p). The senders use this to
  /// coalesce contiguous same-class pages into one wire message.
  PageIndex state_run_end(PageIndex p, PageIndex limit) const {
    AGILE_CHECK(p < limit && limit <= page_count_);
    const std::uint8_t cls = state_[p];
    PageIndex q = p + 1;
    while (q < limit && state_[q] == cls) ++q;
    return q;
  }

  swap::SwapDevice* swap_device() const { return swap_; }
  void set_swap_device(swap::SwapDevice* device);

  // --- Runtime access path -------------------------------------------------

  /// Guest touches page `p` at LRU clock `tick`. Returns the fault latency to
  /// charge the access (0 for the resident fast path). Must not be called on
  /// kRemote pages — the VM layer routes those to the fault engine.
  /// Defined inline: this is the single hottest call in the simulator
  /// (hundreds of millions per paper-scale sweep), and the resident cases
  /// reduce to a handful of loads and stores.
  SimTime touch(PageIndex p, bool write, std::uint32_t tick) {
    AGILE_CHECK(p < page_count_);
    if (static_cast<PageState>(state_[p]) == PageState::kResident) {
      stamp_access(p, tick);
      if (!write) return 0;
      if (zero_tracking_) zero_.clear(p);  // written content is not zeroes
      if (slot_[p] == swap::kNoSlot) {
        if (dirty_log_ != nullptr) dirty_log_->set(p);
        return 0;
      }
    }
    return touch_slow(p, write, tick);
  }

  /// Touch pages [0, n) as writes (dataset load / boot-time pre-fill). Obeys
  /// the reservation, so the tail ends up swapped once the reservation fills.
  void prefill(std::uint64_t n, std::uint32_t tick);

  // --- cgroup reservation ---------------------------------------------------

  Bytes reservation() const { return reservation_pages_ * kPageSize; }
  std::uint64_t reservation_pages() const { return reservation_pages_; }
  void set_reservation(Bytes bytes);

  /// Evicts until resident <= reservation, at most `max_evictions` pages
  /// (reclaim proceeds at a bounded rate per quantum, like kswapd). Returns
  /// pages evicted.
  std::uint64_t enforce_reservation(std::uint64_t max_evictions);

  /// Forcibly evicts a specific resident page to the swap device (targeted
  /// reclaim — the scatter phase of scatter-gather migration). Free if a
  /// valid swap copy exists; otherwise a write-behind to the device.
  void evict_page(PageIndex p);

  /// True if resident set exceeds the reservation (reclaim pending).
  bool over_reservation() const { return resident_.size() > reservation_pages_; }

  // --- Migration support ----------------------------------------------------

  /// Attaches a dirty log; every subsequent write sets the page's bit.
  void attach_dirty_log(Bitmap* log) { dirty_log_ = log; }
  void detach_dirty_log() { dirty_log_ = nullptr; }
  Bitmap* dirty_log() const { return dirty_log_; }

  /// Swap-in on behalf of the migration manager (pre-copy reading a swapped
  /// page to transfer it). The page becomes resident and may evict a victim —
  /// this is the thrashing loop of the baselines. Returns read latency.
  /// `sequential` marks sweep reads that benefit from device readahead;
  /// demand-fault service reads (random) must pass false.
  SimTime swap_in_for_transfer(PageIndex p, std::uint32_t tick,
                               bool sequential = true);

  /// Swap slot of a swapped page (the PTE's swap offset).
  swap::SwapSlot swap_slot(PageIndex p) const {
    AGILE_CHECK(p < page_count_);
    return slot_[p];
  }

  /// Source side, post-copy phase: page has been pushed / sent; release the
  /// frame or slot it occupied. After this the source holds no copy.
  void release_page(PageIndex p);

  /// Destination side: marks every page not-yet-arrived.
  void mark_all_remote();

  /// Destination side: a full page arrived from the wire and becomes
  /// resident (evicting under the reservation as needed).
  void install_resident(PageIndex p, std::uint32_t tick);

  /// Destination side (Agile): a SWAPPED descriptor arrived — the page's only
  /// copy is at `slot` on the (portable) per-VM swap device.
  void install_swapped(PageIndex p, swap::SwapSlot slot);

  /// Destination side: page is untouched/zero at the source; no data needed.
  void install_untouched(PageIndex p);

  /// Range form for descriptor runs: installs every still-kRemote page in
  /// [begin, end) as untouched; pages already installed (a demand fault beat
  /// the descriptor) are left alone.
  void install_untouched_range(PageIndex begin, PageIndex end);

  /// Destination side (Agile): a run of SWAPPED descriptors arrived — pages
  /// [first, first + slots.size()) live at `slots[i]` on the per-VM device.
  void install_swapped_batch(PageIndex first,
                             std::span<const swap::SwapSlot> slots);

  /// Destination side, pre-copy: a wire copy of the page replaces whatever
  /// this memory currently holds (later rounds legitimately resend pages the
  /// destination may have even swapped out meanwhile).
  void receive_overwrite(PageIndex p, std::uint32_t tick);

  /// Range form for full-copy runs: overwrite-installs [begin, end) in
  /// ascending order (order matters — installs may evict under the
  /// reservation).
  void receive_overwrite_range(PageIndex begin, PageIndex end,
                               std::uint32_t tick);

  /// Source-side teardown after migration completes: drops every frame and —
  /// when `free_slots` — releases all swap slots (baseline semantics: the
  /// host-level swap space is reclaimed once the VM has left). Agile keeps
  /// the cold pages' slots alive on the portable device and reconciles them
  /// separately. Per-page work is O(touched): untouched spans are covered by
  /// one bulk state fill.
  void teardown(bool free_slots);

  /// Destination side, Agile switchover: page `p` was installed during the
  /// live round but the source dirtied it afterwards — whatever we hold is
  /// stale. Drops the page back to kRemote. `free_slot` must be true when
  /// this memory owns the page's swap slot (it evicted the page itself) and
  /// false when the slot came from a SWAPPED descriptor (the source already
  /// freed it when the guest wrote to the page).
  void invalidate_to_remote(PageIndex p, bool free_slot);

  /// Range form for the post-flip invalidation sweep: drops every page in
  /// [begin, end) back to kRemote with a uniform `free_slot` policy (the
  /// caller splits runs on slot-ownership boundaries).
  void invalidate_range_to_remote(PageIndex begin, PageIndex end,
                                  bool free_slot);

  /// Source side, Agile: slot ownership for page `p` has passed to the
  /// destination's memory. Forgets the slot here without freeing it on the
  /// (shared, portable) device; a still-swapped page transitions to kRemote.
  void forget_slot(PageIndex p) {
    AGILE_CHECK(p < page_count_);
    if (state(p) == PageState::kSwapped) {
      swapped_.clear(p);
      state_[p] = static_cast<std::uint8_t>(PageState::kRemote);
      ++remote_count_;
      if (zero_tracking_) zero_.clear(p);  // copy now lives at the dest
    }
    slot_[p] = swap::kNoSlot;
    swap_copy_clean_.clear(p);
  }

  const MemStats& stats() const { return stats_; }

  /// Trace lane for this memory's events. The VM's own memory traces as
  /// "mem" on the VM's lane; a migration's destination process uses
  /// "mem.dest" so the two sides' counters stay on separate tracks.
  void set_trace_identity(const char* component, std::uint64_t id) {
    trace_component_ = component;
    trace_id_ = id;
  }

  /// Ground-truth working set: pages accessed in the last `window_ticks`
  /// relative to `now_tick`. Word-scans the touched bitmap, so idle VMs with
  /// mostly-untouched memory pay O(touched), not O(page_count). Used by the
  /// WSS benches, not by any simulated component.
  std::uint64_t true_working_set_pages(std::uint32_t now_tick,
                                       std::uint32_t window_ticks) const;

  /// Deep auditor (O(page_count)): internal counters match the per-page
  /// state array, the packed LRU `{pos, stamp}` table and the resident
  /// vector cross-reference each other exactly (both directions), and the
  /// touched/swapped bitmaps agree with the pagemap view bit for bit.
  /// Aborts on violation. Runs automatically at structural boundaries (and
  /// decimated during migrations) when `audit::enabled()`.
  void deep_audit() const;

  /// Sanity invariant: internal counters match the per-page state array.
  /// O(page_count); used by tests. Alias of deep_audit().
  void check_consistency() const { deep_audit(); }

 private:
  void make_resident(PageIndex p, std::uint32_t tick);
  void remove_from_resident(PageIndex p);
  void evict_one();
  PageIndex pick_victim();

  /// Out-of-line continuation of touch() for everything beyond the resident
  /// fast paths: minor/major faults and resident writes that must drop a
  /// stale swap copy.
  SimTime touch_slow(PageIndex p, bool write, std::uint32_t tick);

  /// Updates a resident page's LRU stamp in both places it lives: the
  /// per-page table and the packed resident entry (see ResidentEntry).
  void stamp_access(PageIndex p, std::uint32_t tick) {
    PageLru& lru = page_lru_[p];
    AGILE_DCHECK_LT(lru.pos, resident_.size()) << "stamping non-resident page " << p;
    AGILE_DCHECK_EQ(resident_[lru.pos].page, p)
        << "packed LRU position of page " << p << " points at another page";
    lru.stamp = tick;
    resident_[lru.pos].stamp = tick;
  }

  /// Decimated deep audit for migration-path mutators: every
  /// `kAuditEvery`-th call (plus every structural boundary, which calls
  /// deep_audit() directly) when auditing is enabled.
  void maybe_deep_audit() const {
    if (!audit::enabled()) return;
    if (++audit_ops_ % kAuditEvery == 0) deep_audit();
  }

  GuestMemoryConfig config_;
  std::uint64_t page_count_;
  std::uint64_t reservation_pages_;
  swap::SwapDevice* swap_;
  Rng rng_;

  std::vector<std::uint8_t> state_;
  std::vector<swap::SwapSlot> slot_;
  Bitmap swap_copy_clean_;  ///< Swap slot holds current contents.

  // Resident-set index for O(1) sampling and removal. Each entry carries a
  // copy of the page's LRU stamp (kept in sync with page_lru_) so the
  // sampled-eviction loop reads one random cache line per sample instead of
  // chasing the page index through a second cold table; at paper scale both
  // tables are far larger than cache and eviction sampling dominates the
  // whole simulation, so halving its miss count is a first-order win.
  struct ResidentEntry {
    std::uint32_t page;
    std::uint32_t stamp;
  };
  std::vector<ResidentEntry> resident_;  ///< packed resident table

  /// Per-page LRU bookkeeping, packed so the touch fast path reads and
  /// writes a single cache line: the page's position in resident_ (kNoPos
  /// when not resident) next to its last-access stamp.
  struct PageLru {
    std::uint32_t pos;
    std::uint32_t stamp;
  };
  std::vector<PageLru> page_lru_;

  Bitmap touched_;  ///< state != kUntouched (see touched_bitmap()).
  Bitmap swapped_;  ///< state == kSwapped (see swapped_bitmap()).
  std::uint64_t remote_count_ = 0;

  /// Zero-content classification (see is_zero_page). `zero_threshold_` is
  /// the prefill marking probability in basis points (fraction * 10000).
  Bitmap zero_;
  bool zero_tracking_ = false;
  std::uint32_t zero_threshold_ = 0;

  /// Deterministic page-index hash for prefill zero marking: splitmix-style
  /// mix, independent of `rng_` so the eviction sampling stream is untouched.
  bool zero_selected(PageIndex p) const {
    std::uint64_t h = (static_cast<std::uint64_t>(p) + 1) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 33;
    h *= 0xC2B2AE3D27D4EB4Full;
    h ^= h >> 29;
    return h % 10000 < zero_threshold_;
  }

  Bitmap* dirty_log_ = nullptr;
  MemStats stats_;

  const char* trace_component_ = "mem";  ///< See set_trace_identity().
  std::uint64_t trace_id_ = 0;

  /// Deep-audit decimation counter (see maybe_deep_audit). Mutable: auditing
  /// observes, never changes, simulation state.
  static constexpr std::uint64_t kAuditEvery = 4096;
  mutable std::uint64_t audit_ops_ = 0;
};

}  // namespace agile::mem
