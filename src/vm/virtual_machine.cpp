#include "vm/virtual_machine.hpp"

namespace agile::vm {

VirtualMachine::VirtualMachine(VmConfig config,
                               std::unique_ptr<mem::GuestMemory> memory,
                               net::NodeId host_node)
    : config_(std::move(config)),
      memory_(std::move(memory)),
      host_node_(host_node) {
  AGILE_CHECK(memory_ != nullptr);
  AGILE_CHECK(memory_->size_bytes() == config_.memory);
  AGILE_CHECK(config_.vcpus > 0);
}

std::unique_ptr<mem::GuestMemory> VirtualMachine::swap_memory(
    std::unique_ptr<mem::GuestMemory> replacement) {
  AGILE_CHECK(replacement != nullptr);
  AGILE_CHECK(replacement->size_bytes() == config_.memory);
  std::swap(memory_, replacement);
  return replacement;
}

SimTime VirtualMachine::access_page(PageIndex p, bool write, std::uint32_t tick) {
  AGILE_CHECK_MSG(running_, "guest access while suspended");
  if (memory_->state(p) == mem::PageState::kRemote) {
    AGILE_CHECK_MSG(fault_handler_ != nullptr,
                    "remote page accessed with no fault handler installed");
    SimTime fault = fault_handler_(p, write, tick);
    AGILE_CHECK_MSG(memory_->state(p) != mem::PageState::kRemote,
                    "fault handler failed to install the page");
    return fault + memory_->touch(p, write, tick);
  }
  return memory_->touch(p, write, tick);
}

}  // namespace agile::vm
