// Virtual machine model.
//
// A VM is the KVM/QEMU process of the paper: guest memory exported from the
// process address space (GuestMemory), a vCPU count, an execution state
// (running/suspended), and the host it currently executes on. During the
// post-copy phase of a migration the VM's memory object is replaced by the
// destination process's memory, and accesses to not-yet-present pages are
// routed to the registered remote-fault handler (the UMEM driver + UMEMD
// process in the paper's implementation).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mem/guest_memory.hpp"
#include "workload/workload.hpp"

namespace agile::vm {

struct VmConfig {
  std::string name = "vm";
  Bytes memory = 1_GiB;
  Bytes reservation = 1_GiB;
  std::uint32_t vcpus = 2;
  /// Entity id used by the trace layer (Chrome "process" lane). Assigned by
  /// Testbed at creation; 0 is the shared/global lane.
  std::uint64_t trace_id = 0;
};

class VirtualMachine final : public workload::PageAccessor {
 public:
  /// Handler invoked for accesses to kRemote pages. It must install the page
  /// (making it resident/swapped/untouched) and return the fault latency.
  using RemoteFaultHandler =
      std::function<SimTime(PageIndex p, bool write, std::uint32_t tick)>;

  VirtualMachine(VmConfig config, std::unique_ptr<mem::GuestMemory> memory,
                 net::NodeId host_node);

  const std::string& name() const { return config_.name; }
  const VmConfig& config() const { return config_; }

  mem::GuestMemory& memory() { return *memory_; }
  const mem::GuestMemory& memory() const { return *memory_; }

  /// Replaces the backing memory (execution switched to the destination
  /// process). Returns the old memory so the migration can keep serving
  /// demand requests from it.
  std::unique_ptr<mem::GuestMemory> swap_memory(
      std::unique_ptr<mem::GuestMemory> replacement);

  bool running() const { return running_; }
  void suspend() { running_ = false; }
  void resume() { running_ = true; }

  void set_host_node(net::NodeId node) { host_node_ = node; }

  void set_remote_fault_handler(RemoteFaultHandler handler) {
    fault_handler_ = std::move(handler);
  }
  void clear_remote_fault_handler() { fault_handler_ = nullptr; }
  bool has_remote_fault_handler() const { return fault_handler_ != nullptr; }

  // --- PageAccessor ---------------------------------------------------------
  SimTime access_page(PageIndex p, bool write, std::uint32_t tick) override;
  net::NodeId host_node() const override { return host_node_; }
  std::uint64_t page_count() const override { return memory_->page_count(); }
  std::uint32_t vcpus() const override { return config_.vcpus; }

 private:
  VmConfig config_;
  std::unique_ptr<mem::GuestMemory> memory_;
  net::NodeId host_node_;
  bool running_ = true;
  RemoteFaultHandler fault_handler_;
};

}  // namespace agile::vm
