// Per-VM swap device backed by a VMD namespace.
//
// This is the block-device face the VMD client exports for one VM
// (/dev/blk<N> in the paper). Slots map 1:1 onto namespace page keys. The
// device is *portable*: `attach_to` rebinds the underlying client to the host
// the VM currently runs on, which is how the same device is first filled by
// the source and later read by the destination after migration.
#pragma once

#include <string>

#include "swap/swap_device.hpp"
#include "vmd/vmd.hpp"

namespace agile::vmd {

class VmdSwapDevice final : public swap::SwapDevice {
 public:
  /// `capacity` bounds how many pages this VM may keep in the VMD (a
  /// namespace quota, not a physical reservation — servers allocate on
  /// write).
  VmdSwapDevice(std::string name, VmdClient* client, Bytes capacity);

  swap::SwapSlot allocate_slot() override;
  void free_slot(swap::SwapSlot slot) override;
  SimTime read_page(swap::SwapSlot slot) override;
  void write_page(swap::SwapSlot slot) override;
  std::uint64_t used_slots() const override { return slots_.used(); }
  std::uint64_t capacity_slots() const override { return slots_.capacity(); }
  const storage::DeviceStats& stats() const override { return stats_; }
  storage::DeviceStats& mutable_stats() override { return stats_; }
  const std::string& name() const override { return name_; }

  /// Rebinds the device to the host now running the VM.
  void attach_to(net::NodeId node) { client_->set_access_node(node); }

  NamespaceId namespace_id() const { return ns_; }
  VmdClient* client() const { return client_; }

  /// Trace lane for this namespace's read/write counters (the owning VM's
  /// lane; set by the testbed when the device is bound to a VM).
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }

  /// Pages physically stored in the VMD for this namespace.
  std::uint64_t stored_pages() const { return client_->namespace_pages(ns_); }

 private:
  std::string name_;
  VmdClient* client_;
  NamespaceId ns_;
  swap::SlotAllocator slots_;
  storage::DeviceStats stats_;
  std::uint64_t trace_id_ = 0;
};

}  // namespace agile::vmd
