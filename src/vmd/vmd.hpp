// Virtualized Memory Device (VMD).
//
// The VMD aggregates free memory of intermediate hosts into a cluster-wide
// page store (the paper's MemX descendant). `VmdServer` instances run on
// intermediate hosts and allocate memory only when a page write arrives.
// `VmdClient` runs on the host currently executing a VM; it:
//
//  * partitions the aggregate space into *namespaces* — one per VM — and
//    exports each namespace as a block device (see VmdSwapDevice);
//  * places page writes with a load-aware round-robin over servers that most
//    recently reported free memory (servers push availability updates on a
//    heartbeat);
//  * locates and fetches pages on reads, paying real network cost through
//    the simulated fabric.
//
// Portability is the point: a namespace's client-side mapping can be
// re-attached at another host (`set_access_node`) without moving a single
// page — that is what lets Agile migration leave cold pages in place.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "storage/device.hpp"
#include "util/relaxed_cell.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace agile::vmd {

using NamespaceId = std::uint32_t;
using PageKey = std::uint32_t;

struct VmdServerConfig {
  Bytes capacity = 64_GiB;       ///< Memory this host contributes.
  SimTime service_time = 3;      ///< µs to locate+copy a page in RAM.
  /// Optional second tier (paper §IV-A: "it is possible to extend the amount
  /// of swap space available at the VMD by using excess disk space (HDs
  /// and/or SSDs) alongside the excess memory"). 0 disables it.
  Bytes disk_capacity = 0;
  storage::SsdConfig disk = {};  ///< Device model for the disk tier.
};

/// Which tier a stored page landed on.
enum class VmdTier : std::uint8_t { kMemory = 0, kDisk = 1 };

class VmdServer {
 public:
  VmdServer(std::string name, net::NodeId node, VmdServerConfig config = {});

  const std::string& name() const { return name_; }
  net::NodeId node() const { return node_; }

  Bytes capacity() const { return config_.capacity; }
  Bytes used_bytes() const { return memory_pages_ * kPageSize; }
  Bytes free_bytes() const { return config_.capacity - used_bytes(); }
  Bytes disk_capacity() const { return config_.disk_capacity; }
  Bytes disk_free_bytes() const {
    return config_.disk_capacity - disk_pages_ * kPageSize;
  }
  std::uint64_t used_pages() const { return memory_pages_ + disk_pages_; }
  std::uint64_t memory_pages() const { return memory_pages_; }
  std::uint64_t disk_pages() const { return disk_pages_; }
  SimTime service_time() const { return config_.service_time; }

  /// Allocate-on-write: memory first, spilling to the disk tier when the
  /// memory contribution is exhausted. Returns the tier used, or nullopt if
  /// both tiers are full.
  std::optional<VmdTier> store_page();

  /// Releases one page frame from the given tier.
  void drop_page(VmdTier tier);

  /// Server-side service latency for a read from `tier`.
  SimTime read_latency(VmdTier tier);

  /// Drains the disk tier's queue (no-op without one).
  void advance(SimTime dt);

 private:
  std::string name_;
  net::NodeId node_;
  VmdServerConfig config_;
  /// Relaxed cells: VMD-bound VMs on different event lanes store/drop frames
  /// concurrently. The counts are commutative sums, and the lane planner
  /// serializes the fleet whenever placement would actually depend on them
  /// (disk tier configured, or memory within the safety margin of full).
  /// Registered in tools/lane_lint.py's shared-counter registry (LL004):
  /// re-declaring either as a plain integer fails the lint.
  util::RelaxedCell<std::uint64_t> memory_pages_;
  util::RelaxedCell<std::uint64_t> disk_pages_;
  std::unique_ptr<storage::SsdModel> disk_;
};

struct VmdClientConfig {
  Bytes page_header = 64;  ///< Wire overhead per page message.
  Bytes request_size = 96; ///< Read-request message size.
};

class VmdClient {
 public:
  VmdClient(net::Network* network, net::NodeId access_node,
            VmdClientConfig config = {});

  /// Registers an intermediate server. Any machine with spare memory may
  /// contribute.
  void register_server(VmdServer* server);
  std::size_t server_count() const { return servers_.size(); }

  /// Refreshes cached availability from every server (the heartbeat). The
  /// placement algorithm only trusts this cache, like the real protocol.
  void update_availability();

  /// Creates a logical partition of the aggregate space for one VM.
  NamespaceId create_namespace(std::string name);
  const std::string& namespace_name(NamespaceId ns) const;

  /// Moves the client attachment to another host (VM migrated there).
  void set_access_node(net::NodeId node) { access_node_ = node; }
  net::NodeId access_node() const { return access_node_; }

  /// Writes page `key` of namespace `ns` (write-behind; returns immediately
  /// after handing the page to the network). Chooses a server load-aware.
  void write_page(NamespaceId ns, PageKey key);

  /// Reads page `key`; returns the full latency (network + server service).
  SimTime read_page(NamespaceId ns, PageKey key);

  /// Drops page `key`, releasing the server frame.
  void drop_page(NamespaceId ns, PageKey key);

  bool has_page(NamespaceId ns, PageKey key) const;
  std::uint64_t namespace_pages(NamespaceId ns) const;

  /// Cluster-wide free bytes according to the availability cache.
  Bytes cached_free_bytes() const;

 private:
  static constexpr std::uint16_t kUnmapped = 0xffff;
  static constexpr std::uint16_t kDiskBit = 0x8000;  ///< Tier bit in location.

  struct Namespace {
    std::string name;
    // key -> server index | tier bit (kUnmapped when the key holds no page).
    std::vector<std::uint16_t> location;
    std::uint64_t pages = 0;
  };

  Namespace& ns_ref(NamespaceId ns);
  const Namespace& ns_ref(NamespaceId ns) const;
  std::uint16_t pick_server();

  net::Network* network_;
  net::NodeId access_node_;
  VmdClientConfig config_;
  std::vector<VmdServer*> servers_;
  std::vector<Bytes> cached_free_;       ///< Memory availability cache.
  std::vector<Bytes> cached_disk_free_;  ///< Disk-tier availability cache.
  std::uint16_t rr_cursor_ = 0;
  std::vector<Namespace> namespaces_;
};

}  // namespace agile::vmd
