#include "vmd/vmd.hpp"

namespace agile::vmd {

VmdServer::VmdServer(std::string name, net::NodeId node, VmdServerConfig config)
    : name_(std::move(name)), node_(node), config_(config) {
  AGILE_CHECK(config_.capacity >= kPageSize);
  if (config_.disk_capacity > 0) {
    disk_ = std::make_unique<storage::SsdModel>(config_.disk);
  }
}

std::optional<VmdTier> VmdServer::store_page() {
  if (free_bytes() >= kPageSize) {
    memory_pages_.add(1);
    return VmdTier::kMemory;
  }
  if (disk_free_bytes() >= kPageSize && disk_ != nullptr) {
    disk_pages_.add(1);
    disk_->submit_write(kPageSize);  // write-behind to the tier device
    return VmdTier::kDisk;
  }
  return std::nullopt;
}

void VmdServer::drop_page(VmdTier tier) {
  if (tier == VmdTier::kMemory) {
    AGILE_CHECK(memory_pages_ > 0);
    memory_pages_.sub(1);
  } else {
    AGILE_CHECK(disk_pages_ > 0);
    disk_pages_.sub(1);
  }
}

SimTime VmdServer::read_latency(VmdTier tier) {
  if (tier == VmdTier::kMemory) return config_.service_time;
  AGILE_CHECK(disk_ != nullptr);
  return config_.service_time + disk_->submit_read(kPageSize);
}

void VmdServer::advance(SimTime dt) {
  if (disk_ != nullptr) disk_->advance(dt);
}

VmdClient::VmdClient(net::Network* network, net::NodeId access_node,
                     VmdClientConfig config)
    : network_(network), access_node_(access_node), config_(config) {
  AGILE_CHECK(network_ != nullptr);
}

void VmdClient::register_server(VmdServer* server) {
  AGILE_CHECK(server != nullptr);
  AGILE_CHECK_MSG(servers_.size() < 0x7fffu, "too many VMD servers");
  servers_.push_back(server);
  cached_free_.push_back(server->free_bytes());
  cached_disk_free_.push_back(server->disk_free_bytes());
}

void VmdClient::update_availability() {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    cached_free_[i] = servers_[i]->free_bytes();
    cached_disk_free_[i] = servers_[i]->disk_free_bytes();
    // Heartbeat messages are tiny; account them for completeness.
    network_->consume_background(servers_[i]->node(), access_node_, 64);
  }
}

NamespaceId VmdClient::create_namespace(std::string name) {
  namespaces_.push_back(Namespace{std::move(name), {}, 0});
  return static_cast<NamespaceId>(namespaces_.size() - 1);
}

const std::string& VmdClient::namespace_name(NamespaceId ns) const {
  return ns_ref(ns).name;
}

VmdClient::Namespace& VmdClient::ns_ref(NamespaceId ns) {
  AGILE_CHECK(ns < namespaces_.size());
  return namespaces_[ns];
}

const VmdClient::Namespace& VmdClient::ns_ref(NamespaceId ns) const {
  AGILE_CHECK(ns < namespaces_.size());
  return namespaces_[ns];
}

std::uint16_t VmdClient::pick_server() {
  AGILE_CHECK_MSG(!servers_.empty(), "VMD has no servers");
  // Load-aware round-robin: next server (cyclically) whose last availability
  // report shows unused *memory*; servers with only disk tier space left are
  // the fallback. A final live refresh guards against a stale cache.
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      std::uint16_t idx = static_cast<std::uint16_t>((rr_cursor_ + i) % servers_.size());
      if (cached_free_[idx] >= kPageSize) {
        rr_cursor_ = static_cast<std::uint16_t>((idx + 1) % servers_.size());
        return idx;
      }
    }
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      std::uint16_t idx = static_cast<std::uint16_t>((rr_cursor_ + i) % servers_.size());
      if (cached_disk_free_[idx] >= kPageSize) {
        rr_cursor_ = static_cast<std::uint16_t>((idx + 1) % servers_.size());
        return idx;
      }
    }
    update_availability();  // cache may be stale; one refresh before giving up
  }
  AGILE_CHECK_MSG(false, "VMD cluster out of memory");
  return kUnmapped;
}

void VmdClient::write_page(NamespaceId ns, PageKey key) {
  Namespace& n = ns_ref(ns);
  if (key >= n.location.size()) n.location.resize(key + 1, kUnmapped);
  AGILE_CHECK_MSG(n.location[key] == kUnmapped, "overwriting a live VMD page");
  std::uint16_t idx = pick_server();
  std::optional<VmdTier> tier = servers_[idx]->store_page();
  while (!tier) {
    // Stale cache: this server is actually full. Record truth and move on.
    cached_free_[idx] = servers_[idx]->free_bytes();
    cached_disk_free_[idx] = servers_[idx]->disk_free_bytes();
    idx = pick_server();
    tier = servers_[idx]->store_page();
  }
  if (*tier == VmdTier::kMemory) {
    cached_free_[idx] -= std::min<Bytes>(cached_free_[idx], kPageSize);
    n.location[key] = idx;
  } else {
    cached_disk_free_[idx] -= std::min<Bytes>(cached_disk_free_[idx], kPageSize);
    n.location[key] = static_cast<std::uint16_t>(idx | kDiskBit);
  }
  ++n.pages;
  network_->consume_background(access_node_, servers_[idx]->node(),
                               kPageSize + config_.page_header);
}

SimTime VmdClient::read_page(NamespaceId ns, PageKey key) {
  const Namespace& n = ns_ref(ns);
  AGILE_CHECK_MSG(key < n.location.size() && n.location[key] != kUnmapped,
                  "VMD read of unmapped key");
  std::uint16_t loc = n.location[key];
  VmdServer* server = servers_[loc & ~kDiskBit];
  VmdTier tier = (loc & kDiskBit) ? VmdTier::kDisk : VmdTier::kMemory;
  network_->consume_background(access_node_, server->node(), config_.request_size);
  network_->consume_background(server->node(), access_node_,
                               kPageSize + config_.page_header);
  return network_->rpc_latency(access_node_, server->node(),
                               kPageSize + config_.page_header) +
         server->read_latency(tier);
}

void VmdClient::drop_page(NamespaceId ns, PageKey key) {
  Namespace& n = ns_ref(ns);
  AGILE_CHECK_MSG(key < n.location.size() && n.location[key] != kUnmapped,
                  "VMD drop of unmapped key");
  std::uint16_t loc = n.location[key];
  std::uint16_t idx = static_cast<std::uint16_t>(loc & ~kDiskBit);
  if (loc & kDiskBit) {
    servers_[idx]->drop_page(VmdTier::kDisk);
    cached_disk_free_[idx] += kPageSize;
  } else {
    servers_[idx]->drop_page(VmdTier::kMemory);
    cached_free_[idx] += kPageSize;
  }
  n.location[key] = kUnmapped;
  --n.pages;
  network_->consume_background(access_node_, servers_[idx]->node(), 64);
}

bool VmdClient::has_page(NamespaceId ns, PageKey key) const {
  const Namespace& n = ns_ref(ns);
  return key < n.location.size() && n.location[key] != kUnmapped;
}

std::uint64_t VmdClient::namespace_pages(NamespaceId ns) const {
  return ns_ref(ns).pages;
}

Bytes VmdClient::cached_free_bytes() const {
  Bytes total = 0;
  for (Bytes b : cached_free_) total += b;
  return total;
}

}  // namespace agile::vmd
