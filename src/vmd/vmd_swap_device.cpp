#include "vmd/vmd_swap_device.hpp"

#include "trace/trace.hpp"

namespace agile::vmd {

VmdSwapDevice::VmdSwapDevice(std::string name, VmdClient* client, Bytes capacity)
    : name_(std::move(name)), client_(client), slots_(pages_for(capacity)) {
  AGILE_CHECK(client_ != nullptr);
  ns_ = client_->create_namespace(name_);
}

swap::SwapSlot VmdSwapDevice::allocate_slot() { return slots_.allocate(); }

void VmdSwapDevice::free_slot(swap::SwapSlot slot) {
  if (client_->has_page(ns_, slot)) client_->drop_page(ns_, slot);
  slots_.release(slot);
}

SimTime VmdSwapDevice::read_page(swap::SwapSlot slot) {
  ++stats_.reads;
  ++stats_.window_reads;
  stats_.bytes_read += kPageSize;
  stats_.window_bytes_read += kPageSize;
  if (trace::sample_counter(stats_.reads)) {
    AGILE_TRACE_COUNTER("vmd", "ns_reads", trace_id_, stats_.reads);
  }
  return client_->read_page(ns_, slot);
}

void VmdSwapDevice::write_page(swap::SwapSlot slot) {
  ++stats_.writes;
  ++stats_.window_writes;
  stats_.bytes_written += kPageSize;
  stats_.window_bytes_written += kPageSize;
  if (trace::sample_counter(stats_.writes)) {
    AGILE_TRACE_COUNTER("vmd", "ns_writes", trace_id_, stats_.writes);
  }
  client_->write_page(ns_, slot);
}

}  // namespace agile::vmd
