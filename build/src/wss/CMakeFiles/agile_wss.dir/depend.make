# Empty dependencies file for agile_wss.
# This may be replaced when dependencies are built.
