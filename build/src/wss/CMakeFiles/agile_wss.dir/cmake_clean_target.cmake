file(REMOVE_RECURSE
  "libagile_wss.a"
)
