file(REMOVE_RECURSE
  "CMakeFiles/agile_wss.dir/reservation_controller.cpp.o"
  "CMakeFiles/agile_wss.dir/reservation_controller.cpp.o.d"
  "CMakeFiles/agile_wss.dir/watermark_trigger.cpp.o"
  "CMakeFiles/agile_wss.dir/watermark_trigger.cpp.o.d"
  "libagile_wss.a"
  "libagile_wss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_wss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
