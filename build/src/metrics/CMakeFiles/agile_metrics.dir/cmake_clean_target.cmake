file(REMOVE_RECURSE
  "libagile_metrics.a"
)
