# Empty compiler generated dependencies file for agile_metrics.
# This may be replaced when dependencies are built.
