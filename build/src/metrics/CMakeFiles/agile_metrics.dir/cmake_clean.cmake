file(REMOVE_RECURSE
  "CMakeFiles/agile_metrics.dir/table.cpp.o"
  "CMakeFiles/agile_metrics.dir/table.cpp.o.d"
  "CMakeFiles/agile_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/agile_metrics.dir/timeseries.cpp.o.d"
  "libagile_metrics.a"
  "libagile_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
