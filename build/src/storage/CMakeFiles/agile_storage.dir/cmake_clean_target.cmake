file(REMOVE_RECURSE
  "libagile_storage.a"
)
