# Empty dependencies file for agile_storage.
# This may be replaced when dependencies are built.
