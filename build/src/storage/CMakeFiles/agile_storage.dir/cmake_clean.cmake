file(REMOVE_RECURSE
  "CMakeFiles/agile_storage.dir/device.cpp.o"
  "CMakeFiles/agile_storage.dir/device.cpp.o.d"
  "libagile_storage.a"
  "libagile_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
