file(REMOVE_RECURSE
  "CMakeFiles/agile_vm.dir/virtual_machine.cpp.o"
  "CMakeFiles/agile_vm.dir/virtual_machine.cpp.o.d"
  "libagile_vm.a"
  "libagile_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
