# Empty dependencies file for agile_vm.
# This may be replaced when dependencies are built.
