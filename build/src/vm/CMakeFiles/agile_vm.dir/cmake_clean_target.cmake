file(REMOVE_RECURSE
  "libagile_vm.a"
)
