file(REMOVE_RECURSE
  "CMakeFiles/agile_swap.dir/swap_device.cpp.o"
  "CMakeFiles/agile_swap.dir/swap_device.cpp.o.d"
  "libagile_swap.a"
  "libagile_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
