# Empty dependencies file for agile_swap.
# This may be replaced when dependencies are built.
