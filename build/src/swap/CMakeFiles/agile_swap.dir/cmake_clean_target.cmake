file(REMOVE_RECURSE
  "libagile_swap.a"
)
