# Empty compiler generated dependencies file for agile_swap.
# This may be replaced when dependencies are built.
