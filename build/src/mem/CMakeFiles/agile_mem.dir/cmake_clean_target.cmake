file(REMOVE_RECURSE
  "libagile_mem.a"
)
