file(REMOVE_RECURSE
  "CMakeFiles/agile_mem.dir/guest_memory.cpp.o"
  "CMakeFiles/agile_mem.dir/guest_memory.cpp.o.d"
  "libagile_mem.a"
  "libagile_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
