# Empty dependencies file for agile_mem.
# This may be replaced when dependencies are built.
