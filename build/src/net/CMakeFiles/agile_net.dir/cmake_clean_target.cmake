file(REMOVE_RECURSE
  "libagile_net.a"
)
