file(REMOVE_RECURSE
  "CMakeFiles/agile_net.dir/network.cpp.o"
  "CMakeFiles/agile_net.dir/network.cpp.o.d"
  "libagile_net.a"
  "libagile_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
