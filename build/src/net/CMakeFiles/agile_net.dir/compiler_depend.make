# Empty compiler generated dependencies file for agile_net.
# This may be replaced when dependencies are built.
