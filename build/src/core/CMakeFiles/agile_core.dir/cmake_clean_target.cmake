file(REMOVE_RECURSE
  "libagile_core.a"
)
