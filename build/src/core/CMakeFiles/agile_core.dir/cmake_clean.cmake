file(REMOVE_RECURSE
  "CMakeFiles/agile_core.dir/pressure_responder.cpp.o"
  "CMakeFiles/agile_core.dir/pressure_responder.cpp.o.d"
  "CMakeFiles/agile_core.dir/scenarios.cpp.o"
  "CMakeFiles/agile_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/agile_core.dir/testbed.cpp.o"
  "CMakeFiles/agile_core.dir/testbed.cpp.o.d"
  "libagile_core.a"
  "libagile_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
