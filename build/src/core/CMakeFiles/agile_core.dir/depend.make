# Empty dependencies file for agile_core.
# This may be replaced when dependencies are built.
