file(REMOVE_RECURSE
  "libagile_util.a"
)
