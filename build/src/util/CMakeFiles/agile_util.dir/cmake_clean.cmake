file(REMOVE_RECURSE
  "CMakeFiles/agile_util.dir/bitmap.cpp.o"
  "CMakeFiles/agile_util.dir/bitmap.cpp.o.d"
  "CMakeFiles/agile_util.dir/log.cpp.o"
  "CMakeFiles/agile_util.dir/log.cpp.o.d"
  "CMakeFiles/agile_util.dir/rng.cpp.o"
  "CMakeFiles/agile_util.dir/rng.cpp.o.d"
  "CMakeFiles/agile_util.dir/status.cpp.o"
  "CMakeFiles/agile_util.dir/status.cpp.o.d"
  "libagile_util.a"
  "libagile_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
