# Empty dependencies file for agile_util.
# This may be replaced when dependencies are built.
