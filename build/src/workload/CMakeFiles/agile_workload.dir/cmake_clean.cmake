file(REMOVE_RECURSE
  "CMakeFiles/agile_workload.dir/oltp.cpp.o"
  "CMakeFiles/agile_workload.dir/oltp.cpp.o.d"
  "CMakeFiles/agile_workload.dir/ycsb.cpp.o"
  "CMakeFiles/agile_workload.dir/ycsb.cpp.o.d"
  "libagile_workload.a"
  "libagile_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
