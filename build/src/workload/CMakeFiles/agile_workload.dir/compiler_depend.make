# Empty compiler generated dependencies file for agile_workload.
# This may be replaced when dependencies are built.
