file(REMOVE_RECURSE
  "libagile_workload.a"
)
