file(REMOVE_RECURSE
  "libagile_migration.a"
)
