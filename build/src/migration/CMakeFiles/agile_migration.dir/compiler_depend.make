# Empty compiler generated dependencies file for agile_migration.
# This may be replaced when dependencies are built.
