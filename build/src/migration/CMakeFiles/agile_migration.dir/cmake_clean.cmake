file(REMOVE_RECURSE
  "CMakeFiles/agile_migration.dir/agile.cpp.o"
  "CMakeFiles/agile_migration.dir/agile.cpp.o.d"
  "CMakeFiles/agile_migration.dir/migration.cpp.o"
  "CMakeFiles/agile_migration.dir/migration.cpp.o.d"
  "CMakeFiles/agile_migration.dir/postcopy.cpp.o"
  "CMakeFiles/agile_migration.dir/postcopy.cpp.o.d"
  "CMakeFiles/agile_migration.dir/precopy.cpp.o"
  "CMakeFiles/agile_migration.dir/precopy.cpp.o.d"
  "CMakeFiles/agile_migration.dir/scatter_gather.cpp.o"
  "CMakeFiles/agile_migration.dir/scatter_gather.cpp.o.d"
  "CMakeFiles/agile_migration.dir/wire.cpp.o"
  "CMakeFiles/agile_migration.dir/wire.cpp.o.d"
  "libagile_migration.a"
  "libagile_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
