file(REMOVE_RECURSE
  "libagile_vmd.a"
)
