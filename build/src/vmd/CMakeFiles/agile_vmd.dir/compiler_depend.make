# Empty compiler generated dependencies file for agile_vmd.
# This may be replaced when dependencies are built.
