file(REMOVE_RECURSE
  "CMakeFiles/agile_vmd.dir/vmd.cpp.o"
  "CMakeFiles/agile_vmd.dir/vmd.cpp.o.d"
  "CMakeFiles/agile_vmd.dir/vmd_swap_device.cpp.o"
  "CMakeFiles/agile_vmd.dir/vmd_swap_device.cpp.o.d"
  "libagile_vmd.a"
  "libagile_vmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_vmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
