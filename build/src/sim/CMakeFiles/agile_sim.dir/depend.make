# Empty dependencies file for agile_sim.
# This may be replaced when dependencies are built.
