file(REMOVE_RECURSE
  "CMakeFiles/agile_sim.dir/simulation.cpp.o"
  "CMakeFiles/agile_sim.dir/simulation.cpp.o.d"
  "libagile_sim.a"
  "libagile_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
