file(REMOVE_RECURSE
  "libagile_sim.a"
)
