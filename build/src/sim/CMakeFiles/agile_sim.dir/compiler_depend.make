# Empty compiler generated dependencies file for agile_sim.
# This may be replaced when dependencies are built.
