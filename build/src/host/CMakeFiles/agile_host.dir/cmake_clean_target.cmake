file(REMOVE_RECURSE
  "libagile_host.a"
)
