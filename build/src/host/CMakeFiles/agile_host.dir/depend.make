# Empty dependencies file for agile_host.
# This may be replaced when dependencies are built.
