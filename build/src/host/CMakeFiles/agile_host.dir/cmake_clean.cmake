file(REMOVE_RECURSE
  "CMakeFiles/agile_host.dir/cluster.cpp.o"
  "CMakeFiles/agile_host.dir/cluster.cpp.o.d"
  "CMakeFiles/agile_host.dir/host.cpp.o"
  "CMakeFiles/agile_host.dir/host.cpp.o.d"
  "libagile_host.a"
  "libagile_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agile_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
