file(REMOVE_RECURSE
  "CMakeFiles/table1_app_performance.dir/table1_app_performance.cpp.o"
  "CMakeFiles/table1_app_performance.dir/table1_app_performance.cpp.o.d"
  "table1_app_performance"
  "table1_app_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_app_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
