file(REMOVE_RECURSE
  "CMakeFiles/fig8_data_transferred.dir/fig8_data_transferred.cpp.o"
  "CMakeFiles/fig8_data_transferred.dir/fig8_data_transferred.cpp.o.d"
  "fig8_data_transferred"
  "fig8_data_transferred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_data_transferred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
