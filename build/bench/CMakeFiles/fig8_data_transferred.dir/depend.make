# Empty dependencies file for fig8_data_transferred.
# This may be replaced when dependencies are built.
