# Empty dependencies file for fig7_migration_time.
# This may be replaced when dependencies are built.
