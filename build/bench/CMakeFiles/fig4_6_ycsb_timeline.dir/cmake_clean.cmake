file(REMOVE_RECURSE
  "CMakeFiles/fig4_6_ycsb_timeline.dir/fig4_6_ycsb_timeline.cpp.o"
  "CMakeFiles/fig4_6_ycsb_timeline.dir/fig4_6_ycsb_timeline.cpp.o.d"
  "fig4_6_ycsb_timeline"
  "fig4_6_ycsb_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_6_ycsb_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
