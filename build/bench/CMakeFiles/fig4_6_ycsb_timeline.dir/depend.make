# Empty dependencies file for fig4_6_ycsb_timeline.
# This may be replaced when dependencies are built.
