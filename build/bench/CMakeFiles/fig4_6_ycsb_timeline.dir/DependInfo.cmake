
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_6_ycsb_timeline.cpp" "bench/CMakeFiles/fig4_6_ycsb_timeline.dir/fig4_6_ycsb_timeline.cpp.o" "gcc" "bench/CMakeFiles/fig4_6_ycsb_timeline.dir/fig4_6_ycsb_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/agile_core.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/agile_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/vmd/CMakeFiles/agile_vmd.dir/DependInfo.cmake"
  "/root/repo/build/src/wss/CMakeFiles/agile_wss.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/agile_host.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/agile_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/agile_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/swap/CMakeFiles/agile_swap.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/agile_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/agile_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/agile_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/agile_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/agile_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/agile_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
