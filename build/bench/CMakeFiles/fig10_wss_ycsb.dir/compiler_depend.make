# Empty compiler generated dependencies file for fig10_wss_ycsb.
# This may be replaced when dependencies are built.
