file(REMOVE_RECURSE
  "CMakeFiles/fig10_wss_ycsb.dir/fig10_wss_ycsb.cpp.o"
  "CMakeFiles/fig10_wss_ycsb.dir/fig10_wss_ycsb.cpp.o.d"
  "fig10_wss_ycsb"
  "fig10_wss_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_wss_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
