file(REMOVE_RECURSE
  "CMakeFiles/fig9_wss_tracking.dir/fig9_wss_tracking.cpp.o"
  "CMakeFiles/fig9_wss_tracking.dir/fig9_wss_tracking.cpp.o.d"
  "fig9_wss_tracking"
  "fig9_wss_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_wss_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
