# Empty dependencies file for fig9_wss_tracking.
# This may be replaced when dependencies are built.
