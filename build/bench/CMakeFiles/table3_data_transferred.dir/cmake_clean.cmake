file(REMOVE_RECURSE
  "CMakeFiles/table3_data_transferred.dir/table3_data_transferred.cpp.o"
  "CMakeFiles/table3_data_transferred.dir/table3_data_transferred.cpp.o.d"
  "table3_data_transferred"
  "table3_data_transferred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_data_transferred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
