# Empty dependencies file for table3_data_transferred.
# This may be replaced when dependencies are built.
