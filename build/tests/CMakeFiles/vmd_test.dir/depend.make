# Empty dependencies file for vmd_test.
# This may be replaced when dependencies are built.
