# Empty dependencies file for responder_test.
# This may be replaced when dependencies are built.
