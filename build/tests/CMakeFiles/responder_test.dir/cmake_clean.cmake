file(REMOVE_RECURSE
  "CMakeFiles/responder_test.dir/responder_test.cpp.o"
  "CMakeFiles/responder_test.dir/responder_test.cpp.o.d"
  "responder_test"
  "responder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/responder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
