file(REMOVE_RECURSE
  "CMakeFiles/scatter_gather_test.dir/scatter_gather_test.cpp.o"
  "CMakeFiles/scatter_gather_test.dir/scatter_gather_test.cpp.o.d"
  "scatter_gather_test"
  "scatter_gather_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scatter_gather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
