# Empty dependencies file for scatter_gather_test.
# This may be replaced when dependencies are built.
