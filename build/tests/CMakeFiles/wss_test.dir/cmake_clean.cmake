file(REMOVE_RECURSE
  "CMakeFiles/wss_test.dir/wss_test.cpp.o"
  "CMakeFiles/wss_test.dir/wss_test.cpp.o.d"
  "wss_test"
  "wss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
