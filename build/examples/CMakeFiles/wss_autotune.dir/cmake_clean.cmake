file(REMOVE_RECURSE
  "CMakeFiles/wss_autotune.dir/wss_autotune.cpp.o"
  "CMakeFiles/wss_autotune.dir/wss_autotune.cpp.o.d"
  "wss_autotune"
  "wss_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
