# Empty compiler generated dependencies file for wss_autotune.
# This may be replaced when dependencies are built.
