#!/usr/bin/env python3
"""Summarize and diff Chrome trace_event JSON files produced by agile::trace.

Usage:
    trace_report.py summarize TRACE.json          per-track span/counter stats
    trace_report.py counters TRACE.json           counter tracks only, grouped
                                                  by component (process/thread)
    trace_report.py diff A.json B.json            compare two traces
    trace_report.py --self-test                   run built-in checks

A trace is {"traceEvents": [...]} with "B"/"E" span pairs, "i" instants,
"C" counter samples and "M" process/thread-name metadata, all timestamped in
simulated microseconds (see src/trace/trace.hpp). `summarize` aggregates per
(process, thread, name); `diff` reports spans whose total duration moved,
plus counters/instants whose sample counts or final values changed — the
quick way to see what a code change did to a migration's phase structure.

Stdlib only; exit status 0 on success (diff: 0 even when different, it is a
report, not a gate), 2 on usage or parse errors.
"""

import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    return events


def build_names(events):
    """Maps pid -> process name and (pid, tid) -> thread name."""
    procs, threads = {}, {}
    for e in events:
        if e.get("ph") != "M":
            continue
        args = e.get("args", {})
        if e.get("name") == "process_name":
            procs[e["pid"]] = args.get("name", str(e["pid"]))
        elif e.get("name") == "thread_name":
            threads[(e["pid"], e["tid"])] = args.get("name", str(e["tid"]))
    return procs, threads


def track_label(e, procs, threads):
    pid, tid = e.get("pid", 0), e.get("tid", 0)
    proc = procs.get(pid, str(pid))
    thread = threads.get((pid, tid), str(tid))
    return f"{proc}/{thread}"


class Summary:
    """Aggregated stats keyed by (track, event name)."""

    def __init__(self):
        self.spans = {}     # key -> {"count": n, "total_us": t}
        self.counters = {}  # key -> {"count": n, "min": v, "max": v, "last": v}
        self.instants = {}  # key -> {"count": n}
        self.events = 0
        self.unmatched = 0  # E without B, or B still open at the end


def summarize(events):
    procs, threads = build_names(events)
    s = Summary()
    open_begins = {}  # track -> [(name, ts), ...] stack
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        s.events += 1
        track = track_label(e, procs, threads)
        key = (track, e.get("name", "?"))
        if ph == "B":
            open_begins.setdefault(track, []).append((key[1], e["ts"]))
        elif ph == "E":
            # Chrome convention: "E" may omit the name and closes the
            # innermost open span on its track.
            stack = open_begins.get(track)
            if not stack:
                s.unmatched += 1
                continue
            name, begin_ts = stack.pop()
            dur = e["ts"] - begin_ts
            rec = s.spans.setdefault((track, name),
                                     {"count": 0, "total_us": 0})
            rec["count"] += 1
            rec["total_us"] += dur
        elif ph == "C":
            value = e.get("args", {}).get("value", 0)
            rec = s.counters.setdefault(
                key, {"count": 0, "min": value, "max": value, "last": value})
            rec["count"] += 1
            rec["min"] = min(rec["min"], value)
            rec["max"] = max(rec["max"], value)
            rec["last"] = value
        elif ph == "i":
            rec = s.instants.setdefault(key, {"count": 0})
            rec["count"] += 1
    s.unmatched += sum(len(v) for v in open_begins.values())
    return s


def print_summary(s):
    print(f"{s.events} events", end="")
    if s.unmatched:
        print(f" ({s.unmatched} unmatched span endpoints)", end="")
    print()
    if s.spans:
        print("  spans (track/name, count, total ms):")
        for (track, name), rec in sorted(s.spans.items()):
            print(f"    {track}/{name:<24} {rec['count']:>6} "
                  f"{rec['total_us'] / 1000.0:>12.3f}")
    if s.counters:
        print("  counters (track/name, samples, min/max/last):")
        for (track, name), rec in sorted(s.counters.items()):
            print(f"    {track}/{name:<24} {rec['count']:>6} "
                  f"{rec['min']:>14.0f} {rec['max']:>14.0f} {rec['last']:>14.0f}")
    if s.instants:
        print("  instants (track/name, count):")
        for (track, name), rec in sorted(s.instants.items()):
            print(f"    {track}/{name:<24} {rec['count']:>6}")


def counter_table(s):
    """Counter tracks grouped by component: [(track, [(name, rec), ...])].

    The track label is the process/thread pair the trace names the counter
    under — one component (a VM, a host NIC, the orchestrator) per track —
    so the grouping reads as a per-component health table.
    """
    by_track = {}
    for (track, name), rec in sorted(s.counters.items()):
        by_track.setdefault(track, []).append((name, rec))
    return sorted(by_track.items())


def print_counters(s):
    table = counter_table(s)
    if not table:
        print("no counter events")
        return
    total = sum(len(rows) for _, rows in table)
    print(f"{total} counter track(s) across {len(table)} component(s)")
    for track, rows in table:
        print(f"  {track}:")
        print(f"    {'name':<28} {'samples':>8} {'min':>14} {'max':>14} "
              f"{'final':>14}")
        for name, rec in rows:
            print(f"    {name:<28} {rec['count']:>8} {rec['min']:>14.0f} "
                  f"{rec['max']:>14.0f} {rec['last']:>14.0f}")


def diff_summaries(a, b):
    """Returns a list of human-readable difference lines (empty if equal)."""
    lines = []

    def all_keys(da, db):
        return sorted(set(da) | set(db))

    for key in all_keys(a.spans, b.spans):
        ra, rb = a.spans.get(key), b.spans.get(key)
        label = "/".join(key)
        if ra is None:
            lines.append(f"span {label}: only in B ({rb['count']}x)")
        elif rb is None:
            lines.append(f"span {label}: only in A ({ra['count']}x)")
        elif ra != rb:
            lines.append(
                f"span {label}: count {ra['count']} -> {rb['count']}, "
                f"total {ra['total_us'] / 1000.0:.3f} -> "
                f"{rb['total_us'] / 1000.0:.3f} ms")
    for key in all_keys(a.counters, b.counters):
        ra, rb = a.counters.get(key), b.counters.get(key)
        label = "/".join(key)
        if ra is None:
            lines.append(f"counter {label}: only in B")
        elif rb is None:
            lines.append(f"counter {label}: only in A")
        elif ra != rb:
            lines.append(
                f"counter {label}: samples {ra['count']} -> {rb['count']}, "
                f"last {ra['last']:.0f} -> {rb['last']:.0f}")
    for key in all_keys(a.instants, b.instants):
        ra, rb = a.instants.get(key), b.instants.get(key)
        label = "/".join(key)
        if ra is None:
            lines.append(f"instant {label}: only in B ({rb['count']}x)")
        elif rb is None:
            lines.append(f"instant {label}: only in A ({ra['count']}x)")
        elif ra != rb:
            lines.append(f"instant {label}: count {ra['count']} -> {rb['count']}")
    return lines


def self_test():
    def ev(ph, name, ts, pid=1, tid=1, value=None):
        e = {"ph": ph, "name": name, "ts": ts, "pid": pid, "tid": tid}
        if ph == "C":
            e["args"] = {"value": value}
        elif ph == "i":
            e["s"] = "t"
        return e

    meta = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "vm0"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
         "args": {"name": "migration"}},
    ]
    trace_a = meta + [
        ev("B", "round", 0),
        ev("E", "round", 1000),
        ev("B", "round", 1000),
        ev("E", "round", 3500),
        ev("C", "backlog", 100, value=10),
        ev("C", "backlog", 200, value=30),
        ev("i", "switchover", 3500),
    ]
    a = summarize(trace_a)
    assert a.events == 7, a.events
    assert a.unmatched == 0
    span = a.spans[("vm0/migration", "round")]
    assert span["count"] == 2 and span["total_us"] == 3500, span
    counter = a.counters[("vm0/migration", "backlog")]
    assert counter == {"count": 2, "min": 10, "max": 30, "last": 30}, counter
    assert a.instants[("vm0/migration", "switchover")]["count"] == 1

    # Identical traces diff clean.
    assert diff_summaries(a, summarize(list(trace_a))) == []

    # A longer second round, a counter drift and a lost instant all surface.
    trace_b = [e.copy() for e in trace_a]
    trace_b[4] = ev("E", "round", 5000)  # second round now 4000 us
    trace_b[6] = ev("C", "backlog", 200, value=50)
    trace_b.pop()  # drop the switchover instant
    delta = diff_summaries(a, summarize(trace_b))
    assert len(delta) == 3, delta
    assert any("span vm0/migration/round" in d for d in delta), delta
    assert any("counter vm0/migration/backlog" in d for d in delta), delta
    assert any("instant vm0/migration/switchover" in d for d in delta), delta

    # Unbalanced spans are reported, not fatal.
    lonely = summarize(meta + [ev("E", "x", 5), ev("B", "y", 7)])
    assert lonely.unmatched == 2, lonely.unmatched

    # Counter mode: tracks group by component, stats match the summary's.
    multi = summarize(trace_a + [
        ev("C", "backlog", 300, value=20),
        ev("C", "free_ram", 100, pid=2, tid=1, value=1000),
    ])
    table = counter_table(multi)
    assert [track for track, _ in table] == ["2/1", "vm0/migration"], table
    rows = dict(table)["vm0/migration"]
    assert rows == [("backlog",
                     {"count": 3, "min": 10, "max": 30, "last": 20})], rows
    assert dict(table)["2/1"][0][0] == "free_ram", table
    assert counter_table(summarize(meta)) == []

    print("trace_report self-test: OK")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) == 3 and argv[1] == "summarize":
        print_summary(summarize(load_events(argv[2])))
        return 0
    if len(argv) == 3 and argv[1] in ("counters", "--counters"):
        print_counters(summarize(load_events(argv[2])))
        return 0
    if len(argv) == 4 and argv[1] == "diff":
        a = summarize(load_events(argv[2]))
        b = summarize(load_events(argv[3]))
        delta = diff_summaries(a, b)
        if not delta:
            print("traces are equivalent (summary level)")
        else:
            for line in delta:
                print(line)
        return 0
    sys.stderr.write(__doc__)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except (OSError, ValueError, json.JSONDecodeError) as err:
        sys.stderr.write(f"trace_report: {err}\n")
        sys.exit(2)
