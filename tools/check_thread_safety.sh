#!/usr/bin/env bash
# Clang -Wthread-safety gate over the AGILE_* annotations
# (util/thread_annotations.hpp).
#
# Three passes, all -fsyntax-only (no tree is configured or built):
#   1. every TU under src/ must be thread-safety-clean with the diagnostics
#      promoted to errors;
#   2. tests/fixtures/thread_safety_clean.cpp must compile (positive control;
#      also instantiates the annotated header-only templates in bench/);
#   3. tests/fixtures/thread_safety_violation.cpp must be REJECTED with a
#      thread-safety diagnostic (negative control: proves the analysis is
#      armed, not silently inert).
#
# Exit codes: 0 clean, 1 violation, 77 SKIP (no clang++ — GCC does not
# implement the analysis). ctest registers 77 as SKIP_RETURN_CODE, and
# tools/analyze.sh reports the leg as SKIP.
#
# Override the compiler with AGILE_CLANGXX=/path/to/clang++.

set -u
cd "$(dirname "$0")/.."

CLANG="${AGILE_CLANGXX:-}"
if [ -z "$CLANG" ]; then
  for cand in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
              clang++-17 clang++-16 clang++-15 clang++-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANG=$cand
      break
    fi
  done
fi
if [ -z "$CLANG" ]; then
  echo "SKIP: clang++ not found — -Wthread-safety analysis needs Clang" \
       "(the AGILE_* annotations compile to nothing under GCC)"
  exit 77
fi
echo "thread-safety: using $("$CLANG" --version | head -1)"

FLAGS=(-std=c++20 -fsyntax-only -Isrc
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety-analysis -Werror=thread-safety-attributes)

fail=0

# Pass 1: the whole src/ tree.
while IFS= read -r tu; do
  if ! "$CLANG" "${FLAGS[@]}" "$tu"; then
    echo "thread-safety: FAIL $tu"
    fail=1
  fi
done < <(find src -name '*.cpp' | sort)

# Pass 2: positive control (also analyzes ThreadPool::submit and the bench
# run-cache template bodies via instantiation).
if ! "$CLANG" "${FLAGS[@]}" -Ibench tests/fixtures/thread_safety_clean.cpp; then
  echo "thread-safety: FAIL tests/fixtures/thread_safety_clean.cpp"
  fail=1
fi

# Pass 3: negative control — must fail, and must fail for the right reason.
viol_out=$("$CLANG" "${FLAGS[@]}" tests/fixtures/thread_safety_violation.cpp 2>&1)
viol_rc=$?
if [ $viol_rc -eq 0 ]; then
  echo "thread-safety: ERROR — violation fixture compiled clean;" \
       "the analysis is not armed"
  fail=1
elif ! printf '%s' "$viol_out" | grep -q "thread-safety"; then
  echo "thread-safety: ERROR — violation fixture failed without a" \
       "thread-safety diagnostic:"
  printf '%s\n' "$viol_out"
  fail=1
fi

if [ $fail -eq 0 ]; then
  echo "thread-safety: clean (src/ TUs + both fixtures behaved)"
fi
exit $fail
